// Package discsec is an end-to-end XML security stack for interactive
// applications on next-generation optical discs, reproducing
// "XML Security in the Next Generation Optical Disc Context"
// (Gopakumar Nair, Gopalakrishnan, Mauw, Moll — SDM@VLDB 2005).
//
// The package is the public facade over the full stack:
//
//   - XML Digital Signature, XML Encryption, Canonical XML, and the
//     Decryption Transform (internal/xmldsig, internal/xmlenc,
//     internal/c14n, internal/dectrans), built from scratch on the Go
//     standard library;
//   - an X.509 CA and XKMS-style key service (internal/keymgmt);
//   - MHP-style permission request files and an XACML-lite policy engine
//     (internal/access);
//   - the disc content hierarchy, virtual disc images, synthetic
//     transport streams, and local storage (internal/disc);
//   - a SMIL-lite markup model and ECMAScript-subset interpreter
//     (internal/markup) executed by the player engine (internal/player);
//   - a content server and downloader (internal/server) and an
//     OMA-DCF-style binary baseline (internal/omadcf).
//
// Typical use: an Authority issues signing identities; an Author
// packages, signs and encrypts content into a disc image; a Player
// loads the image, runs the decrypt-verify pipeline, evaluates
// permissions, and executes the application.
package discsec

import (
	"context"
	"crypto"
	"crypto/x509"
	"io"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/obs"
	"discsec/internal/player"
	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
)

// Re-exported types: the facade uses aliases so the examples, tools and
// benchmarks speak one vocabulary.
type (
	// Identity is a certified signing identity (key pair + chain).
	Identity = keymgmt.Identity
	// Image is a virtual disc image.
	Image = disc.Image
	// InteractiveCluster is the disc content hierarchy root.
	InteractiveCluster = disc.InteractiveCluster
	// Track is one cluster track.
	Track = disc.Track
	// Manifest is an application manifest.
	Manifest = disc.Manifest
	// PermissionRequest is an MHP-style permission request file.
	PermissionRequest = access.PermissionRequest
	// Permission is one requested or granted right.
	Permission = access.Permission
	// PDP is the platform policy decision point.
	PDP = access.PDP
	// Level is a signing/encryption granularity.
	Level = core.Level
	// PackageSpec configures authoring runs.
	PackageSpec = core.PackageSpec
	// EncryptOptions configures XML encryption.
	EncryptOptions = xmlenc.EncryptOptions
	// DecryptOptions configures XML decryption.
	DecryptOptions = xmlenc.DecryptOptions
	// Session is a loaded, verified disc or download.
	Session = player.Session
	// ExecutionReport is the outcome of running an application.
	ExecutionReport = player.ExecutionReport
	// OpenResult reports the security processing of a document.
	OpenResult = core.OpenResult
	// Document is a parsed XML document.
	Document = xmldom.Document
	// Recorder aggregates pipeline observability: per-stage duration
	// histograms, named counters, and the security-audit event stream.
	Recorder = obs.Recorder
	// MetricsSnapshot is a point-in-time copy of a Recorder's
	// aggregates.
	MetricsSnapshot = obs.Snapshot
)

// NewRecorder creates an enabled observability recorder (see
// internal/obs); attach it to a load with WithRecorder or set it on
// PlayerConfig.Recorder.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// WithRecorder returns a context carrying the recorder; pass it to
// LoadContext/LoadDocumentContext to observe the per-stage pipeline.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	return obs.WithRecorder(ctx, r)
}

// Granularity levels (paper §5.2).
const (
	LevelCluster  = core.LevelCluster
	LevelTrack    = core.LevelTrack
	LevelManifest = core.LevelManifest
	LevelCode     = core.LevelCode
	LevelMarkup   = core.LevelMarkup
)

// Authority is a certificate authority issuing signing identities (the
// format licensor root or a studio intermediate).
type Authority struct {
	ca *keymgmt.CA
}

// NewAuthority creates a self-signed root authority.
func NewAuthority(name string) (*Authority, error) {
	ca, err := keymgmt.NewRootCA(name, keymgmt.ECDSAP256)
	if err != nil {
		return nil, err
	}
	return &Authority{ca: ca}, nil
}

// NewIntermediate issues a subordinate authority.
func (a *Authority) NewIntermediate(name string) (*Authority, error) {
	ca, err := a.ca.NewIntermediate(name, keymgmt.ECDSAP256)
	if err != nil {
		return nil, err
	}
	return &Authority{ca: ca}, nil
}

// IssueIdentity creates a certified signing identity.
func (a *Authority) IssueIdentity(name string) (*Identity, error) {
	return a.ca.IssueIdentity(name, keymgmt.ECDSAP256)
}

// TrustPool returns the authority as a trust anchor set for players.
func (a *Authority) TrustPool() *x509.CertPool {
	return a.ca.Pool()
}

// Author is the content-creator side: signing, encrypting, packaging.
type Author struct {
	protector core.Protector
}

// NewAuthor creates an authoring context for the identity.
func NewAuthor(id *Identity) *Author {
	return &Author{protector: core.Protector{Identity: id}}
}

// Package assembles and protects a disc image per the spec.
func (a *Author) Package(spec PackageSpec) (*Image, error) {
	return a.protector.Package(spec)
}

// SignDocument signs a cluster document at the given granularity.
func (a *Author) SignDocument(doc *Document, level Level, id string) error {
	_, err := a.protector.Sign(doc, level, id)
	return err
}

// SignThenEncrypt applies the paper's §7 end-to-end order.
func (a *Author) SignThenEncrypt(doc *Document, spec core.SignThenEncryptSpec) error {
	_, err := a.protector.SignThenEncrypt(doc, spec)
	return err
}

// EncryptRegion encrypts one region before signing; pass the returned Id
// to SignThenEncrypt as a PreEncryptedID.
func (a *Author) EncryptRegion(doc *Document, path, dataID string, opts EncryptOptions) (string, error) {
	return a.protector.EncryptRegion(doc, path, dataID, opts)
}

// SignThenEncryptSpecOf builds the common sign-then-encrypt spec: sign
// at the given granularity, then encrypt the listed element paths.
func SignThenEncryptSpecOf(level Level, id string, postEncrypt []string, enc EncryptOptions) core.SignThenEncryptSpec {
	return core.SignThenEncryptSpec{
		Level:       level,
		ID:          id,
		PostEncrypt: postEncrypt,
		Encryption:  enc,
	}
}

// Player is the consumer-electronics device side.
type Player struct {
	engine player.Engine
}

// PlayerConfig configures a player runtime.
type PlayerConfig struct {
	// Trust anchors for signature chains (required for verification).
	Roots *x509.CertPool
	// Policy decides permission requests; nil denies everything.
	Policy *PDP
	// DecryptKeys supplies content decryption material.
	DecryptKeys DecryptOptions
	// RequireSignature bars unsigned content.
	RequireSignature bool
	// KeyByName resolves ds:KeyName hints via a trust service when a
	// signature carries no certificate (use
	// keymgmt.Service.PublicKeyByName or keymgmt.Client.PublicKeyByName).
	KeyByName func(name string) (crypto.PublicKey, error)
	// StorageQuota bounds local storage (0 = default 8 MiB).
	StorageQuota int64
	// Recorder receives per-stage observability for loads that do not
	// carry their own via WithRecorder; nil keeps the player silent.
	Recorder *Recorder
}

// NewPersistentPlayer creates a player whose local storage is backed by
// a directory, so application saves and license use counts survive
// restarts.
func NewPersistentPlayer(cfg PlayerConfig, storageDir string) (*Player, error) {
	p := NewPlayer(cfg)
	storage, err := disc.OpenLocalStorage(storageDir, cfg.StorageQuota)
	if err != nil {
		return nil, err
	}
	p.engine.Storage = storage
	return p, nil
}

// NewPlayer creates a player with its own local storage.
func NewPlayer(cfg PlayerConfig) *Player {
	return &Player{engine: player.Engine{
		Roots:            cfg.Roots,
		Policy:           cfg.Policy,
		Storage:          disc.NewLocalStorage(cfg.StorageQuota),
		DecryptKeys:      cfg.DecryptKeys,
		RequireSignature: cfg.RequireSignature,
		KeyByName:        cfg.KeyByName,
		Recorder:         cfg.Recorder,
	}}
}

// Load opens a disc image through the full security pipeline.
func (p *Player) Load(im *Image) (*Session, error) {
	return p.engine.Load(context.Background(), im)
}

// LoadContext is Load under a caller context; attach a Recorder with
// WithRecorder to observe the per-stage pipeline.
func (p *Player) LoadContext(ctx context.Context, im *Image) (*Session, error) {
	return p.engine.Load(ctx, im)
}

// LoadDocument opens a bare downloaded cluster document.
func (p *Player) LoadDocument(raw []byte) (*Session, error) {
	return p.engine.LoadDocument(context.Background(), raw)
}

// LoadDocumentContext is LoadDocument under a caller context.
func (p *Player) LoadDocumentContext(ctx context.Context, raw []byte) (*Session, error) {
	return p.engine.LoadDocument(ctx, raw)
}

// LoadFrom streams a downloaded cluster document straight into the
// single-pass verification pipeline without materializing it first
// (see DESIGN.md §14). Prefer this over LoadDocument when the payload
// arrives as a stream (network body, file).
func (p *Player) LoadFrom(ctx context.Context, r io.Reader) (*Session, error) {
	return p.engine.LoadFrom(ctx, r)
}

// Storage exposes the player's local storage (inspection, tests).
func (p *Player) Storage() *disc.LocalStorage {
	return p.engine.Storage
}

// ParseDocument parses an XML document with the stack's hardened
// defaults (no doctype, bounded depth).
func ParseDocument(raw []byte) (*Document, error) {
	return xmldom.ParseBytes(raw)
}

// ParseDocumentReader parses an XML document from a stream in a single
// pass, with the same hardened defaults as ParseDocument.
func ParseDocumentReader(r io.Reader) (*Document, error) {
	return xmldom.Parse(r)
}
