#!/bin/sh
# CI gate: every PR must build cleanly, pass go vet and the discvet
# static-analysis suite (see internal/analysis), and pass the full
# test suite under the race detector. The SARIF report is archived
# next to the BENCH_*.json artifacts for code-scanning upload.
set -eux

go build ./...
go vet ./...
make lint
make lint-baseline
go run ./cmd/discvet -sarif ./... > discvet.sarif
go test -race ./...
go test -race ./internal/analysis/...
make faults
make metrics
make library-bench
