#!/bin/sh
# CI gate: every PR must build cleanly, pass go vet and the discvet
# static-analysis suite (see internal/analysis), and pass the full
# test suite under the race detector.
set -eux

go build ./...
make lint
go test -race ./...
make faults
make metrics
