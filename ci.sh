#!/bin/sh
# CI gate: every PR must build cleanly, pass go vet and the discvet
# static-analysis suite (see internal/analysis), and pass the full
# test suite under the race detector. The SARIF report — which since
# discvet v4 carries the SSA-lite value-flow rules (poolescape,
# errdominate, onceonly) on top of the v3 interprocedural concurrency
# rules (lockorder, goroutineleak), the hot-path allocation rule
# (hotpathalloc), and the reader-first streaming rule (readerfirst) —
# is archived next to the BENCH_*.json artifacts for code-scanning
# upload, with discvet's own wall-clock recorded in its invocations
# block (make vet-bench).
set -eux

go build ./...
go vet ./...
make lint
make lint-baseline

# Full-module self-analysis with SARIF, wall-clock-guarded: the
# interprocedural fixpoints (taint, locksets, call graph) must stay
# interactive. 60s is ~10x current cost; breaching it means an
# analyzer regressed to something super-linear.
lint_start=$(date +%s)
make vet-bench
lint_end=$(date +%s)
lint_elapsed=$((lint_end - lint_start))
echo "discvet -sarif -walltime ./... took ${lint_elapsed}s"
if [ "$lint_elapsed" -gt 60 ]; then
    echo "discvet self-analysis exceeded the 60s budget (${lint_elapsed}s)" >&2
    exit 1
fi
# The archived report must mention the v3 and v4 rule tables and carry
# the recorded wall-clock.
for rule in lockorder goroutineleak hotpathalloc readerfirst poolescape errdominate onceonly; do
    grep -q "\"$rule\"" discvet.sarif || { echo "discvet.sarif is missing rule $rule" >&2; exit 1; }
done
grep -q '"wallClockMillis"' discvet.sarif || { echo "discvet.sarif is missing the recorded wall-clock" >&2; exit 1; }

go test -race ./...
go test -race ./internal/analysis/...
make faults
make chaos
make metrics
make library-bench
make stream-bench
make cluster-bench
