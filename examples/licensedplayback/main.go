// Licensedplayback demonstrates the paper's §9 future-work item,
// implemented: an XRML-style rights license — itself ordinary signed
// markup — governs what the player may do with the disc. The license
// grants this device two plays of the feature track; a third play and
// a foreign device are refused, and a tampered license (use count
// inflated) fails signature verification outright.
//
//	go run ./examples/licensedplayback
package main

import (
	"fmt"
	"log"

	"discsec"
	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/player"
	"discsec/internal/rights"
	"discsec/internal/xmldsig"
)

func main() {
	licensor, err := discsec.NewAuthority("Licensor Root")
	check(err)
	studio, err := licensor.IssueIdentity("Feature Studio")
	check(err)

	// Author a disc with one A/V feature track (plus the mandatory
	// application track) and signed clips.
	clip := disc.GenerateClip(disc.ClipSpec{DurationMS: 400, BitrateKbps: 6000, Seed: 11})
	cluster := &discsec.InteractiveCluster{
		Title: "Licensed Feature",
		Tracks: []*discsec.Track{
			{
				ID:   "t-feature",
				Kind: disc.TrackAV,
				Playlist: &disc.Playlist{Items: []disc.PlayItem{
					{ClipID: "clip-1", InMS: 0, OutMS: 400},
				}},
			},
			{
				ID:   "t-menu",
				Kind: disc.TrackApplication,
				Manifest: &discsec.Manifest{
					ID:   "menu",
					Code: disc.Code{Scripts: []disc.Script{{Language: "ecmascript", Source: `player.log("menu up");`}}},
				},
			},
		},
	}
	author := discsec.NewAuthor(studio)
	image, err := author.Package(discsec.PackageSpec{
		Cluster:   cluster,
		Clips:     map[string][]byte{"CLIPS/clip-1.m2ts": clip},
		Sign:      true,
		SignLevel: discsec.LevelCluster,
		SignClips: true,
	})
	check(err)

	// The rights issuer attaches a signed license: device-A may play
	// the feature twice.
	license := &rights.License{
		ID:     "lic-feature",
		Issuer: studio.Name,
		Grants: []rights.Grant{
			{Principal: "device-A", Right: rights.RightPlay, Resource: "t-feature", MaxUses: 2},
		},
	}
	licDoc := license.Document()
	_, err = xmldsig.SignEnveloped(licDoc, licDoc.Root(), xmldsig.SignOptions{
		Key:     studio.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: studio.Name, Certificates: studio.Chain},
	})
	check(err)
	check(image.Put(player.LicensePath, licDoc.Bytes()))

	// Player side.
	p := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           &discsec.PDP{PolicySet: access.PolicySet{}},
		RequireSignature: true,
	})
	session, err := p.Load(image)
	check(err)
	fmt.Printf("loaded %q (verified=%v)\n\n", session.Cluster.Title, session.Verified())

	play := func(device string) {
		rep, err := session.PlayTrackLicensed(device, "t-feature")
		if err != nil {
			fmt.Printf("%s: play REFUSED: %v\n", device, err)
			return
		}
		fmt.Printf("%s: played %d clip(s), %d packets, clip signature by %q\n",
			device, len(rep.Clips), rep.Clips[0].Packets, rep.SignerCN)
	}

	play("device-A") // 1st: ok
	play("device-A") // 2nd: ok
	play("device-A") // 3rd: exhausted
	play("device-B") // no grant

	// Tampering with the license (inflating the use count) breaks its
	// signature.
	raw, _ := image.Get(player.LicensePath)
	mutated := []byte(replaceOnce(string(raw), `maxuses="2"`, `maxuses="99"`))
	check(image.Put(player.LicensePath, mutated))
	fresh, err := p.Load(image)
	check(err)
	if _, err := fresh.PlayTrackLicensed("device-A", "t-feature"); err != nil {
		fmt.Printf("\ntampered license: correctly refused (%v)\n", short(err))
	} else {
		log.Fatal("tampered license honored")
	}
}

func replaceOnce(s, old, repl string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + repl + s[i+len(old):]
		}
	}
	log.Fatalf("pattern %q not found", old)
	return s
}

func short(err error) string {
	s := err.Error()
	if len(s) > 90 {
		return s[:90] + "…"
	}
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
