// Quickstart: sign a disc application and verify it on a player in
// ~50 lines of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"discsec"
	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/xmldom"
)

func main() {
	// 1. The format licensor runs a root authority; the studio gets a
	//    certified signing identity.
	licensor, err := discsec.NewAuthority("Format Licensor Root")
	check(err)
	studio, err := licensor.IssueIdentity("Example Studio")
	check(err)

	// 2. The studio authors a disc: one application track with markup
	//    and a script, signed at cluster level.
	layout := xmldom.NewElement("layout")
	layout.DeclareNamespace("", "urn:discsec:smil")
	layout.CreateChild("region").SetAttr("id", "main").SetAttr("width", "1920").SetAttr("height", "1080")

	cluster := &discsec.InteractiveCluster{
		Title: "Quickstart Feature",
		Tracks: []*discsec.Track{{
			ID:   "t-app",
			Kind: disc.TrackApplication,
			Manifest: &discsec.Manifest{
				ID:     "app-hello",
				Markup: disc.Markup{SubMarkups: []disc.SubMarkup{{Kind: "layout", Content: layout}}},
				Code: disc.Code{Scripts: []disc.Script{{
					Language: "ecmascript",
					Source:   `player.log("hello from a verified disc application");`,
				}}},
			},
		}},
	}
	author := discsec.NewAuthor(studio)
	image, err := author.Package(discsec.PackageSpec{
		Cluster:   cluster,
		Sign:      true,
		SignLevel: discsec.LevelCluster,
	})
	check(err)

	// 3. A player trusting the licensor root loads the disc: the
	//    signature is verified before anything executes.
	player := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           permitVerified(),
		RequireSignature: true,
	})
	session, err := player.Load(image)
	check(err)
	fmt.Printf("loaded %q — verified=%v, signed by %q\n",
		session.Cluster.Title, session.Verified(), session.SignerName())

	report, err := session.RunApplication("t-app")
	check(err)
	for _, line := range report.Log {
		fmt.Println("script:", line)
	}
}

// permitVerified is the simplest sensible platform policy: verified
// applications get what they request, unverified ones get nothing.
func permitVerified() *discsec.PDP {
	return &discsec.PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{Effect: access.EffectPermit},
			},
		}},
	}}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
