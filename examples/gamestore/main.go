// Gamestore reproduces the paper's §4 partial-encryption scenario: a
// disc game keeps its general application markup in the clear but
// encrypts the high-score state, which the player decrypts "in parallel
// to the execution of the markup" — here: during load, without touching
// the rest of the document. Scores persist across runs in the player's
// quota-managed local storage.
//
//	go run ./examples/gamestore
package main

import (
	"fmt"
	"log"
	"strings"

	"discsec"
	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/markup"
	"discsec/internal/workload"
)

func main() {
	licensor, err := discsec.NewAuthority("Licensor Root")
	check(err)
	studio, err := licensor.IssueIdentity("Game Studio")
	check(err)

	// Author the game: layout + timing + script + a state submarkup
	// holding the shipped high-score table.
	cluster := gameCluster()
	contentKey := workload.Bytes(32, 0x9A3E)

	author := discsec.NewAuthor(studio)
	image, err := author.Package(discsec.PackageSpec{
		Cluster: cluster,
		PermissionRequests: map[string]*discsec.PermissionRequest{
			"game": {AppID: "game", Permissions: []discsec.Permission{
				{Name: access.PermLocalStorageRead, Target: "game/*"},
				{Name: access.PermLocalStorageWrite, Target: "game/*"},
				{Name: access.PermGraphicsPlane},
			}},
		},
		Sign:      true,
		SignLevel: discsec.LevelCluster,
		// Encrypt ONLY the state submarkup (the high scores); the
		// markup and code stay clear — the paper's performance
		// argument for partial encryption.
		EncryptPaths: []string{"//submarkup[@kind='state']"},
		Encryption:   discsec.EncryptOptions{Key: contentKey},
	})
	check(err)

	raw, _ := image.Get(disc.IndexPath)
	fmt.Printf("packaged image: %d bytes; shipped scores visible in image: %v\n",
		len(raw), strings.Contains(string(raw), "highscores"))

	// Player with the content key: loads, decrypts the score region,
	// verifies the signature, runs the game twice.
	player := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           permitVerified(),
		RequireSignature: true,
		DecryptKeys:      discsec.DecryptOptions{Key: contentKey},
	})

	for run := 1; run <= 2; run++ {
		session, err := player.Load(image)
		check(err)
		report, err := session.RunApplication("t-game")
		check(err)
		fmt.Printf("\nrun %d (verified=%v):\n", run, session.Verified())
		for _, l := range report.Log {
			fmt.Println("  ", l)
		}
		if len(report.ScriptErrors) > 0 {
			log.Fatalf("script errors: %v", report.ScriptErrors)
		}
	}

	// A second player without the key cannot even load the disc's
	// encrypted region — secrecy holds at rest, not just in transit.
	noKey := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           permitVerified(),
		RequireSignature: true,
	})
	if _, err := noKey.Load(image); err != nil {
		fmt.Printf("\nplayer without content key: correctly refused (%v)\n", err)
	} else {
		log.Fatal("player without key loaded encrypted content")
	}
}

func gameCluster() *discsec.InteractiveCluster {
	layout := &markup.Layout{Regions: []markup.Region{
		{ID: "board", Width: 1920, Height: 980},
		{ID: "hud", Top: 980, Width: 1920, Height: 100, ZIndex: 1},
	}}
	timing := &markup.TimingNode{Kind: "par", Children: []*markup.TimingNode{
		{Kind: "img", Src: "board.png", Region: "board", DurMS: 60000},
		{Kind: "img", Src: "hud.png", Region: "hud", DurMS: 60000},
	}}
	script := `
player.log("game start, app =", player.appId);
var best = storage.get("best");
if (best == null) { best = 0; }
var session = Number(best) + 150;
if (session > Number(best)) {
  storage.set("best", session);
  player.log("new best score:", session);
} else {
  player.log("best remains:", best);
}
display.draw("scoreboard", session);
`
	return &discsec.InteractiveCluster{
		Title: "Disc Puzzler",
		Tracks: []*discsec.Track{{
			ID:   "t-game",
			Kind: disc.TrackApplication,
			Manifest: &discsec.Manifest{
				ID: "game",
				Markup: disc.Markup{SubMarkups: []disc.SubMarkup{
					{Kind: "layout", Content: layout.Element()},
					{Kind: "timing", Content: timing.Element()},
					{Kind: "state", Content: workload.HighScores(5, 77)},
				}},
				Code: disc.Code{Scripts: []disc.Script{{Language: "ecmascript", Source: script}}},
			},
		}},
	}
}

func permitVerified() *discsec.PDP {
	return &discsec.PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{Effect: access.EffectPermit},
			},
		}},
	}}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
