// Downloadapp reproduces the paper's §5.1 global scenario (Fig. 3): a
// content server publishes a signed bonus application; a connected
// player downloads it over the network and authenticates it before
// execution. Tampered downloads and applications signed outside the
// player's trust chain are barred, and an XKMS-style key service
// answers locate/validate queries about the signer.
//
//	go run ./examples/downloadapp
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"discsec"
	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/server"
)

func main() {
	// PKI: licensor root, legitimate vendor, and a rogue author with a
	// self-signed chain.
	licensor, err := discsec.NewAuthority("Licensor Root")
	check(err)
	vendor, err := licensor.IssueIdentity("Bonus Content Vendor")
	check(err)
	rogueRoot, err := discsec.NewAuthority("Rogue Root")
	check(err)
	rogue, err := rogueRoot.IssueIdentity("Rogue Author")
	check(err)

	// XKMS-style trust service: the vendor registers its certificate.
	keyService := keymgmt.NewService(licensor.TrustPool())
	check(keyService.Register("Bonus Content Vendor", vendor.Cert, "reg-secret"))
	xkms := httptest.NewServer(&keymgmt.Handler{Service: keyService})
	defer xkms.Close()

	// The vendor publishes three variants on a content server.
	good := authoredDocument(vendor, `player.log("bonus clip menu ready");`)
	tampered := strings.Replace(good, "bonus clip menu ready", "bonus clip menu ready; exfiltrate()", 1)
	roguePkg := authoredDocument(rogue, `player.log("rogue payload");`)

	cs := server.NewContentServer()
	cs.PublishDocument("apps/bonus.xml", []byte(good))
	cs.PublishDocument("apps/bonus-tampered.xml", []byte(tampered))
	cs.PublishDocument("apps/bonus-rogue.xml", []byte(roguePkg))
	web := httptest.NewServer(cs)
	defer web.Close()
	fmt.Printf("content server catalog: %v\n", cs.Catalog())

	// The player downloads and authenticates each variant.
	player := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           permitVerified(),
		RequireSignature: true, // downloaded content MUST be signed
	})
	dl := &server.Downloader{}

	for _, name := range []string{"apps/bonus.xml", "apps/bonus-tampered.xml", "apps/bonus-rogue.xml"} {
		raw, err := dl.Fetch(web.URL, name)
		check(err)
		sess, err := player.LoadDocument(raw)
		if err != nil {
			fmt.Printf("%-26s BARRED: %v\n", name, shorten(err))
			continue
		}
		rep, err := sess.RunApplication("t-bonus")
		check(err)
		fmt.Printf("%-26s EXECUTED (signer=%q): %v\n", name, sess.SignerName(), rep.Log)
	}

	// Consult the key service about the signer, like a player
	// refreshing trust state (paper §7).
	xc := &keymgmt.Client{BaseURL: xkms.URL}
	status, _, err := xc.Validate("Bonus Content Vendor")
	check(err)
	fmt.Printf("\nXKMS validate(Bonus Content Vendor) = %s\n", status)

	// Revocation propagates: after the vendor key is revoked, the
	// service reports Invalid and a strict platform would re-check
	// before executing cached content.
	check(xc.Revoke("Bonus Content Vendor", "reg-secret"))
	status, reason, err := xc.Validate("Bonus Content Vendor")
	check(err)
	fmt.Printf("after revocation: %s (%s)\n", status, reason)
}

func authoredDocument(id *discsec.Identity, script string) string {
	cluster := &discsec.InteractiveCluster{
		Title: "Bonus Material",
		Tracks: []*discsec.Track{{
			ID:   "t-bonus",
			Kind: disc.TrackApplication,
			Manifest: &discsec.Manifest{
				ID:   "bonus",
				Code: disc.Code{Scripts: []disc.Script{{Language: "ecmascript", Source: script}}},
			},
		}},
	}
	doc := cluster.Document()
	author := discsec.NewAuthor(id)
	if err := author.SignDocument(doc, discsec.LevelCluster, ""); err != nil {
		log.Fatal(err)
	}
	return doc.String()
}

func permitVerified() *discsec.PDP {
	return &discsec.PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{Effect: access.EffectPermit},
			},
		}},
	}}
}

func shorten(err error) string {
	s := err.Error()
	if len(s) > 110 {
		return s[:110] + "…"
	}
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
