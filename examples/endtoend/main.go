// Endtoend walks the paper's §7 / Fig. 9 flow in full, printing each
// stage:
//
//	author: pre-encrypt license secrets → sign (with decryption
//	        transform excepting them) → post-encrypt the code →
//	        package → publish
//	player: download → decrypt post-signature regions → verify →
//	        open excepted regions → evaluate permissions → execute
//
// It also demonstrates WHY the ordering matters: decrypting the
// excepted region before verification breaks the signature.
//
//	go run ./examples/endtoend
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"strings"

	"discsec"
	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/server"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
)

func main() {
	licensor, err := discsec.NewAuthority("Licensor Root")
	check(err)
	studio, err := licensor.IssueIdentity("End-to-End Studio")
	check(err)
	key := workload.Bytes(32, 0xE2E)

	// ----- Authoring (Fig. 9 left half) --------------------------------
	doc := appDocument()
	author := discsec.NewAuthor(studio)

	// Stage A1: the license block is encrypted BEFORE signing — it is
	// signed in its ciphertext form.
	preID, err := author.EncryptRegion(doc, "//manifest/license", "enc-license", discsec.EncryptOptions{Key: key})
	check(err)
	fmt.Println("A1 pre-encrypted license block as", preID)

	// Stage A2+A3: sign the cluster with a decryption transform that
	// excepts the license block, then encrypt the code part.
	err = author.SignThenEncrypt(doc, core.SignThenEncryptSpec{
		Level:           discsec.LevelCluster,
		PreEncryptedIDs: []string{preID},
		PostEncrypt:     []string{"//manifest/code"},
		Encryption:      discsec.EncryptOptions{Key: key},
	})
	check(err)
	fmt.Println("A2 signed cluster (decryption transform records the exception)")
	fmt.Println("A3 post-encrypted the code part")

	transmitted := doc.Bytes()
	if strings.Contains(string(transmitted), "SECRET-LICENSE") || strings.Contains(string(transmitted), "boot sequence") {
		log.Fatal("plaintext leaked into the transmitted document")
	}
	fmt.Printf("A4 transmitted document: %d bytes, no plaintext visible\n", len(transmitted))

	// Stage A5: publish on a content server.
	cs := server.NewContentServer()
	cs.PublishDocument("apps/feature.xml", transmitted)
	web := httptest.NewServer(cs)
	defer web.Close()

	// ----- Player (Fig. 9 right half) -----------------------------------
	dl := &server.Downloader{}
	raw, err := dl.Fetch(web.URL, "apps/feature.xml")
	check(err)
	fmt.Printf("P1 downloaded %d bytes\n", len(raw))

	player := discsec.NewPlayer(discsec.PlayerConfig{
		Roots:            licensor.TrustPool(),
		Policy:           permitVerified(),
		RequireSignature: true,
		DecryptKeys:      discsec.DecryptOptions{Key: key},
	})
	sess, err := player.LoadDocument(raw)
	check(err)
	rep0 := sess.OpenResult.Signatures[0]
	fmt.Printf("P2 decryption transform: %d region(s) decrypted before verification\n", rep0.DecryptedBeforeVerify)
	fmt.Printf("P3 signature verified: signer=%q chain=%v\n", rep0.SignerCN, rep0.ChainValidated)
	fmt.Printf("P4 excepted regions opened after verification: %d\n", sess.OpenResult.OpenedAfterVerify)

	rep, err := sess.RunApplication("t-app")
	check(err)
	fmt.Printf("P5 executed application %q:\n", rep.AppID)
	for _, l := range rep.Log {
		fmt.Println("   |", l)
	}
	if len(rep.ScriptErrors) > 0 {
		log.Fatalf("script errors: %v", rep.ScriptErrors)
	}

	// ----- Why the order matters ----------------------------------------
	// Decrypt EVERYTHING first (ignoring the exception list), then try
	// to verify: the license block was signed as ciphertext, so this
	// must fail.
	wrong, err := xmldom.ParseBytes(raw)
	check(err)
	_, err = xmlenc.DecryptAll(wrong, xmlenc.DecryptOptions{Key: key})
	check(err)
	sig := xmldsig.FindSignature(wrong)
	if _, err := xmldsig.Verify(wrong, sig, xmldsig.VerifyOptions{Roots: licensor.TrustPool()}); err != nil {
		fmt.Printf("\nordering check: decrypt-everything-then-verify correctly FAILS (%v)\n", shorten(err))
	} else {
		log.Fatal("verification succeeded despite wrong processing order")
	}
}

func appDocument() *discsec.Document {
	cluster := &discsec.InteractiveCluster{
		Title: "Protected Feature",
		Tracks: []*discsec.Track{{
			ID:   "t-app",
			Kind: disc.TrackApplication,
			Manifest: &discsec.Manifest{
				ID: "feature-app",
				Code: disc.Code{Scripts: []disc.Script{{
					Language: "ecmascript",
					Source:   `player.log("boot sequence complete, verified =", player.verified);`,
				}}},
			},
		}},
	}
	doc := cluster.Document()
	// Insert the license block the model does not carry natively.
	manifest, err := doc.Root().Find("//manifest")
	check(err)
	if manifest == nil {
		log.Fatal("no manifest")
	}
	lic := manifest.CreateChild("license")
	lic.CreateChild("key").SetText("SECRET-LICENSE-KEY-0042")
	return doc
}

func permitVerified() *discsec.PDP {
	return &discsec.PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{Effect: access.EffectPermit},
			},
		}},
	}}
}

func shorten(err error) string {
	s := err.Error()
	if len(s) > 100 {
		return s[:100] + "…"
	}
	return s
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
