package discsec

import (
	"strings"
	"testing"

	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/workload"
)

// Facade-level integration fixture.
var (
	facadeRoot   *Authority
	facadeStudio *Identity
)

func init() {
	var err error
	facadeRoot, err = NewAuthority("Facade Root")
	if err != nil {
		panic(err)
	}
	facadeStudio, err = facadeRoot.IssueIdentity("Facade Studio")
	if err != nil {
		panic(err)
	}
}

func facadePolicy() *PDP {
	return &PDP{PolicySet: access.PolicySet{
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			Combining: access.FirstApplicable,
			Rules: []access.Rule{{
				Effect: access.EffectPermit,
				Condition: access.Compare{
					Category: access.CatSubject, Attribute: "verified",
					Op: access.OpEquals, Value: "true",
				},
			}},
		}},
	}}
}

func facadeCluster() *InteractiveCluster {
	cluster, _ := workload.Cluster(workload.ClusterSpec{
		AVTracks: 1, AppTracks: 1,
		Manifest: workload.ManifestSpec{
			Regions: 2, MediaItems: 3, ScriptStatements: 10, HighScoreEntries: 3,
		},
		ClipDurationMS: 50, Seed: 99,
	})
	return cluster
}

func TestFacadeAuthorPlayerRoundTrip(t *testing.T) {
	author := NewAuthor(facadeStudio)
	im, err := author.Package(PackageSpec{
		Cluster: facadeCluster(),
		PermissionRequests: map[string]*PermissionRequest{
			"app-1": {AppID: "app-1", Permissions: []Permission{
				{Name: access.PermGraphicsPlane},
			}},
		},
		Sign:      true,
		SignLevel: LevelCluster,
	})
	if err != nil {
		t.Fatalf("package: %v", err)
	}

	p := NewPlayer(PlayerConfig{
		Roots:            facadeRoot.TrustPool(),
		Policy:           facadePolicy(),
		RequireSignature: true,
	})
	sess, err := p.Load(im)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !sess.Verified() {
		t.Error("not verified")
	}
	rep, err := sess.RunApplication("t-app-1")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.ScriptErrors) != 0 {
		t.Errorf("script errors: %v", rep.ScriptErrors)
	}
	if len(rep.Granted) != 1 {
		t.Errorf("granted = %v", rep.Granted)
	}
	if len(rep.Events) == 0 {
		t.Error("no presentation events")
	}
}

func TestFacadeSignThenEncrypt(t *testing.T) {
	author := NewAuthor(facadeStudio)
	doc := facadeCluster().Document()
	key := workload.Bytes(32, 5)

	err := author.SignThenEncrypt(doc, SignThenEncryptSpecOf(LevelCluster, "", []string{"//manifest/code"}, EncryptOptions{Key: key}))
	if err != nil {
		t.Fatalf("sign-then-encrypt: %v", err)
	}
	if strings.Contains(doc.String(), "var acc") {
		t.Fatal("script plaintext leaked")
	}
	p := NewPlayer(PlayerConfig{
		Roots:            facadeRoot.TrustPool(),
		RequireSignature: true,
		DecryptKeys:      DecryptOptions{Key: key},
	})
	sess, err := p.LoadDocument(doc.Bytes())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !sess.Verified() {
		t.Error("not verified")
	}
}

func TestFacadeTamperedContentBarred(t *testing.T) {
	author := NewAuthor(facadeStudio)
	im, err := author.Package(PackageSpec{
		Cluster: facadeCluster(), Sign: true, SignLevel: LevelCluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := im.Get(disc.IndexPath)
	tampered := strings.Replace(string(raw), "var acc = 0;", "var acc = 666;", 1)
	if tampered == string(raw) {
		t.Fatal("setup: tamper target missing")
	}
	im.Put(disc.IndexPath, []byte(tampered))

	p := NewPlayer(PlayerConfig{Roots: facadeRoot.TrustPool(), RequireSignature: true})
	if _, err := p.Load(im); err == nil {
		t.Error("tampered image loaded")
	}
}

func TestFacadeIntermediateChain(t *testing.T) {
	inter, err := facadeRoot.NewIntermediate("Facade Studio CA")
	if err != nil {
		t.Fatal(err)
	}
	id, err := inter.IssueIdentity("Chained Creator")
	if err != nil {
		t.Fatal(err)
	}
	author := NewAuthor(id)
	im, err := author.Package(PackageSpec{
		Cluster: facadeCluster(), Sign: true, SignLevel: LevelCluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Player trusting only the root validates the chain through the
	// embedded intermediate.
	p := NewPlayer(PlayerConfig{Roots: facadeRoot.TrustPool(), RequireSignature: true})
	sess, err := p.Load(im)
	if err != nil {
		t.Fatalf("load with intermediate chain: %v", err)
	}
	if !sess.Verified() || sess.SignerName() != "Chained Creator" {
		t.Errorf("verified=%v signer=%q", sess.Verified(), sess.SignerName())
	}
}

func TestParseDocumentHardened(t *testing.T) {
	if _, err := ParseDocument([]byte(`<!DOCTYPE r [<!ENTITY e "x">]><r>&e;</r>`)); err == nil {
		t.Error("doctype accepted by facade parser")
	}
	doc, err := ParseDocument([]byte(`<ok/>`))
	if err != nil || doc.Root().Local != "ok" {
		t.Errorf("parse = %v, %v", doc, err)
	}
}
