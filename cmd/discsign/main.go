// Command discsign signs and verifies disc cluster documents at the
// paper's granularity levels (§5.2): cluster, track, manifest, markup,
// code.
//
// Usage:
//
//	discsign keygen  -dir keys -name "Studio" [-root rootdir]
//	discsign sign    -in cluster.xml -out signed.xml -keys keys [-level cluster] [-id app-1]
//	discsign verify  -in signed.xml -roots root.pem [-require]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"discsec/internal/core"
	"discsec/internal/keymgmt"
	"discsec/internal/xmldom"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "sign":
		err = cmdSign(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "discsign:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: discsign keygen|sign|verify [flags]")
	os.Exit(2)
}

// cmdKeygen creates a root authority (or reuses one) and issues a
// signing identity under it.
func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	dir := fs.String("dir", "keys", "output directory for the identity")
	name := fs.String("name", "Content Creator", "identity common name")
	rootDir := fs.String("root", "", "existing root identity directory (default: create a new root next to -dir)")
	fs.Parse(args)

	var rootID *keymgmt.Identity
	rootPath := *rootDir
	if rootPath == "" {
		rootPath = filepath.Join(filepath.Dir(*dir), "root")
	}
	if _, err := os.Stat(filepath.Join(rootPath, "key.pem")); err == nil {
		var err error
		rootID, err = keymgmt.LoadIdentity(rootPath)
		if err != nil {
			return fmt.Errorf("loading root: %w", err)
		}
		fmt.Printf("using existing root %q\n", rootID.Name)
	}

	var ca *keymgmt.CA
	if rootID == nil {
		newCA, err := keymgmt.NewRootCA("discsign root", keymgmt.ECDSAP256)
		if err != nil {
			return err
		}
		ca = newCA
		rootIdentity := &keymgmt.Identity{Name: "discsign root", Key: ca.Key, Cert: ca.Cert, Chain: [][]byte{ca.Cert.Raw}}
		if err := keymgmt.SaveIdentity(rootIdentity, rootPath); err != nil {
			return err
		}
		if err := keymgmt.SaveCertPEM(ca.Cert, filepath.Join(rootPath, "root.pem")); err != nil {
			return err
		}
		fmt.Printf("created root authority in %s (trust anchor: %s)\n", rootPath, filepath.Join(rootPath, "root.pem"))
	} else {
		ca = &keymgmt.CA{Cert: rootID.Cert, Key: rootID.Key}
	}

	id, err := ca.IssueIdentity(*name, keymgmt.ECDSAP256)
	if err != nil {
		return err
	}
	if err := keymgmt.SaveIdentity(id, *dir); err != nil {
		return err
	}
	fmt.Printf("issued identity %q in %s\n", *name, *dir)
	return nil
}

func cmdSign(args []string) error {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	in := fs.String("in", "", "input cluster document")
	out := fs.String("out", "", "output signed document (default: overwrite input)")
	keys := fs.String("keys", "keys", "identity directory from keygen")
	levelName := fs.String("level", "cluster", "granularity: cluster, track, manifest, markup, code")
	id := fs.String("id", "", "target Id for track/manifest/markup/code levels")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("sign requires -in")
	}
	if *out == "" {
		*out = *in
	}
	level, err := levelByName(*levelName)
	if err != nil {
		return err
	}

	identity, err := keymgmt.LoadIdentity(*keys)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	p := &core.Protector{Identity: identity}
	if _, err := p.Sign(doc, level, *id); err != nil {
		return err
	}
	if err := os.WriteFile(*out, doc.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("signed %s at %s level as %q -> %s\n", *in, level, identity.Name, *out)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "signed document")
	roots := fs.String("roots", "", "PEM file with trusted roots")
	require := fs.Bool("require", true, "fail when no signature is present")
	fs.Parse(args)
	if *in == "" || *roots == "" {
		return fmt.Errorf("verify requires -in and -roots")
	}
	pool, err := keymgmt.LoadCertPool(*roots)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	opener := &core.Opener{Roots: pool, RequireSignature: *require}
	res, err := opener.OpenReader(context.Background(), f)
	if err != nil {
		return fmt.Errorf("VERIFICATION FAILED: %w", err)
	}
	for i, rep := range res.Signatures {
		fmt.Printf("signature %d: signer=%q cn=%q chain-validated=%v references=%v\n",
			i+1, rep.SignerName, rep.SignerCN, rep.ChainValidated, rep.References)
	}
	fmt.Println("verification OK")
	return nil
}

func levelByName(s string) (core.Level, error) {
	switch s {
	case "cluster":
		return core.LevelCluster, nil
	case "track":
		return core.LevelTrack, nil
	case "manifest":
		return core.LevelManifest, nil
	case "markup":
		return core.LevelMarkup, nil
	case "code":
		return core.LevelCode, nil
	default:
		return 0, fmt.Errorf("unknown level %q", s)
	}
}
