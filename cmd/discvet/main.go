// Command discvet runs the project's static-analysis suite
// (internal/analysis) over the module and exits nonzero on findings.
//
// Usage:
//
//	discvet [-rules cryptocompare,weakrand] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module root.
// Findings print as file:line:col: [rule] message. Suppress a finding
// with a justified comment on the offending line or the line above:
//
//	//discvet:ignore cryptocompare public value, not secret-dependent
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"discsec/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list registered rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: discvet [-rules r1,r2] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analysis.Analyzers()
	if *rules != "" {
		selected = selected[:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "discvet: unknown rule %q (try -list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "discvet:", err)
		os.Exit(2)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discvet:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discvet:", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "discvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
