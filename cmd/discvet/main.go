// Command discvet runs the project's static-analysis suite
// (internal/analysis) over the module and exits nonzero on findings.
//
// Usage:
//
//	discvet [-rules taintflow,auditpath] [-list] [-json|-sarif]
//	        [-walltime] [-baseline file] [-writebaseline file] [packages]
//
// Packages default to ./... relative to the enclosing module root.
// Findings print as file:line:col: [rule] message, or as structured
// output with -json / -sarif (SARIF 2.1.0). A baseline file filters
// known-accepted findings so CI fails only on new ones:
//
//	discvet -writebaseline discvet.baseline.json ./...   # accept today's findings
//	discvet -baseline discvet.baseline.json ./...        # fail only on new ones
//
// Suppress a single finding with a justified comment on the offending
// line or the line above (stale suppressions are themselves reported):
//
//	//discvet:ignore cryptocompare public value, not secret-dependent
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"discsec/internal/analysis"
)

func main() {
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list registered rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	baselinePath := flag.String("baseline", "", "filter findings through the baseline `file`; only new findings fail")
	writeBaseline := flag.String("writebaseline", "", "write current findings to the baseline `file` and exit 0")
	wallTime := flag.Bool("walltime", false, "with -sarif, record analysis wall-clock in the report's invocations block")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: discvet [-rules r1,r2] [-list] [-json|-sarif] [-walltime] [-baseline file] [-writebaseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *jsonOut && *sarifOut {
		fatalf("choose one of -json and -sarif")
	}

	selected := analysis.Analyzers()
	if *rules != "" {
		selected = selected[:0]
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fatalf("unknown rule %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	start := time.Now()
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	diags := analysis.Run(pkgs, selected)
	elapsed := time.Since(start)

	if *writeBaseline != "" {
		b := analysis.NewBaseline(diags, loader.Root)
		if err := b.Save(*writeBaseline); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "discvet: wrote %d baseline entr%s to %s\n",
			len(b.Entries), plural(len(b.Entries), "y", "ies"), *writeBaseline)
		return
	}
	if *baselinePath != "" {
		b, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatalf("%v", err)
		}
		diags = b.Filter(diags, loader.Root)
	}

	switch {
	case *sarifOut:
		var out []byte
		if *wallTime {
			out, err = analysis.SARIFReportTimed(diags, selected, loader.Root, elapsed)
		} else {
			out, err = analysis.SARIFReport(diags, selected, loader.Root)
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(out))
	case *jsonOut:
		out, err := analysis.JSONReport(diags, loader.Root)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Println(string(out))
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "discvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "discvet: "+format+"\n", args...)
	os.Exit(2)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}
