// Command disccrypt encrypts and decrypts disc content: XML element
// regions inside cluster/manifest documents (paper Fig. 8) and whole
// binary payloads such as transport streams (paper Fig. 7).
//
// Usage:
//
//	disccrypt encrypt -in doc.xml -out enc.xml -key <hex> [-path "//manifest/code"] [-content] [-alg aes256-gcm]
//	disccrypt decrypt -in enc.xml -out dec.xml -key <hex>
//	disccrypt encrypt-bin -in clip.m2ts -out clip.enc.xml -key <hex> [-mime video/mp2t]
//	disccrypt decrypt-bin -in clip.enc.xml -out clip.m2ts -key <hex>
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encrypt":
		err = cmdEncrypt(os.Args[2:])
	case "decrypt":
		err = cmdDecrypt(os.Args[2:])
	case "encrypt-bin":
		err = cmdEncryptBin(os.Args[2:])
	case "decrypt-bin":
		err = cmdDecryptBin(os.Args[2:])
	case "genkey":
		err = cmdGenKey(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "disccrypt:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: disccrypt encrypt|decrypt|encrypt-bin|decrypt-bin|genkey [flags]")
	os.Exit(2)
}

func algByName(s string) (string, error) {
	switch s {
	case "aes128-cbc":
		return xmlsecuri.EncAES128CBC, nil
	case "aes192-cbc":
		return xmlsecuri.EncAES192CBC, nil
	case "aes256-cbc":
		return xmlsecuri.EncAES256CBC, nil
	case "aes128-gcm":
		return xmlsecuri.EncAES128GCM, nil
	case "aes256-gcm", "":
		return xmlsecuri.EncAES256GCM, nil
	default:
		return "", fmt.Errorf("unknown algorithm %q", s)
	}
}

func keyFlag(s string) ([]byte, error) {
	if s == "" {
		return nil, fmt.Errorf("a -key (hex) is required")
	}
	k, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("-key: %w", err)
	}
	return k, nil
}

func cmdGenKey(args []string) error {
	fs := flag.NewFlagSet("genkey", flag.ExitOnError)
	algName := fs.String("alg", "aes256-gcm", "algorithm the key is for")
	fs.Parse(args)
	alg, err := algByName(*algName)
	if err != nil {
		return err
	}
	k, err := xmlenc.GenerateKey(alg)
	if err != nil {
		return err
	}
	fmt.Println(hex.EncodeToString(k))
	return nil
}

func cmdEncrypt(args []string) error {
	fs := flag.NewFlagSet("encrypt", flag.ExitOnError)
	in := fs.String("in", "", "input XML document")
	out := fs.String("out", "", "output document (default: overwrite input)")
	keyHex := fs.String("key", "", "content key, hex")
	path := fs.String("path", "", "element query path to encrypt (default: document root content)")
	content := fs.Bool("content", false, "encrypt element content only, leaving the tag clear")
	algName := fs.String("alg", "aes256-gcm", "block algorithm")
	dataID := fs.String("id", "", "Id attribute for the EncryptedData")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("encrypt requires -in")
	}
	if *out == "" {
		*out = *in
	}
	key, err := keyFlag(*keyHex)
	if err != nil {
		return err
	}
	alg, err := algByName(*algName)
	if err != nil {
		return err
	}

	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	target := doc.Root()
	if *path != "" {
		target, err = doc.Root().Find(*path)
		if err != nil {
			return err
		}
		if target == nil {
			return fmt.Errorf("path %q matched nothing", *path)
		}
	}
	opts := xmlenc.EncryptOptions{Algorithm: alg, Key: key, DataID: *dataID}
	if *content || target == doc.Root() {
		// Roots have no parent; content encryption keeps the document
		// element and is what you want for whole-document protection.
		if _, err := xmlenc.EncryptContent(target, opts); err != nil {
			return err
		}
	} else if _, err := xmlenc.EncryptElement(target, opts); err != nil {
		return err
	}
	if err := os.WriteFile(*out, doc.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("encrypted %s -> %s (%s)\n", *in, *out, alg)
	return nil
}

func cmdDecrypt(args []string) error {
	fs := flag.NewFlagSet("decrypt", flag.ExitOnError)
	in := fs.String("in", "", "input XML document")
	out := fs.String("out", "", "output document (default: overwrite input)")
	keyHex := fs.String("key", "", "content key, hex")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("decrypt requires -in")
	}
	if *out == "" {
		*out = *in
	}
	key, err := keyFlag(*keyHex)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	n, err := xmlenc.DecryptAll(doc, xmlenc.DecryptOptions{Key: key})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, doc.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("decrypted %d region(s): %s -> %s\n", n, *in, *out)
	return nil
}

func cmdEncryptBin(args []string) error {
	fs := flag.NewFlagSet("encrypt-bin", flag.ExitOnError)
	in := fs.String("in", "", "input binary file")
	out := fs.String("out", "", "output EncryptedData document")
	keyHex := fs.String("key", "", "content key, hex")
	algName := fs.String("alg", "aes256-gcm", "block algorithm")
	mime := fs.String("mime", "application/octet-stream", "MimeType annotation")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("encrypt-bin requires -in and -out")
	}
	key, err := keyFlag(*keyHex)
	if err != nil {
		return err
	}
	alg, err := algByName(*algName)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	doc, err := xmlenc.EncryptOctets(raw, xmlenc.EncryptOptions{Algorithm: alg, Key: key, MimeType: *mime})
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, doc.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("encrypted %d bytes: %s -> %s\n", len(raw), *in, *out)
	return nil
}

func cmdDecryptBin(args []string) error {
	fs := flag.NewFlagSet("decrypt-bin", flag.ExitOnError)
	in := fs.String("in", "", "input EncryptedData document")
	out := fs.String("out", "", "output binary file")
	keyHex := fs.String("key", "", "content key, hex")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("decrypt-bin requires -in and -out")
	}
	key, err := keyFlag(*keyHex)
	if err != nil {
		return err
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(*out, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	// Stream the plaintext straight to the file; an error mid-stream
	// leaves a partial file, so remove it rather than hand garbage on.
	n, err := xmlenc.DecryptOctetsTo(f, doc.Root(), xmlenc.DecryptOptions{Key: key})
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(*out)
		return err
	}
	fmt.Printf("decrypted %d bytes: %s -> %s\n", n, *in, *out)
	return nil
}
