// Command discbench regenerates every experiment table of the
// reproduction (DESIGN.md index E1–E7 and C1) and prints them in the
// form EXPERIMENTS.md records.
//
// Usage:
//
//	discbench [-table all|e1|e2|e3|e4|e5|e6|e7|c1|obs|library|stream|cluster] [-quick] [-metrics] [-obsjson file] [-libjson file] [-streamjson file] [-clusterjson file]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"discsec/internal/c14n"
	"discsec/internal/experiments"
	"discsec/internal/obs"
	"discsec/internal/workload"
)

var (
	tableFlag       = flag.String("table", "all", "experiment table to run (all, e1..e7, c1, obs, library, stream, cluster)")
	quickFlag       = flag.Bool("quick", false, "fewer iterations (smoke mode)")
	metricsFlag     = flag.Bool("metrics", false, "run the instrumented pipeline and print its per-stage table")
	obsJSONFlag     = flag.String("obsjson", "", "write the instrumented pipeline's metrics snapshot as JSON to this file")
	libJSONFlag     = flag.String("libjson", "", "write the library benchmark report as JSON to this file")
	streamJSONFlag  = flag.String("streamjson", "", "merge the streaming-pipeline benchmark into this JSON file (under the \"streaming\" key)")
	clusterJSONFlag = flag.String("clusterjson", "", "write the cluster-tier benchmark report as JSON to this file")
)

func main() {
	flag.Parse()
	run := map[string]func(){
		"e1": tableE1, "e2": tableE2, "e3": tableE3, "e4": tableE4,
		"e5": tableE5, "e6": tableE6, "e7": tableE7, "c1": tableC1,
		"obs": tableObs, "library": tableLibrary, "stream": tableStream,
		"cluster": tableCluster,
	}
	if *tableFlag == "all" {
		for _, name := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "c1"} {
			run[name]()
		}
		// The obs table only joins "all" on request: its recorder
		// instruments the pipeline, so it stays out of the timing
		// tables unless asked for.
		if *metricsFlag || *obsJSONFlag != "" {
			tableObs()
		}
		return
	}
	fn, ok := run[*tableFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown table %q\n", *tableFlag)
		os.Exit(2)
	}
	fn()
}

// tableObs runs the end-to-end player pipeline under a Recorder and
// prints the per-stage span table (counts, totals, quantiles) plus
// decision counters — the observability view of E6.
func tableObs() {
	header("OBS", "instrumented player pipeline (per-stage spans over Fig. 9)")
	art, err := experiments.AuthorPipeline()
	if err != nil {
		fatal(err)
	}
	rec := obs.NewRecorder()
	ctx := obs.WithRecorder(context.Background(), rec)
	iters := 25
	if *quickFlag {
		iters = 5
	}
	for i := 0; i < iters; i++ {
		if _, err := experiments.PlayerPipelineContext(ctx, art.PackedImage); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("player pipeline x%d (verify+decrypt+policy+run)\n\n", iters)
	snap := rec.Snapshot()
	fmt.Print(snap.StageTable())
	if *obsJSONFlag != "" {
		b, err := snap.MarshalJSONIndent()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*obsJSONFlag, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote metrics snapshot -> %s\n", *obsJSONFlag)
	}
}

// measure runs op repeatedly until the time budget is consumed and
// returns the mean duration.
func measure(op func() error) time.Duration {
	budget := 400 * time.Millisecond
	if *quickFlag {
		budget = 40 * time.Millisecond
	}
	// Warm-up.
	if err := op(); err != nil {
		fmt.Fprintf(os.Stderr, "experiment operation failed: %v\n", err)
		os.Exit(1)
	}
	start := time.Now()
	iters := 0
	for time.Since(start) < budget {
		if err := op(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment operation failed: %v\n", err)
			os.Exit(1)
		}
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

func header(id, title string) {
	fmt.Printf("\n== %s: %s ==\n", id, title)
}

func tableE1() {
	header("E1", "package size overhead, XML security vs OMA DCF (paper §4 / ref [37]: 2.5–5.1x)")
	fmt.Printf("%-12s %12s %12s %8s\n", "payload", "xml-bytes", "dcf-bytes", "ratio")
	for _, n := range experiments.E1Payloads {
		payload := workload.Bytes(n, uint64(n))
		x, err := experiments.BuildXMLPackage(payload)
		if err != nil {
			fatal(err)
		}
		d, err := experiments.BuildDCFPackage(payload)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12d %12d %12d %8.2f\n", n, len(x), len(d), float64(len(x))/float64(len(d)))
	}
}

func tableE2() {
	header("E2", "protect+unprotect throughput, XML vs DCF (paper §4: binary faster than text)")
	fmt.Printf("%-12s %14s %14s %8s\n", "payload", "xml", "dcf", "xml/dcf")
	for _, n := range []int{1024, 16384, 262144} {
		payload := workload.Bytes(n, uint64(n))
		xmlTime := measure(func() error {
			pkg, err := experiments.BuildXMLPackage(payload)
			if err != nil {
				return err
			}
			_, err = experiments.OpenXMLPackage(pkg)
			return err
		})
		dcfTime := measure(func() error {
			pkg, err := experiments.BuildDCFPackage(payload)
			if err != nil {
				return err
			}
			_, err = experiments.OpenDCFPackage(pkg)
			return err
		})
		fmt.Printf("%-12d %14s %14s %8.1f\n", n, xmlTime, dcfTime, float64(xmlTime)/float64(dcfTime))
	}
}

func tableE3() {
	header("E3", "signing/verification by granularity (paper §5.3–5.4, Figs. 4–5)")
	fmt.Printf("%-10s %14s %14s %14s\n", "level", "sign-only", "verify-only", "doc-bytes")
	for _, target := range experiments.GranularityTargets() {
		raw, err := experiments.SignAtLevel(target)
		if err != nil {
			fatal(err)
		}
		signed, err := experiments.ParsedSignedAtLevel(target)
		if err != nil {
			fatal(err)
		}
		signTime := measure(func() error {
			return experiments.SignOnlyAtLevel(target)
		})
		verifyTime := measure(func() error {
			return experiments.VerifyOnly(signed)
		})
		fmt.Printf("%-10s %14s %14s %14d\n", target.Name, signTime, verifyTime, len(raw))
	}
	fmt.Println("(sign-only excludes parse/serialize; verify-only excludes parse)")
}

func tableE4() {
	header("E4", "signature forms (paper Fig. 6: enveloped / enveloping / detached)")
	fmt.Printf("%-12s %14s %14s\n", "form", "sign+verify", "sig-doc-bytes")
	for _, form := range []experiments.SignatureForm{
		experiments.FormEnveloped, experiments.FormEnveloping, experiments.FormDetached,
	} {
		pkg, ext, err := experiments.SignForm(form)
		if err != nil {
			fatal(err)
		}
		t := measure(func() error {
			p2, e2, err := experiments.SignForm(form)
			if err != nil {
				return err
			}
			return experiments.VerifyForm(form, p2, e2)
		})
		_ = ext
		fmt.Printf("%-12s %14s %14d\n", form, t, len(pkg))
	}
}

func tableE5() {
	header("E5", "full vs partial encryption (paper §4, Figs. 7–8: encrypt only the scores)")
	fmt.Printf("%-8s %14s %14s %14s %14s\n", "scores", "enc-full", "enc-partial", "dec-full", "dec-partial")
	for _, entries := range []int{8, 64, 256} {
		encFull := measure(func() error {
			return experiments.EncryptFull(experiments.GameDocument(entries))
		})
		encPartial := measure(func() error {
			return experiments.EncryptScoresOnly(experiments.GameDocument(entries))
		})
		fullDoc := experiments.GameDocument(entries)
		if err := experiments.EncryptFull(fullDoc); err != nil {
			fatal(err)
		}
		fullRaw := fullDoc.Bytes()
		partDoc := experiments.GameDocument(entries)
		if err := experiments.EncryptScoresOnly(partDoc); err != nil {
			fatal(err)
		}
		partRaw := partDoc.Bytes()
		decFull := measure(func() error { return experiments.DecryptAllIn(fullRaw) })
		decPartial := measure(func() error { return experiments.DecryptAllIn(partRaw) })
		fmt.Printf("%-8d %14s %14s %14s %14s\n", entries, encFull, encPartial, decFull, decPartial)
	}

	fmt.Println("\nremainder sweep (scores fixed at 16, growing unencrypted markup+code):")
	fmt.Printf("%-10s %14s %14s %14s %14s %10s\n", "script-stmts", "enc-full", "enc-partial", "dec-full", "dec-partial", "dec-ratio")
	for _, stmts := range []int{50, 200, 800} {
		encFull := measure(func() error {
			return experiments.EncryptFull(experiments.GameDocumentSized(16, stmts))
		})
		encPartial := measure(func() error {
			return experiments.EncryptScoresOnly(experiments.GameDocumentSized(16, stmts))
		})
		fullDoc := experiments.GameDocumentSized(16, stmts)
		if err := experiments.EncryptFull(fullDoc); err != nil {
			fatal(err)
		}
		fullRaw := fullDoc.Bytes()
		partDoc := experiments.GameDocumentSized(16, stmts)
		if err := experiments.EncryptScoresOnly(partDoc); err != nil {
			fatal(err)
		}
		partRaw := partDoc.Bytes()
		decFull := measure(func() error { return experiments.DecryptAllIn(fullRaw) })
		decPartial := measure(func() error { return experiments.DecryptAllIn(partRaw) })
		fmt.Printf("%-10d %14s %14s %14s %14s %10.2f\n",
			stmts, encFull, encPartial, decFull, decPartial, float64(decFull)/float64(decPartial))
	}
}

func tableE6() {
	header("E6", "end-to-end pipeline (paper §7, Fig. 9)")
	authorTime := measure(func() error {
		_, err := experiments.AuthorPipeline()
		return err
	})
	art, err := experiments.AuthorPipeline()
	if err != nil {
		fatal(err)
	}
	playerTime := measure(func() error {
		_, err := experiments.PlayerPipeline(art.PackedImage)
		return err
	})
	fmt.Printf("%-28s %14s\n", "stage", "time")
	fmt.Printf("%-28s %14s\n", "author (sign+encrypt+pack)", authorTime)
	fmt.Printf("%-28s %14s\n", "player (verify+decrypt+run)", playerTime)
	fmt.Printf("%-28s %14d\n", "image bytes", len(art.PackedImage))
}

func tableE7() {
	header("E7", "player cold start by protection configuration (paper §8 feasibility)")
	fmt.Printf("%-22s %14s %14s\n", "configuration", "startup", "image-bytes")
	var clear time.Duration
	for _, cfg := range experiments.StartupConfigs() {
		packed, err := experiments.BuildStartupImage(cfg)
		if err != nil {
			fatal(err)
		}
		require := cfg != experiments.StartupClear
		t := measure(func() error {
			return experiments.RunStartup(packed, require)
		})
		if cfg == experiments.StartupClear {
			clear = t
		}
		fmt.Printf("%-22s %14s %14d\n", cfg, t, len(packed))
	}
	if clear > 0 {
		fmt.Printf("(clear baseline: %s)\n", clear)
	}
}

func tableC1() {
	header("C1", "canonicalization throughput (paper §5.4: XML-C14N)")
	fmt.Printf("%-22s %12s %14s\n", "mode", "doc-bytes", "time")
	for _, size := range []int{1 << 10, 16 << 10, 256 << 10} {
		doc := workload.XMLDocument(size, uint64(size))
		root := doc.Root()
		for _, mode := range []struct {
			name string
			opts c14n.Options
		}{
			{"inclusive", c14n.Options{}},
			{"exclusive", c14n.Options{Exclusive: true}},
		} {
			t := measure(func() error {
				_, err := c14n.Canonicalize(root, mode.opts)
				return err
			})
			fmt.Printf("%-22s %12d %14s\n", mode.name, size, t)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
