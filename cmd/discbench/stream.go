package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"discsec/internal/c14n"
	"discsec/internal/core"
	"discsec/internal/experiments"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
	"discsec/internal/xmlstream"
)

// streamKeyRow compares canonical-key derivation — the front half of
// every cold library fill — between the DOM two-pass (parse the tree,
// canonicalize it into a buffer, hash the buffer) and the single-pass
// streaming pipeline (tokens feed the DOM builder and the incremental
// canonicalizer/digest in the same read).
type streamKeyRow struct {
	DocBytes     int     `json:"doc_bytes"`
	DOMNS        int64   `json:"dom_2pass_ns"`
	StreamNS     int64   `json:"stream_1pass_ns"`
	Speedup      float64 `json:"speedup"`
	DOMAllocs    float64 `json:"dom_allocs"`
	StreamAllocs float64 `json:"stream_allocs"`
}

// streamColdOpen compares a full cold verification (key derivation +
// the Fig. 9 verify/decrypt pipeline) on a signed cluster document.
type streamColdOpen struct {
	DocBytes int     `json:"doc_bytes"`
	DOMNS    int64   `json:"dom_2pass_ns"`
	StreamNS int64   `json:"stream_1pass_ns"`
	Speedup  float64 `json:"speedup"`
}

type streamReport struct {
	KeyRows  []streamKeyRow `json:"key_rows"`
	ColdOpen streamColdOpen `json:"cold_open"`
}

// domKey is the pre-streaming cold path: two passes over the document
// (tree build, then a canonical serialization materialized only to be
// hashed and thrown away).
func domKey(raw []byte) (*xmldom.Document, string, error) {
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return nil, "", err
	}
	canon, err := c14n.CanonicalizeDocument(doc, c14n.Options{Exclusive: true})
	if err != nil {
		return nil, "", err
	}
	sum := sha256.Sum256(canon)
	return doc, fmt.Sprintf("%x", sum), nil
}

// streamKey is the reader-first cold path: one pass feeds the DOM
// builder, the incremental canonicalizer, and the digest together; no
// canonical byte buffer ever exists.
func streamKey(raw []byte) (*xmldom.Document, string, error) {
	b := xmldom.NewStreamBuilder()
	h := sha256.New()
	st, err := c14n.NewStream(h, c14n.Options{Exclusive: true})
	if err != nil {
		return nil, "", err
	}
	if err := xmlstream.Parse(bytes.NewReader(raw), xmlstream.Options{}, b, st); err != nil {
		return nil, "", err
	}
	if err := st.Close(); err != nil {
		return nil, "", err
	}
	return b.Document(), fmt.Sprintf("%x", h.Sum(nil)), nil
}

// tableStream benchmarks the streaming verification engine against the
// DOM two-pass it replaced and (with -streamjson) merges the numbers
// into the committed metrics artifact under the "streaming" key.
func tableStream() {
	header("STREAM", "single-pass streaming cold path vs DOM two-pass (DESIGN.md §14)")

	sizes := []int{64 << 10, 512 << 10, 4 << 20}
	if *quickFlag {
		sizes = []int{64 << 10, 512 << 10}
	}
	report := streamReport{}

	fmt.Println("canonical key derivation (parse + exclusive C14N + SHA-256):")
	fmt.Printf("%-12s %12s %12s %8s %12s %14s\n",
		"doc-bytes", "dom-2pass", "stream-1pass", "speedup", "dom-allocs", "stream-allocs")
	for _, size := range sizes {
		raw := workload.XMLDocument(size, uint64(size)).Bytes()

		// Both paths must agree before either is worth timing.
		_, dk, err := domKey(raw)
		if err != nil {
			fatal(err)
		}
		_, sk, err := streamKey(raw)
		if err != nil {
			fatal(err)
		}
		if dk != sk {
			fatal(fmt.Errorf("stream key %s != dom key %s at %d bytes", sk, dk, size))
		}

		domTime := measure(func() error { _, _, err := domKey(raw); return err })
		streamTime := measure(func() error { _, _, err := streamKey(raw); return err })
		domAllocs := testing.AllocsPerRun(3, func() { domKey(raw) })       //nolint:errcheck // timed above
		streamAllocs := testing.AllocsPerRun(3, func() { streamKey(raw) }) //nolint:errcheck // timed above

		row := streamKeyRow{
			DocBytes:     len(raw),
			DOMNS:        domTime.Nanoseconds(),
			StreamNS:     streamTime.Nanoseconds(),
			Speedup:      float64(domTime) / float64(streamTime),
			DOMAllocs:    domAllocs,
			StreamAllocs: streamAllocs,
		}
		report.KeyRows = append(report.KeyRows, row)
		fmt.Printf("%-12d %12s %12s %8.2f %12.0f %14.0f\n",
			row.DocBytes, domTime, streamTime, row.Speedup, domAllocs, streamAllocs)
	}

	// Full cold open on a signed, partially encrypted cluster: key
	// derivation plus the whole verify/decrypt pipeline. Each
	// iteration re-opens from raw bytes, exactly like a library miss.
	root, creator := experiments.PKIFixture()
	cluster, clips := workload.Cluster(workload.ClusterSpec{
		AVTracks: 2, AppTracks: 2,
		Manifest: workload.ManifestSpec{Regions: 4, MediaItems: 8, Scripts: 2, ScriptStatements: 120},
		Seed:     77,
	})
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster: cluster, Clips: clips,
		Sign: true, SignLevel: core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: experiments.EncKey},
	})
	if err != nil {
		fatal(err)
	}
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		fatal(err)
	}
	opener := &core.Opener{
		Roots:            root.Pool(),
		Decrypt:          xmlenc.DecryptOptions{Key: experiments.EncKey},
		RequireSignature: true,
	}
	ctx := context.Background()
	domCold := measure(func() error {
		doc, _, err := domKey(raw)
		if err != nil {
			return err
		}
		_, err = opener.OpenDocument(ctx, doc)
		return err
	})
	streamCold := measure(func() error {
		doc, _, err := streamKey(raw)
		if err != nil {
			return err
		}
		_, err = opener.OpenDocument(ctx, doc)
		return err
	})
	report.ColdOpen = streamColdOpen{
		DocBytes: len(raw),
		DOMNS:    domCold.Nanoseconds(),
		StreamNS: streamCold.Nanoseconds(),
		Speedup:  float64(domCold) / float64(streamCold),
	}
	fmt.Println("\ncold open, signed cluster (key + full Fig. 9 verify/decrypt):")
	fmt.Printf("%-12s %12s %12s %8s\n", "doc-bytes", "dom-2pass", "stream-1pass", "speedup")
	fmt.Printf("%-12d %12s %12s %8.2f\n", len(raw), domCold, streamCold, report.ColdOpen.Speedup)

	if *streamJSONFlag != "" {
		if err := mergeStreamJSON(*streamJSONFlag, report); err != nil {
			fatal(err)
		}
		fmt.Printf("\nmerged streaming section -> %s\n", *streamJSONFlag)
	}
}

// mergeStreamJSON updates only the "streaming" key of the metrics
// artifact, preserving whatever the obs table last wrote: `make
// metrics` refreshes the stage spans, `make stream-bench` refreshes
// this section, and neither clobbers the other.
func mergeStreamJSON(path string, report streamReport) error {
	doc := map[string]json.RawMessage{}
	if existing, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(existing, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	section, err := json.Marshal(report)
	if err != nil {
		return err
	}
	doc["streaming"] = section
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
