package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"discsec/internal/core"
	"discsec/internal/experiments"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/workload"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// libraryReport is the committed BENCH_library.json shape: the
// cold/warm amortization the shared verification library buys, plus
// the singleflight collapse under contention.
type libraryReport struct {
	Quick       bool    `json:"quick"`
	IndexBytes  int     `json:"index_bytes"`
	ColdNS      int64   `json:"cold_open_ns"`
	WarmNS      int64   `json:"warm_open_ns"`
	Speedup     float64 `json:"warm_speedup"`
	Contended   int     `json:"contended_opens"`
	Fills       int64   `json:"contended_fills"`
	ContendedNS int64   `json:"contended_wall_ns"`
}

// tableLibrary measures the shared verification library: a cold open
// re-runs the full Fig. 9 pipeline (parse, canonicalize, verify,
// decrypt, decode); a warm open against a mounted disc is two map
// lookups. The contended column opens the same uncached document from
// 64 goroutines and reports how many verifications actually ran
// (singleflight should collapse them to one).
func tableLibrary() {
	header("LIB", "shared verification library (cold vs warm vs 64-way contended)")
	_, creator := experiments.PKIFixture()
	cluster, clips := workload.Cluster(workload.ClusterSpec{
		AVTracks:  2,
		AppTracks: 2,
		Manifest: workload.ManifestSpec{
			Regions: 4, MediaItems: 4, Scripts: 2, ScriptStatements: 40,
		},
		ClipDurationMS: 100, ClipBitrateKbps: 200,
		Seed: 7,
	})
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:      cluster,
		Clips:        clips,
		Sign:         true,
		SignLevel:    core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: experiments.EncKey},
		SignClips:    true,
	})
	if err != nil {
		fatal(err)
	}
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		fatal(err)
	}

	newLib := func(rec *obs.Recorder) *library.Library {
		root, _ := experiments.PKIFixture()
		return library.New(
			library.WithOpener(core.Opener{
				Roots:            root.Pool(),
				Decrypt:          xmlenc.DecryptOptions{Key: experiments.EncKey},
				RequireSignature: true,
			}),
			library.WithRecorder(rec),
		)
	}
	ctx := context.Background()

	lib := newLib(obs.NewRecorder())
	if err := lib.Mount(ctx, "bench", im); err != nil {
		fatal(err)
	}
	coldNS := measure(func() error {
		lib.InvalidateAll() // force a full re-verification
		_, _, err := lib.OpenDisc(ctx, "bench")
		return err
	})
	warmNS := measure(func() error {
		_, _, _, err := lib.OpenTrack(ctx, "bench", "t-app-1")
		return err
	})

	// Contention: 64 concurrent opens of the same uncached content.
	const contended = 64
	crec := obs.NewRecorder()
	clib := newLib(crec)
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(contended)
	for i := 0; i < contended; i++ {
		go func() {
			defer wg.Done()
			<-start
			if _, _, err := clib.OpenDocument(ctx, raw); err != nil {
				fatal(err)
			}
		}()
	}
	wallStart := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(wallStart)

	rep := libraryReport{
		Quick:       *quickFlag,
		IndexBytes:  len(raw),
		ColdNS:      int64(coldNS),
		WarmNS:      int64(warmNS),
		Speedup:     float64(coldNS) / float64(warmNS),
		Contended:   contended,
		Fills:       crec.Counter("library.miss"),
		ContendedNS: int64(wall),
	}
	fmt.Printf("%-28s %14s\n", "path", "time")
	fmt.Printf("%-28s %14s\n", "cold open (full pipeline)", coldNS)
	fmt.Printf("%-28s %14s\n", "warm open (mounted disc)", warmNS)
	fmt.Printf("%-28s %14.1fx\n", "warm speedup", rep.Speedup)
	fmt.Printf("%-28s %d opens -> %d verification(s) in %s\n",
		"64-way contended", rep.Contended, rep.Fills, wall)

	if *libJSONFlag != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*libJSONFlag, append(b, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote library benchmark -> %s\n", *libJSONFlag)
	}
}
