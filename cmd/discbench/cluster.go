package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/cluster"
	"discsec/internal/core"
	"discsec/internal/experiments"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/server"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
)

// clusterReport is the committed BENCH_cluster.json shape: what the
// distributed verification tier buys — fleet-wide cold-miss collapse,
// cache-local warm opens over real loopback HTTP, and how fast a
// revocation reaches every edge.
type clusterReport struct {
	Quick          bool  `json:"quick"`
	Edges          int   `json:"edges"`
	DocBytes       int   `json:"doc_bytes"`
	ColdOpens      int   `json:"cold_opens"`
	OriginVerifies int64 `json:"origin_verifies"`
	// ColdDedupeRatio is concurrent cold opens per actual origin
	// verification (higher is better; the fleet-wide singleflight
	// target is ColdOpens).
	ColdDedupeRatio float64 `json:"cold_dedupe_ratio"`
	WarmOpens       int     `json:"warm_opens"`
	WarmP50NS       int64   `json:"warm_p50_ns"`
	WarmP99NS       int64   `json:"warm_p99_ns"`
	// WarmOriginTrips counts origin verifications triggered by the
	// warm phase (the cache-locality claim is that this is zero).
	WarmOriginTrips int64 `json:"warm_origin_trips"`
	// RevocationConvergenceNS is the wall time from Revoke returning
	// to every edge reporting the post-revocation epoch.
	RevocationConvergenceNS int64 `json:"revocation_convergence_ns"`
}

// tableCluster stands up a real loopback fleet — one origin, N edges,
// each behind its own ContentServer — and measures the tier's three
// claims: concurrent cold misses collapse fleet-wide, warm opens are
// cache-local (zero origin round trips), and revocation converges the
// whole fleet.
func tableCluster() {
	header("CLUSTER", "origin/edge verification tier (loopback fleet)")

	edges, sessions, coldOpens := 4, 512, 32
	if *quickFlag {
		edges, sessions, coldOpens = 4, 64, 16
	}

	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		fatal(err)
	}
	originRec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc),
		library.WithRecorder(originRec),
	)
	origin := cluster.NewOrigin(lib,
		cluster.WithOriginRecorder(originRec),
		cluster.WithOriginTrust(svc),
	)
	fleet, stop, err := startFleet(origin, edges)
	if err != nil {
		fatal(err)
	}
	defer stop()

	doc := benchDoc(creator, 7)
	ctx := context.Background()

	// Cold phase: coldOpens concurrent opens of the same never-seen
	// document, spread across the edges.
	var wg sync.WaitGroup
	var coldFails atomic.Int64
	var gate sync.WaitGroup
	gate.Add(1)
	wg.Add(coldOpens)
	for i := 0; i < coldOpens; i++ {
		e := fleet[i%len(fleet)]
		go func() {
			defer wg.Done()
			gate.Wait()
			if _, _, err := e.OpenReader(ctx, bytes.NewReader(doc)); err != nil {
				coldFails.Add(1)
			}
		}()
	}
	gate.Done()
	wg.Wait()
	if n := coldFails.Load(); n > 0 {
		fatal(fmt.Errorf("cluster bench: %d cold opens failed", n))
	}
	originVerifies := originRec.Counter("library.miss")

	// Warm phase: sessions sequential opens round-robin across edges,
	// individually timed for the latency distribution.
	lat := make([]time.Duration, 0, sessions)
	for i := 0; i < sessions; i++ {
		e := fleet[i%len(fleet)]
		start := time.Now()
		_, st, err := e.OpenReader(ctx, bytes.NewReader(doc))
		if err != nil {
			fatal(err)
		}
		if st != cluster.StatusHit {
			fatal(fmt.Errorf("cluster bench: warm open %d status %q, want hit", i, st))
		}
		lat = append(lat, time.Since(start))
	}
	warmTrips := originRec.Counter("library.miss") - originVerifies
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration { return lat[int(q*float64(len(lat)-1))] }

	// Revocation convergence: wall time from Revoke returning until
	// every edge reports the post-revocation epoch.
	revStart := time.Now()
	if err := svc.Revoke(creator.Name, "pw"); err != nil {
		fatal(err)
	}
	want := origin.Epoch()
	for {
		converged := true
		for _, e := range fleet {
			if e.Epoch() != want {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Since(revStart) > 10*time.Second {
			fatal(fmt.Errorf("cluster bench: fleet did not converge on epoch %d", want))
		}
		time.Sleep(100 * time.Microsecond)
	}
	convergence := time.Since(revStart)

	rep := clusterReport{
		Quick:                   *quickFlag,
		Edges:                   edges,
		DocBytes:                len(doc),
		ColdOpens:               coldOpens,
		OriginVerifies:          originVerifies,
		ColdDedupeRatio:         float64(coldOpens) / float64(originVerifies),
		WarmOpens:               sessions,
		WarmP50NS:               pct(0.50).Nanoseconds(),
		WarmP99NS:               pct(0.99).Nanoseconds(),
		WarmOriginTrips:         warmTrips,
		RevocationConvergenceNS: convergence.Nanoseconds(),
	}

	fmt.Printf("%-26s %14v\n", "edges", rep.Edges)
	fmt.Printf("%-26s %14v\n", "cold opens (concurrent)", rep.ColdOpens)
	fmt.Printf("%-26s %14v\n", "origin verifications", rep.OriginVerifies)
	fmt.Printf("%-26s %14.1f\n", "cold dedupe ratio", rep.ColdDedupeRatio)
	fmt.Printf("%-26s %14v\n", "warm opens", rep.WarmOpens)
	fmt.Printf("%-26s %14s\n", "warm p50", pct(0.50))
	fmt.Printf("%-26s %14s\n", "warm p99", pct(0.99))
	fmt.Printf("%-26s %14v\n", "warm origin trips", rep.WarmOriginTrips)
	fmt.Printf("%-26s %14s\n", "revocation convergence", convergence)

	if *clusterJSONFlag != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*clusterJSONFlag, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote cluster benchmark -> %s\n", *clusterJSONFlag)
	}
}

// benchDoc builds a KeyName-signed cluster document so origin
// verification exercises the trust service and revocation genuinely
// kills it.
func benchDoc(creator *keymgmt.Identity, seed uint64) []byte {
	cl, _ := workload.Cluster(workload.ClusterSpec{
		AppTracks: 1,
		Manifest:  workload.ManifestSpec{Regions: 2, MediaItems: 2, Scripts: 1, ScriptStatements: 20},
		Seed:      seed,
	})
	doc := cl.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		fatal(err)
	}
	return doc.Bytes()
}

// startFleet serves the origin and n edges, each behind its own
// ContentServer on a loopback listener, and joins every edge. The
// returned stop function tears the whole fleet down.
func startFleet(origin *cluster.Origin, n int) ([]*cluster.Edge, func(), error) {
	originCS := server.NewContentServer(server.WithClusterOrigin(origin))
	originURL, stopOrigin, err := originCS.Serve("127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	stops := []func(){func() { _ = stopOrigin() }}
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}

	fleet := make([]*cluster.Edge, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stopAll()
			return nil, nil, err
		}
		e := cluster.NewEdge(fmt.Sprintf("edge-%d", i), "http://"+ln.Addr().String(), originURL,
			cluster.WithEdgeRecorder(obs.NewRecorder()))
		srv := &http.Server{Handler: server.NewContentServer(server.WithClusterEdge(e))}
		//discvet:ignore goroutineleak Serve returns when the stop func below calls srv.Close
		go srv.Serve(ln) //nolint:errcheck // shutdown path returns ErrServerClosed
		stops = append(stops, func() { _ = srv.Close() })
		if err := e.Join(context.Background()); err != nil {
			stopAll()
			return nil, nil, err
		}
		fleet = append(fleet, e)
	}

	// Join broadcasts fan out asynchronously after each response; wait
	// for every edge to see the full membership before benchmarking
	// ring routing.
	deadline := time.Now().Add(5 * time.Second)
	for _, e := range fleet {
		for e.Ring().Len() != n {
			if time.Now().After(deadline) {
				stopAll()
				return nil, nil, fmt.Errorf("cluster bench: %s never saw full membership", e.Name())
			}
			time.Sleep(time.Millisecond)
		}
	}
	return fleet, stopAll, nil
}
