// Command discauthor assembles a protected disc image: cluster document
// plus clip payloads plus permission request files, signed at the chosen
// granularity, with optional post-signature encryption and a detached
// clip signature. Together with discsign, disccrypt, and discplayer it
// completes the CLI authoring chain:
//
//	discauthor build → (publish) → discplayer fetch → discplayer run
//
// Usage:
//
//	discauthor build -cluster cluster.xml -out disc.img -keys studio
//	                 [-clips dir] [-perm app-1=perm.xml]
//	                 [-level cluster] [-id X]
//	                 [-encrypt "//manifest/code"] [-enckey <hex>]
//	                 [-sign-clips]
//	discauthor demo  -out disc.img -keys studio   # generate a demo disc
//	discauthor inspect -image disc.img
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/player"
	"discsec/internal/rights"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = cmdBuild(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "license":
		err = cmdLicense(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "discauthor:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: discauthor build|demo|inspect|license [flags]")
	os.Exit(2)
}

// grantFlags collects repeated -grant principal:right:resource[:maxuses]
// flags.
type grantFlags []rights.Grant

func (g *grantFlags) String() string { return fmt.Sprint([]rights.Grant(*g)) }

func (g *grantFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return fmt.Errorf("-grant wants principal:right:resource[:maxuses], got %q", v)
	}
	grant := rights.Grant{
		Principal: parts[0],
		Right:     rights.Right(parts[1]),
		Resource:  parts[2],
	}
	if len(parts) == 4 {
		n, err := strconv.Atoi(parts[3])
		if err != nil || n < 1 {
			return fmt.Errorf("-grant maxuses %q must be a positive integer", parts[3])
		}
		grant.MaxUses = n
	}
	*g = append(*g, grant)
	return nil
}

// cmdLicense creates a signed rights license and attaches it to a disc
// image (or writes it to a file).
func cmdLicense(args []string) error {
	fs := flag.NewFlagSet("license", flag.ExitOnError)
	keys := fs.String("keys", "", "rights issuer identity directory (required)")
	imagePath := fs.String("image", "", "disc image to attach the license to (rewritten in place)")
	out := fs.String("out", "", "write the signed license to this file instead of an image")
	id := fs.String("id", "license-1", "license id")
	var grants grantFlags
	fs.Var(&grants, "grant", "principal:right:resource[:maxuses] (repeatable)")
	fs.Parse(args)
	if *keys == "" || len(grants) == 0 {
		return fmt.Errorf("license requires -keys and at least one -grant")
	}
	if (*imagePath == "") == (*out == "") {
		return fmt.Errorf("license requires exactly one of -image or -out")
	}
	identity, err := keymgmt.LoadIdentity(*keys)
	if err != nil {
		return err
	}
	lic := &rights.License{ID: *id, Issuer: identity.Name, Grants: grants}
	doc := lic.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     identity.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: identity.Name, Certificates: identity.Chain},
	}); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, doc.Bytes(), 0o644); err != nil {
			return err
		}
		fmt.Printf("signed license written to %s (%d grants)\n", *out, len(grants))
		return nil
	}
	im, err := disc.LoadImageFile(*imagePath)
	if err != nil {
		return err
	}
	if err := im.Put(player.LicensePath, doc.Bytes()); err != nil {
		return err
	}
	if err := im.SaveFile(*imagePath); err != nil {
		return err
	}
	fmt.Printf("signed license attached to %s at %s (%d grants)\n", *imagePath, player.LicensePath, len(grants))
	return nil
}

// permFlags collects repeated -perm manifestID=file flags.
type permFlags map[string]string

func (p permFlags) String() string { return fmt.Sprint(map[string]string(p)) }

func (p permFlags) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("-perm wants manifestID=file, got %q", v)
	}
	p[parts[0]] = parts[1]
	return nil
}

// encryptFlags collects repeated -encrypt path flags.
type encryptFlags []string

func (e *encryptFlags) String() string { return strings.Join(*e, ",") }

func (e *encryptFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	clusterPath := fs.String("cluster", "", "cluster XML document")
	out := fs.String("out", "disc.img", "output image file")
	keys := fs.String("keys", "", "identity directory from 'discsign keygen' (omit to skip signing)")
	clipsDir := fs.String("clips", "", "directory of .m2ts clip files (stored under CLIPS/)")
	levelName := fs.String("level", "cluster", "signature granularity")
	id := fs.String("id", "", "target Id for narrower levels")
	encKeyHex := fs.String("enckey", "", "content encryption key, hex")
	signClips := fs.Bool("sign-clips", false, "add a detached signature over all clips")
	perms := permFlags{}
	fs.Var(perms, "perm", "manifestID=permission-file (repeatable)")
	var encPaths encryptFlags
	fs.Var(&encPaths, "encrypt", "element query path to encrypt after signing (repeatable)")
	fs.Parse(args)
	if *clusterPath == "" {
		return fmt.Errorf("build requires -cluster")
	}

	raw, err := os.ReadFile(*clusterPath)
	if err != nil {
		return err
	}
	cluster, err := disc.ParseClusterString(string(raw))
	if err != nil {
		return err
	}

	spec := core.PackageSpec{Cluster: cluster}

	if len(perms) > 0 {
		spec.PermissionRequests = map[string]*access.PermissionRequest{}
		for mid, file := range perms {
			prRaw, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			pr, err := access.ParsePermissionRequestString(string(prRaw))
			if err != nil {
				return fmt.Errorf("%s: %w", file, err)
			}
			spec.PermissionRequests[mid] = pr
		}
	}

	if *clipsDir != "" {
		spec.Clips = map[string][]byte{}
		entries, err := os.ReadDir(*clipsDir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".m2ts") {
				continue
			}
			b, err := os.ReadFile(filepath.Join(*clipsDir, e.Name()))
			if err != nil {
				return err
			}
			spec.Clips["CLIPS/"+e.Name()] = b
		}
		fmt.Printf("loaded %d clips from %s\n", len(spec.Clips), *clipsDir)
	}

	var identity *keymgmt.Identity
	if *keys != "" {
		identity, err = keymgmt.LoadIdentity(*keys)
		if err != nil {
			return err
		}
		spec.Sign = true
		if spec.SignLevel, err = levelByName(*levelName); err != nil {
			return err
		}
		spec.SignID = *id
	}
	spec.SignClips = *signClips
	if *signClips && !spec.Sign {
		return fmt.Errorf("-sign-clips requires -keys")
	}

	if len(encPaths) > 0 {
		if *encKeyHex == "" {
			return fmt.Errorf("-encrypt requires -enckey")
		}
		key, err := hex.DecodeString(*encKeyHex)
		if err != nil {
			return fmt.Errorf("-enckey: %w", err)
		}
		spec.EncryptPaths = encPaths
		spec.Encryption = xmlenc.EncryptOptions{Key: key}
	}

	p := &core.Protector{Identity: identity}
	im, err := p.Package(spec)
	if err != nil {
		return err
	}
	if err := im.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d payload bytes, %d files)\n", *out, im.Size(), len(im.Paths()))
	return nil
}

// cmdDemo generates a self-contained demo disc, so the full CLI chain
// can be exercised without hand-writing content.
func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	out := fs.String("out", "disc.img", "output image file")
	keys := fs.String("keys", "", "identity directory (required)")
	fs.Parse(args)
	if *keys == "" {
		return fmt.Errorf("demo requires -keys (run 'discsign keygen' first)")
	}
	identity, err := keymgmt.LoadIdentity(*keys)
	if err != nil {
		return err
	}
	cluster, clips := workload.Cluster(workload.ClusterSpec{
		AVTracks: 1, AppTracks: 1,
		Manifest: workload.ManifestSpec{
			Regions: 2, MediaItems: 4, ScriptStatements: 20, HighScoreEntries: 5,
		},
		ClipDurationMS: 500, ClipBitrateKbps: 4000, Seed: 42,
	})
	p := &core.Protector{Identity: identity}
	im, err := p.Package(core.PackageSpec{
		Cluster: cluster,
		Clips:   clips,
		PermissionRequests: map[string]*access.PermissionRequest{
			"app-1": {AppID: "app-1", Permissions: []access.Permission{
				{Name: access.PermGraphicsPlane},
				{Name: access.PermLocalStorageRead, Target: "app-1/*"},
				{Name: access.PermLocalStorageWrite, Target: "app-1/*"},
			}},
		},
		Sign:      true,
		SignLevel: core.LevelCluster,
		SignClips: true,
	})
	if err != nil {
		return err
	}
	if err := im.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("demo disc written to %s; run it with:\n", *out)
	fmt.Printf("  discplayer run -image %s -roots <root.pem>\n", *out)
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	imagePath := fs.String("image", "", "disc image file")
	fs.Parse(args)
	if *imagePath == "" {
		return fmt.Errorf("inspect requires -image")
	}
	im, err := disc.LoadImageFile(*imagePath)
	if err != nil {
		return err
	}
	fmt.Printf("image: %d files, %d payload bytes\n", len(im.Paths()), im.Size())
	for _, p := range im.Paths() {
		b, _ := im.Get(p)
		fmt.Printf("  %-40s %10d\n", p, len(b))
	}
	idx, err := im.ReadIndexDocumentBytes()
	if err != nil {
		return nil // image without index: listing is all we can do
	}
	doc, err := xmldom.ParseBytes(idx)
	if err != nil {
		return err
	}
	sigs := 0
	encs := 0
	doc.Root().Walk(func(n xmldom.Node) bool {
		if e, ok := n.(*xmldom.Element); ok {
			switch e.Local {
			case "Signature":
				sigs++
			case "EncryptedData":
				encs++
			}
		}
		return true
	})
	fmt.Printf("index: %d signature(s), %d encrypted region(s)\n", sigs, encs)
	return nil
}

func levelByName(s string) (core.Level, error) {
	switch s {
	case "cluster":
		return core.LevelCluster, nil
	case "track":
		return core.LevelTrack, nil
	case "manifest":
		return core.LevelManifest, nil
	case "markup":
		return core.LevelMarkup, nil
	case "code":
		return core.LevelCode, nil
	default:
		return 0, fmt.Errorf("unknown level %q", s)
	}
}
