// Command discplayer is the reference player front end: it loads a disc
// image (local file or downloaded from a content server), runs the
// Fig. 9 security pipeline (decrypt → verify → permissions), and
// executes the selected interactive application, printing the
// verification report, granted rights, presentation schedule, and
// script output.
//
// Usage:
//
//	discplayer run   -image disc.img -roots root.pem [-track t-app-1] [-key <hex>] [-policy policy.xml] [-allow-unsigned]
//	discplayer fetch -url http://host:port -name discs/feature.img -out disc.img
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"os"

	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/obs"
	"discsec/internal/player"
	"discsec/internal/server"
	"discsec/internal/xmlenc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "play":
		err = cmdPlay(os.Args[2:])
	case "fetch":
		err = cmdFetch(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "discplayer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: discplayer run|play|fetch [flags]")
	os.Exit(2)
}

// cmdPlay plays an A/V track: clip signature verification, stream
// validation, and — when the disc carries a rights license — license
// enforcement for the given device identity.
func cmdPlay(args []string) error {
	fs := flag.NewFlagSet("play", flag.ExitOnError)
	imagePath := fs.String("image", "", "disc image file")
	rootsPath := fs.String("roots", "", "PEM file with trusted roots")
	trackID := fs.String("track", "", "A/V track to play (default: first A/V track)")
	device := fs.String("device", "", "device identity for license enforcement (requires a disc license)")
	storageDir := fs.String("storage", "", "directory for persistent local storage (license use counts, saves)")
	allowUnsigned := fs.Bool("allow-unsigned", false, "load unsigned content")
	metrics := fs.Bool("metrics", false, "print the per-stage observability table after the run")
	fs.Parse(args)
	if *imagePath == "" {
		return fmt.Errorf("play requires -image")
	}
	im, err := disc.LoadImageFile(*imagePath)
	if err != nil {
		return err
	}
	storage, err := openStorage(*storageDir)
	if err != nil {
		return err
	}
	opts := []player.Option{
		player.WithStorage(storage),
		player.WithRequireSignature(!*allowUnsigned),
		player.WithPolicy(defaultPolicy()),
	}
	rec := newRunRecorder(*metrics)
	if rec != nil {
		defer func() { fmt.Print("\n" + rec.Snapshot().StageTable()) }()
		opts = append(opts, player.WithRecorder(rec))
	}
	if *rootsPath != "" {
		pool, err := keymgmt.LoadCertPool(*rootsPath)
		if err != nil {
			return err
		}
		opts = append(opts, player.WithTrustPool(pool))
	} else if !*allowUnsigned {
		return fmt.Errorf("play requires -roots unless -allow-unsigned is set")
	}
	engine := player.NewEngine(opts...)
	sess, err := engine.Load(context.Background(), im)
	if err != nil {
		return fmt.Errorf("SECURITY PROCESSING FAILED: %w", err)
	}
	id := *trackID
	if id == "" {
		avs := sess.Cluster.AVTracks()
		if len(avs) == 0 {
			return fmt.Errorf("image has no A/V tracks")
		}
		id = avs[0].ID
	}
	var rep *player.PlaybackReport
	if *device != "" {
		rep, err = sess.PlayTrackLicensed(*device, id)
	} else {
		rep, err = sess.PlayTrack(id)
	}
	if err != nil {
		return fmt.Errorf("PLAYBACK REFUSED: %w", err)
	}
	fmt.Printf("played track %q (%d ms total)\n", rep.TrackID, rep.TotalMS)
	if rep.SignatureVerified {
		fmt.Printf("clip signature verified (signer cn=%q)\n", rep.SignerCN)
	}
	for _, c := range rep.Clips {
		fmt.Printf("  clip %-10s %8d bytes %6d packets  %dms..%dms\n",
			c.ClipID, c.Bytes, c.Packets, c.InMS, c.OutMS)
	}
	return nil
}

func cmdFetch(args []string) error {
	fs := flag.NewFlagSet("fetch", flag.ExitOnError)
	url := fs.String("url", "", "content server base URL")
	name := fs.String("name", "", "published item name")
	out := fs.String("out", "disc.img", "output file")
	fs.Parse(args)
	if *url == "" || *name == "" {
		return fmt.Errorf("fetch requires -url and -name")
	}
	d := &server.Downloader{}
	b, err := d.Fetch(*url, *name)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("downloaded %d bytes -> %s\n", len(b), *out)
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	imagePath := fs.String("image", "", "disc image file")
	rootsPath := fs.String("roots", "", "PEM file with trusted roots")
	trackID := fs.String("track", "", "application track to run (default: first application track)")
	keyHex := fs.String("key", "", "content decryption key, hex")
	policyPath := fs.String("policy", "", "platform policy XML (default: permit verified apps)")
	storageDir := fs.String("storage", "", "directory for persistent local storage (license use counts, saves)")
	allowUnsigned := fs.Bool("allow-unsigned", false, "load unsigned content")
	metrics := fs.Bool("metrics", false, "print the per-stage observability table after the run")
	fs.Parse(args)
	if *imagePath == "" {
		return fmt.Errorf("run requires -image")
	}

	im, err := disc.LoadImageFile(*imagePath)
	if err != nil {
		return err
	}

	storage, err := openStorage(*storageDir)
	if err != nil {
		return err
	}
	opts := []player.Option{
		player.WithStorage(storage),
		player.WithRequireSignature(!*allowUnsigned),
	}
	rec := newRunRecorder(*metrics)
	if rec != nil {
		defer func() { fmt.Print("\n" + rec.Snapshot().StageTable()) }()
		opts = append(opts, player.WithRecorder(rec))
	}
	if *rootsPath != "" {
		pool, err := keymgmt.LoadCertPool(*rootsPath)
		if err != nil {
			return err
		}
		opts = append(opts, player.WithTrustPool(pool))
	} else if !*allowUnsigned {
		return fmt.Errorf("run requires -roots unless -allow-unsigned is set")
	}
	if *keyHex != "" {
		key, err := hex.DecodeString(*keyHex)
		if err != nil {
			return fmt.Errorf("-key: %w", err)
		}
		opts = append(opts, player.WithDecryptKeys(xmlenc.DecryptOptions{Key: key}))
	}
	if *policyPath != "" {
		polRaw, err := os.ReadFile(*policyPath)
		if err != nil {
			return err
		}
		ps, err := access.ParsePolicySetString(string(polRaw))
		if err != nil {
			return err
		}
		opts = append(opts, player.WithPolicy(&access.PDP{PolicySet: *ps}))
	} else {
		opts = append(opts, player.WithPolicy(defaultPolicy()))
	}
	engine := player.NewEngine(opts...)

	sess, err := engine.Load(context.Background(), im)
	if err != nil {
		return fmt.Errorf("SECURITY PROCESSING FAILED — application barred: %w", err)
	}
	fmt.Printf("loaded %q: verified=%v signer=%q\n", sess.Cluster.Title, sess.Verified(), sess.SignerName())
	for i, rep := range sess.OpenResult.Signatures {
		fmt.Printf("  signature %d: cn=%q chain=%v decrypted-before-verify=%d\n",
			i+1, rep.SignerCN, rep.ChainValidated, rep.DecryptedBeforeVerify)
	}

	id := *trackID
	if id == "" {
		apps := sess.Cluster.ApplicationTracks()
		if len(apps) == 0 {
			return fmt.Errorf("image has no application tracks")
		}
		id = apps[0].ID
	}
	rep, err := sess.RunApplication(id)
	if err != nil {
		return err
	}

	fmt.Printf("\napplication %q\n", rep.AppID)
	fmt.Println("granted permissions:")
	for _, p := range rep.Granted {
		fmt.Printf("  + %s\n", p)
	}
	for _, p := range rep.Denied {
		fmt.Printf("  - %s (denied)\n", p)
	}
	if len(rep.Events) > 0 {
		fmt.Println("presentation schedule:")
		for _, ev := range rep.Events {
			fmt.Printf("  %6dms..%6dms %-6s region=%-10s src=%s\n", ev.StartMS, ev.EndMS, ev.Kind, ev.Region, ev.Src)
		}
	}
	if len(rep.Log) > 0 {
		fmt.Println("script output:")
		for _, l := range rep.Log {
			fmt.Printf("  | %s\n", l)
		}
	}
	if len(rep.DeniedOps) > 0 {
		fmt.Println("denied operations:")
		for _, d := range rep.DeniedOps {
			fmt.Printf("  ! %s\n", d)
		}
	}
	for _, e := range rep.ScriptErrors {
		fmt.Printf("script error: %s\n", e)
	}
	return nil
}

// newRunRecorder returns an observability recorder when -metrics is
// set, nil otherwise (nil keeps the pipeline uninstrumented).
func newRunRecorder(metrics bool) *obs.Recorder {
	if !metrics {
		return nil
	}
	return obs.NewRecorder()
}

// openStorage returns directory-backed storage when a path is given,
// in-memory storage otherwise.
func openStorage(dir string) (*disc.LocalStorage, error) {
	if dir == "" {
		return disc.NewLocalStorage(0), nil
	}
	return disc.OpenLocalStorage(dir, 0)
}

// defaultPolicy permits any request from a verified application and
// denies everything from unverified ones.
func defaultPolicy() *access.PDP {
	return &access.PDP{PolicySet: access.PolicySet{
		ID:        "discplayer-default",
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			ID:        "verified-gate",
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					ID:     "deny-unverified",
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{ID: "permit-verified", Effect: access.EffectPermit},
			},
		}},
	}}
}
