package discsec

import (
	"testing"

	"discsec/internal/analysis"
)

// TestDiscvet runs the project's static-analysis suite over the whole
// module, so `go test ./...` enforces the security invariants
// (constant-time comparisons, no math/rand key material, %w wrapping,
// the single-XML-parser rule, lock hygiene, the interprocedural
// dataflow rules: taintflow's verify-before-execute, unverifiedwrite's
// verify-before-persist, auditpath's audited refusals, and the v3
// concurrency/allocation rules: lockorder's acyclic lock ordering,
// goroutineleak's terminating goroutines, hotpathalloc's
// allocation-free //discvet:hotpath closure) on every change. The
// analyzer package itself is in the analyzed set, so discvet
// self-hosts. The same suite is available standalone as
// `go run ./cmd/discvet ./...` and `make lint`; stale suppressions are
// reported too (uselessignore), so the zero-findings state cannot rot.
func TestDiscvet(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("discvet found %d issue(s); fix them or add a justified //discvet:ignore <rule> comment", len(diags))
	}
}
