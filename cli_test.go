package discsec

// End-to-end test of the command-line tools: builds the binaries and
// drives the full authoring → serving → playing chain through their
// real CLIs. Skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"discsec/internal/server"
)

func buildTools(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir, "./cmd/...")
	cmd.Dir = mustGetwd(t)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}
	return dir
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func runTool(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func runToolExpectFailure(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v succeeded, expected failure\n%s", name, args, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end test builds binaries; skipped with -short")
	}
	bin := buildTools(t)

	// PKI bootstrap.
	out := runTool(t, bin, "discsign", "keygen", "-dir", "studio", "-name", "CLI Test Studio")
	if !strings.Contains(out, "issued identity") {
		t.Fatalf("keygen output: %s", out)
	}
	roots := filepath.Join(bin, "root", "root.pem")

	// Author a demo disc.
	runTool(t, bin, "discauthor", "demo", "-out", "demo.img", "-keys", "studio")
	out = runTool(t, bin, "discauthor", "inspect", "-image", "demo.img")
	if !strings.Contains(out, "1 signature(s)") {
		t.Fatalf("inspect output: %s", out)
	}

	// Serve it and fetch it back via the downloader CLI.
	cs := server.NewContentServer()
	img, err := os.ReadFile(filepath.Join(bin, "demo.img"))
	if err != nil {
		t.Fatal(err)
	}
	cs.PublishResource("discs/demo.img", img, "application/octet-stream")
	base, shutdown, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	runTool(t, bin, "discplayer", "fetch", "-url", base, "-name", "discs/demo.img", "-out", "fetched.img")

	// Play the fetched disc.
	out = runTool(t, bin, "discplayer", "run", "-image", "fetched.img", "-roots", roots)
	if !strings.Contains(out, "verified=true") {
		t.Fatalf("run output: %s", out)
	}
	if !strings.Contains(out, "granted permissions") {
		t.Fatalf("run output missing permissions: %s", out)
	}

	// Tamper with the image index: the player must bar it. Corrupting
	// the container itself is caught by the container digest; go
	// deeper by rebuilding a valid container with a modified index via
	// disccrypt on a signed doc — simpler: flip a byte and expect the
	// container check to fire.
	raw, err := os.ReadFile(filepath.Join(bin, "fetched.img"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(filepath.Join(bin, "tampered.img"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out = runToolExpectFailure(t, bin, "discplayer", "run", "-image", "tampered.img", "-roots", roots)
	if !strings.Contains(out, "corrupt") && !strings.Contains(out, "FAILED") {
		t.Fatalf("tampered run output: %s", out)
	}

	// Sign/verify a document via discsign, encrypt/decrypt via
	// disccrypt, verify again.
	clusterXML := `<cluster xmlns="urn:discsec:cluster" title="CLI"><track Id="t" kind="application"><manifest Id="m1"><markup/><code><script language="ecmascript">var v = 7;</script></code></manifest></track></cluster>`
	if err := os.WriteFile(filepath.Join(bin, "c.xml"), []byte(clusterXML), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, bin, "discsign", "sign", "-in", "c.xml", "-out", "signed.xml", "-keys", "studio", "-level", "manifest", "-id", "m1")
	runTool(t, bin, "discsign", "verify", "-in", "signed.xml", "-roots", roots)

	key := strings.TrimSpace(runTool(t, bin, "disccrypt", "genkey", "-alg", "aes256-gcm"))
	runTool(t, bin, "disccrypt", "encrypt", "-in", "signed.xml", "-out", "enc.xml", "-key", key, "-path", "//manifest/code")
	encBytes, err := os.ReadFile(filepath.Join(bin, "enc.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(encBytes), "var v = 7;") {
		t.Fatal("plaintext leaked after disccrypt encrypt")
	}
	runTool(t, bin, "disccrypt", "decrypt", "-in", "enc.xml", "-out", "dec.xml", "-key", key)
	runTool(t, bin, "discsign", "verify", "-in", "dec.xml", "-roots", roots)

	// Wrong key fails.
	runToolExpectFailure(t, bin, "disccrypt", "decrypt", "-in", "enc.xml", "-out", "dec2.xml", "-key", strings.Repeat("00", 32))

	// Rights license over the CLI: grant two plays to one device, play
	// with persistent storage, third play and a stranger refused.
	runTool(t, bin, "discauthor", "license", "-keys", "studio", "-image", "demo.img",
		"-grant", "device-1:play:t-av-1:2")
	playArgs := []string{"play", "-image", "demo.img", "-roots", roots, "-device", "device-1", "-storage", "pstore"}
	out = runTool(t, bin, "discplayer", playArgs...)
	if !strings.Contains(out, "clip signature verified") {
		t.Fatalf("play output: %s", out)
	}
	runTool(t, bin, "discplayer", playArgs...)
	out = runToolExpectFailure(t, bin, "discplayer", playArgs...)
	if !strings.Contains(out, "exhausted") {
		t.Fatalf("third play output: %s", out)
	}
	out = runToolExpectFailure(t, bin, "discplayer",
		"play", "-image", "demo.img", "-roots", roots, "-device", "stranger", "-storage", "pstore")
	if !strings.Contains(out, "no applicable grant") {
		t.Fatalf("stranger play output: %s", out)
	}

	// discbench smoke run (quick mode, one table).
	out = runTool(t, bin, "discbench", "-quick", "-table", "e1")
	if !strings.Contains(out, "ratio") {
		t.Fatalf("discbench output: %s", out)
	}
}
