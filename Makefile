# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race lint lint-baseline race faults check bench metrics tools examples cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Static analysis: go vet plus the project-specific discvet suite
# (constant-time comparisons, no math/rand key material, %w wrapping,
# single-XML-parser rule, lock hygiene, and the interprocedural
# verify-before-execute dataflow rules). See internal/analysis.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/discvet ./...

# Like lint, but findings recorded in discvet.baseline.json are
# accepted: CI fails only on NEW findings. Refresh the baseline with
# `go run ./cmd/discvet -writebaseline discvet.baseline.json ./...`.
lint-baseline:
	$(GO) run ./cmd/discvet -baseline discvet.baseline.json ./...

race:
	$(GO) test -race ./...
	$(GO) test -race ./internal/analysis/...

# Fault-matrix gate: the deterministic fault-injection suites
# (internal/faults schedules driving resets, timeouts, stalls,
# truncation, corruption, 5xx bursts, and XKMS outages through the
# downloader, trust client, and end-to-end player pipeline), always
# under the race detector.
faults:
	$(GO) test -race -run 'Fault|Resilience|Retry|Resume|Degraded|Shed|Cancel' \
		./internal/faults/ ./internal/resilience/ ./internal/server/ \
		./internal/keymgmt/ ./internal/player/

# The full gate CI runs on every change.
check: build lint lint-baseline race faults metrics

bench:
	$(GO) test -bench=. -benchmem ./...

# Observability smoke: run the instrumented player pipeline and emit
# the per-stage span medians (see internal/obs, DESIGN.md §9).
metrics:
	$(GO) run ./cmd/discbench -table obs -quick -obsjson BENCH_obs.json

# Regenerate every experiment table (E1-E7, C1).
tables:
	$(GO) run ./cmd/discbench

tools:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gamestore
	$(GO) run ./examples/downloadapp
	$(GO) run ./examples/endtoend
	$(GO) run ./examples/licensedplayback

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf bin cover.out test_output.txt bench_output.txt BENCH_obs.json discvet.sarif
