# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-race lint race check bench tools examples cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Static analysis: go vet plus the project-specific discvet suite
# (constant-time comparisons, no math/rand key material, %w wrapping,
# single-XML-parser rule, lock hygiene). See internal/analysis.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/discvet ./...

race:
	$(GO) test -race ./...

# The full gate CI runs on every change.
check: build lint race

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment table (E1-E7, C1).
tables:
	$(GO) run ./cmd/discbench

tools:
	mkdir -p bin
	$(GO) build -o bin/ ./cmd/...

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/gamestore
	$(GO) run ./examples/downloadapp
	$(GO) run ./examples/endtoend
	$(GO) run ./examples/licensedplayback

cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1

clean:
	rm -rf bin cover.out test_output.txt bench_output.txt
