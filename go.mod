module discsec

go 1.22
