package markup

import "fmt"

// Recursive-descent parser for the ECMAScript subset.

type parser struct {
	toks []token
	pos  int
}

// ParseScript parses source text into an executable Program.
func ParseScript(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var body []stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	return &Program{body: body}, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, &SyntaxError{Line: t.line, Msg: fmt.Sprintf("expected %q, found %s", want, t)}
	}
	p.pos++
	return t, nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

// --- statements --------------------------------------------------------

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	switch {
	case p.at(tokKeyword, "var"):
		return p.varStatement()
	case p.at(tokKeyword, "function"):
		return p.funcDeclaration()
	case p.at(tokKeyword, "if"):
		return p.ifStatement()
	case p.at(tokKeyword, "while"):
		return p.whileStatement()
	case p.at(tokKeyword, "for"):
		return p.forStatement()
	case p.at(tokKeyword, "return"):
		p.pos++
		rs := returnStmt{line: t.line}
		if !p.at(tokPunct, ";") && !p.at(tokPunct, "}") && !p.at(tokEOF, "") {
			v, err := p.expression()
			if err != nil {
				return nil, err
			}
			rs.value = v
		}
		p.accept(tokPunct, ";")
		return rs, nil
	case p.at(tokKeyword, "break"):
		p.pos++
		p.accept(tokPunct, ";")
		return breakStmt{line: t.line}, nil
	case p.at(tokKeyword, "continue"):
		p.pos++
		p.accept(tokPunct, ";")
		return continueStmt{line: t.line}, nil
	case p.at(tokPunct, "{"):
		return p.blockStatement()
	case p.at(tokPunct, ";"):
		p.pos++
		return blockStmt{}, nil
	default:
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.accept(tokPunct, ";")
		return exprStmt{x: x}, nil
	}
}

func (p *parser) varStatement() (stmt, error) {
	line := p.cur().line
	p.pos++ // var
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	vs := varStmt{name: name.text, line: line}
	if p.accept(tokPunct, "=") {
		init, err := p.expression()
		if err != nil {
			return nil, err
		}
		vs.init = init
	}
	p.accept(tokPunct, ";")
	return vs, nil
}

func (p *parser) funcDeclaration() (stmt, error) {
	line := p.cur().line
	p.pos++ // function
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	fn, err := p.funcRest()
	if err != nil {
		return nil, err
	}
	return funcDecl{name: name.text, fn: fn, line: line}, nil
}

// funcRest parses "(params) { body }".
func (p *parser) funcRest() (funcLit, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return funcLit{}, err
	}
	var params []string
	for !p.at(tokPunct, ")") {
		id, err := p.expect(tokIdent, "")
		if err != nil {
			return funcLit{}, err
		}
		params = append(params, id.text)
		if !p.accept(tokPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return funcLit{}, err
	}
	body, err := p.blockStatement()
	if err != nil {
		return funcLit{}, err
	}
	return funcLit{params: params, body: body.(blockStmt).body}, nil
}

func (p *parser) blockStatement() (stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var body []stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, p.errorf("unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
	p.pos++ // }
	return blockStmt{body: body}, nil
}

func (p *parser) ifStatement() (stmt, error) {
	p.pos++ // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	st := ifStmt{cond: cond, then: then}
	if p.accept(tokKeyword, "else") {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		st.els = els
	}
	return st, nil
}

func (p *parser) whileStatement() (stmt, error) {
	p.pos++ // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return whileStmt{cond: cond, body: body}, nil
}

func (p *parser) forStatement() (stmt, error) {
	p.pos++ // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fs := forStmt{}
	if !p.at(tokPunct, ";") {
		if p.at(tokKeyword, "var") {
			s, err := p.varStatement() // consumes optional ';'
			if err != nil {
				return nil, err
			}
			fs.init = s
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			fs.init = exprStmt{x: x}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.pos++ // ;
	}
	if !p.at(tokPunct, ";") {
		cond, err := p.expression()
		if err != nil {
			return nil, err
		}
		fs.cond = cond
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tokPunct, ")") {
		post, err := p.expression()
		if err != nil {
			return nil, err
		}
		fs.post = post
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	fs.body = body
	return fs, nil
}

// --- expressions --------------------------------------------------------

func (p *parser) expression() (expr, error) {
	return p.assignment()
}

func (p *parser) assignment() (expr, error) {
	left, err := p.conditional()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/="} {
		if p.at(tokPunct, op) {
			line := p.cur().line
			if !isAssignable(left) {
				return nil, p.errorf("invalid assignment target")
			}
			p.pos++
			value, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return assignExpr{target: left, op: op, value: value, line: line}, nil
		}
	}
	return left, nil
}

func isAssignable(e expr) bool {
	switch e.(type) {
	case identExpr, memberExpr, indexExpr:
		return true
	}
	return false
}

func (p *parser) conditional() (expr, error) {
	cond, err := p.binaryExprPrec(0)
	if err != nil {
		return nil, err
	}
	if !p.accept(tokPunct, "?") {
		return cond, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return condExpr{cond: cond, then: then, els: els}, nil
}

// binary operator precedence, lowest first.
var binaryPrec = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "===", "!=="},
	{"<", ">", "<=", ">="},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binaryExprPrec(level int) (expr, error) {
	if level >= len(binaryPrec) {
		return p.unary()
	}
	left, err := p.binaryExprPrec(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range binaryPrec[level] {
			if p.at(tokPunct, op) {
				line := p.cur().line
				p.pos++
				right, err := p.binaryExprPrec(level + 1)
				if err != nil {
					return nil, err
				}
				left = binaryExpr{op: op, x: left, y: right, line: line}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	switch {
	case p.at(tokPunct, "!") || p.at(tokPunct, "-") || p.at(tokPunct, "+"):
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: t.text, x: x, line: t.line}, nil
	case p.at(tokPunct, "++") || p.at(tokPunct, "--"):
		p.pos++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		if !isAssignable(x) {
			return nil, p.errorf("invalid %s target", t.text)
		}
		return updateExpr{target: x, op: t.text, line: t.line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (expr, error) {
	x, err := p.callMember()
	if err != nil {
		return nil, err
	}
	if p.at(tokPunct, "++") || p.at(tokPunct, "--") {
		t := p.cur()
		if !isAssignable(x) {
			return nil, p.errorf("invalid %s target", t.text)
		}
		p.pos++
		return updateExpr{target: x, op: t.text, postfix: true, line: t.line}, nil
	}
	return x, nil
}

func (p *parser) callMember() (expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokPunct, "."):
			line := p.cur().line
			p.pos++
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = memberExpr{obj: x, name: name.text, line: line}
		case p.at(tokPunct, "["):
			line := p.cur().line
			p.pos++
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, "]"); err != nil {
				return nil, err
			}
			x = indexExpr{obj: x, index: idx, line: line}
		case p.at(tokPunct, "("):
			line := p.cur().line
			p.pos++
			var args []expr
			for !p.at(tokPunct, ")") {
				a, err := p.expression()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			x = callExpr{fn: x, args: args, line: line}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return numberLit{value: t.num}, nil
	case t.kind == tokString:
		p.pos++
		return stringLit{value: t.text}, nil
	case p.at(tokKeyword, "true"):
		p.pos++
		return boolLit{value: true}, nil
	case p.at(tokKeyword, "false"):
		p.pos++
		return boolLit{value: false}, nil
	case p.at(tokKeyword, "null"):
		p.pos++
		return nullLit{}, nil
	case p.at(tokKeyword, "function"):
		p.pos++
		fn, err := p.funcRest()
		if err != nil {
			return nil, err
		}
		return fn, nil
	case t.kind == tokIdent:
		p.pos++
		return identExpr{name: t.text, line: t.line}, nil
	case p.at(tokPunct, "("):
		p.pos++
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case p.at(tokPunct, "["):
		p.pos++
		var elems []expr
		for !p.at(tokPunct, "]") {
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		return arrayLit{elems: elems}, nil
	default:
		return nil, p.errorf("unexpected %s", t)
	}
}
