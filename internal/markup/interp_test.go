package markup

import (
	"errors"
	"strings"
	"testing"
)

// run executes source and returns the interpreter for state inspection.
func run(t *testing.T, src string) *Interp {
	t.Helper()
	in := NewInterp()
	if err := in.RunSource(src); err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return in
}

func globalNum(t *testing.T, in *Interp, name string) float64 {
	t.Helper()
	v, ok := in.Global(name)
	if !ok {
		t.Fatalf("global %q undefined", name)
	}
	n, ok := v.(float64)
	if !ok {
		t.Fatalf("global %q = %v (%T), want number", name, v, v)
	}
	return n
}

func TestArithmeticAndPrecedence(t *testing.T) {
	in := run(t, `var a = 2 + 3 * 4; var b = (2 + 3) * 4; var c = 10 % 3; var d = -a + 1;`)
	if got := globalNum(t, in, "a"); got != 14 {
		t.Errorf("a = %v", got)
	}
	if got := globalNum(t, in, "b"); got != 20 {
		t.Errorf("b = %v", got)
	}
	if got := globalNum(t, in, "c"); got != 1 {
		t.Errorf("c = %v", got)
	}
	if got := globalNum(t, in, "d"); got != -13 {
		t.Errorf("d = %v", got)
	}
}

func TestStringsAndConcat(t *testing.T) {
	in := run(t, `var s = "high" + "score"; var n = "n=" + 42; var up = s.toUpperCase(); var len = s.length; var idx = s.indexOf("score"); var sub = s.substring(0, 4);`)
	if v, _ := in.Global("s"); v != "highscore" {
		t.Errorf("s = %v", v)
	}
	if v, _ := in.Global("n"); v != "n=42" {
		t.Errorf("n = %v", v)
	}
	if v, _ := in.Global("up"); v != "HIGHSCORE" {
		t.Errorf("up = %v", v)
	}
	if got := globalNum(t, in, "len"); got != 9 {
		t.Errorf("len = %v", got)
	}
	if got := globalNum(t, in, "idx"); got != 4 {
		t.Errorf("idx = %v", got)
	}
	if v, _ := in.Global("sub"); v != "high" {
		t.Errorf("sub = %v", v)
	}
}

func TestControlFlow(t *testing.T) {
	in := run(t, `
var sum = 0;
for (var i = 1; i <= 10; i++) { sum += i; }
var evens = 0;
var j = 0;
while (true) {
  j++;
  if (j > 20) { break; }
  if (j % 2 != 0) { continue; }
  evens++;
}
var grade;
if (sum >= 55) { grade = "A"; } else { grade = "B"; }
`)
	if got := globalNum(t, in, "sum"); got != 55 {
		t.Errorf("sum = %v", got)
	}
	if got := globalNum(t, in, "evens"); got != 10 {
		t.Errorf("evens = %v", got)
	}
	if v, _ := in.Global("grade"); v != "A" {
		t.Errorf("grade = %v", v)
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	in := run(t, `
function fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
var f10 = fib(10);
var square = function(x) { return x * x; };
var s5 = square(5);
`)
	if got := globalNum(t, in, "f10"); got != 55 {
		t.Errorf("fib(10) = %v", got)
	}
	if got := globalNum(t, in, "s5"); got != 25 {
		t.Errorf("square(5) = %v", got)
	}
}

func TestClosures(t *testing.T) {
	in := run(t, `
function counter() {
  var n = 0;
  return function() { n = n + 1; return n; };
}
var c = counter();
c(); c();
var third = c();
`)
	if got := globalNum(t, in, "third"); got != 3 {
		t.Errorf("third = %v", got)
	}
}

func TestArrays(t *testing.T) {
	in := run(t, `
var scores = [300, 200, 100];
scores.push(50);
var n = scores.length;
var first = scores[0];
scores[1] = 250;
var second = scores[1];
var joined = scores.join("-");
var popped = scores.pop();
`)
	if got := globalNum(t, in, "n"); got != 4 {
		t.Errorf("n = %v", got)
	}
	if got := globalNum(t, in, "first"); got != 300 {
		t.Errorf("first = %v", got)
	}
	if got := globalNum(t, in, "second"); got != 250 {
		t.Errorf("second = %v", got)
	}
	if v, _ := in.Global("joined"); v != "300-250-100-50" {
		t.Errorf("joined = %v", v)
	}
	if got := globalNum(t, in, "popped"); got != 50 {
		t.Errorf("popped = %v", got)
	}
}

func TestTernaryAndLogic(t *testing.T) {
	in := run(t, `
var a = true && "yes";
var b = false || "fallback";
var c = 5 > 3 ? "big" : "small";
var d = !false;
`)
	if v, _ := in.Global("a"); v != "yes" {
		t.Errorf("a = %v", v)
	}
	if v, _ := in.Global("b"); v != "fallback" {
		t.Errorf("b = %v", v)
	}
	if v, _ := in.Global("c"); v != "big" {
		t.Errorf("c = %v", v)
	}
	if v, _ := in.Global("d"); v != true {
		t.Errorf("d = %v", v)
	}
}

func TestHostObjects(t *testing.T) {
	in := NewInterp()
	var logged []string
	store := map[string]string{}
	in.SetGlobal("player", &HostObject{Name: "player", Members: map[string]Value{
		"log": HostFunc(func(args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = ToString(a)
			}
			logged = append(logged, strings.Join(parts, " "))
			return nil, nil
		}),
		"version": "1.0",
	}})
	in.SetGlobal("storage", &HostObject{Name: "storage", Members: map[string]Value{
		"set": HostFunc(func(args []Value) (Value, error) {
			store[ToString(args[0])] = ToString(args[1])
			return nil, nil
		}),
		"get": HostFunc(func(args []Value) (Value, error) {
			v, ok := store[ToString(args[0])]
			if !ok {
				return nil, nil
			}
			return v, nil
		}),
	}})
	err := in.RunSource(`
player.log("booting", player.version);
storage.set("highscore", 9000);
var hs = storage.get("highscore");
player.log("score is", hs);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) != 2 || logged[0] != "booting 1.0" || logged[1] != "score is 9000" {
		t.Errorf("logged = %v", logged)
	}
	if store["highscore"] != "9000" {
		t.Errorf("store = %v", store)
	}
}

func TestCallFromHost(t *testing.T) {
	in := run(t, `function onSelect(item) { return "chose:" + item; }`)
	v, err := in.Call("onSelect", "play")
	if err != nil {
		t.Fatal(err)
	}
	if v != "chose:play" {
		t.Errorf("Call = %v", v)
	}
	if _, err := in.Call("missing"); err == nil {
		t.Error("calling missing function succeeded")
	}
}

func TestStepBudgetStopsRunawayScript(t *testing.T) {
	in := NewInterp()
	in.StepBudget = 10000
	err := in.RunSource(`while (true) { var x = 1; }`)
	if !errors.Is(err, ErrStepBudget) {
		t.Errorf("err = %v, want ErrStepBudget", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []string{
		`undeclared + 1;`,
		`x = 5;`, // assignment to undeclared
		`var a = 1; a();`,
		`var a = [1]; var b = a[5];`,
		`var s = null; var m = s.member;`,
		`var n = 1; n.member;`,
		`var o = "x" * 2;`,
	}
	for _, src := range cases {
		in := NewInterp()
		if err := in.RunSource(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		`var = 5;`,
		`function () {}`,
		`if (x { }`,
		`var a = "unterminated;`,
		`var a = 'bad\q';`,
		`5 = x;`,
		`var a = ;`,
		`{`,
		`var a = 1 ++;`,
	}
	for _, src := range cases {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("no syntax error for %q", src)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("error for %q is %T, want *SyntaxError", src, err)
			}
		}
	}
}

func TestComments(t *testing.T) {
	in := run(t, `
// line comment
var a = 1; /* block
   comment */ var b = 2;
`)
	if globalNum(t, in, "a") != 1 || globalNum(t, in, "b") != 2 {
		t.Error("comments broke parsing")
	}
}

func TestMathStdlib(t *testing.T) {
	in := run(t, `
var f = Math.floor(3.7);
var c = Math.ceil(3.2);
var a = Math.abs(-5);
var mx = Math.max(1, 9, 4);
var mn = Math.min(1, 9, 4);
var s = String(42);
var n = Number("3.5");
`)
	checks := map[string]float64{"f": 3, "c": 4, "a": 5, "mx": 9, "mn": 1, "n": 3.5}
	for name, want := range checks {
		if got := globalNum(t, in, name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if v, _ := in.Global("s"); v != "42" {
		t.Errorf("s = %v", v)
	}
}

func TestUpdateExpressions(t *testing.T) {
	in := run(t, `
var i = 5;
var post = i++;
var pre = ++i;
var down = i--;
`)
	if got := globalNum(t, in, "post"); got != 5 {
		t.Errorf("post = %v", got)
	}
	if got := globalNum(t, in, "pre"); got != 7 {
		t.Errorf("pre = %v", got)
	}
	if got := globalNum(t, in, "down"); got != 7 {
		t.Errorf("down = %v", got)
	}
	if got := globalNum(t, in, "i"); got != 6 {
		t.Errorf("i = %v", got)
	}
}

func TestCompoundAssignment(t *testing.T) {
	in := run(t, `var x = 10; x += 5; x -= 3; x *= 2; x /= 4;`)
	if got := globalNum(t, in, "x"); got != 6 {
		t.Errorf("x = %v", got)
	}
}

func TestToStringFormats(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{nil, "null"},
		{true, "true"},
		{false, "false"},
		{float64(42), "42"},
		{float64(3.5), "3.5"},
		{"str", "str"},
		{&Array{Elems: []Value{float64(1), "a"}}, "[1,a]"},
	}
	for _, tc := range cases {
		if got := ToString(tc.v); got != tc.want {
			t.Errorf("ToString(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestScopeShadowing(t *testing.T) {
	in := run(t, `
var x = "outer";
var captured;
{
  var x2 = "inner";
  captured = x2;
}
function f() { var x = "func"; return x; }
var fx = f();
`)
	if v, _ := in.Global("x"); v != "outer" {
		t.Errorf("x = %v", v)
	}
	if v, _ := in.Global("fx"); v != "func" {
		t.Errorf("fx = %v", v)
	}
	if v, _ := in.Global("captured"); v != "inner" {
		t.Errorf("captured = %v", v)
	}
}

func TestEqualitySemantics(t *testing.T) {
	in := run(t, `
var a = 1 == 1;
var b = "x" == "x";
var c = 1 == "1";
var d = null == null;
var e = [1] == [1];
var arr = [1]; var f = arr == arr;
`)
	expect := map[string]bool{"a": true, "b": true, "c": false, "d": true, "e": false, "f": true}
	for name, want := range expect {
		if v, _ := in.Global(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestCallDepthLimit(t *testing.T) {
	in := NewInterp()
	err := in.RunSource(`function f() { return f(); } f();`)
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("err = %v, want ErrCallDepth", err)
	}
	// Legitimate deep-ish recursion inside the limit still works.
	in2 := NewInterp()
	err = in2.RunSource(`
function down(n) { if (n <= 0) { return 0; } return down(n - 1); }
var r = down(500);
`)
	if err != nil {
		t.Errorf("bounded recursion failed: %v", err)
	}
	// A tighter configured limit trips sooner.
	in3 := NewInterp()
	in3.MaxCallDepth = 10
	err = in3.RunSource(`function down(n) { if (n <= 0) { return 0; } return down(n - 1); } down(50);`)
	if !errors.Is(err, ErrCallDepth) {
		t.Errorf("custom limit err = %v", err)
	}
}

func TestForLoopVariants(t *testing.T) {
	in := run(t, `
var n = 0;
for (;;) { n++; if (n >= 5) { break; } }
var m = 0;
var i = 0;
for (; i < 3;) { m += i; i++; }
for (var j = 10; false; j++) { m = 999; }
`)
	if got := globalNum(t, in, "n"); got != 5 {
		t.Errorf("n = %v", got)
	}
	if got := globalNum(t, in, "m"); got != 3 {
		t.Errorf("m = %v", got)
	}
}

func TestArrayIndexAssignmentErrors(t *testing.T) {
	in := NewInterp()
	if err := in.RunSource(`var a = [1, 2]; a[5] = 9;`); err == nil {
		t.Error("out-of-range index assignment accepted")
	}
	if err := in.RunSource(`var s = "str"; s[0] = "x";`); err == nil {
		t.Error("string index assignment accepted")
	}
}

func TestNestedFunctionsAndHoisting(t *testing.T) {
	in := run(t, `
var r = outer(); // callable before its declaration (hoisted)
function outer() {
  function inner(x) { return x * 2; }
  return inner(21);
}
`)
	if got := globalNum(t, in, "r"); got != 42 {
		t.Errorf("r = %v", got)
	}
}
