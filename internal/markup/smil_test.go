package markup

import (
	"testing"

	"discsec/internal/xmldom"
)

func parseEl(t *testing.T, s string) *xmldom.Element {
	t.Helper()
	doc, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc.Root()
}

func TestParseLayout(t *testing.T) {
	el := parseEl(t, `<layout xmlns="urn:discsec:smil">
  <region id="main" left="0" top="0" width="1920" height="1080"/>
  <region id="menu" left="100" top="800" width="1720" height="200" z-index="2"/>
</layout>`)
	l, err := ParseLayout(el)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Regions) != 2 {
		t.Fatalf("regions = %d", len(l.Regions))
	}
	menu := l.Region("menu")
	if menu == nil || menu.ZIndex != 2 || menu.Top != 800 {
		t.Errorf("menu = %+v", menu)
	}
	if l.Region("ghost") != nil {
		t.Error("ghost region found")
	}
}

func TestParseLayoutErrors(t *testing.T) {
	bad := []string{
		`<notlayout/>`,
		`<layout><region/></layout>`,
		`<layout><region id="a"/><region id="a"/></layout>`,
		`<layout><region id="a" width="x"/></layout>`,
		`<layout><region id="a" width="-5"/></layout>`,
	}
	for _, s := range bad {
		if _, err := ParseLayout(parseEl(t, s)); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := &Layout{Regions: []Region{
		{ID: "a", Left: 1, Top: 2, Width: 3, Height: 4, ZIndex: 5},
		{ID: "b", Width: 10, Height: 10},
	}}
	back, err := ParseLayout(l.Element())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Regions) != 2 || *back.Region("a") != l.Regions[0] {
		t.Errorf("round trip = %+v", back)
	}
}

func TestParseTimingAndSchedule(t *testing.T) {
	el := parseEl(t, `<timing xmlns="urn:discsec:smil">
  <seq>
    <img src="logo.png" region="main" dur="2s"/>
    <par>
      <video src="feature.m2ts" region="main" dur="10s"/>
      <img src="overlay.png" region="menu" dur="3s" begin="1s"/>
    </par>
    <img src="credits.png" region="main" dur="1500ms"/>
  </seq>
</timing>`)
	root, err := ParseTiming(el)
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Duration(); got != 2000+10000+1500 {
		t.Errorf("duration = %d", got)
	}
	events := root.Schedule()
	if len(events) != 4 {
		t.Fatalf("events = %d: %+v", len(events), events)
	}
	// logo at 0..2000
	if events[0].Src != "logo.png" || events[0].StartMS != 0 || events[0].EndMS != 2000 {
		t.Errorf("event 0 = %+v", events[0])
	}
	// feature at 2000..12000, overlay at 3000..6000
	if events[1].Src != "feature.m2ts" || events[1].StartMS != 2000 || events[1].EndMS != 12000 {
		t.Errorf("event 1 = %+v", events[1])
	}
	if events[2].Src != "overlay.png" || events[2].StartMS != 3000 || events[2].EndMS != 6000 {
		t.Errorf("event 2 = %+v", events[2])
	}
	// credits after the par's max end (12000).
	if events[3].Src != "credits.png" || events[3].StartMS != 12000 || events[3].EndMS != 13500 {
		t.Errorf("event 3 = %+v", events[3])
	}
}

func TestTimingRoundTrip(t *testing.T) {
	el := parseEl(t, `<timing xmlns="urn:discsec:smil"><seq><img src="a.png" region="r" dur="2s"/><audio src="b.pcm" dur="500ms"/></seq></timing>`)
	root, err := ParseTiming(el)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTiming(root.Element())
	if err != nil {
		t.Fatalf("reparse rendered timing: %v\n%s", err, root.Element().String())
	}
	if back.Duration() != root.Duration() {
		t.Errorf("duration changed: %d -> %d", root.Duration(), back.Duration())
	}
	if len(back.Schedule()) != len(root.Schedule()) {
		t.Error("schedule length changed")
	}
}

func TestParseTimingErrors(t *testing.T) {
	bad := []string{
		`<nottiming/>`,
		`<timing/>`,
		`<timing><seq/><seq/></timing>`,
		`<timing><mystery/></timing>`,
		`<timing><seq><img dur="wat"/></seq></timing>`,
		`<timing><seq><img dur="-1s"/></seq></timing>`,
	}
	for _, s := range bad {
		if _, err := ParseTiming(parseEl(t, s)); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestValidateAgainstLayout(t *testing.T) {
	l := &Layout{Regions: []Region{{ID: "main", Width: 10, Height: 10}}}
	good, _ := ParseTiming(parseEl(t, `<timing><seq><img src="x" region="main"/><audio src="s"/></seq></timing>`))
	if err := good.ValidateAgainstLayout(l); err != nil {
		t.Errorf("valid timing rejected: %v", err)
	}
	badRegion, _ := ParseTiming(parseEl(t, `<timing><seq><img src="x" region="ghost"/></seq></timing>`))
	if err := badRegion.ValidateAgainstLayout(l); err == nil {
		t.Error("unknown region accepted")
	}
	noRegion, _ := ParseTiming(parseEl(t, `<timing><seq><img src="x"/></seq></timing>`))
	if err := noRegion.ValidateAgainstLayout(l); err == nil {
		t.Error("region-less image accepted")
	}
}

func TestParseClock(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"5s", 5000},
		{"1.5s", 1500},
		{"1500ms", 1500},
		{"2min", 120000},
		{"1h", 3600000},
		{"3", 3000},
	}
	for _, tc := range cases {
		got, err := ParseClock(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseClock(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "abc", "-2s", "5x"} {
		if _, err := ParseClock(bad); err == nil {
			t.Errorf("ParseClock(%q) accepted", bad)
		}
	}
}

func TestSeqWithExplicitDur(t *testing.T) {
	root, err := ParseTiming(parseEl(t, `<timing><seq dur="30s"><img src="a" dur="2s"/></seq></timing>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Duration(); got != 30000 {
		t.Errorf("explicit container dur = %d", got)
	}
}

func TestTimingRepeat(t *testing.T) {
	root, err := ParseTiming(parseEl(t, `<timing><seq repeat="3"><img src="a" region="r" dur="2s"/></seq></timing>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Duration(); got != 6000 {
		t.Errorf("repeat duration = %d", got)
	}
	events := root.Schedule()
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	if events[1].StartMS != 2000 || events[2].StartMS != 4000 {
		t.Errorf("repeat schedule = %+v", events)
	}
	// Repeat round-trips through markup.
	back, err := ParseTiming(root.Element())
	if err != nil {
		t.Fatal(err)
	}
	if back.Duration() != 6000 {
		t.Errorf("reparsed repeat duration = %d", back.Duration())
	}
	// Bad values rejected.
	if _, err := ParseTiming(parseEl(t, `<timing><seq repeat="0"><img src="a"/></seq></timing>`)); err == nil {
		t.Error("repeat=0 accepted")
	}
	if _, err := ParseTiming(parseEl(t, `<timing><seq repeat="lots"><img src="a"/></seq></timing>`)); err == nil {
		t.Error("repeat=lots accepted")
	}
}

func TestParRepeat(t *testing.T) {
	root, err := ParseTiming(parseEl(t, `<timing><par repeat="2"><img src="a" region="r" dur="1s"/><img src="b" region="r" dur="3s"/></par></timing>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Duration(); got != 6000 {
		t.Errorf("par repeat duration = %d", got)
	}
	events := root.Schedule()
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
}
