package markup

import (
	"strings"
	"testing"
)

// FuzzScript checks the script front end and interpreter against
// arbitrary source: no panics, and the step budget bounds execution.
func FuzzScript(f *testing.F) {
	seeds := []string{
		`var x = 1 + 2 * 3;`,
		`function f(n) { if (n <= 0) { return 0; } return f(n - 1); } f(10);`,
		`var a = [1,2,3]; a.push(4); a[0] = a.length;`,
		`while (false) {}`,
		`var s = "x" + 1 + true + null;`,
		`for (var i = 0; i < 3; i++) { continue; }`,
		`(((((`,
		`var "str" = ;`,
		// Entity-like text in string literals must stay inert data.
		`var s = "&lt;tag&gt; &amp;&#38; &notanentity;";`,
	}
	// Deeply nested expressions and blocks probe parser recursion.
	seeds = append(seeds,
		strings.Repeat(`(`, 200)+`1`+strings.Repeat(`)`, 200),
		strings.Repeat(`if (true) { `, 64)+`var x = 0;`+strings.Repeat(` }`, 64))
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		in := NewInterp()
		in.StepBudget = 20000
		in.MaxCallDepth = 64
		// Errors (syntax or runtime) are acceptable; panics and
		// unbounded execution are not — the budget guarantees return.
		_ = in.RunSource(src)
	})
}
