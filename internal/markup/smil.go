package markup

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"discsec/internal/xmldom"
)

// SMIL-lite: the layout and timing submarkup vocabularies of the
// reference interactive application (paper §8.1 chose SMIL for timing and
// layout). The model is deliberately small — regions, sequential and
// parallel time containers, media items — but rich enough that the
// engine produces an observable presentation plan.

// SMILNamespace is the namespace of the SMIL-lite vocabulary.
const SMILNamespace = "urn:discsec:smil"

// Layout is the spatial composition: a set of named regions.
type Layout struct {
	Regions []Region
}

// Region is a rectangular presentation area.
type Region struct {
	ID            string
	Left, Top     int
	Width, Height int
	ZIndex        int
}

// ParseLayout reads a <layout> element.
func ParseLayout(el *xmldom.Element) (*Layout, error) {
	if el == nil || el.Local != "layout" {
		return nil, errors.New("markup: expected <layout> element")
	}
	l := &Layout{}
	seen := map[string]bool{}
	for _, rEl := range el.ChildElementsNamed("", "region") {
		r := Region{ID: rEl.AttrValue("id")}
		if r.ID == "" {
			return nil, errors.New("markup: <region> missing id")
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("markup: duplicate region id %q", r.ID)
		}
		seen[r.ID] = true
		var err error
		if r.Left, err = intAttr(rEl, "left", 0); err != nil {
			return nil, err
		}
		if r.Top, err = intAttr(rEl, "top", 0); err != nil {
			return nil, err
		}
		if r.Width, err = intAttr(rEl, "width", 1920); err != nil {
			return nil, err
		}
		if r.Height, err = intAttr(rEl, "height", 1080); err != nil {
			return nil, err
		}
		if r.ZIndex, err = intAttr(rEl, "z-index", 0); err != nil {
			return nil, err
		}
		if r.Width <= 0 || r.Height <= 0 {
			return nil, fmt.Errorf("markup: region %q has non-positive size", r.ID)
		}
		l.Regions = append(l.Regions, r)
	}
	return l, nil
}

// Region returns the region with the given id, or nil.
func (l *Layout) Region(id string) *Region {
	for i := range l.Regions {
		if l.Regions[i].ID == id {
			return &l.Regions[i]
		}
	}
	return nil
}

// Element renders the layout as markup.
func (l *Layout) Element() *xmldom.Element {
	el := xmldom.NewElement("layout")
	el.DeclareNamespace("", SMILNamespace)
	for _, r := range l.Regions {
		rEl := el.CreateChild("region")
		rEl.SetAttr("id", r.ID)
		rEl.SetAttr("left", strconv.Itoa(r.Left))
		rEl.SetAttr("top", strconv.Itoa(r.Top))
		rEl.SetAttr("width", strconv.Itoa(r.Width))
		rEl.SetAttr("height", strconv.Itoa(r.Height))
		if r.ZIndex != 0 {
			rEl.SetAttr("z-index", strconv.Itoa(r.ZIndex))
		}
	}
	return el
}

// TimingNode is a node of the timing tree: a container (seq/par) or a
// media item.
type TimingNode struct {
	// Kind is "seq", "par", or a media kind ("img", "video", "audio",
	// "text").
	Kind string
	// DurMS is the explicit duration in milliseconds (media defaults
	// to 1000ms when unset; containers derive from children).
	DurMS int64
	// BeginMS delays the node start relative to its parent context.
	BeginMS int64
	// Repeat replays a container's children (seq/par only); 0 and 1
	// both mean a single pass.
	Repeat int
	// Region targets a layout region (media only).
	Region string
	// Src names the presented resource (media only).
	Src string
	// Children are nested nodes (containers only).
	Children []*TimingNode
}

var mediaKinds = map[string]bool{"img": true, "video": true, "audio": true, "text": true}

// ParseTiming reads a <timing> element whose single child is the root
// time container.
func ParseTiming(el *xmldom.Element) (*TimingNode, error) {
	if el == nil || el.Local != "timing" {
		return nil, errors.New("markup: expected <timing> element")
	}
	kids := el.ChildElements()
	if len(kids) != 1 {
		return nil, fmt.Errorf("markup: <timing> must contain exactly one time container, has %d", len(kids))
	}
	return parseTimingNode(kids[0])
}

func parseTimingNode(el *xmldom.Element) (*TimingNode, error) {
	n := &TimingNode{Kind: el.Local}
	var err error
	if n.DurMS, err = clockAttr(el, "dur"); err != nil {
		return nil, err
	}
	if n.BeginMS, err = clockAttr(el, "begin"); err != nil {
		return nil, err
	}
	switch {
	case n.Kind == "seq" || n.Kind == "par":
		if v, ok := el.Attr("repeat"); ok {
			r, err := strconv.Atoi(v)
			if err != nil || r < 1 {
				return nil, fmt.Errorf("markup: bad repeat %q", v)
			}
			n.Repeat = r
		}
		for _, k := range el.ChildElements() {
			c, err := parseTimingNode(k)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
	case mediaKinds[n.Kind]:
		n.Region = el.AttrValue("region")
		n.Src = el.AttrValue("src")
		if n.DurMS == 0 {
			n.DurMS = 1000
		}
	default:
		return nil, fmt.Errorf("markup: unknown timing element <%s>", n.Kind)
	}
	return n, nil
}

// Element renders the timing tree as markup under a <timing> wrapper.
func (n *TimingNode) Element() *xmldom.Element {
	wrapper := xmldom.NewElement("timing")
	wrapper.DeclareNamespace("", SMILNamespace)
	wrapper.AppendChild(n.element())
	return wrapper
}

func (n *TimingNode) element() *xmldom.Element {
	el := xmldom.NewElement(n.Kind)
	if n.DurMS > 0 && (n.Kind == "seq" || n.Kind == "par" || n.DurMS != 1000) {
		el.SetAttr("dur", formatClock(n.DurMS))
	}
	if n.BeginMS > 0 {
		el.SetAttr("begin", formatClock(n.BeginMS))
	}
	if n.Repeat > 1 {
		el.SetAttr("repeat", strconv.Itoa(n.Repeat))
	}
	if n.Region != "" {
		el.SetAttr("region", n.Region)
	}
	if n.Src != "" {
		el.SetAttr("src", n.Src)
	}
	for _, c := range n.Children {
		el.AppendChild(c.element())
	}
	return el
}

// Duration computes the node's effective duration: explicit dur wins;
// seq sums children (with begins); par takes the max child end.
func (n *TimingNode) Duration() int64 {
	if n.DurMS > 0 && (n.Kind == "seq" || n.Kind == "par") {
		return n.DurMS
	}
	reps := int64(1)
	if n.Repeat > 1 {
		reps = int64(n.Repeat)
	}
	switch n.Kind {
	case "seq":
		var total int64
		for _, c := range n.Children {
			total += c.BeginMS + c.Duration()
		}
		return total * reps
	case "par":
		var maxEnd int64
		for _, c := range n.Children {
			if end := c.BeginMS + c.Duration(); end > maxEnd {
				maxEnd = end
			}
		}
		return maxEnd * reps
	default:
		return n.DurMS
	}
}

// PresentationEvent is one scheduled media presentation: the engine's
// observable output.
type PresentationEvent struct {
	StartMS, EndMS int64
	Kind           string
	Region         string
	Src            string
}

// Schedule flattens the timing tree into ordered presentation events.
func (n *TimingNode) Schedule() []PresentationEvent {
	var out []PresentationEvent
	scheduleInto(n, 0, &out)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].StartMS != out[j].StartMS {
			return out[i].StartMS < out[j].StartMS
		}
		return out[i].Src < out[j].Src
	})
	return out
}

func scheduleInto(n *TimingNode, t0 int64, out *[]PresentationEvent) int64 {
	start := t0 + n.BeginMS
	reps := 1
	if n.Repeat > 1 {
		reps = n.Repeat
	}
	switch n.Kind {
	case "seq":
		cur := start
		for r := 0; r < reps; r++ {
			for _, c := range n.Children {
				cur = scheduleInto(c, cur, out)
			}
		}
		return cur
	case "par":
		end := start
		iterStart := start
		for r := 0; r < reps; r++ {
			iterEnd := iterStart
			for _, c := range n.Children {
				if e := scheduleInto(c, iterStart, out); e > iterEnd {
					iterEnd = e
				}
			}
			iterStart = iterEnd
			end = iterEnd
		}
		return end
	default:
		end := start + n.Duration()
		*out = append(*out, PresentationEvent{
			StartMS: start, EndMS: end,
			Kind: n.Kind, Region: n.Region, Src: n.Src,
		})
		return end
	}
}

// ValidateAgainstLayout checks that every media region reference exists.
func (n *TimingNode) ValidateAgainstLayout(l *Layout) error {
	if mediaKinds[n.Kind] && n.Kind != "audio" {
		if n.Region == "" {
			return fmt.Errorf("markup: media %q has no region", n.Src)
		}
		if l.Region(n.Region) == nil {
			return fmt.Errorf("markup: media %q targets unknown region %q", n.Src, n.Region)
		}
	}
	for _, c := range n.Children {
		if err := c.ValidateAgainstLayout(l); err != nil {
			return err
		}
	}
	return nil
}

func intAttr(el *xmldom.Element, name string, def int) (int, error) {
	v, ok := el.Attr(name)
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("markup: attribute %s=%q: %w", name, v, err)
	}
	return n, nil
}

// clockAttr parses a SMIL clock value: "5s", "1.5s", "1500ms", "2min",
// or a bare number of seconds.
func clockAttr(el *xmldom.Element, name string) (int64, error) {
	v, ok := el.Attr(name)
	if !ok || v == "" {
		return 0, nil
	}
	return ParseClock(v)
}

// ParseClock parses a SMIL-style clock value into milliseconds.
func ParseClock(v string) (int64, error) {
	v = strings.TrimSpace(v)
	mult := 1000.0
	switch {
	case strings.HasSuffix(v, "ms"):
		mult = 1
		v = strings.TrimSuffix(v, "ms")
	case strings.HasSuffix(v, "min"):
		mult = 60000
		v = strings.TrimSuffix(v, "min")
	case strings.HasSuffix(v, "h"):
		mult = 3600000
		v = strings.TrimSuffix(v, "h")
	case strings.HasSuffix(v, "s"):
		v = strings.TrimSuffix(v, "s")
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("markup: malformed clock value %q", v)
	}
	if f < 0 {
		return 0, fmt.Errorf("markup: negative clock value %q", v)
	}
	return int64(f * mult), nil
}

func formatClock(ms int64) string {
	if ms%1000 == 0 {
		return strconv.FormatInt(ms/1000, 10) + "s"
	}
	return strconv.FormatInt(ms, 10) + "ms"
}
