package markup

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a script runtime value: one of nil (null), bool, float64,
// string, *Array, *HostObject, HostFunc, or an internal function value.
type Value any

// Array is a mutable script array.
type Array struct {
	Elems []Value
}

// HostFunc is a native function exposed to scripts by the player engine.
type HostFunc func(args []Value) (Value, error)

// HostObject is a namespace of host functions and constants (the engine
// exposes e.g. "storage", "display", "player").
type HostObject struct {
	Name    string
	Members map[string]Value
}

// scriptFunc is a user-defined function with its defining environment.
type scriptFunc struct {
	name   string
	params []string
	body   []stmt
	env    *scope
}

// RuntimeError reports a script execution failure.
type RuntimeError struct {
	Line int
	Msg  string
}

func (e *RuntimeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("script:%d: %s", e.Line, e.Msg)
	}
	return "script: " + e.Msg
}

// ErrStepBudget is wrapped by errors reporting an exhausted execution
// budget (runaway script protection).
var ErrStepBudget = errors.New("markup: script step budget exhausted")

type scope struct {
	vars   map[string]Value
	parent *scope
}

func newScope(parent *scope) *scope {
	return &scope{vars: make(map[string]Value), parent: parent}
}

func (s *scope) lookup(name string) (Value, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) assign(name string, v Value) bool {
	for cur := s; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return true
		}
	}
	return false
}

func (s *scope) declare(name string, v Value) {
	s.vars[name] = v
}

// Interp executes programs against a host environment.
type Interp struct {
	globals *scope
	// StepBudget bounds the number of evaluation steps; 0 means the
	// default of 1,000,000.
	StepBudget int
	// MaxCallDepth bounds script call nesting; 0 means the default of
	// 2,000. It protects the host stack from runaway recursion before
	// the step budget would trip.
	MaxCallDepth int

	steps int
	depth int
}

const (
	defaultStepBudget   = 1_000_000
	defaultMaxCallDepth = 2_000
)

// ErrCallDepth is wrapped by errors reporting exceeded call nesting.
var ErrCallDepth = errors.New("markup: script call depth exceeded")

// NewInterp creates an interpreter with an empty global scope plus a
// minimal standard library (abs, floor, min, max, len, str, num).
func NewInterp() *Interp {
	in := &Interp{globals: newScope(nil)}
	in.installStdlib()
	return in
}

// SetGlobal binds a global name (host objects, constants).
func (in *Interp) SetGlobal(name string, v Value) {
	in.globals.declare(name, v)
}

// Global reads a global binding after execution (tests, engine state
// extraction).
func (in *Interp) Global(name string) (Value, bool) {
	return in.globals.lookup(name)
}

// Run executes a program. Function declarations persist in the global
// scope across Run calls, matching script-per-manifest semantics.
func (in *Interp) Run(p *Program) error {
	in.steps = 0
	_, ctl, err := in.execBlock(p.body, in.globals)
	if err != nil {
		return err
	}
	if ctl == ctlBreak || ctl == ctlContinue {
		return &RuntimeError{Msg: "break/continue outside loop"}
	}
	return nil
}

// RunSource parses and executes source text.
func (in *Interp) RunSource(src string) error {
	p, err := ParseScript(src)
	if err != nil {
		return err
	}
	return in.Run(p)
}

// Call invokes a script-defined global function by name.
func (in *Interp) Call(name string, args ...Value) (Value, error) {
	v, ok := in.globals.lookup(name)
	if !ok {
		return nil, &RuntimeError{Msg: fmt.Sprintf("undefined function %q", name)}
	}
	return in.callValue(v, args, 0)
}

type ctlFlow int

const (
	ctlNone ctlFlow = iota
	ctlReturn
	ctlBreak
	ctlContinue
)

func (in *Interp) budget(line int) error {
	in.steps++
	limit := in.StepBudget
	if limit <= 0 {
		limit = defaultStepBudget
	}
	if in.steps > limit {
		return fmt.Errorf("%w (line %d)", ErrStepBudget, line)
	}
	return nil
}

func (in *Interp) execBlock(body []stmt, env *scope) (Value, ctlFlow, error) {
	// Hoist function declarations.
	for _, s := range body {
		if fd, ok := s.(funcDecl); ok {
			env.declare(fd.name, &scriptFunc{name: fd.name, params: fd.fn.params, body: fd.fn.body, env: env})
		}
	}
	for _, s := range body {
		v, ctl, err := in.execStmt(s, env)
		if err != nil {
			return nil, ctlNone, err
		}
		if ctl != ctlNone {
			return v, ctl, nil
		}
	}
	return nil, ctlNone, nil
}

func (in *Interp) execStmt(s stmt, env *scope) (Value, ctlFlow, error) {
	switch t := s.(type) {
	case funcDecl:
		return nil, ctlNone, nil // hoisted

	case varStmt:
		if err := in.budget(t.line); err != nil {
			return nil, ctlNone, err
		}
		var v Value
		if t.init != nil {
			var err error
			v, err = in.eval(t.init, env)
			if err != nil {
				return nil, ctlNone, err
			}
		}
		env.declare(t.name, v)
		return nil, ctlNone, nil

	case exprStmt:
		_, err := in.eval(t.x, env)
		return nil, ctlNone, err

	case blockStmt:
		return in.execBlock(t.body, newScope(env))

	case ifStmt:
		cond, err := in.eval(t.cond, env)
		if err != nil {
			return nil, ctlNone, err
		}
		if truthy(cond) {
			return in.execStmt(t.then, env)
		}
		if t.els != nil {
			return in.execStmt(t.els, env)
		}
		return nil, ctlNone, nil

	case whileStmt:
		for {
			if err := in.budget(0); err != nil {
				return nil, ctlNone, err
			}
			cond, err := in.eval(t.cond, env)
			if err != nil {
				return nil, ctlNone, err
			}
			if !truthy(cond) {
				return nil, ctlNone, nil
			}
			v, ctl, err := in.execStmt(t.body, env)
			if err != nil {
				return nil, ctlNone, err
			}
			switch ctl {
			case ctlReturn:
				return v, ctl, nil
			case ctlBreak:
				return nil, ctlNone, nil
			}
		}

	case forStmt:
		loopEnv := newScope(env)
		if t.init != nil {
			if _, _, err := in.execStmt(t.init, loopEnv); err != nil {
				return nil, ctlNone, err
			}
		}
		for {
			if err := in.budget(0); err != nil {
				return nil, ctlNone, err
			}
			if t.cond != nil {
				cond, err := in.eval(t.cond, loopEnv)
				if err != nil {
					return nil, ctlNone, err
				}
				if !truthy(cond) {
					return nil, ctlNone, nil
				}
			}
			v, ctl, err := in.execStmt(t.body, loopEnv)
			if err != nil {
				return nil, ctlNone, err
			}
			if ctl == ctlReturn {
				return v, ctl, nil
			}
			if ctl == ctlBreak {
				return nil, ctlNone, nil
			}
			if t.post != nil {
				if _, err := in.eval(t.post, loopEnv); err != nil {
					return nil, ctlNone, err
				}
			}
		}

	case returnStmt:
		var v Value
		if t.value != nil {
			var err error
			v, err = in.eval(t.value, env)
			if err != nil {
				return nil, ctlNone, err
			}
		}
		return v, ctlReturn, nil

	case breakStmt:
		return nil, ctlBreak, nil
	case continueStmt:
		return nil, ctlContinue, nil

	default:
		return nil, ctlNone, &RuntimeError{Msg: fmt.Sprintf("unknown statement %T", s)}
	}
}

func (in *Interp) eval(e expr, env *scope) (Value, error) {
	switch t := e.(type) {
	case numberLit:
		return t.value, nil
	case stringLit:
		return t.value, nil
	case boolLit:
		return t.value, nil
	case nullLit:
		return nil, nil

	case identExpr:
		if err := in.budget(t.line); err != nil {
			return nil, err
		}
		v, ok := env.lookup(t.name)
		if !ok {
			return nil, &RuntimeError{Line: t.line, Msg: fmt.Sprintf("undefined variable %q", t.name)}
		}
		return v, nil

	case arrayLit:
		arr := &Array{Elems: make([]Value, 0, len(t.elems))}
		for _, el := range t.elems {
			v, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, v)
		}
		return arr, nil

	case funcLit:
		return &scriptFunc{params: t.params, body: t.body, env: env}, nil

	case unaryExpr:
		x, err := in.eval(t.x, env)
		if err != nil {
			return nil, err
		}
		switch t.op {
		case "!":
			return !truthy(x), nil
		case "-":
			n, err := toNumber(x, t.line)
			if err != nil {
				return nil, err
			}
			return -n, nil
		case "+":
			return toNumber(x, t.line)
		}
		return nil, &RuntimeError{Line: t.line, Msg: "unknown unary " + t.op}

	case binaryExpr:
		if err := in.budget(t.line); err != nil {
			return nil, err
		}
		// Short-circuit logic.
		if t.op == "&&" || t.op == "||" {
			x, err := in.eval(t.x, env)
			if err != nil {
				return nil, err
			}
			if t.op == "&&" && !truthy(x) {
				return x, nil
			}
			if t.op == "||" && truthy(x) {
				return x, nil
			}
			return in.eval(t.y, env)
		}
		x, err := in.eval(t.x, env)
		if err != nil {
			return nil, err
		}
		y, err := in.eval(t.y, env)
		if err != nil {
			return nil, err
		}
		return binaryOp(t.op, x, y, t.line)

	case condExpr:
		c, err := in.eval(t.cond, env)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return in.eval(t.then, env)
		}
		return in.eval(t.els, env)

	case assignExpr:
		v, err := in.eval(t.value, env)
		if err != nil {
			return nil, err
		}
		if t.op != "=" {
			old, err := in.eval(t.target, env)
			if err != nil {
				return nil, err
			}
			v, err = binaryOp(strings.TrimSuffix(t.op, "="), old, v, t.line)
			if err != nil {
				return nil, err
			}
		}
		if err := in.assignTo(t.target, v, env, t.line); err != nil {
			return nil, err
		}
		return v, nil

	case updateExpr:
		old, err := in.eval(t.target, env)
		if err != nil {
			return nil, err
		}
		n, err := toNumber(old, t.line)
		if err != nil {
			return nil, err
		}
		delta := 1.0
		if t.op == "--" {
			delta = -1.0
		}
		nv := n + delta
		if err := in.assignTo(t.target, nv, env, t.line); err != nil {
			return nil, err
		}
		if t.postfix {
			return n, nil
		}
		return nv, nil

	case memberExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return nil, err
		}
		return memberOf(obj, t.name, t.line)

	case indexExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(t.index, env)
		if err != nil {
			return nil, err
		}
		return indexOf(obj, idx, t.line)

	case callExpr:
		if err := in.budget(t.line); err != nil {
			return nil, err
		}
		fn, err := in.eval(t.fn, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, 0, len(t.args))
		for _, a := range t.args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args = append(args, v)
		}
		return in.callValue(fn, args, t.line)

	default:
		return nil, &RuntimeError{Msg: fmt.Sprintf("unknown expression %T", e)}
	}
}

func (in *Interp) callValue(fn Value, args []Value, line int) (Value, error) {
	switch f := fn.(type) {
	case HostFunc:
		return f(args)
	case *scriptFunc:
		maxDepth := in.MaxCallDepth
		if maxDepth <= 0 {
			maxDepth = defaultMaxCallDepth
		}
		if in.depth >= maxDepth {
			return nil, fmt.Errorf("%w (line %d)", ErrCallDepth, line)
		}
		in.depth++
		env := newScope(f.env)
		for i, p := range f.params {
			if i < len(args) {
				env.declare(p, args[i])
			} else {
				env.declare(p, nil)
			}
		}
		v, ctl, err := in.execBlock(f.body, env)
		in.depth--
		if err != nil {
			return nil, err
		}
		if ctl == ctlBreak || ctl == ctlContinue {
			return nil, &RuntimeError{Line: line, Msg: "break/continue outside loop"}
		}
		return v, nil
	default:
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s is not callable", TypeName(fn))}
	}
}

func (in *Interp) assignTo(target expr, v Value, env *scope, line int) error {
	switch t := target.(type) {
	case identExpr:
		if !env.assign(t.name, v) {
			return &RuntimeError{Line: line, Msg: fmt.Sprintf("assignment to undeclared variable %q", t.name)}
		}
		return nil
	case memberExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		ho, ok := obj.(*HostObject)
		if !ok {
			return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot set member on %s", TypeName(obj))}
		}
		ho.Members[t.name] = v
		return nil
	case indexExpr:
		obj, err := in.eval(t.obj, env)
		if err != nil {
			return err
		}
		arr, ok := obj.(*Array)
		if !ok {
			return &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot index-assign %s", TypeName(obj))}
		}
		iv, err := in.eval(t.index, env)
		if err != nil {
			return err
		}
		n, err := toNumber(iv, line)
		if err != nil {
			return err
		}
		i := int(n)
		if i < 0 || i >= len(arr.Elems) {
			return &RuntimeError{Line: line, Msg: fmt.Sprintf("index %d out of range [0,%d)", i, len(arr.Elems))}
		}
		arr.Elems[i] = v
		return nil
	default:
		return &RuntimeError{Line: line, Msg: "invalid assignment target"}
	}
}

// --- value semantics ----------------------------------------------------

func truthy(v Value) bool {
	switch t := v.(type) {
	case nil:
		return false
	case bool:
		return t
	case float64:
		return t != 0 && !math.IsNaN(t)
	case string:
		return t != ""
	default:
		return true
	}
}

func toNumber(v Value, line int) (float64, error) {
	switch t := v.(type) {
	case float64:
		return t, nil
	case bool:
		if t {
			return 1, nil
		}
		return 0, nil
	case string:
		n, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil {
			return 0, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot convert %q to number", t)}
		}
		return n, nil
	case nil:
		return 0, nil
	default:
		return 0, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot convert %s to number", TypeName(v))}
	}
}

// ToString renders a value the way the script runtime would.
func ToString(v Value) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		if t {
			return "true"
		}
		return "false"
	case float64:
		if t == math.Trunc(t) && math.Abs(t) < 1e15 {
			return strconv.FormatInt(int64(t), 10)
		}
		return strconv.FormatFloat(t, 'g', -1, 64)
	case string:
		return t
	case *Array:
		parts := make([]string, len(t.Elems))
		for i, e := range t.Elems {
			parts[i] = ToString(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case *HostObject:
		return "[object " + t.Name + "]"
	default:
		return fmt.Sprintf("[%s]", TypeName(v))
	}
}

// TypeName reports a value's script-level type name.
func TypeName(v Value) string {
	switch v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case float64:
		return "number"
	case string:
		return "string"
	case *Array:
		return "array"
	case *HostObject:
		return "hostobject"
	case HostFunc, *scriptFunc:
		return "function"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func binaryOp(op string, x, y Value, line int) (Value, error) {
	switch op {
	case "+":
		if xs, ok := x.(string); ok {
			return xs + ToString(y), nil
		}
		if ys, ok := y.(string); ok {
			return ToString(x) + ys, nil
		}
		xn, err := toNumber(x, line)
		if err != nil {
			return nil, err
		}
		yn, err := toNumber(y, line)
		if err != nil {
			return nil, err
		}
		return xn + yn, nil
	case "-", "*", "/", "%":
		xn, err := toNumber(x, line)
		if err != nil {
			return nil, err
		}
		yn, err := toNumber(y, line)
		if err != nil {
			return nil, err
		}
		switch op {
		case "-":
			return xn - yn, nil
		case "*":
			return xn * yn, nil
		case "/":
			return xn / yn, nil
		default:
			return math.Mod(xn, yn), nil
		}
	case "==", "===":
		return looseEqual(x, y), nil
	case "!=", "!==":
		return !looseEqual(x, y), nil
	case "<", ">", "<=", ">=":
		if xs, xok := x.(string); xok {
			if ys, yok := y.(string); yok {
				return compareOrdered(op, strings.Compare(xs, ys)), nil
			}
		}
		xn, err := toNumber(x, line)
		if err != nil {
			return nil, err
		}
		yn, err := toNumber(y, line)
		if err != nil {
			return nil, err
		}
		switch {
		case xn < yn:
			return compareOrdered(op, -1), nil
		case xn > yn:
			return compareOrdered(op, 1), nil
		default:
			return compareOrdered(op, 0), nil
		}
	default:
		return nil, &RuntimeError{Line: line, Msg: "unknown operator " + op}
	}
}

func compareOrdered(op string, cmp int) bool {
	switch op {
	case "<":
		return cmp < 0
	case ">":
		return cmp > 0
	case "<=":
		return cmp <= 0
	default:
		return cmp >= 0
	}
}

func looseEqual(x, y Value) bool {
	if x == nil && y == nil {
		return true
	}
	switch xt := x.(type) {
	case float64:
		if yt, ok := y.(float64); ok {
			return xt == yt
		}
	case string:
		if yt, ok := y.(string); ok {
			return xt == yt
		}
	case bool:
		if yt, ok := y.(bool); ok {
			return xt == yt
		}
	case *Array:
		if yt, ok := y.(*Array); ok {
			return xt == yt // identity
		}
	case *HostObject:
		if yt, ok := y.(*HostObject); ok {
			return xt == yt
		}
	}
	return false
}

func memberOf(obj Value, name string, line int) (Value, error) {
	switch t := obj.(type) {
	case *HostObject:
		v, ok := t.Members[name]
		if !ok {
			return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("%s has no member %q", t.Name, name)}
		}
		return v, nil
	case *Array:
		switch name {
		case "length":
			return float64(len(t.Elems)), nil
		case "push":
			return HostFunc(func(args []Value) (Value, error) {
				t.Elems = append(t.Elems, args...)
				return float64(len(t.Elems)), nil
			}), nil
		case "pop":
			return HostFunc(func([]Value) (Value, error) {
				if len(t.Elems) == 0 {
					return nil, nil
				}
				v := t.Elems[len(t.Elems)-1]
				t.Elems = t.Elems[:len(t.Elems)-1]
				return v, nil
			}), nil
		case "join":
			return HostFunc(func(args []Value) (Value, error) {
				sep := ","
				if len(args) > 0 {
					sep = ToString(args[0])
				}
				parts := make([]string, len(t.Elems))
				for i, e := range t.Elems {
					parts[i] = ToString(e)
				}
				return strings.Join(parts, sep), nil
			}), nil
		}
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("array has no member %q", name)}
	case string:
		switch name {
		case "length":
			return float64(len(t)), nil
		case "indexOf":
			return HostFunc(func(args []Value) (Value, error) {
				if len(args) < 1 {
					return float64(-1), nil
				}
				return float64(strings.Index(t, ToString(args[0]))), nil
			}), nil
		case "substring":
			return HostFunc(func(args []Value) (Value, error) {
				start, end := 0, len(t)
				if len(args) > 0 {
					n, err := toNumber(args[0], line)
					if err != nil {
						return nil, err
					}
					start = clampIndex(int(n), len(t))
				}
				if len(args) > 1 {
					n, err := toNumber(args[1], line)
					if err != nil {
						return nil, err
					}
					end = clampIndex(int(n), len(t))
				}
				if start > end {
					start, end = end, start
				}
				return t[start:end], nil
			}), nil
		case "toUpperCase":
			return HostFunc(func([]Value) (Value, error) { return strings.ToUpper(t), nil }), nil
		case "toLowerCase":
			return HostFunc(func([]Value) (Value, error) { return strings.ToLower(t), nil }), nil
		}
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("string has no member %q", name)}
	default:
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot read member %q of %s", name, TypeName(obj))}
	}
}

func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

func indexOf(obj, idx Value, line int) (Value, error) {
	switch t := obj.(type) {
	case *Array:
		n, err := toNumber(idx, line)
		if err != nil {
			return nil, err
		}
		i := int(n)
		if i < 0 || i >= len(t.Elems) {
			return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("index %d out of range [0,%d)", i, len(t.Elems))}
		}
		return t.Elems[i], nil
	case string:
		n, err := toNumber(idx, line)
		if err != nil {
			return nil, err
		}
		i := int(n)
		if i < 0 || i >= len(t) {
			return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("string index %d out of range", i)}
		}
		return string(t[i]), nil
	case *HostObject:
		return memberOf(obj, ToString(idx), line)
	default:
		return nil, &RuntimeError{Line: line, Msg: fmt.Sprintf("cannot index %s", TypeName(obj))}
	}
}

func (in *Interp) installStdlib() {
	in.SetGlobal("Math", &HostObject{Name: "Math", Members: map[string]Value{
		"floor": HostFunc(func(args []Value) (Value, error) { return math.Floor(arg0Num(args)), nil }),
		"ceil":  HostFunc(func(args []Value) (Value, error) { return math.Ceil(arg0Num(args)), nil }),
		"abs":   HostFunc(func(args []Value) (Value, error) { return math.Abs(arg0Num(args)), nil }),
		"max": HostFunc(func(args []Value) (Value, error) {
			out := math.Inf(-1)
			for _, a := range args {
				if n, ok := a.(float64); ok && n > out {
					out = n
				}
			}
			return out, nil
		}),
		"min": HostFunc(func(args []Value) (Value, error) {
			out := math.Inf(1)
			for _, a := range args {
				if n, ok := a.(float64); ok && n < out {
					out = n
				}
			}
			return out, nil
		}),
	}})
	in.SetGlobal("String", HostFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return "", nil
		}
		return ToString(args[0]), nil
	}))
	in.SetGlobal("Number", HostFunc(func(args []Value) (Value, error) {
		if len(args) == 0 {
			return float64(0), nil
		}
		return toNumber(args[0], 0)
	}))
}

func arg0Num(args []Value) float64 {
	if len(args) == 0 {
		return math.NaN()
	}
	if n, ok := args[0].(float64); ok {
		return n
	}
	return math.NaN()
}
