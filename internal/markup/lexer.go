// Package markup implements the interactive-application content the
// player engine executes: a SMIL-lite layout/timing model (the paper's
// choice of SMIL for the markup part, §8.1) and an interpreter for an
// ECMAScript subset (the paper's choice for the code part).
//
// The interpreter exists so the security properties are observable:
// tampering with a signed script changes behaviour the engine would
// execute, and the verification pipeline provably bars it.
package markup

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokString
	tokIdent
	tokKeyword
	tokPunct
)

var keywords = map[string]bool{
	"var": true, "function": true, "return": true,
	"if": true, "else": true, "while": true, "for": true,
	"true": true, "false": true, "null": true,
	"break": true, "continue": true,
}

type token struct {
	kind tokenKind
	text string
	num  float64
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of script"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a script lexing or parsing failure with a line
// number.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script:%d: %s", e.Line, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

// lexAll tokenizes the whole source.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

var punctuators = []string{
	// Longest first.
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "(", ")", "{", "}", "[", "]", ",", ";", ".", "!", ":", "?",
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '"' || c == '\'':
		return l.lexString(c)
	}
	// Identifier start requires a properly decoded rune: a bare byte
	// converted to a rune would misclassify invalid UTF-8 (e.g. 0xFA
	// looks like 'ú') and stall the lexer.
	if r, size := utf8.DecodeRuneInString(l.src[l.pos:]); isIdentStart(r) && !(r == utf8.RuneError && size == 1) {
		return l.lexIdent()
	}
	for _, p := range punctuators {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: l.line}, nil
		}
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return token{}, l.errorf("unexpected character %q", r)
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.line += strings.Count(l.src[l.pos:l.pos+2+end+2], "\n")
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	var num float64
	if _, err := fmt.Sscanf(text, "%g", &num); err != nil {
		return token{}, l.errorf("malformed number %q", text)
	}
	return token{kind: tokNumber, text: text, num: num, line: l.line}, nil
}

func (l *lexer) lexString(quote byte) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{kind: tokString, text: b.String(), line: l.line}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated escape")
			}
			esc := l.src[l.pos]
			l.pos++
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"':
				b.WriteByte(esc)
			default:
				return token{}, l.errorf("unknown escape \\%c", esc)
			}
		case '\n':
			return token{}, l.errorf("newline in string literal")
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errorf("unterminated string literal")
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	if l.pos == start {
		// Defense in depth: the caller guarantees a valid identifier
		// start, but never loop without consuming input.
		return token{}, l.errorf("malformed identifier")
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	return token{kind: kind, text: text, line: l.line}, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || unicode.IsDigit(r)
}
