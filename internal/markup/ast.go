package markup

// AST node types for the ECMAScript subset.

type expr interface{ exprNode() }

type (
	numberLit struct{ value float64 }
	stringLit struct{ value string }
	boolLit   struct{ value bool }
	nullLit   struct{}
	identExpr struct {
		name string
		line int
	}
	arrayLit  struct{ elems []expr }
	unaryExpr struct {
		op   string
		x    expr
		line int
	}
	binaryExpr struct {
		op   string
		x, y expr
		line int
	}
	condExpr struct {
		cond, then, els expr
	}
	assignExpr struct {
		target expr // identExpr, memberExpr, or indexExpr
		op     string
		value  expr
		line   int
	}
	callExpr struct {
		fn   expr
		args []expr
		line int
	}
	memberExpr struct {
		obj  expr
		name string
		line int
	}
	indexExpr struct {
		obj, index expr
		line       int
	}
	funcLit struct {
		params []string
		body   []stmt
	}
	// updateExpr is ++/-- in prefix or postfix position.
	updateExpr struct {
		target  expr
		op      string
		postfix bool
		line    int
	}
)

func (numberLit) exprNode()  {}
func (stringLit) exprNode()  {}
func (boolLit) exprNode()    {}
func (nullLit) exprNode()    {}
func (identExpr) exprNode()  {}
func (arrayLit) exprNode()   {}
func (unaryExpr) exprNode()  {}
func (binaryExpr) exprNode() {}
func (condExpr) exprNode()   {}
func (assignExpr) exprNode() {}
func (callExpr) exprNode()   {}
func (memberExpr) exprNode() {}
func (indexExpr) exprNode()  {}
func (funcLit) exprNode()    {}
func (updateExpr) exprNode() {}

type stmt interface{ stmtNode() }

type (
	varStmt struct {
		name string
		init expr // may be nil
		line int
	}
	exprStmt  struct{ x expr }
	blockStmt struct{ body []stmt }
	ifStmt    struct {
		cond      expr
		then, els stmt // els may be nil
	}
	whileStmt struct {
		cond expr
		body stmt
	}
	forStmt struct {
		init stmt // may be nil (varStmt or exprStmt)
		cond expr // may be nil
		post expr // may be nil
		body stmt
	}
	returnStmt struct {
		value expr // may be nil
		line  int
	}
	breakStmt    struct{ line int }
	continueStmt struct{ line int }
	funcDecl     struct {
		name string
		fn   funcLit
		line int
	}
)

func (varStmt) stmtNode()      {}
func (exprStmt) stmtNode()     {}
func (blockStmt) stmtNode()    {}
func (ifStmt) stmtNode()       {}
func (whileStmt) stmtNode()    {}
func (forStmt) stmtNode()      {}
func (returnStmt) stmtNode()   {}
func (breakStmt) stmtNode()    {}
func (continueStmt) stmtNode() {}
func (funcDecl) stmtNode()     {}

// Program is a parsed script ready for execution.
type Program struct {
	body []stmt
}
