// Package workload generates deterministic synthetic content for the
// benchmark harness: manifests of parametric size and shape, clusters
// with realistic track mixes, high-score state, and raw payloads. Every
// generator is seeded so experiment runs are reproducible.
package workload

import (
	"fmt"
	"strings"

	"discsec/internal/disc"
	"discsec/internal/markup"
	"discsec/internal/xmldom"
)

// rng is a splitmix64 deterministic generator.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// Bytes produces n deterministic pseudo-random bytes.
func Bytes(n int, seed uint64) []byte {
	r := newRNG(seed)
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.next()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// ManifestSpec parameterizes synthetic application manifests.
type ManifestSpec struct {
	// ID is the manifest identifier.
	ID string
	// Regions is the layout region count (min 1).
	Regions int
	// MediaItems is the number of timed media items.
	MediaItems int
	// ScriptStatements approximates script length in statements.
	ScriptStatements int
	// Scripts is the number of scripts the statements are split
	// across (min 1).
	Scripts int
	// HighScoreEntries adds a state submarkup with score entries (the
	// paper's encrypt-only-the-scores scenario); 0 omits it.
	HighScoreEntries int
	// Seed drives all pseudo-random choices.
	Seed uint64
}

func (s *ManifestSpec) normalize() {
	if s.ID == "" {
		s.ID = "app-bench"
	}
	if s.Regions < 1 {
		s.Regions = 1
	}
	if s.MediaItems < 1 {
		s.MediaItems = 1
	}
	if s.Scripts < 1 {
		s.Scripts = 1
	}
	if s.ScriptStatements < 1 {
		s.ScriptStatements = 1
	}
}

// Manifest generates a manifest matching the spec.
func Manifest(spec ManifestSpec) *disc.Manifest {
	spec.normalize()
	r := newRNG(spec.Seed)

	layout := &markup.Layout{}
	for i := 0; i < spec.Regions; i++ {
		layout.Regions = append(layout.Regions, markup.Region{
			ID:     fmt.Sprintf("region-%d", i),
			Left:   r.intn(1920),
			Top:    r.intn(1080),
			Width:  1 + r.intn(1920),
			Height: 1 + r.intn(1080),
			ZIndex: r.intn(8),
		})
	}

	timing := &markup.TimingNode{Kind: "seq"}
	for i := 0; i < spec.MediaItems; i++ {
		kinds := []string{"img", "video", "text"}
		timing.Children = append(timing.Children, &markup.TimingNode{
			Kind:   kinds[r.intn(len(kinds))],
			Src:    fmt.Sprintf("asset-%d.bin", i),
			Region: fmt.Sprintf("region-%d", r.intn(spec.Regions)),
			DurMS:  int64(500 + r.intn(10000)),
		})
	}

	m := &disc.Manifest{
		ID: spec.ID,
		Markup: disc.Markup{SubMarkups: []disc.SubMarkup{
			{Kind: "layout", Content: layout.Element()},
			{Kind: "timing", Content: timing.Element()},
		}},
	}

	if spec.HighScoreEntries > 0 {
		m.Markup.SubMarkups = append(m.Markup.SubMarkups, disc.SubMarkup{
			Kind:    "state",
			Content: HighScores(spec.HighScoreEntries, spec.Seed),
		})
	}

	perScript := spec.ScriptStatements / spec.Scripts
	if perScript < 1 {
		perScript = 1
	}
	for i := 0; i < spec.Scripts; i++ {
		m.Code.Scripts = append(m.Code.Scripts, disc.Script{
			Language: "ecmascript",
			Source:   Script(perScript, spec.Seed+uint64(i)),
		})
	}
	return m
}

// Script generates a runnable script of approximately n statements that
// terminates quickly and exercises arithmetic, strings, and functions.
func Script(n int, seed uint64) string {
	r := newRNG(seed)
	var b strings.Builder
	b.WriteString("var acc = 0;\nvar label = \"run\";\n")
	b.WriteString("function mix(a, b) { return a * 31 + b; }\n")
	for i := 0; i < n; i++ {
		switch r.intn(4) {
		case 0:
			fmt.Fprintf(&b, "acc = mix(acc, %d);\n", r.intn(1000))
		case 1:
			fmt.Fprintf(&b, "acc += %d;\n", r.intn(100))
		case 2:
			fmt.Fprintf(&b, "label = label + \"%c\";\n", 'a'+rune(r.intn(26)))
		default:
			fmt.Fprintf(&b, "if (acc %% 2 == 0) { acc = acc / 2; } else { acc = acc * 3 + 1; }\n")
		}
	}
	return b.String()
}

// HighScores generates the game-state submarkup content: a highscores
// element with n entries.
func HighScores(n int, seed uint64) *xmldom.Element {
	r := newRNG(seed)
	el := xmldom.NewElement("state")
	el.DeclareNamespace("", "urn:discsec:game")
	hs := el.CreateChild("highscores")
	for i := 0; i < n; i++ {
		e := hs.CreateChild("entry")
		e.SetAttr("player", playerName(r))
		e.SetAttr("score", fmt.Sprintf("%d", r.intn(1000000)))
		e.SetAttr("level", fmt.Sprintf("%d", 1+r.intn(99)))
	}
	return el
}

func playerName(r *rng) string {
	var b [3]byte
	for i := range b {
		b[i] = byte('A' + r.intn(26))
	}
	return string(b[:])
}

// ClusterSpec parameterizes synthetic interactive clusters.
type ClusterSpec struct {
	// AVTracks and AppTracks set the track mix.
	AVTracks, AppTracks int
	// Manifest configures application manifests (ID is suffixed per
	// track).
	Manifest ManifestSpec
	// ClipDurationMS/ClipBitrateKbps size the generated clips.
	ClipDurationMS  int64
	ClipBitrateKbps int
	// Seed drives all randomness.
	Seed uint64
}

// Cluster generates a cluster plus its clip payloads keyed by image
// path.
func Cluster(spec ClusterSpec) (*disc.InteractiveCluster, map[string][]byte) {
	if spec.AVTracks < 0 {
		spec.AVTracks = 0
	}
	if spec.AppTracks < 1 {
		spec.AppTracks = 1
	}
	if spec.ClipDurationMS <= 0 {
		spec.ClipDurationMS = 1000
	}
	if spec.ClipBitrateKbps <= 0 {
		spec.ClipBitrateKbps = 2000
	}

	c := &disc.InteractiveCluster{Title: "Synthetic Feature"}
	clips := map[string][]byte{}

	for i := 0; i < spec.AVTracks; i++ {
		clipID := fmt.Sprintf("clip-%d", i+1)
		path := "CLIPS/" + clipID + ".m2ts"
		clips[path] = disc.GenerateClip(disc.ClipSpec{
			DurationMS:  spec.ClipDurationMS,
			BitrateKbps: spec.ClipBitrateKbps,
			Seed:        spec.Seed + uint64(i),
		})
		c.Tracks = append(c.Tracks, &disc.Track{
			ID:   fmt.Sprintf("t-av-%d", i+1),
			Kind: disc.TrackAV,
			Playlist: &disc.Playlist{
				Name:  fmt.Sprintf("playlist-%d", i+1),
				Items: []disc.PlayItem{{ClipID: clipID, InMS: 0, OutMS: spec.ClipDurationMS}},
			},
		})
	}

	for i := 0; i < spec.AppTracks; i++ {
		ms := spec.Manifest
		ms.ID = fmt.Sprintf("%s-%d", defaultString(ms.ID, "app"), i+1)
		ms.Seed = spec.Seed + 1000 + uint64(i)
		c.Tracks = append(c.Tracks, &disc.Track{
			ID:       fmt.Sprintf("t-app-%d", i+1),
			Kind:     disc.TrackApplication,
			Manifest: Manifest(ms),
		})
	}
	return c, clips
}

func defaultString(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// XMLDocument generates a generic XML document of approximately
// targetBytes serialized size, for canonicalization and signing
// throughput benchmarks.
func XMLDocument(targetBytes int, seed uint64) *xmldom.Document {
	r := newRNG(seed)
	doc := &xmldom.Document{}
	root := xmldom.NewElement("payload")
	root.DeclareNamespace("", "urn:discsec:bench")
	root.DeclareNamespace("m", "urn:discsec:bench-meta")
	doc.SetRoot(root)

	size := 0
	for i := 0; size < targetBytes; i++ {
		section := root.CreateChild("section")
		section.SetAttr("n", fmt.Sprintf("%d", i))
		for j := 0; j < 4 && size < targetBytes; j++ {
			item := section.CreateChild("item")
			item.SetAttr("m:k", fmt.Sprintf("v%d", r.intn(100)))
			text := fmt.Sprintf("data-%d-%d ", r.next()%100000, r.next()%100000)
			item.AddText(strings.Repeat(text, 1+r.intn(3)))
			size += 48 + len(text)
		}
		size += 24
	}
	return doc
}
