package workload

import (
	"bytes"
	"testing"

	"discsec/internal/disc"
	"discsec/internal/markup"
)

func TestBytesDeterministic(t *testing.T) {
	a := Bytes(100, 1)
	b := Bytes(100, 1)
	c := Bytes(100, 2)
	if !bytes.Equal(a, b) {
		t.Error("same seed differs")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds identical")
	}
	if len(Bytes(0, 1)) != 0 || len(Bytes(13, 1)) != 13 {
		t.Error("length wrong")
	}
}

func TestManifestGeneration(t *testing.T) {
	m := Manifest(ManifestSpec{
		ID: "bench-app", Regions: 3, MediaItems: 5,
		ScriptStatements: 20, Scripts: 2, HighScoreEntries: 4, Seed: 7,
	})
	if m.ID != "bench-app" {
		t.Errorf("id = %q", m.ID)
	}
	if len(m.Markup.SubMarkups) != 3 {
		t.Fatalf("submarkups = %d", len(m.Markup.SubMarkups))
	}
	// Layout parses and has the requested regions.
	l, err := markup.ParseLayout(m.Markup.SubMarkups[0].Content)
	if err != nil {
		t.Fatalf("layout: %v", err)
	}
	if len(l.Regions) != 3 {
		t.Errorf("regions = %d", len(l.Regions))
	}
	// Timing parses, validates against the layout, and schedules.
	tn, err := markup.ParseTiming(m.Markup.SubMarkups[1].Content)
	if err != nil {
		t.Fatalf("timing: %v", err)
	}
	if err := tn.ValidateAgainstLayout(l); err != nil {
		t.Errorf("timing/layout mismatch: %v", err)
	}
	if len(tn.Schedule()) != 5 {
		t.Errorf("schedule = %d events", len(tn.Schedule()))
	}
	// High scores present.
	hs := m.Markup.SubMarkups[2].Content.FirstChildElement("highscores")
	if hs == nil || len(hs.ChildElements()) != 4 {
		t.Error("highscores wrong")
	}
	if len(m.Code.Scripts) != 2 {
		t.Errorf("scripts = %d", len(m.Code.Scripts))
	}
}

func TestGeneratedScriptsExecute(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		src := Script(50, seed)
		in := markup.NewInterp()
		if err := in.RunSource(src); err != nil {
			t.Errorf("seed %d: generated script failed: %v\n%s", seed, err, src)
		}
	}
}

func TestScriptDeterministic(t *testing.T) {
	if Script(30, 9) != Script(30, 9) {
		t.Error("same seed differs")
	}
	if Script(30, 9) == Script(30, 10) {
		t.Error("different seeds identical")
	}
}

func TestClusterGeneration(t *testing.T) {
	c, clips := Cluster(ClusterSpec{
		AVTracks: 2, AppTracks: 2,
		Manifest:       ManifestSpec{ScriptStatements: 10},
		ClipDurationMS: 100, ClipBitrateKbps: 1000,
		Seed: 11,
	})
	if len(c.Tracks) != 4 {
		t.Fatalf("tracks = %d", len(c.Tracks))
	}
	if len(clips) != 2 {
		t.Fatalf("clips = %d", len(clips))
	}
	for path, data := range clips {
		if err := disc.ValidateClip(data); err != nil {
			t.Errorf("clip %s invalid: %v", path, err)
		}
	}
	// The cluster round-trips through its XML form.
	back, err := disc.ParseClusterString(c.Document().String())
	if err != nil {
		t.Fatalf("cluster reparse: %v", err)
	}
	if len(back.Tracks) != 4 {
		t.Errorf("reparsed tracks = %d", len(back.Tracks))
	}
}

func TestXMLDocumentSizing(t *testing.T) {
	for _, target := range []int{500, 5000, 50000} {
		doc := XMLDocument(target, 3)
		size := len(doc.Bytes())
		if size < target/2 || size > target*3 {
			t.Errorf("target %d produced %d bytes", target, size)
		}
	}
	// Deterministic.
	if !bytes.Equal(XMLDocument(1000, 5).Bytes(), XMLDocument(1000, 5).Bytes()) {
		t.Error("same seed differs")
	}
}

func TestHighScoresShape(t *testing.T) {
	el := HighScores(10, 1)
	hs := el.FirstChildElement("highscores")
	if hs == nil {
		t.Fatal("no highscores")
	}
	entries := hs.ChildElements()
	if len(entries) != 10 {
		t.Fatalf("entries = %d", len(entries))
	}
	for _, e := range entries {
		if e.AttrValue("player") == "" || e.AttrValue("score") == "" {
			t.Errorf("entry missing attrs: %s", e.String())
		}
	}
}
