// Package experiments contains the fixtures and operations behind every
// reproduced table and figure (DESIGN.md experiment index E1–E7, C1).
// The root bench_test.go times these operations under testing.B; the
// cmd/discbench harness times them with its own stopwatch and prints the
// tables EXPERIMENTS.md records.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/omadcf"
	"discsec/internal/player"
	"discsec/internal/workload"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// Fixed deterministic keys for symmetric experiments.
var (
	// HMACKey authenticates XML and DCF packages alike in E1/E2, so
	// the comparison isolates framing cost from asymmetric-crypto
	// cost.
	HMACKey = workload.Bytes(32, 0xA11CE)
	// EncKey is the shared AES-128 content key (DCF v2.0 mandates
	// AES-128-CBC; the XML side uses the same cipher for parity).
	EncKey = workload.Bytes(16, 0xB0B)
	// EncKey256 is used by modern-mode ablations.
	EncKey256 = workload.Bytes(32, 0xC0DE)
)

// PKI is the lazily built experiment PKI (ECDSA: fast issuance).
var pkiOnce sync.Once
var pki struct {
	Root    *keymgmt.CA
	Creator *keymgmt.Identity
}

// PKIFixture returns the shared experiment PKI.
func PKIFixture() (*keymgmt.CA, *keymgmt.Identity) {
	pkiOnce.Do(func() {
		root, err := keymgmt.NewRootCA("Experiment Root", keymgmt.ECDSAP256)
		if err != nil {
			panic(err)
		}
		creator, err := root.IssueIdentity("Experiment Studio", keymgmt.ECDSAP256)
		if err != nil {
			panic(err)
		}
		pki.Root, pki.Creator = root, creator
	})
	return pki.Root, pki.Creator
}

// --- E1/E2: XML security vs. OMA DCF ------------------------------------

// BuildXMLPackage protects a payload the XML way: the octets become an
// EncryptedData (AES-128-CBC, matching DCF), wrapped in an enveloped
// HMAC-SHA256 signature — integrity plus confidentiality, the same
// guarantees the DCF baseline provides.
func BuildXMLPackage(payload []byte) ([]byte, error) {
	doc, err := xmlenc.EncryptOctets(payload, xmlenc.EncryptOptions{
		Algorithm: xmlsecuri.EncAES128CBC,
		Key:       EncKey,
		MimeType:  "application/octet-stream",
	})
	if err != nil {
		return nil, err
	}
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		HMACKey:         HMACKey,
		SignatureMethod: xmlsecuri.SigHMACSHA256,
	}); err != nil {
		return nil, err
	}
	return doc.Bytes(), nil
}

// OpenXMLPackage verifies and decrypts an XML package.
func OpenXMLPackage(pkg []byte) ([]byte, error) {
	doc, err := xmldom.ParseBytes(pkg)
	if err != nil {
		return nil, err
	}
	if _, err := xmldsig.VerifyDocument(doc, xmldsig.VerifyOptions{HMACKey: HMACKey}); err != nil {
		return nil, err
	}
	eds := xmlenc.FindEncryptedData(doc)
	if len(eds) != 1 {
		return nil, fmt.Errorf("experiments: %d EncryptedData in package", len(eds))
	}
	return xmlenc.DecryptOctets(eds[0], xmlenc.DecryptOptions{Key: EncKey})
}

// BuildDCFPackage protects a payload the binary way.
func BuildDCFPackage(payload []byte) ([]byte, error) {
	return omadcf.Protect(payload, dcfOptions())
}

// OpenDCFPackage verifies and decrypts a DCF package.
func OpenDCFPackage(pkg []byte) ([]byte, error) {
	return omadcf.Unprotect(pkg, dcfOptions())
}

func dcfOptions() omadcf.ProtectOptions {
	return omadcf.ProtectOptions{
		ContentType:   "application/octet-stream",
		KeyHint:       "cid:bench@studio.example",
		EncryptionKey: EncKey,
		MACKey:        HMACKey,
	}
}

// E1Payloads is the payload sweep of the overhead experiment.
var E1Payloads = []int{256, 512, 1024, 4096, 16384, 65536, 262144, 1048576}

// --- E3/E4: signing granularity and forms --------------------------------

// StandardCluster builds the fixed evaluation cluster: three A/V tracks
// and one application with three submarkups and two scripts, mirroring
// the paper's reference application shape.
func StandardCluster() (*disc.InteractiveCluster, map[string][]byte) {
	return workload.Cluster(workload.ClusterSpec{
		AVTracks:  3,
		AppTracks: 1,
		Manifest: workload.ManifestSpec{
			Regions:          4,
			MediaItems:       8,
			Scripts:          2,
			ScriptStatements: 60,
			HighScoreEntries: 16,
		},
		ClipDurationMS:  200,
		ClipBitrateKbps: 8000,
		Seed:            2005,
	})
}

// GranularityTarget describes one E3 signing target.
type GranularityTarget struct {
	Name  string
	Level core.Level
	ID    string
}

// GranularityTargets lists the E3 sweep, broadest first.
func GranularityTargets() []GranularityTarget {
	return []GranularityTarget{
		{"cluster", core.LevelCluster, ""},
		{"track", core.LevelTrack, "t-app-1"},
		{"manifest", core.LevelManifest, "app-1"},
		{"markup", core.LevelMarkup, "app-1"},
		{"code", core.LevelCode, "app-1"},
	}
}

// E3 uses a large cluster (several application tracks with heavy
// manifests) so the digested-content volume differs visibly across
// granularities: cluster >> track >> manifest >> markup/code.
var e3Once sync.Once
var e3DocBytes []byte

// E3ClusterBytes returns the cached serialized unsigned E3 cluster.
func E3ClusterBytes() []byte {
	e3Once.Do(func() {
		cluster, _ := workload.Cluster(workload.ClusterSpec{
			AVTracks:  2,
			AppTracks: 6,
			Manifest: workload.ManifestSpec{
				Regions:          8,
				MediaItems:       48,
				Scripts:          4,
				ScriptStatements: 600,
				HighScoreEntries: 64,
			},
			ClipDurationMS: 50,
			Seed:           3,
		})
		e3DocBytes = cluster.Document().Bytes()
	})
	return e3DocBytes
}

var e3TemplateOnce sync.Once
var e3Template *xmldom.Document

func e3ParsedTemplate() *xmldom.Document {
	e3TemplateOnce.Do(func() {
		doc, err := xmldom.ParseBytes(E3ClusterBytes())
		if err != nil {
			panic(err)
		}
		e3Template = doc
	})
	return e3Template
}

// SignAtLevel parses a fresh copy of the E3 cluster and signs it at the
// target granularity, returning the serialized signed document (the
// full authoring path including parse and serialize).
func SignAtLevel(t GranularityTarget) ([]byte, error) {
	_, creator := PKIFixture()
	doc, err := xmldom.ParseBytes(E3ClusterBytes())
	if err != nil {
		return nil, err
	}
	p := &core.Protector{Identity: creator}
	if _, err := p.Sign(doc, t.Level, t.ID); err != nil {
		return nil, err
	}
	return doc.Bytes(), nil
}

// SignOnlyAtLevel signs a clone of the pre-parsed E3 cluster, excluding
// parse and serialization so the measurement isolates digest coverage
// (canonicalize + hash + sign).
func SignOnlyAtLevel(t GranularityTarget) error {
	_, creator := PKIFixture()
	doc := e3ParsedTemplate().Clone()
	p := &core.Protector{Identity: creator}
	_, err := p.Sign(doc, t.Level, t.ID)
	return err
}

// ParsedSignedAtLevel returns a parsed signed document for
// VerifyOnly measurements.
func ParsedSignedAtLevel(t GranularityTarget) (*xmldom.Document, error) {
	raw, err := SignAtLevel(t)
	if err != nil {
		return nil, err
	}
	return xmldom.ParseBytes(raw)
}

// VerifyOnly validates the signatures of a pre-parsed document,
// excluding parse time. The document carries no encrypted regions, so
// repeated calls observe identical state.
func VerifyOnly(doc *xmldom.Document) error {
	root, _ := PKIFixture()
	opener := &core.Opener{Roots: root.Pool(), RequireSignature: true}
	_, err := opener.OpenDocument(context.Background(), doc)
	return err
}

// VerifySigned verifies a document produced by SignAtLevel.
func VerifySigned(raw []byte) error {
	root, _ := PKIFixture()
	opener := &core.Opener{Roots: root.Pool(), RequireSignature: true}
	_, err := opener.Open(context.Background(), raw)
	return err
}

// SignatureForm is one E4 variant.
type SignatureForm string

// The three XML-DSig forms of the paper's Fig. 6.
const (
	FormEnveloped  SignatureForm = "enveloped"
	FormEnveloping SignatureForm = "enveloping"
	FormDetached   SignatureForm = "detached"
)

// ManifestElement builds the fixed E4 manifest element.
func ManifestElement() *xmldom.Element {
	m := workload.Manifest(workload.ManifestSpec{
		ID: "e4-app", Regions: 2, MediaItems: 4, ScriptStatements: 30, Seed: 4,
	})
	return m.Element()
}

// SignForm signs the E4 manifest in the given form, returning the
// serialized signature document (enveloped: manifest containing the
// signature; enveloping: signature containing the manifest; detached:
// standalone signature referencing the manifest bytes externally).
func SignForm(form SignatureForm) (pkg []byte, external []byte, err error) {
	_, creator := PKIFixture()
	opts := xmldsig.SignOptions{
		Key:             creator.Key,
		SignatureMethod: xmlsecuri.SigECDSASHA256,
		KeyInfo:         xmldsig.KeyInfoSpec{Certificates: creator.Chain},
	}
	el := ManifestElement()
	switch form {
	case FormEnveloped:
		doc := &xmldom.Document{}
		doc.SetRoot(el)
		if _, err := xmldsig.SignEnveloped(doc, doc.Root(), opts); err != nil {
			return nil, nil, err
		}
		return doc.Bytes(), nil, nil
	case FormEnveloping:
		doc, err := xmldsig.SignEnveloping(el, "e4-object", opts)
		if err != nil {
			return nil, nil, err
		}
		return doc.Bytes(), nil, nil
	case FormDetached:
		content := el.Bytes()
		resolver := xmldsig.ExternalResolverFunc(func(uri string) ([]byte, error) {
			if uri == "disc://APPS/e4-app/manifest.xml" {
				return content, nil
			}
			return nil, fmt.Errorf("unknown uri %q", uri)
		})
		doc, err := xmldsig.SignDetached([]xmldsig.ReferenceSpec{
			{URI: "disc://APPS/e4-app/manifest.xml"},
		}, resolver, opts)
		if err != nil {
			return nil, nil, err
		}
		return doc.Bytes(), content, nil
	default:
		return nil, nil, fmt.Errorf("experiments: unknown form %q", form)
	}
}

// VerifyForm verifies a SignForm output.
func VerifyForm(form SignatureForm, pkg, external []byte) error {
	root, _ := PKIFixture()
	doc, err := xmldom.ParseBytes(pkg)
	if err != nil {
		return err
	}
	vo := xmldsig.VerifyOptions{Roots: root.Pool()}
	if form == FormDetached {
		vo.Resolver = xmldsig.ExternalResolverFunc(func(uri string) ([]byte, error) {
			return external, nil
		})
	}
	_, err = xmldsig.VerifyDocument(doc, vo)
	return err
}

// --- E5: full vs. partial encryption --------------------------------------

// GameDocument builds a game manifest document with n high-score
// entries; the rest of the manifest (markup + code) is the invariant
// "general application markup" the paper suggests leaving unencrypted.
func GameDocument(scoreEntries int) *xmldom.Document {
	return GameDocumentSized(scoreEntries, 80)
}

// GameDocumentSized controls both the sensitive region (score entries)
// and the unencrypted remainder (script statements). The paper's
// partial-encryption advantage grows with the remainder: full
// encryption pays for bytes partial encryption never touches.
func GameDocumentSized(scoreEntries, scriptStatements int) *xmldom.Document {
	m := workload.Manifest(workload.ManifestSpec{
		ID: "game", Regions: 3, MediaItems: 6,
		ScriptStatements: scriptStatements, HighScoreEntries: scoreEntries, Seed: 55,
	})
	doc := &xmldom.Document{}
	doc.SetRoot(m.Element())
	return doc
}

// EncryptFull encrypts the entire manifest element content.
func EncryptFull(doc *xmldom.Document) error {
	_, err := xmlenc.EncryptContent(doc.Root(), xmlenc.EncryptOptions{
		Algorithm: xmlsecuri.EncAES128CBC, Key: EncKey,
	})
	return err
}

// EncryptScoresOnly encrypts only the high-score state submarkup.
func EncryptScoresOnly(doc *xmldom.Document) error {
	el, err := doc.Root().Find("//submarkup[@kind='state']")
	if err != nil {
		return err
	}
	if el == nil {
		return fmt.Errorf("experiments: no state submarkup")
	}
	_, err = xmlenc.EncryptElement(el, xmlenc.EncryptOptions{
		Algorithm: xmlsecuri.EncAES128CBC, Key: EncKey,
	})
	return err
}

// DecryptAllIn opens every encrypted region.
func DecryptAllIn(raw []byte) error {
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return err
	}
	_, err = xmlenc.DecryptAll(doc, xmlenc.DecryptOptions{Key: EncKey})
	return err
}

// --- E6: end-to-end pipeline ---------------------------------------------

// PipelineStages runs the Fig. 9 flow once, returning the serialized
// artifacts each stage produces so callers can time the stages
// separately.
type PipelineArtifacts struct {
	Authored    []byte // signed + encrypted document
	PackedImage []byte // full disc image container
}

// AuthorPipeline performs the authoring half: build cluster, sign
// (cluster level), encrypt code regions, package the image.
func AuthorPipeline() (*PipelineArtifacts, error) {
	_, creator := PKIFixture()
	cluster, clips := StandardCluster()
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster: cluster,
		Clips:   clips,
		PermissionRequests: map[string]*access.PermissionRequest{
			"app-1": GamePermissions("app-1"),
		},
		Sign:         true,
		SignLevel:    core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: EncKey},
		SignClips:    true,
	})
	if err != nil {
		return nil, err
	}
	authored, err := im.Get(disc.IndexPath)
	if err != nil {
		return nil, err
	}
	return &PipelineArtifacts{Authored: authored, PackedImage: im.Bytes()}, nil
}

// PlayerPipeline performs the consumption half on a packed image:
// unpack, decrypt+verify, permissions, execute. Returns the execution
// report.
func PlayerPipeline(packed []byte) (*player.ExecutionReport, error) {
	return PlayerPipelineContext(context.Background(), packed)
}

// PlayerPipelineContext is PlayerPipeline under a caller context; a
// recorder attached with obs.WithRecorder observes every stage.
func PlayerPipelineContext(ctx context.Context, packed []byte) (*player.ExecutionReport, error) {
	root, _ := PKIFixture()
	im, err := disc.ReadImageBytes(packed)
	if err != nil {
		return nil, err
	}
	e := player.NewEngine(
		player.WithTrustPool(root.Pool()),
		player.WithPolicy(PlatformPolicy()),
		player.WithStorage(disc.NewLocalStorage(0)),
		player.WithDecryptKeys(xmlenc.DecryptOptions{Key: EncKey}),
		player.WithRequireSignature(true),
	)
	sess, err := e.Load(ctx, im)
	if err != nil {
		return nil, err
	}
	return sess.RunApplication("t-app-1")
}

// GamePermissions is the standard permission request of the experiment
// application.
func GamePermissions(appID string) *access.PermissionRequest {
	return &access.PermissionRequest{
		AppID: appID,
		Permissions: []access.Permission{
			{Name: access.PermLocalStorageRead, Target: appID + "/*"},
			{Name: access.PermLocalStorageWrite, Target: appID + "/*"},
			{Name: access.PermGraphicsPlane},
		},
	}
}

// PlatformPolicy is the experiment platform policy: verified
// applications get what they ask for, unverified nothing.
func PlatformPolicy() *access.PDP {
	return &access.PDP{PolicySet: access.PolicySet{
		ID:        "experiment-platform",
		Combining: access.DenyOverrides,
		Policies: []access.Policy{{
			ID:        "verified-gate",
			Combining: access.FirstApplicable,
			Rules: []access.Rule{
				{
					ID:     "deny-unverified",
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified",
						Op: access.OpEquals, Value: "true",
					}},
				},
				{ID: "permit-rest", Effect: access.EffectPermit},
			},
		}},
	}}
}

// --- E7: player startup configurations ------------------------------------

// StartupConfig is one E7 protection configuration.
type StartupConfig string

// E7 configurations.
const (
	StartupClear            StartupConfig = "clear"
	StartupSigned           StartupConfig = "signed"
	StartupSignedEncrypted  StartupConfig = "signed+encrypted"
	StartupSignedPartialEnc StartupConfig = "signed+partial-enc"
)

// StartupConfigs lists the E7 sweep.
func StartupConfigs() []StartupConfig {
	return []StartupConfig{StartupClear, StartupSigned, StartupSignedEncrypted, StartupSignedPartialEnc}
}

// BuildStartupImage packages the standard cluster under a configuration.
func BuildStartupImage(cfg StartupConfig) ([]byte, error) {
	_, creator := PKIFixture()
	cluster, clips := StandardCluster()
	spec := core.PackageSpec{
		Cluster: cluster,
		Clips:   clips,
		PermissionRequests: map[string]*access.PermissionRequest{
			"app-1": GamePermissions("app-1"),
		},
	}
	switch cfg {
	case StartupClear:
	case StartupSigned:
		spec.Sign = true
		spec.SignLevel = core.LevelCluster
	case StartupSignedEncrypted:
		spec.Sign = true
		spec.SignLevel = core.LevelCluster
		spec.EncryptPaths = []string{"//manifest"}
		spec.Encryption = xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: EncKey}
	case StartupSignedPartialEnc:
		spec.Sign = true
		spec.SignLevel = core.LevelCluster
		spec.EncryptPaths = []string{"//submarkup[@kind='state']"}
		spec.Encryption = xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: EncKey}
	default:
		return nil, fmt.Errorf("experiments: unknown startup config %q", cfg)
	}
	p := &core.Protector{Identity: creator}
	im, err := p.Package(spec)
	if err != nil {
		return nil, err
	}
	return im.Bytes(), nil
}

// RunStartup loads a startup image and executes the application (cold
// start to last script statement).
func RunStartup(packed []byte, requireSignature bool) error {
	root, _ := PKIFixture()
	im, err := disc.ReadImageBytes(packed)
	if err != nil {
		return err
	}
	e := player.NewEngine(
		player.WithTrustPool(root.Pool()),
		player.WithPolicy(PlatformPolicy()),
		player.WithStorage(disc.NewLocalStorage(0)),
		player.WithDecryptKeys(xmlenc.DecryptOptions{Key: EncKey}),
		player.WithRequireSignature(requireSignature),
	)
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		return err
	}
	rep, err := sess.RunApplication("t-app-1")
	if err != nil {
		return err
	}
	if len(rep.ScriptErrors) > 0 {
		return fmt.Errorf("experiments: script errors: %v", rep.ScriptErrors)
	}
	return nil
}
