package experiments

import (
	"bytes"
	"testing"
)

func TestXMLPackageRoundTrip(t *testing.T) {
	payload := []byte("interactive application payload")
	pkg, err := BuildXMLPackage(payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenXMLPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Error("round trip mismatch")
	}
}

func TestDCFPackageRoundTrip(t *testing.T) {
	payload := []byte("interactive application payload")
	pkg, err := BuildDCFPackage(payload)
	if err != nil {
		t.Fatal(err)
	}
	back, err := OpenDCFPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Error("round trip mismatch")
	}
}

// E1's headline claim must hold in this implementation: XML framing
// costs a multiple of the binary framing at small payloads, decaying
// toward the base64 floor (~1.33x) for large ones.
func TestOverheadShape(t *testing.T) {
	ratio := func(n int) float64 {
		payload := make([]byte, n)
		x, err := BuildXMLPackage(payload)
		if err != nil {
			t.Fatal(err)
		}
		d, err := BuildDCFPackage(payload)
		if err != nil {
			t.Fatal(err)
		}
		return float64(len(x)) / float64(len(d))
	}
	small := ratio(256)
	mid := ratio(4096)
	large := ratio(1 << 20)
	if small <= mid || mid <= large {
		t.Errorf("overhead not decaying: %0.2f, %0.2f, %0.2f", small, mid, large)
	}
	if small < 2.0 {
		t.Errorf("small-payload ratio %0.2f below the paper's band", small)
	}
	if large < 1.25 || large > 1.6 {
		t.Errorf("large-payload ratio %0.2f should approach the base64 floor", large)
	}
}

func TestSignAtAllLevels(t *testing.T) {
	for _, target := range GranularityTargets() {
		raw, err := SignAtLevel(target)
		if err != nil {
			t.Fatalf("%s: sign: %v", target.Name, err)
		}
		if err := VerifySigned(raw); err != nil {
			t.Fatalf("%s: verify: %v", target.Name, err)
		}
	}
}

func TestSignatureForms(t *testing.T) {
	for _, form := range []SignatureForm{FormEnveloped, FormEnveloping, FormDetached} {
		pkg, ext, err := SignForm(form)
		if err != nil {
			t.Fatalf("%s: sign: %v", form, err)
		}
		if err := VerifyForm(form, pkg, ext); err != nil {
			t.Fatalf("%s: verify: %v", form, err)
		}
	}
}

func TestEncryptGranularity(t *testing.T) {
	full := GameDocument(32)
	if err := EncryptFull(full); err != nil {
		t.Fatal(err)
	}
	partial := GameDocument(32)
	if err := EncryptScoresOnly(partial); err != nil {
		t.Fatal(err)
	}
	// Partial ciphertext is smaller than full ciphertext.
	if len(partial.Bytes()) >= len(full.Bytes())+len(partial.Bytes())/10 {
		// partial keeps cleartext markup, so overall doc may be a bit
		// larger than pure payload comparisons; the decrypt cost is
		// what E5 measures. Just ensure both decrypt.
		t.Log("partial vs full size comparison is workload-dependent")
	}
	if err := DecryptAllIn(full.Bytes()); err != nil {
		t.Errorf("full decrypt: %v", err)
	}
	if err := DecryptAllIn(partial.Bytes()); err != nil {
		t.Errorf("partial decrypt: %v", err)
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	art, err := AuthorPipeline()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := PlayerPipeline(art.PackedImage)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScriptErrors) != 0 {
		t.Errorf("script errors: %v", rep.ScriptErrors)
	}
	if len(rep.Granted) == 0 {
		t.Error("no permissions granted to verified app")
	}
}

func TestStartupConfigs(t *testing.T) {
	for _, cfg := range StartupConfigs() {
		packed, err := BuildStartupImage(cfg)
		if err != nil {
			t.Fatalf("%s: build: %v", cfg, err)
		}
		require := cfg != StartupClear
		if err := RunStartup(packed, require); err != nil {
			t.Fatalf("%s: run: %v", cfg, err)
		}
	}
}
