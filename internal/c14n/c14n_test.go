package c14n

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"discsec/internal/xmldom"
)

func canon(t *testing.T, xmlText string, opts Options) string {
	t.Helper()
	out, err := CanonicalizeString(xmlText, opts)
	if err != nil {
		t.Fatalf("canonicalize %q: %v", xmlText, err)
	}
	return string(out)
}

func canonElem(t *testing.T, e *xmldom.Element, opts Options) string {
	t.Helper()
	out, err := Canonicalize(e, opts)
	if err != nil {
		t.Fatalf("canonicalize element: %v", err)
	}
	return string(out)
}

func TestByURI(t *testing.T) {
	for _, uri := range []string{
		"http://www.w3.org/TR/2001/REC-xml-c14n-20010315",
		"http://www.w3.org/TR/2001/REC-xml-c14n-20010315#WithComments",
		"http://www.w3.org/2001/10/xml-exc-c14n#",
		"http://www.w3.org/2001/10/xml-exc-c14n#WithComments",
	} {
		opts, err := ByURI(uri)
		if err != nil {
			t.Errorf("ByURI(%q): %v", uri, err)
		}
		if got := opts.URI(); got != uri {
			t.Errorf("round trip %q -> %q", uri, got)
		}
	}
	if _, err := ByURI("urn:nope"); err == nil {
		t.Error("unknown URI accepted")
	}
}

func TestEmptyElementExpansion(t *testing.T) {
	got := canon(t, `<doc><e1/><e2 ></e2></doc>`, Options{})
	want := `<doc><e1></e1><e2></e2></doc>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestAttributeOrdering(t *testing.T) {
	// Namespace declarations first (sorted by prefix), then attributes
	// sorted by (namespace URI, local name); unprefixed attrs first.
	in := `<doc xmlns:b="urn:b" xmlns:a="urn:a" b:attr="b" a:attr="a" attr2="2" attr1="1"/>`
	got := canon(t, in, Options{})
	want := `<doc xmlns:a="urn:a" xmlns:b="urn:b" attr1="1" attr2="2" a:attr="a" b:attr="b"></doc>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestDefaultNamespaceBeforePrefixed(t *testing.T) {
	in := `<doc xmlns:p="urn:p" xmlns="urn:d"><p:e/></doc>`
	got := canon(t, in, Options{})
	want := `<doc xmlns="urn:d" xmlns:p="urn:p"><p:e></p:e></doc>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestSuperfluousNamespaceRemoved(t *testing.T) {
	// A child redeclaring the identical binding must not re-render it.
	in := `<a xmlns:p="urn:p"><b xmlns:p="urn:p"><p:c/></b></a>`
	got := canon(t, in, Options{})
	want := `<a xmlns:p="urn:p"><b><p:c></p:c></b></a>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestRebindingRendered(t *testing.T) {
	in := `<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:c/></b></a>`
	got := canon(t, in, Options{})
	want := `<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:c></p:c></b></a>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestEmptyDefaultNamespaceHandling(t *testing.T) {
	// xmlns="" rendered only where it cancels an inherited default.
	in := `<a xmlns="urn:d"><b xmlns=""><c/></b></a>`
	got := canon(t, in, Options{})
	want := `<a xmlns="urn:d"><b xmlns=""><c></c></b></a>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
	// Gratuitous xmlns="" with no inherited default is dropped.
	in2 := `<a xmlns=""><b xmlns=""/></a>`
	got2 := canon(t, in2, Options{})
	want2 := `<a><b></b></a>`
	if got2 != want2 {
		t.Errorf("got  %q\nwant %q", got2, want2)
	}
}

func TestXMLPrefixNotRendered(t *testing.T) {
	in := `<a xml:lang="en"><b/></a>`
	got := canon(t, in, Options{})
	want := `<a xml:lang="en"><b></b></a>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestCommentStripping(t *testing.T) {
	in := `<a><!-- gone -->text<!-- gone too --></a>`
	if got := canon(t, in, Options{}); got != `<a>text</a>` {
		t.Errorf("without comments: %q", got)
	}
	if got := canon(t, in, Options{WithComments: true}); got != `<a><!-- gone -->text<!-- gone too --></a>` {
		t.Errorf("with comments: %q", got)
	}
}

func TestTopLevelPIsAndComments(t *testing.T) {
	in := "<?pi1 one?><!-- c1 --><doc/><!-- c2 --><?pi2 two?>"
	got := canon(t, in, Options{WithComments: true})
	want := "<?pi1 one?>\n<!-- c1 -->\n<doc></doc>\n<!-- c2 -->\n<?pi2 two?>"
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
	gotNC := canon(t, in, Options{})
	wantNC := "<?pi1 one?>\n<doc></doc>\n<?pi2 two?>"
	if gotNC != wantNC {
		t.Errorf("no comments: got %q want %q", gotNC, wantNC)
	}
}

func TestCharacterEscaping(t *testing.T) {
	in := "<a attr=\"x&amp;y&lt;z&quot;&#9;&#10;&#13;\">t&amp;u&lt;v&gt;w&#13;</a>"
	got := canon(t, in, Options{})
	want := `<a attr="x&amp;y&lt;z&quot;&#x9;&#xA;&#xD;">t&amp;u&lt;v&gt;w&#xD;</a>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestCDATAFlattened(t *testing.T) {
	got := canon(t, `<a><![CDATA[<x>&]]></a>`, Options{})
	want := `<a>&lt;x&gt;&amp;</a>`
	if got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestSubtreeApexInheritsNamespaces(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns:p="urn:p" xmlns="urn:d"><p:mid><inner a="1"/></p:mid></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{})
	// Inclusive c14n of a subtree renders all in-scope namespaces at
	// the apex.
	want := `<p:mid xmlns="urn:d" xmlns:p="urn:p"><inner a="1"></inner></p:mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestSubtreeApexImportsXMLAttrs(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xml:lang="en" xml:base="http://x/"><mid xml:lang="de"><leaf/></mid></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{})
	// Nearest xml:lang wins (de, on mid itself); xml:base imported.
	want := `<mid xml:base="http://x/" xml:lang="de"><leaf></leaf></mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestExclusiveOnlyVisiblyUtilized(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns:used="urn:u" xmlns:unused="urn:x"><used:mid><used:leaf/></used:mid></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{Exclusive: true})
	want := `<used:mid xmlns:used="urn:u"><used:leaf></used:leaf></used:mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestExclusiveNoReRender(t *testing.T) {
	in := `<a:r xmlns:a="urn:a"><a:c><a:d/></a:c></a:r>`
	got := canon(t, in, Options{Exclusive: true})
	want := `<a:r xmlns:a="urn:a"><a:c><a:d></a:d></a:c></a:r>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestExclusiveAttributePrefixUtilized(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns:q="urn:q"><mid q:attr="v"/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{Exclusive: true})
	want := `<mid xmlns:q="urn:q" q:attr="v"></mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestExclusiveInclusivePrefixList(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns:extra="urn:e" xmlns:used="urn:u"><used:mid/></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{Exclusive: true, InclusivePrefixes: []string{"extra"}})
	want := `<used:mid xmlns:extra="urn:e" xmlns:used="urn:u"></used:mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

func TestExclusiveDefaultNamespace(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns="urn:d"><mid><leaf/></mid></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	got := canonElem(t, mid, Options{Exclusive: true})
	// mid and leaf use the default namespace, so it is visibly
	// utilized on each; rendered once at the apex.
	want := `<mid xmlns="urn:d"><leaf></leaf></mid>`
	if got != want {
		t.Errorf("got  %q\nwant %q", got, want)
	}
}

// The paper's §5.4 motivation: syntactic variants of the same document
// must canonicalize identically.
func TestSyntacticVariantsConverge(t *testing.T) {
	variants := []string{
		"<doc a=\"1\" b=\"2\"><e/></doc>",
		"<doc b=\"2\" a=\"1\"><e></e></doc>",
		"<doc\tb=\"2\"\n   a=\"1\"><e/></doc>",
		"<doc a=\"1\" b=\"2\"><e/></doc><!-- trailing -->",
	}
	var first string
	for i, v := range variants {
		got := canon(t, v, Options{})
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Errorf("variant %d diverged:\n%q\nvs\n%q", i, got, first)
		}
	}
}

// Property: canonicalization is idempotent — canonical output re-parses
// and re-canonicalizes to itself.
func TestCanonicalizationIdempotentProperty(t *testing.T) {
	seeds := []string{
		`<a xmlns:p="urn:p" p:x="1" b="2"><p:c>t&amp;</p:c><d xml:space="preserve"> </d></a>`,
		`<r xmlns="urn:d"><m xmlns=""><n/></m></r>`,
		`<r><!-- c --><?pi d?>text</r>`,
	}
	for _, mode := range []Options{{}, {WithComments: true}, {Exclusive: true}} {
		for _, s := range seeds {
			c1 := canon(t, s, mode)
			c2 := canon(t, c1, mode)
			if c1 != c2 {
				t.Errorf("mode %+v not idempotent:\n1: %q\n2: %q", mode, c1, c2)
			}
		}
	}
}

// Property: for randomly shuffled attribute orders, canonical forms are
// equal.
func TestAttributeOrderInvarianceProperty(t *testing.T) {
	f := func(perm []int) bool {
		attrs := []string{`a="1"`, `b="2"`, `c="3"`, `d="4"`, `e="5"`}
		order := make([]string, len(attrs))
		copy(order, attrs)
		for i, p := range perm {
			if len(order) < 2 {
				break
			}
			j := ((p % len(order)) + len(order)) % len(order)
			k := i % len(order)
			order[j], order[k] = order[k], order[j]
		}
		docA := "<r " + strings.Join(attrs, " ") + "/>"
		docB := "<r " + strings.Join(order, " ") + "/>"
		ca, err1 := CanonicalizeString(docA, Options{})
		cb, err2 := CanonicalizeString(docB, Options{})
		return err1 == nil && err2 == nil && bytes.Equal(ca, cb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalizeDocumentNoRoot(t *testing.T) {
	if _, err := CanonicalizeDocument(&xmldom.Document{}, Options{}); err == nil {
		t.Error("empty document accepted")
	}
}

// Differential property: the memoized namespace-scope strategy and the
// reference ancestor-walk strategy produce byte-identical canonical
// forms on generated documents with varied namespace structure.
func TestNamespaceStrategyDifferentialProperty(t *testing.T) {
	build := func(seed uint32) *xmldom.Document {
		// Deterministic doc with nested, shadowed, and cancelled
		// namespace declarations driven by the seed.
		s := seed
		next := func(n uint32) uint32 {
			s = s*1664525 + 1013904223
			return s % n
		}
		doc := &xmldom.Document{}
		root := xmldom.NewElement("r")
		root.DeclareNamespace("", "urn:d0")
		root.DeclareNamespace("a", "urn:a0")
		doc.SetRoot(root)
		cur := root
		for i := 0; i < 12; i++ {
			var name string
			switch next(3) {
			case 0:
				name = "a:n"
			case 1:
				name = "n"
			default:
				name = "b:n"
			}
			child := cur.CreateChild(name)
			switch next(5) {
			case 0:
				child.DeclareNamespace("a", "urn:a1") // rebind
			case 1:
				child.DeclareNamespace("", "") // cancel default
			case 2:
				child.DeclareNamespace("b", "urn:b0")
			case 3:
				child.DeclareNamespace("a", "urn:a0") // superfluous
			}
			if next(2) == 0 {
				child.SetAttr("a:k", "v")
			}
			if child.NamespaceURI() == "" && name == "b:n" {
				// Unbound prefix would be unserializable context;
				// bind it locally.
				child.DeclareNamespace("b", "urn:bfix")
			}
			if next(2) == 0 {
				cur = child
			}
		}
		return doc
	}
	for seed := uint32(0); seed < 40; seed++ {
		doc := build(seed)
		for _, base := range []Options{{}, {Exclusive: true}, {WithComments: true}} {
			ref := base
			ref.ReferenceNamespaceResolution = true
			fast, err1 := CanonicalizeDocument(doc, base)
			slow, err2 := CanonicalizeDocument(doc, ref)
			if err1 != nil || err2 != nil {
				t.Fatalf("seed %d: %v / %v", seed, err1, err2)
			}
			if !bytes.Equal(fast, slow) {
				t.Fatalf("seed %d opts %+v diverged:\nmemoized:  %s\nreference: %s", seed, base, fast, slow)
			}
		}
	}
}

// The same differential check on a subtree apex (inherited namespaces).
func TestNamespaceStrategyDifferentialSubtree(t *testing.T) {
	doc, err := xmldom.ParseString(`<root xmlns="urn:d" xmlns:p="urn:p" xml:lang="en"><p:mid xmlns:q="urn:q"><leaf q:x="1"><p:deep/></leaf></p:mid></root>`)
	if err != nil {
		t.Fatal(err)
	}
	mid := doc.Root().FirstChildElement("mid")
	for _, base := range []Options{{}, {Exclusive: true}, {Exclusive: true, InclusivePrefixes: []string{"p", "#default"}}} {
		ref := base
		ref.ReferenceNamespaceResolution = true
		fast, err1 := Canonicalize(mid, base)
		slow, err2 := Canonicalize(mid, ref)
		if err1 != nil || err2 != nil {
			t.Fatalf("%+v: %v / %v", base, err1, err2)
		}
		if !bytes.Equal(fast, slow) {
			t.Fatalf("opts %+v diverged:\nmemoized:  %s\nreference: %s", base, fast, slow)
		}
	}
}

// Vectors adapted from the C14N 1.0 specification's §3 examples (DTD-
// dependent parts omitted: this stack rejects DTDs by design).
func TestSpecExampleVectors(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		in   string
		want string
	}{
		{
			// §3.1 PIs, comments, and outside of document element.
			name: "spec-3.1-with-comments",
			opts: Options{WithComments: true},
			in:   "<?xml version=\"1.0\"?>\n\n<?xml-stylesheet   href=\"doc.xsl\"\n   type=\"text/xsl\"   ?>\n\n<doc>Hello, world!<!-- Comment 1 --></doc>\n\n<?pi-without-data     ?>\n\n<!-- Comment 2 -->\n\n<!-- Comment 3 -->",
			want: "<?xml-stylesheet href=\"doc.xsl\"\n   type=\"text/xsl\"   ?>\n<doc>Hello, world!<!-- Comment 1 --></doc>\n<?pi-without-data?>\n<!-- Comment 2 -->\n<!-- Comment 3 -->",
		},
		{
			name: "spec-3.1-without-comments",
			opts: Options{},
			in:   "<?xml version=\"1.0\"?>\n\n<?xml-stylesheet   href=\"doc.xsl\"\n   type=\"text/xsl\"   ?>\n\n<doc>Hello, world!<!-- Comment 1 --></doc>\n\n<?pi-without-data     ?>\n\n<!-- Comment 2 -->\n\n<!-- Comment 3 -->",
			want: "<?xml-stylesheet href=\"doc.xsl\"\n   type=\"text/xsl\"   ?>\n<doc>Hello, world!</doc>\n<?pi-without-data?>",
		},
		{
			// §3.3 start and end tags (doctype-declared attributes
			// omitted; namespace handling retained).
			name: "spec-3.3-start-end-tags",
			opts: Options{},
			in:   "<doc>\n   <e1   />\n   <e2   ></e2>\n   <e3   name = \"elem3\"   id=\"elem3\"   />\n   <e4   name=\"elem4\"   id=\"elem4\"   ></e4>\n   <e5 a:attr=\"out\" b:attr=\"sorted\" attr2=\"all\" attr=\"I'm\"\n      xmlns:b=\"http://www.ietf.org\"\n      xmlns:a=\"http://www.w3.org\"\n      xmlns=\"http://example.org\"/>\n   <e6 xmlns=\"\" xmlns:a=\"http://www.w3.org\">\n      <e7 xmlns=\"http://www.ietf.org\">\n         <e8 xmlns=\"\" xmlns:a=\"http://www.w3.org\">\n            <e9 xmlns=\"\" xmlns:a=\"http://www.ietf.org\"/>\n         </e8>\n      </e7>\n   </e6>\n</doc>",
			want: "<doc>\n   <e1></e1>\n   <e2></e2>\n   <e3 id=\"elem3\" name=\"elem3\"></e3>\n   <e4 id=\"elem4\" name=\"elem4\"></e4>\n   <e5 xmlns=\"http://example.org\" xmlns:a=\"http://www.w3.org\" xmlns:b=\"http://www.ietf.org\" attr=\"I'm\" attr2=\"all\" b:attr=\"sorted\" a:attr=\"out\"></e5>\n   <e6 xmlns:a=\"http://www.w3.org\">\n      <e7 xmlns=\"http://www.ietf.org\">\n         <e8 xmlns=\"\">\n            <e9 xmlns:a=\"http://www.ietf.org\"></e9>\n         </e8>\n      </e7>\n   </e6>\n</doc>",
		},
		{
			// §3.4 character modifications and character references
			// (the DTD-declared-attribute portions omitted).
			name: "spec-3.4-char-refs",
			opts: Options{},
			in:   "<doc>\n   <text>First line&#x0d;&#10;Second line</text>\n   <value>&#x32;</value>\n   <compute expr=\"value&gt;&quot;0&quot; &amp;&amp; value&lt;&quot;10&quot; ?&quot;valid&quot;:&quot;error&quot;\">valid</compute>\n   <norm attr=\" '&#x20;&#13;&#xa;&#9;'   \"/>\n</doc>",
			// Note: ">" is NOT escaped in attribute values per the
			// canonical form (only & < " TAB LF CR are).
			want: "<doc>\n   <text>First line&#xD;\nSecond line</text>\n   <value>2</value>\n   <compute expr=\"value>&quot;0&quot; &amp;&amp; value&lt;&quot;10&quot; ?&quot;valid&quot;:&quot;error&quot;\">valid</compute>\n   <norm attr=\" ' &#xD;&#xA;&#x9;'   \"></norm>\n</doc>",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := canon(t, tc.in, tc.opts)
			if got != tc.want {
				t.Errorf("got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}
