// Package c14n implements Canonical XML 1.0 (inclusive, with and without
// comments) and Exclusive XML Canonicalization 1.0, as required by the
// XML Signature core processing rules.
//
// Canonicalization removes the syntactic variation the paper's §5.4 warns
// about — attribute order, redundant namespace declarations, entity
// references, empty-element shorthand — so that semantically equivalent
// markup digests identically.
package c14n

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Options selects a canonicalization algorithm.
type Options struct {
	// WithComments retains comment nodes in the canonical form.
	WithComments bool
	// Exclusive selects Exclusive XML Canonicalization 1.0; the default
	// is inclusive Canonical XML 1.0.
	Exclusive bool
	// InclusivePrefixes is the exclusive-canonicalization
	// InclusiveNamespaces PrefixList: prefixes treated inclusively. The
	// token "#default" denotes the default namespace.
	InclusivePrefixes []string
	// ReferenceNamespaceResolution disables the memoized namespace
	// scope table and resolves namespaces by walking the ancestor
	// chain per element (O(depth) each). It exists as the reference
	// implementation for the DESIGN.md ablation and for differential
	// testing against the memoized default; output is identical.
	ReferenceNamespaceResolution bool
	// Recorder, when non-nil, receives one obs.StageC14N span per
	// canonicalization. It is ignored by URI()/ByURI equivalence.
	Recorder *obs.Recorder
}

// ByURI maps a canonicalization method identifier to Options.
func ByURI(uri string) (Options, error) {
	switch uri {
	case xmlsecuri.C14N10:
		return Options{}, nil
	case xmlsecuri.C14N10WithComments:
		return Options{WithComments: true}, nil
	case xmlsecuri.ExcC14N:
		return Options{Exclusive: true}, nil
	case xmlsecuri.ExcC14NWithComments:
		return Options{Exclusive: true, WithComments: true}, nil
	default:
		return Options{}, fmt.Errorf("c14n: unsupported canonicalization method %q", uri)
	}
}

// URI returns the algorithm identifier for the options.
func (o Options) URI() string {
	switch {
	case o.Exclusive && o.WithComments:
		return xmlsecuri.ExcC14NWithComments
	case o.Exclusive:
		return xmlsecuri.ExcC14N
	case o.WithComments:
		return xmlsecuri.C14N10WithComments
	default:
		return xmlsecuri.C14N10
	}
}

// Canonicalize renders the subtree rooted at e in canonical form. The
// element is treated as the apex of a document subset: for inclusive
// canonicalization its in-scope namespaces and inherited xml:* attributes
// are imported per C14N 1.0; for exclusive canonicalization only visibly
// utilized namespaces are emitted.
func Canonicalize(e *xmldom.Element, opts Options) ([]byte, error) {
	defer opts.Recorder.Start(obs.StageC14N).End()
	var buf bytes.Buffer
	c := &canonicalizer{w: &buf, opts: opts}
	if err := c.element(e, true, nil); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// CanonicalizeDocument renders a whole document in canonical form,
// including top-level processing instructions and (optionally) comments
// with the newline placement the recommendation specifies.
func CanonicalizeDocument(d *xmldom.Document, opts Options) ([]byte, error) {
	defer opts.Recorder.Start(obs.StageC14N).End()
	root := d.Root()
	if root == nil {
		return nil, fmt.Errorf("c14n: document has no root element")
	}
	var buf bytes.Buffer
	c := &canonicalizer{w: &buf, opts: opts}
	seenRoot := false
	for _, n := range d.Children {
		switch t := n.(type) {
		case *xmldom.Element:
			if err := c.element(t, true, nil); err != nil {
				return nil, err
			}
			seenRoot = true
		case *xmldom.ProcInst:
			if seenRoot {
				buf.WriteByte('\n')
			}
			c.procInst(t)
			if !seenRoot {
				buf.WriteByte('\n')
			}
		case *xmldom.Comment:
			if !opts.WithComments {
				continue
			}
			if seenRoot {
				buf.WriteByte('\n')
			}
			c.comment(t)
			if !seenRoot {
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes(), nil
}

type canonicalizer struct {
	w    *bytes.Buffer
	opts Options
	// scopes memoizes the in-scope namespace map per element when the
	// memoized strategy is active (the default). The reference
	// strategy (Options.ReferenceNamespaceResolution) walks the
	// ancestor chain per element instead; both must agree, which the
	// differential property tests assert.
	scopes map[*xmldom.Element]map[string]string
}

// nsEntry is a namespace declaration pending output.
type nsEntry struct {
	prefix string
	uri    string
}

// scopeOf returns the in-scope namespace bindings at e, memoizing
// incrementally: a child's scope extends its parent's only when the
// child declares namespaces.
func (c *canonicalizer) scopeOf(e *xmldom.Element) map[string]string {
	if c.opts.ReferenceNamespaceResolution {
		return fullInScope(e)
	}
	if c.scopes == nil {
		c.scopes = make(map[*xmldom.Element]map[string]string)
	}
	if s, ok := c.scopes[e]; ok {
		return s
	}
	var s map[string]string
	if p := e.ParentElement(); p != nil {
		s = extendScope(c.scopeOf(p), e)
	} else {
		s = fullInScope(e)
	}
	c.scopes[e] = s
	return s
}

// extendScope derives a child scope from the parent's, copying only when
// the element carries namespace declarations.
func extendScope(parent map[string]string, e *xmldom.Element) map[string]string {
	out := parent
	copied := false
	for _, a := range e.Attrs {
		if !a.IsNamespaceDecl() {
			continue
		}
		if !copied {
			out = copyMap(parent)
			copied = true
		}
		out[a.DeclaredPrefix()] = a.Value
	}
	return out
}

// element renders e. For inclusive mode, parent namespace context is
// derived from the real tree (nil ancestors for the apex). For exclusive
// mode, rendered carries the (prefix, uri) pairs already emitted by
// output ancestors.
func (c *canonicalizer) element(e *xmldom.Element, apex bool, rendered map[string]string) error {
	var nsList []nsEntry
	var childRendered map[string]string

	if c.opts.Exclusive {
		nsList, childRendered = c.exclusiveNamespaces(e, rendered)
	} else {
		nsList = c.inclusiveNamespaces(e, apex)
	}

	sort.Slice(nsList, func(i, j int) bool { return nsList[i].prefix < nsList[j].prefix })

	attrs := c.sortedAttrs(e, apex)

	c.w.WriteString("<")
	c.w.WriteString(e.Name())
	for _, ns := range nsList {
		if ns.prefix == "" {
			c.w.WriteString(` xmlns="`)
		} else {
			c.w.WriteString(" xmlns:" + ns.prefix + `="`)
		}
		writeAttrValue(c.w, ns.uri)
		c.w.WriteString(`"`)
	}
	for _, a := range attrs {
		c.w.WriteString(" " + a.Name() + `="`)
		writeAttrValue(c.w, a.Value)
		c.w.WriteString(`"`)
	}
	c.w.WriteString(">")

	for _, child := range e.Children {
		switch t := child.(type) {
		case *xmldom.Element:
			if err := c.element(t, false, childRendered); err != nil {
				return err
			}
		case *xmldom.Text:
			writeText(c.w, t.Data)
		case *xmldom.Comment:
			if c.opts.WithComments {
				c.comment(t)
			}
		case *xmldom.ProcInst:
			c.procInst(t)
		}
	}

	c.w.WriteString("</" + e.Name() + ">")
	return nil
}

// inclusiveNamespaces computes the namespace declarations Canonical XML
// 1.0 renders on e: every in-scope namespace node whose value differs
// from the nearest output ancestor's binding of the same prefix. For the
// apex element the output-ancestor context is empty, so all in-scope
// bindings are rendered.
func (c *canonicalizer) inclusiveNamespaces(e *xmldom.Element, apex bool) []nsEntry {
	inScope := c.scopeOf(e)
	var parentScope map[string]string
	if !apex {
		parentScope = c.scopeOf(e.ParentElement())
	}
	var out []nsEntry
	for prefix, uri := range inScope {
		if prefix == "xml" && uri == xmldom.XMLNamespace {
			continue
		}
		parentURI, inParent := "", false
		if parentScope != nil {
			parentURI, inParent = parentScope[prefix]
		}
		if prefix == "" && uri == "" {
			// xmlns="" is rendered only to cancel an inherited
			// non-empty default namespace.
			if inParent && parentURI != "" {
				out = append(out, nsEntry{prefix: "", uri: ""})
			}
			continue
		}
		if !inParent || parentURI != uri {
			out = append(out, nsEntry{prefix: prefix, uri: uri})
		}
	}
	return out
}

// exclusiveNamespaces computes the namespace declarations Exclusive C14N
// renders on e: visibly utilized prefixes (the element's own prefix and
// prefixes of its non-namespace attributes) plus the InclusiveNamespaces
// PrefixList, each rendered unless an output ancestor already rendered
// the identical binding. It returns the declarations to emit and the
// rendered-context map for e's children.
func (c *canonicalizer) exclusiveNamespaces(e *xmldom.Element, rendered map[string]string) ([]nsEntry, map[string]string) {
	utilized := map[string]bool{e.Prefix: true}
	for _, a := range e.Attrs {
		if a.IsNamespaceDecl() {
			continue
		}
		if a.Prefix != "" {
			utilized[a.Prefix] = true
		}
	}
	for _, p := range c.opts.InclusivePrefixes {
		if p == "#default" {
			utilized[""] = true
		} else {
			utilized[p] = true
		}
	}

	var out []nsEntry
	child := rendered
	copied := false
	emit := func(prefix, uri string) {
		out = append(out, nsEntry{prefix: prefix, uri: uri})
		if !copied {
			child = copyMap(rendered)
			copied = true
		}
		child[prefix] = uri
	}

	scope := c.scopeOf(e)
	for prefix := range utilized {
		uri := scope[prefix]
		if prefix == "xml" && uri == xmldom.XMLNamespace {
			continue
		}
		prev, has := "", false
		if rendered != nil {
			prev, has = rendered[prefix]
		}
		if prefix == "" && uri == "" {
			if has && prev != "" {
				emit("", "")
			}
			continue
		}
		if uri == "" {
			// Unbound non-default prefix: nothing to declare.
			continue
		}
		if !has || prev != uri {
			emit(prefix, uri)
		}
	}
	return out, child
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m)+2)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// fullInScope returns every namespace binding in scope at e, including an
// explicit empty default namespace when an xmlns="" declaration (or the
// absence of any default declaration) leaves the default unbound. The
// map always contains the fixed xml binding. A nil element yields nil.
func fullInScope(e *xmldom.Element) map[string]string {
	if e == nil {
		return nil
	}
	out := map[string]string{"xml": xmldom.XMLNamespace}
	seen := map[string]bool{}
	for cur := e; cur != nil; cur = cur.ParentElement() {
		for _, a := range cur.Attrs {
			if !a.IsNamespaceDecl() {
				continue
			}
			p := a.DeclaredPrefix()
			if seen[p] {
				continue
			}
			seen[p] = true
			out[p] = a.Value
		}
	}
	if _, ok := out[""]; !ok {
		out[""] = ""
	}
	return out
}

// sortedAttrs returns e's non-namespace attributes in canonical order:
// ascending by (namespace URI, local name); unprefixed attributes have no
// namespace and sort first. For the apex of an inclusive canonicalization
// the inheritable xml:* attributes of excluded ancestors are imported.
func (c *canonicalizer) sortedAttrs(e *xmldom.Element, apex bool) []xmldom.Attr {
	var attrs []xmldom.Attr
	present := map[string]bool{}
	for _, a := range e.Attrs {
		if a.IsNamespaceDecl() {
			continue
		}
		attrs = append(attrs, a)
		if a.Prefix == "xml" {
			present[a.Local] = true
		}
	}

	if apex && !c.opts.Exclusive && e.ParentElement() != nil {
		// Import inheritable xml:* attributes (xml:lang, xml:space,
		// xml:base) from excluded ancestors, nearest wins.
		for cur := e.ParentElement(); cur != nil; cur = cur.ParentElement() {
			for _, a := range cur.Attrs {
				if a.Prefix != "xml" || present[a.Local] {
					continue
				}
				if a.Local == "lang" || a.Local == "space" || a.Local == "base" {
					attrs = append(attrs, a)
					present[a.Local] = true
				}
			}
		}
	}

	// Attribute namespace resolution through the scope table (an
	// unprefixed attribute is in no namespace).
	var scope map[string]string
	attrNS := func(a xmldom.Attr) string {
		if a.Prefix == "" {
			return ""
		}
		if a.Prefix == "xml" {
			return xmldom.XMLNamespace
		}
		if scope == nil {
			scope = c.scopeOf(e)
		}
		return scope[a.Prefix]
	}
	sort.SliceStable(attrs, func(i, j int) bool {
		ui := attrNS(attrs[i])
		uj := attrNS(attrs[j])
		if ui != uj {
			return ui < uj
		}
		return attrs[i].Local < attrs[j].Local
	})
	return attrs
}

func (c *canonicalizer) comment(cm *xmldom.Comment) {
	c.w.WriteString("<!--")
	c.w.WriteString(cm.Data)
	c.w.WriteString("-->")
}

func (c *canonicalizer) procInst(pi *xmldom.ProcInst) {
	c.w.WriteString("<?")
	c.w.WriteString(pi.Target)
	if pi.Data != "" {
		c.w.WriteString(" ")
		c.w.WriteString(pi.Data)
	}
	c.w.WriteString("?>")
}

// writeText escapes character data per the canonical form: & < > and CR.
//
//discvet:hotpath inner loop of every digest canonicalization; must not allocate per byte
func writeText(w io.Writer, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		io.WriteString(w, s[last:i])
		io.WriteString(w, rep)
		last = i + 1
	}
	io.WriteString(w, s[last:])
}

// writeAttrValue escapes attribute values per the canonical form:
// & < " TAB LF CR.
//
//discvet:hotpath inner loop of every digest canonicalization; must not allocate per byte
func writeAttrValue(w io.Writer, s string) {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '"':
			rep = "&quot;"
		case '\t':
			rep = "&#x9;"
		case '\n':
			rep = "&#xA;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		io.WriteString(w, s[last:i])
		io.WriteString(w, rep)
		last = i + 1
	}
	io.WriteString(w, s[last:])
}

// CanonicalizeString is a convenience that parses and canonicalizes a
// document in one step, mainly for tests and tools.
func CanonicalizeString(xmlText string, opts Options) ([]byte, error) {
	doc, err := xmldom.ParseString(xmlText)
	if err != nil {
		return nil, err
	}
	return CanonicalizeDocument(doc, opts)
}
