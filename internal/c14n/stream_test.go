package c14n

import (
	"bytes"
	"strings"
	"testing"

	"discsec/internal/xmldom"
	"discsec/internal/xmlstream"
)

// streamCanonical runs one tokenization pass through a Stream and
// returns the canonical bytes.
func streamCanonical(data []byte, opts Options) ([]byte, error) {
	var buf bytes.Buffer
	st, err := NewStream(&buf, opts)
	if err != nil {
		return nil, err
	}
	if err := xmlstream.Parse(bytes.NewReader(data), xmlstream.Options{}, st); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// streamDiffCases are documents exercising every namespace and escaping
// rule the exclusive canonicalizer implements.
var streamDiffCases = []struct {
	name string
	doc  string
}{
	{"plain", `<a><b>text</b></a>`},
	{"attr-order", `<a zeta="1" alpha="2" beta="3"/>`},
	{"prefixed-attrs", `<a xmlns:x="urn:x" xmlns:b="urn:b" x:r="1" b:q="2" plain="3"/>`},
	{"same-uri-two-prefixes", `<a xmlns:x="urn:u" xmlns:y="urn:u" y:k="1" x:k2="2"/>`},
	{"default-ns", `<a xmlns="urn:d"><b/></a>`},
	{"default-cancel", `<a xmlns="urn:d"><b xmlns=""><c/></b></a>`},
	{"redeclare-same", `<x:a xmlns:x="urn:x"><x:b xmlns:x="urn:x"/></x:a>`},
	{"redeclare-different", `<x:a xmlns:x="urn:1"><x:b xmlns:x="urn:2"/><x:c/></x:a>`},
	{"unused-ns-dropped", `<a xmlns:unused="urn:nope"><b>t</b></a>`},
	{"deep-utilization", `<a xmlns:x="urn:x"><b><c x:attr="v"/></b></a>`},
	{"xml-prefix", `<a xml:lang="en" xml:space="preserve"><b xml:base="u"/></a>`},
	{"escapes-text", "<a>&amp;&lt;&gt;\"'\r\n\ttail</a>"},
	{"escapes-attr", "<a v=\"&amp;&lt;&quot;\t\n\rx\"/>"},
	{"cdata-merge", `<a>pre<![CDATA[<raw&>]]>post</a>`},
	{"entities", `<a>&#65;&#x42;c</a>`},
	{"comments-inside", `<a>x<!--inner-->y</a>`},
	{"pi-inside", `<a><?target data?></a>`},
	{"pi-no-data", `<a><?target?></a>`},
	{"top-level-pi-comment", `<?before b?><!--pre--><a/><!--post--><?after a?>`},
	{"whitespace-outside", "\n  <a/>  \n"},
	{"empty-vs-open", `<a></a>`},
	{"mixed", `<s:doc xmlns:s="urn:sig" xmlns:o="urn:o" id="r"><s:part o:x="1">v</s:part><o:tail/></s:doc>`},
}

// TestStreamMatchesTreeWalker pins the tentpole property: the
// incremental canonicalizer produces byte-identical output to
// CanonicalizeDocument for every case, in every exclusive mode.
func TestStreamMatchesTreeWalker(t *testing.T) {
	modes := []struct {
		name string
		opts Options
	}{
		{"excl", Options{Exclusive: true}},
		{"excl-comments", Options{Exclusive: true, WithComments: true}},
		{"excl-inclusive-prefixes", Options{Exclusive: true, InclusivePrefixes: []string{"x", "#default"}}},
	}
	for _, tc := range streamDiffCases {
		for _, m := range modes {
			t.Run(tc.name+"/"+m.name, func(t *testing.T) {
				doc, err := xmldom.ParseString(tc.doc)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				want, err := CanonicalizeDocument(doc, m.opts)
				if err != nil {
					t.Fatalf("tree canonicalize: %v", err)
				}
				got, err := streamCanonical([]byte(tc.doc), m.opts)
				if err != nil {
					t.Fatalf("stream canonicalize: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("stream diverges from tree walker:\n tree:   %q\n stream: %q", want, got)
				}
			})
		}
	}
}

// TestStreamRejectsInclusive pins the mode restriction: the forward
// pass cannot import an apex ancestor context, so inclusive options
// must be refused loudly instead of producing wrong bytes.
func TestStreamRejectsInclusive(t *testing.T) {
	if _, err := NewStream(&bytes.Buffer{}, Options{}); err == nil {
		t.Fatal("NewStream accepted inclusive options")
	}
	if _, err := NewStream(&bytes.Buffer{}, Options{WithComments: true}); err == nil {
		t.Fatal("NewStream accepted inclusive with-comments options")
	}
}

// TestStreamChunkedText pins that chunked character data (the handler
// contract allows splits at CDATA and entity boundaries) escapes
// identically to the merged form.
func TestStreamChunkedText(t *testing.T) {
	var buf bytes.Buffer
	st, err := NewStream(&buf, Options{Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.StartElement("", "a", nil); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []string{"x&", "<", "", "\r", ">y"} {
		if err := st.Text([]byte(chunk)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.EndElement("", "a"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	want := `<a>x&amp;&lt;&#xD;&gt;y</a>`
	if buf.String() != want {
		t.Fatalf("chunked text: got %q want %q", buf.String(), want)
	}
}

// TestStreamSteadyStateAllocs backs the hotpathalloc annotations with a
// runtime measurement: once warm, feeding tokens through the
// canonicalizer allocates nothing.
func TestStreamSteadyStateAllocs(t *testing.T) {
	st, err := NewStream(&countWriter{}, Options{Exclusive: true})
	if err != nil {
		t.Fatal(err)
	}
	attrs := []xmlstream.Attr{
		{Prefix: "xmlns", Local: "x", Value: "urn:x"},
		{Prefix: "x", Local: "k", Value: "v&v"},
		{Prefix: "", Local: "plain", Value: "p"},
	}
	text := []byte(strings.Repeat("payload & <data> ", 8))
	// Warm the scratch buffers.
	feed(st, attrs, text)
	allocs := testing.AllocsPerRun(200, func() { feed(st, attrs, text) })
	if allocs > 0 {
		t.Fatalf("streaming canonicalizer allocates %.1f/op in steady state; hot path must be alloc-free", allocs)
	}
}

func feed(st *Stream, attrs []xmlstream.Attr, text []byte) {
	st.StartElement("x", "el", attrs)
	st.Text(text)
	st.StartElement("", "inner", nil)
	st.Text(text)
	st.EndElement("", "inner")
	st.EndElement("x", "el")
}

// countWriter discards output without growing: a bytes.Buffer would
// reallocate and pollute the alloc measurement.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// FuzzStreamDifferential is the streaming-vs-DOM agreement fuzz target:
// any input the parser accepts must canonicalize to the same bytes
// through the tree walker and the incremental stream, with and without
// comments.
func FuzzStreamDifferential(f *testing.F) {
	for _, tc := range streamDiffCases {
		f.Add([]byte(tc.doc))
	}
	f.Add([]byte(`<a xmlns:x="urn:&quot;x&quot;" x:a="1"/>`))
	f.Add([]byte("<a>" + strings.Repeat("<b>", 40) + strings.Repeat("</b>", 40) + "</a>"))
	f.Add([]byte(`<!DOCTYPE a [<!ENTITY e "v">]><a>&e;</a>`))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := xmldom.ParseBytes(data)
		for _, opts := range []Options{
			{Exclusive: true},
			{Exclusive: true, WithComments: true},
		} {
			got, serr := streamCanonical(data, opts)
			if err != nil {
				if serr == nil {
					t.Fatalf("DOM parse rejected input but stream accepted it: %v", err)
				}
				return
			}
			if serr != nil {
				t.Fatalf("DOM parse accepted input but stream rejected it: %v", serr)
			}
			want, werr := CanonicalizeDocument(doc, opts)
			if werr != nil {
				// The only tree-walker failure mode is a rootless
				// document, which the parser already rejects.
				t.Fatalf("tree canonicalize failed on parsed doc: %v", werr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("canonical divergence (opts %+v):\n tree:   %q\n stream: %q", opts, want, got)
			}
		}
	})
}
