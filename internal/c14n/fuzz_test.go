package c14n

import (
	"bytes"
	"strings"
	"testing"

	"discsec/internal/xmldom"
)

// FuzzCanonicalize checks, for any parseable input, that
// canonicalization never panics, is idempotent, and that the memoized
// and reference namespace strategies agree byte-for-byte.
func FuzzCanonicalize(f *testing.F) {
	seeds := []string{
		`<r/>`,
		`<a xmlns="urn:d" xmlns:p="urn:p" p:k="v"><b xmlns=""><p:c/></b></a>`,
		`<a xml:lang="en"><b xml:space="preserve"> <c/> </b></a>`,
		`<r at="a&#x9;b&#xA;c&#xD;">t&#xD;</r>`,
		`<a xmlns:x="urn:1"><b xmlns:x="urn:1"><x:c/></b></a>`,
		// Entity-like text: predefined references, a numeric reference,
		// and text that merely looks like an entity once decoded.
		`<r a="&amp;notanentity;">&lt;evil&gt; &#38;amp; &amp;#x26;</r>`,
		// Doctype declarations must stay rejected (XXE surface).
		`<!DOCTYPE r [<!ENTITY x "y">]><r>&x;</r>`,
	}
	// Deep nesting probes the depth limit and namespace-scope stack.
	seeds = append(seeds,
		strings.Repeat(`<e xmlns:p="urn:p">`, 48)+`<p:leaf/>`+strings.Repeat(`</e>`, 48))
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := xmldom.ParseBytes(data)
		if err != nil {
			return
		}
		for _, opts := range []Options{{}, {Exclusive: true}, {WithComments: true}} {
			c1, err := CanonicalizeDocument(doc, opts)
			if err != nil {
				continue // malformed comments/PIs may be unserializable
			}
			// Idempotence.
			doc2, err := xmldom.ParseBytes(c1)
			if err != nil {
				t.Fatalf("canonical form does not parse: %v\n%q", err, c1)
			}
			c2, err := CanonicalizeDocument(doc2, opts)
			if err != nil {
				t.Fatalf("re-canonicalize: %v", err)
			}
			if !bytes.Equal(c1, c2) {
				t.Fatalf("not idempotent (opts %+v):\n1: %q\n2: %q", opts, c1, c2)
			}
			// Strategy agreement.
			ref := opts
			ref.ReferenceNamespaceResolution = true
			c3, err := CanonicalizeDocument(doc, ref)
			if err != nil {
				t.Fatalf("reference strategy: %v", err)
			}
			if !bytes.Equal(c1, c3) {
				t.Fatalf("strategies diverged (opts %+v):\nmemoized:  %q\nreference: %q", opts, c1, c3)
			}
		}
	})
}
