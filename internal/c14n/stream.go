package c14n

import (
	"fmt"
	"io"

	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlstream"
)

// Stream is an incremental exclusive canonicalizer: an
// xmlstream.Handler that writes the canonical form of a whole document
// to w as tokens arrive, in one pass, holding only the open-element
// namespace context — never the tree. Feeding it the token stream of a
// document produces byte-identical output to
// CanonicalizeDocument(doc, opts); the differential fuzz targets pin
// that equivalence.
//
// Only exclusive canonicalization streams: inclusive C14N of a
// document subset imports the apex's ancestor context, which a forward
// pass does not have. For whole documents the apex has no ancestors,
// but the library and signature cache keys are exclusive-C14N digests,
// so that is the mode the streaming cold path needs.
//
// A Stream is single-use and not safe for concurrent use. Call Close
// after the parse to flush buffered output.
type Stream struct {
	w    io.Writer
	opts Options
	sp   obs.Span
	err  error

	// buf batches canonical bytes so the writer (typically a hash)
	// sees large writes; it is reused, never retained.
	buf []byte

	// scope holds the in-scope namespace declarations of the open
	// elements in document order; the latest binding of a prefix wins,
	// so lookups scan backward. rendered holds the declarations output
	// ancestors actually emitted (the exclusive-C14N rendered context).
	scope         []nsBinding
	scopeMarks    []int
	rendered      []nsBinding
	renderedMarks []int

	// Per-element scratch, reused across elements.
	utilized []string
	nsOut    []nsBinding
	attrOut  []attrEntry

	depth    int
	seenRoot bool
}

type nsBinding struct {
	prefix, uri string
}

type attrEntry struct {
	uri    string
	prefix string
	local  string
	value  string
}

// streamFlushAt is the buffered-byte threshold that triggers a write
// to the underlying writer.
const streamFlushAt = 32 << 10

// NewStream builds a streaming canonicalizer writing to w. The options
// must select exclusive canonicalization; WithComments and
// InclusivePrefixes are honored. When opts.Recorder is set, one
// obs.StageC14N span covers NewStream through Close.
func NewStream(w io.Writer, opts Options) (*Stream, error) {
	if !opts.Exclusive {
		return nil, fmt.Errorf("c14n: streaming canonicalization supports exclusive mode only")
	}
	return &Stream{
		w:    w,
		opts: opts,
		sp:   opts.Recorder.Start(obs.StageC14N),
		buf:  make([]byte, 0, streamFlushAt),
	}, nil
}

// Close flushes buffered canonical bytes and ends the span. It must be
// called after a successful parse; the canonical output is complete
// only once Close returns nil.
func (s *Stream) Close() error {
	s.flush()
	s.sp.End()
	return s.err
}

// StartElement implements xmlstream.Handler.
//
//discvet:hotpath per-token canonicalization of every streamed verification; scratch buffers are struct fields, reused
func (s *Stream) StartElement(prefix, local string, attrs []xmlstream.Attr) error {
	s.scopeMarks = append(s.scopeMarks, len(s.scope))
	s.renderedMarks = append(s.renderedMarks, len(s.rendered))
	for _, a := range attrs {
		if a.IsNamespaceDecl() {
			s.scope = append(s.scope, nsBinding{prefix: a.DeclaredPrefix(), uri: a.Value})
		}
	}

	// Visibly utilized prefixes: the element's own plus those of its
	// non-namespace attributes, plus the InclusiveNamespaces PrefixList.
	s.utilized = appendUnique(s.utilized[:0], prefix)
	for _, a := range attrs {
		if !a.IsNamespaceDecl() && a.Prefix != "" {
			s.utilized = appendUnique(s.utilized, a.Prefix)
		}
	}
	for _, p := range s.opts.InclusivePrefixes {
		if p == "#default" {
			s.utilized = appendUnique(s.utilized, "")
		} else {
			s.utilized = appendUnique(s.utilized, p)
		}
	}

	// Emit each utilized binding unless an output ancestor already
	// rendered the identical one (the exclusive-C14N rule).
	s.nsOut = s.nsOut[:0]
	for _, p := range s.utilized {
		uri := lookupBinding(s.scope, p)
		if p == "xml" && uri == xmldom.XMLNamespace {
			continue
		}
		prev, has := lookupBindingOK(s.rendered, p)
		if p == "" && uri == "" {
			// xmlns="" is rendered only to cancel an inherited
			// non-empty default namespace.
			if has && prev != "" {
				s.emitNS("", "")
			}
			continue
		}
		if uri == "" {
			// Unbound non-default prefix: nothing to declare.
			continue
		}
		if !has || prev != uri {
			s.emitNS(p, uri)
		}
	}
	sortBindings(s.nsOut)

	// Non-namespace attributes in canonical order: ascending by
	// (namespace URI, local name), document order for ties.
	s.attrOut = s.attrOut[:0]
	for _, a := range attrs {
		if a.IsNamespaceDecl() {
			continue
		}
		s.attrOut = append(s.attrOut, attrEntry{uri: s.attrNS(a), prefix: a.Prefix, local: a.Local, value: a.Value})
	}
	sortAttrEntries(s.attrOut)

	s.buf = append(s.buf, '<')
	s.buf = appendQName(s.buf, prefix, local)
	for _, ns := range s.nsOut {
		if ns.prefix == "" {
			s.buf = append(s.buf, ` xmlns="`...)
		} else {
			s.buf = append(s.buf, ` xmlns:`...)
			s.buf = append(s.buf, ns.prefix...)
			s.buf = append(s.buf, `="`...)
		}
		s.buf = appendAttrValue(s.buf, ns.uri)
		s.buf = append(s.buf, '"')
	}
	for _, a := range s.attrOut {
		s.buf = append(s.buf, ' ')
		s.buf = appendQName(s.buf, a.prefix, a.local)
		s.buf = append(s.buf, `="`...)
		s.buf = appendAttrValue(s.buf, a.value)
		s.buf = append(s.buf, '"')
	}
	s.buf = append(s.buf, '>')

	s.depth++
	s.seenRoot = true
	s.maybeFlush()
	return s.err
}

// EndElement implements xmlstream.Handler.
//
//discvet:hotpath runs on every end tag of a streamed verification
func (s *Stream) EndElement(prefix, local string) error {
	s.buf = append(s.buf, '<', '/')
	s.buf = appendQName(s.buf, prefix, local)
	s.buf = append(s.buf, '>')

	n := len(s.scopeMarks) - 1
	s.scope = s.scope[:s.scopeMarks[n]]
	s.scopeMarks = s.scopeMarks[:n]
	s.rendered = s.rendered[:s.renderedMarks[n]]
	s.renderedMarks = s.renderedMarks[:n]
	s.depth--
	s.maybeFlush()
	return s.err
}

// Text implements xmlstream.Handler. Chunked character data escapes
// identically to the merged text node: the canonical escaping is
// byte-local.
//
//discvet:hotpath character data dominates clip payloads; must not allocate per chunk
func (s *Stream) Text(data []byte) error {
	if s.depth == 0 {
		// Whitespace between top-level constructs is not part of the
		// canonical form (the tree walker never sees it either).
		return nil
	}
	s.buf = appendText(s.buf, data)
	s.maybeFlush()
	return s.err
}

// Comment implements xmlstream.Handler, honoring WithComments and the
// top-level newline placement of the recommendation.
func (s *Stream) Comment(data []byte) error {
	if !s.opts.WithComments {
		return nil
	}
	if s.depth == 0 && s.seenRoot {
		s.buf = append(s.buf, '\n')
	}
	s.buf = append(s.buf, `<!--`...)
	s.buf = append(s.buf, data...)
	s.buf = append(s.buf, `-->`...)
	if s.depth == 0 && !s.seenRoot {
		s.buf = append(s.buf, '\n')
	}
	s.maybeFlush()
	return s.err
}

// ProcInst implements xmlstream.Handler.
func (s *Stream) ProcInst(target string, data []byte) error {
	if s.depth == 0 && s.seenRoot {
		s.buf = append(s.buf, '\n')
	}
	s.buf = append(s.buf, `<?`...)
	s.buf = append(s.buf, target...)
	if len(data) != 0 {
		s.buf = append(s.buf, ' ')
		s.buf = append(s.buf, data...)
	}
	s.buf = append(s.buf, `?>`...)
	if s.depth == 0 && !s.seenRoot {
		s.buf = append(s.buf, '\n')
	}
	s.maybeFlush()
	return s.err
}

// attrNS resolves an attribute's namespace URI: unprefixed attributes
// are in no namespace, xml: is fixed, everything else goes through the
// live scope.
//
//discvet:hotpath attribute ordering on every start tag
func (s *Stream) attrNS(a xmlstream.Attr) string {
	if a.Prefix == "" {
		return ""
	}
	if a.Prefix == "xml" {
		return xmldom.XMLNamespace
	}
	return lookupBinding(s.scope, a.Prefix)
}

//discvet:hotpath namespace emission on every start tag
func (s *Stream) emitNS(prefix, uri string) {
	s.nsOut = append(s.nsOut, nsBinding{prefix: prefix, uri: uri})
	s.rendered = append(s.rendered, nsBinding{prefix: prefix, uri: uri})
}

//discvet:hotpath buffered writes keep the hash fed without per-token Write calls
func (s *Stream) maybeFlush() {
	if len(s.buf) >= streamFlushAt {
		s.flush()
	}
}

func (s *Stream) flush() {
	if s.err == nil && len(s.buf) > 0 {
		_, s.err = s.w.Write(s.buf)
	}
	s.buf = s.buf[:0]
}

// lookupBinding scans the declaration stack backward so the nearest
// declaration of a prefix wins; absent prefixes resolve to "".
//
//discvet:hotpath namespace resolution on every start tag
func lookupBinding(stack []nsBinding, prefix string) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].prefix == prefix {
			return stack[i].uri
		}
	}
	return ""
}

//discvet:hotpath rendered-context probe on every start tag
func lookupBindingOK(stack []nsBinding, prefix string) (string, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].prefix == prefix {
			return stack[i].uri, true
		}
	}
	return "", false
}

//discvet:hotpath utilized-prefix dedup on every start tag
func appendUnique(list []string, s string) []string {
	for _, have := range list {
		if have == s {
			return list
		}
	}
	return append(list, s)
}

// sortBindings is an in-place insertion sort by prefix: element
// namespace lists are tiny and sort.Slice would allocate a closure on
// the hot path.
//
//discvet:hotpath namespace ordering on every start tag
func sortBindings(b []nsBinding) {
	for i := 1; i < len(b); i++ {
		for j := i; j > 0 && b[j].prefix < b[j-1].prefix; j-- {
			b[j], b[j-1] = b[j-1], b[j]
		}
	}
}

// sortAttrEntries is a stable in-place insertion sort by (uri, local):
// equal keys keep document order, matching the tree walker's
// sort.SliceStable.
//
//discvet:hotpath attribute ordering on every start tag
func sortAttrEntries(a []attrEntry) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && attrEntryLess(a[j], a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

//discvet:hotpath attribute ordering comparator
func attrEntryLess(x, y attrEntry) bool {
	if x.uri != y.uri {
		return x.uri < y.uri
	}
	return x.local < y.local
}

//discvet:hotpath qualified-name rendering on every tag
func appendQName(dst []byte, prefix, local string) []byte {
	if prefix != "" {
		dst = append(dst, prefix...)
		dst = append(dst, ':')
	}
	return append(dst, local...)
}

// appendText escapes character data per the canonical form (& < > CR),
// the byte-slice twin of writeText.
//
//discvet:hotpath inner loop of every streamed digest; must not allocate per byte
func appendText(dst, s []byte) []byte {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '>':
			rep = "&gt;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		dst = append(dst, s[last:i]...)
		dst = append(dst, rep...)
		last = i + 1
	}
	return append(dst, s[last:]...)
}

// appendAttrValue escapes attribute values per the canonical form
// (& < " TAB LF CR), the byte-slice twin of writeAttrValue.
//
//discvet:hotpath attribute rendering on every start tag
func appendAttrValue(dst []byte, s string) []byte {
	last := 0
	for i := 0; i < len(s); i++ {
		var rep string
		switch s[i] {
		case '&':
			rep = "&amp;"
		case '<':
			rep = "&lt;"
		case '"':
			rep = "&quot;"
		case '\t':
			rep = "&#x9;"
		case '\n':
			rep = "&#xA;"
		case '\r':
			rep = "&#xD;"
		default:
			continue
		}
		dst = append(dst, s[last:i]...)
		dst = append(dst, rep...)
		last = i + 1
	}
	return append(dst, s[last:]...)
}
