package rights

import (
	"errors"
	"strings"
	"testing"
	"time"

	"discsec/internal/keymgmt"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
)

func sampleLicense() *License {
	return &License{
		ID:     "lic-1",
		Issuer: "Rights Issuer",
		Grants: []Grant{
			{Principal: "*", Right: RightPlay, Resource: "*"},
			{Principal: "device-42", Right: RightCopy, Resource: "app-1", MaxUses: 2},
			{
				Principal: "device-42", Right: RightExport, Resource: "t-av-1",
				NotBefore: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
				NotAfter:  time.Date(2026, 12, 31, 0, 0, 0, 0, time.UTC),
			},
		},
	}
}

func TestLicenseXMLRoundTrip(t *testing.T) {
	l := sampleLicense()
	back, err := Parse(l.Document())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != "lic-1" || back.Issuer != "Rights Issuer" || len(back.Grants) != 3 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Grants[1].MaxUses != 2 {
		t.Errorf("maxuses = %d", back.Grants[1].MaxUses)
	}
	if !back.Grants[2].NotBefore.Equal(l.Grants[2].NotBefore) {
		t.Errorf("notbefore = %v", back.Grants[2].NotBefore)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`<wrong xmlns="urn:discsec:rights"/>`,
		`<license/>`, // wrong namespace
		`<license xmlns="urn:discsec:rights"><grant right="play" resource="*"/></license>`,
		`<license xmlns="urn:discsec:rights"><grant principal="p" right="teleport" resource="*"/></license>`,
		`<license xmlns="urn:discsec:rights"><grant principal="p" right="play" resource="*" maxuses="0"/></license>`,
		`<license xmlns="urn:discsec:rights"><grant principal="p" right="play" resource="*" notafter="yesterday"/></license>`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestExerciseBasic(t *testing.T) {
	e := NewEvaluator(sampleLicense())
	// Anyone can play anything.
	if err := e.Exercise("random-device", RightPlay, "app-1"); err != nil {
		t.Errorf("play: %v", err)
	}
	// Copy is device- and resource-specific.
	if err := e.Exercise("device-42", RightCopy, "app-1"); err != nil {
		t.Errorf("copy: %v", err)
	}
	if err := e.Exercise("device-7", RightCopy, "app-1"); !errors.Is(err, ErrNoGrant) {
		t.Errorf("foreign device copy err = %v", err)
	}
	if err := e.Exercise("device-42", RightCopy, "other-app"); !errors.Is(err, ErrNoGrant) {
		t.Errorf("foreign resource copy err = %v", err)
	}
	if err := e.Exercise("device-42", RightModify, "app-1"); !errors.Is(err, ErrNoGrant) {
		t.Errorf("ungranted right err = %v", err)
	}
}

func TestUseCountExhaustion(t *testing.T) {
	e := NewEvaluator(sampleLicense())
	if n, ok := e.RemainingUses("device-42", RightCopy, "app-1"); !ok || n != 2 {
		t.Errorf("remaining = %d, %v", n, ok)
	}
	if err := e.Exercise("device-42", RightCopy, "app-1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exercise("device-42", RightCopy, "app-1"); err != nil {
		t.Fatal(err)
	}
	if err := e.Exercise("device-42", RightCopy, "app-1"); !errors.Is(err, ErrExhausted) {
		t.Errorf("third copy err = %v", err)
	}
	if n, _ := e.RemainingUses("device-42", RightCopy, "app-1"); n != 0 {
		t.Errorf("remaining after exhaustion = %d", n)
	}
	// Unlimited grant reports -1.
	if n, ok := e.RemainingUses("any", RightPlay, "x"); !ok || n != -1 {
		t.Errorf("unlimited remaining = %d, %v", n, ok)
	}
}

func TestValidityWindow(t *testing.T) {
	e := NewEvaluator(sampleLicense())
	e.Now = func() time.Time { return time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC) }
	if err := e.Exercise("device-42", RightExport, "t-av-1"); !errors.Is(err, ErrExpired) {
		t.Errorf("before window err = %v", err)
	}
	e.Now = func() time.Time { return time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC) }
	if err := e.Exercise("device-42", RightExport, "t-av-1"); err != nil {
		t.Errorf("inside window: %v", err)
	}
	e.Now = func() time.Time { return time.Date(2027, 6, 1, 0, 0, 0, 0, time.UTC) }
	if err := e.Exercise("device-42", RightExport, "t-av-1"); !errors.Is(err, ErrExpired) {
		t.Errorf("after window err = %v", err)
	}
}

// Licenses are ordinary markup: they sign and verify with the existing
// XML-DSig stack, and tampering with a grant is detected.
func TestSignedLicense(t *testing.T) {
	root, err := keymgmt.NewRootCA("Rights Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := root.IssueIdentity("Rights Issuer", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	doc := sampleLicense().Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     issuer.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: issuer.Name, Certificates: issuer.Chain},
	}); err != nil {
		t.Fatal(err)
	}
	transmitted := doc.Root().String()

	rx, err := xmldom.ParseString(transmitted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmldsig.VerifyDocument(rx, xmldsig.VerifyOptions{Roots: root.Pool()}); err != nil {
		t.Fatalf("license verify: %v", err)
	}
	lic, err := Parse(rx)
	if err != nil {
		t.Fatal(err)
	}
	if lic.Issuer != "Rights Issuer" {
		t.Errorf("issuer = %q", lic.Issuer)
	}

	// Attacker upgrades maxuses 2 -> 200: verification must fail.
	tampered := strings.Replace(transmitted, `maxuses="2"`, `maxuses="200"`, 1)
	if tampered == transmitted {
		t.Fatal("setup: maxuses not found")
	}
	rx2, err := xmldom.ParseString(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmldsig.VerifyDocument(rx2, xmldsig.VerifyOptions{Roots: root.Pool()}); err == nil {
		t.Error("tampered license verified")
	}
}

// Parse must tolerate the enveloped signature inside the license
// element (unknown children are ignored).
func TestParseIgnoresSignature(t *testing.T) {
	doc := sampleLicense().Document()
	root, err := keymgmt.NewRootCA("R", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := root.IssueIdentity("I", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{Key: issuer.Key}); err != nil {
		t.Fatal(err)
	}
	lic, err := Parse(doc)
	if err != nil {
		t.Fatalf("parse signed license: %v", err)
	}
	if len(lic.Grants) != 3 {
		t.Errorf("grants = %d", len(lic.Grants))
	}
}
