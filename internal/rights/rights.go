// Package rights implements the XRML-style digital rights expression the
// paper's §9 proposes as future work: "an XML based rights management
// language … to express digital rights for the usage of markup-based
// applications and resources".
//
// A License is an XML document granting named principals usage rights
// (play, copy, export, modify, extract) over resources, optionally
// bounded by a play count and a validity window. Licenses are plain
// markup, so the existing stack applies: they are signed with XML-DSig
// by the rights issuer and verified by the player before being honored.
package rights

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"discsec/internal/xmldom"
)

// Namespace is the rights-expression vocabulary namespace.
const Namespace = "urn:discsec:rights"

// Right enumerates the usage rights the player understands.
type Right string

// Usage rights.
const (
	RightPlay    Right = "play"
	RightCopy    Right = "copy"
	RightExport  Right = "export"
	RightModify  Right = "modify"
	RightExtract Right = "extract"
)

// knownRights guards against typo'd rights silently never matching.
var knownRights = map[Right]bool{
	RightPlay: true, RightCopy: true, RightExport: true, RightModify: true, RightExtract: true,
}

// Grant conveys one right over one resource to one principal.
type Grant struct {
	// Principal names the grantee ("*" for anyone; otherwise matched
	// against the player/device identity).
	Principal string
	// Right is the conveyed usage right.
	Right Right
	// Resource identifies the governed content (manifest id, track id,
	// or "*" for the whole work).
	Resource string
	// MaxUses bounds exercises of the right; 0 means unlimited.
	MaxUses int
	// NotBefore/NotAfter bound validity; zero values mean unbounded.
	NotBefore, NotAfter time.Time
}

// License is a set of grants from an issuer.
type License struct {
	// ID identifies the license.
	ID string
	// Issuer names the rights issuer (matched against the license
	// signature's signer by the player).
	Issuer string
	// Grants lists the conveyed rights.
	Grants []Grant
}

// Document renders the license as XML (the form that gets signed).
func (l *License) Document() *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement("license")
	root.DeclareNamespace("", Namespace)
	if l.ID != "" {
		root.SetAttr("Id", l.ID)
	}
	if l.Issuer != "" {
		root.SetAttr("issuer", l.Issuer)
	}
	for _, g := range l.Grants {
		el := root.CreateChild("grant")
		el.SetAttr("principal", g.Principal)
		el.SetAttr("right", string(g.Right))
		el.SetAttr("resource", g.Resource)
		if g.MaxUses > 0 {
			el.SetAttr("maxuses", strconv.Itoa(g.MaxUses))
		}
		if !g.NotBefore.IsZero() {
			el.SetAttr("notbefore", g.NotBefore.UTC().Format(time.RFC3339))
		}
		if !g.NotAfter.IsZero() {
			el.SetAttr("notafter", g.NotAfter.UTC().Format(time.RFC3339))
		}
	}
	doc.SetRoot(root)
	return doc
}

// Parse reads a license document.
func Parse(doc *xmldom.Document) (*License, error) {
	root := doc.Root()
	if root == nil || root.Local != "license" || root.NamespaceURI() != Namespace {
		return nil, errors.New("rights: document element must be license in " + Namespace)
	}
	l := &License{ID: root.AttrValue("Id"), Issuer: root.AttrValue("issuer")}
	for _, el := range root.ChildElementsNamed(Namespace, "grant") {
		g := Grant{
			Principal: el.AttrValue("principal"),
			Right:     Right(el.AttrValue("right")),
			Resource:  el.AttrValue("resource"),
		}
		if g.Principal == "" || g.Resource == "" {
			return nil, errors.New("rights: grant requires principal and resource")
		}
		if !knownRights[g.Right] {
			return nil, fmt.Errorf("rights: unknown right %q", g.Right)
		}
		if v, ok := el.Attr("maxuses"); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("rights: bad maxuses %q", v)
			}
			g.MaxUses = n
		}
		var err error
		if g.NotBefore, err = timeAttr(el, "notbefore"); err != nil {
			return nil, err
		}
		if g.NotAfter, err = timeAttr(el, "notafter"); err != nil {
			return nil, err
		}
		l.Grants = append(l.Grants, g)
	}
	return l, nil
}

// ParseString parses a license from text.
func ParseString(s string) (*License, error) {
	doc, err := xmldom.ParseString(s)
	if err != nil {
		return nil, err
	}
	return Parse(doc)
}

func timeAttr(el *xmldom.Element, name string) (time.Time, error) {
	v, ok := el.Attr(name)
	if !ok {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("rights: bad %s %q: %w", name, v, err)
	}
	return t, nil
}

// Evaluator enforces licenses at runtime, tracking per-grant use counts.
type Evaluator struct {
	license *License
	// Now supplies the evaluation clock (injectable for tests and CE
	// devices without RTC trust).
	Now func() time.Time

	uses map[int]int // grant index -> exercised count
}

// Denial reasons.
var (
	// ErrNoGrant indicates no grant covers the request.
	ErrNoGrant = errors.New("rights: no applicable grant")
	// ErrExpired indicates the only applicable grants are outside
	// their validity window.
	ErrExpired = errors.New("rights: grant outside validity window")
	// ErrExhausted indicates the use count is spent.
	ErrExhausted = errors.New("rights: grant use count exhausted")
)

// NewEvaluator builds an evaluator over a parsed license.
func NewEvaluator(l *License) *Evaluator {
	return &Evaluator{license: l, Now: time.Now, uses: make(map[int]int)}
}

// Exercise attempts to exercise a right for a principal over a resource,
// consuming one use of the first applicable grant. The returned error
// explains denial.
func (e *Evaluator) Exercise(principal string, right Right, resource string) error {
	now := e.Now()
	sawExpired, sawExhausted := false, false
	for i, g := range e.license.Grants {
		if g.Right != right {
			continue
		}
		if g.Principal != "*" && g.Principal != principal {
			continue
		}
		if g.Resource != "*" && g.Resource != resource {
			continue
		}
		if (!g.NotBefore.IsZero() && now.Before(g.NotBefore)) ||
			(!g.NotAfter.IsZero() && now.After(g.NotAfter)) {
			sawExpired = true
			continue
		}
		if g.MaxUses > 0 && e.uses[i] >= g.MaxUses {
			sawExhausted = true
			continue
		}
		e.uses[i]++
		return nil
	}
	switch {
	case sawExhausted:
		return fmt.Errorf("%w: %s on %q for %q", ErrExhausted, right, resource, principal)
	case sawExpired:
		return fmt.Errorf("%w: %s on %q for %q", ErrExpired, right, resource, principal)
	default:
		return fmt.Errorf("%w: %s on %q for %q", ErrNoGrant, right, resource, principal)
	}
}

// SnapshotUses returns a copy of the per-grant use counters, keyed by
// grant index, for persistence across player sessions.
func (e *Evaluator) SnapshotUses() map[int]int {
	out := make(map[int]int, len(e.uses))
	for k, v := range e.uses {
		out[k] = v
	}
	return out
}

// RestoreUses replaces the per-grant use counters from a snapshot.
// Counters for grant indexes outside the license are discarded.
func (e *Evaluator) RestoreUses(snapshot map[int]int) {
	e.uses = make(map[int]int, len(snapshot))
	for k, v := range snapshot {
		if k >= 0 && k < len(e.license.Grants) && v > 0 {
			e.uses[k] = v
		}
	}
}

// RemainingUses reports the remaining use count of the first grant
// matching the query (-1 means unlimited). ok is false when no grant
// matches.
func (e *Evaluator) RemainingUses(principal string, right Right, resource string) (n int, ok bool) {
	for i, g := range e.license.Grants {
		if g.Right != right {
			continue
		}
		if g.Principal != "*" && g.Principal != principal {
			continue
		}
		if g.Resource != "*" && g.Resource != resource {
			continue
		}
		if g.MaxUses == 0 {
			return -1, true
		}
		rem := g.MaxUses - e.uses[i]
		if rem < 0 {
			rem = 0
		}
		return rem, true
	}
	return 0, false
}
