package keymgmt

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"discsec/internal/faults"
	"discsec/internal/resilience"
)

func fastXKMSPolicy() *resilience.Policy {
	return &resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func newXKMSServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := NewService(fixture.root.Pool())
	srv := httptest.NewServer(&Handler{Service: s})
	t.Cleanup(srv.Close)
	return s, srv
}

func faultyClient(url string, sched *faults.Schedule) *Client {
	return &Client{
		BaseURL:    url,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{Schedule: sched}},
		Retry:      fastXKMSPolicy(),
	}
}

func TestDefaultXKMSClientHasTimeout(t *testing.T) {
	c := &Client{BaseURL: "http://unused"}
	if got := c.httpClient().Timeout; got <= 0 {
		t.Errorf("zero-config Client timeout = %v; must be bounded", got)
	}
}

func TestLocateRetriesTransientFaults(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	sched := faults.NewSchedule(
		faults.Fault{Kind: faults.Reset},
		faults.Fault{Kind: faults.Status, Code: 503, RetryAfter: 0},
	)
	c := faultyClient(srv.URL, sched)
	kb, err := c.Locate("author")
	if err != nil {
		t.Fatalf("Locate did not survive transient faults: %v", err)
	}
	if kb.Name != "author" || kb.Revoked {
		t.Errorf("kb = %+v", kb)
	}
	if sched.Remaining() != 0 {
		t.Errorf("%d faults left unconsumed: retries did not happen", sched.Remaining())
	}
	if c.Degraded() {
		t.Error("live answer reported degraded")
	}
}

func TestValidateRetriesTransientFaults(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	c := faultyClient(srv.URL, faults.NewSchedule(faults.Fault{Kind: faults.Reset}))
	status, _, err := c.Validate("author")
	if err != nil || status != StatusValid {
		t.Errorf("status = %v, err = %v", status, err)
	}
}

func TestRegisterNeverRetried(t *testing.T) {
	_, srv := newXKMSServer(t)
	sched := faults.NewSchedule(faults.Fault{Kind: faults.Reset}, faults.Fault{Kind: faults.Reset})
	c := faultyClient(srv.URL, sched)
	err := c.Register("author", fixture.author.Cert, "pw")
	if err == nil {
		t.Fatal("Register succeeded through a reset connection")
	}
	if !resilience.IsTransient(err) {
		t.Errorf("reset must classify transient so the caller can decide: %v", err)
	}
	// Exactly one fault consumed: a single attempt, no blind retry of a
	// state-changing operation.
	if sched.Remaining() != 1 {
		t.Errorf("faults remaining = %d, want 1 (Register must not retry)", sched.Remaining())
	}
}

func TestRevokeNeverRetried(t *testing.T) {
	_, srv := newXKMSServer(t)
	sched := faults.NewSchedule(faults.Fault{Kind: faults.Reset}, faults.Fault{Kind: faults.Reset})
	c := faultyClient(srv.URL, sched)
	if err := c.Revoke("author", "pw"); err == nil {
		t.Fatal("Revoke succeeded through a reset connection")
	}
	if sched.Remaining() != 1 {
		t.Errorf("faults remaining = %d, want 1 (Revoke must not retry)", sched.Remaining())
	}
}

func TestLocateDegradedFallbackFromCache(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	var degradedName string
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastXKMSPolicy(),
		MaxStale:   time.Hour,
		OnDegraded: func(name string, cause error) { degradedName = name },
	}
	if _, err := c.Locate("author"); err != nil {
		t.Fatalf("warm-up Locate: %v", err)
	}
	if c.Degraded() {
		t.Error("degraded after live answer")
	}

	srv.Close() // trust service outage: connections now refused

	kb, err := c.Locate("author")
	if err != nil {
		t.Fatalf("outage with fresh cache must degrade, not fail: %v", err)
	}
	if kb.Name != "author" {
		t.Errorf("cached kb = %+v", kb)
	}
	if !c.Degraded() {
		t.Error("Degraded() = false after stale-cache answer")
	}
	if degradedName != "author" {
		t.Errorf("OnDegraded name = %q", degradedName)
	}

	// A name never cached fails even in degraded mode.
	if _, err := c.Locate("stranger"); err == nil {
		t.Error("uncached name served during outage")
	}
}

func TestStrictModeFailsClosedOnOutage(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastXKMSPolicy(),
		// MaxStale zero: no fallback, outage fails closed.
	}
	if _, err := c.Locate("author"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, err := c.Locate("author")
	if err == nil {
		t.Fatal("strict client served a cached binding")
	}
	if !resilience.IsTransient(err) {
		t.Errorf("outage error = %v, want transient", err)
	}
}

func TestStalenessBoundExpires(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_000_000, 0)
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastXKMSPolicy(),
		MaxStale:   10 * time.Minute,
		nowFunc:    func() time.Time { return now },
	}
	if _, err := c.Locate("author"); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	now = now.Add(9 * time.Minute) // inside the bound: degrade
	if _, err := c.Locate("author"); err != nil {
		t.Fatalf("within MaxStale: %v", err)
	}
	now = now.Add(2 * time.Minute) // past the bound: fail closed
	if _, err := c.Locate("author"); err == nil {
		t.Error("binding older than MaxStale served")
	}
}

func TestPublicKeyByNameDegradesAndRefusesRevoked(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("creator", fixture.creator.Cert, "pw2"); err != nil {
		t.Fatal(err)
	}
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastXKMSPolicy(),
		MaxStale:   time.Hour,
	}
	// Warm both cache entries, then revoke creator *before* the outage
	// so its cached copy is already marked revoked.
	if _, err := c.PublicKeyByName("author"); err != nil {
		t.Fatal(err)
	}
	if err := s.Revoke("creator", "pw2"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Locate("creator"); err != nil { // caches the revoked binding
		t.Fatal(err)
	}
	srv.Close()

	key, err := c.PublicKeyByNameContext(context.Background(), "author")
	if err != nil {
		t.Fatalf("degraded resolution failed: %v", err)
	}
	if key == nil || !c.Degraded() {
		t.Errorf("key = %v, Degraded = %v", key, c.Degraded())
	}
	// The revoked binding must never be served, degraded or not.
	if _, err := c.PublicKeyByNameContext(context.Background(), "creator"); err == nil {
		t.Error("revoked binding served from degraded cache")
	}
}

func TestXKMSContextCancellationMidRetry(t *testing.T) {
	s, srv := newXKMSServer(t)
	if err := s.Register("author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	resets := make([]faults.Fault, 8)
	for i := range resets {
		resets[i] = faults.Fault{Kind: faults.Reset}
	}
	c := &Client{
		BaseURL:    srv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{Schedule: faults.NewSchedule(resets...)}},
		Retry:      &resilience.Policy{MaxAttempts: 10, BaseDelay: 200 * time.Millisecond, MaxDelay: time.Second},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.LocateContext(ctx, "author")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation ignored for %v", elapsed)
	}
}
