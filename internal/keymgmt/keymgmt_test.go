package keymgmt

import (
	"errors"
	"net/http/httptest"
	"testing"
)

// The whole-PKI fixture is expensive (RSA keygen); build once.
var fixture = func() struct {
	root    *CA
	studio  *CA
	creator *Identity
	author  *Identity
} {
	root, err := NewRootCA("DiscSec Root", ECDSAP256)
	if err != nil {
		panic(err)
	}
	studio, err := root.NewIntermediate("Studio CA", ECDSAP256)
	if err != nil {
		panic(err)
	}
	creator, err := studio.IssueIdentity("content-creator", ECDSAP256)
	if err != nil {
		panic(err)
	}
	author, err := root.IssueIdentity("app-author", ECDSAP256)
	if err != nil {
		panic(err)
	}
	// Creator's chain must include the intermediate for verification.
	creator.Chain = [][]byte{creator.Cert.Raw, studio.Cert.Raw}
	return struct {
		root    *CA
		studio  *CA
		creator *Identity
		author  *Identity
	}{root, studio, creator, author}
}()

func TestChainValidation(t *testing.T) {
	roots := fixture.root.Pool()

	// Leaf under intermediate: needs the intermediate supplied.
	if _, err := VerifyChain(fixture.creator.Cert, roots, fixture.studio.Cert); err != nil {
		t.Errorf("creator chain: %v", err)
	}
	if _, err := VerifyChain(fixture.creator.Cert, roots); err == nil {
		t.Error("creator chain validated without intermediate")
	}
	// Leaf directly under root.
	if _, err := VerifyChain(fixture.author.Cert, roots); err != nil {
		t.Errorf("author chain: %v", err)
	}
	// Against an unrelated root: fail.
	other, err := NewRootCA("Other Root", ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyChain(fixture.author.Cert, other.Pool()); err == nil {
		t.Error("chain validated against unrelated root")
	}
	if _, err := VerifyChain(fixture.author.Cert, nil); err == nil {
		t.Error("nil roots accepted")
	}
}

func TestServiceLifecycle(t *testing.T) {
	s := NewService(fixture.root.Pool())

	if err := s.Register("author", fixture.author.Cert, "secret"); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := s.Register("author", fixture.author.Cert, "x"); !errors.Is(err, ErrAlreadyRegistered) {
		t.Errorf("duplicate register err = %v", err)
	}

	kb, err := s.Locate("author")
	if err != nil {
		t.Fatalf("locate: %v", err)
	}
	if !kb.Certificate.Equal(fixture.author.Cert) {
		t.Error("located wrong certificate")
	}
	if _, err := s.Locate("ghost"); !errors.Is(err, ErrNotFound) {
		t.Errorf("locate ghost err = %v", err)
	}

	status, err := s.Validate("author")
	if err != nil || status != StatusValid {
		t.Errorf("validate = %v, %v", status, err)
	}

	// Wrong authenticator cannot revoke.
	if err := s.Revoke("author", "wrong"); !errors.Is(err, ErrBadAuthenticator) {
		t.Errorf("revoke wrong auth err = %v", err)
	}
	if err := s.Revoke("author", "secret"); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	if status, err := s.Validate("author"); status != StatusInvalid || !errors.Is(err, ErrRevoked) {
		t.Errorf("validate revoked = %v, %v", status, err)
	}

	// Reissue restores validity with a fresh certificate.
	if err := s.Reissue("author", fixture.author.Cert, "secret"); err != nil {
		t.Fatalf("reissue: %v", err)
	}
	if status, _ := s.Validate("author"); status != StatusValid {
		t.Errorf("validate after reissue = %v", status)
	}
}

func TestServiceValidateUntrustedChain(t *testing.T) {
	// Service trusts a different root than the one that issued the cert.
	other, err := NewRootCA("Other Root", ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	s := NewService(other.Pool())
	if err := s.Register("author", fixture.author.Cert, "a"); err != nil {
		t.Fatal(err)
	}
	status, err := s.Validate("author")
	if status != StatusInvalid || err == nil {
		t.Errorf("validate = %v, %v; want Invalid", status, err)
	}
}

func TestXKMSHTTPRoundTrip(t *testing.T) {
	s := NewService(fixture.root.Pool())
	srv := httptest.NewServer(&Handler{Service: s})
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}

	if err := c.Register("creator", fixture.creator.Cert, "pw"); err != nil {
		t.Fatalf("register: %v", err)
	}

	kb, err := c.Locate("creator")
	if err != nil {
		t.Fatalf("locate: %v", err)
	}
	if kb.Name != "creator" || kb.Revoked {
		t.Errorf("binding = %+v", kb)
	}
	if !kb.Certificate.Equal(fixture.creator.Cert) {
		t.Error("certificate mismatch over the wire")
	}

	// Validate: chain needs the intermediate, which the service does
	// not have, so status is Invalid — exactly the trust semantics we
	// want exposed.
	status, reason, err := c.Validate("creator")
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if status != StatusInvalid || reason == "" {
		t.Errorf("validate = %v %q", status, reason)
	}

	// Author validates cleanly (issued directly under the root).
	if err := c.Register("author", fixture.author.Cert, "pw2"); err != nil {
		t.Fatal(err)
	}
	status, _, err = c.Validate("author")
	if err != nil || status != StatusValid {
		t.Errorf("author validate = %v, %v", status, err)
	}

	// Revoke over the wire.
	if err := c.Revoke("author", "bad"); err == nil {
		t.Error("revoke with wrong authenticator succeeded")
	}
	if err := c.Revoke("author", "pw2"); err != nil {
		t.Fatalf("revoke: %v", err)
	}
	kb, err = c.Locate("author")
	if err != nil {
		t.Fatal(err)
	}
	if !kb.Revoked {
		t.Error("binding not marked revoked after Revoke")
	}

	// Reissue over the wire.
	if err := c.Reissue("author", fixture.author.Cert, "pw2"); err != nil {
		t.Fatalf("reissue: %v", err)
	}
	status, _, _ = c.Validate("author")
	if status != StatusValid {
		t.Errorf("status after reissue = %v", status)
	}

	// Unknown name surfaces as an error result.
	if _, err := c.Locate("ghost"); err == nil {
		t.Error("locate ghost succeeded")
	}
}

func TestHandlerRejectsBadInput(t *testing.T) {
	s := NewService(nil)
	h := &Handler{Service: s}
	if _, err := h.handle([]byte("not xml")); err == nil {
		t.Error("malformed XML accepted")
	}
	if _, err := h.handle([]byte("<Unknown/>")); err == nil {
		t.Error("unknown request type accepted")
	}
}

func TestIssueCertificateKeyUsage(t *testing.T) {
	if fixture.author.Cert.KeyUsage&0 != 0 {
		t.Error("unexpected")
	}
	if !fixture.root.Cert.IsCA {
		t.Error("root is not a CA")
	}
	if !fixture.studio.Cert.IsCA {
		t.Error("intermediate is not a CA")
	}
	if fixture.creator.Cert.IsCA {
		t.Error("leaf is a CA")
	}
}

func TestServiceValidateWithIntermediate(t *testing.T) {
	s := NewService(fixture.root.Pool())
	if err := s.Register("creator", fixture.creator.Cert, "a"); err != nil {
		t.Fatal(err)
	}
	// Without the intermediate the chain cannot be built.
	if status, _ := s.Validate("creator"); status != StatusInvalid {
		t.Errorf("status without intermediate = %v", status)
	}
	s.AddIntermediate(fixture.studio.Cert)
	status, err := s.Validate("creator")
	if err != nil || status != StatusValid {
		t.Errorf("status with intermediate = %v, %v", status, err)
	}
	s.AddIntermediate(nil) // no-op
}

func TestPublicKeyByNameInProcess(t *testing.T) {
	s := NewService(fixture.root.Pool())
	if err := s.Register("author", fixture.author.Cert, "a"); err != nil {
		t.Fatal(err)
	}
	pub, err := s.PublicKeyByName("author")
	if err != nil {
		t.Fatal(err)
	}
	if pub == nil {
		t.Fatal("nil key")
	}
	if _, err := s.PublicKeyByName("ghost"); err == nil {
		t.Error("unknown name resolved")
	}
	if err := s.Revoke("author", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PublicKeyByName("author"); err == nil {
		t.Error("revoked binding resolved")
	}
}

func TestPublicKeyByNameOverHTTP(t *testing.T) {
	s := NewService(fixture.root.Pool())
	if err := s.Register("author", fixture.author.Cert, "a"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(&Handler{Service: s})
	defer srv.Close()
	c := &Client{BaseURL: srv.URL}
	pub, err := c.PublicKeyByName("author")
	if err != nil || pub == nil {
		t.Fatalf("resolve = %v, %v", pub, err)
	}
	if _, err := c.PublicKeyByName("ghost"); err == nil {
		t.Error("unknown name resolved over HTTP")
	}
}

func TestServiceNames(t *testing.T) {
	s := NewService(nil)
	s.Register("a", fixture.author.Cert, "x")
	s.Register("b", fixture.author.Cert, "x")
	if n := len(s.Names()); n != 2 {
		t.Errorf("names = %d", n)
	}
}

func TestIssueServerCertificateSANs(t *testing.T) {
	cert, err := fixture.root.IssueServerCertificate("srv.example", []string{"127.0.0.1", "srv.example"}, ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	leaf := cert.Leaf
	if len(leaf.IPAddresses) != 1 || len(leaf.DNSNames) != 1 {
		t.Errorf("SANs = %v / %v", leaf.IPAddresses, leaf.DNSNames)
	}
	if err := leaf.VerifyHostname("srv.example"); err != nil {
		t.Errorf("hostname verify: %v", err)
	}
	if len(cert.Certificate) != 2 {
		t.Errorf("chain length = %d", len(cert.Certificate))
	}
}
