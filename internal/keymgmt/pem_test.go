package keymgmt

import (
	"crypto/ecdsa"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadIdentity(t *testing.T) {
	dir := t.TempDir()
	if err := SaveIdentity(fixture.creator, dir); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := LoadIdentity(dir)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Name != fixture.creator.Name {
		t.Errorf("name = %q", back.Name)
	}
	if !back.Cert.Equal(fixture.creator.Cert) {
		t.Error("certificate mismatch")
	}
	if len(back.Chain) != len(fixture.creator.Chain) {
		t.Errorf("chain length = %d", len(back.Chain))
	}
	// The loaded key must actually be the same key: the public halves
	// must match.
	certPub, ok := back.Cert.PublicKey.(*ecdsa.PublicKey)
	if !ok {
		t.Fatalf("certificate key type %T", back.Cert.PublicKey)
	}
	keyPub, ok := back.Key.Public().(*ecdsa.PublicKey)
	if !ok {
		t.Fatalf("private key public type %T", back.Key.Public())
	}
	if !certPub.Equal(keyPub) {
		t.Error("loaded key does not match certificate")
	}
}

func TestLoadIdentityErrors(t *testing.T) {
	if _, err := LoadIdentity(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestSaveLoadCertPool(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "root.pem")
	if err := SaveCertPEM(fixture.root.Cert, path); err != nil {
		t.Fatal(err)
	}
	pool, err := LoadCertPool(path)
	if err != nil {
		t.Fatalf("load pool: %v", err)
	}
	// The pool works as a trust anchor set.
	if _, err := VerifyChain(fixture.author.Cert, pool); err != nil {
		t.Errorf("verify against loaded pool: %v", err)
	}
	if _, err := LoadCertPool(filepath.Join(dir, "missing.pem")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadCertPoolEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.pem")
	if err := os.WriteFile(path, []byte("not pem at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCertPool(path); err == nil {
		t.Error("file without certificates accepted")
	}
}
