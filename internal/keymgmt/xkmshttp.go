package keymgmt

import (
	"bytes"
	"context"
	"crypto"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/obs"
	"discsec/internal/resilience"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// XKMS-style XML message exchange over HTTP. The messages are a compact
// profile of XKMS 2.0: LocateRequest/LocateResult,
// ValidateRequest/ValidateResult, RegisterRequest/RegisterResult,
// RevokeRequest/RevokeResult, each a small XML document.

const xkmsPrefix = "xkms"

// Result majors per XKMS.
const (
	resultSuccess = "Success"
	resultSender  = "Sender"
)

// Handler exposes a Service as an XKMS-style HTTP endpoint. POST XML
// request documents to it.
type Handler struct {
	Service *Service
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "xkms endpoint accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	resp, err := h.handle(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(resp)
}

func (h *Handler) handle(body []byte) ([]byte, error) {
	doc, err := xmldom.ParseBytes(body)
	if err != nil {
		return nil, fmt.Errorf("keymgmt: malformed request: %w", err)
	}
	req := doc.Root()
	name := childText(req, "KeyName")
	auth := childText(req, "Authenticator")

	switch req.Local {
	case "LocateRequest":
		kb, err := h.Service.Locate(name)
		if err != nil {
			return errorResult("LocateResult", err), nil
		}
		return locateResult(kb), nil

	case "ValidateRequest":
		status, err := h.Service.Validate(name)
		res := newResult("ValidateResult", resultSuccess)
		res.Root().CreateChild(xkmsPrefix + ":Status").SetText(string(status))
		if err != nil {
			res.Root().CreateChild(xkmsPrefix + ":Reason").SetText(err.Error())
		}
		return res.Bytes(), nil

	case "RegisterRequest":
		cert, err := certFromRequest(req)
		if err != nil {
			return errorResult("RegisterResult", err), nil
		}
		if err := h.Service.Register(name, cert, auth); err != nil {
			return errorResult("RegisterResult", err), nil
		}
		return newResult("RegisterResult", resultSuccess).Bytes(), nil

	case "RevokeRequest":
		if err := h.Service.Revoke(name, auth); err != nil {
			return errorResult("RevokeResult", err), nil
		}
		return newResult("RevokeResult", resultSuccess).Bytes(), nil

	case "ReissueRequest":
		cert, err := certFromRequest(req)
		if err != nil {
			return errorResult("ReissueResult", err), nil
		}
		if err := h.Service.Reissue(name, cert, auth); err != nil {
			return errorResult("ReissueResult", err), nil
		}
		return newResult("ReissueResult", resultSuccess).Bytes(), nil

	default:
		return nil, fmt.Errorf("keymgmt: unknown request %q", req.Local)
	}
}

func childText(el *xmldom.Element, local string) string {
	c := el.FirstChildElement(local)
	if c == nil {
		return ""
	}
	return c.Text()
}

func certFromRequest(req *xmldom.Element) (*x509.Certificate, error) {
	c := req.FirstChildElement("X509Certificate")
	if c == nil {
		return nil, errors.New("keymgmt: request missing X509Certificate")
	}
	der, err := base64.StdEncoding.DecodeString(c.Text())
	if err != nil {
		return nil, fmt.Errorf("keymgmt: X509Certificate: %w", err)
	}
	return x509.ParseCertificate(der)
}

func newResult(local, major string) *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement(xkmsPrefix + ":" + local)
	root.DeclareNamespace(xkmsPrefix, xmlsecuri.XKMSNamespace)
	root.SetAttr("ResultMajor", major)
	doc.SetRoot(root)
	return doc
}

func errorResult(local string, err error) []byte {
	doc := newResult(local, resultSender)
	doc.Root().SetAttr("ResultMinor", err.Error())
	return doc.Bytes()
}

func locateResult(kb *KeyBinding) []byte {
	doc := newResult("LocateResult", resultSuccess)
	kbEl := doc.Root().CreateChild(xkmsPrefix + ":KeyBinding")
	kbEl.SetAttr("Name", kb.Name)
	status := StatusValid
	if kb.Revoked {
		status = StatusInvalid
	}
	kbEl.CreateChild(xkmsPrefix + ":Status").SetText(string(status))
	kbEl.CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(kb.Certificate.Raw))
	return doc.Bytes()
}

// Degraded-trust errors.
var (
	// ErrDegraded marks a key binding served from the bounded-staleness
	// cache because the trust service was unreachable. The player may
	// proceed (graceful degradation per the paper's §7 connected-player
	// model) but must surface the weakened trust decision.
	ErrDegraded = errors.New("keymgmt: degraded trust: key binding served from stale cache")
)

// Client talks to an XKMS-style endpoint. Locate and Validate (the
// idempotent XKMS operations) are retried under Retry; Register,
// Revoke, and Reissue are never blindly retried — a lost response
// must not duplicate a state-changing registration. When the service
// is unreachable, Locate can fall back to a previously fetched
// KeyBinding no older than MaxStale, reporting the degradation.
type Client struct {
	// BaseURL is the endpoint URL.
	BaseURL string
	// HTTPClient defaults to a shared client with a 15s timeout
	// (never http.DefaultClient, which has none).
	HTTPClient *http.Client
	// Retry governs Locate/Validate retries; nil uses the resilience
	// defaults.
	Retry *resilience.Policy
	// MaxStale bounds the cached-KeyBinding fallback age; 0 disables
	// the fallback entirely (strict mode: unreachable service fails
	// closed).
	MaxStale time.Duration
	// Breaker, if set, guards every wire request: while the circuit is
	// open, requests fail immediately with ErrCircuitOpen instead of
	// timing out against a dead service, and the stale-cache fallback
	// applies exactly as it does for transient transport failures.
	Breaker *resilience.Breaker
	// Bulkhead, if set, caps concurrent wire requests so a slow trust
	// service saturates its own compartment, not the whole player.
	Bulkhead *resilience.Bulkhead
	// OnDegraded, if set, observes each degraded trust decision: the
	// binding name served stale and the outage error that forced it.
	OnDegraded func(name string, cause error)
	// OnRestored, if set, observes recovery: the first live service
	// answer after a degraded stretch.
	OnRestored func()
	// Recorder receives XKMS request spans/counters and the
	// degraded-trust audit transitions; nil records nothing.
	Recorder *obs.Recorder

	// nowFunc overrides the clock in tests.
	nowFunc func() time.Time

	degraded atomic.Bool
	cacheMu  sync.Mutex
	cache    map[string]cachedBinding
}

type cachedBinding struct {
	kb KeyBinding
	at time.Time
}

// defaultXKMSClient bounds every request a zero-config Client makes;
// key resolution sits on the player's startup path and must never
// hang forever on a dead trust service.
var defaultXKMSClient = &http.Client{Timeout: 15 * time.Second}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultXKMSClient
}

func (c *Client) retry() *resilience.Policy {
	if c.Retry != nil {
		return c.Retry
	}
	return &resilience.Policy{}
}

func (c *Client) now() time.Time {
	if c.nowFunc != nil {
		return c.nowFunc()
	}
	return time.Now()
}

// Degraded reports whether the client's most recent trust resolution
// was served from the stale-binding cache instead of the live
// service.
func (c *Client) Degraded() bool { return c.degraded.Load() }

func (c *Client) storeCached(kb *KeyBinding) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if c.cache == nil {
		c.cache = make(map[string]cachedBinding)
	}
	c.cache[kb.Name] = cachedBinding{kb: *kb, at: c.now()}
}

// cachedFresh returns a copy of the cached binding for name when it
// is within the MaxStale bound.
func (c *Client) cachedFresh(name string) (*KeyBinding, bool) {
	if c.MaxStale <= 0 {
		return nil, false
	}
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	e, ok := c.cache[name]
	if !ok || c.now().Sub(e.at) > c.MaxStale {
		return nil, false
	}
	kb := e.kb
	return &kb, true
}

// degrade records and reports a stale-cache trust decision.
func (c *Client) degrade(name string, cause error) {
	if !c.degraded.Swap(true) {
		c.Recorder.Audit(obs.AuditDegradedEnter, "binding %q served stale: %v", name, cause)
	}
	c.Recorder.Inc("xkms.degraded")
	if c.OnDegraded != nil {
		c.OnDegraded(name, cause)
	}
}

// restore clears degraded-trust mode after a live service answer,
// auditing the transition.
func (c *Client) restore() {
	if c.degraded.Swap(false) {
		c.Recorder.Audit(obs.AuditDegradedExit, "live trust service answer")
		if c.OnRestored != nil {
			c.OnRestored()
		}
	}
}

// post sends one request document under the client's bulkhead and
// breaker: a full compartment waits (or fails with the caller's ctx),
// an open circuit rejects immediately without touching the wire.
func (c *Client) post(ctx context.Context, doc *xmldom.Document) (*xmldom.Element, error) {
	release, err := c.Bulkhead.Acquire(ctx)
	if err != nil {
		c.Recorder.Inc("xkms.bulkhead_rejected")
		return nil, err
	}
	defer release()
	var root *xmldom.Element
	err = c.Breaker.Do(ctx, func(ctx context.Context) error {
		var perr error
		root, perr = c.postOnce(ctx, doc)
		return perr
	})
	if err != nil {
		return nil, err
	}
	return root, nil
}

// postOnce is one wire round trip; xkms.requests counts these, so the
// counter is the ground truth for retry-amplification checks.
func (c *Client) postOnce(ctx context.Context, doc *xmldom.Document) (*xmldom.Element, error) {
	defer c.Recorder.Start(obs.StageXKMS).End()
	c.Recorder.Inc("xkms.requests")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL, bytes.NewReader(doc.Bytes()))
	if err != nil {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: building request: %w", err))
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("keymgmt: POST %s: %w", c.BaseURL, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("keymgmt: reading result: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		rerr := fmt.Errorf("keymgmt: endpoint returned %s: %s", resp.Status, bytes.TrimSpace(body))
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
			return nil, resilience.WithRetryAfter(resilience.Transient(rerr),
				resilience.ParseRetryAfter(resp.Header.Get("Retry-After")))
		}
		return nil, resilience.Terminal(rerr)
	}
	rd, err := xmldom.ParseBytes(body)
	if err != nil {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: malformed result: %w", err))
	}
	root := rd.Root()
	if major := root.AttrValue("ResultMajor"); major != resultSuccess {
		// The service answered and refused: retrying cannot change a
		// Sender-class result.
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: %s: %s", major, root.AttrValue("ResultMinor")))
	}
	return root, nil
}

func newRequest(local string, name string) *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement(xkmsPrefix + ":" + local)
	root.DeclareNamespace(xkmsPrefix, xmlsecuri.XKMSNamespace)
	doc.SetRoot(root)
	if name != "" {
		root.CreateChild(xkmsPrefix + ":KeyName").SetText(name)
	}
	return doc
}

// Locate fetches the key binding registered under name. It is
// LocateContext without cancellation.
func (c *Client) Locate(name string) (*KeyBinding, error) {
	return c.LocateContext(context.Background(), name)
}

// LocateContext fetches the key binding registered under name,
// retrying transient failures (Locate is idempotent). If the service
// stays unreachable and a cached binding no older than MaxStale
// exists, that binding is served instead and the degradation is
// recorded and reported through OnDegraded/Degraded.
func (c *Client) LocateContext(ctx context.Context, name string) (*KeyBinding, error) {
	var kb *KeyBinding
	err := c.retry().Do(ctx, func(ctx context.Context) error {
		got, lerr := c.locateOnce(ctx, name)
		if lerr != nil {
			return lerr
		}
		kb = got
		return nil
	})
	if err == nil {
		c.storeCached(kb)
		c.restore()
		return kb, nil
	}
	if dependencyUnavailable(err) {
		if cached, ok := c.cachedFresh(name); ok {
			c.degrade(name, err)
			return cached, nil
		}
	}
	return nil, err
}

// dependencyUnavailable reports whether err means the trust service
// could not be reached at all — transient transport failure after
// retries, or the circuit breaker rejecting locally while open. Both
// justify the bounded-staleness fallback; terminal service *answers*
// (revoked, invalid, malformed) never do.
func dependencyUnavailable(err error) bool {
	return resilience.IsTransient(err) || errors.Is(err, resilience.ErrCircuitOpen)
}

func (c *Client) locateOnce(ctx context.Context, name string) (*KeyBinding, error) {
	root, err := c.post(ctx, newRequest("LocateRequest", name))
	if err != nil {
		return nil, err
	}
	kbEl := root.FirstChildElement("KeyBinding")
	if kbEl == nil {
		return nil, resilience.Terminal(errors.New("keymgmt: LocateResult missing KeyBinding"))
	}
	der, err := base64.StdEncoding.DecodeString(childText(kbEl, "X509Certificate"))
	if err != nil {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: LocateResult certificate: %w", err))
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: LocateResult certificate: %w", err))
	}
	return &KeyBinding{
		Name:        kbEl.AttrValue("Name"),
		Certificate: cert,
		Revoked:     childText(kbEl, "Status") != string(StatusValid),
	}, nil
}

// Validate asks the service for the trust status of the named
// binding. It is ValidateContext without cancellation.
func (c *Client) Validate(name string) (BindingStatus, string, error) {
	return c.ValidateContext(context.Background(), name)
}

// ValidateContext asks the service for the trust status of the named
// binding, retrying transient failures (Validate is idempotent).
// There is no cached fallback here: Validate *is* the freshness
// check, so an unreachable service yields Indeterminate plus the
// transport error, and the degradation policy belongs to the caller
// (see PublicKeyByNameContext).
func (c *Client) ValidateContext(ctx context.Context, name string) (BindingStatus, string, error) {
	var status BindingStatus
	var reason string
	err := c.retry().Do(ctx, func(ctx context.Context) error {
		root, perr := c.post(ctx, newRequest("ValidateRequest", name))
		if perr != nil {
			return perr
		}
		status, reason = BindingStatus(childText(root, "Status")), childText(root, "Reason")
		return nil
	})
	if err != nil {
		return StatusIndeterminate, "", err
	}
	return status, reason, nil
}

// Register binds name to cert under the given authenticator secret.
// Register is not idempotent and is never blindly retried: a lost
// response must not double-register or collide with itself.
func (c *Client) Register(name string, cert *x509.Certificate, authenticator string) error {
	return c.RegisterContext(context.Background(), name, cert, authenticator)
}

// RegisterContext is Register with cancellation (single attempt).
func (c *Client) RegisterContext(ctx context.Context, name string, cert *x509.Certificate, authenticator string) error {
	doc := newRequest("RegisterRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	doc.Root().CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(cert.Raw))
	_, err := c.post(ctx, doc)
	return resilience.Classify(err)
}

// Revoke invalidates the named binding (single attempt; see Register
// for why state-changing operations are never blindly retried).
func (c *Client) Revoke(name, authenticator string) error {
	return c.RevokeContext(context.Background(), name, authenticator)
}

// RevokeContext is Revoke with cancellation (single attempt).
func (c *Client) RevokeContext(ctx context.Context, name, authenticator string) error {
	doc := newRequest("RevokeRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	_, err := c.post(ctx, doc)
	return resilience.Classify(err)
}

// PublicKeyByName resolves a KeyName to a public key over the wire,
// refusing bindings the service does not report Valid. It is
// PublicKeyByNameContext without cancellation.
func (c *Client) PublicKeyByName(name string) (crypto.PublicKey, error) {
	return c.PublicKeyByNameContext(context.Background(), name)
}

// PublicKeyByNameContext resolves a KeyName to a public key. When the
// trust service is unreachable (transient failure after retries) and
// a cached, unrevoked binding within MaxStale exists, the cached key
// is served and the weakened trust decision is recorded (Degraded
// reports true, OnDegraded fires). Revoked or invalid bindings never
// degrade: an answer from the service always wins.
func (c *Client) PublicKeyByNameContext(ctx context.Context, name string) (crypto.PublicKey, error) {
	status, reason, err := c.ValidateContext(ctx, name)
	if err != nil {
		if dependencyUnavailable(err) {
			if cached, ok := c.cachedFresh(name); ok && !cached.Revoked {
				c.degrade(name, err)
				return cached.Certificate.PublicKey, nil
			}
		}
		return nil, err
	}
	if status != StatusValid {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: binding %q is %s: %s", name, status, reason))
	}
	kb, err := c.LocateContext(ctx, name)
	if err != nil {
		return nil, err
	}
	if kb.Revoked {
		return nil, resilience.Terminal(fmt.Errorf("keymgmt: binding %q is revoked", name))
	}
	c.restore()
	return kb.Certificate.PublicKey, nil
}

// Reissue replaces the certificate under the named binding (single
// attempt; see Register for why state-changing operations are never
// blindly retried).
func (c *Client) Reissue(name string, cert *x509.Certificate, authenticator string) error {
	return c.ReissueContext(context.Background(), name, cert, authenticator)
}

// ReissueContext is Reissue with cancellation (single attempt).
func (c *Client) ReissueContext(ctx context.Context, name string, cert *x509.Certificate, authenticator string) error {
	doc := newRequest("ReissueRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	doc.Root().CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(cert.Raw))
	_, err := c.post(ctx, doc)
	return resilience.Classify(err)
}
