package keymgmt

import (
	"bytes"
	"crypto"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// XKMS-style XML message exchange over HTTP. The messages are a compact
// profile of XKMS 2.0: LocateRequest/LocateResult,
// ValidateRequest/ValidateResult, RegisterRequest/RegisterResult,
// RevokeRequest/RevokeResult, each a small XML document.

const xkmsPrefix = "xkms"

// Result majors per XKMS.
const (
	resultSuccess = "Success"
	resultSender  = "Sender"
)

// Handler exposes a Service as an XKMS-style HTTP endpoint. POST XML
// request documents to it.
type Handler struct {
	Service *Service
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "xkms endpoint accepts POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		http.Error(w, "read error", http.StatusBadRequest)
		return
	}
	resp, err := h.handle(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(resp)
}

func (h *Handler) handle(body []byte) ([]byte, error) {
	doc, err := xmldom.ParseBytes(body)
	if err != nil {
		return nil, fmt.Errorf("keymgmt: malformed request: %w", err)
	}
	req := doc.Root()
	name := childText(req, "KeyName")
	auth := childText(req, "Authenticator")

	switch req.Local {
	case "LocateRequest":
		kb, err := h.Service.Locate(name)
		if err != nil {
			return errorResult("LocateResult", err), nil
		}
		return locateResult(kb), nil

	case "ValidateRequest":
		status, err := h.Service.Validate(name)
		res := newResult("ValidateResult", resultSuccess)
		res.Root().CreateChild(xkmsPrefix + ":Status").SetText(string(status))
		if err != nil {
			res.Root().CreateChild(xkmsPrefix + ":Reason").SetText(err.Error())
		}
		return res.Bytes(), nil

	case "RegisterRequest":
		cert, err := certFromRequest(req)
		if err != nil {
			return errorResult("RegisterResult", err), nil
		}
		if err := h.Service.Register(name, cert, auth); err != nil {
			return errorResult("RegisterResult", err), nil
		}
		return newResult("RegisterResult", resultSuccess).Bytes(), nil

	case "RevokeRequest":
		if err := h.Service.Revoke(name, auth); err != nil {
			return errorResult("RevokeResult", err), nil
		}
		return newResult("RevokeResult", resultSuccess).Bytes(), nil

	case "ReissueRequest":
		cert, err := certFromRequest(req)
		if err != nil {
			return errorResult("ReissueResult", err), nil
		}
		if err := h.Service.Reissue(name, cert, auth); err != nil {
			return errorResult("ReissueResult", err), nil
		}
		return newResult("ReissueResult", resultSuccess).Bytes(), nil

	default:
		return nil, fmt.Errorf("keymgmt: unknown request %q", req.Local)
	}
}

func childText(el *xmldom.Element, local string) string {
	c := el.FirstChildElement(local)
	if c == nil {
		return ""
	}
	return c.Text()
}

func certFromRequest(req *xmldom.Element) (*x509.Certificate, error) {
	c := req.FirstChildElement("X509Certificate")
	if c == nil {
		return nil, errors.New("keymgmt: request missing X509Certificate")
	}
	der, err := base64.StdEncoding.DecodeString(c.Text())
	if err != nil {
		return nil, fmt.Errorf("keymgmt: X509Certificate: %w", err)
	}
	return x509.ParseCertificate(der)
}

func newResult(local, major string) *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement(xkmsPrefix + ":" + local)
	root.DeclareNamespace(xkmsPrefix, xmlsecuri.XKMSNamespace)
	root.SetAttr("ResultMajor", major)
	doc.SetRoot(root)
	return doc
}

func errorResult(local string, err error) []byte {
	doc := newResult(local, resultSender)
	doc.Root().SetAttr("ResultMinor", err.Error())
	return doc.Bytes()
}

func locateResult(kb *KeyBinding) []byte {
	doc := newResult("LocateResult", resultSuccess)
	kbEl := doc.Root().CreateChild(xkmsPrefix + ":KeyBinding")
	kbEl.SetAttr("Name", kb.Name)
	status := StatusValid
	if kb.Revoked {
		status = StatusInvalid
	}
	kbEl.CreateChild(xkmsPrefix + ":Status").SetText(string(status))
	kbEl.CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(kb.Certificate.Raw))
	return doc.Bytes()
}

// Client talks to an XKMS-style endpoint.
type Client struct {
	// BaseURL is the endpoint URL.
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) post(doc *xmldom.Document) (*xmldom.Element, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Post(c.BaseURL, "application/xml", bytes.NewReader(doc.Bytes()))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("keymgmt: endpoint returned %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	rd, err := xmldom.ParseBytes(body)
	if err != nil {
		return nil, fmt.Errorf("keymgmt: malformed result: %w", err)
	}
	root := rd.Root()
	if major := root.AttrValue("ResultMajor"); major != resultSuccess {
		return nil, fmt.Errorf("keymgmt: %s: %s", major, root.AttrValue("ResultMinor"))
	}
	return root, nil
}

func newRequest(local string, name string) *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement(xkmsPrefix + ":" + local)
	root.DeclareNamespace(xkmsPrefix, xmlsecuri.XKMSNamespace)
	doc.SetRoot(root)
	if name != "" {
		root.CreateChild(xkmsPrefix + ":KeyName").SetText(name)
	}
	return doc
}

// Locate fetches the key binding registered under name.
func (c *Client) Locate(name string) (*KeyBinding, error) {
	root, err := c.post(newRequest("LocateRequest", name))
	if err != nil {
		return nil, err
	}
	kbEl := root.FirstChildElement("KeyBinding")
	if kbEl == nil {
		return nil, errors.New("keymgmt: LocateResult missing KeyBinding")
	}
	der, err := base64.StdEncoding.DecodeString(childText(kbEl, "X509Certificate"))
	if err != nil {
		return nil, fmt.Errorf("keymgmt: LocateResult certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &KeyBinding{
		Name:        kbEl.AttrValue("Name"),
		Certificate: cert,
		Revoked:     childText(kbEl, "Status") != string(StatusValid),
	}, nil
}

// Validate asks the service for the trust status of the named binding.
func (c *Client) Validate(name string) (BindingStatus, string, error) {
	root, err := c.post(newRequest("ValidateRequest", name))
	if err != nil {
		return StatusIndeterminate, "", err
	}
	return BindingStatus(childText(root, "Status")), childText(root, "Reason"), nil
}

// Register binds name to cert under the given authenticator secret.
func (c *Client) Register(name string, cert *x509.Certificate, authenticator string) error {
	doc := newRequest("RegisterRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	doc.Root().CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(cert.Raw))
	_, err := c.post(doc)
	return err
}

// Revoke invalidates the named binding.
func (c *Client) Revoke(name, authenticator string) error {
	doc := newRequest("RevokeRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	_, err := c.post(doc)
	return err
}

// PublicKeyByName resolves a KeyName to a public key over the wire,
// refusing bindings the service does not report Valid.
func (c *Client) PublicKeyByName(name string) (crypto.PublicKey, error) {
	status, reason, err := c.Validate(name)
	if err != nil {
		return nil, err
	}
	if status != StatusValid {
		return nil, fmt.Errorf("keymgmt: binding %q is %s: %s", name, status, reason)
	}
	kb, err := c.Locate(name)
	if err != nil {
		return nil, err
	}
	return kb.Certificate.PublicKey, nil
}

// Reissue replaces the certificate under the named binding.
func (c *Client) Reissue(name string, cert *x509.Certificate, authenticator string) error {
	doc := newRequest("ReissueRequest", name)
	doc.Root().CreateChild(xkmsPrefix + ":Authenticator").SetText(authenticator)
	doc.Root().CreateChild(xkmsPrefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(cert.Raw))
	_, err := c.post(doc)
	return err
}
