package keymgmt

import (
	"crypto"
	"crypto/x509"
	"encoding/pem"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// PEM persistence for identities and trust anchors, used by the command
// line tools. Private keys are stored PKCS#8, certificates as standard
// CERTIFICATE blocks (leaf first, then the chain).

const (
	keyFileName   = "key.pem"
	chainFileName = "chain.pem"
)

// SaveIdentity writes an identity's key and certificate chain into dir.
func SaveIdentity(id *Identity, dir string) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	der, err := x509.MarshalPKCS8PrivateKey(id.Key)
	if err != nil {
		return err
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "PRIVATE KEY", Bytes: der})
	if err := os.WriteFile(filepath.Join(dir, keyFileName), keyPEM, 0o600); err != nil {
		return err
	}
	var chainPEM []byte
	for _, c := range id.Chain {
		chainPEM = append(chainPEM, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: c})...)
	}
	return os.WriteFile(filepath.Join(dir, chainFileName), chainPEM, 0o644)
}

// LoadIdentity reads an identity previously written by SaveIdentity.
func LoadIdentity(dir string) (*Identity, error) {
	keyPEM, err := os.ReadFile(filepath.Join(dir, keyFileName))
	if err != nil {
		return nil, err
	}
	block, _ := pem.Decode(keyPEM)
	if block == nil || block.Type != "PRIVATE KEY" {
		return nil, fmt.Errorf("keymgmt: %s: no PRIVATE KEY block", filepath.Join(dir, keyFileName))
	}
	keyAny, err := x509.ParsePKCS8PrivateKey(block.Bytes)
	if err != nil {
		return nil, err
	}
	signer, ok := keyAny.(crypto.Signer)
	if !ok {
		return nil, fmt.Errorf("keymgmt: key type %T cannot sign", keyAny)
	}
	chain, err := readCertChain(filepath.Join(dir, chainFileName))
	if err != nil {
		return nil, err
	}
	if len(chain) == 0 {
		return nil, errors.New("keymgmt: identity has no certificates")
	}
	leaf, err := x509.ParseCertificate(chain[0])
	if err != nil {
		return nil, err
	}
	return &Identity{
		Name:  leaf.Subject.CommonName,
		Key:   signer,
		Cert:  leaf,
		Chain: chain,
	}, nil
}

// SaveCertPEM writes one certificate to path.
func SaveCertPEM(cert *x509.Certificate, path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: cert.Raw}), 0o644)
}

// LoadCertPool reads trust anchors from one or more PEM files.
func LoadCertPool(paths ...string) (*x509.CertPool, error) {
	pool := x509.NewCertPool()
	total := 0
	for _, p := range paths {
		ders, err := readCertChain(p)
		if err != nil {
			return nil, err
		}
		for _, der := range ders {
			cert, err := x509.ParseCertificate(der)
			if err != nil {
				return nil, fmt.Errorf("keymgmt: %s: %w", p, err)
			}
			pool.AddCert(cert)
			total++
		}
	}
	if total == 0 {
		return nil, errors.New("keymgmt: no certificates loaded")
	}
	return pool, nil
}

func readCertChain(path string) ([][]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for {
		var block *pem.Block
		block, raw = pem.Decode(raw)
		if block == nil {
			break
		}
		if block.Type == "CERTIFICATE" {
			out = append(out, block.Bytes)
		}
	}
	return out, nil
}
