package keymgmt

import (
	"crypto"
	"crypto/x509"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// BindingStatus is the XKMS key binding status reported by Validate.
type BindingStatus string

// Key binding statuses per XKMS.
const (
	StatusValid         BindingStatus = "Valid"
	StatusInvalid       BindingStatus = "Invalid"
	StatusIndeterminate BindingStatus = "Indeterminate"
)

// Service errors.
var (
	// ErrNotFound indicates no binding is registered under the name.
	ErrNotFound = errors.New("keymgmt: key binding not found")
	// ErrAlreadyRegistered indicates a Register collision.
	ErrAlreadyRegistered = errors.New("keymgmt: key name already registered")
	// ErrRevoked indicates the binding has been revoked.
	ErrRevoked = errors.New("keymgmt: key binding revoked")
	// ErrBadAuthenticator indicates a revocation/reissue request failed
	// proof of possession.
	ErrBadAuthenticator = errors.New("keymgmt: authenticator mismatch")
)

// KeyBinding associates a name with a certificate, mirroring the XKMS
// KeyBinding structure.
type KeyBinding struct {
	Name        string
	Certificate *x509.Certificate
	Revoked     bool
}

// Service is the trust server of the paper's §7: it accepts key
// registrations and answers locate/validate queries for players. The
// zero value is not usable; construct with NewService.
type Service struct {
	roots *x509.CertPool

	// epoch counts trust-changing events (Revoke, Reissue) since the
	// service started. It only moves forward; distributed verdict
	// caches stamp entries with it so a replica can tell whether a
	// verdict predates the latest trust change.
	epoch atomic.Uint64

	mu            sync.RWMutex
	bindings      map[string]*binding
	intermediates []*x509.Certificate
	onRevoke      []func(name string)
}

type binding struct {
	cert          *x509.Certificate
	revoked       bool
	authenticator string
}

// NewService creates a key service trusting the given roots for
// validation decisions.
func NewService(roots *x509.CertPool) *Service {
	return &Service{roots: roots, bindings: make(map[string]*binding)}
}

// Register binds name to a certificate. The authenticator is a shared
// secret the registrant must present to revoke or replace the binding
// (standing in for the XKMS proof-of-possession exchange).
func (s *Service) Register(name string, cert *x509.Certificate, authenticator string) error {
	if name == "" || cert == nil {
		return errors.New("keymgmt: Register requires a name and certificate")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.bindings[name]; ok && !b.revoked {
		return fmt.Errorf("%w: %q", ErrAlreadyRegistered, name)
	}
	s.bindings[name] = &binding{cert: cert, authenticator: authenticator}
	return nil
}

// Locate returns the binding registered under name, revoked or not
// (XKMS Locate is a dumb directory lookup; trust decisions belong to
// Validate).
func (s *Service) Locate(name string) (*KeyBinding, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.bindings[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &KeyBinding{Name: name, Certificate: b.cert, Revoked: b.revoked}, nil
}

// Validate reports the trust status of the named binding: Valid when
// registered, unrevoked, and chain-valid to the service roots.
func (s *Service) Validate(name string) (BindingStatus, error) {
	s.mu.RLock()
	b, ok := s.bindings[name]
	s.mu.RUnlock()
	if !ok {
		return StatusIndeterminate, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if b.revoked {
		return StatusInvalid, fmt.Errorf("%w: %q", ErrRevoked, name)
	}
	if s.roots != nil {
		s.mu.RLock()
		inter := append([]*x509.Certificate(nil), s.intermediates...)
		s.mu.RUnlock()
		if _, err := VerifyChain(b.cert, s.roots, inter...); err != nil {
			return StatusInvalid, fmt.Errorf("keymgmt: chain validation for %q: %w", name, err)
		}
	}
	return StatusValid, nil
}

// AddIntermediate registers a chain-building certificate the service
// uses when validating bindings issued under subordinate authorities.
func (s *Service) AddIntermediate(cert *x509.Certificate) {
	if cert == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.intermediates = append(s.intermediates, cert)
}

// OnRevoke registers a hook fired (synchronously, outside the service
// lock) after every successful Revoke or Reissue with the affected
// binding name. Verification caches use it to flush every verdict that
// depends on the signer before the next lookup can observe the old key.
func (s *Service) OnRevoke(fn func(name string)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onRevoke = append(s.onRevoke, fn)
}

// fireRevoke snapshots the hook list under the read lock and invokes
// each hook unlocked, so hooks may call back into the service. The
// trust epoch advances before any hook runs: a hook that reads
// Epoch() (the cluster origin does, to stamp its fan-out) must see
// the post-revocation value.
func (s *Service) fireRevoke(name string) {
	s.epoch.Add(1)
	s.mu.RLock()
	hooks := append([]func(string){}, s.onRevoke...)
	s.mu.RUnlock()
	for _, fn := range hooks {
		fn(name)
	}
}

// Epoch reports the monotonic count of trust-changing events (Revoke,
// Reissue) the service has processed. A verdict cache stamped with an
// older epoch may predate a revocation and must re-verify.
func (s *Service) Epoch() uint64 { return s.epoch.Load() }

// Revoke marks the binding invalid. The authenticator must match the one
// presented at registration.
func (s *Service) Revoke(name, authenticator string) error {
	if err := s.revoke(name, authenticator); err != nil {
		return err
	}
	s.fireRevoke(name)
	return nil
}

func (s *Service) revoke(name, authenticator string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if b.authenticator != authenticator {
		return ErrBadAuthenticator
	}
	b.revoked = true
	return nil
}

// Reissue replaces the certificate under an existing binding (key
// rollover), authenticated like Revoke. OnRevoke hooks fire because the
// old key must stop vouching for cached verdicts immediately.
func (s *Service) Reissue(name string, cert *x509.Certificate, authenticator string) error {
	if err := s.reissue(name, cert, authenticator); err != nil {
		return err
	}
	s.fireRevoke(name)
	return nil
}

func (s *Service) reissue(name string, cert *x509.Certificate, authenticator string) error {
	if cert == nil {
		return errors.New("keymgmt: Reissue requires a certificate")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bindings[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if b.authenticator != authenticator {
		return ErrBadAuthenticator
	}
	b.cert = cert
	b.revoked = false
	return nil
}

// PublicKeyByName resolves a KeyName hint to a public key for signature
// verification, refusing revoked and chain-invalid bindings. It adapts
// the service to the verifier's KeyByName hook, realizing the paper's
// §7 "trust server" role in the verification path.
func (s *Service) PublicKeyByName(name string) (crypto.PublicKey, error) {
	if _, err := s.Validate(name); err != nil {
		return nil, err
	}
	kb, err := s.Locate(name)
	if err != nil {
		return nil, err
	}
	return kb.Certificate.PublicKey, nil
}

// Names returns the registered binding names (diagnostics and tests).
func (s *Service) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.bindings))
	for n := range s.bindings {
		out = append(out, n)
	}
	return out
}
