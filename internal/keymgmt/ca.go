// Package keymgmt provides the key-management substrate the paper's §3.1
// requirement list calls for: an X.509 certificate authority (trusted
// root inside the player, per §5.5), certificate chain validation, key
// revocation, and an XKMS-style key information service (§4, §7) usable
// in-process or over HTTP.
package keymgmt

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"math/big"
	"net"
	"sync"
	"time"
)

// KeyAlgorithm selects the key type for generated identities.
type KeyAlgorithm int

// Supported key algorithms.
const (
	RSA2048 KeyAlgorithm = iota
	RSA3072
	ECDSAP256
)

// GenerateKey creates a private key of the given algorithm.
func GenerateKey(alg KeyAlgorithm) (crypto.Signer, error) {
	switch alg {
	case RSA2048:
		return rsa.GenerateKey(rand.Reader, 2048)
	case RSA3072:
		return rsa.GenerateKey(rand.Reader, 3072)
	case ECDSAP256:
		return ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	default:
		return nil, fmt.Errorf("keymgmt: unknown key algorithm %d", alg)
	}
}

// CA is a certificate authority: a signing certificate and its private
// key. A CA issues subordinate CAs and end-entity certificates.
type CA struct {
	Cert *x509.Certificate
	Key  crypto.Signer

	mu     sync.Mutex
	serial *big.Int
	now    func() time.Time
}

// caValidity is the certificate lifetime issued by this substrate.
const caValidity = 10 * 365 * 24 * time.Hour

// NewRootCA creates a self-signed root authority (the "trusted root
// certificate within the player" of the paper's §5.5).
func NewRootCA(commonName string, alg KeyAlgorithm) (*CA, error) {
	key, err := GenerateKey(alg)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"DiscSec Test PKI"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(caValidity),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, key.Public(), key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, serial: big.NewInt(1), now: time.Now}, nil
}

func (ca *CA) nextSerial() *big.Int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if ca.serial == nil {
		ca.serial = big.NewInt(1)
	}
	ca.serial = new(big.Int).Add(ca.serial, big.NewInt(1))
	return new(big.Int).Set(ca.serial)
}

func (ca *CA) clock() time.Time {
	if ca.now != nil {
		return ca.now()
	}
	return time.Now()
}

// NewIntermediate issues a subordinate CA (e.g. a studio's signing
// authority under the format licensor's root).
func (ca *CA) NewIntermediate(commonName string, alg KeyAlgorithm) (*CA, error) {
	key, err := GenerateKey(alg)
	if err != nil {
		return nil, err
	}
	now := ca.clock()
	tmpl := &x509.Certificate{
		SerialNumber:          ca.nextSerial(),
		Subject:               pkix.Name{CommonName: commonName, Organization: []string{"DiscSec Test PKI"}},
		NotBefore:             now.Add(-time.Hour),
		NotAfter:              now.Add(caValidity / 2),
		KeyUsage:              x509.KeyUsageCertSign | x509.KeyUsageCRLSign | x509.KeyUsageDigitalSignature,
		BasicConstraintsValid: true,
		IsCA:                  true,
		MaxPathLenZero:        true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, key.Public(), ca.Key)
	if err != nil {
		return nil, err
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, err
	}
	return &CA{Cert: cert, Key: key, serial: big.NewInt(1000), now: ca.now}, nil
}

// Identity is an end entity: a content creator, application author, or
// player device with a certified key pair.
type Identity struct {
	Name string
	Key  crypto.Signer
	Cert *x509.Certificate
	// Chain holds the DER certificates from the leaf up to (but not
	// including) the root, for embedding in signatures.
	Chain [][]byte
}

// IssueIdentity creates a key pair and end-entity certificate signed by
// the CA.
func (ca *CA) IssueIdentity(commonName string, alg KeyAlgorithm) (*Identity, error) {
	key, err := GenerateKey(alg)
	if err != nil {
		return nil, err
	}
	cert, err := ca.IssueCertificate(commonName, key.Public())
	if err != nil {
		return nil, err
	}
	return &Identity{
		Name:  commonName,
		Key:   key,
		Cert:  cert,
		Chain: [][]byte{cert.Raw, ca.Cert.Raw},
	}, nil
}

// IssueCertificate certifies an externally generated public key.
func (ca *CA) IssueCertificate(commonName string, pub crypto.PublicKey) (*x509.Certificate, error) {
	now := ca.clock()
	tmpl := &x509.Certificate{
		SerialNumber: ca.nextSerial(),
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"DiscSec Test PKI"}},
		NotBefore:    now.Add(-time.Hour),
		NotAfter:     now.Add(caValidity / 4),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageCodeSigning, x509.ExtKeyUsageClientAuth, x509.ExtKeyUsageServerAuth},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, pub, ca.Key)
	if err != nil {
		return nil, err
	}
	return x509.ParseCertificate(der)
}

// IssueServerCertificate creates a key pair and a TLS server certificate
// with the given subject alternative names (hostnames or IP literals),
// ready for a content server (paper §7: SSL/TLS between server and
// player).
func (ca *CA) IssueServerCertificate(commonName string, hosts []string, alg KeyAlgorithm) (tls.Certificate, error) {
	key, err := GenerateKey(alg)
	if err != nil {
		return tls.Certificate{}, err
	}
	now := ca.clock()
	tmpl := &x509.Certificate{
		SerialNumber: ca.nextSerial(),
		Subject:      pkix.Name{CommonName: commonName, Organization: []string{"DiscSec Test PKI"}},
		NotBefore:    now.Add(-time.Hour),
		NotAfter:     now.Add(caValidity / 4),
		KeyUsage:     x509.KeyUsageDigitalSignature | x509.KeyUsageKeyEncipherment,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.Cert, key.Public(), ca.Key)
	if err != nil {
		return tls.Certificate{}, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, err
	}
	return tls.Certificate{
		Certificate: [][]byte{der, ca.Cert.Raw},
		PrivateKey:  key,
		Leaf:        leaf,
	}, nil
}

// Pool returns a certificate pool containing only this CA, for use as a
// trust anchor set.
func (ca *CA) Pool() *x509.CertPool {
	p := x509.NewCertPool()
	p.AddCert(ca.Cert)
	return p
}

// VerifyChain validates leaf against the root pool with optional
// intermediates, returning the verified chain.
func VerifyChain(leaf *x509.Certificate, roots *x509.CertPool, intermediates ...*x509.Certificate) ([][]*x509.Certificate, error) {
	if roots == nil {
		return nil, errors.New("keymgmt: no trust anchors")
	}
	inter := x509.NewCertPool()
	for _, c := range intermediates {
		inter.AddCert(c)
	}
	return leaf.Verify(x509.VerifyOptions{
		Roots:         roots,
		Intermediates: inter,
		KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
	})
}
