package keymgmt

import "testing"

// TestServiceEpochCountsTrustChanges pins the epoch feed the cluster
// origin seeds from: every trust-changing event (revoke, reissue)
// advances it by one, and a refused operation advances nothing.
func TestServiceEpochCountsTrustChanges(t *testing.T) {
	s := NewService(fixture.root.Pool())
	if err := s.Register("app-author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("epoch after register = %d, want 0 (registration changes no standing trust)", got)
	}

	// A refused revocation (bad authenticator) must not move the epoch:
	// nothing was actually revoked, so no cache anywhere needs flushing.
	if err := s.Revoke("app-author", "wrong"); err == nil {
		t.Fatal("revoke with a bad authenticator succeeded")
	}
	if got := s.Epoch(); got != 0 {
		t.Fatalf("epoch after refused revoke = %d, want 0", got)
	}

	if err := s.Reissue("app-author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 1 {
		t.Fatalf("epoch after reissue = %d, want 1", got)
	}

	if err := s.Revoke("app-author", "pw"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != 2 {
		t.Fatalf("epoch after revoke = %d, want 2", got)
	}

	// The epoch advances before the revocation hooks fire, so a hook
	// reading it (the cluster origin's bump) already sees the
	// post-revocation value.
	s2 := NewService(fixture.root.Pool())
	if err := s2.Register("app-author", fixture.author.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	var seen uint64
	s2.OnRevoke(func(string) { seen = s2.Epoch() })
	if err := s2.Revoke("app-author", "pw"); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Errorf("hook observed epoch %d, want 1 (bump happens before hooks fire)", seen)
	}
}
