package health_test

// The chaos matrix: deterministic dependency-failure scenarios driven
// through the full supervised pipeline — faults.Transport injecting
// scripted XKMS outages under the keymgmt client's breaker/bulkhead,
// the health monitor deriving component state, the shared library
// deciding serve-degraded versus fail-closed, and /healthz reflecting
// every transition. No wall-clock sleeps: breakers and the monitor run
// on a manual clock, and the retry policies use zero jitter so every
// backoff is zero.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"discsec/internal/core"
	"discsec/internal/experiments"
	"discsec/internal/faults"
	"discsec/internal/health"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/player"
	"discsec/internal/resilience"
	"discsec/internal/server"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
)

type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func newChaosClock() *chaosClock {
	return &chaosClock{t: time.Unix(1700000000, 0)}
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// signedDoc builds a cluster document carrying a KeyName-only
// signature, so every cold verification must resolve the signer
// through the (faultable) trust service.
func signedDoc(t *testing.T, seed uint64) []byte {
	t.Helper()
	_, creator := experiments.PKIFixture()
	cluster, _ := workload.Cluster(workload.ClusterSpec{AVTracks: 1, AppTracks: 1, Seed: seed})
	doc := cluster.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		t.Fatal(err)
	}
	return doc.Bytes()
}

const (
	chaosFailureThreshold = 3
	chaosSuccessThreshold = 2
	chaosOpenTimeout      = 30 * time.Second
)

// chaosRig is the full supervised pipeline under test.
type chaosRig struct {
	clk   *chaosClock
	rec   *obs.Recorder
	mon   *health.Monitor
	kc    *keymgmt.Client
	lib   *library.Library
	cs    *server.ContentServer
	wire  *faults.Transport
	creator *keymgmt.Identity
}

// newChaosRig stands up a live XKMS service behind a fault-injecting
// transport and wires the breaker, bulkhead, monitor, library, and
// content server exactly the way player.Supervise composes them.
func newChaosRig(t *testing.T, maxStale time.Duration) *chaosRig {
	t.Helper()
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	xkms := httptest.NewServer(&keymgmt.Handler{Service: svc})
	t.Cleanup(xkms.Close)

	clk := newChaosClock()
	rec := obs.NewRecorder()
	wire := &faults.Transport{}
	kc := &keymgmt.Client{
		BaseURL:    xkms.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: wire},
		Retry:      &resilience.Policy{MaxAttempts: 4, Jitter: func() float64 { return 0 }},
		MaxStale:   maxStale,
		Recorder:   rec,
		Breaker: &resilience.Breaker{
			Name:             health.ComponentXKMS,
			FailureThreshold: chaosFailureThreshold,
			SuccessThreshold: chaosSuccessThreshold,
			OpenTimeout:      chaosOpenTimeout,
			ProbeBudget:      1,
			Clock:            clk.Now,
		},
		Bulkhead: resilience.NewBulkhead(health.ComponentXKMS, 4),
	}
	mon := health.New(health.WithRecorder(rec), health.WithClock(clk.Now))
	player.Supervise(mon, kc, nil)
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true, KeyByName: kc.PublicKeyByName}),
		library.WithDegradedFunc(mon.DegradedFunc(health.ComponentXKMS)),
		library.WithRecorder(rec),
		library.WithFillLimit(2),
	)
	cs := server.NewContentServer(
		server.WithRecorder(rec),
		server.WithLibrary(lib),
		server.WithHealth(mon),
	)
	return &chaosRig{clk: clk, rec: rec, mon: mon, kc: kc, lib: lib, cs: cs, wire: wire, creator: creator}
}

// healthz performs an in-process GET /healthz and decodes the JSON.
func (r *chaosRig) healthz(t *testing.T) (int, health.Snapshot) {
	t.Helper()
	w := httptest.NewRecorder()
	r.cs.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var snap health.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("healthz body %q: %v", w.Body.String(), err)
	}
	return w.Code, snap
}

func (r *chaosRig) xkmsState(snap health.Snapshot) string {
	for _, c := range snap.Components {
		if c.Name == health.ComponentXKMS {
			return c.State
		}
	}
	return ""
}

func hasAuditKind(rec *obs.Recorder, kind string) bool {
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestChaosFlappingXKMSConverges is the acceptance scenario: a
// 50%-available flapping trust service. The breaker opens within its
// failure threshold, open-circuit cold fills fail closed with typed
// errors and zero wire attempts, warm library opens keep serving
// degraded+audited, half-open probes restore Healthy within the probe
// budget, and /healthz tracks every phase. MaxStale is 0 (strict
// mode), so a trust outage cannot be papered over by the client's
// stale cache — cold fills must fail closed.
func TestChaosFlappingXKMSConverges(t *testing.T) {
	r := newChaosRig(t, 0)
	ctx := context.Background()
	docA, docB, docC := signedDoc(t, 41), signedDoc(t, 42), signedDoc(t, 43)

	// Phase 1 — healthy: a clean wire, docA verifies and caches.
	vA, st, err := r.lib.OpenDocument(ctx, docA)
	if err != nil || st != library.StatusMiss {
		t.Fatalf("healthy fill: status=%q err=%v", st, err)
	}
	if vA.Fingerprint == "" || len(vA.Result.Signatures) == 0 {
		t.Fatal("healthy fill served without a verified signature")
	}
	if code, snap := r.healthz(t); code != http.StatusOK || snap.Overall != "healthy" {
		t.Fatalf("healthy healthz: code=%d overall=%q", code, snap.Overall)
	}

	// Phase 2 — the flap's down blocks: every wire request resets. The
	// first cold fill burns exactly FailureThreshold wire attempts
	// before the breaker opens and stops the retry loop.
	r.wire.Schedule = faults.Flap(1, 50, 0, faults.Fault{Kind: faults.Reset})
	base := r.rec.Counter("xkms.requests")
	_, _, err = r.lib.OpenDocument(ctx, docB)
	if !errors.Is(err, library.ErrDependencyDown) || !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("cold fill during outage = %v; want typed ErrDependencyDown wrapping ErrCircuitOpen", err)
	}
	if got := r.rec.Counter("xkms.requests") - base; got != chaosFailureThreshold {
		t.Errorf("outage fill made %d wire attempts, want exactly %d (no retry amplification)", got, chaosFailureThreshold)
	}

	// Further cold fills fail immediately without touching the wire.
	base = r.rec.Counter("xkms.requests")
	if _, _, err := r.lib.OpenDocument(ctx, docC); !errors.Is(err, library.ErrDependencyDown) {
		t.Fatalf("second cold fill = %v", err)
	}
	if got := r.rec.Counter("xkms.requests") - base; got != 0 {
		t.Errorf("open circuit leaked %d wire attempts", got)
	}

	// Warm opens keep serving — degraded and audited, never unverified.
	vA2, st, err := r.lib.OpenDocument(ctx, docA)
	if err != nil || st != library.StatusHit {
		t.Fatalf("warm open during outage: status=%q err=%v", st, err)
	}
	if vA2.Fingerprint == "" {
		t.Fatal("warm open served unverified bytes")
	}
	if r.rec.Counter("library.degraded_serve") == 0 || !hasAuditKind(r.rec, obs.AuditDegradedServe) {
		t.Error("warm serve under open breaker not audited as degraded")
	}

	if code, snap := r.healthz(t); code != http.StatusServiceUnavailable ||
		snap.Overall != "down" || r.xkmsState(snap) != "down" {
		t.Fatalf("outage healthz: code=%d snap=%+v", code, snap)
	}

	// Phase 3 — the flap's up block: the wire is clean again. Past the
	// open window, one cold fill's two trust round trips are admitted
	// as half-open probes (budget 1, sequential) and close the circuit.
	r.wire.Schedule = nil
	r.clk.Advance(chaosOpenTimeout)
	base = r.rec.Counter("xkms.requests")
	vB, st, err := r.lib.OpenDocument(ctx, docB)
	if err != nil || st != library.StatusMiss {
		t.Fatalf("recovery fill: status=%q err=%v", st, err)
	}
	if vB.Degraded {
		t.Error("verdict filled after recovery still marked degraded")
	}
	if got := r.rec.Counter("xkms.requests") - base; got != chaosSuccessThreshold {
		t.Errorf("recovery made %d wire attempts, want %d probe successes", got, chaosSuccessThreshold)
	}
	if r.kc.Breaker.State() != resilience.StateClosed {
		t.Errorf("breaker after recovery = %v", r.kc.Breaker.State())
	}
	if code, snap := r.healthz(t); code != http.StatusOK || snap.Overall != "healthy" {
		t.Fatalf("recovered healthz: code=%d overall=%q", code, snap.Overall)
	}

	// Every transition was observed.
	if r.rec.Counter("breaker.xkms.open") == 0 || r.rec.Counter("breaker.xkms.half-open") == 0 ||
		r.rec.Counter("breaker.xkms.closed") == 0 {
		t.Error("breaker transition counters incomplete")
	}
	if r.rec.Counter("health.xkms.down") == 0 || r.rec.Counter("health.xkms.healthy") == 0 {
		t.Error("health transition counters incomplete")
	}
	if !hasAuditKind(r.rec, obs.AuditBreakerTransition) || !hasAuditKind(r.rec, obs.AuditHealthChanged) ||
		!hasAuditKind(r.rec, obs.AuditFailClosed) {
		t.Error("missing transition / fail-closed audit events")
	}
}

// TestChaosBrownoutStaleCacheFallback: with MaxStale enabled, a warm
// trust client rides out a browned-out service on its stale cache —
// the breaker opens, resolutions degrade instead of failing, and
// recovery restores both the client and the monitor.
func TestChaosBrownoutStaleCacheFallback(t *testing.T) {
	r := newChaosRig(t, time.Hour)

	// Warm: resolve the signer live so the stale cache has an entry.
	if _, err := r.kc.PublicKeyByName(r.creator.Name); err != nil {
		t.Fatalf("warm resolution: %v", err)
	}
	if r.mon.State(health.ComponentXKMS) != health.Healthy {
		t.Fatalf("state after warm resolution = %v", r.mon.State(health.ComponentXKMS))
	}

	// Brownout: the service sheds every request with 503. The breaker
	// opens; the resolution still succeeds from the stale cache and the
	// degradation propagates to the monitor.
	r.wire.Schedule = faults.Brownout(50, http.StatusServiceUnavailable, 0)
	key, err := r.kc.PublicKeyByName(r.creator.Name)
	if err != nil || key == nil {
		t.Fatalf("brownout resolution with warm cache = %v; want stale-cache success", err)
	}
	if !r.kc.Degraded() {
		t.Fatal("client not degraded after stale-cache fallback")
	}
	if r.mon.State(health.ComponentXKMS) != health.Down {
		t.Errorf("monitor state during brownout = %v, want Down (breaker open)", r.mon.State(health.ComponentXKMS))
	}
	if !hasAuditKind(r.rec, obs.AuditDegradedEnter) {
		t.Error("degraded-trust entry not audited")
	}
	// While open, resolutions keep succeeding degraded with zero wire
	// traffic.
	base := r.rec.Counter("xkms.requests")
	if _, err := r.kc.PublicKeyByName(r.creator.Name); err != nil {
		t.Fatalf("open-circuit resolution = %v", err)
	}
	if got := r.rec.Counter("xkms.requests") - base; got != 0 {
		t.Errorf("open circuit leaked %d wire attempts", got)
	}

	// Recovery: service healthy again, open window elapsed. Probes
	// close the circuit, restore() clears the client's degraded flag,
	// and the OnRestored hook clears the monitor's.
	r.wire.Schedule = nil
	r.clk.Advance(chaosOpenTimeout)
	if _, err := r.kc.PublicKeyByName(r.creator.Name); err != nil {
		t.Fatalf("recovery resolution: %v", err)
	}
	if r.kc.Degraded() {
		t.Error("client still degraded after live answer")
	}
	if r.mon.State(health.ComponentXKMS) != health.Healthy {
		t.Errorf("monitor state after recovery = %v", r.mon.State(health.ComponentXKMS))
	}
	if !hasAuditKind(r.rec, obs.AuditDegradedExit) {
		t.Error("degraded-trust exit not audited")
	}
}

// TestChaosBulkheadIsolatesSlowTrust: with the trust compartment full,
// an additional caller's cancellation surfaces as a terminal bulkhead
// error instead of queueing forever.
func TestChaosBulkheadIsolatesSlowTrust(t *testing.T) {
	r := newChaosRig(t, 0)
	// Fill the compartment directly.
	var releases []func()
	for i := 0; i < r.kc.Bulkhead.Capacity(); i++ {
		rel, ok := r.kc.Bulkhead.TryAcquire()
		if !ok {
			t.Fatal("could not fill trust compartment")
		}
		releases = append(releases, rel)
	}
	// The context is alive when the attempt starts (so the retry layer
	// admits it) and expires while Acquire waits on the full
	// compartment.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := r.kc.PublicKeyByNameContext(ctx, r.creator.Name)
	if !errors.Is(err, resilience.ErrBulkheadFull) {
		t.Fatalf("full-compartment resolution = %v; want ErrBulkheadFull", err)
	}
	for _, rel := range releases {
		rel()
	}
	// With slots free again the pipeline works.
	if _, err := r.kc.PublicKeyByName(r.creator.Name); err != nil {
		t.Fatalf("post-release resolution: %v", err)
	}
}
