// Package health is the player's dependency-health supervisor: one
// state machine per guarded component (trust service, content origin,
// title library) deriving Healthy / Degraded / Down from circuit
// breaker transitions, active probe outcomes, and the trust client's
// degraded-cache signal. The snapshot it exposes is what /healthz
// serves and what the serve-degraded versus fail-closed decision table
// in SECURITY.md keys on: a Degraded trust service still serves warm,
// audited verdicts, while a Down one fails cold fills closed.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"discsec/internal/obs"
	"discsec/internal/resilience"
)

// Canonical component names for the three dependency edges the
// pipeline guards. Callers may register others (the monitor is not a
// closed set), but these are the names the server and chaos matrix use.
const (
	// ComponentXKMS is the XKMS trust service edge (keymgmt).
	ComponentXKMS = "xkms"
	// ComponentOrigin is the content-origin download edge.
	ComponentOrigin = "origin"
	// ComponentLibrary is the verified title library fill path.
	ComponentLibrary = "library"
	// ComponentCluster is the origin/edge cluster link: an edge's
	// heartbeat + fill path to its origin. Degraded after the first
	// missed heartbeat; Down past the heartbeat budget, at which point
	// the edge fails warm serves closed (see internal/cluster).
	ComponentCluster = "cluster"
)

// State is a component's effective health.
type State int

// Health states, ordered by severity so "worst of" is a max.
const (
	// Healthy: the dependency answers and nothing is stale.
	Healthy State = iota
	// Degraded: usable with reduced trust — a half-open breaker, a
	// stale-cache fallback in effect, or recent probe failures. Warm
	// reads continue (audited); expensive or trust-establishing work
	// should be avoided.
	Degraded
	// Down: the dependency is unavailable — its breaker is open or
	// probes have failed past the threshold. Work that requires it
	// fails closed.
	Down
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// ComponentStatus is one component's row in a snapshot.
type ComponentStatus struct {
	Name  string    `json:"name"`
	State string    `json:"state"`
	Since time.Time `json:"since"`
	// Cause is the human-readable reason for the current non-healthy
	// state (empty while healthy).
	Cause string `json:"cause,omitempty"`
}

// Snapshot is a point-in-time view of every registered component,
// ordered by name. It is the /healthz response body.
type Snapshot struct {
	Overall string `json:"overall"`
	// Role is the node's cluster role ("origin" or "edge"), set by the
	// server when it runs in a cluster mode so fleet orchestration can
	// distinguish the tiers from the same health feed.
	Role       string            `json:"role,omitempty"`
	Components []ComponentStatus `json:"components"`
}

// component carries the raw inputs and the state derived from them.
type component struct {
	breaker  resilience.BreakerState
	degraded bool // external stale-cache / degraded-trust flag
	probes   int  // consecutive probe failures
	state    State
	since    time.Time
	cause    string
}

// Monitor supervises a set of named components. A nil *Monitor is a
// pass-through that reports everything Healthy, so wiring is optional
// at every call site. All methods are safe for concurrent use;
// observability (counters, audit events) fires outside the lock.
type Monitor struct {
	rec            *obs.Recorder
	clock          func() time.Time
	probeThreshold int

	mu         sync.Mutex
	components map[string]*component
}

// Option configures a Monitor.
type Option func(*Monitor)

// WithRecorder wires counters and audit events for every breaker and
// health transition.
func WithRecorder(r *obs.Recorder) Option {
	return func(m *Monitor) { m.rec = r }
}

// WithClock overrides time.Now for deterministic snapshots.
func WithClock(fn func() time.Time) Option {
	return func(m *Monitor) { m.clock = fn }
}

// WithProbeThreshold sets the consecutive probe-failure count that
// marks a component Down (default 3; any failures short of it mark
// Degraded).
func WithProbeThreshold(n int) Option {
	return func(m *Monitor) {
		if n > 0 {
			m.probeThreshold = n
		}
	}
}

// New builds a Monitor.
func New(opts ...Option) *Monitor {
	m := &Monitor{
		probeThreshold: 3,
		components:     make(map[string]*component),
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

func (m *Monitor) now() time.Time {
	if m.clock != nil {
		return m.clock()
	}
	return time.Now()
}

// change is one recorded health transition, emitted after the lock
// drops (callbacks never run under m.mu).
type change struct {
	name     string
	from, to State
	cause    string
}

func (m *Monitor) emit(changes []change) {
	for _, c := range changes {
		m.rec.Inc("health." + c.name + "." + c.to.String())
		m.rec.Audit(obs.AuditHealthChanged, "component %s: %s -> %s%s",
			c.name, c.from, c.to, causeSuffix(c.cause))
	}
}

func causeSuffix(cause string) string {
	if cause == "" {
		return ""
	}
	return ": " + cause
}

// ensureLocked returns the named component, creating it Healthy.
func (m *Monitor) ensureLocked(name string) *component {
	c, ok := m.components[name]
	if !ok {
		c = &component{since: m.now()}
		m.components[name] = c
	}
	return c
}

// deriveLocked recomputes a component's effective state as the worst
// of its inputs and records the transition if it moved.
func (m *Monitor) deriveLocked(name string, c *component, cause string, changes *[]change) {
	next := Healthy
	switch c.breaker {
	case resilience.StateOpen:
		next = Down
	case resilience.StateHalfOpen:
		next = Degraded
	}
	if c.degraded && next < Degraded {
		next = Degraded
	}
	if c.probes >= m.probeThreshold {
		next = Down
	} else if c.probes > 0 && next < Degraded {
		next = Degraded
	}
	if next == c.state {
		return
	}
	*changes = append(*changes, change{name: name, from: c.state, to: next, cause: cause})
	c.state = next
	c.since = m.now()
	if next == Healthy {
		c.cause = ""
	} else {
		c.cause = cause
	}
}

// Register declares components up front so they appear Healthy in
// snapshots before any signal arrives.
func (m *Monitor) Register(names ...string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, n := range names {
		m.ensureLocked(n)
	}
}

// BindBreaker subscribes the monitor to a breaker's transitions and
// folds the breaker's current state into the named component. Any
// OnTransition already on the breaker keeps firing first. Bind before
// the breaker carries traffic.
func (m *Monitor) BindBreaker(name string, b *resilience.Breaker) {
	if m == nil || b == nil {
		return
	}
	prev := b.OnTransition
	b.OnTransition = func(bname string, from, to resilience.BreakerState, cause error) {
		if prev != nil {
			prev(bname, from, to, cause)
		}
		m.rec.Inc("breaker." + bname + "." + to.String())
		m.rec.Audit(obs.AuditBreakerTransition, "breaker %s: %s -> %s%s",
			bname, from, to, causeSuffix(errString(cause)))
		m.observeBreaker(name, to, errString(cause))
	}
	m.observeBreaker(name, b.State(), "")
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

func (m *Monitor) observeBreaker(name string, s resilience.BreakerState, cause string) {
	var changes []change
	m.mu.Lock()
	c := m.ensureLocked(name)
	c.breaker = s
	m.deriveLocked(name, c, cause, &changes)
	m.mu.Unlock()
	m.emit(changes)
}

// SetDegraded sets or clears the external degraded flag (keymgmt's
// stale-cache fallback entering or exiting).
func (m *Monitor) SetDegraded(name string, degraded bool, cause string) {
	if m == nil {
		return
	}
	var changes []change
	m.mu.Lock()
	c := m.ensureLocked(name)
	c.degraded = degraded
	m.deriveLocked(name, c, cause, &changes)
	m.mu.Unlock()
	m.emit(changes)
}

// ReportProbe feeds one active-probe outcome: nil resets the failure
// streak, non-nil extends it.
func (m *Monitor) ReportProbe(name string, err error) {
	if m == nil {
		return
	}
	var changes []change
	m.mu.Lock()
	c := m.ensureLocked(name)
	if err == nil {
		c.probes = 0
	} else {
		c.probes++
	}
	m.deriveLocked(name, c, errString(err), &changes)
	m.mu.Unlock()
	m.emit(changes)
}

// State reports a component's effective state (Healthy if unknown or
// the monitor is nil).
func (m *Monitor) State(name string) State {
	if m == nil {
		return Healthy
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.components[name]; ok {
		return c.state
	}
	return Healthy
}

// Overall reports the worst state across all components.
func (m *Monitor) Overall() State {
	if m == nil {
		return Healthy
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	worst := Healthy
	for _, c := range m.components {
		if c.state > worst {
			worst = c.state
		}
	}
	return worst
}

// DegradedFunc adapts a component to the library's degraded-serve
// hook: true whenever the component is anything but Healthy, so warm
// serves are tainted and audited while the dependency recovers.
func (m *Monitor) DegradedFunc(name string) func() bool {
	return func() bool { return m.State(name) != Healthy }
}

// Snapshot returns the current view of every component, sorted by
// name.
func (m *Monitor) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{Overall: Healthy.String()}
	}
	m.mu.Lock()
	names := make([]string, 0, len(m.components))
	for n := range m.components {
		names = append(names, n)
	}
	sort.Strings(names)
	snap := Snapshot{Overall: Healthy.String()}
	worst := Healthy
	for _, n := range names {
		c := m.components[n]
		if c.state > worst {
			worst = c.state
		}
		snap.Components = append(snap.Components, ComponentStatus{
			Name:  n,
			State: c.state.String(),
			Since: c.since,
			Cause: c.cause,
		})
	}
	m.mu.Unlock()
	snap.Overall = worst.String()
	return snap
}
