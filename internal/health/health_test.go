package health

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"discsec/internal/obs"
	"discsec/internal/resilience"
)

type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1700000000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func hasAudit(rec *obs.Recorder, kind string) bool {
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

func TestNilMonitorPassThrough(t *testing.T) {
	var m *Monitor
	m.Register("x")
	m.SetDegraded("x", true, "boom")
	m.ReportProbe("x", errors.New("boom"))
	if m.State("x") != Healthy || m.Overall() != Healthy {
		t.Error("nil monitor not Healthy")
	}
	if m.DegradedFunc("x")() {
		t.Error("nil monitor degraded func fired")
	}
	if s := m.Snapshot(); s.Overall != "healthy" || len(s.Components) != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestRegisterStartsHealthy(t *testing.T) {
	clk := newManualClock()
	m := New(WithClock(clk.Now))
	m.Register(ComponentXKMS, ComponentOrigin)
	snap := m.Snapshot()
	if snap.Overall != "healthy" || len(snap.Components) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Sorted by name: origin before xkms.
	if snap.Components[0].Name != ComponentOrigin || snap.Components[1].Name != ComponentXKMS {
		t.Errorf("order = %s, %s", snap.Components[0].Name, snap.Components[1].Name)
	}
}

func TestBreakerDrivesComponentState(t *testing.T) {
	clk := newManualClock()
	rec := obs.NewRecorder()
	m := New(WithClock(clk.Now), WithRecorder(rec))
	b := &resilience.Breaker{
		Name:             "xkms",
		FailureThreshold: 2,
		SuccessThreshold: 1,
		OpenTimeout:      time.Second,
		Clock:            clk.Now,
	}
	m.BindBreaker(ComponentXKMS, b)
	if m.State(ComponentXKMS) != Healthy {
		t.Fatalf("state after bind = %v", m.State(ComponentXKMS))
	}

	fail := func() {
		b.Do(context.Background(), func(context.Context) error { //nolint:errcheck
			return resilience.Transient(errors.New("down"))
		})
	}
	fail()
	fail()
	if m.State(ComponentXKMS) != Down {
		t.Fatalf("state with open breaker = %v, want Down", m.State(ComponentXKMS))
	}
	if m.Overall() != Down {
		t.Errorf("overall = %v", m.Overall())
	}

	// Past the open window, the first probe flips half-open → Degraded.
	clk.Advance(time.Second)
	done, err := b.Allow()
	if err != nil {
		t.Fatal(err)
	}
	if m.State(ComponentXKMS) != Degraded {
		t.Fatalf("state while half-open = %v, want Degraded", m.State(ComponentXKMS))
	}
	done(nil)
	if m.State(ComponentXKMS) != Healthy {
		t.Fatalf("state after recovery = %v, want Healthy", m.State(ComponentXKMS))
	}

	if rec.Counter("breaker.xkms.open") != 1 || rec.Counter("breaker.xkms.closed") != 1 {
		t.Errorf("breaker counters: open=%d closed=%d",
			rec.Counter("breaker.xkms.open"), rec.Counter("breaker.xkms.closed"))
	}
	if rec.Counter("health.xkms.down") != 1 || rec.Counter("health.xkms.healthy") != 1 {
		t.Errorf("health counters: down=%d healthy=%d",
			rec.Counter("health.xkms.down"), rec.Counter("health.xkms.healthy"))
	}
	if !hasAudit(rec, obs.AuditBreakerTransition) || !hasAudit(rec, obs.AuditHealthChanged) {
		t.Error("missing transition audit events")
	}
}

func TestBindBreakerChainsExistingCallback(t *testing.T) {
	clk := newManualClock()
	m := New(WithClock(clk.Now))
	b := &resilience.Breaker{Name: "dep", FailureThreshold: 1, Clock: clk.Now}
	called := 0
	b.OnTransition = func(string, resilience.BreakerState, resilience.BreakerState, error) { called++ }
	m.BindBreaker("dep", b)
	b.Do(context.Background(), func(context.Context) error { //nolint:errcheck
		return resilience.Transient(errors.New("down"))
	})
	if called != 1 {
		t.Errorf("prior OnTransition called %d times, want 1", called)
	}
	if m.State("dep") != Down {
		t.Errorf("state = %v", m.State("dep"))
	}
}

func TestDegradedFlag(t *testing.T) {
	clk := newManualClock()
	rec := obs.NewRecorder()
	m := New(WithClock(clk.Now), WithRecorder(rec))
	m.SetDegraded(ComponentXKMS, true, "stale cache fallback")
	if m.State(ComponentXKMS) != Degraded {
		t.Fatalf("state = %v", m.State(ComponentXKMS))
	}
	if !m.DegradedFunc(ComponentXKMS)() {
		t.Error("DegradedFunc false while degraded")
	}
	snap := m.Snapshot()
	if snap.Overall != "degraded" || snap.Components[0].Cause != "stale cache fallback" {
		t.Errorf("snapshot = %+v", snap)
	}
	m.SetDegraded(ComponentXKMS, false, "")
	if m.State(ComponentXKMS) != Healthy {
		t.Fatalf("state after clear = %v", m.State(ComponentXKMS))
	}
	if got := m.Snapshot().Components[0].Cause; got != "" {
		t.Errorf("cause after recovery = %q", got)
	}
}

func TestProbeFailureLadder(t *testing.T) {
	clk := newManualClock()
	m := New(WithClock(clk.Now), WithProbeThreshold(3))
	boom := errors.New("probe refused")
	m.ReportProbe(ComponentOrigin, boom)
	if m.State(ComponentOrigin) != Degraded {
		t.Fatalf("state after 1 failure = %v, want Degraded", m.State(ComponentOrigin))
	}
	m.ReportProbe(ComponentOrigin, boom)
	m.ReportProbe(ComponentOrigin, boom)
	if m.State(ComponentOrigin) != Down {
		t.Fatalf("state after 3 failures = %v, want Down", m.State(ComponentOrigin))
	}
	m.ReportProbe(ComponentOrigin, nil)
	if m.State(ComponentOrigin) != Healthy {
		t.Fatalf("state after success = %v, want Healthy", m.State(ComponentOrigin))
	}
}

func TestSinceTracksTransitionTime(t *testing.T) {
	clk := newManualClock()
	m := New(WithClock(clk.Now))
	m.Register(ComponentXKMS)
	t0 := clk.Now()
	clk.Advance(time.Minute)
	m.SetDegraded(ComponentXKMS, true, "outage")
	snap := m.Snapshot()
	if !snap.Components[0].Since.Equal(t0.Add(time.Minute)) {
		t.Errorf("since = %v, want transition time %v", snap.Components[0].Since, t0.Add(time.Minute))
	}
}

func TestWorstOfComposition(t *testing.T) {
	clk := newManualClock()
	m := New(WithClock(clk.Now))
	// Degraded flag plus a probe-failure streak past the threshold:
	// Down wins; clearing the probes leaves Degraded.
	m.SetDegraded(ComponentXKMS, true, "stale")
	boom := errors.New("probe refused")
	m.ReportProbe(ComponentXKMS, boom)
	m.ReportProbe(ComponentXKMS, boom)
	m.ReportProbe(ComponentXKMS, boom)
	if m.State(ComponentXKMS) != Down {
		t.Fatalf("state = %v, want Down", m.State(ComponentXKMS))
	}
	m.ReportProbe(ComponentXKMS, nil)
	if m.State(ComponentXKMS) != Degraded {
		t.Fatalf("state = %v, want Degraded (flag still set)", m.State(ComponentXKMS))
	}
}
