// Package cluster implements the distributed verification tier: one
// origin node performs full cold verification through the shared
// library (parse, canonicalize, signature and chain validation), and a
// fleet of thin edge nodes serves warm opens from replicated verdict
// caches — two map lookups and a streaming digest, no DOM build, no
// crypto.
//
// Replication preserves the library's content-addressed key: every
// wire verdict (Record) carries the exclusive-C14N digest it was
// verified under, the fingerprint of the signing key, and the fleet
// trust epoch at fill time. An edge only ever serves a record whose
// digest it has recomputed from the presented bytes, so a verdict that
// cannot be re-addressed — a wrapped, substituted, or reshuffled
// document — can never ride a replicated cache entry.
//
// Trust changes propagate as epoch announcements: a revocation at the
// origin bumps the fleet epoch and fans it out to every edge; records
// stamped with an older epoch fail closed (library.ErrTrustChanged) at
// the next touch. The epoch only moves forward (monotonic CAS), so a
// delayed or replayed announcement can never roll an edge back onto
// verdicts a newer revocation already killed. An edge partitioned from
// its origin degrades per the health state machine — warm serves
// continue audited while Degraded, then fail closed (ErrPartitioned)
// once missed heartbeats cross the budget and the component goes Down.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"discsec/internal/library"
	"discsec/internal/resilience"
)

// Node roles, surfaced in /healthz so fleet orchestration can tell the
// tiers apart.
const (
	// RoleOrigin marks the node performing cold verification.
	RoleOrigin = "origin"
	// RoleEdge marks a node serving warm opens from a replicated cache.
	RoleEdge = "edge"
)

// Cluster errors.
var (
	// ErrPartitioned indicates the edge has missed enough origin
	// heartbeats to be considered cut off; it fails both warm serves
	// and cold fills closed rather than serve verdicts it can no
	// longer invalidate.
	ErrPartitioned = errors.New("cluster: edge partitioned from origin; failing closed")
	// ErrKeyMismatch indicates a replicated verdict did not re-address
	// the presented content: its canonical digest differs from the one
	// computed locally. Fail-closed by construction — the record is
	// discarded, never served.
	ErrKeyMismatch = errors.New("cluster: replicated verdict does not re-address the presented content")
)

// Status classifies how an edge open was served.
type Status string

// Edge open statuses (also surfaced in the X-Cluster-Status header).
const (
	// StatusHit: served from the edge's replicated cache — no wire.
	StatusHit Status = "hit"
	// StatusMiss: this edge filled from the origin.
	StatusMiss Status = "miss"
	// StatusForward: the miss was routed to the ring owner of the key,
	// which filled (or already held) the verdict.
	StatusForward Status = "forward"
	// StatusWait: another in-flight open on this edge was already
	// filling the same digest; this call shared its outcome.
	StatusWait Status = "singleflight-wait"
)

// Record is one replicated verdict: the full library cache key
// (canonical digest, signer fingerprint, trust epoch) plus the verdict
// summary an edge serves. It deliberately carries no document bytes —
// the content is what the client presents; the record only vouches
// that content with exactly this canonical digest was verified.
type Record struct {
	// Key is the exclusive-C14N digest (hex) the verdict is addressed
	// by.
	Key string `json:"key"`
	// Signer is the fingerprint of the key that validated
	// SignatureValue (empty for unsigned content, which is never
	// replicated).
	Signer string `json:"signer"`
	// Epoch is the fleet trust epoch read before the fill began; a
	// record whose epoch lags the announced one is dead.
	Epoch uint64 `json:"epoch"`
	// Degraded marks a verdict filled while the origin's trust service
	// was degraded (revocation data possibly stale).
	Degraded bool `json:"degraded,omitempty"`
	// Signatures is the number of validated signatures.
	Signatures int `json:"signatures"`
}

// Member identifies one edge node: its ring name and base URL.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// writeError maps cluster/library failures onto wire status codes the
// peer's classifier understands: 4xx terminal, 5xx (+Retry-After)
// transient.
func writeError(w http.ResponseWriter, err error) {
	msg := err.Error()
	switch {
	case errors.Is(err, library.ErrBadDocument):
		http.Error(w, msg, http.StatusBadRequest)
	case errors.Is(err, library.ErrTrustChanged),
		errors.Is(err, library.ErrDependencyDown),
		errors.Is(err, resilience.ErrCircuitOpen),
		errors.Is(err, ErrPartitioned),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, msg, http.StatusServiceUnavailable)
	default:
		http.Error(w, msg, http.StatusBadGateway)
	}
}

// classifyExchange folds an inter-node HTTP status into the resilience
// taxonomy: 5xx and 429 are transient (the breaker counts them toward
// opening), everything else terminal.
func classifyExchange(url string, resp *http.Response) error {
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		return resilience.Transient(fmt.Errorf("cluster: POST %s: %s", url, resp.Status))
	}
	return resilience.Terminal(fmt.Errorf("cluster: POST %s: %s", url, resp.Status))
}

// flightCall is one in-flight fill shared by concurrent callers.
type flightCall struct {
	done chan struct{}
	rd   Record
	err  error
}

// flightGroup is a minimal singleflight over Records: concurrent
// misses for the same digest on one edge share one fill. The zero
// value is ready to use.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn once per key among concurrent callers; shared reports
// whether this caller joined an execution another caller led.
func (g *flightGroup) do(key string, fn func() (Record, error)) (rd Record, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.rd, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.rd, c.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.rd, c.err, false
}
