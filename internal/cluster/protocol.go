// Wire protocol: length-prefixed JSON frames over HTTP. Every message
// is one uvarint byte count followed by exactly that many bytes of
// JSON, so streams of verdicts concatenate without delimiters, a
// truncated transfer is detected at the frame boundary (io.
// ErrUnexpectedEOF, never a silently short verdict set), and a hostile
// peer cannot balloon a decode past MaxFrame.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Cluster routes. The origin serves Verify (cold verification), Epoch
// (GET: current fleet epoch — the edge heartbeat), Verdicts (GET:
// bootstrap pull of the current verdict set), and Join; edges serve
// Verify (forwarded misses from ring peers), Verdicts (POST: pushed
// records), Epoch (POST: announcements), and Members (membership
// updates).
const (
	PathVerify   = "/cluster/verify"
	PathEpoch    = "/cluster/epoch"
	PathVerdicts = "/cluster/verdicts"
	PathJoin     = "/cluster/join"
	PathMembers  = "/cluster/members"
)

// Wire headers.
const (
	// HeaderEdge names the requesting edge so the origin can skip it
	// during push fan-out (the requester gets the record in its
	// response).
	HeaderEdge = "X-Cluster-Edge"
	// HeaderForwarded marks a miss already routed once by the ring;
	// the receiving edge must fill from the origin directly, never
	// re-forward — divergent ring views can therefore never loop.
	HeaderForwarded = "X-Cluster-Forwarded"
	// HeaderStatus reports how the node served the open (Status).
	HeaderStatus = "X-Cluster-Status"
)

// MaxFrame bounds one frame's JSON body.
const MaxFrame = 4 << 20

// EpochAnnounce carries the fleet trust epoch, pushed by the origin on
// every trust change and polled by edge heartbeats.
type EpochAnnounce struct {
	Epoch uint64 `json:"epoch"`
	// Reason is the human-readable cause (audit trails only; never
	// load-bearing).
	Reason string `json:"reason,omitempty"`
}

// JoinRequest registers an edge with the origin.
type JoinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// JoinResponse hands a joining edge the fleet epoch and the full
// membership (itself included).
type JoinResponse struct {
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// MemberUpdate is the origin's membership broadcast to standing edges;
// it carries the epoch too, so membership churn doubles as an epoch
// convergence opportunity.
type MemberUpdate struct {
	Epoch   uint64   `json:"epoch"`
	Members []Member `json:"members"`
}

// WriteFrame writes v as one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cluster: encoding frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d-byte limit", len(body), MaxFrame)
	}
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], uint64(len(body)))
	if _, err := w.Write(prefix[:n]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// EncodeFrame returns v as one framed message (request bodies).
func EncodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// FrameReader decodes a stream of frames.
type FrameReader struct {
	br *bufio.Reader
}

// NewFrameReader wraps r for frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{br: bufio.NewReader(r)}
}

// Next decodes the next frame into v. It returns io.EOF at a clean
// frame boundary and io.ErrUnexpectedEOF when the stream ends inside a
// frame (a truncated transfer is never a silently short result).
func (f *FrameReader) Next(v any) error {
	n, err := binary.ReadUvarint(f.br)
	if err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			// A stream ending mid-prefix is truncation; only a stream
			// ending exactly between frames is a clean EOF.
			return err
		}
		return fmt.Errorf("cluster: reading frame prefix: %w", err)
	}
	if n > MaxFrame {
		return fmt.Errorf("cluster: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(f.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("cluster: reading %d-byte frame: %w", n, err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("cluster: decoding frame: %w", err)
	}
	return nil
}
