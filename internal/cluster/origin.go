package cluster

import (
	"bytes"
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/resilience"
)

// Origin is the cluster's cold-verification node: it runs every cold
// fill through the shared library, stamps the resulting verdict with
// the fleet trust epoch read before the fill began (so a fill racing a
// revocation self-invalidates at every edge), and fans records and
// epoch announcements out to the registered edges. It implements
// http.Handler for the /cluster/* routes; mount it with
// server.WithClusterOrigin or behind any mux.
type Origin struct {
	lib     *library.Library
	rec     *obs.Recorder
	client  *http.Client
	maxBody int64

	// epoch is the fleet trust epoch: the authoritative count of
	// trust-changing events. Forward-only.
	epoch atomic.Uint64

	mu       sync.Mutex
	members  map[string]Member
	records  map[string]Record
	breakers map[string]*resilience.Breaker
}

// OriginOption configures an Origin.
type OriginOption func(*Origin)

// WithOriginRecorder wires counters and audit events.
func WithOriginRecorder(rec *obs.Recorder) OriginOption {
	return func(o *Origin) { o.rec = rec }
}

// WithOriginTrust couples the origin to the trust service: the fleet
// epoch seeds from the service's trust-change count, and every
// revocation or reissue bumps it and fans the announcement out to the
// edges.
func WithOriginTrust(svc *keymgmt.Service) OriginOption {
	return func(o *Origin) {
		o.epoch.Store(svc.Epoch())
		svc.OnRevoke(func(name string) { o.Bump("signer " + name + " revoked") })
	}
}

// WithOriginClient sets the HTTP client for push fan-out. It must
// carry a Timeout so a partitioned edge stalls one push, not the
// origin.
func WithOriginClient(c *http.Client) OriginOption {
	return func(o *Origin) {
		if c != nil {
			o.client = c
		}
	}
}

// WithOriginMaxBody bounds an inbound verification body (default
// 16 MiB).
func WithOriginMaxBody(n int64) OriginOption {
	return func(o *Origin) {
		if n > 0 {
			o.maxBody = n
		}
	}
}

// NewOrigin builds the origin over a shared verification library.
func NewOrigin(lib *library.Library, opts ...OriginOption) *Origin {
	o := &Origin{
		lib:      lib,
		client:   &http.Client{Timeout: 5 * time.Second},
		maxBody:  16 << 20,
		members:  make(map[string]Member),
		records:  make(map[string]Record),
		breakers: make(map[string]*resilience.Breaker),
	}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// Epoch reports the current fleet trust epoch.
func (o *Origin) Epoch() uint64 { return o.epoch.Load() }

// Members returns the registered edges, sorted by name.
func (o *Origin) Members() []Member {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := o.membersLocked()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (o *Origin) membersLocked() []Member {
	out := make([]Member, 0, len(o.members))
	for _, m := range o.members {
		out = append(out, m)
	}
	return out
}

// Records reports the resident replicated-verdict count (diagnostics
// and tests).
func (o *Origin) Records() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.records)
}

// Bump advances the fleet trust epoch by one, drops every record
// stamped under the old epoch, and announces the new epoch to all
// registered edges (best-effort: a partitioned edge converges through
// its next successful heartbeat instead). It returns the new epoch.
func (o *Origin) Bump(reason string) uint64 {
	e := o.epoch.Add(1)
	o.mu.Lock()
	o.records = make(map[string]Record)
	members := o.membersLocked()
	o.mu.Unlock()
	o.rec.Inc("cluster.epoch_advance")
	o.rec.Audit(obs.AuditClusterEpoch, "origin: fleet trust epoch -> %d (%s)", e, reason)
	ann, err := EncodeFrame(EpochAnnounce{Epoch: e, Reason: reason})
	if err != nil {
		return e
	}
	for _, m := range members {
		o.push(m, PathEpoch, ann, "cluster.epoch_push")
	}
	return e
}

// breakerFor returns the per-edge push breaker, so one unreachable
// edge fails its pushes fast instead of stalling every fan-out on a
// full client timeout.
func (o *Origin) breakerFor(name string) *resilience.Breaker {
	o.mu.Lock()
	defer o.mu.Unlock()
	b, ok := o.breakers[name]
	if !ok {
		b = &resilience.Breaker{Name: "cluster-push-" + name}
		o.breakers[name] = b
	}
	return b
}

// push delivers one framed message to an edge route, best-effort: the
// result feeds the edge's breaker and the counters, never the caller.
func (o *Origin) push(m Member, path string, frame []byte, okCounter string) {
	b := o.breakerFor(m.Name)
	err := b.Do(context.Background(), func(ctx context.Context) error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodPost, m.URL+path, bytes.NewReader(frame))
		if rerr != nil {
			return resilience.Terminal(rerr)
		}
		resp, derr := o.client.Do(req)
		if derr != nil {
			return resilience.Classify(derr)
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 300 {
			return classifyExchange(m.URL+path, resp)
		}
		return nil
	})
	if err != nil {
		o.rec.Inc("cluster.push_fail")
		return
	}
	o.rec.Inc(okCounter)
}

// ServeHTTP routes the origin half of the wire protocol.
func (o *Origin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PathVerify && r.Method == http.MethodPost:
		o.serveVerify(w, r)
	case r.URL.Path == PathEpoch && r.Method == http.MethodGet:
		o.rec.Inc("cluster.heartbeat_serve")
		writeFrameResponse(w, EpochAnnounce{Epoch: o.epoch.Load()})
	case r.URL.Path == PathVerdicts && r.Method == http.MethodGet:
		o.serveVerdicts(w)
	case r.URL.Path == PathJoin && r.Method == http.MethodPost:
		o.serveJoin(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveVerify is the fleet's single cold-verification entry: the body
// streams straight into the library (single pass, reader-first), and
// the verdict ships back as a Record stamped with the epoch read
// before the fill. Reading the epoch first is load-bearing: a
// revocation that lands mid-verification bumps past it, so every edge
// rejects the record as lagging instead of caching a pre-revocation
// verdict.
func (o *Origin) serveVerify(w http.ResponseWriter, r *http.Request) {
	ctx, rec := o.obsContext(r.Context())
	defer rec.Start(obs.StageCluster).End()
	e := o.epoch.Load()
	v, status, err := o.lib.OpenReader(ctx, http.MaxBytesReader(w, r.Body, o.maxBody))
	if err != nil {
		rec.Inc("cluster.origin_verify_err")
		writeError(w, err)
		return
	}
	rec.Inc("cluster.origin_verify")
	rd := Record{
		Key:        v.Key,
		Signer:     v.Fingerprint,
		Epoch:      e,
		Degraded:   v.Degraded,
		Signatures: len(v.Result.Signatures),
	}
	o.mu.Lock()
	o.records[rd.Key] = rd
	members := o.membersLocked()
	o.mu.Unlock()
	// Replicate to every edge except the requester (which gets the
	// record in its response) before answering: once the requester
	// holds its verdict, fleet-wide replication has already happened.
	if frame, ferr := EncodeFrame(rd); ferr == nil {
		requester := r.Header.Get(HeaderEdge)
		for _, m := range members {
			if m.Name == requester {
				continue
			}
			o.push(m, PathVerdicts, frame, "cluster.push")
		}
	}
	w.Header().Set(HeaderStatus, string(status))
	writeFrameResponse(w, rd)
}

// serveVerdicts streams the resident record set as frames (edge
// bootstrap pull).
func (o *Origin) serveVerdicts(w http.ResponseWriter) {
	o.mu.Lock()
	records := make([]Record, 0, len(o.records))
	for _, rd := range o.records {
		records = append(records, rd)
	}
	o.mu.Unlock()
	sort.Slice(records, func(i, j int) bool { return records[i].Key < records[j].Key })
	w.Header().Set("Content-Type", "application/octet-stream")
	for _, rd := range records {
		if err := WriteFrame(w, rd); err != nil {
			return
		}
	}
	o.rec.Inc("cluster.pull_serve")
}

// serveJoin registers an edge and hands it the fleet epoch plus the
// full membership; standing edges learn the newcomer through a
// membership broadcast.
func (o *Origin) serveJoin(w http.ResponseWriter, r *http.Request) {
	var jr JoinRequest
	if err := NewFrameReader(http.MaxBytesReader(w, r.Body, MaxFrame)).Next(&jr); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if jr.Name == "" || jr.URL == "" {
		http.Error(w, "cluster: join requires a name and URL", http.StatusBadRequest)
		return
	}
	e := o.epoch.Load()
	o.mu.Lock()
	o.members[jr.Name] = Member{Name: jr.Name, URL: jr.URL}
	members := o.membersLocked()
	o.mu.Unlock()
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })
	o.rec.Inc("cluster.join")
	writeFrameResponse(w, JoinResponse{Epoch: e, Members: members})
	update, err := EncodeFrame(MemberUpdate{Epoch: e, Members: members})
	if err != nil {
		return
	}
	for _, m := range members {
		if m.Name == jr.Name {
			continue
		}
		o.push(m, PathMembers, update, "cluster.member_push")
	}
}

// obsContext mirrors the library: a recorder on the context wins,
// otherwise the origin's is attached.
func (o *Origin) obsContext(ctx context.Context) (context.Context, *obs.Recorder) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec := obs.FromContext(ctx); rec != nil {
		return ctx, rec
	}
	return obs.WithRecorder(ctx, o.rec), o.rec
}

func writeFrameResponse(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := WriteFrame(w, v); err != nil {
		// Headers are gone; nothing recoverable mid-body.
		return
	}
}
