package cluster

import (
	"fmt"
	"testing"
)

// TestRingGoldenRouting pins the routing function: every edge in the
// fleet must compute identical owners for identical keys, forever, or
// concurrent cold misses stop converging on one origin fill. A hash or
// layout change that moves these keys is a wire-compatibility break
// between mixed-version edges and must be deliberate.
func TestRingGoldenRouting(t *testing.T) {
	r := NewRing(64)
	r.Add("edge-0", "edge-1", "edge-2", "edge-3")
	golden := []struct {
		key   string
		owner string
	}{
		{"alpha", "edge-2"},
		{"bravo", "edge-1"},
		{"charlie", "edge-0"},
		{"delta", "edge-0"},
		{"echo", "edge-2"},
		{"foxtrot", "edge-1"},
		{"a1b2c3", "edge-2"},
		{"deadbeef", "edge-2"},
	}
	for _, g := range golden {
		if got := r.Owner(g.key); got != g.owner {
			t.Errorf("Owner(%q) = %q, want %q (routing changed: mixed-version fleets will dedupe cold misses at different owners)", g.key, got, g.owner)
		}
	}
}

// TestRingDistributionBounds sweeps 16 virtual-node configurations and
// checks that 8192 keys over 8 nodes stay within a factor of two of the
// per-node mean, tightening once vnodes reach 16.
func TestRingDistributionBounds(t *testing.T) {
	const nodes, keys = 8, 8192
	const mean = keys / nodes
	for v := 8; v <= 128; v += 8 {
		r := NewRing(v)
		for i := 0; i < nodes; i++ {
			r.Add(fmt.Sprintf("edge-%d", i))
		}
		counts := make(map[string]int, nodes)
		for i := 0; i < keys; i++ {
			counts[r.Owner(fmt.Sprintf("key-%d", i))]++
		}
		lo, hi := mean/4, 2*mean
		if v >= 16 {
			lo, hi = mean/2, 7*mean/4
		}
		for i := 0; i < nodes; i++ {
			n := fmt.Sprintf("edge-%d", i)
			if c := counts[n]; c < lo || c > hi {
				t.Errorf("vnodes=%d: node %s owns %d of %d keys, want within [%d, %d] (mean %d)", v, n, c, keys, lo, hi, mean)
			}
		}
	}
}

// TestRingJoinMovesOnlyToNewNode checks the defining consistent-hashing
// property: when a node joins, the only keys that change owner are the
// ones the newcomer claims, and their count is near keys/(n+1). Any key
// moving between two standing nodes would invalidate their warm caches
// for no reason.
func TestRingJoinMovesOnlyToNewNode(t *testing.T) {
	const nodes, keys = 8, 8192
	r := NewRing(64)
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("edge-%d", i))
	}
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Owner(k)
	}

	r.Add("edge-8")
	moved := 0
	for k, old := range before {
		now := r.Owner(k)
		if now == old {
			continue
		}
		moved++
		if now != "edge-8" {
			t.Fatalf("key %q moved %s -> %s on join of edge-8: keys may only move to the joining node", k, old, now)
		}
	}
	want := keys / (nodes + 1)
	if moved < want/2 || moved > 2*want {
		t.Errorf("join moved %d keys, want near %d (within [%d, %d])", moved, want, want/2, 2*want)
	}

	// Leaving restores the exact prior layout: the ring is a pure
	// function of the member set.
	r.Remove("edge-8")
	for k, old := range before {
		if now := r.Owner(k); now != old {
			t.Fatalf("key %q owned by %s after leave, want %s (layout must depend only on membership)", k, now, old)
		}
	}
}

// TestRingOrderIndependence checks that join order and SetNodes produce
// identical layouts — edges learn membership through broadcasts that
// can arrive in any interleaving.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing(32)
	a.Add("edge-2")
	a.Add("edge-0", "edge-3")
	a.Add("edge-1")
	a.Remove("edge-3")

	b := NewRing(32)
	b.SetNodes([]string{"edge-0", "edge-1", "edge-2"})

	for i := 0; i < 512; i++ {
		k := fmt.Sprintf("key-%d", i)
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("Owner(%q): incremental ring says %s, SetNodes ring says %s", k, ao, bo)
		}
	}
}

// TestRingEmptyAndDefaults covers the edges: empty ring routes nowhere,
// vnodes <= 0 takes the default, blank names are ignored.
func TestRingEmptyAndDefaults(t *testing.T) {
	r := NewRing(0)
	if r.vnodes != DefaultVirtualNodes {
		t.Errorf("NewRing(0) vnodes = %d, want %d", r.vnodes, DefaultVirtualNodes)
	}
	if got := r.Owner("anything"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	r.Add("", "edge-0", "")
	if n := r.Len(); n != 1 {
		t.Errorf("Len = %d after adding one real and two blank names, want 1", n)
	}
	if got := r.Owner("anything"); got != "edge-0" {
		t.Errorf("single-node ring Owner = %q, want edge-0", got)
	}
	if ns := r.Nodes(); len(ns) != 1 || ns[0] != "edge-0" {
		t.Errorf("Nodes = %v, want [edge-0]", ns)
	}
}
