package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/c14n"
	"discsec/internal/health"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/resilience"
	"discsec/internal/xmlstream"
)

// Edge is a thin verification node: it recomputes the canonical digest
// of presented content in one streaming pass (no DOM, no crypto) and
// serves the matching replicated verdict from its local record cache.
// Misses route through the consistent-hash ring to the key's owner —
// so concurrent cold misses across the whole fleet collapse into one
// origin verification — and fills ride a circuit breaker bound to the
// cluster health component. It implements http.Handler for the edge
// half of the wire protocol; mount it with server.WithClusterEdge.
type Edge struct {
	name    string
	selfURL string
	origin  string
	rec     *obs.Recorder
	monitor *health.Monitor
	client  *http.Client
	fill    *resilience.Breaker
	bulk    *resilience.Bulkhead
	ring    *Ring
	vnodes  int
	maxBody int64

	// epoch is the highest fleet trust epoch this edge has heard
	// announced. Forward-only (advanceEpoch); records stamped below it
	// are dead.
	epoch atomic.Uint64

	mu      sync.RWMutex
	records map[string]Record
	peers   map[string]string

	flights flightGroup
}

// EdgeOption configures an Edge.
type EdgeOption func(*Edge)

// WithEdgeRecorder wires counters and audit events.
func WithEdgeRecorder(rec *obs.Recorder) EdgeOption {
	return func(e *Edge) { e.rec = rec }
}

// WithEdgeHealth supplies the health monitor deriving the cluster
// component's Degraded/Down state from heartbeat probes and the fill
// breaker. Without it the edge builds a private monitor with the
// default probe threshold.
func WithEdgeHealth(m *health.Monitor) EdgeOption {
	return func(e *Edge) { e.monitor = m }
}

// WithEdgeClient sets the inter-node HTTP client. It must carry a
// Timeout so a dead peer hits the retry path instead of hanging.
func WithEdgeClient(c *http.Client) EdgeOption {
	return func(e *Edge) {
		if c != nil {
			e.client = c
		}
	}
}

// WithEdgeBreaker replaces the origin-fill breaker (tests tune
// thresholds and clocks through it). Bind happens in NewEdge.
func WithEdgeBreaker(b *resilience.Breaker) EdgeOption {
	return func(e *Edge) {
		if b != nil {
			e.fill = b
		}
	}
}

// WithEdgeBulkhead caps concurrent origin fills from this edge.
func WithEdgeBulkhead(bh *resilience.Bulkhead) EdgeOption {
	return func(e *Edge) { e.bulk = bh }
}

// WithEdgeVirtualNodes sets the ring's virtual-node count per member
// (DefaultVirtualNodes when unset).
func WithEdgeVirtualNodes(n int) EdgeOption {
	return func(e *Edge) { e.vnodes = n }
}

// WithEdgeMaxBody bounds one open's document size (default 16 MiB).
func WithEdgeMaxBody(n int64) EdgeOption {
	return func(e *Edge) {
		if n > 0 {
			e.maxBody = n
		}
	}
}

// NewEdge builds an edge named name, advertising selfURL to peers and
// filling from the origin base URL.
func NewEdge(name, selfURL, origin string, opts ...EdgeOption) *Edge {
	e := &Edge{
		name:    name,
		selfURL: selfURL,
		origin:  origin,
		client:  &http.Client{Timeout: 5 * time.Second},
		maxBody: 16 << 20,
		records: make(map[string]Record),
		peers:   make(map[string]string),
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.monitor == nil {
		e.monitor = health.New(health.WithRecorder(e.rec))
	}
	if e.fill == nil {
		e.fill = &resilience.Breaker{Name: name + "-fill"}
	}
	e.ring = NewRing(e.vnodes)
	e.ring.Add(name)
	e.monitor.Register(health.ComponentCluster)
	e.monitor.BindBreaker(health.ComponentCluster, e.fill)
	return e
}

// Name returns the edge's ring name.
func (e *Edge) Name() string { return e.name }

// Epoch reports the highest fleet trust epoch the edge has heard.
func (e *Edge) Epoch() uint64 { return e.epoch.Load() }

// Records reports the resident replicated-verdict count.
func (e *Edge) Records() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.records)
}

// Health exposes the edge's monitor (the server's /healthz snapshot).
func (e *Edge) Health() *health.Monitor { return e.monitor }

// Ring exposes the routing ring (tests pin ownership through it).
func (e *Edge) Ring() *Ring { return e.ring }

// Peers returns the known peer names, sorted.
func (e *Edge) Peers() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.peers))
	for n := range e.peers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// obsContext mirrors the library: a recorder on the context wins,
// otherwise the edge's is attached.
func (e *Edge) obsContext(ctx context.Context) (context.Context, *obs.Recorder) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec := obs.FromContext(ctx); rec != nil {
		return ctx, rec
	}
	return obs.WithRecorder(ctx, e.rec), e.rec
}

// advanceEpoch moves the edge's announced epoch forward, never back:
// announcements arrive over the wire, where duplication, delay, and
// reordering are normal, so only a strictly newer epoch wins the CAS.
// A replayed or out-of-order announcement is counted and dropped.
func (e *Edge) advanceEpoch(to uint64, cause string) bool {
	for {
		cur := e.epoch.Load()
		if to == cur {
			return false
		}
		if to < cur {
			e.rec.Inc("cluster.epoch_stale")
			return false
		}
		if e.epoch.CompareAndSwap(cur, to) {
			e.rec.Inc("cluster.epoch_advance")
			e.rec.Audit(obs.AuditClusterEpoch, "edge %s: fleet trust epoch %d -> %d (%s)", e.name, cur, to, cause)
			return true
		}
	}
}

// setMembers replaces the edge's fleet view: the ring carries every
// member (self included), the peer table everyone else.
func (e *Edge) setMembers(members []Member) {
	names := []string{e.name}
	peers := make(map[string]string, len(members))
	for _, m := range members {
		if m.Name == "" || m.Name == e.name {
			continue
		}
		peers[m.Name] = m.URL
		names = append(names, m.Name)
	}
	e.ring.SetNodes(names)
	e.mu.Lock()
	e.peers = peers
	e.mu.Unlock()
}

func (e *Edge) peerURL(name string) (string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	url, ok := e.peers[name]
	return url, ok
}

// Join registers the edge with the origin and adopts the fleet epoch
// and membership from the response.
func (e *Edge) Join(ctx context.Context) error {
	ctx, rec := e.obsContext(ctx)
	frame, err := EncodeFrame(JoinRequest{Name: e.name, URL: e.selfURL})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.origin+PathJoin, bytes.NewReader(frame))
	if err != nil {
		return err
	}
	req.Header.Set(HeaderEdge, e.name)
	resp, err := e.client.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: join: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return classifyExchange(e.origin+PathJoin, resp)
	}
	var jr JoinResponse
	if err := NewFrameReader(resp.Body).Next(&jr); err != nil {
		return err
	}
	e.advanceEpoch(jr.Epoch, "join")
	e.setMembers(jr.Members)
	rec.Inc("cluster.joined")
	return nil
}

// Pull replicates the origin's resident verdict set into the edge's
// cache (bootstrap for a cold or rejoining edge), returning how many
// records were adopted.
func (e *Edge) Pull(ctx context.Context) (int, error) {
	ctx, rec := e.obsContext(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.origin+PathVerdicts, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set(HeaderEdge, e.name)
	resp, err := e.client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: pull: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, classifyExchange(e.origin+PathVerdicts, resp)
	}
	fr := NewFrameReader(resp.Body)
	n := 0
	for {
		var rd Record
		if err := fr.Next(&rd); err != nil {
			if err == io.EOF {
				break
			}
			return n, err
		}
		if e.storeRecord(rec, rd) {
			n++
		}
	}
	rec.Inc("cluster.pull")
	return n, nil
}

// Heartbeat performs one origin liveness probe: it polls the fleet
// epoch and feeds the outcome to the health monitor. Consecutive
// failures walk the cluster component Degraded then Down (the
// fail-closed threshold); one success resets the streak and converges
// the epoch — which is how a healed partition catches up on
// revocations it missed.
func (e *Edge) Heartbeat(ctx context.Context) error {
	ctx, rec := e.obsContext(ctx)
	ann, err := e.pollEpoch(ctx)
	if err != nil {
		e.monitor.ReportProbe(health.ComponentCluster, err)
		rec.Inc("cluster.heartbeat_fail")
		return fmt.Errorf("cluster: heartbeat: %w", err)
	}
	e.monitor.ReportProbe(health.ComponentCluster, nil)
	rec.Inc("cluster.heartbeat_ok")
	e.advanceEpoch(ann.Epoch, "heartbeat")
	return nil
}

func (e *Edge) pollEpoch(ctx context.Context) (EpochAnnounce, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, e.origin+PathEpoch, nil)
	if err != nil {
		return EpochAnnounce{}, err
	}
	req.Header.Set(HeaderEdge, e.name)
	resp, err := e.client.Do(req)
	if err != nil {
		return EpochAnnounce{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return EpochAnnounce{}, classifyExchange(e.origin+PathEpoch, resp)
	}
	var ann EpochAnnounce
	if err := NewFrameReader(resp.Body).Next(&ann); err != nil {
		return EpochAnnounce{}, err
	}
	return ann, nil
}

// RunHeartbeats drives Heartbeat every interval until ctx ends. It
// blocks: the caller owns the goroutine and its supervision, keeping
// this package free of unsupervised go statements.
func (e *Edge) RunHeartbeats(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			_ = e.Heartbeat(ctx) // the outcome already fed the monitor
		}
	}
}

// OpenReader serves one content open at the edge: a single streaming
// pass recomputes the exclusive-C14N digest (the library cache key)
// while retaining the raw bytes for a possible fill, then the
// replicated cache answers warm opens locally and misses route via
// the ring to exactly one origin verification fleet-wide.
func (e *Edge) OpenReader(ctx context.Context, r io.Reader) (Record, Status, error) {
	ctx, rec := e.obsContext(ctx)
	defer rec.Start(obs.StageCluster).End()
	if err := ctx.Err(); err != nil {
		return Record{}, StatusMiss, err
	}
	key, body, err := e.digest(rec, r)
	if err != nil {
		return Record{}, StatusMiss, err
	}
	return e.open(ctx, rec, key, body, false)
}

// digest streams the document once: the canonicalizer computes the
// cache key while a tee retains the raw bytes — no DOM is built and no
// signature math runs on the edge.
func (e *Edge) digest(rec *obs.Recorder, r io.Reader) (string, []byte, error) {
	var buf bytes.Buffer
	h := sha256.New()
	st, err := c14n.NewStream(h, c14n.Options{Exclusive: true, Recorder: rec})
	if err != nil {
		return "", nil, err
	}
	if err := xmlstream.Parse(io.TeeReader(io.LimitReader(r, e.maxBody+1), &buf), xmlstream.Options{}, st); err != nil {
		return "", nil, fmt.Errorf("%w: %w", library.ErrBadDocument, err)
	}
	if err := st.Close(); err != nil {
		return "", nil, fmt.Errorf("%w: %w", library.ErrBadDocument, err)
	}
	if int64(buf.Len()) > e.maxBody {
		return "", nil, resilience.Terminal(fmt.Errorf("cluster: document exceeds the %d-byte limit", e.maxBody))
	}
	return hex.EncodeToString(h.Sum(nil)), buf.Bytes(), nil
}

// open is the keyed serve path shared by OpenReader and forwarded
// peer requests (forwarded=true fills from the origin directly, never
// re-forwards).
func (e *Edge) open(ctx context.Context, rec *obs.Recorder, key string, body []byte, forwarded bool) (Record, Status, error) {
	rd, ok, err := e.lookup(rec, key)
	if err != nil {
		return Record{}, StatusHit, err
	}
	if ok {
		return rd, StatusHit, nil
	}
	if e.monitor.State(health.ComponentCluster) == health.Down {
		return Record{}, StatusMiss, e.failPartitioned(rec, key, "cold fill")
	}
	status := StatusMiss
	rd, err, shared := e.flights.do(key, func() (Record, error) {
		// Double-check under flight leadership: a push or a racing
		// fill may have landed since the first lookup.
		if rd, ok, lerr := e.lookup(rec, key); lerr != nil {
			return Record{}, lerr
		} else if ok {
			status = StatusHit
			return rd, nil
		}
		return e.fillMiss(ctx, rec, key, body, forwarded, &status)
	})
	if shared {
		rec.Inc("cluster.singleflight_wait")
		status = StatusWait
	}
	if err != nil {
		return Record{}, status, err
	}
	return rd, status, nil
}

// lookup serves the warm path: one record fetch plus the epoch and
// partition gates. A record whose epoch lags the announced one dies
// here (library.ErrTrustChanged); a warm hit on a Down edge fails
// closed; a warm hit on a Degraded edge serves, audited.
func (e *Edge) lookup(rec *obs.Recorder, key string) (Record, bool, error) {
	e.mu.RLock()
	rd, ok := e.records[key]
	e.mu.RUnlock()
	if !ok {
		return Record{}, false, nil
	}
	if cur := e.epoch.Load(); rd.Epoch < cur {
		e.mu.Lock()
		// Re-check under the write lock: a fresher record may have
		// replaced the lagging one since the read.
		if got, still := e.records[key]; still && got.Epoch < cur {
			delete(e.records, key)
		}
		e.mu.Unlock()
		rec.Inc("cluster.lagging_drop")
		return Record{}, false, fmt.Errorf("cluster: edge %s: verdict %.12s at epoch %d lags announced epoch %d: %w",
			e.name, key, rd.Epoch, cur, library.ErrTrustChanged)
	}
	switch e.monitor.State(health.ComponentCluster) {
	case health.Down:
		return Record{}, false, e.failPartitioned(rec, key, "warm serve")
	case health.Degraded:
		rec.Inc("cluster.degraded_serve")
		rec.Audit(obs.AuditDegradedServe, "edge %s: verdict %.12s served while cluster link degraded (signer %.12s)", e.name, key, rd.Signer)
	}
	rec.Inc("cluster.hit")
	return rd, true, nil
}

// failPartitioned is the fail-closed exit for a Down cluster link.
func (e *Edge) failPartitioned(rec *obs.Recorder, key, what string) error {
	rec.Inc("cluster.partition_fail_closed")
	rec.Audit(obs.AuditClusterPartition, "edge %s: %s for %.12s refused; origin unreachable past the heartbeat budget", e.name, what, key)
	return fmt.Errorf("cluster: edge %s: %s for %.12s: %w", e.name, what, key, ErrPartitioned)
}

// fillMiss resolves a cold miss: forward to the ring owner when that
// is another edge (fleet-wide dedup), falling back to — or going
// straight to — the breaker-guarded origin fill.
func (e *Edge) fillMiss(ctx context.Context, rec *obs.Recorder, key string, body []byte, forwarded bool, status *Status) (Record, error) {
	if !forwarded {
		if owner := e.ring.Owner(key); owner != "" && owner != e.name {
			if url, ok := e.peerURL(owner); ok {
				rd, err := e.exchange(ctx, url+PathVerify, body, true)
				if err == nil {
					if aerr := e.adopt(rec, key, rd); aerr != nil {
						return Record{}, aerr
					}
					rec.Inc("cluster.forward")
					*status = StatusForward
					return rd, nil
				}
				// The owner is unreachable or refusing; the origin can
				// still serve this miss (at worst one duplicate
				// verification fleet-wide).
				rec.Inc("cluster.forward_fallback")
			}
		}
	}
	release, err := e.bulk.Acquire(ctx)
	if err != nil {
		rec.Inc("cluster.bulkhead_rejected")
		return Record{}, err
	}
	defer release()
	var rd Record
	err = e.fill.Do(ctx, func(ctx context.Context) error {
		var xerr error
		rd, xerr = e.exchange(ctx, e.origin+PathVerify, body, false)
		return xerr
	})
	if err != nil {
		rec.Inc("cluster.fill_err")
		return Record{}, err
	}
	if aerr := e.adopt(rec, key, rd); aerr != nil {
		return Record{}, aerr
	}
	rec.Inc("cluster.fill")
	return rd, nil
}

// adopt admits a filled record: it must re-address the locally
// computed key exactly (the wrapping-proofness of the whole tier rides
// on this check) and must not lag the announced epoch (a fill that
// raced a revocation self-invalidates here).
func (e *Edge) adopt(rec *obs.Recorder, key string, rd Record) error {
	if rd.Key != key {
		rec.Inc("cluster.key_mismatch")
		return resilience.Terminal(fmt.Errorf("cluster: edge %s: verdict keyed %.12s for content keyed %.12s: %w",
			e.name, rd.Key, key, ErrKeyMismatch))
	}
	if cur := e.epoch.Load(); rd.Epoch < cur {
		rec.Inc("cluster.lagging_drop")
		return fmt.Errorf("cluster: edge %s: filled verdict %.12s at epoch %d lags announced epoch %d: %w",
			e.name, key, rd.Epoch, cur, library.ErrTrustChanged)
	}
	e.mu.Lock()
	e.records[key] = rd
	e.mu.Unlock()
	return nil
}

// storeRecord admits a pushed or pulled record. No key check is needed
// here: a stored record only ever serves content whose digest the edge
// recomputes to exactly that key.
func (e *Edge) storeRecord(rec *obs.Recorder, rd Record) bool {
	if rd.Key == "" {
		return false
	}
	if cur := e.epoch.Load(); rd.Epoch < cur {
		rec.Inc("cluster.lagging_drop")
		return false
	}
	e.mu.Lock()
	e.records[rd.Key] = rd
	e.mu.Unlock()
	return true
}

// exchange posts a document to a verification route (peer or origin)
// and decodes the verdict frame. Transport and 5xx failures come back
// transient so the fill breaker counts them toward opening.
func (e *Edge) exchange(ctx context.Context, url string, body []byte, forwarded bool) (Record, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return Record{}, resilience.Terminal(err)
	}
	req.Header.Set(HeaderEdge, e.name)
	if forwarded {
		req.Header.Set(HeaderForwarded, "1")
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return Record{}, resilience.Classify(fmt.Errorf("cluster: POST %s: %w", url, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Record{}, classifyExchange(url, resp)
	}
	var rd Record
	if err := NewFrameReader(resp.Body).Next(&rd); err != nil {
		return Record{}, resilience.Transient(err)
	}
	return rd, nil
}

// ServeHTTP routes the edge half of the wire protocol.
func (e *Edge) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == PathVerify && r.Method == http.MethodPost:
		e.serveVerify(w, r)
	case r.URL.Path == PathVerdicts && r.Method == http.MethodPost:
		e.serveVerdicts(w, r)
	case r.URL.Path == PathEpoch && r.Method == http.MethodPost:
		e.serveEpoch(w, r)
	case r.URL.Path == PathEpoch && r.Method == http.MethodGet:
		writeFrameResponse(w, EpochAnnounce{Epoch: e.epoch.Load()})
	case r.URL.Path == PathMembers && r.Method == http.MethodPost:
		e.serveMembers(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveVerify handles a miss forwarded by a ring peer: same open path,
// but never re-forwarded.
func (e *Edge) serveVerify(w http.ResponseWriter, r *http.Request) {
	ctx, rec := e.obsContext(r.Context())
	defer rec.Start(obs.StageCluster).End()
	key, body, err := e.digest(rec, http.MaxBytesReader(w, r.Body, e.maxBody))
	if err != nil {
		writeError(w, err)
		return
	}
	rec.Inc("cluster.forward_serve")
	rd, status, err := e.open(ctx, rec, key, body, true)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set(HeaderStatus, string(status))
	writeFrameResponse(w, rd)
}

// serveVerdicts stores records pushed by the origin.
func (e *Edge) serveVerdicts(w http.ResponseWriter, r *http.Request) {
	_, rec := e.obsContext(r.Context())
	fr := NewFrameReader(http.MaxBytesReader(w, r.Body, MaxFrame+16))
	for {
		var rd Record
		if err := fr.Next(&rd); err != nil {
			if err == io.EOF {
				break
			}
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if e.storeRecord(rec, rd) {
			rec.Inc("cluster.push_recv")
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// serveEpoch applies an epoch announcement pushed by the origin.
func (e *Edge) serveEpoch(w http.ResponseWriter, r *http.Request) {
	var ann EpochAnnounce
	if err := NewFrameReader(http.MaxBytesReader(w, r.Body, MaxFrame)).Next(&ann); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	reason := ann.Reason
	if reason == "" {
		reason = "announce"
	}
	e.advanceEpoch(ann.Epoch, reason)
	w.WriteHeader(http.StatusNoContent)
}

// serveMembers applies a membership broadcast.
func (e *Edge) serveMembers(w http.ResponseWriter, r *http.Request) {
	var mu MemberUpdate
	if err := NewFrameReader(http.MaxBytesReader(w, r.Body, MaxFrame)).Next(&mu); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if mu.Epoch > 0 {
		e.advanceEpoch(mu.Epoch, "membership update")
	}
	e.setMembers(mu.Members)
	w.WriteHeader(http.StatusNoContent)
}
