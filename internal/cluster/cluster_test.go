// Loopback cluster simulation: a real origin and a fleet of edges,
// each behind its own ContentServer on 127.0.0.1, exercising the wire
// protocol end to end — warm cache-locality, fleet-wide cold-miss
// collapse, revocation convergence, and partition fail-closed.
package cluster_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discsec/internal/cluster"
	"discsec/internal/core"
	"discsec/internal/experiments"
	"discsec/internal/faults"
	"discsec/internal/health"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/server"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
)

// signedDoc builds a cluster document signed with a KeyName-only
// signature, so origin verification resolves the key through the trust
// service and revocation genuinely changes the outcome. Distinct seeds
// produce distinct canonical digests.
func signedDoc(t testing.TB, creator *keymgmt.Identity, seed uint64) []byte {
	t.Helper()
	cl, _ := workload.Cluster(workload.ClusterSpec{AppTracks: 1, Seed: seed})
	doc := cl.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		t.Fatal(err)
	}
	return doc.Bytes()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fleet is an in-process cluster: one origin and n edges, every node
// behind its own ContentServer on a real loopback listener.
type fleet struct {
	t         *testing.T
	svc       *keymgmt.Service
	creator   *keymgmt.Identity
	origin    *cluster.Origin
	originRec *obs.Recorder
	originURL string
	edges     []*cluster.Edge
	recs      []*obs.Recorder
}

func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	originRec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc),
		library.WithRecorder(originRec),
	)
	origin := cluster.NewOrigin(lib,
		cluster.WithOriginRecorder(originRec),
		cluster.WithOriginTrust(svc),
	)
	originCS := server.NewContentServer(server.WithClusterOrigin(origin))
	originURL, stop, err := originCS.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = stop() })

	f := &fleet{t: t, svc: svc, creator: creator, origin: origin, originRec: originRec, originURL: originURL}
	for i := 0; i < n; i++ {
		f.addEdge(fmt.Sprintf("edge-%d", i))
	}
	// Join broadcasts fan out after each join response; wait until
	// every edge sees the full membership before routing keys.
	for _, e := range f.edges {
		e := e
		waitFor(t, e.Name()+" membership", func() bool { return e.Ring().Len() == n })
	}
	return f
}

// addEdge starts one edge node: its own listener (bound first, so the
// advertised URL is real), a ContentServer in edge mode on top, and a
// Join to the origin.
func (f *fleet) addEdge(name string, opts ...cluster.EdgeOption) *cluster.Edge {
	f.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.t.Fatal(err)
	}
	rec := obs.NewRecorder()
	e := cluster.NewEdge(name, "http://"+ln.Addr().String(), f.originURL,
		append([]cluster.EdgeOption{cluster.WithEdgeRecorder(rec)}, opts...)...)
	cs := server.NewContentServer(server.WithClusterEdge(e))
	srv := &http.Server{Handler: cs}
	go srv.Serve(ln) //nolint:errcheck // closed by cleanup
	f.t.Cleanup(func() { _ = srv.Close() })
	if err := e.Join(context.Background()); err != nil {
		f.t.Fatalf("join %s: %v", name, err)
	}
	f.edges = append(f.edges, e)
	f.recs = append(f.recs, rec)
	return e
}

// TestWarmOpensAreCacheLocal pins the tier's core economics: one cold
// fill verifies at the origin, replication lands the verdict on every
// edge before the filler's open returns, and every subsequent warm
// open on every edge is served from the local record cache with zero
// origin round trips — measured, not assumed.
func TestWarmOpensAreCacheLocal(t *testing.T) {
	f := newFleet(t, 4)
	doc := signedDoc(t, f.creator, 40)

	rd, st, err := f.edges[0].OpenReader(context.Background(), bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if st == cluster.StatusHit {
		t.Fatalf("first open status = %q, want a cold path", st)
	}
	if rd.Key == "" || rd.Signer == "" || rd.Signatures != 1 {
		t.Fatalf("cold verdict incomplete: %+v", rd)
	}
	if got := f.originRec.Counter("cluster.origin_verify"); got != 1 {
		t.Fatalf("origin verified %d times after one cold open, want 1", got)
	}
	// Replicate-before-respond: by the time the filler's open
	// returned, every other edge already held the record.
	if got := f.originRec.Counter("cluster.push"); got != 3 {
		t.Errorf("origin pushed %d records, want 3 (every edge except the requester)", got)
	}

	for i, e := range f.edges {
		warm, st, err := e.OpenReader(context.Background(), bytes.NewReader(doc))
		if err != nil {
			t.Fatalf("edge %d warm open: %v", i, err)
		}
		if st != cluster.StatusHit {
			t.Errorf("edge %d warm open status = %q, want hit", i, st)
		}
		if warm != rd {
			t.Errorf("edge %d served %+v, want the replicated %+v", i, warm, rd)
		}
	}
	if got := f.originRec.Counter("cluster.origin_verify"); got != 1 {
		t.Errorf("origin verified %d times after 4 warm opens, want still 1 (warm opens must be cache-local)", got)
	}
	// The single origin fill ran at whichever edge owns the key on the
	// ring; fleet-wide there was exactly one, and the warm opens added
	// none.
	var fills int64
	for _, rec := range f.recs {
		fills += rec.Counter("cluster.fill")
	}
	if fills != 1 {
		t.Errorf("fleet performed %d origin fills, want exactly 1", fills)
	}
}

// TestColdMissesCollapseFleetWide pins the acceptance criterion: 32
// concurrent cold opens spread across 4 edges trigger exactly one
// origin verification — per-edge singleflight plus ring routing plus
// the origin library's own flight collapse the rest.
func TestColdMissesCollapseFleetWide(t *testing.T) {
	f := newFleet(t, 4)
	doc := signedDoc(t, f.creator, 41)

	const n = 32
	var (
		start sync.WaitGroup
		done  sync.WaitGroup
		fails atomic.Int64
		keys  sync.Map
	)
	start.Add(1)
	done.Add(n)
	for i := 0; i < n; i++ {
		e := f.edges[i%len(f.edges)]
		go func() {
			defer done.Done()
			start.Wait()
			rd, _, err := e.OpenReader(context.Background(), bytes.NewReader(doc))
			if err != nil {
				fails.Add(1)
				t.Errorf("%s: %v", e.Name(), err)
				return
			}
			keys.Store(rd.Key, true)
		}()
	}
	start.Done()
	done.Wait()

	if fails.Load() != 0 {
		t.Fatalf("%d of %d concurrent opens failed", fails.Load(), n)
	}
	distinct := 0
	keys.Range(func(_, _ any) bool { distinct++; return true })
	if distinct != 1 {
		t.Errorf("concurrent opens produced %d distinct verdict keys, want 1", distinct)
	}
	if got := f.originRec.Counter("library.miss"); got != 1 {
		t.Errorf("origin library verified %d times for %d fleet-wide concurrent misses, want exactly 1", got, n)
	}
}

// TestRevocationReachesEveryEdge pins fleet-wide revocation: the trust
// service's revocation hook bumps the fleet epoch and the announcement
// push converges every edge before Revoke returns, so warm verdicts
// fail closed (ErrTrustChanged) everywhere and refills die at the
// origin — the revoked signer's content is unreachable fleet-wide.
func TestRevocationReachesEveryEdge(t *testing.T) {
	f := newFleet(t, 4)
	doc := signedDoc(t, f.creator, 42)

	if _, _, err := f.edges[0].OpenReader(context.Background(), bytes.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	for i, e := range f.edges {
		if _, st, err := e.OpenReader(context.Background(), bytes.NewReader(doc)); err != nil || st != cluster.StatusHit {
			t.Fatalf("edge %d pre-revocation warm open: status=%q err=%v", i, st, err)
		}
	}

	if err := f.svc.Revoke(f.creator.Name, "pw"); err != nil {
		t.Fatal(err)
	}
	// The announcement push is synchronous inside the revocation hook:
	// by the time Revoke returned, the fleet had converged.
	want := f.origin.Epoch()
	if want == 0 {
		t.Fatal("origin epoch did not advance on revocation")
	}
	for i, e := range f.edges {
		if got := e.Epoch(); got != want {
			t.Errorf("edge %d epoch = %d after revocation, want %d", i, got, want)
		}
	}

	// Every edge's own warm lookup fails closed first (local record
	// drops only); the refill pass runs after, because a refill
	// forwards through the ring and would drop the owner edge's
	// lagging record remotely.
	for i, e := range f.edges {
		_, _, err := e.OpenReader(context.Background(), bytes.NewReader(doc))
		if !errors.Is(err, library.ErrTrustChanged) {
			t.Errorf("edge %d warm open after revocation: %v, want ErrTrustChanged", i, err)
		}
		if got := f.recs[i].Counter("cluster.lagging_drop"); got == 0 {
			t.Errorf("edge %d lagging_drop = 0, want the stale verdict counted", i)
		}
	}
	// The lagging records are gone; every retry is a cold miss that
	// must die at the origin's re-verification.
	for i, e := range f.edges {
		if _, _, err := e.OpenReader(context.Background(), bytes.NewReader(doc)); err == nil {
			t.Errorf("edge %d refilled a revoked signer's document", i)
		}
	}
	for i, rec := range f.recs {
		found := false
		for _, ev := range rec.AuditTrail() {
			if ev.Kind == obs.AuditClusterEpoch {
				found = true
			}
		}
		if !found {
			t.Errorf("edge %d has no %s audit event", i, obs.AuditClusterEpoch)
		}
	}
}

// TestPartitionDegradesThenFailsClosed walks one edge through the
// partition state machine on a real socket: a faults.Listener in front
// of the origin starts resetting connections mid-session, heartbeats
// walk the cluster component Degraded (warm serves continue, audited)
// then Down (warm and cold fail closed with ErrPartitioned), and a
// revocation missed during the partition is converged by the first
// healed heartbeat, killing the stale warm verdict.
func TestPartitionDegradesThenFailsClosed(t *testing.T) {
	root, creator := experiments.PKIFixture()
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	originRec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc),
		library.WithRecorder(originRec),
	)
	origin := cluster.NewOrigin(lib,
		cluster.WithOriginRecorder(originRec),
		cluster.WithOriginTrust(svc),
	)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &faults.Listener{Listener: ln}
	srv := &http.Server{Handler: server.NewContentServer(server.WithClusterOrigin(origin))}
	go srv.Serve(fl) //nolint:errcheck // closed by cleanup
	t.Cleanup(func() { _ = srv.Close() })

	rec := obs.NewRecorder()
	clock := time.Unix(1700000000, 0)
	mon := health.New(
		health.WithRecorder(rec),
		health.WithProbeThreshold(3),
		health.WithClock(func() time.Time { return clock }),
	)
	// Keep-alives off so every request opens a fresh connection and
	// therefore meets the listener's current fault schedule.
	e := cluster.NewEdge("edge-0", "http://127.0.0.1:0", "http://"+ln.Addr().String(),
		cluster.WithEdgeRecorder(rec),
		cluster.WithEdgeHealth(mon),
		cluster.WithEdgeClient(&http.Client{
			Timeout:   2 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		}),
	)
	ctx := context.Background()
	doc := signedDoc(t, creator, 43)

	if _, st, err := e.OpenReader(ctx, bytes.NewReader(doc)); err != nil || st != cluster.StatusMiss {
		t.Fatalf("cold fill: status=%q err=%v", st, err)
	}
	if err := e.Heartbeat(ctx); err != nil {
		t.Fatalf("healthy heartbeat: %v", err)
	}
	if got := mon.State(health.ComponentCluster); got != health.Healthy {
		t.Fatalf("pre-partition state = %v, want healthy", got)
	}

	// Partition mid-session: every new connection now resets.
	fl.Swap(faults.Flap(1, 64, 0, faults.Fault{Kind: faults.Reset}))

	if err := e.Heartbeat(ctx); err == nil {
		t.Fatal("heartbeat succeeded through a partitioned listener")
	}
	if got := mon.State(health.ComponentCluster); got != health.Degraded {
		t.Fatalf("state after 1 missed heartbeat = %v, want degraded", got)
	}
	// Degraded: warm serves continue, audited.
	if _, st, err := e.OpenReader(ctx, bytes.NewReader(doc)); err != nil || st != cluster.StatusHit {
		t.Fatalf("degraded warm open: status=%q err=%v, want an audited hit", st, err)
	}
	if got := rec.Counter("cluster.degraded_serve"); got != 1 {
		t.Errorf("degraded_serve = %d, want 1", got)
	}
	degradedAudited := false
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == obs.AuditDegradedServe {
			degradedAudited = true
		}
	}
	if !degradedAudited {
		t.Errorf("degraded warm serve left no %s audit event", obs.AuditDegradedServe)
	}

	// Past the heartbeat budget: Down, and everything fails closed.
	_ = e.Heartbeat(ctx)
	_ = e.Heartbeat(ctx)
	if got := mon.State(health.ComponentCluster); got != health.Down {
		t.Fatalf("state after 3 missed heartbeats = %v, want down", got)
	}
	if _, _, err := e.OpenReader(ctx, bytes.NewReader(doc)); !errors.Is(err, cluster.ErrPartitioned) {
		t.Fatalf("warm open on a Down edge: %v, want ErrPartitioned", err)
	}
	other := signedDoc(t, creator, 44)
	if _, _, err := e.OpenReader(ctx, bytes.NewReader(other)); !errors.Is(err, cluster.ErrPartitioned) {
		t.Fatalf("cold open on a Down edge: %v, want ErrPartitioned", err)
	}
	if got := rec.Counter("cluster.partition_fail_closed"); got != 2 {
		t.Errorf("partition_fail_closed = %d, want 2 (one warm, one cold)", got)
	}
	partitionAudited := false
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == obs.AuditClusterPartition {
			partitionAudited = true
		}
	}
	if !partitionAudited {
		t.Errorf("fail-closed serves left no %s audit event", obs.AuditClusterPartition)
	}

	// A revocation lands while the edge cannot hear announcements.
	if err := svc.Revoke(creator.Name, "pw"); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() == origin.Epoch() {
		t.Fatal("partitioned edge heard the revocation; the partition is not real")
	}

	// Heal. The first successful heartbeat resets the probe streak and
	// converges the epoch the edge missed.
	fl.Swap(faults.NewSchedule())
	if err := e.Heartbeat(ctx); err != nil {
		t.Fatalf("post-heal heartbeat: %v", err)
	}
	if got := mon.State(health.ComponentCluster); got != health.Healthy {
		t.Fatalf("post-heal state = %v, want healthy", got)
	}
	if got, want := e.Epoch(), origin.Epoch(); got != want {
		t.Fatalf("post-heal epoch = %d, want %d (the revocation missed during the partition)", got, want)
	}
	// The warm verdict predates the revocation: it must die, and the
	// refill must fail at the origin's re-verification.
	if _, _, err := e.OpenReader(ctx, bytes.NewReader(doc)); !errors.Is(err, library.ErrTrustChanged) {
		t.Fatalf("post-heal warm open: %v, want ErrTrustChanged", err)
	}
	if _, _, err := e.OpenReader(ctx, bytes.NewReader(doc)); err == nil {
		t.Fatal("post-heal refill served a revoked signer's document")
	}
}

// TestEpochAnnouncementsOutOfOrder pins the monotonic-epoch guard at
// the wire boundary: announcements delivered late or replayed cannot
// roll the edge's epoch back and resurrect revoked verdicts.
func TestEpochAnnouncementsOutOfOrder(t *testing.T) {
	rec := obs.NewRecorder()
	e := cluster.NewEdge("edge-0", "http://self.invalid", "http://origin.invalid",
		cluster.WithEdgeRecorder(rec))
	post := func(epoch uint64) {
		t.Helper()
		frame, err := cluster.EncodeFrame(cluster.EpochAnnounce{Epoch: epoch, Reason: "test"})
		if err != nil {
			t.Fatal(err)
		}
		w := httptest.NewRecorder()
		e.ServeHTTP(w, httptest.NewRequest(http.MethodPost, cluster.PathEpoch, bytes.NewReader(frame)))
		if w.Code != http.StatusNoContent {
			t.Fatalf("epoch announce returned %d: %s", w.Code, w.Body.String())
		}
	}
	post(5)
	post(3) // delayed announcement from before the bump to 5
	post(5) // duplicate delivery
	if got := e.Epoch(); got != 5 {
		t.Fatalf("epoch = %d after out-of-order delivery, want 5", got)
	}
	if got := rec.Counter("cluster.epoch_stale"); got != 1 {
		t.Errorf("epoch_stale = %d, want 1 (the rollback attempt)", got)
	}
	if got := rec.Counter("cluster.epoch_advance"); got != 1 {
		t.Errorf("epoch_advance = %d, want 1 (duplicates and rollbacks advance nothing)", got)
	}

	// A verdict push stamped under the stale epoch is likewise dead on
	// arrival.
	frame, err := cluster.EncodeFrame(cluster.Record{Key: strings.Repeat("ab", 32), Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	e.ServeHTTP(w, httptest.NewRequest(http.MethodPost, cluster.PathVerdicts, bytes.NewReader(frame)))
	if w.Code != http.StatusNoContent {
		t.Fatalf("verdict push returned %d", w.Code)
	}
	if got := e.Records(); got != 0 {
		t.Errorf("edge cached %d lagging pushed verdicts, want 0", got)
	}
}

// TestFilledVerdictMustReAddressContent pins the re-addressing
// guarantee: a fill whose verdict is keyed to anything but the locally
// recomputed digest of the presented content is rejected, so a
// compromised or confused origin cannot bind a verdict to different
// content.
func TestFilledVerdictMustReAddressContent(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		frame, _ := cluster.EncodeFrame(cluster.Record{Key: "spoofed-key", Signer: "fp", Epoch: 0})
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(frame) //nolint:errcheck
	}))
	defer fake.Close()

	rec := obs.NewRecorder()
	e := cluster.NewEdge("edge-0", "http://self.invalid", fake.URL,
		cluster.WithEdgeRecorder(rec))
	_, _, err := e.OpenReader(context.Background(), bytes.NewReader([]byte(`<cluster id="c"><track/></cluster>`)))
	if !errors.Is(err, cluster.ErrKeyMismatch) {
		t.Fatalf("spoofed-key fill returned %v, want ErrKeyMismatch", err)
	}
	if got := rec.Counter("cluster.key_mismatch"); got != 1 {
		t.Errorf("key_mismatch = %d, want 1", got)
	}
	if got := e.Records(); got != 0 {
		t.Errorf("edge cached %d mis-keyed verdicts, want 0", got)
	}
}

// TestEdgeRejectsMalformedDocuments: the edge's single-pass digest is
// also its input gate — a document that does not parse never generates
// wire traffic.
func TestEdgeRejectsMalformedDocuments(t *testing.T) {
	rec := obs.NewRecorder()
	e := cluster.NewEdge("edge-0", "http://self.invalid", "http://origin.invalid",
		cluster.WithEdgeRecorder(rec))
	_, _, err := e.OpenReader(context.Background(), bytes.NewReader([]byte("<unclosed>")))
	if !errors.Is(err, library.ErrBadDocument) {
		t.Fatalf("malformed document returned %v, want ErrBadDocument", err)
	}
}
