package cluster

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	in := Record{Key: "abc123", Signer: "fp:1", Epoch: 7, Degraded: true, Signatures: 2}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	var out Record
	if err := NewFrameReader(&buf).Next(&out); err != nil {
		t.Fatalf("Next: %v", err)
	}
	if out != in {
		t.Errorf("round trip: got %+v, want %+v", out, in)
	}
}

func TestFrameStream(t *testing.T) {
	var buf bytes.Buffer
	want := []Record{
		{Key: "k1", Epoch: 1},
		{Key: "k2", Epoch: 2, Signer: "fp:2"},
		{Key: "k3", Epoch: 3, Signatures: 5},
	}
	for _, rd := range want {
		if err := WriteFrame(&buf, rd); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	fr := NewFrameReader(&buf)
	var got []Record
	for {
		var rd Record
		err := fr.Next(&rd)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, rd)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("frame %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestFrameTruncation distinguishes a clean stream end (io.EOF) from a
// mid-frame cut (io.ErrUnexpectedEOF): an edge bootstrap pull that dies
// mid-record must surface as an error, not a short-but-successful sync.
func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Record{Key: "whole", Epoch: 1}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	whole := buf.Len()
	if err := WriteFrame(&buf, Record{Key: "cut", Epoch: 2}); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	for cut := whole + 1; cut < buf.Len(); cut += 3 {
		fr := NewFrameReader(bytes.NewReader(buf.Bytes()[:cut]))
		var rd Record
		if err := fr.Next(&rd); err != nil {
			t.Fatalf("cut=%d: first frame: %v", cut, err)
		}
		err := fr.Next(&rd)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut=%d: truncated frame returned %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// The clean boundary is EOF, not an error.
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()[:whole]))
	var rd Record
	if err := fr.Next(&rd); err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if err := fr.Next(&rd); err != io.EOF {
		t.Errorf("clean boundary returned %v, want io.EOF", err)
	}
}

// TestFrameOversize checks the MaxFrame guard on both sides: a frame
// claiming more than MaxFrame bytes is rejected before any allocation,
// so a corrupt or hostile peer cannot balloon an edge's memory.
func TestFrameOversize(t *testing.T) {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], MaxFrame+1)
	var rd Record
	err := NewFrameReader(bytes.NewReader(hdr[:n])).Next(&rd)
	if err == nil {
		t.Fatal("oversize frame accepted")
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("oversize frame returned %v, want a size error", err)
	}

	if _, err := EncodeFrame(bytes.Repeat([]byte("x"), MaxFrame+1)); err == nil {
		t.Error("EncodeFrame accepted a payload larger than MaxFrame")
	}
}

func TestFrameBadJSON(t *testing.T) {
	body := []byte("{not json")
	var buf bytes.Buffer
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(body)))
	buf.Write(hdr[:n])
	buf.Write(body)
	var rd Record
	if err := NewFrameReader(&buf).Next(&rd); err == nil {
		t.Error("malformed JSON frame accepted")
	}
}
