// Consistent hashing with virtual nodes: cold-miss routing. Every edge
// hashes a key the same way, so concurrent misses for one digest
// across the whole fleet converge on one ring owner, whose local
// singleflight then collapses them into a single origin fill. Virtual
// nodes smooth the distribution; node churn moves only the keys whose
// arcs changed hands.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVirtualNodes is the per-node virtual point count when a Ring
// is built with vnodes <= 0.
const DefaultVirtualNodes = 64

// ringPoint is one virtual node position.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over named nodes. All methods are
// safe for concurrent use; membership changes rebuild the point set
// from scratch, so the ring's layout depends only on the member set,
// never on the order of joins and leaves.
type Ring struct {
	vnodes int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint
}

// NewRing builds a ring with the given virtual-node count per member
// (DefaultVirtualNodes when <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]struct{})}
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // hash.Hash never errors
	return mix64(h.Sum64())
}

// mix64 is a 64-bit finalizer (multiply-xorshift avalanche). FNV-1a
// alone leaves the high bits of short, similar labels ("edge-0#12")
// barely mixed, and the binary search over sorted points compares high
// bits first — without this step the arc lengths skew by an order of
// magnitude.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rebuildLocked recomputes every virtual point from the node set.
func (r *Ring) rebuildLocked() {
	r.points = r.points[:0]
	for n := range r.nodes {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding points order by name so the layout stays a pure
		// function of the member set.
		return r.points[i].node < r.points[j].node
	})
}

// Add inserts nodes into the ring.
func (r *Ring) Add(nodes ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range nodes {
		if n != "" {
			r.nodes[n] = struct{}{}
		}
	}
	r.rebuildLocked()
}

// Remove deletes nodes from the ring.
func (r *Ring) Remove(nodes ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, n := range nodes {
		delete(r.nodes, n)
	}
	r.rebuildLocked()
}

// SetNodes replaces the membership wholesale (the origin's membership
// broadcasts).
func (r *Ring) SetNodes(nodes []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nodes = make(map[string]struct{}, len(nodes))
	for _, n := range nodes {
		if n != "" {
			r.nodes[n] = struct{}{}
		}
	}
	r.rebuildLocked()
}

// Owner returns the node owning key: the first virtual point at or
// clockwise of the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	h := ringHash(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the member names, sorted.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}
