package player

import (
	"context"
	"errors"
	"strings"
	"testing"

	"discsec/internal/disc"
	"discsec/internal/rights"
	"discsec/internal/xmldsig"
)

// licensedImage packages a signed disc plus a signed rights license
// granting the play right to device-1 twice.
func licensedImage(t *testing.T, tamper bool) *disc.Image {
	t.Helper()
	im := buildAVImage(t, true)

	lic := &rights.License{
		ID:     "lic-disc",
		Issuer: creator.Name,
		Grants: []rights.Grant{
			{Principal: "device-1", Right: rights.RightPlay, Resource: "t-av", MaxUses: 2},
			{Principal: "*", Right: rights.RightExtract, Resource: "t-game"},
		},
	}
	doc := lic.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name, Certificates: creator.Chain},
	}); err != nil {
		t.Fatal(err)
	}
	raw := doc.Bytes()
	if tamper {
		raw = []byte(strings.Replace(string(raw), `maxuses="2"`, `maxuses="999"`, 1))
	}
	if err := im.Put(LicensePath, raw); err != nil {
		t.Fatal(err)
	}
	return im
}

func TestLicensedPlayback(t *testing.T) {
	im := licensedImage(t, false)
	sess, err := newEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	// Two plays allowed...
	if _, err := sess.PlayTrackLicensed("device-1", "t-av"); err != nil {
		t.Fatalf("first play: %v", err)
	}
	if _, err := sess.PlayTrackLicensed("device-1", "t-av"); err != nil {
		t.Fatalf("second play: %v", err)
	}
	// ...third is exhausted.
	if _, err := sess.PlayTrackLicensed("device-1", "t-av"); !errors.Is(err, rights.ErrExhausted) {
		t.Errorf("third play err = %v", err)
	}
	// Another device has no grant.
	if _, err := sess.PlayTrackLicensed("device-2", "t-av"); !errors.Is(err, rights.ErrNoGrant) {
		t.Errorf("foreign device err = %v", err)
	}
	// Wildcard grant works for any device.
	if err := sess.ExerciseRight("anything", rights.RightExtract, "t-game"); err != nil {
		t.Errorf("wildcard extract: %v", err)
	}
}

func TestTamperedLicenseRejected(t *testing.T) {
	im := licensedImage(t, true)
	sess, err := newEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrackLicensed("device-1", "t-av"); err == nil {
		t.Error("tampered license honored")
	}
}

func TestMissingLicense(t *testing.T) {
	im := buildAVImage(t, true)
	sess, err := newEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrackLicensed("device-1", "t-av"); !errors.Is(err, ErrLicenseRequired) {
		t.Errorf("err = %v, want ErrLicenseRequired", err)
	}
	// Ungated playback still works (license only gates the licensed
	// entry point).
	if _, err := sess.PlayTrack("t-av"); err != nil {
		t.Errorf("ungated play: %v", err)
	}
}

func TestLicenseEvaluatorCached(t *testing.T) {
	im := licensedImage(t, false)
	sess, err := newEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := sess.LoadLicense()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := sess.LoadLicense()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Error("evaluator not cached: use counts would reset")
	}
}

// License use counts survive player restarts when the engine storage is
// directory-backed (the CLI scenario: each invocation is a new process).
func TestLicenseUsePersistence(t *testing.T) {
	im := licensedImage(t, false)
	dir := t.TempDir()

	playOnce := func() error {
		storage, err := disc.OpenLocalStorage(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		e := newEngine()
		e.Storage = storage
		sess, err := e.Load(context.Background(), im)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sess.PlayTrackLicensed("device-1", "t-av")
		return err
	}

	if err := playOnce(); err != nil {
		t.Fatalf("first play: %v", err)
	}
	if err := playOnce(); err != nil {
		t.Fatalf("second play: %v", err)
	}
	if err := playOnce(); !errors.Is(err, rights.ErrExhausted) {
		t.Errorf("third play across restarts = %v, want ErrExhausted", err)
	}
}
