package player

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"discsec/internal/core"
	"discsec/internal/faults"
	"discsec/internal/keymgmt"
	"discsec/internal/resilience"
	"discsec/internal/server"
	"discsec/internal/xmldsig"
)

// The fault matrix exercises the end-to-end §5.1 connected-player flow
// (download, authenticate, execute) under every injected fault mode.
// The invariant across all modes: the pipeline either recovers within
// its retry budget or fails closed with a typed error — tampered or
// truncated content never reaches execution.

func fastMatrixPolicy() *resilience.Policy {
	return &resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func signedGameDoc(t *testing.T) []byte {
	t.Helper()
	doc := gameCluster().Document()
	p := &core.Protector{Identity: creator}
	if _, err := p.Sign(doc, core.LevelCluster, ""); err != nil {
		t.Fatal(err)
	}
	return doc.Bytes()
}

func repeatFault(f faults.Fault, n int) []faults.Fault {
	out := make([]faults.Fault, n)
	for i := range out {
		out[i] = f
	}
	return out
}

func TestFaultMatrix(t *testing.T) {
	raw := signedGameDoc(t)
	if len(raw) < 1500 {
		t.Fatalf("signed doc only %d bytes; truncation modes need more", len(raw))
	}
	cs := server.NewContentServer()
	cs.PublishDocument("game.xml", raw)
	srv := httptest.NewServer(cs)
	defer srv.Close()

	cases := []struct {
		name     string
		schedule []faults.Fault
		timeout  time.Duration // HTTP client timeout; 0 means 5s
		want     string        // "ok", "transient", "terminal"
	}{
		{"reset then recover",
			[]faults.Fault{{Kind: faults.Reset}}, 0, "ok"},
		{"timeout then recover",
			[]faults.Fault{{Kind: faults.Timeout}}, 0, "ok"},
		{"stalled read times out then recovers",
			[]faults.Fault{{Kind: faults.Stall, Delay: 10 * time.Second}}, 150 * time.Millisecond, "ok"},
		{"truncation resumes and completes",
			[]faults.Fault{{Kind: faults.Truncate, Bytes: 1000}}, 0, "ok"},
		{"5xx burst recovers",
			[]faults.Fault{
				{Kind: faults.Status, Code: 503, RetryAfter: 0},
				{Kind: faults.Status, Code: 502},
				{Kind: faults.Status, Code: 500},
			}, 0, "ok"},
		{"persistent truncation fails closed",
			repeatFault(faults.Fault{Kind: faults.Truncate, Bytes: 100}, 8), 0, "transient"},
		{"persistent resets exhaust the budget",
			repeatFault(faults.Fault{Kind: faults.Reset}, 8), 0, "transient"},
		{"corruption fails closed at verification",
			[]faults.Fault{{Kind: faults.Corrupt, Bytes: 300}}, 0, "terminal"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			timeout := 5 * time.Second
			if tc.timeout > 0 {
				timeout = tc.timeout
			}
			d := &server.Downloader{
				Retry: fastMatrixPolicy(),
				HTTPClient: &http.Client{Timeout: timeout, Transport: &faults.Transport{
					Schedule: faults.NewSchedule(tc.schedule...),
				}},
			}
			sess, err := newEngine().FetchAndLoad(context.Background(), d, srv.URL, "game.xml")
			switch tc.want {
			case "ok":
				if err != nil {
					t.Fatalf("pipeline did not recover: %v", err)
				}
				if !sess.Verified() {
					t.Fatal("recovered content not verified")
				}
				if _, err := sess.RunApplication("t-game"); err != nil {
					t.Errorf("recovered content failed to run: %v", err)
				}
			case "transient":
				if err == nil {
					t.Fatal("incomplete content executed")
				}
				if !resilience.IsTransient(err) {
					t.Errorf("err = %v, want transient classification", err)
				}
				if sess != nil {
					t.Error("session produced despite failure")
				}
			case "terminal":
				if err == nil {
					t.Fatal("tampered content executed")
				}
				if !resilience.IsTerminal(err) {
					t.Errorf("err = %v, want terminal classification", err)
				}
				if sess != nil {
					t.Error("session produced despite failure")
				}
			}
		})
	}
}

// TestFaultMatrixXKMSOutage is the sixth fault mode: the trust service
// is unreachable while the content link is healthy. With a warm cache
// inside the staleness bound the player degrades gracefully (and says
// so); in strict mode it fails closed.
func TestFaultMatrixXKMSOutage(t *testing.T) {
	// A KeyName-only signature: verification *requires* the trust
	// service (or its cache) — nothing is embedded in the document.
	doc := gameCluster().Document()
	opts := xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), opts); err != nil {
		t.Fatal(err)
	}
	raw := doc.Bytes()

	cs := server.NewContentServer()
	cs.PublishDocument("game.xml", raw)
	csrv := httptest.NewServer(cs)
	defer csrv.Close()

	svc := keymgmt.NewService(rootCA.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	xsrv := httptest.NewServer(&keymgmt.Handler{Service: svc})

	kc := &keymgmt.Client{
		BaseURL:    xsrv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastMatrixPolicy(),
		MaxStale:   time.Hour,
	}
	strict := &keymgmt.Client{
		BaseURL:    xsrv.URL,
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		Retry:      fastMatrixPolicy(),
		// MaxStale zero: no degraded fallback.
	}
	d := &server.Downloader{Retry: fastMatrixPolicy()}

	e := newEngine()
	e.KeyByName = kc.PublicKeyByName
	// Warm resolution with the trust service up. With a KeyName-only
	// signature the trust gate is key resolution itself: Load succeeds
	// only when the service (or its fresh cache) vouches for the key.
	sess, err := e.FetchAndLoad(context.Background(), d, csrv.URL, "game.xml")
	if err != nil {
		t.Fatalf("warm load: %v", err)
	}
	if sess.SignerName() != creator.Name {
		t.Fatalf("signer = %q", sess.SignerName())
	}
	if kc.Degraded() {
		t.Fatal("degraded after live resolution")
	}
	strictE := newEngine()
	strictE.KeyByName = strict.PublicKeyByName
	if _, err := strictE.FetchAndLoad(context.Background(), d, csrv.URL, "game.xml"); err != nil {
		t.Fatalf("strict warm load: %v", err)
	}

	xsrv.Close() // XKMS outage

	sess2, err := e.FetchAndLoad(context.Background(), d, csrv.URL, "game.xml")
	if err != nil {
		t.Fatalf("outage with fresh cache must degrade, not fail: %v", err)
	}
	if sess2.SignerName() != creator.Name {
		t.Error("degraded session lost its signer identity")
	}
	if !kc.Degraded() {
		t.Error("degraded trust decision not reported")
	}

	// Strict mode: the outage fails closed — nothing loads, nothing runs.
	if sess3, err := strictE.FetchAndLoad(context.Background(), d, csrv.URL, "game.xml"); err == nil || sess3 != nil {
		t.Errorf("strict mode executed content during trust outage (err=%v)", err)
	}
}
