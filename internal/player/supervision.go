package player

import (
	"discsec/internal/health"
	"discsec/internal/keymgmt"
	"discsec/internal/resilience"
	"discsec/internal/server"
)

// Default compartment sizes for the supervised dependency edges. Trust
// lookups are small and bursty (every cold verification needs one);
// origin fetches are few but heavy.
const (
	defaultTrustConcurrency  = 8
	defaultOriginConcurrency = 4
)

// Supervise wires the player's dependency clients into one
// health.Monitor — the standard harness every deployment (and the
// chaos matrix) composes:
//
//   - the trust client gets a circuit breaker and bulkhead on its wire
//     path (unless it already has them), the breaker is bound to the
//     "xkms" component, and the client's degraded-cache enter/exit
//     signals drive that component's Degraded flag;
//   - the downloader gets a breaker and bulkhead bound to "origin".
//
// Existing breakers, bulkheads, and callbacks on the clients are kept:
// Supervise chains rather than replaces. Call before the clients carry
// traffic. Either client may be nil; a nil monitor makes Supervise a
// no-op.
func Supervise(m *health.Monitor, trust *keymgmt.Client, origin *server.Downloader) {
	if m == nil {
		return
	}
	if trust != nil {
		m.Register(health.ComponentXKMS)
		if trust.Breaker == nil {
			trust.Breaker = &resilience.Breaker{Name: health.ComponentXKMS}
		}
		if trust.Bulkhead == nil {
			trust.Bulkhead = resilience.NewBulkhead(health.ComponentXKMS, defaultTrustConcurrency)
		}
		m.BindBreaker(health.ComponentXKMS, trust.Breaker)
		prevDegraded := trust.OnDegraded
		trust.OnDegraded = func(name string, cause error) {
			if prevDegraded != nil {
				prevDegraded(name, cause)
			}
			m.SetDegraded(health.ComponentXKMS, true, cause.Error())
		}
		prevRestored := trust.OnRestored
		trust.OnRestored = func() {
			if prevRestored != nil {
				prevRestored()
			}
			m.SetDegraded(health.ComponentXKMS, false, "")
		}
	}
	if origin != nil {
		m.Register(health.ComponentOrigin)
		if origin.Breaker == nil {
			origin.Breaker = &resilience.Breaker{Name: health.ComponentOrigin}
		}
		if origin.Bulkhead == nil {
			origin.Bulkhead = resilience.NewBulkhead(health.ComponentOrigin, defaultOriginConcurrency)
		}
		m.BindBreaker(health.ComponentOrigin, origin.Breaker)
	}
}
