package player

import (
	"context"
	"testing"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/library"
	"discsec/internal/obs"
)

// TestEnginesShareLibrary pins the tentpole integration: independent
// engines attached to one library share verification work — the first
// load pays for the full pipeline, every later engine's load of the
// same content is a cache hit, and the sessions behave exactly like
// locally verified ones (policy, storage, execution all per-engine).
func TestEnginesShareLibrary(t *testing.T) {
	im := buildImage(t, true)
	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{
			Roots:            rootCA.Pool(),
			RequireSignature: true,
		}),
		library.WithRecorder(rec),
	)

	mkEngine := func() *Engine {
		return NewEngine(
			WithLibrary(lib),
			WithPolicy(platformPolicy()),
			WithStorage(disc.NewLocalStorage(0)),
		)
	}

	s1, err := mkEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatalf("first engine load: %v", err)
	}
	s2, err := mkEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatalf("second engine load: %v", err)
	}
	if !s1.Verified() || !s2.Verified() {
		t.Fatal("library-served sessions not verified")
	}
	if s1.SignerName() != "Studio" || s2.SignerName() != "Studio" {
		t.Fatalf("signer names = %q, %q", s1.SignerName(), s2.SignerName())
	}
	if got := rec.Counter("library.miss"); got != 1 {
		t.Errorf("miss counter = %d, want 1 (one verification for two engines)", got)
	}
	if got := rec.Counter("library.hit"); got != 1 {
		t.Errorf("hit counter = %d, want 1", got)
	}

	// The verdict is shared; execution state is not. Each engine runs
	// the game against its own storage and policy.
	r1, err := s1.RunApplication("t-game")
	if err != nil {
		t.Fatalf("engine 1 run: %v", err)
	}
	r2, err := s2.RunApplication("t-game")
	if err != nil {
		t.Fatalf("engine 2 run: %v", err)
	}
	if len(r1.Log) == 0 || len(r2.Log) == 0 {
		t.Error("shared-verdict sessions produced no execution output")
	}
}

// TestEngineLibraryFailsClosed: an unsigned disc through a
// RequireSignature library must not load, matching the engine's own
// strict behavior.
func TestEngineLibraryFailsClosed(t *testing.T) {
	im := buildImage(t, false)
	lib := library.New(
		library.WithOpener(core.Opener{
			Roots:            rootCA.Pool(),
			RequireSignature: true,
		}),
	)
	e := NewEngine(
		WithLibrary(lib),
		WithPolicy(platformPolicy()),
		WithStorage(disc.NewLocalStorage(0)),
	)
	if sess, err := e.Load(context.Background(), im); err == nil || sess != nil {
		t.Fatalf("unsigned disc loaded through strict library (err=%v)", err)
	}
}
