package player

import (
	"context"
	"errors"
	"fmt"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/obs"
)

// Playback of A/V tracks. The reference player does not decode MPEG-2;
// playback means: resolve the playlist to clip payloads, verify the
// detached clip signature when the disc carries one (§5.3 track-level
// signing), validate transport-stream structure, and produce a playback
// plan — the observable surface a real decoder would consume.

// ClipReport describes one played clip.
type ClipReport struct {
	ClipID  string
	Path    string
	Bytes   int
	Packets int
	// InMS/OutMS are the presented range from the play item.
	InMS, OutMS int64
}

// PlaybackReport is the outcome of playing an A/V track.
type PlaybackReport struct {
	TrackID string
	// SignatureVerified reports whether a detached clip signature was
	// present and validated.
	SignatureVerified bool
	SignerCN          string
	Clips             []ClipReport
	// TotalMS is the summed presented duration.
	TotalMS int64
}

// ErrClipSignatureRequired indicates the engine demands signed clips
// but the image carries no clip signature.
var ErrClipSignatureRequired = errors.New("player: image carries no clip signature but the platform requires one")

// PlayTrack plays an A/V track: verifies clip integrity (detached
// signature at core.ClipSignaturePath when present, mandatory when the
// engine requires signatures), checks stream structure, and returns the
// playback plan.
func (s *Session) PlayTrack(trackID string) (*PlaybackReport, error) {
	track := s.Cluster.FindTrack(trackID)
	if track == nil {
		return nil, fmt.Errorf("player: no track %q", trackID)
	}
	if track.Kind != disc.TrackAV || track.Playlist == nil {
		return nil, fmt.Errorf("player: track %q is not an A/V track", trackID)
	}
	if s.Image == nil {
		return nil, errors.New("player: A/V playback requires a disc image")
	}

	rep := &PlaybackReport{TrackID: trackID}

	if s.Image.Has(core.ClipSignaturePath) {
		opener := &core.Opener{
			Roots:     s.engine.Roots,
			KeyByName: s.engine.KeyByName,
		}
		sigRep, err := opener.VerifyDetached(obs.WithRecorder(context.Background(), s.rec), s.Image, core.ClipSignaturePath)
		if err != nil {
			return nil, fmt.Errorf("player: clip signature: %w", err)
		}
		rep.SignatureVerified = true
		rep.SignerCN = sigRep.SignerCN
	} else if s.engine.RequireSignature {
		s.rec.Audit(obs.AuditVerifyFailed, "track %s: platform requires clip signature, image carries none", trackID)
		return nil, ErrClipSignatureRequired
	}

	for _, item := range track.Playlist.Items {
		path := "CLIPS/" + item.ClipID + ".m2ts"
		data, err := s.Image.Get(path)
		if err != nil {
			return nil, fmt.Errorf("player: playlist references missing clip: %w", err)
		}
		if err := disc.ValidateClip(data); err != nil {
			return nil, fmt.Errorf("player: clip %s: %w", item.ClipID, err)
		}
		rep.Clips = append(rep.Clips, ClipReport{
			ClipID:  item.ClipID,
			Path:    path,
			Bytes:   len(data),
			Packets: len(data) / disc.TSPacketSize,
			InMS:    item.InMS,
			OutMS:   item.OutMS,
		})
		rep.TotalMS += item.OutMS - item.InMS
	}
	return rep, nil
}
