package player

import (
	"encoding/json"
	"errors"
	"fmt"

	"discsec/internal/obs"
	"discsec/internal/rights"
	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
)

// License handling (the paper's §9 XRML future work, integrated): a disc
// may carry a signed rights license at LicensePath. The engine verifies
// the license signature against the player roots before honoring any
// grant, and exposes an evaluator the playback and export paths consult.

// LicensePath is the image path of the rights license.
const LicensePath = "LICENSE/license.xml"

// ErrLicenseRequired indicates a rights-gated operation was attempted on
// a session without a (valid) license.
var ErrLicenseRequired = errors.New("player: operation requires a rights license")

// LoadLicense reads, verifies, and parses the disc's rights license,
// caching the evaluator on the session. Returns ErrLicenseRequired when
// the image carries none.
func (s *Session) LoadLicense() (*rights.Evaluator, error) {
	if s.licenseEval != nil {
		return s.licenseEval, nil
	}
	if s.Image == nil || !s.Image.Has(LicensePath) {
		s.rec.Audit(obs.AuditPolicyDenied, "rights-gated operation without a disc license")
		return nil, ErrLicenseRequired
	}
	raw, err := s.Image.Get(LicensePath)
	if err != nil {
		return nil, err
	}
	doc, err := xmldom.ParseBytes(raw)
	if err != nil {
		return nil, fmt.Errorf("player: license: %w", err)
	}
	if _, err := xmldsig.VerifyDocument(doc, xmldsig.VerifyOptions{
		Roots:     s.engine.Roots,
		KeyByName: s.engine.KeyByName,
	}); err != nil {
		s.rec.Audit(obs.AuditVerifyFailed, "license signature rejected: %v", err)
		return nil, fmt.Errorf("player: license signature: %w", err)
	}
	lic, err := rights.Parse(doc)
	if err != nil {
		return nil, err
	}
	eval := rights.NewEvaluator(lic)
	s.restoreLicenseUses(lic.ID, eval)
	s.licenseEval = eval
	s.licenseID = lic.ID
	return s.licenseEval, nil
}

// licenseStateApp is the reserved local-storage namespace holding
// per-license use counters (so MaxUses survives player restarts when the
// engine storage is directory-backed).
const licenseStateApp = "__license"

func (s *Session) restoreLicenseUses(licenseID string, eval *rights.Evaluator) {
	if s.engine.Storage == nil || licenseID == "" {
		return
	}
	raw, err := s.engine.Storage.Get(licenseStateApp, licenseID)
	if err != nil {
		return // no prior state
	}
	var snapshot map[int]int
	if json.Unmarshal(raw, &snapshot) == nil {
		eval.RestoreUses(snapshot)
	}
}

func (s *Session) persistLicenseUses() {
	if s.engine.Storage == nil || s.licenseEval == nil || s.licenseID == "" {
		return
	}
	raw, err := json.Marshal(s.licenseEval.SnapshotUses())
	if err != nil {
		return
	}
	s.engine.Storage.Put(licenseStateApp, s.licenseID, raw) //nolint:errcheck // best-effort persistence
}

// ExerciseRight exercises a usage right for this player device against
// the disc license, consuming a use. Use counters persist through the
// engine's local storage.
func (s *Session) ExerciseRight(deviceID string, right rights.Right, resource string) error {
	eval, err := s.LoadLicense()
	if err != nil {
		return err
	}
	if err := eval.Exercise(deviceID, right, resource); err != nil {
		return err
	}
	s.persistLicenseUses()
	return nil
}

// PlayTrackLicensed is PlayTrack gated on the disc license: the device
// must hold (and consumes a use of) the play right for the track.
func (s *Session) PlayTrackLicensed(deviceID, trackID string) (*PlaybackReport, error) {
	if err := s.ExerciseRight(deviceID, rights.RightPlay, trackID); err != nil {
		return nil, err
	}
	return s.PlayTrack(trackID)
}
