package player

import (
	"context"
	"errors"
	"testing"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
)

func buildAVImage(t *testing.T, signClips bool) *disc.Image {
	t.Helper()
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster: gameCluster(),
		Clips: map[string][]byte{
			"CLIPS/clip-1.m2ts": disc.GenerateClip(disc.ClipSpec{DurationMS: 300, BitrateKbps: 4000, Seed: 21}),
		},
		PermissionRequests: map[string]*access.PermissionRequest{"game-1": gamePermissions()},
		Sign:               true,
		SignLevel:          core.LevelCluster,
		SignClips:          signClips,
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestPlayTrackWithSignedClips(t *testing.T) {
	im := buildAVImage(t, true)
	e := newEngine()
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.PlayTrack("t-av")
	if err != nil {
		t.Fatalf("play: %v", err)
	}
	if !rep.SignatureVerified || rep.SignerCN != "Studio" {
		t.Errorf("signature report = %+v", rep)
	}
	if len(rep.Clips) != 1 || rep.Clips[0].Packets == 0 {
		t.Errorf("clips = %+v", rep.Clips)
	}
	if rep.TotalMS != 5000 {
		t.Errorf("total = %dms", rep.TotalMS)
	}
}

func TestPlayTrackUnsignedClipsBarred(t *testing.T) {
	im := buildAVImage(t, false)
	e := newEngine() // RequireSignature is true
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrack("t-av"); !errors.Is(err, ErrClipSignatureRequired) {
		t.Errorf("err = %v, want ErrClipSignatureRequired", err)
	}
	// A lax engine plays them.
	lax := newEngine()
	lax.RequireSignature = false
	sess2, err := lax.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.PlayTrack("t-av"); err != nil {
		t.Errorf("lax play: %v", err)
	}
}

func TestPlayTrackCorruptedClip(t *testing.T) {
	im := buildAVImage(t, true)
	clip, _ := im.Get("CLIPS/clip-1.m2ts")
	clip[500] ^= 0xFF
	im.Put("CLIPS/clip-1.m2ts", clip)

	e := newEngine()
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrack("t-av"); err == nil {
		t.Error("corrupted clip played")
	}
}

func TestPlayTrackMissingClip(t *testing.T) {
	im := buildAVImage(t, false)
	im.Remove("CLIPS/clip-1.m2ts")
	e := newEngine()
	e.RequireSignature = false
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrack("t-av"); err == nil {
		t.Error("missing clip played")
	}
}

func TestPlayTrackWrongKind(t *testing.T) {
	im := buildAVImage(t, true)
	e := newEngine()
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.PlayTrack("t-game"); err == nil {
		t.Error("application track played as A/V")
	}
	if _, err := sess.PlayTrack("ghost"); err == nil {
		t.Error("unknown track played")
	}
}
