package player

import (
	"crypto"
	"crypto/x509"

	"discsec/internal/access"
	"discsec/internal/disc"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/xmlenc"
)

// Option configures an Engine built by NewEngine.
type Option func(*Engine)

// WithTrustPool sets the player's trusted root certificates.
func WithTrustPool(roots *x509.CertPool) Option {
	return func(e *Engine) { e.Roots = roots }
}

// WithPolicy sets the platform policy deciding permission requests.
func WithPolicy(pdp *access.PDP) Option {
	return func(e *Engine) { e.Policy = pdp }
}

// WithStorage sets the player's local storage.
func WithStorage(st *disc.LocalStorage) Option {
	return func(e *Engine) { e.Storage = st }
}

// WithDecryptKeys supplies content decryption material.
func WithDecryptKeys(opts xmlenc.DecryptOptions) Option {
	return func(e *Engine) { e.DecryptKeys = opts }
}

// WithRequireSignature bars unsigned applications.
func WithRequireSignature(require bool) Option {
	return func(e *Engine) { e.RequireSignature = require }
}

// WithKeyByName resolves ds:KeyName hints via a trust service.
func WithKeyByName(fn func(name string) (crypto.PublicKey, error)) Option {
	return func(e *Engine) { e.KeyByName = fn }
}

// WithScriptStepBudget bounds script execution (0 uses the default).
func WithScriptStepBudget(steps int) Option {
	return func(e *Engine) { e.ScriptStepBudget = steps }
}

// WithRecorder sets the engine's default observability recorder, used
// when a load context does not carry one.
func WithRecorder(rec *obs.Recorder) Option {
	return func(e *Engine) { e.Recorder = rec }
}

// WithLibrary routes the engine's loads through a shared verification
// library: N engines loading the same content trigger one verification,
// and later loads are cache hits. The library's own core.Opener
// supersedes this engine's trust configuration for loads — configure
// roots, decrypt keys, and signature policy on the library.
func WithLibrary(lib *library.Library) Option {
	return func(e *Engine) { e.Library = lib }
}

// NewEngine builds a player runtime from functional options. The zero
// configuration is a closed platform: no trusted roots, a nil policy
// (deny everything), no storage, and signatures not required.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	return e
}
