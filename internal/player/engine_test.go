package player

import (
	"context"
	"strings"
	"testing"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/markup"
	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
)

var (
	rootCA  *keymgmt.CA
	creator *keymgmt.Identity
)

func init() {
	var err error
	rootCA, err = keymgmt.NewRootCA("Licensor Root", keymgmt.ECDSAP256)
	if err != nil {
		panic(err)
	}
	creator, err = rootCA.IssueIdentity("Studio", keymgmt.ECDSAP256)
	if err != nil {
		panic(err)
	}
}

// gameCluster builds the paper's game scenario: an application with
// layout, timing, a script that manages high scores in local storage.
func gameCluster() *disc.InteractiveCluster {
	layout := &markup.Layout{Regions: []markup.Region{
		{ID: "main", Width: 1920, Height: 1080},
		{ID: "hud", Left: 0, Top: 980, Width: 1920, Height: 100, ZIndex: 1},
	}}
	timing := &markup.TimingNode{Kind: "seq", Children: []*markup.TimingNode{
		{Kind: "img", Src: "title.png", Region: "main", DurMS: 2000},
		{Kind: "par", Children: []*markup.TimingNode{
			{Kind: "video", Src: "attract.m2ts", Region: "main", DurMS: 8000},
			{Kind: "img", Src: "hud.png", Region: "hud", DurMS: 8000},
		}},
	}}
	script := `
player.log("game booting on app", player.appId);
var prev = storage.get("highscore");
if (prev == null) { prev = 0; }
var score = Number(prev) + 100;
storage.set("highscore", score);
display.draw("score", score);
network.connect("https://leaderboard.example/submit");
network.connect("http://insecure.example/track");
`
	return &disc.InteractiveCluster{
		Title: "Disc Game",
		Tracks: []*disc.Track{
			{
				ID:   "t-av",
				Kind: disc.TrackAV,
				Playlist: &disc.Playlist{Items: []disc.PlayItem{
					{ClipID: "clip-1", InMS: 0, OutMS: 5000},
				}},
			},
			{
				ID:   "t-game",
				Kind: disc.TrackApplication,
				Manifest: &disc.Manifest{
					ID: "game-1",
					Markup: disc.Markup{SubMarkups: []disc.SubMarkup{
						{Kind: "layout", Content: layout.Element()},
						{Kind: "timing", Content: timing.Element()},
					}},
					Code: disc.Code{Scripts: []disc.Script{{Language: "ecmascript", Source: script}}},
				},
			},
		},
	}
}

func gamePermissions() *access.PermissionRequest {
	return &access.PermissionRequest{
		AppID: "game-1",
		Permissions: []access.Permission{
			{Name: access.PermLocalStorageRead, Target: "game-1/*"},
			{Name: access.PermLocalStorageWrite, Target: "game-1/*"},
			{Name: access.PermGraphicsPlane},
			{Name: access.PermNetworkConnect, Target: "https://leaderboard.example/submit"},
			{Name: access.PermNetworkConnect, Target: "http://insecure.example/track"},
		},
	}
}

// platformPolicy grants verified applications storage under their own
// prefix, graphics, and https-only networking.
func platformPolicy() *access.PDP {
	return &access.PDP{PolicySet: access.PolicySet{
		ID:        "platform",
		Combining: access.DenyOverrides,
		Policies: []access.Policy{
			{
				ID:        "verified-only",
				Combining: access.FirstApplicable,
				Rules: []access.Rule{{
					ID:     "deny-unverified",
					Effect: access.EffectDeny,
					Condition: access.Not{C: access.Compare{
						Category: access.CatSubject, Attribute: "verified", Op: access.OpEquals, Value: "true",
					}},
				}},
			},
			{
				ID:        "storage-own-prefix",
				Combining: access.FirstApplicable,
				Target: access.Target{{
					Category: access.CatAction, Attribute: "name", Op: access.OpPrefix, Value: "localstorage.",
				}},
				Rules: []access.Rule{{
					ID: "own", Effect: access.EffectPermit,
					Condition: access.Compare{
						Category: access.CatResource, Attribute: "target", Op: access.OpGlob, Value: "game-1/*",
					},
				}},
			},
			{
				ID:        "graphics",
				Combining: access.FirstApplicable,
				Target: access.Target{{
					Category: access.CatAction, Attribute: "name", Op: access.OpEquals, Value: access.PermGraphicsPlane,
				}},
				Rules: []access.Rule{{ID: "ok", Effect: access.EffectPermit}},
			},
			{
				ID:        "https-only",
				Combining: access.FirstApplicable,
				Target: access.Target{{
					Category: access.CatAction, Attribute: "name", Op: access.OpEquals, Value: access.PermNetworkConnect,
				}},
				Rules: []access.Rule{{
					ID: "https", Effect: access.EffectPermit,
					Condition: access.Compare{
						Category: access.CatResource, Attribute: "target", Op: access.OpPrefix, Value: "https://",
					},
				}},
			},
		},
	}}
}

func buildImage(t *testing.T, sign bool) *disc.Image {
	t.Helper()
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster: gameCluster(),
		Clips: map[string][]byte{
			"CLIPS/clip-1.m2ts": disc.GenerateClip(disc.ClipSpec{DurationMS: 100, BitrateKbps: 1000, Seed: 5}),
		},
		PermissionRequests: map[string]*access.PermissionRequest{"game-1": gamePermissions()},
		Sign:               sign,
		SignLevel:          core.LevelCluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func newEngine() *Engine {
	return &Engine{
		Roots:            rootCA.Pool(),
		Policy:           platformPolicy(),
		Storage:          disc.NewLocalStorage(0),
		RequireSignature: true,
	}
}

func TestLoadAndRunVerifiedGame(t *testing.T) {
	im := buildImage(t, true)
	e := newEngine()
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !sess.Verified() {
		t.Fatal("session not verified")
	}
	if sess.SignerName() != "Studio" {
		t.Errorf("signer = %q", sess.SignerName())
	}

	rep, err := sess.RunApplication("t-game")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Presentation plan from the timing markup.
	if len(rep.Events) != 3 {
		t.Errorf("events = %+v", rep.Events)
	}
	// Storage worked: highscore persisted.
	b, err := e.Storage.Get("game-1", "highscore")
	if err != nil || string(b) != "100" {
		t.Errorf("highscore = %q, %v", b, err)
	}
	// https connect allowed, http denied at runtime.
	joined := strings.Join(rep.Log, "\n")
	if !strings.Contains(joined, "connect https://leaderboard.example/submit") {
		t.Errorf("https connect missing from log: %v", rep.Log)
	}
	found := false
	for _, d := range rep.DeniedOps {
		if strings.Contains(d, "http://insecure.example") {
			found = true
		}
	}
	if !found {
		t.Errorf("http connect not denied: %v", rep.DeniedOps)
	}
	if len(rep.ScriptErrors) != 0 {
		t.Errorf("script errors: %v", rep.ScriptErrors)
	}

	// Second run accumulates the score (persistent storage).
	sess2, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.RunApplication("t-game"); err != nil {
		t.Fatal(err)
	}
	b, _ = e.Storage.Get("game-1", "highscore")
	if string(b) != "200" {
		t.Errorf("second run highscore = %q", b)
	}
}

func TestUnsignedImageRejected(t *testing.T) {
	im := buildImage(t, false)
	e := newEngine()
	if _, err := e.Load(context.Background(), im); err == nil {
		t.Error("unsigned image loaded with RequireSignature")
	}
	// Without the requirement it loads, but the app is unverified and
	// the policy denies everything.
	e2 := newEngine()
	e2.RequireSignature = false
	sess, err := e2.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Verified() {
		t.Error("unsigned session claims verification")
	}
	rep, err := sess.RunApplication("t-game")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Granted) != 0 {
		t.Errorf("unverified app granted: %v", rep.Granted)
	}
	// Storage ops were denied.
	if _, err := e2.Storage.Get("game-1", "highscore"); err == nil {
		t.Error("unverified app wrote storage")
	}
}

func TestTamperedImageBarred(t *testing.T) {
	im := buildImage(t, true)
	raw, _ := im.ReadIndexDocumentBytes()
	tampered := strings.Replace(string(raw), "score = Number(prev) + 100", "score = 999999", 1)
	if tampered == string(raw) {
		t.Fatal("test setup: tamper target missing")
	}
	im.Put(disc.IndexPath, []byte(tampered))
	e := newEngine()
	if _, err := e.Load(context.Background(), im); err == nil {
		t.Error("tampered application executed")
	}
}

func TestEncryptedGameScores(t *testing.T) {
	// Paper §4: keep the markup clear, encrypt only the sensitive
	// region, decrypt during load.
	k := make([]byte, 32)
	for i := range k {
		k[i] = byte(i * 3)
	}
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:            gameCluster(),
		PermissionRequests: map[string]*access.PermissionRequest{"game-1": gamePermissions()},
		Sign:               true,
		SignLevel:          core.LevelCluster,
		EncryptPaths:       []string{"//manifest/code"},
		Encryption:         xmlenc.EncryptOptions{Key: k},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := im.ReadIndexDocumentBytes()
	if strings.Contains(string(raw), "game booting") {
		t.Fatal("script leaked in packaged image")
	}

	e := newEngine()
	e.DecryptKeys = xmlenc.DecryptOptions{Key: k}
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatalf("load encrypted image: %v", err)
	}
	rep, err := sess.RunApplication("t-game")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScriptErrors) != 0 {
		t.Errorf("script errors: %v", rep.ScriptErrors)
	}
	if b, _ := e.Storage.Get("game-1", "highscore"); string(b) != "100" {
		t.Errorf("highscore = %q", b)
	}

	// Player without the key cannot load.
	e2 := newEngine()
	if _, err := e2.Load(context.Background(), im); err == nil {
		t.Error("loaded encrypted image without key")
	}
}

func TestRunApplicationErrors(t *testing.T) {
	im := buildImage(t, true)
	e := newEngine()
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunApplication("ghost"); err == nil {
		t.Error("unknown track accepted")
	}
	if _, err := sess.RunApplication("t-av"); err == nil {
		t.Error("AV track executed as application")
	}
}

func TestScriptRuntimeErrorIsReportedNotFatal(t *testing.T) {
	cluster := gameCluster()
	cluster.ApplicationTracks()[0].Manifest.Code.Scripts = []disc.Script{
		{Language: "ecmascript", Source: "undefined_thing();"},
		{Language: "java", Source: "class X {}"},
	}
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:            cluster,
		PermissionRequests: map[string]*access.PermissionRequest{"game-1": gamePermissions()},
		Sign:               true,
		SignLevel:          core.LevelCluster,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := newEngine().Load(context.Background(), im)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sess.RunApplication("t-game")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ScriptErrors) != 2 {
		t.Errorf("script errors = %v", rep.ScriptErrors)
	}
}

func TestLoadBareDocument(t *testing.T) {
	doc := gameCluster().Document()
	p := &core.Protector{Identity: creator}
	if _, err := p.Sign(doc, core.LevelCluster, ""); err != nil {
		t.Fatal(err)
	}
	e := newEngine()
	sess, err := e.LoadDocument(context.Background(), doc.Bytes())
	if err != nil {
		t.Fatalf("load document: %v", err)
	}
	if !sess.Verified() {
		t.Error("not verified")
	}
	// No image: the manifest references a permission file that cannot
	// be resolved, so running must fail cleanly.
	if sess.Image != nil {
		t.Error("bare document session has an image")
	}
}

func TestStripSecurityElements(t *testing.T) {
	doc, err := xmldom.ParseString(`<cluster xmlns="urn:discsec:cluster"><track Id="t" kind="av"><playlist/></track><Signature xmlns="http://www.w3.org/2000/09/xmldsig#"/></cluster>`)
	if err != nil {
		t.Fatal(err)
	}
	stripSecurityElements(doc)
	if len(doc.Root().ChildElements()) != 1 {
		t.Errorf("signature not stripped: %s", doc.Root().String())
	}
}
