package player

import (
	"context"
	"fmt"

	"discsec/internal/resilience"
	"discsec/internal/server"
)

// FetchAndLoad downloads a protected cluster document from a content
// server and runs it through the full security pipeline (the paper's
// §5.1 connected-player flow: download, then authenticate before
// execution). The Downloader's retry policy recovers from transient
// link failures under ctx's cancellation; whatever bytes ultimately
// arrive must still pass signature verification in LoadDocument, so a
// tampered or spliced download fails closed here and never reaches
// script execution.
func (e *Engine) FetchAndLoad(ctx context.Context, d *server.Downloader, baseURL, name string) (*Session, error) {
	raw, err := d.FetchContext(ctx, baseURL, name)
	if err != nil {
		return nil, fmt.Errorf("player: download %q: %w", name, err)
	}
	s, err := e.LoadDocument(ctx, raw)
	if err != nil {
		// The transfer succeeded but the content is untrustworthy:
		// terminal, so no retry layer above re-downloads a forgery.
		return nil, resilience.Terminal(err)
	}
	return s, nil
}

// FetchAndLoadImage is FetchAndLoad for packed disc images: the image
// is downloaded (with resume on truncation), unpacked, and opened
// through the Fig. 9 security pipeline before any track can run.
func (e *Engine) FetchAndLoadImage(ctx context.Context, d *server.Downloader, baseURL, name string) (*Session, error) {
	im, err := d.FetchImageContext(ctx, baseURL, name)
	if err != nil {
		return nil, fmt.Errorf("player: download image %q: %w", name, err)
	}
	s, err := e.Load(ctx, im)
	if err != nil {
		return nil, resilience.Terminal(err)
	}
	return s, nil
}
