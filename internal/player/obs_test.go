package player

import (
	"context"
	"strings"
	"sync"
	"testing"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/obs"
	"discsec/internal/xmlenc"
)

// buildEncryptedImage packages the game cluster signed at cluster
// level with the manifest code region encrypted after signing.
func buildEncryptedImage(t *testing.T, key []byte) *disc.Image {
	t.Helper()
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:            gameCluster(),
		PermissionRequests: map[string]*access.PermissionRequest{"game-1": gamePermissions()},
		Sign:               true,
		SignLevel:          core.LevelCluster,
		EncryptPaths:       []string{"//manifest/code"},
		Encryption:         xmlenc.EncryptOptions{Key: key},
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestPipelineSpanGolden opens one signed+encrypted image and runs its
// application, asserting the first-occurrence order of completed spans
// against the Fig. 9 pipeline and the policy decision totals.
func TestPipelineSpanGolden(t *testing.T) {
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	im := buildEncryptedImage(t, key)

	sink := &obs.MemorySink{}
	rec := obs.NewRecorder(obs.WithSink(sink))
	e := NewEngine(
		WithTrustPool(rootCA.Pool()),
		WithPolicy(platformPolicy()),
		WithStorage(disc.NewLocalStorage(0)),
		WithDecryptKeys(xmlenc.DecryptOptions{Key: key}),
		WithRequireSignature(true),
		WithRecorder(rec),
	)
	sess, err := e.Load(context.Background(), im)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := sess.RunApplication("t-game"); err != nil {
		t.Fatalf("run: %v", err)
	}

	golden := []string{
		obs.StageParse, obs.StageDecrypt, obs.StageDectrans, obs.StageC14N,
		obs.StageDigest, obs.StageSignature, obs.StageLoad, obs.StagePolicy,
		obs.StageExecute,
	}
	var got []string
	seen := map[string]bool{}
	for _, stage := range sink.SpanStages() {
		if !seen[stage] {
			seen[stage] = true
			got = append(got, stage)
		}
	}
	if strings.Join(got, " ") != strings.Join(golden, " ") {
		t.Errorf("span completion order:\n got %v\nwant %v", got, golden)
	}

	// The game requests 5 permissions; https-only networking denies
	// exactly the http one.
	if n := rec.Counter("policy.permit"); n != 4 {
		t.Errorf("policy.permit = %d, want 4", n)
	}
	if n := rec.Counter("policy.deny"); n != 1 {
		t.Errorf("policy.deny = %d, want 1", n)
	}
	if n := rec.Counter("load.ok"); n != 1 {
		t.Errorf("load.ok = %d, want 1", n)
	}

	denied := false
	for _, ev := range rec.AuditTrail() {
		if ev.Kind == obs.AuditPolicyDenied && strings.Contains(ev.Detail, "http://insecure.example") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("no policy-denied audit event for the http target: %+v", rec.AuditTrail())
	}

	// Every pipeline stage recorded a positive duration.
	snap := rec.Snapshot()
	counts := map[string]int64{}
	for _, st := range snap.Stages {
		counts[st.Stage] = st.Count
		if st.Total <= 0 {
			t.Errorf("stage %s total = %v, want > 0", st.Stage, st.Total)
		}
	}
	for _, stage := range golden {
		if counts[stage] == 0 {
			t.Errorf("stage %s missing from snapshot", stage)
		}
	}
}

// TestConcurrentLoadsSharedRecorder hammers one Recorder from parallel
// engine loads; run under -race this doubles as the data-race probe
// for the whole instrumentation path.
func TestConcurrentLoadsSharedRecorder(t *testing.T) {
	im := buildImage(t, true)
	rec := obs.NewRecorder()
	const workers = 8

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := NewEngine(
				WithTrustPool(rootCA.Pool()),
				WithPolicy(platformPolicy()),
				WithStorage(disc.NewLocalStorage(0)),
				WithRequireSignature(true),
				WithRecorder(rec),
			)
			if _, err := e.Load(context.Background(), im); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent load: %v", err)
	}

	if n := rec.Counter("load.ok"); n != workers {
		t.Errorf("load.ok = %d, want %d", n, workers)
	}
	snap := rec.Snapshot()
	for _, st := range snap.Stages {
		if st.Stage == obs.StageLoad && st.Count != workers {
			t.Errorf("load span count = %d, want %d", st.Count, workers)
		}
	}
}
