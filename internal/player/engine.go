// Package player implements the Interactive Application Engine of the
// paper's §8 prototype (Fig. 11): the component with access to the
// Interactive Cluster that gets application contents decrypted (if
// encrypted) and verified (if signed), evaluates the attached permission
// request file against platform policy, and then executes the
// application — markup scheduling plus script execution against a
// permission-gated host API.
package player

import (
	"bytes"
	"context"
	"crypto"
	"crypto/x509"
	"errors"
	"fmt"
	"io"

	"discsec/internal/access"
	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/library"
	"discsec/internal/markup"
	"discsec/internal/obs"
	"discsec/internal/rights"
	"discsec/internal/xmldom"
	"discsec/internal/xmlenc"
)

// Engine is a configured player runtime.
type Engine struct {
	// Roots are the player's trusted root certificates.
	Roots *x509.CertPool
	// Policy is the platform policy deciding permission requests. A
	// nil policy denies everything (closed platform).
	Policy *access.PDP
	// Storage is the player's local storage.
	Storage *disc.LocalStorage
	// DecryptKeys supplies content decryption material.
	DecryptKeys xmlenc.DecryptOptions
	// RequireSignature bars unsigned applications (always set for
	// downloaded content; disc content may relax it per §5.1).
	RequireSignature bool
	// KeyByName resolves ds:KeyName hints via a trust service when a
	// signature embeds no certificate (XKMS flow, paper §7).
	KeyByName func(name string) (crypto.PublicKey, error)
	// ScriptStepBudget bounds script execution; 0 uses the default.
	ScriptStepBudget int
	// Recorder receives engine observability when the load context does
	// not carry one of its own (obs.WithRecorder wins). A nil Recorder
	// with a bare context keeps the engine silent.
	Recorder *obs.Recorder
	// Library, when non-nil, is the shared verification library this
	// engine loads through. The library owns the verification trust
	// configuration (its core.Opener supersedes the engine's
	// Roots/DecryptKeys/RequireSignature/KeyByName for loads) — one
	// trust config per cache is what makes sharing verdicts between
	// engines sound. Sessions built from library verdicts share the
	// verified document and cluster read-only.
	Library *library.Library
}

// Session is a loaded, verified disc or download.
type Session struct {
	// Cluster is the decoded content hierarchy.
	Cluster *disc.InteractiveCluster
	// Doc is the verified cluster document.
	Doc *xmldom.Document
	// Image is the backing disc image (nil for bare documents).
	Image *disc.Image
	// OpenResult reports the security processing.
	OpenResult *core.OpenResult

	engine      *Engine
	rec         *obs.Recorder
	licenseEval *rights.Evaluator
	licenseID   string
}

// obsContext resolves the observability story for one load: a recorder
// already on the context wins; otherwise the engine's configured
// recorder is attached so the layers below see it.
func (e *Engine) obsContext(ctx context.Context) (context.Context, *obs.Recorder) {
	if ctx == nil {
		ctx = context.Background()
	}
	if rec := obs.FromContext(ctx); rec != nil {
		return ctx, rec
	}
	return obs.WithRecorder(ctx, e.Recorder), e.Recorder
}

// Load opens a disc image: reads the index, runs the Fig. 9 security
// pipeline, and decodes the content hierarchy. The context carries
// cancellation intent and the obs.Recorder for per-stage spans.
func (e *Engine) Load(ctx context.Context, im *disc.Image) (*Session, error) {
	raw, err := im.ReadIndexDocumentBytes()
	if err != nil {
		return nil, fmt.Errorf("player: %w", err)
	}
	s, err := e.LoadDocument(ctx, raw)
	if err != nil {
		return nil, err
	}
	s.Image = im
	return s, nil
}

// LoadFrom opens a bare cluster document streamed from r (a downloaded
// application body, a request body, an open file): the single-pass
// streaming verification path. The reader is consumed exactly once and
// never buffered whole.
func (e *Engine) LoadFrom(ctx context.Context, r io.Reader) (*Session, error) {
	ctx, rec := e.obsContext(ctx)
	sp := rec.Start(obs.StageLoad)
	s, err := e.loadFrom(ctx, rec, r)
	sp.End()
	if err != nil {
		rec.Inc("load.err")
		return nil, err
	}
	rec.Inc("load.ok")
	return s, nil
}

// LoadDocument is LoadFrom over an in-memory document.
func (e *Engine) LoadDocument(ctx context.Context, raw []byte) (*Session, error) {
	return e.LoadFrom(ctx, bytes.NewReader(raw))
}

func (e *Engine) loadFrom(ctx context.Context, rec *obs.Recorder, r io.Reader) (*Session, error) {
	if e.Library != nil {
		v, _, err := e.Library.OpenReader(ctx, r)
		if err != nil {
			return nil, fmt.Errorf("player: security processing: %w", err)
		}
		return &Session{Cluster: v.Cluster, Doc: v.Doc, OpenResult: v.Result, engine: e, rec: rec}, nil
	}
	opener := &core.Opener{
		Roots:            e.Roots,
		Decrypt:          e.DecryptKeys,
		RequireSignature: e.RequireSignature,
		KeyByName:        e.KeyByName,
	}
	res, err := opener.OpenReader(ctx, r)
	if err != nil {
		return nil, fmt.Errorf("player: security processing: %w", err)
	}
	// Strip signatures before model decoding: they are markup the
	// model does not carry.
	clean := res.Doc.Clone()
	stripSecurityElements(clean)
	cluster, err := disc.ParseCluster(clean)
	if err != nil {
		return nil, fmt.Errorf("player: decode cluster: %w", err)
	}
	return &Session{Cluster: cluster, Doc: res.Doc, OpenResult: res, engine: e, rec: rec}, nil
}

func stripSecurityElements(doc *xmldom.Document) {
	root := doc.Root()
	if root == nil {
		return
	}
	var remove []*xmldom.Element
	root.Walk(func(n xmldom.Node) bool {
		el, ok := n.(*xmldom.Element)
		if !ok {
			return true
		}
		if el.Local == "Signature" || el.Local == "EncryptedData" {
			remove = append(remove, el)
			return false
		}
		return true
	})
	for _, el := range remove {
		el.Detach()
	}
}

// Verified reports whether the session's content passed signature
// verification (at least one chain-validated signature).
func (s *Session) Verified() bool {
	for _, rep := range s.OpenResult.Signatures {
		if rep.ChainValidated {
			return true
		}
	}
	return false
}

// SignerName returns the first validated signer name, or "".
func (s *Session) SignerName() string {
	for _, rep := range s.OpenResult.Signatures {
		if rep.SignerName != "" {
			return rep.SignerName
		}
	}
	return ""
}

// ExecutionReport is the observable outcome of running an application.
type ExecutionReport struct {
	// AppID is the executed manifest id.
	AppID string
	// Granted and Denied are the permission evaluation outcomes.
	Granted []access.Permission
	Denied  []access.Permission
	// Log collects player.log() output from scripts.
	Log []string
	// DeniedOps lists host API calls refused at runtime.
	DeniedOps []string
	// Events is the markup presentation schedule.
	Events []markup.PresentationEvent
	// ScriptErrors collects non-fatal script failures.
	ScriptErrors []string
}

// RunApplication executes the application track: permission evaluation,
// markup scheduling, then script execution with the permission-gated
// host API.
func (s *Session) RunApplication(trackID string) (*ExecutionReport, error) {
	track := s.Cluster.FindTrack(trackID)
	if track == nil {
		return nil, fmt.Errorf("player: no track %q", trackID)
	}
	if track.Kind != disc.TrackApplication || track.Manifest == nil {
		return nil, fmt.Errorf("player: track %q is not an application", trackID)
	}
	m := track.Manifest
	rep := &ExecutionReport{AppID: m.ID}

	// Permission evaluation (paper §4: permission request files).
	grants, err := s.evaluatePermissions(m)
	if err != nil {
		return nil, err
	}
	rep.Granted = grants.Granted()
	rep.Denied = grants.Denied()

	// Everything past policy evaluation is application execution.
	defer s.rec.Start(obs.StageExecute).End()

	// Markup: build the presentation plan.
	var layout *markup.Layout
	var timing *markup.TimingNode
	for _, sm := range m.Markup.SubMarkups {
		if sm.Content == nil {
			continue
		}
		switch sm.Kind {
		case "layout":
			l, err := markup.ParseLayout(sm.Content)
			if err != nil {
				return nil, fmt.Errorf("player: layout: %w", err)
			}
			layout = l
		case "timing":
			tn, err := markup.ParseTiming(sm.Content)
			if err != nil {
				return nil, fmt.Errorf("player: timing: %w", err)
			}
			timing = tn
		}
	}
	if layout != nil && timing != nil {
		if err := timing.ValidateAgainstLayout(layout); err != nil {
			return nil, fmt.Errorf("player: %w", err)
		}
	}
	if timing != nil {
		rep.Events = timing.Schedule()
	}

	// Scripts: execute against the gated host API.
	interp := markup.NewInterp()
	interp.StepBudget = s.engine.ScriptStepBudget
	s.bindHostAPI(interp, m, grants, rep)
	for i, script := range m.Code.Scripts {
		if script.Language != "" && script.Language != "ecmascript" {
			rep.ScriptErrors = append(rep.ScriptErrors, fmt.Sprintf("script %d: unsupported language %q", i+1, script.Language))
			continue
		}
		if err := interp.RunSource(script.Source); err != nil {
			rep.ScriptErrors = append(rep.ScriptErrors, fmt.Sprintf("script %d: %v", i+1, err))
		}
	}
	return rep, nil
}

func (s *Session) evaluatePermissions(m *disc.Manifest) (*access.GrantSet, error) {
	pr := &access.PermissionRequest{AppID: m.ID}
	if m.PermissionFile != "" && s.Image != nil {
		raw, err := s.Image.Get(m.PermissionFile)
		if err != nil {
			return nil, fmt.Errorf("player: permission file: %w", err)
		}
		doc, err := xmldom.ParseBytes(raw)
		if err != nil {
			return nil, fmt.Errorf("player: permission file: %w", err)
		}
		parsed, err := access.ParsePermissionRequest(doc)
		if err != nil {
			return nil, err
		}
		pr = parsed
		if pr.AppID == "" {
			pr.AppID = m.ID
		}
	}
	pdp := s.engine.Policy
	if pdp == nil {
		// Closed platform: an empty policy set is NotApplicable for
		// every request, which the PDP maps to Deny.
		pdp = &access.PDP{}
	}
	if pdp.Recorder == nil && s.rec != nil {
		// Shallow copy so the session's recorder does not leak into a
		// policy shared across engines.
		cp := *pdp
		cp.Recorder = s.rec
		pdp = &cp
	}
	return pdp.EvaluateRequest(pr, s.subjectAttrs(), nil)
}

func (s *Session) subjectAttrs() map[string]string {
	attrs := map[string]string{"verified": "false"}
	if s.Verified() {
		attrs["verified"] = "true"
		attrs["signer"] = s.SignerName()
	}
	return attrs
}

// bindHostAPI installs the player/storage/display host objects, each
// operation gated on the grant set (the enforcement half of §4's access
// control).
func (s *Session) bindHostAPI(in *markup.Interp, m *disc.Manifest, grants *access.GrantSet, rep *ExecutionReport) {
	deny := func(op string) {
		rep.DeniedOps = append(rep.DeniedOps, op)
		s.rec.Audit(obs.AuditRuntimeDenied, "app %s: %s", m.ID, op)
	}

	in.SetGlobal("player", &markup.HostObject{Name: "player", Members: map[string]markup.Value{
		"log": markup.HostFunc(func(args []markup.Value) (markup.Value, error) {
			line := ""
			for i, a := range args {
				if i > 0 {
					line += " "
				}
				line += markup.ToString(a)
			}
			rep.Log = append(rep.Log, line)
			return nil, nil
		}),
		"appId":    m.ID,
		"verified": s.Verified(),
	}})

	storageKeyPrefix := m.ID + "/"
	in.SetGlobal("storage", &markup.HostObject{Name: "storage", Members: map[string]markup.Value{
		"set": markup.HostFunc(func(args []markup.Value) (markup.Value, error) {
			if len(args) < 2 {
				return nil, errors.New("storage.set(name, value) requires two arguments")
			}
			name := markup.ToString(args[0])
			if !grants.Allows(access.PermLocalStorageWrite, storageKeyPrefix+name) {
				deny("storage.set " + name)
				return false, nil
			}
			if s.engine.Storage == nil {
				return false, nil
			}
			if err := s.engine.Storage.Put(m.ID, name, []byte(markup.ToString(args[1]))); err != nil {
				deny("storage.set " + name + ": " + err.Error())
				return false, nil
			}
			return true, nil
		}),
		"get": markup.HostFunc(func(args []markup.Value) (markup.Value, error) {
			if len(args) < 1 {
				return nil, errors.New("storage.get(name) requires an argument")
			}
			name := markup.ToString(args[0])
			if !grants.Allows(access.PermLocalStorageRead, storageKeyPrefix+name) {
				deny("storage.get " + name)
				return nil, nil
			}
			if s.engine.Storage == nil {
				return nil, nil
			}
			b, err := s.engine.Storage.Get(m.ID, name)
			if err != nil {
				return nil, nil
			}
			return string(b), nil
		}),
	}})

	in.SetGlobal("display", &markup.HostObject{Name: "display", Members: map[string]markup.Value{
		"draw": markup.HostFunc(func(args []markup.Value) (markup.Value, error) {
			if !grants.Allows(access.PermGraphicsPlane, "") {
				deny("display.draw")
				return false, nil
			}
			line := "draw"
			for _, a := range args {
				line += " " + markup.ToString(a)
			}
			rep.Log = append(rep.Log, line)
			return true, nil
		}),
	}})

	in.SetGlobal("network", &markup.HostObject{Name: "network", Members: map[string]markup.Value{
		"connect": markup.HostFunc(func(args []markup.Value) (markup.Value, error) {
			if len(args) < 1 {
				return nil, errors.New("network.connect(url) requires an argument")
			}
			url := markup.ToString(args[0])
			if !grants.Allows(access.PermNetworkConnect, url) {
				deny("network.connect " + url)
				return false, nil
			}
			rep.Log = append(rep.Log, "connect "+url)
			return true, nil
		}),
	}})
}
