package resilience

import (
	"context"
	"errors"
	"fmt"
)

// ErrBulkheadFull marks an acquisition that could not get a slot: the
// dependency's concurrency compartment is at capacity and the caller's
// context ended while waiting (Acquire) or no wait was allowed
// (TryAcquire). Like ErrCircuitOpen it signals local back-pressure,
// not a dependency failure.
var ErrBulkheadFull = errors.New("resilience: bulkhead full")

// Bulkhead is a per-dependency concurrency compartment: at most
// capacity requests touch the dependency at once, so one slow or
// wedged dependency saturates its own compartment instead of every
// goroutine in the process (the ship-bulkhead isolation pattern). A
// nil *Bulkhead is the universal pass-through.
type Bulkhead struct {
	name  string
	slots chan struct{}
}

// NewBulkhead builds a compartment admitting capacity concurrent
// holders (minimum 1).
func NewBulkhead(name string, capacity int) *Bulkhead {
	if capacity < 1 {
		capacity = 1
	}
	return &Bulkhead{name: name, slots: make(chan struct{}, capacity)}
}

// Acquire reserves a slot, waiting until one frees or ctx ends. On
// success the returned release must be called exactly once. On a
// cancelled wait it returns a terminal error wrapping both
// ErrBulkheadFull and ctx's error.
func (b *Bulkhead) Acquire(ctx context.Context) (release func(), err error) {
	if b == nil {
		return noopRelease, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case b.slots <- struct{}{}:
		return b.release, nil
	default:
	}
	select {
	case b.slots <- struct{}{}:
		return b.release, nil
	case <-ctx.Done():
		return nil, Terminal(fmt.Errorf("%w: %s at capacity %d: %w", ErrBulkheadFull, b.name, cap(b.slots), ctx.Err()))
	}
}

// TryAcquire reserves a slot without waiting, reporting whether it
// succeeded.
func (b *Bulkhead) TryAcquire() (release func(), ok bool) {
	if b == nil {
		return noopRelease, true
	}
	select {
	case b.slots <- struct{}{}:
		return b.release, true
	default:
		return nil, false
	}
}

// InFlight reports current slot holders (diagnostics and tests).
func (b *Bulkhead) InFlight() int {
	if b == nil {
		return 0
	}
	return len(b.slots)
}

// Capacity reports the compartment size (0 for the nil pass-through).
func (b *Bulkhead) Capacity() int {
	if b == nil {
		return 0
	}
	return cap(b.slots)
}

func (b *Bulkhead) release() { <-b.slots }

// noopRelease is Acquire's release for a nil bulkhead.
func noopRelease() {}
