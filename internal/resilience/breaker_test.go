package resilience

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"syscall"
	"testing"
	"time"
)

// manualClock is a deterministic, manually advanced clock.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1700000000, 0)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func transientErr() error {
	return &net.OpError{Op: "read", Err: syscall.ECONNRESET}
}

func testBreaker(clk *manualClock) *Breaker {
	return &Breaker{
		Name:             "dep",
		FailureThreshold: 3,
		SuccessThreshold: 2,
		OpenTimeout:      10 * time.Second,
		ProbeBudget:      1,
		Clock:            clk.Now,
	}
}

func breakerFail(t *testing.T, b *Breaker) {
	t.Helper()
	err := b.Do(context.Background(), func(context.Context) error { return transientErr() })
	if err == nil {
		t.Fatal("injected failure vanished")
	}
}

func TestBreakerOpensAfterConsecutiveTransientFailures(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		if b.State() != StateClosed {
			t.Fatalf("state before failure %d = %v", i, b.State())
		}
		breakerFail(t, b)
	}
	if b.State() != StateOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	ran := false
	err := b.Do(context.Background(), func(context.Context) error { ran = true; return nil })
	if ran {
		t.Error("open circuit admitted a request")
	}
	if !errors.Is(err, ErrCircuitOpen) || !IsTerminal(err) {
		t.Errorf("open-circuit rejection = %v; want terminal ErrCircuitOpen", err)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	breakerFail(t, b)
	breakerFail(t, b)
	if err := b.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatal(err)
	}
	breakerFail(t, b)
	breakerFail(t, b)
	if b.State() != StateClosed {
		t.Fatalf("streak did not reset: state = %v", b.State())
	}
	breakerFail(t, b)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open after fresh streak of 3", b.State())
	}
}

func TestBreakerTerminalErrorsAreNeutral(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	for i := 0; i < 10; i++ {
		b.Do(context.Background(), func(context.Context) error { //nolint:errcheck
			return Terminal(errors.New("404"))
		})
	}
	if b.State() != StateClosed {
		t.Fatalf("terminal errors opened the circuit: %v", b.State())
	}
	// Neutral outcomes do not reset a transient streak either.
	breakerFail(t, b)
	breakerFail(t, b)
	b.Do(context.Background(), func(context.Context) error { return Terminal(errors.New("404")) }) //nolint:errcheck
	breakerFail(t, b)
	if b.State() != StateOpen {
		t.Fatalf("state = %v, want open (terminal must not reset the streak)", b.State())
	}
}

func TestBreakerHalfOpenProbeBudgetAndRecovery(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		breakerFail(t, b)
	}
	if b.State() != StateOpen {
		t.Fatalf("state = %v", b.State())
	}

	// Still open inside the window.
	clk.Advance(9 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("admitted inside the open window: %v", err)
	}

	// Past the window: exactly ProbeBudget concurrent probes pass.
	clk.Advance(time.Second)
	done1, err := b.Allow()
	if err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe budget not enforced: %v", err)
	}

	// Two successful probes close the circuit.
	done1(nil)
	done2, err := b.Allow()
	if err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("closed after %d successes, want %d", 1, 2)
	}
	done2(nil)
	if b.State() != StateClosed {
		t.Fatalf("state after probe successes = %v, want closed", b.State())
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		breakerFail(t, b)
	}
	clk.Advance(10 * time.Second)
	done, err := b.Allow()
	if err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	done(transientErr())
	if b.State() != StateOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The OpenTimeout window restarted at the failed probe.
	clk.Advance(9 * time.Second)
	if _, err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("open window did not restart after a failed probe")
	}
	clk.Advance(time.Second)
	if done, err := b.Allow(); err != nil {
		t.Fatalf("probe after restarted window rejected: %v", err)
	} else {
		done(nil)
	}
}

func TestBreakerTransitionsObserved(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	type tr struct{ from, to BreakerState }
	var mu sync.Mutex
	var seen []tr
	b.OnTransition = func(name string, from, to BreakerState, cause error) {
		if name != "dep" {
			t.Errorf("transition name = %q", name)
		}
		mu.Lock()
		seen = append(seen, tr{from, to})
		mu.Unlock()
	}
	for i := 0; i < 3; i++ {
		breakerFail(t, b)
	}
	clk.Advance(10 * time.Second)
	done, _ := b.Allow()
	done(nil)
	done, _ = b.Allow()
	done(nil)

	want := []tr{
		{StateClosed, StateOpen},
		{StateOpen, StateHalfOpen},
		{StateHalfOpen, StateClosed},
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestBreakerNilPassThrough(t *testing.T) {
	var b *Breaker
	if b.State() != StateClosed {
		t.Error("nil breaker not closed")
	}
	ran := false
	if err := b.Do(context.Background(), func(context.Context) error { ran = true; return nil }); err != nil || !ran {
		t.Errorf("nil breaker blocked: ran=%v err=%v", ran, err)
	}
}

// TestBreakerStopsRetryLoop pins the anti-amplification contract: an
// open circuit is terminal, so a retry policy gives up after one
// rejected attempt instead of burning its budget against the breaker.
func TestBreakerStopsRetryLoop(t *testing.T) {
	clk := newManualClock()
	b := testBreaker(clk)
	for i := 0; i < 3; i++ {
		breakerFail(t, b)
	}
	p := &Policy{MaxAttempts: 10, BaseDelay: time.Microsecond}
	attempts := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		attempts++
		return b.Do(ctx, func(context.Context) error { return transientErr() })
	})
	if attempts != 1 {
		t.Errorf("retry hammered an open circuit: %d attempts", attempts)
	}
	if !errors.Is(err, ErrCircuitOpen) {
		t.Errorf("err = %v", err)
	}
}

func TestBulkheadCapAndRelease(t *testing.T) {
	b := NewBulkhead("dep", 2)
	r1, ok := b.TryAcquire()
	r2, ok2 := b.TryAcquire()
	if !ok || !ok2 {
		t.Fatal("could not fill the compartment")
	}
	if _, ok := b.TryAcquire(); ok {
		t.Fatal("admitted past capacity")
	}
	if b.InFlight() != 2 || b.Capacity() != 2 {
		t.Errorf("inflight=%d cap=%d", b.InFlight(), b.Capacity())
	}
	r1()
	if r3, ok := b.TryAcquire(); !ok {
		t.Fatal("release did not free a slot")
	} else {
		r3()
	}
	r2()
	if b.InFlight() != 0 {
		t.Errorf("inflight after release = %d", b.InFlight())
	}
}

func TestBulkheadAcquireWaitsForSlot(t *testing.T) {
	b := NewBulkhead("dep", 1)
	r1, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := b.Acquire(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	r1()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("waiter failed after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted after release")
	}
}

func TestBulkheadAcquireCancelled(t *testing.T) {
	b := NewBulkhead("dep", 1)
	r1, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = b.Acquire(ctx)
	if !errors.Is(err, ErrBulkheadFull) || !errors.Is(err, context.Canceled) || !IsTerminal(err) {
		t.Fatalf("cancelled acquire = %v; want terminal ErrBulkheadFull wrapping ctx.Err()", err)
	}
}

func TestBulkheadNilPassThrough(t *testing.T) {
	var b *Bulkhead
	release, err := b.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	r2, ok := b.TryAcquire()
	if !ok {
		t.Fatal("nil bulkhead refused")
	}
	r2()
}

func TestParseRetryAfterBothForms(t *testing.T) {
	now := time.Date(2026, time.August, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		h    string
		want time.Duration
	}{
		{"delta-seconds", "42", 42 * time.Second},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"http-date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second},
		{"http-date past", now.Add(-time.Minute).Format(http.TimeFormat), 0},
		{"garbage", "soon", 0},
		{"empty", "", 0},
		{"padded delta", "  7  ", 7 * time.Second},
	}
	for _, c := range cases {
		if got := ParseRetryAfterAt(c.h, now); got != c.want {
			t.Errorf("%s: ParseRetryAfterAt(%q) = %v, want %v", c.name, c.h, got, c.want)
		}
	}
}
