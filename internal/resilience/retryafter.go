package resilience

import (
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ParseRetryAfter reads an HTTP Retry-After header value in either of
// its two standard forms — delta-seconds ("120") or an HTTP-date
// ("Fri, 07 Aug 2026 09:30:00 GMT") — returning the backoff floor to
// honor. 0 means absent or unusable (including a date already in the
// past). Every client-side classification path uses this one parser so
// the two forms behave identically across the downloader and the trust
// client.
func ParseRetryAfter(h string) time.Duration {
	return ParseRetryAfterAt(h, time.Now())
}

// ParseRetryAfterAt is ParseRetryAfter against an explicit current
// time, for deterministic tests of the HTTP-date form.
func ParseRetryAfterAt(h string, now time.Time) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(h, 10, 64); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}
