package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen marks a request rejected locally because the
// dependency's circuit breaker is open (or its half-open probe budget
// is spent). It is always classified terminal: an open circuit is the
// breaker's promise that the dependency is down *right now*, so the
// retry layer must not burn its attempt budget hammering it — callers
// fall back (degraded serve, fail closed) instead.
var ErrCircuitOpen = errors.New("resilience: circuit open")

// BreakerState enumerates the circuit states.
type BreakerState int32

// Circuit states.
const (
	// StateClosed: requests flow; consecutive transient failures are
	// counted toward the opening threshold.
	StateClosed BreakerState = iota
	// StateOpen: requests are rejected locally with ErrCircuitOpen
	// until OpenTimeout has elapsed on the breaker's clock.
	StateOpen
	// StateHalfOpen: a bounded number of concurrent probe requests may
	// pass; a probe failure reopens the circuit, enough successes
	// close it.
	StateHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int32(s))
	}
}

// Breaker is a deterministic, clock-injectable circuit breaker guarding
// one remote dependency. The zero value is usable (defaults documented
// per field); a nil *Breaker is the universal pass-through, so call
// sites thread an optional breaker without branching.
//
// Failure accounting follows the package's transient/terminal taxonomy:
// only transient-classified errors (resets, timeouts, 5xx — the
// dependency misbehaving) count toward opening; nil results count as
// success; terminal errors (4xx, malformed payloads, the caller's own
// cancellation) move the breaker in neither direction, because they
// prove nothing about dependency health worth acting on.
type Breaker struct {
	// Name identifies the guarded dependency in errors and transitions.
	Name string
	// FailureThreshold is the consecutive transient-failure count that
	// opens a closed circuit; 0 means 5.
	FailureThreshold int
	// SuccessThreshold is the consecutive probe-success count that
	// closes a half-open circuit; 0 means 2.
	SuccessThreshold int
	// OpenTimeout is how long an open circuit rejects before admitting
	// half-open probes; 0 means 5s.
	OpenTimeout time.Duration
	// ProbeBudget bounds concurrent half-open probes; 0 means 1. This
	// is the ceiling on upstream attempts while the breaker recovers —
	// the anti-amplification guarantee the chaos tests pin.
	ProbeBudget int
	// Clock overrides time.Now (deterministic tests).
	Clock func() time.Time
	// Classify maps a completion error to transient/terminal; nil uses
	// the package default Classify.
	Classify func(error) error
	// OnTransition, if set, observes every state change. It is called
	// without the breaker's lock held; cause is the error that forced
	// the transition (nil for recovery transitions). Set it before the
	// breaker carries traffic.
	OnTransition func(name string, from, to BreakerState, cause error)

	mu        sync.Mutex
	state     BreakerState
	failures  int // consecutive transient failures while closed
	successes int // consecutive probe successes while half-open
	probes    int // in-flight half-open probes
	openedAt  time.Time
}

func (b *Breaker) name() string {
	if b.Name != "" {
		return b.Name
	}
	return "dependency"
}

func (b *Breaker) failureThreshold() int {
	if b.FailureThreshold > 0 {
		return b.FailureThreshold
	}
	return 5
}

func (b *Breaker) successThreshold() int {
	if b.SuccessThreshold > 0 {
		return b.SuccessThreshold
	}
	return 2
}

func (b *Breaker) openTimeout() time.Duration {
	if b.OpenTimeout > 0 {
		return b.OpenTimeout
	}
	return 5 * time.Second
}

func (b *Breaker) probeBudget() int {
	if b.ProbeBudget > 0 {
		return b.ProbeBudget
	}
	return 1
}

func (b *Breaker) now() time.Time {
	if b.Clock != nil {
		return b.Clock()
	}
	return time.Now()
}

func (b *Breaker) classify(err error) error {
	if b.Classify != nil {
		return b.Classify(err)
	}
	return Classify(err)
}

// State reports the current circuit state. An expired open circuit
// still reports StateOpen until the next Allow promotes it — state
// changes only happen on the request path, keeping the machine
// deterministic under an injected clock.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// transition is one recorded state change, fired after the lock drops.
type transition struct {
	from, to BreakerState
	cause    error
}

func (b *Breaker) fire(ts []transition) {
	if b.OnTransition == nil {
		return
	}
	for _, t := range ts {
		b.OnTransition(b.name(), t.from, t.to, t.cause)
	}
}

// setStateLocked moves the machine and resets the counters the target
// state starts from.
func (b *Breaker) setStateLocked(to BreakerState, cause error, ts *[]transition) {
	if b.state == to {
		return
	}
	*ts = append(*ts, transition{from: b.state, to: to, cause: cause})
	b.state = to
	switch to {
	case StateOpen:
		b.openedAt = b.now()
		b.failures = 0
		b.successes = 0
	case StateHalfOpen:
		b.probes = 0
		b.successes = 0
	case StateClosed:
		b.failures = 0
		b.successes = 0
	}
}

// promoteLocked moves an expired open circuit to half-open.
func (b *Breaker) promoteLocked(ts *[]transition) {
	if b.state == StateOpen && b.now().Sub(b.openedAt) >= b.openTimeout() {
		b.setStateLocked(StateHalfOpen, nil, ts)
	}
}

// noopDone is Allow's completion callback for a nil breaker.
func noopDone(error) {}

// Allow asks the breaker to admit one request. On admission it returns
// a completion callback that MUST be called exactly once with the
// request's outcome. On rejection it returns a terminal error wrapping
// ErrCircuitOpen (and the done callback is nil).
func (b *Breaker) Allow() (done func(error), err error) {
	if b == nil {
		return noopDone, nil
	}
	var ts []transition
	b.mu.Lock()
	b.promoteLocked(&ts)
	switch b.state {
	case StateOpen:
		b.mu.Unlock()
		b.fire(ts)
		return nil, Terminal(fmt.Errorf("%w: %s", ErrCircuitOpen, b.name()))
	case StateHalfOpen:
		if b.probes >= b.probeBudget() {
			b.mu.Unlock()
			b.fire(ts)
			return nil, Terminal(fmt.Errorf("%w: %s: probe budget exhausted", ErrCircuitOpen, b.name()))
		}
		b.probes++
		b.mu.Unlock()
		b.fire(ts)
		return b.probeDone, nil
	default:
		b.mu.Unlock()
		b.fire(ts)
		return b.closedDone, nil
	}
}

// outcome classifies a completion error: +1 success, -1 failure, 0
// neutral (no health signal).
func (b *Breaker) outcome(err error) int {
	if err == nil {
		return +1
	}
	if errors.Is(b.classify(err), ErrTransient) {
		return -1
	}
	return 0
}

// closedDone records the outcome of a request admitted while closed.
func (b *Breaker) closedDone(err error) {
	var ts []transition
	b.mu.Lock()
	if b.state == StateClosed {
		switch b.outcome(err) {
		case -1:
			b.failures++
			if b.failures >= b.failureThreshold() {
				b.setStateLocked(StateOpen, err, &ts)
			}
		case +1:
			b.failures = 0
		}
	}
	// A completion arriving after the circuit already moved on (another
	// request tripped it) carries no further signal.
	b.mu.Unlock()
	b.fire(ts)
}

// probeDone records the outcome of a half-open probe.
func (b *Breaker) probeDone(err error) {
	var ts []transition
	b.mu.Lock()
	if b.probes > 0 {
		b.probes--
	}
	if b.state == StateHalfOpen {
		switch b.outcome(err) {
		case -1:
			// The dependency is still failing: reopen and restart the
			// OpenTimeout window.
			b.setStateLocked(StateOpen, err, &ts)
		case +1:
			b.successes++
			if b.successes >= b.successThreshold() {
				b.setStateLocked(StateClosed, nil, &ts)
			}
		}
	}
	b.mu.Unlock()
	b.fire(ts)
}

// Do runs op under the breaker: rejected immediately with a terminal
// ErrCircuitOpen when the circuit is open, otherwise op's outcome feeds
// the state machine and is returned unchanged. A nil breaker just runs
// op. Compose inside a retry policy's op so every attempt consults the
// circuit and an opening circuit stops the attempt loop (ErrCircuitOpen
// is terminal).
func (b *Breaker) Do(ctx context.Context, op func(ctx context.Context) error) error {
	done, err := b.Allow()
	if err != nil {
		return err
	}
	err = op(ctx)
	done(err)
	return err
}
