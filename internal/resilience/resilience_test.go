package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"syscall"
	"testing"
	"time"
)

func TestTransientTerminalMarks(t *testing.T) {
	cause := errors.New("boom")
	tr := Transient(cause)
	if !errors.Is(tr, ErrTransient) || errors.Is(tr, ErrTerminal) {
		t.Errorf("Transient marks wrong: %v", tr)
	}
	if !errors.Is(tr, cause) {
		t.Error("Transient severed the cause chain")
	}
	te := Terminal(cause)
	if !errors.Is(te, ErrTerminal) || errors.Is(te, ErrTransient) {
		t.Errorf("Terminal marks wrong: %v", te)
	}
	// Re-marking an already classified error must not flip it.
	if !errors.Is(Terminal(tr), ErrTransient) {
		t.Error("Terminal() re-marked a transient error")
	}
	if Transient(nil) != nil || Terminal(nil) != nil {
		t.Error("marking nil must stay nil")
	}
}

type fakeTimeout struct{}

func (fakeTimeout) Error() string   { return "i/o timeout" }
func (fakeTimeout) Timeout() bool   { return true }
func (fakeTimeout) Temporary() bool { return false }

func TestClassifyTaxonomy(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		transient bool
	}{
		{"reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"pipe", syscall.EPIPE, true},
		{"truncated", fmt.Errorf("reading body: %w", io.ErrUnexpectedEOF), true},
		{"net timeout", fakeTimeout{}, true},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"unknown", errors.New("malformed response"), false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("%s: IsTransient = %v, want %v", c.name, got, c.transient)
		}
		if got := IsTerminal(c.err); got == c.transient {
			t.Errorf("%s: IsTerminal = %v, want %v", c.name, got, !c.transient)
		}
	}
	if Classify(nil) != nil {
		t.Error("Classify(nil) != nil")
	}
}

// clientTimeout models how an http.Client deadline surfaces: a
// net.Error with Timeout() true whose chain reaches
// context.DeadlineExceeded (as url.Error does).
type clientTimeout struct{}

func (clientTimeout) Error() string   { return "Client.Timeout exceeded while awaiting headers" }
func (clientTimeout) Timeout() bool   { return true }
func (clientTimeout) Temporary() bool { return true }
func (clientTimeout) Unwrap() error   { return context.DeadlineExceeded }

func TestClassifyNetTimeoutWrappingContextDeadline(t *testing.T) {
	// The timeout reading must win over the wrapped context sentinel.
	if !IsTransient(clientTimeout{}) {
		t.Errorf("client timeout classified terminal: %v", Classify(clientTimeout{}))
	}
}

func TestRetryAfterHint(t *testing.T) {
	base := errors.New("503")
	err := WithRetryAfter(Transient(base), 42*time.Second)
	if d, ok := RetryAfter(err); !ok || d != 42*time.Second {
		t.Errorf("RetryAfter = %v, %v", d, ok)
	}
	if !errors.Is(err, ErrTransient) || !errors.Is(err, base) {
		t.Error("WithRetryAfter broke the error chain")
	}
	if _, ok := RetryAfter(base); ok {
		t.Error("hint found where none attached")
	}
	if WithRetryAfter(nil, time.Second) != nil {
		t.Error("WithRetryAfter(nil) != nil")
	}
}

func fastPolicy() *Policy {
	return &Policy{BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	p := fastPolicy()
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts < 3 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("err = %v, attempts = %d", err, attempts)
	}
}

func TestDoTerminalStopsImmediately(t *testing.T) {
	p := fastPolicy()
	cause := errors.New("forged signature")
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return Terminal(cause)
	})
	if attempts != 1 {
		t.Errorf("terminal error retried: %d attempts", attempts)
	}
	if !errors.Is(err, ErrTerminal) || !errors.Is(err, cause) {
		t.Errorf("err = %v", err)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := fastPolicy()
	p.MaxAttempts = 3
	cause := &net.OpError{Op: "read", Err: syscall.ECONNRESET}
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		return cause
	})
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	if !errors.Is(err, ErrTransient) || !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("exhaustion error = %v", err)
	}
}

func TestDoDefaultClassifierApplies(t *testing.T) {
	// Unmarked network errors classify transient and retry.
	p := fastPolicy()
	attempts := 0
	err := p.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts == 1 {
			return &net.OpError{Op: "read", Err: syscall.ECONNRESET}
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("err = %v, attempts = %d", err, attempts)
	}
}

func TestDoHonorsRetryAfterFloor(t *testing.T) {
	p := fastPolicy()
	var gotBackoff time.Duration
	ctx, cancel := context.WithCancel(context.Background())
	p.OnRetry = func(attempt int, err error, backoff time.Duration) {
		gotBackoff = backoff
		cancel() // don't actually sleep out the floor in a unit test
	}
	err := p.Do(ctx, func(context.Context) error {
		return WithRetryAfter(Transient(errors.New("503")), 30*time.Second)
	})
	if gotBackoff < 30*time.Second {
		t.Errorf("backoff %v below Retry-After floor", gotBackoff)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestDoCancelledDuringBackoff(t *testing.T) {
	p := &Policy{BaseDelay: time.Hour, MaxDelay: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func(context.Context) error {
			return Transient(errors.New("flaky"))
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrTerminal) || !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation mid-backoff")
	}
}

// TestDoCancelledDuringBackoffNoGoroutineLeak cancels precisely inside
// the backoff sleep (the OnRetry hook fires immediately before it) and
// asserts Do returns promptly and leaves no stray timer goroutine
// behind — the process goroutine count settles back to its baseline.
func TestDoCancelledDuringBackoffNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := &Policy{BaseDelay: time.Hour, MaxDelay: time.Hour}
		ctx, cancel := context.WithCancel(context.Background())
		p.OnRetry = func(int, error, time.Duration) { cancel() }
		start := time.Now()
		err := p.Do(ctx, func(context.Context) error {
			return Transient(errors.New("flaky"))
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ctx.Err() from mid-backoff cancel", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("Do took %v to notice cancellation during a 1h backoff", elapsed)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before {
		t.Errorf("goroutines grew %d -> %d after cancelled backoffs", before, after)
	}
}

func TestDoCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	attempts := 0
	err := fastPolicy().Do(ctx, func(context.Context) error {
		attempts++
		return nil
	})
	if attempts != 0 || !errors.Is(err, context.Canceled) {
		t.Errorf("attempts = %d, err = %v", attempts, err)
	}
}

func TestAttemptTimeoutIsTransient(t *testing.T) {
	p := fastPolicy()
	p.AttemptTimeout = 5 * time.Millisecond
	p.MaxAttempts = 2
	attempts := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		attempts++
		if attempts == 1 {
			<-ctx.Done() // hang until the per-attempt deadline fires
			return ctx.Err()
		}
		return nil
	})
	if err != nil || attempts != 2 {
		t.Fatalf("err = %v, attempts = %d (per-attempt timeout must retry)", err, attempts)
	}
}

func TestBackoffFullJitterBoundsAndDeterminism(t *testing.T) {
	mk := func() *Policy {
		rng := rand.New(rand.NewSource(7))
		return &Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Jitter: rng.Float64}
	}
	a, b := mk(), mk()
	for attempt := 1; attempt <= 10; attempt++ {
		da := a.Backoff(attempt)
		if db := b.Backoff(attempt); da != db {
			t.Fatalf("seeded backoff not reproducible: %v vs %v", da, db)
		}
		ceiling := min(time.Second, 100*time.Millisecond<<(attempt-1))
		if da < 0 || da >= ceiling {
			t.Errorf("attempt %d: backoff %v outside [0, %v)", attempt, da, ceiling)
		}
	}
}

func TestNilPolicyDefaults(t *testing.T) {
	var p *Policy
	if p.attempts() != 4 {
		t.Errorf("nil policy attempts = %d", p.attempts())
	}
	attempts := 0
	err := (&Policy{BaseDelay: time.Microsecond}).Do(nil, func(context.Context) error { //nolint:staticcheck // nil ctx tolerated by design
		attempts++
		return Transient(errors.New("x"))
	})
	if attempts != 4 || !errors.Is(err, ErrTransient) {
		t.Errorf("attempts = %d, err = %v", attempts, err)
	}
}
