// Package resilience implements the retry and error-classification
// layer for the networked half of the paper's §5.1/§7 usage model:
// players on consumer broadband downloading applications and resolving
// keys from remote trust services. Exactly those links fail in
// practice, so every network operation in the stack is wrapped in a
// Policy: bounded, context-aware retries with exponential backoff and
// full jitter, per-attempt and overall deadlines, and a typed
// transient-vs-terminal split that callers match with errors.Is.
//
// The classification contract: ErrTransient marks failures worth
// retrying (resets, timeouts, truncated bodies, 5xx); ErrTerminal
// marks failures where retrying cannot help (4xx, malformed payloads,
// context cancellation). Both marks wrap the underlying error, so
// sentinel checks like errors.Is(err, server.ErrNotFound) keep
// working through the classification layer.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"
)

// Classification sentinels, matchable with errors.Is.
var (
	// ErrTransient marks an error as retryable: the operation may
	// succeed if repeated (connection reset, timeout, 5xx, truncation).
	ErrTransient = errors.New("resilience: transient failure")
	// ErrTerminal marks an error as permanent: retrying cannot help
	// (4xx, malformed response, cancelled context).
	ErrTerminal = errors.New("resilience: terminal failure")
)

// classified wraps an error with a retryability mark. Unwrap exposes
// both the mark and the cause so errors.Is matches either.
type classified struct {
	mark  error // ErrTransient or ErrTerminal
	cause error
}

func (c *classified) Error() string { return c.mark.Error() + ": " + c.cause.Error() }

func (c *classified) Unwrap() []error { return []error{c.mark, c.cause} }

// Transient marks err as retryable. A nil or already-classified error
// is returned unchanged.
func Transient(err error) error { return mark(ErrTransient, err) }

// Terminal marks err as permanent. A nil or already-classified error
// is returned unchanged.
func Terminal(err error) error { return mark(ErrTerminal, err) }

func mark(kind, err error) error {
	if err == nil || errors.Is(err, ErrTransient) || errors.Is(err, ErrTerminal) {
		return err
	}
	return &classified{mark: kind, cause: err}
}

// IsTransient reports whether err is marked (or classifiable as)
// retryable.
func IsTransient(err error) bool { return errors.Is(Classify(err), ErrTransient) }

// IsTerminal reports whether err is marked (or classifiable as)
// permanent.
func IsTerminal(err error) bool { return errors.Is(Classify(err), ErrTerminal) }

// Classify applies the default taxonomy to an unmarked error:
// context cancellation and deadline expiry are terminal (the caller
// gave up; retrying past a cancelled context is a bug), while network
// timeouts, connection resets/refusals, broken pipes, and unexpected
// EOFs (truncated bodies) are transient. Anything unrecognized is
// terminal: fail closed rather than hammer a confused endpoint.
// Already-classified errors pass through unchanged.
func Classify(err error) error {
	if err == nil || errors.Is(err, ErrTransient) || errors.Is(err, ErrTerminal) {
		return err
	}
	// The bare context sentinels mean the caller's own deadline or
	// cancellation fired: terminal. They are checked by identity
	// before the net.Error probe because context.DeadlineExceeded
	// itself reports Timeout() == true.
	if err == context.Canceled || err == context.DeadlineExceeded { //nolint:errorlint // identity on purpose
		return &classified{mark: ErrTerminal, cause: err}
	}
	// Timed-out network operations are checked before the wrapped
	// context sentinels: an http.Client deadline surfaces as a
	// net.Error that *wraps* context.DeadlineExceeded, and a slow
	// peer is worth retrying even though a cancelled caller is not.
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return &classified{mark: ErrTransient, cause: err}
	}
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return &classified{mark: ErrTerminal, cause: err}
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.ErrUnexpectedEOF):
		return &classified{mark: ErrTransient, cause: err}
	}
	return &classified{mark: ErrTerminal, cause: err}
}

// retryAfterError carries a server-provided backoff hint
// (Retry-After) through the classification chain.
type retryAfterError struct {
	cause error
	after time.Duration
}

func (r *retryAfterError) Error() string { return r.cause.Error() }

func (r *retryAfterError) Unwrap() error { return r.cause }

// WithRetryAfter attaches a server-provided minimum backoff (e.g. a
// parsed Retry-After header) to err. Do waits at least this long
// before the next attempt.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil || after <= 0 {
		return err
	}
	return &retryAfterError{cause: err, after: after}
}

// RetryAfter extracts a backoff hint attached with WithRetryAfter.
func RetryAfter(err error) (time.Duration, bool) {
	var r *retryAfterError
	if errors.As(err, &r) {
		return r.after, true
	}
	return 0, false
}

// Policy configures retry behaviour. The zero value is usable and
// applies the defaults documented on each field.
type Policy struct {
	// MaxAttempts bounds the total number of attempts (not retries);
	// 0 means 4.
	MaxAttempts int
	// BaseDelay is the first backoff ceiling; 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff ceiling; 0 means 5s.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt; 0 means no
	// per-attempt deadline beyond the caller's context.
	AttemptTimeout time.Duration
	// Jitter returns a uniform value in [0,1) for full-jitter backoff.
	// Nil uses the process-global PRNG. Tests inject a seeded source
	// for reproducible schedules.
	Jitter func() float64
	// Classify maps an attempt error to transient/terminal; nil uses
	// the package default Classify.
	Classify func(error) error
	// OnRetry, if set, observes each scheduled retry: the attempt
	// that failed (1-based), its error, and the backoff chosen.
	OnRetry func(attempt int, err error, backoff time.Duration)
}

func (p *Policy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *Policy) base() time.Duration {
	if p == nil || p.BaseDelay <= 0 {
		return 100 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *Policy) cap() time.Duration {
	if p == nil || p.MaxDelay <= 0 {
		return 5 * time.Second
	}
	return p.MaxDelay
}

func (p *Policy) classify(err error) error {
	if p != nil && p.Classify != nil {
		return p.Classify(err)
	}
	return Classify(err)
}

var (
	jitterMu sync.Mutex
	// jitterRand feeds backoff randomization only — never key
	// material — so math/rand is appropriate (and keeps this package
	// dependency-light and seedable).
	jitterRand = rand.New(rand.NewSource(1))
)

func (p *Policy) jitter() float64 {
	if p != nil && p.Jitter != nil {
		return p.Jitter()
	}
	jitterMu.Lock()
	defer jitterMu.Unlock()
	return jitterRand.Float64()
}

// Backoff computes the full-jitter delay before the retry following
// the given 1-based failed attempt: uniform in [0, min(MaxDelay,
// BaseDelay·2^(attempt-1))).
func (p *Policy) Backoff(attempt int) time.Duration {
	ceiling := p.base() << (attempt - 1)
	if ceiling <= 0 || ceiling > p.cap() { // <<-overflow or past cap
		ceiling = p.cap()
	}
	return time.Duration(p.jitter() * float64(ceiling))
}

// Do runs op under the policy: each attempt gets a child context
// bounded by AttemptTimeout, transient failures back off (full
// jitter, honoring any WithRetryAfter hint as a floor) and retry
// until MaxAttempts, terminal failures and parent-context
// cancellation return immediately. The returned error is the last
// attempt's classified error, wrapped with the attempt count.
func (p *Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := p.attempts()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return Terminal(fmt.Errorf("resilience: giving up before attempt %d: %w", attempt, cerr))
		}
		err = p.runAttempt(ctx, op)
		if err == nil {
			return nil
		}
		err = p.classify(err)
		if errors.Is(err, ErrTerminal) {
			return err
		}
		if attempt >= attempts {
			return Transient(fmt.Errorf("resilience: %d attempts exhausted: %w", attempts, err))
		}
		backoff := p.Backoff(attempt)
		if floor, ok := RetryAfter(err); ok && floor > backoff {
			backoff = floor
		}
		if p != nil && p.OnRetry != nil {
			p.OnRetry(attempt, err, backoff)
		}
		if backoff > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				timer.Stop()
				return Terminal(fmt.Errorf("resilience: cancelled during backoff after attempt %d: %w", attempt, ctx.Err()))
			case <-timer.C:
			}
		}
	}
}

// runAttempt executes one attempt under the per-attempt deadline. A
// per-attempt timeout that fires while the parent context is still
// live is a transient failure (the next attempt may succeed); the
// parent expiring is terminal.
func (p *Policy) runAttempt(ctx context.Context, op func(ctx context.Context) error) error {
	if p == nil || p.AttemptTimeout <= 0 {
		return op(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, p.AttemptTimeout)
	defer cancel()
	err := op(actx)
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		return Transient(fmt.Errorf("resilience: attempt timed out after %v: %w", p.AttemptTimeout, err))
	}
	return err
}
