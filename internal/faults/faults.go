// Package faults is a deterministic fault-injection layer for the
// stack's network paths. Nothing in the production pipeline depends on
// it; tests compose it under the Downloader and the XKMS client to
// provoke exactly the failures the paper's §5.1/§7 usage model meets
// in the wild — connection resets, timeouts, stalled and slow reads,
// truncated bodies, flipped bytes, and scripted 5xx bursts with
// Retry-After — and prove the verify→decrypt pipeline either recovers
// or fails closed.
//
// Faults are driven by a Schedule: a scripted sequence consumed one
// fault per intercepted request (or accepted connection). Schedules
// are either written out literally or generated from a seed, so every
// test run replays the identical failure pattern.
package faults

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Kind enumerates the injectable fault modes.
type Kind int

// Fault modes.
const (
	// None passes the request through untouched.
	None Kind = iota
	// Reset simulates a TCP connection reset (ECONNRESET).
	Reset
	// Timeout fails the request with a net.Error whose Timeout() is
	// true, as a timed-out dial or read would.
	Timeout
	// Stall delays the response body's first read by Delay (a slow or
	// hung peer). If the request context expires first, the read
	// fails with the context error.
	Stall
	// Truncate cuts the response body after Bytes bytes and then
	// fails the read with io.ErrUnexpectedEOF, keeping the original
	// Content-Length (an interrupted transfer).
	Truncate
	// Corrupt flips one bit of the response body at offset
	// Bytes mod len(body), preserving length (on-the-wire damage
	// that only content verification can catch).
	Corrupt
	// Status replaces the response with an HTTP error status
	// (Code, default 503) and an optional Retry-After header.
	Status
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Reset:
		return "reset"
	case Timeout:
		return "timeout"
	case Stall:
		return "stall"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	case Status:
		return "status"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one scheduled failure.
type Fault struct {
	Kind Kind
	// Bytes is the truncation length (Truncate) or corruption offset
	// (Corrupt).
	Bytes int64
	// Delay is the stall duration (Stall).
	Delay time.Duration
	// Code is the injected HTTP status (Status); 0 means 503.
	Code int
	// RetryAfter, when positive, is advertised in a Retry-After
	// header on an injected Status response (rounded up to whole
	// seconds, the header's coarsest form).
	RetryAfter time.Duration
}

// Schedule is a concurrency-safe scripted fault sequence. Each
// intercepted operation consumes the next fault; once the script is
// exhausted every subsequent operation passes through clean.
type Schedule struct {
	mu     sync.Mutex
	faults []Fault
	next   int
}

// NewSchedule scripts an explicit fault sequence.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{faults: append([]Fault(nil), faults...)}
}

// Seeded generates a reproducible n-fault schedule drawn from the
// given kinds (all kinds except None when empty). The same seed
// always yields the same script, so a failing fuzz-style run can be
// replayed exactly.
func Seeded(seed int64, n int, kinds ...Kind) *Schedule {
	if len(kinds) == 0 {
		kinds = []Kind{Reset, Timeout, Stall, Truncate, Corrupt, Status}
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]Fault, n)
	for i := range faults {
		f := Fault{Kind: kinds[rng.Intn(len(kinds))]}
		switch f.Kind {
		case Truncate, Corrupt:
			f.Bytes = int64(rng.Intn(256))
		case Stall:
			f.Delay = time.Duration(1+rng.Intn(20)) * time.Millisecond
		case Status:
			f.Code = []int{500, 502, 503, 504}[rng.Intn(4)]
			if f.Code == 503 {
				f.RetryAfter = time.Second
			}
		}
		faults[i] = f
	}
	return &Schedule{faults: faults}
}

// Flap scripts a flapping dependency: alternating blocks of down
// (fault-injected) and up (clean) requests, starting down, for cycles
// repetitions. A 50%-available service is Flap(n, k, k, f): k failed
// requests, k clean, k failed, ... — the convergence pattern the
// breaker chaos matrix drives. The zero Fault defaults to Reset so a
// "down" block always injects a real failure.
func Flap(cycles, down, up int, fail Fault) *Schedule {
	if fail.Kind == None {
		fail.Kind = Reset
	}
	var faults []Fault
	for c := 0; c < cycles; c++ {
		for i := 0; i < down; i++ {
			faults = append(faults, fail)
		}
		for i := 0; i < up; i++ {
			faults = append(faults, Fault{})
		}
	}
	return &Schedule{faults: faults}
}

// Brownout scripts a bounded outage: n consecutive Status responses
// (code, default 503) advertising retryAfter, then clean — a service
// shedding load that recovers once the pressure passes.
func Brownout(n, code int, retryAfter time.Duration) *Schedule {
	if code == 0 {
		code = http.StatusServiceUnavailable
	}
	faults := make([]Fault, n)
	for i := range faults {
		faults[i] = Fault{Kind: Status, Code: code, RetryAfter: retryAfter}
	}
	return &Schedule{faults: faults}
}

// Take consumes and returns the next scheduled fault ({Kind: None}
// once exhausted).
func (s *Schedule) Take() Fault {
	if s == nil {
		return Fault{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.faults) {
		return Fault{}
	}
	f := s.faults[s.next]
	s.next++
	return f
}

// Remaining reports how many scripted faults have not fired yet.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.faults) - s.next
}

// Reset rewinds the schedule to its start.
func (s *Schedule) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next = 0
}

// timeoutError satisfies net.Error with Timeout() true, matching how
// a real dial/read deadline surfaces to http.Client callers.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faults: injected timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// Transport is a composable http.RoundTripper that injects scheduled
// faults into matching requests and delegates the rest to Base.
type Transport struct {
	// Base handles the real exchange; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Schedule supplies the fault script; a nil schedule passes
	// everything through.
	Schedule *Schedule
	// Match limits injection to selected requests; nil matches all.
	Match func(*http.Request) bool
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Match != nil && !t.Match(req) {
		return t.base().RoundTrip(req)
	}
	f := t.Schedule.Take()
	switch f.Kind {
	case Reset:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case Timeout:
		return nil, timeoutError{}
	case Status:
		code := f.Code
		if code == 0 {
			code = http.StatusServiceUnavailable
		}
		body := fmt.Sprintf("faults: injected %d %s", code, http.StatusText(code))
		resp := &http.Response{
			StatusCode:    code,
			Status:        fmt.Sprintf("%d %s", code, http.StatusText(code)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        make(http.Header),
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		if f.RetryAfter > 0 {
			secs := int64((f.RetryAfter + time.Second - 1) / time.Second)
			resp.Header.Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		return resp, nil
	}

	resp, err := t.base().RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch f.Kind {
	case Stall:
		resp.Body = &stallBody{ReadCloser: resp.Body, delay: f.Delay, done: req.Context().Done(), ctxErr: req.Context().Err}
	case Truncate:
		resp.Body = &truncateBody{ReadCloser: resp.Body, remaining: f.Bytes}
	case Corrupt:
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(data) > 0 {
			data[int(f.Bytes)%len(data)] ^= 0x01
		}
		resp.Body = io.NopCloser(bytes.NewReader(data))
		resp.ContentLength = int64(len(data))
	}
	return resp, nil
}

// stallBody delays the first read, aborting early if the request
// context ends (which is how a client timeout observes a hung peer).
type stallBody struct {
	io.ReadCloser
	delay   time.Duration
	done    <-chan struct{}
	ctxErr  func() error
	stalled bool
}

func (b *stallBody) Read(p []byte) (int, error) {
	if !b.stalled {
		b.stalled = true
		timer := time.NewTimer(b.delay)
		defer timer.Stop()
		select {
		case <-b.done:
			return 0, b.ctxErr()
		case <-timer.C:
		}
	}
	return b.ReadCloser.Read(p)
}

// truncateBody cuts the stream after the scheduled byte count and
// reports io.ErrUnexpectedEOF, like a connection dropped mid-body.
type truncateBody struct {
	io.ReadCloser
	remaining int64
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.ReadCloser.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF || (err == nil && b.remaining <= 0) {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

// Listener wraps a net.Listener, applying one scheduled fault to each
// accepted connection. It exercises the server-side path the
// Transport cannot: a peer that drops, stalls, or truncates at the
// socket layer.
type Listener struct {
	net.Listener
	// Schedule supplies per-connection faults; nil passes through. Set
	// it before the listener starts accepting; to change the script
	// mid-run (e.g. partitioning a live peer), use Swap instead.
	Schedule *Schedule

	// swapped, when set via Swap, takes precedence over Schedule. It
	// lets a test flip a serving listener into (or out of) a fault mode
	// while Accept runs concurrently, without racing on the field.
	swapped atomic.Pointer[Schedule]
}

// Swap atomically replaces the listener's fault schedule, taking
// effect from the next accepted connection. Passing nil restores the
// original Schedule field.
func (l *Listener) Swap(s *Schedule) {
	l.swapped.Store(s)
}

// schedule returns the active script: the swapped-in one if present,
// else the static field.
func (l *Listener) schedule() *Schedule {
	if s := l.swapped.Load(); s != nil {
		return s
	}
	return l.Schedule
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	f := l.schedule().Take()
	if f.Kind == None {
		return c, nil
	}
	return &faultConn{Conn: c, fault: f}, nil
}

// faultConn applies a single fault to one connection: Reset closes
// and errors on first use, Stall delays the first read, Truncate
// closes after the scheduled number of bytes has been written.
type faultConn struct {
	net.Conn
	fault   Fault
	written int64
	stalled bool
}

func (c *faultConn) Read(p []byte) (int, error) {
	switch c.fault.Kind {
	case Reset:
		c.Conn.Close()
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case Stall:
		if !c.stalled {
			c.stalled = true
			time.Sleep(c.fault.Delay)
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	switch c.fault.Kind {
	case Reset:
		c.Conn.Close()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: syscall.ECONNRESET}
	case Truncate:
		if c.written >= c.fault.Bytes {
			c.Conn.Close()
			return 0, &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}
		}
		if int64(len(p)) > c.fault.Bytes-c.written {
			p = p[:c.fault.Bytes-c.written]
		}
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	if err == nil && c.fault.Kind == Truncate && c.written >= c.fault.Bytes {
		c.Conn.Close()
		return n, &net.OpError{Op: "write", Net: "tcp", Err: syscall.EPIPE}
	}
	return n, err
}
