package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"
)

var payload = bytes.Repeat([]byte("optical-disc-application."), 40) // 1000 bytes

func originServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
}

func clientWith(s *Schedule) *http.Client {
	return &http.Client{Timeout: 5 * time.Second, Transport: &Transport{Schedule: s}}
}

func TestScheduleScripted(t *testing.T) {
	s := NewSchedule(Fault{Kind: Reset}, Fault{Kind: Timeout})
	if got := s.Take().Kind; got != Reset {
		t.Errorf("first = %v", got)
	}
	if got := s.Take().Kind; got != Timeout {
		t.Errorf("second = %v", got)
	}
	for i := 0; i < 3; i++ {
		if got := s.Take().Kind; got != None {
			t.Errorf("exhausted schedule returned %v", got)
		}
	}
	s.Reset()
	if got := s.Take().Kind; got != Reset {
		t.Errorf("after Reset = %v", got)
	}
	var nilSchedule *Schedule
	if nilSchedule.Take().Kind != None || nilSchedule.Remaining() != 0 {
		t.Error("nil schedule must pass through")
	}
}

func TestSeededReproducible(t *testing.T) {
	a, b := Seeded(42, 32), Seeded(42, 32)
	for i := 0; i < 32; i++ {
		fa, fb := a.Take(), b.Take()
		if fa != fb {
			t.Fatalf("fault %d diverged: %+v vs %+v", i, fa, fb)
		}
	}
	c, d := Seeded(1, 32), Seeded(2, 32)
	same := true
	for i := 0; i < 32; i++ {
		if c.Take() != d.Take() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

func TestTransportReset(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Reset}))
	if _, err := hc.Get(srv.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("err = %v, want ECONNRESET", err)
	}
	// Schedule exhausted: next request passes through.
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); !bytes.Equal(b, payload) {
		t.Error("clean request corrupted")
	}
}

func TestTransportTimeout(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Timeout}))
	_, err := hc.Get(srv.URL)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("err = %v, want net.Error timeout", err)
	}
}

func TestTransportStatusWithRetryAfter(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Status, Code: 503, RetryAfter: 2 * time.Second}))
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q", got)
	}
}

func TestTransportTruncate(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Truncate, Bytes: 100}))
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read err = %v, want ErrUnexpectedEOF", err)
	}
	if len(b) != 100 || !bytes.Equal(b, payload[:100]) {
		t.Errorf("got %d bytes, want the first 100", len(b))
	}
}

func TestTransportCorrupt(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Corrupt, Bytes: 17}))
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != len(payload) {
		t.Fatalf("corruption changed length: %d != %d", len(b), len(payload))
	}
	diff := 0
	for i := range b {
		if b[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 || b[17] == payload[17] {
		t.Errorf("want exactly one flipped byte at 17, got %d diffs", diff)
	}
}

func TestTransportStallHonorsContext(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Stall, Delay: time.Minute}))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	resp, err := hc.Do(req)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("stalled read succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stall ignored context: took %v", elapsed)
	}
}

func TestTransportStallDelaysThenDelivers(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	hc := clientWith(NewSchedule(Fault{Kind: Stall, Delay: 30 * time.Millisecond}))
	start := time.Now()
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || !bytes.Equal(b, payload) {
		t.Fatalf("read = %d bytes, %v", len(b), err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("stall too short: %v", elapsed)
	}
}

func TestTransportMatchScopesInjection(t *testing.T) {
	srv := originServer()
	defer srv.Close()
	sched := NewSchedule(Fault{Kind: Reset})
	hc := &http.Client{Timeout: 5 * time.Second, Transport: &Transport{
		Schedule: sched,
		Match:    func(r *http.Request) bool { return r.URL.Path == "/target" },
	}}
	if resp, err := hc.Get(srv.URL + "/other"); err != nil {
		t.Fatalf("non-matching request failed: %v", err)
	} else {
		resp.Body.Close()
	}
	if sched.Remaining() != 1 {
		t.Error("non-matching request consumed a fault")
	}
	if _, err := hc.Get(srv.URL + "/target"); !errors.Is(err, syscall.ECONNRESET) {
		t.Errorf("matching request err = %v", err)
	}
}

func TestListenerReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &Listener{Listener: ln, Schedule: NewSchedule(Fault{Kind: Reset})}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	})}
	go srv.Serve(fl) //nolint:errcheck
	defer srv.Close()

	// Each request uses a fresh connection so the per-connection
	// fault schedule lines up with the request sequence.
	hc := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	if _, err := hc.Get("http://" + ln.Addr().String()); err == nil {
		t.Error("reset connection served a response")
	}
	resp, err := hc.Get("http://" + ln.Addr().String())
	if err != nil {
		t.Fatalf("clean follow-up failed: %v", err)
	}
	defer resp.Body.Close()
	if b, _ := io.ReadAll(resp.Body); !bytes.Equal(b, payload) {
		t.Error("clean follow-up corrupted")
	}
}

func TestListenerTruncate(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &Listener{Listener: ln, Schedule: NewSchedule(Fault{Kind: Truncate, Bytes: 64})}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	})}
	go srv.Serve(fl) //nolint:errcheck
	defer srv.Close()

	hc := &http.Client{Timeout: 5 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := hc.Get("http://" + ln.Addr().String())
	if err == nil {
		defer resp.Body.Close()
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Error("truncated connection delivered a complete body")
		}
	}
}

func TestFlapSchedule(t *testing.T) {
	s := Flap(2, 3, 2, Fault{Kind: Timeout})
	want := []Kind{Timeout, Timeout, Timeout, None, None, Timeout, Timeout, Timeout, None, None}
	if s.Remaining() != len(want) {
		t.Fatalf("Remaining = %d, want %d", s.Remaining(), len(want))
	}
	for i, k := range want {
		if got := s.Take().Kind; got != k {
			t.Fatalf("fault %d = %v, want %v", i, got, k)
		}
	}
	// Exhausted: everything after the script passes clean.
	if got := s.Take().Kind; got != None {
		t.Errorf("post-script fault = %v", got)
	}
}

func TestFlapDefaultsToReset(t *testing.T) {
	s := Flap(1, 1, 0, Fault{})
	if got := s.Take().Kind; got != Reset {
		t.Errorf("zero-fault flap injects %v, want Reset", got)
	}
}

func TestBrownoutSchedule(t *testing.T) {
	s := Brownout(3, 0, 2*time.Second)
	for i := 0; i < 3; i++ {
		f := s.Take()
		if f.Kind != Status || f.Code != http.StatusServiceUnavailable || f.RetryAfter != 2*time.Second {
			t.Fatalf("brownout fault %d = %+v", i, f)
		}
	}
	if got := s.Take().Kind; got != None {
		t.Errorf("brownout did not recover: %v", got)
	}
}
