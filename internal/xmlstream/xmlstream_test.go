package xmlstream

import (
	"errors"
	"strings"
	"testing"
)

// recordingHandler flattens the token stream into a comparable event
// log, copying every reused buffer as the Handler contract requires.
type recordingHandler struct {
	events []string
}

func (r *recordingHandler) StartElement(prefix, local string, attrs []Attr) error {
	ev := "start " + renderName(prefix, local)
	for _, a := range attrs {
		ev += " " + a.Name() + "=" + a.Value
	}
	r.events = append(r.events, ev)
	return nil
}

func (r *recordingHandler) EndElement(prefix, local string) error {
	r.events = append(r.events, "end "+renderName(prefix, local))
	return nil
}

func (r *recordingHandler) Text(data []byte) error {
	r.events = append(r.events, "text "+string(data))
	return nil
}

func (r *recordingHandler) Comment(data []byte) error {
	r.events = append(r.events, "comment "+string(data))
	return nil
}

func (r *recordingHandler) ProcInst(target string, data []byte) error {
	r.events = append(r.events, "pi "+target+" "+string(data))
	return nil
}

func renderName(prefix, local string) string {
	if prefix == "" {
		return local
	}
	return prefix + ":" + local
}

func parseString(t *testing.T, doc string, opts Options) (*recordingHandler, error) {
	t.Helper()
	h := &recordingHandler{}
	return h, Parse(strings.NewReader(doc), opts, h)
}

func TestParseTokenStream(t *testing.T) {
	h, err := parseString(t,
		`<?xml version="1.0"?><a xmlns:p="urn:p" k="v"><p:b>hi</p:b><!-- c --><?app data?></a>`,
		Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"start a xmlns:p=urn:p k=v",
		"start p:b",
		"text hi",
		"end p:b",
		"comment  c ",
		"pi app data",
		"end a",
	}
	if len(h.events) != len(want) {
		t.Fatalf("events = %q, want %q", h.events, want)
	}
	for i := range want {
		if h.events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, h.events[i], want[i])
		}
	}
}

func TestParseRejectsDoctype(t *testing.T) {
	if _, err := parseString(t, `<!DOCTYPE r [<!ENTITY x "y">]><r/>`, Options{}); !errors.Is(err, ErrDoctype) {
		t.Errorf("doctype err = %v, want ErrDoctype", err)
	}
	// Opt-in: the declaration is swallowed, the document parses.
	h, err := parseString(t, `<!DOCTYPE r><r/>`, Options{AllowDoctype: true})
	if err != nil {
		t.Fatalf("AllowDoctype: %v", err)
	}
	if len(h.events) != 2 {
		t.Errorf("AllowDoctype events = %q", h.events)
	}
}

func TestParseLimits(t *testing.T) {
	deep := strings.Repeat("<a>", 6) + strings.Repeat("</a>", 6)
	if _, err := parseString(t, deep, Options{MaxDepth: 5}); err == nil {
		t.Error("depth limit not enforced")
	}
	if _, err := parseString(t, deep, Options{MaxDepth: 6}); err != nil {
		t.Errorf("depth exactly at limit rejected: %v", err)
	}
	if _, err := parseString(t, `<a><b/><b/><b/></a>`, Options{MaxTokens: 4}); err == nil {
		t.Error("token limit not enforced")
	}
}

func TestParseWellFormedness(t *testing.T) {
	bad := map[string]string{
		"mismatched end":      `<a><b></a></b>`,
		"unclosed":            `<a><b>`,
		"multiple roots":      `<a/><b/>`,
		"no root":             `   `,
		"stray chardata":      `x<a/>`,
		"duplicate attr":      `<a k="1" k="2"/>`,
		"duplicate wide attr": `<a a1="" a2="" a3="" a4="" a5="" a6="" a7="" a8="" a9="" a10="" a11="" a12="" a13="" a14="" a15="" a16="" a1=""/>`,
	}
	for label, doc := range bad {
		if _, err := parseString(t, doc, Options{}); err == nil {
			t.Errorf("%s accepted: %q", label, doc)
		}
	}
}

// TestParseHandlerErrorStopsParse: the first handler error aborts the
// pass and surfaces unchanged.
func TestParseHandlerErrorStopsParse(t *testing.T) {
	sentinel := errors.New("stop here")
	h := &failingHandler{recordingHandler: &recordingHandler{}, failOn: "b", err: sentinel}
	err := Parse(strings.NewReader(`<a><b/><c/></a>`), Options{}, h)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	for _, ev := range h.events {
		if ev == "start c" {
			t.Error("parse continued past the failing handler")
		}
	}
}

type failingHandler struct {
	*recordingHandler
	failOn string
	err    error
}

func (f *failingHandler) StartElement(prefix, local string, attrs []Attr) error {
	if local == f.failOn {
		return f.err
	}
	return f.recordingHandler.StartElement(prefix, local, attrs)
}
