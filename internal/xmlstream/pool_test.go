package xmlstream

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestPooledParserReuseNoStateBleed hammers Parse from 8 goroutines,
// each with its own distinct document shape, and checks every event
// log against that goroutine's expectation. The pooled parser's stack
// and attribute buffers are handed between goroutines by sync.Pool;
// any state bleeding across a Get/Put boundary (a stale open-element
// stack, attributes left over from another document) shows up either
// as a wrong event log or as a race under -race.
//
// Error-path recycling is exercised too: odd iterations parse a
// deliberately malformed twin, so parsers re-enter the pool from early
// returns with a non-empty stack and must still come back clean.
func TestPooledParserReuseNoStateBleed(t *testing.T) {
	const (
		goroutines = 8
		iterations = 200
	)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()

			// Per-goroutine document: unique element names, attribute
			// values, and depth so cross-contamination cannot produce a
			// matching log by coincidence.
			el := fmt.Sprintf("g%d", g)
			doc := fmt.Sprintf(
				`<%[1]s id="%[2]d"><inner%[2]d a="x%[2]d" b="y%[2]d">t%[2]d</inner%[2]d></%[1]s>`,
				el, g)
			want := []string{
				fmt.Sprintf("start %s id=%d", el, g),
				fmt.Sprintf("start inner%d a=x%d b=y%d", g, g, g),
				fmt.Sprintf("text t%d", g),
				fmt.Sprintf("end inner%d", g),
				fmt.Sprintf("end %s", el),
			}
			// Unclosed inner element: Parse fails after pushing two
			// frames, recycling a dirty parser into the pool.
			badDoc := fmt.Sprintf(`<%[1]s><inner%[2]d>`, el, g)

			for i := 0; i < iterations; i++ {
				if i%2 == 1 {
					if err := Parse(strings.NewReader(badDoc), Options{}, &recordingHandler{}); err == nil {
						errs <- fmt.Errorf("goroutine %d: malformed document parsed cleanly", g)
						return
					}
					continue
				}
				h := &recordingHandler{}
				if err := Parse(strings.NewReader(doc), Options{}, h); err != nil {
					errs <- fmt.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if len(h.events) != len(want) {
					errs <- fmt.Errorf("goroutine %d iter %d: events %q, want %q", g, i, h.events, want)
					return
				}
				for j := range want {
					if h.events[j] != want[j] {
						errs <- fmt.Errorf("goroutine %d iter %d: event %d = %q, want %q (state bleed?)",
							g, i, j, h.events[j], want[j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
