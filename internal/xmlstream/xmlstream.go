// Package xmlstream is the module's single hardened XML tokenizer: a
// SAX-style streaming parser over io.Reader that feeds handlers one
// token at a time, never materializing the document.
//
// It exists so the cold verification path can be a single pass — the
// same token stream that builds a DOM (xmldom.StreamBuilder) can
// simultaneously drive incremental canonicalization and digesting
// (c14n.Stream), which is how the verification library computes its
// cache key without a second tree walk. Because xmldom's tree parser is
// itself built on this package, streaming and DOM pipelines agree on
// accept/reject verdicts by construction; the differential fuzz targets
// pin that property.
//
// The hardening the XML security processing model requires lives here,
// below every consumer: DOCTYPE rejection (entity expansion, default
// attributes), element nesting depth and total token limits, duplicate
// attribute rejection, matching end tags, and a single document
// element. Namespace prefixes are preserved exactly as written — this
// is a raw tokenizer, not a namespace-resolving one — because
// canonicalization and signature processing need the author's prefixes.
package xmlstream

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Options controls parsing limits.
type Options struct {
	// AllowDoctype permits a document type declaration. Doctype
	// declarations are rejected by default: the XML security processing
	// model treats DTDs (entity expansion, default attributes) as an
	// attack surface.
	AllowDoctype bool
	// MaxDepth bounds element nesting; 0 means the default of 512.
	MaxDepth int
	// MaxTokens bounds the total token count; 0 means the default of
	// 4 * 1024 * 1024.
	MaxTokens int
}

const (
	defaultMaxDepth  = 512
	defaultMaxTokens = 4 << 20
)

// ErrDoctype is returned when a document contains a DOCTYPE declaration
// and Options.AllowDoctype is false.
var ErrDoctype = errors.New("xmlstream: document type declarations are not allowed")

// Attr is one attribute exactly as written: prefix split from local
// name, namespace declarations included.
type Attr struct {
	Prefix string
	Local  string
	Value  string
}

// Name renders the attribute name as written.
func (a Attr) Name() string {
	if a.Prefix == "" {
		return a.Local
	}
	return a.Prefix + ":" + a.Local
}

// IsNamespaceDecl reports whether the attribute declares a namespace
// (xmlns="..." or xmlns:p="...").
func (a Attr) IsNamespaceDecl() bool {
	return (a.Prefix == "" && a.Local == "xmlns") || a.Prefix == "xmlns"
}

// DeclaredPrefix returns the prefix a namespace declaration binds
// ("" for the default namespace).
func (a Attr) DeclaredPrefix() string {
	if a.Prefix == "xmlns" {
		return a.Local
	}
	return ""
}

// Handler receives the token stream. The attrs slice and byte payloads
// are reused between calls and are only valid for the duration of the
// call; a handler that retains them must copy.
//
// Character data inside the root element may arrive chunked (around
// CDATA boundaries and entity references): consecutive Text calls are
// one logical text node. Whitespace-only character data outside the
// document element is dropped by the parser, as are the XML
// declaration and (permitted) DOCTYPE declarations.
type Handler interface {
	StartElement(prefix, local string, attrs []Attr) error
	EndElement(prefix, local string) error
	Text(data []byte) error
	Comment(data []byte) error
	ProcInst(target string, data []byte) error
}

// name is one open element on the parser stack.
type name struct {
	prefix, local string
}

// parser holds the pooled per-parse state: the open-element stack and
// the attribute scratch buffer handed to handlers.
type parser struct {
	stack []name
	attrs []Attr
}

var parserPool = sync.Pool{New: newParser}

// newParser is the pool's first-touch factory: a declared function so
// Parse never builds a closure.
func newParser() any {
	return &parser{stack: make([]name, 0, 32), attrs: make([]Attr, 0, 16)}
}

// Parse tokenizes one XML document from r, feeding every token to each
// handler in order. It enforces the well-formedness the raw tokenizer
// does not (matching end tags, single document element, no duplicate
// attributes) plus the security limits in opts, and returns the first
// error from the tokenizer, the limits, or a handler.
//
//discvet:hotpath per-token dispatch of the streaming verification pipeline; stack and attribute buffers are pooled, allocation only on error paths
func Parse(r io.Reader, opts Options, handlers ...Handler) error {
	maxDepth := opts.MaxDepth
	if maxDepth <= 0 {
		maxDepth = defaultMaxDepth
	}
	maxTokens := opts.MaxTokens
	if maxTokens <= 0 {
		maxTokens = defaultMaxTokens
	}

	dec := xml.NewDecoder(r)
	dec.Strict = true

	p := parserPool.Get().(*parser)
	p.stack = p.stack[:0]
	defer putParser(p)

	tokens := 0
	sawRoot := false

	for {
		tok, err := dec.RawToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			return errParse(err)
		}
		tokens++
		if tokens > maxTokens {
			return errTokenLimit(maxTokens)
		}

		switch t := tok.(type) {
		case xml.StartElement:
			if len(p.stack) == 0 && sawRoot {
				return errMultipleRoots()
			}
			if len(p.stack) >= maxDepth {
				return errDepthLimit(maxDepth)
			}
			p.attrs = p.attrs[:0]
			for _, a := range t.Attr {
				p.attrs = append(p.attrs, Attr{Prefix: a.Name.Space, Local: a.Name.Local, Value: a.Value})
			}
			if err := checkDuplicateAttrs(p.attrs, t.Name); err != nil {
				return err
			}
			p.stack = append(p.stack, name{prefix: t.Name.Space, local: t.Name.Local})
			sawRoot = true
			for _, h := range handlers {
				if err := h.StartElement(t.Name.Space, t.Name.Local, p.attrs); err != nil {
					return err
				}
			}

		case xml.EndElement:
			if len(p.stack) == 0 {
				return errUnexpectedEnd(t.Name)
			}
			top := p.stack[len(p.stack)-1]
			if top.prefix != t.Name.Space || top.local != t.Name.Local {
				return errEndMismatch(t.Name, top)
			}
			p.stack = p.stack[:len(p.stack)-1]
			for _, h := range handlers {
				if err := h.EndElement(t.Name.Space, t.Name.Local); err != nil {
					return err
				}
			}

		case xml.CharData:
			if len(p.stack) == 0 {
				if len(bytes.TrimSpace(t)) > 0 {
					return errStrayCharData()
				}
				continue
			}
			for _, h := range handlers {
				if err := h.Text(t); err != nil {
					return err
				}
			}

		case xml.Comment:
			for _, h := range handlers {
				if err := h.Comment(t); err != nil {
					return err
				}
			}

		case xml.ProcInst:
			if t.Target == "xml" {
				// The XML declaration is not part of the data model.
				continue
			}
			for _, h := range handlers {
				if err := h.ProcInst(t.Target, t.Inst); err != nil {
					return err
				}
			}

		case xml.Directive:
			if !opts.AllowDoctype {
				return ErrDoctype
			}
			// Permitted doctypes are not part of the token stream.
		}
	}

	if len(p.stack) != 0 {
		return errUnclosed(p.stack[len(p.stack)-1])
	}
	if !sawRoot {
		return errNoRoot()
	}
	return nil
}

// checkDuplicateAttrs rejects repeated attribute names, which the raw
// tokenizer does not police. The common small-attribute case is a
// quadratic scan over the pooled buffer (no allocation); pathological
// attribute counts fall back to a map so adversarial inputs stay
// linear.
//
//discvet:hotpath runs on every start tag; must not allocate for ordinary elements
func checkDuplicateAttrs(attrs []Attr, el xml.Name) error {
	if len(attrs) < 2 {
		return nil
	}
	if len(attrs) > 16 {
		return checkDuplicateAttrsLarge(attrs, el)
	}
	for i := 1; i < len(attrs); i++ {
		for j := 0; j < i; j++ {
			if attrs[i].Prefix == attrs[j].Prefix && attrs[i].Local == attrs[j].Local {
				return errDuplicateAttr(attrs[i], el)
			}
		}
	}
	return nil
}

//discvet:coldpath rare wide elements; the map keeps hostile attribute lists linear
func checkDuplicateAttrsLarge(attrs []Attr, el xml.Name) error {
	seen := make(map[Attr]struct{}, len(attrs))
	for _, a := range attrs {
		k := Attr{Prefix: a.Prefix, Local: a.Local}
		if _, dup := seen[k]; dup {
			return errDuplicateAttr(a, el)
		}
		seen[k] = struct{}{}
	}
	return nil
}

//discvet:coldpath pool return is once per document
func putParser(p *parser) {
	parserPool.Put(p)
}

// Error constructors live off the hot path: the per-token loop only
// calls them when the parse is already failing.

//discvet:coldpath error path
func errParse(err error) error { return fmt.Errorf("xmlstream: parse: %w", err) }

//discvet:coldpath error path
func errTokenLimit(n int) error { return fmt.Errorf("xmlstream: parse: token limit %d exceeded", n) }

//discvet:coldpath error path
func errDepthLimit(n int) error {
	return fmt.Errorf("xmlstream: parse: nesting depth limit %d exceeded", n)
}

//discvet:coldpath error path
func errMultipleRoots() error { return errors.New("xmlstream: parse: multiple document elements") }

//discvet:coldpath error path
func errStrayCharData() error {
	return errors.New("xmlstream: parse: character data outside document element")
}

//discvet:coldpath error path
func errNoRoot() error { return errors.New("xmlstream: parse: no document element") }

//discvet:coldpath error path
func errUnexpectedEnd(n xml.Name) error {
	return fmt.Errorf("xmlstream: parse: unexpected end tag </%s>", rawName(n))
}

//discvet:coldpath error path
func errEndMismatch(n xml.Name, top name) error {
	open := top.local
	if top.prefix != "" {
		open = top.prefix + ":" + top.local
	}
	return fmt.Errorf("xmlstream: parse: end tag </%s> does not match <%s>", rawName(n), open)
}

//discvet:coldpath error path
func errUnclosed(top name) error {
	open := top.local
	if top.prefix != "" {
		open = top.prefix + ":" + top.local
	}
	return fmt.Errorf("xmlstream: parse: unclosed element <%s>", open)
}

//discvet:coldpath error path
func errDuplicateAttr(a Attr, el xml.Name) error {
	return fmt.Errorf("xmlstream: parse: duplicate attribute %q on <%s>", a.Name(), rawName(el))
}

func rawName(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}
