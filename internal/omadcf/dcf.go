// Package omadcf implements a binary protected-content container modeled
// on the OMA DRM Content Format (DCF) v2.0, the comparator of the
// paper's §4 overhead/performance discussion (reference [37]): an
// ISO-base-media-style box structure with a binary headers box, an
// AES-CBC-encrypted content box, and a binary signature box.
//
// The package exists as the baseline for experiments E1/E2: the same
// protect/unprotect semantics as the XML security stack (integrity +
// confidentiality + key hints) expressed in a compact binary framing, so
// the size-overhead ratio and throughput gap between text-based XML
// security and binary DCF can be measured.
package omadcf

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Box type identifiers (four-character codes).
var (
	boxFile    = [4]byte{'o', 'd', 'c', 'f'} // file container
	boxHeaders = [4]byte{'o', 'h', 'd', 'r'} // headers: content type, key hint, alg
	boxContent = [4]byte{'o', 'd', 'd', 'a'} // encrypted content data
	boxSig     = [4]byte{'o', 's', 'i', 'g'} // HMAC signature over headers+content
)

// Algorithm identifiers (one byte on the wire).
const (
	// AlgAES128CBC is AES-128 in CBC mode with PKCS#7-style padding.
	AlgAES128CBC byte = 1
	// AlgAES256CBC is AES-256 in CBC mode.
	AlgAES256CBC byte = 2
)

// Errors.
var (
	// ErrCorrupt indicates container-level damage.
	ErrCorrupt = errors.New("omadcf: corrupt container")
	// ErrAuthentication indicates signature validation failure.
	ErrAuthentication = errors.New("omadcf: authentication failed")
	// ErrDecryption indicates content decryption failure.
	ErrDecryption = errors.New("omadcf: decryption failed")
)

// ProtectOptions configures container creation.
type ProtectOptions struct {
	// ContentType annotates the payload (e.g. "application/xml",
	// "video/mp2t").
	ContentType string
	// KeyHint names the content-encryption key for the recipient
	// (the DCF ContentID / rights-issuer hint).
	KeyHint string
	// EncryptionKey is the AES key (16 or 32 bytes).
	EncryptionKey []byte
	// MACKey authenticates the container (HMAC-SHA256). The DCF spec
	// binds content to a rights object; an HMAC plays that role here.
	MACKey []byte
}

func (o *ProtectOptions) algorithm() (byte, error) {
	switch len(o.EncryptionKey) {
	case 16:
		return AlgAES128CBC, nil
	case 32:
		return AlgAES256CBC, nil
	default:
		return 0, fmt.Errorf("omadcf: encryption key must be 16 or 32 bytes, have %d", len(o.EncryptionKey))
	}
}

// Protect packages plaintext into a DCF-style container: headers box,
// encrypted content box, signature box.
func Protect(plaintext []byte, opts ProtectOptions) ([]byte, error) {
	alg, err := opts.algorithm()
	if err != nil {
		return nil, err
	}
	if len(opts.MACKey) == 0 {
		return nil, errors.New("omadcf: MACKey required")
	}

	headers := encodeHeaders(alg, opts.ContentType, opts.KeyHint)
	ciphertext, err := encryptCBC(opts.EncryptionKey, plaintext)
	if err != nil {
		return nil, err
	}

	var body bytes.Buffer
	writeBox(&body, boxHeaders, headers)
	writeBox(&body, boxContent, ciphertext)

	mac := hmac.New(sha256.New, opts.MACKey)
	mac.Write(body.Bytes())
	writeBox(&body, boxSig, mac.Sum(nil))

	var out bytes.Buffer
	writeBox(&out, boxFile, body.Bytes())
	return out.Bytes(), nil
}

// Unprotect validates and decrypts a container.
func Unprotect(container []byte, opts ProtectOptions) ([]byte, error) {
	typ, body, rest, err := readBox(container)
	if err != nil || typ != boxFile || len(rest) != 0 {
		return nil, fmt.Errorf("%w: bad file box", ErrCorrupt)
	}

	htyp, headers, afterHeaders, err := readBox(body)
	if err != nil || htyp != boxHeaders {
		return nil, fmt.Errorf("%w: bad headers box", ErrCorrupt)
	}
	ctyp, ciphertext, afterContent, err := readBox(afterHeaders)
	if err != nil || ctyp != boxContent {
		return nil, fmt.Errorf("%w: bad content box", ErrCorrupt)
	}
	styp, sig, trailing, err := readBox(afterContent)
	//discvet:ignore cryptocompare boxSig is a public 4-byte container tag, not secret material
	if err != nil || styp != boxSig || len(trailing) != 0 {
		return nil, fmt.Errorf("%w: bad signature box", ErrCorrupt)
	}

	// Authenticate headers+content (everything before the sig box).
	authedLen := len(body) - len(afterContent)
	mac := hmac.New(sha256.New, opts.MACKey)
	mac.Write(body[:authedLen])
	if !hmac.Equal(mac.Sum(nil), sig) {
		return nil, ErrAuthentication
	}

	alg, _, _, err := decodeHeaders(headers)
	if err != nil {
		return nil, err
	}
	switch alg {
	case AlgAES128CBC:
		if len(opts.EncryptionKey) != 16 {
			return nil, fmt.Errorf("%w: need 16-byte key", ErrDecryption)
		}
	case AlgAES256CBC:
		if len(opts.EncryptionKey) != 32 {
			return nil, fmt.Errorf("%w: need 32-byte key", ErrDecryption)
		}
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrCorrupt, alg)
	}
	return decryptCBC(opts.EncryptionKey, ciphertext)
}

// Inspect returns the container's header metadata without decrypting.
func Inspect(container []byte) (contentType, keyHint string, err error) {
	typ, body, _, err := readBox(container)
	if err != nil || typ != boxFile {
		return "", "", fmt.Errorf("%w: bad file box", ErrCorrupt)
	}
	htyp, headers, _, err := readBox(body)
	if err != nil || htyp != boxHeaders {
		return "", "", fmt.Errorf("%w: bad headers box", ErrCorrupt)
	}
	_, contentType, keyHint, err = decodeHeaders(headers)
	return contentType, keyHint, err
}

// --- wire helpers -------------------------------------------------------

func writeBox(w *bytes.Buffer, typ [4]byte, payload []byte) {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(8+len(payload)))
	copy(hdr[4:], typ[:])
	w.Write(hdr[:])
	w.Write(payload)
}

func readBox(b []byte) (typ [4]byte, payload, rest []byte, err error) {
	if len(b) < 8 {
		return typ, nil, nil, errors.New("short box header")
	}
	size := binary.BigEndian.Uint32(b[:4])
	if size < 8 || uint64(size) > uint64(len(b)) {
		return typ, nil, nil, fmt.Errorf("box size %d out of range", size)
	}
	copy(typ[:], b[4:8])
	return typ, b[8:size], b[size:], nil
}

func encodeHeaders(alg byte, contentType, keyHint string) []byte {
	var out bytes.Buffer
	out.WriteByte(alg)
	writeString(&out, contentType)
	writeString(&out, keyHint)
	return out.Bytes()
}

func decodeHeaders(b []byte) (alg byte, contentType, keyHint string, err error) {
	if len(b) < 1 {
		return 0, "", "", fmt.Errorf("%w: empty headers", ErrCorrupt)
	}
	alg = b[0]
	rest := b[1:]
	contentType, rest, err = readString(rest)
	if err != nil {
		return 0, "", "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	keyHint, _, err = readString(rest)
	if err != nil {
		return 0, "", "", fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return alg, contentType, keyHint, nil
}

func writeString(w *bytes.Buffer, s string) {
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	w.Write(l[:])
	w.WriteString(s)
}

func readString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("short string length")
	}
	n := int(binary.BigEndian.Uint16(b[:2]))
	if len(b) < 2+n {
		return "", nil, errors.New("short string payload")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// encryptCBC is AES-CBC with PKCS#7 padding, IV-prefixed.
func encryptCBC(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	bs := block.BlockSize()
	padLen := bs - len(plaintext)%bs
	padded := make([]byte, len(plaintext)+padLen)
	copy(padded, plaintext)
	for i := len(plaintext); i < len(padded); i++ {
		padded[i] = byte(padLen)
	}
	out := make([]byte, bs+len(padded))
	if _, err := rand.Read(out[:bs]); err != nil {
		return nil, err
	}
	cipher.NewCBCEncrypter(block, out[:bs]).CryptBlocks(out[bs:], padded)
	return out, nil
}

func decryptCBC(key, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	bs := block.BlockSize()
	if len(payload) < 2*bs || len(payload)%bs != 0 {
		return nil, fmt.Errorf("%w: payload length %d", ErrDecryption, len(payload))
	}
	iv, ct := payload[:bs], payload[bs:]
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	padLen := int(pt[len(pt)-1])
	if padLen < 1 || padLen > bs || padLen > len(pt) {
		return nil, fmt.Errorf("%w: bad padding", ErrDecryption)
	}
	for _, p := range pt[len(pt)-padLen:] {
		if int(p) != padLen {
			return nil, fmt.Errorf("%w: bad padding", ErrDecryption)
		}
	}
	return pt[:len(pt)-padLen], nil
}
