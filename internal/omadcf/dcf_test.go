package omadcf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func keys() ProtectOptions {
	ek := make([]byte, 16)
	mk := make([]byte, 32)
	for i := range ek {
		ek[i] = byte(i)
	}
	for i := range mk {
		mk[i] = byte(i * 2)
	}
	return ProtectOptions{
		ContentType:   "application/xml",
		KeyHint:       "cid:game-1@studio.example",
		EncryptionKey: ek,
		MACKey:        mk,
	}
}

func TestRoundTrip(t *testing.T) {
	opts := keys()
	plain := []byte("<manifest><code>var x = 1;</code></manifest>")
	c, err := Protect(plain, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(c, []byte("var x")) {
		t.Error("plaintext leaked")
	}
	back, err := Unprotect(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Error("round trip mismatch")
	}
}

func TestRoundTripAES256(t *testing.T) {
	opts := keys()
	opts.EncryptionKey = make([]byte, 32)
	plain := []byte("payload")
	c, err := Protect(plain, opts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unprotect(c, opts)
	if err != nil || !bytes.Equal(back, plain) {
		t.Errorf("aes256 round trip: %v", err)
	}
}

func TestInspect(t *testing.T) {
	opts := keys()
	c, err := Protect([]byte("x"), opts)
	if err != nil {
		t.Fatal(err)
	}
	ct, hint, err := Inspect(c)
	if err != nil {
		t.Fatal(err)
	}
	if ct != opts.ContentType || hint != opts.KeyHint {
		t.Errorf("inspect = %q, %q", ct, hint)
	}
}

func TestTamperDetection(t *testing.T) {
	opts := keys()
	c, err := Protect([]byte("sensitive content here"), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, offset := range []int{20, len(c) / 2, len(c) - 10} {
		bad := append([]byte(nil), c...)
		bad[offset] ^= 0x01
		if _, err := Unprotect(bad, opts); err == nil {
			t.Errorf("tamper at %d not detected", offset)
		}
	}
}

func TestWrongMACKey(t *testing.T) {
	opts := keys()
	c, _ := Protect([]byte("x"), opts)
	bad := opts
	bad.MACKey = []byte("different-mac-key-entirely-here!")
	if _, err := Unprotect(c, bad); !errors.Is(err, ErrAuthentication) {
		t.Errorf("err = %v, want ErrAuthentication", err)
	}
}

func TestWrongEncryptionKey(t *testing.T) {
	opts := keys()
	c, _ := Protect([]byte("content"), opts)
	bad := opts
	bad.EncryptionKey = make([]byte, 16)
	copy(bad.EncryptionKey, opts.EncryptionKey)
	bad.EncryptionKey[0] ^= 0xFF
	// MAC passes (same MAC key) but decryption yields garbage; CBC
	// padding check usually catches it — either error or wrong bytes,
	// never the original plaintext silently.
	pt, err := Unprotect(c, bad)
	if err == nil && bytes.Equal(pt, []byte("content")) {
		t.Error("wrong key decrypted successfully")
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Protect([]byte("x"), ProtectOptions{EncryptionKey: make([]byte, 5), MACKey: make([]byte, 32)}); err == nil {
		t.Error("bad key size accepted")
	}
	if _, err := Protect([]byte("x"), ProtectOptions{EncryptionKey: make([]byte, 16)}); err == nil {
		t.Error("missing MAC key accepted")
	}
}

func TestCorruptContainers(t *testing.T) {
	opts := keys()
	bad := [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 64),
	}
	for i, b := range bad {
		if _, err := Unprotect(b, opts); err == nil {
			t.Errorf("corrupt container %d accepted", i)
		}
		if _, _, err := Inspect(b); err == nil {
			t.Errorf("corrupt container %d inspected", i)
		}
	}
}

// Property: arbitrary payloads round-trip.
func TestRoundTripProperty(t *testing.T) {
	opts := keys()
	f := func(data []byte) bool {
		c, err := Protect(data, opts)
		if err != nil {
			return false
		}
		back, err := Unprotect(c, opts)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The whole point of the baseline: overhead is a small constant, not
// proportional to payload.
func TestOverheadIsSmallConstant(t *testing.T) {
	opts := keys()
	for _, n := range []int{100, 1000, 100000} {
		plain := bytes.Repeat([]byte{'a'}, n)
		c, err := Protect(plain, opts)
		if err != nil {
			t.Fatal(err)
		}
		overhead := len(c) - n
		// boxes + headers + IV + padding + MAC: well under 200 bytes.
		if overhead < 0 || overhead > 200 {
			t.Errorf("n=%d overhead=%d", n, overhead)
		}
	}
}
