// Package dectrans implements the W3C "Decryption Transform for XML
// Signature" (Recommendation, 10 December 2002) processing order the
// paper's §7 relies on for end-to-end security: content is signed first
// and encrypted second, and the verifier must decrypt before validating —
// except for EncryptedData that already existed when the signature was
// produced (listed in dcrpt:Except).
//
// Processing order on the player (paper Fig. 9):
//
//	receive → Decrypt (this package) → Verify (xmldsig) → execute
package dectrans

import (
	"fmt"
	"strings"

	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// Result reports a completed decryption-transform pass.
type Result struct {
	// Decrypted is the number of EncryptedData structures decrypted.
	Decrypted int
	// Excepted is the number of EncryptedData structures left intact
	// because a dcrpt:Except listed them.
	Excepted int
}

// ProcessSignature decrypts every Element/Content-typed EncryptedData in
// the document except those the signature's decryption transforms list in
// dcrpt:Except, using the supplied key material. After it returns, the
// document is in the state xmldsig core validation expects.
func ProcessSignature(doc *xmldom.Document, sig *xmldom.Element, opts xmlenc.DecryptOptions) (*Result, error) {
	exceptions, err := xmldsig.DecryptionExceptions(sig)
	if err != nil {
		return nil, err
	}
	return ProcessDocument(doc, exceptions, opts)
}

// ProcessDocument decrypts every structural EncryptedData in the document
// whose Id is not in the exceptions list (fragment URIs "#id" or bare
// ids). Decryption repeats until no non-excepted structures remain, so
// super-encrypted regions fully open.
func ProcessDocument(doc *xmldom.Document, exceptions []string, opts xmlenc.DecryptOptions) (*Result, error) {
	except := map[string]bool{}
	for _, e := range exceptions {
		except[strings.TrimPrefix(e, "#")] = true
	}

	res := &Result{}
	for pass := 0; pass < 32; pass++ {
		var targets []*xmldom.Element
		excepted := 0
		for _, ed := range xmlenc.FindEncryptedData(doc) {
			tp := ed.AttrValue("Type")
			if tp != xmlsecuri.EncTypeElement && tp != xmlsecuri.EncTypeContent {
				continue
			}
			if id := ed.AttrValue("Id"); id != "" && except[id] {
				excepted++
				continue
			}
			targets = append(targets, ed)
		}
		if len(targets) == 0 {
			res.Excepted = excepted
			return res, nil
		}
		for _, ed := range targets {
			if _, err := xmlenc.DecryptElement(ed, opts); err != nil {
				return res, fmt.Errorf("dectrans: decrypting %q: %w", ed.AttrValue("Id"), err)
			}
			res.Decrypted++
		}
	}
	return res, fmt.Errorf("dectrans: encryption nesting too deep")
}
