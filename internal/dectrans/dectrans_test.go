package dectrans

import (
	"crypto/rand"
	"crypto/rsa"
	"strings"
	"testing"

	"discsec/internal/xmldom"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

var testRSAKey *rsa.PrivateKey

func init() {
	var err error
	testRSAKey, err = rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		panic(err)
	}
}

func parseDoc(t *testing.T, s string) *xmldom.Document {
	t.Helper()
	doc, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func key(n int) []byte {
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(i*13 + 7)
	}
	return k
}

// TestSignThenEncryptRoundTrip exercises the paper's Fig. 9 order:
//  1. author signs the manifest (with a decryption transform declaring
//     the pre-existing encrypted region as an exception),
//  2. author encrypts an additional region AFTER signing,
//  3. player decrypts the post-signature region (but not the excepted
//     one) and verifies.
func TestSignThenEncryptRoundTrip(t *testing.T) {
	doc := parseDoc(t, `<manifest xmlns="urn:m">
  <markup><layout/></markup>
  <secrets><licensekey>ABC-123</licensekey></secrets>
  <code><script>var x = 1;</script></code>
</manifest>`)

	contentKey := key(32)

	// Step 0: the secrets region is encrypted BEFORE signing (it is
	// signed in encrypted form).
	secrets, _ := doc.Root().Find("secrets")
	if _, err := xmlenc.EncryptElement(secrets, xmlenc.EncryptOptions{Key: contentKey, DataID: "enc-pre"}); err != nil {
		t.Fatal(err)
	}

	// Step 1: sign the whole manifest with enveloped signature whose
	// reference chain includes the decryption transform excepting
	// enc-pre.
	refs := []xmldsig.ReferenceSpec{{
		URI: "",
		Transforms: []string{
			xmlsecuri.TransformEnveloped,
			xmlsecuri.TransformDecryptXML,
			xmlsecuri.ExcC14N,
		},
		DecryptExceptURIs: []string{"#enc-pre"},
	}}
	if _, err := xmldsig.SignWithReferences(doc, doc.Root(), refs, xmldsig.SignOptions{Key: testRSAKey, KeyInfo: xmldsig.KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}

	// Step 2: encrypt the code region AFTER signing.
	code, _ := doc.Root().Find("code")
	if _, err := xmlenc.EncryptElement(code, xmlenc.EncryptOptions{Key: contentKey, DataID: "enc-post"}); err != nil {
		t.Fatal(err)
	}

	transmitted := doc.Root().String()
	if strings.Contains(transmitted, "var x = 1;") || strings.Contains(transmitted, "ABC-123") {
		t.Fatal("plaintext leaked in transmission")
	}

	// Player side.
	rx := parseDoc(t, transmitted)
	sig := xmldsig.FindSignature(rx)
	if sig == nil {
		t.Fatal("no signature in received document")
	}
	res, err := ProcessSignature(rx, sig, xmlenc.DecryptOptions{Key: contentKey})
	if err != nil {
		t.Fatalf("decryption transform: %v", err)
	}
	if res.Decrypted != 1 || res.Excepted != 1 {
		t.Errorf("result = %+v, want 1 decrypted / 1 excepted", res)
	}

	if _, err := xmldsig.Verify(rx, sig, xmldsig.VerifyOptions{}); err != nil {
		t.Fatalf("verify after decryption transform: %v", err)
	}

	// The excepted region can be opened afterwards.
	if _, err := xmlenc.DecryptAll(rx, xmlenc.DecryptOptions{Key: contentKey}); err != nil {
		t.Fatalf("opening excepted region: %v", err)
	}
	if el, _ := rx.Root().Find("secrets/licensekey"); el == nil || el.Text() != "ABC-123" {
		t.Errorf("secrets not recovered: %s", rx.Root().String())
	}
	if el, _ := rx.Root().Find("code/script"); el == nil || el.Text() != "var x = 1;" {
		t.Errorf("code not recovered")
	}
}

// Decrypting everything (ignoring the exception) must break the
// signature: the excepted region was signed as ciphertext.
func TestDecryptingExceptedRegionBreaksSignature(t *testing.T) {
	doc := parseDoc(t, `<m xmlns="urn:m"><sec><k>s3cret</k></sec><body>text</body></m>`)
	contentKey := key(32)
	sec, _ := doc.Root().Find("sec")
	if _, err := xmlenc.EncryptElement(sec, xmlenc.EncryptOptions{Key: contentKey, DataID: "pre"}); err != nil {
		t.Fatal(err)
	}
	refs := []xmldsig.ReferenceSpec{{
		URI:               "",
		Transforms:        []string{xmlsecuri.TransformEnveloped, xmlsecuri.TransformDecryptXML, xmlsecuri.ExcC14N},
		DecryptExceptURIs: []string{"#pre"},
	}}
	if _, err := xmldsig.SignWithReferences(doc, doc.Root(), refs, xmldsig.SignOptions{Key: testRSAKey, KeyInfo: xmldsig.KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}

	rx := parseDoc(t, doc.Root().String())
	// WRONG order: decrypt everything, then verify.
	if _, err := xmlenc.DecryptAll(rx, xmlenc.DecryptOptions{Key: contentKey}); err != nil {
		t.Fatal(err)
	}
	sig := xmldsig.FindSignature(rx)
	if _, err := xmldsig.Verify(rx, sig, xmldsig.VerifyOptions{}); err == nil {
		t.Error("verification succeeded although the excepted region was decrypted first")
	}
}

func TestProcessDocumentBareIDs(t *testing.T) {
	doc := parseDoc(t, `<m><a><x>1</x></a><b><y>2</y></b></m>`)
	k := key(16)
	a, _ := doc.Root().Find("a")
	b, _ := doc.Root().Find("b")
	if _, err := xmlenc.EncryptElement(a, xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128GCM, Key: k, DataID: "keep"}); err != nil {
		t.Fatal(err)
	}
	if _, err := xmlenc.EncryptElement(b, xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128GCM, Key: k, DataID: "open"}); err != nil {
		t.Fatal(err)
	}
	// Exception given without the fragment hash.
	res, err := ProcessDocument(doc, []string{"keep"}, xmlenc.DecryptOptions{Key: k})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decrypted != 1 || res.Excepted != 1 {
		t.Errorf("result = %+v", res)
	}
	if el, _ := doc.Root().Find("b/y"); el == nil {
		t.Error("b not decrypted")
	}
	if el, _ := doc.Root().Find("a/x"); el != nil {
		t.Error("a was decrypted despite exception")
	}
}

func TestProcessDocumentNothingToDo(t *testing.T) {
	doc := parseDoc(t, `<m><a/></m>`)
	res, err := ProcessDocument(doc, nil, xmlenc.DecryptOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decrypted != 0 || res.Excepted != 0 {
		t.Errorf("result = %+v", res)
	}
}
