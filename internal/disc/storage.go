package disc

import (
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LocalStorage is the player's persistent store (paper §4: "encrypt and
// store the high scores of a game in a local storage"). Entries are
// namespaced per application and quota-limited, matching CE device
// constraints. With a backing directory the store survives player
// restarts; without one it is session-scoped.
type LocalStorage struct {
	quota int64
	dir   string // "" for in-memory only

	mu    sync.RWMutex
	used  int64
	items map[string][]byte // key: appID + "/" + name
}

// Storage errors.
var (
	// ErrQuotaExceeded indicates the write would exceed the quota.
	ErrQuotaExceeded = errors.New("disc: local storage quota exceeded")
	// ErrNoEntry indicates a missing storage entry.
	ErrNoEntry = errors.New("disc: no such storage entry")
)

// DefaultStorageQuota is the default local storage size (a 2005-era CE
// budget).
const DefaultStorageQuota = 8 << 20

// NewLocalStorage creates an in-memory store with the given quota in
// bytes (0 means DefaultStorageQuota).
func NewLocalStorage(quota int64) *LocalStorage {
	if quota <= 0 {
		quota = DefaultStorageQuota
	}
	return &LocalStorage{quota: quota, items: make(map[string][]byte)}
}

// OpenLocalStorage creates (or reopens) a directory-backed store:
// entries are persisted as files under dir/<appID>/<escaped name> and
// reloaded on open, so player state (high scores, license use counts)
// survives restarts.
func OpenLocalStorage(dir string, quota int64) (*LocalStorage, error) {
	ls := NewLocalStorage(quota)
	ls.dir = dir
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	apps, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		if !app.IsDir() {
			continue
		}
		appID := app.Name()
		entries, err := os.ReadDir(filepath.Join(dir, appID))
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name, err := url.PathUnescape(e.Name())
			if err != nil {
				continue // foreign file; ignore
			}
			b, err := os.ReadFile(filepath.Join(dir, appID, e.Name()))
			if err != nil {
				return nil, err
			}
			ls.items[appID+"/"+name] = b
			ls.used += int64(len(b))
		}
	}
	if ls.used > ls.quota {
		return nil, fmt.Errorf("disc: existing storage (%d bytes) exceeds quota %d", ls.used, ls.quota)
	}
	return ls, nil
}

// persist mirrors an entry to the backing directory (no-op in-memory).
// Called with the mutex held.
func (ls *LocalStorage) persist(appID, name string, data []byte) error {
	if ls.dir == "" {
		return nil
	}
	appDir := filepath.Join(ls.dir, appID)
	if err := os.MkdirAll(appDir, 0o700); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(appDir, url.PathEscape(name)), data, 0o600)
}

func (ls *LocalStorage) unpersist(appID, name string) {
	if ls.dir == "" {
		return
	}
	os.Remove(filepath.Join(ls.dir, appID, url.PathEscape(name)))
}

func storageKey(appID, name string) (string, error) {
	if appID == "" || name == "" {
		return "", errors.New("disc: storage requires app id and entry name")
	}
	if strings.Contains(appID, "/") {
		return "", fmt.Errorf("disc: app id %q must not contain '/'", appID)
	}
	return appID + "/" + name, nil
}

// Put stores an entry for an application, enforcing the quota.
func (ls *LocalStorage) Put(appID, name string, data []byte) error {
	key, err := storageKey(appID, name)
	if err != nil {
		return err
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	delta := int64(len(data)) - int64(len(ls.items[key]))
	if ls.used+delta > ls.quota {
		return fmt.Errorf("%w: %d + %d > %d", ErrQuotaExceeded, ls.used, delta, ls.quota)
	}
	if err := ls.persist(appID, name, data); err != nil {
		return fmt.Errorf("disc: persisting %s: %w", key, err)
	}
	ls.items[key] = append([]byte(nil), data...)
	ls.used += delta
	return nil
}

// Get retrieves an entry.
func (ls *LocalStorage) Get(appID, name string) ([]byte, error) {
	key, err := storageKey(appID, name)
	if err != nil {
		return nil, err
	}
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	b, ok := ls.items[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, key)
	}
	return append([]byte(nil), b...), nil
}

// Delete removes an entry, reporting whether it existed.
func (ls *LocalStorage) Delete(appID, name string) bool {
	key, err := storageKey(appID, name)
	if err != nil {
		return false
	}
	ls.mu.Lock()
	defer ls.mu.Unlock()
	b, ok := ls.items[key]
	if ok {
		ls.used -= int64(len(b))
		delete(ls.items, key)
		ls.unpersist(appID, name)
	}
	return ok
}

// List returns the entry names of an application, sorted.
func (ls *LocalStorage) List(appID string) []string {
	prefix := appID + "/"
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	var out []string
	for k := range ls.items {
		if strings.HasPrefix(k, prefix) {
			out = append(out, strings.TrimPrefix(k, prefix))
		}
	}
	sort.Strings(out)
	return out
}

// Used reports the consumed bytes.
func (ls *LocalStorage) Used() int64 {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.used
}

// Quota reports the configured quota.
func (ls *LocalStorage) Quota() int64 { return ls.quota }
