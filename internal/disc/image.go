package disc

import (
	"bytes"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// Image is a virtual disc image: the file tree a pressed disc would
// expose to the player. The index document (the Interactive Cluster) and
// every referenced resource (clips, permission files, detached
// signatures) live under well-known paths.
//
// Well-known paths:
//
//	INDEX/cluster.xml      the interactive cluster document
//	CLIPS/<id>.m2ts        transport streams
//	APPS/<id>/...          per-application resources
//	CERTS/...              certificate files
type Image struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// IndexPath is the image path of the cluster document.
const IndexPath = "INDEX/cluster.xml"

// NewImage creates an empty image.
func NewImage() *Image {
	return &Image{files: make(map[string][]byte)}
}

// Put stores a file, replacing any previous content. Paths are
// slash-separated and must be relative and clean.
func (im *Image) Put(path string, data []byte) error {
	if err := checkPath(path); err != nil {
		return err
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	im.files[path] = append([]byte(nil), data...)
	return nil
}

// Get retrieves a file's content.
func (im *Image) Get(path string) ([]byte, error) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	b, ok := im.files[path]
	if !ok {
		return nil, fmt.Errorf("disc: image has no file %q", path)
	}
	return append([]byte(nil), b...), nil
}

// Has reports whether a path exists.
func (im *Image) Has(path string) bool {
	im.mu.RLock()
	defer im.mu.RUnlock()
	_, ok := im.files[path]
	return ok
}

// Remove deletes a file, reporting whether it existed.
func (im *Image) Remove(path string) bool {
	im.mu.Lock()
	defer im.mu.Unlock()
	_, ok := im.files[path]
	delete(im.files, path)
	return ok
}

// Paths lists all file paths in sorted order.
func (im *Image) Paths() []string {
	im.mu.RLock()
	defer im.mu.RUnlock()
	out := make([]string, 0, len(im.files))
	for p := range im.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Size returns the total payload bytes.
func (im *Image) Size() int64 {
	im.mu.RLock()
	defer im.mu.RUnlock()
	var n int64
	for _, b := range im.files {
		n += int64(len(b))
	}
	return n
}

// ResolveReference implements xmldsig.ExternalResolver so detached
// signatures can reference image files by path (with or without the
// disc:// scheme prefix).
func (im *Image) ResolveReference(uri string) ([]byte, error) {
	return im.Get(strings.TrimPrefix(uri, "disc://"))
}

func checkPath(p string) error {
	if p == "" {
		return errors.New("disc: empty path")
	}
	if strings.HasPrefix(p, "/") {
		return fmt.Errorf("disc: path %q must be relative", p)
	}
	for _, seg := range strings.Split(p, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("disc: path %q contains invalid segment", p)
		}
	}
	return nil
}

// --- Container format --------------------------------------------------
//
// A minimal deterministic container: magic, entry count, then for each
// entry (sorted by path) the path and payload with uvarint lengths,
// terminated by a SHA-256 of everything preceding the digest. The digest
// gives cheap whole-image integrity (transport corruption detection; the
// cryptographic trust comes from signatures inside the content).

var imageMagic = []byte("DISCIMG1")

// errCorruptImage reports container-level damage.
var errCorruptImage = errors.New("disc: corrupt image container")

// WriteTo serializes the image container.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	im.mu.RLock()
	defer im.mu.RUnlock()

	paths := make([]string, 0, len(im.files))
	for p := range im.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	h := sha256.New()
	cw := &countingWriter{w: io.MultiWriter(w, h)}

	if _, err := cw.Write(imageMagic); err != nil {
		return cw.n, err
	}
	if err := writeUvarint(cw, uint64(len(paths))); err != nil {
		return cw.n, err
	}
	for _, p := range paths {
		if err := writeUvarint(cw, uint64(len(p))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, p); err != nil {
			return cw.n, err
		}
		data := im.files[p]
		if err := writeUvarint(cw, uint64(len(data))); err != nil {
			return cw.n, err
		}
		if _, err := cw.Write(data); err != nil {
			return cw.n, err
		}
	}
	// Digest trailer is written to w only (not into the hash).
	n, err := w.Write(h.Sum(nil))
	return cw.n + int64(n), err
}

// Bytes serializes the image container to memory.
func (im *Image) Bytes() []byte {
	var buf bytes.Buffer
	im.WriteTo(&buf) //nolint:errcheck // bytes.Buffer cannot fail
	return buf.Bytes()
}

// ReadImage parses an image container, validating the integrity digest.
func ReadImage(r io.Reader) (*Image, error) {
	all, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReadImageBytes(all)
}

// ReadImageBytes parses an image container from memory.
func ReadImageBytes(all []byte) (*Image, error) {
	if len(all) < len(imageMagic)+sha256.Size {
		return nil, errCorruptImage
	}
	body, digest := all[:len(all)-sha256.Size], all[len(all)-sha256.Size:]
	sum := sha256.Sum256(body)
	if subtle.ConstantTimeCompare(sum[:], digest) != 1 {
		return nil, fmt.Errorf("%w: integrity digest mismatch", errCorruptImage)
	}
	if !bytes.HasPrefix(body, imageMagic) {
		return nil, fmt.Errorf("%w: bad magic", errCorruptImage)
	}
	br := bytes.NewReader(body[len(imageMagic):])
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errCorruptImage, err)
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("%w: implausible entry count %d", errCorruptImage, count)
	}
	im := NewImage()
	for i := uint64(0); i < count; i++ {
		p, err := readLengthPrefixed(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorruptImage, err)
		}
		data, err := readLengthPrefixed(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errCorruptImage, err)
		}
		if err := im.Put(string(p), data); err != nil {
			return nil, err
		}
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", errCorruptImage, br.Len())
	}
	return im, nil
}

func readLengthPrefixed(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Len()) {
		return nil, errors.New("length exceeds remaining data")
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, err
	}
	return out, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeUvarint(w io.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// WriteIndex stores the cluster document at the well-known index path.
func (im *Image) WriteIndex(c *InteractiveCluster) error {
	return im.Put(IndexPath, c.Document().Bytes())
}

// ReadIndexDocumentBytes returns the raw cluster document, preserving
// signatures and encryption structures the model types do not carry.
func (im *Image) ReadIndexDocumentBytes() ([]byte, error) {
	return im.Get(IndexPath)
}

// SaveFile writes the image container to a file.
func (im *Image) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := im.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadImageFile reads an image container from a file.
func LoadImageFile(path string) (*Image, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadImageBytes(b)
}
