package disc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"discsec/internal/xmldom"
)

func sampleCluster() *InteractiveCluster {
	layout := xmldom.NewElement("layout")
	layout.DeclareNamespace("", "urn:discsec:smil")
	layout.CreateChild("region").SetAttr("id", "main")
	timing := xmldom.NewElement("timing")
	timing.DeclareNamespace("", "urn:discsec:smil")
	timing.CreateChild("seq").SetAttr("dur", "5s")

	return &InteractiveCluster{
		Title: "Feature Film",
		Tracks: []*Track{
			{
				ID:   "track-av-1",
				Kind: TrackAV,
				Playlist: &Playlist{
					Name: "main-feature",
					Items: []PlayItem{
						{ClipID: "clip-1", InMS: 0, OutMS: 60000},
						{ClipID: "clip-2", InMS: 0, OutMS: 30000},
					},
				},
			},
			{
				ID:   "track-app-1",
				Kind: TrackApplication,
				Manifest: &Manifest{
					ID:             "app-menu",
					PermissionFile: "APPS/app-menu/permissions.xml",
					Markup: Markup{SubMarkups: []SubMarkup{
						{Kind: "layout", Content: layout},
						{Kind: "timing", Content: timing},
					}},
					Code: Code{Scripts: []Script{
						{Language: "ecmascript", Source: "var selected = 0;"},
					}},
				},
			},
		},
	}
}

func TestClusterXMLRoundTrip(t *testing.T) {
	c := sampleCluster()
	doc := c.Document()
	back, err := ParseClusterString(doc.String())
	if err != nil {
		t.Fatalf("parse rendered cluster: %v\n%s", err, doc.String())
	}
	if back.Title != c.Title || len(back.Tracks) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	av := back.FindTrack("track-av-1")
	if av == nil || av.Playlist == nil || len(av.Playlist.Items) != 2 {
		t.Fatalf("av track = %+v", av)
	}
	if av.Playlist.Items[0].OutMS != 60000 {
		t.Errorf("playitem out = %d", av.Playlist.Items[0].OutMS)
	}
	app := back.FindTrack("track-app-1")
	if app == nil || app.Manifest == nil {
		t.Fatal("application track lost")
	}
	m := app.Manifest
	if m.ID != "app-menu" || m.PermissionFile != "APPS/app-menu/permissions.xml" {
		t.Errorf("manifest = %+v", m)
	}
	if len(m.Markup.SubMarkups) != 2 || m.Markup.SubMarkups[0].Kind != "layout" {
		t.Errorf("submarkups = %+v", m.Markup.SubMarkups)
	}
	if m.Markup.SubMarkups[0].Content.FirstChildElement("region") == nil {
		t.Error("layout content lost")
	}
	if len(m.Code.Scripts) != 1 || m.Code.Scripts[0].Source != "var selected = 0;" {
		t.Errorf("scripts = %+v", m.Code.Scripts)
	}
	if len(back.ApplicationTracks()) != 1 || len(back.AVTracks()) != 1 {
		t.Error("track filters wrong")
	}
}

func TestParseClusterErrors(t *testing.T) {
	bad := []string{
		`<wrong xmlns="urn:discsec:cluster"/>`,
		`<cluster/>`, // wrong namespace
		`<cluster xmlns="urn:discsec:cluster"><track Id="t" kind="weird"/></cluster>`,
		`<cluster xmlns="urn:discsec:cluster"><track Id="t" kind="av"/></cluster>`,          // no playlist
		`<cluster xmlns="urn:discsec:cluster"><track Id="t" kind="application"/></cluster>`, // no manifest
		`<cluster xmlns="urn:discsec:cluster"><track Id="t" kind="av"><playlist><playitem clip="c" in="x" out="1"/></playlist></track></cluster>`,
	}
	for _, s := range bad {
		if _, err := ParseClusterString(s); err == nil {
			t.Errorf("accepted: %s", s)
		}
	}
}

func TestImagePutGet(t *testing.T) {
	im := NewImage()
	if err := im.Put("CLIPS/clip-1.m2ts", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	b, err := im.Get("CLIPS/clip-1.m2ts")
	if err != nil || !bytes.Equal(b, []byte{1, 2, 3}) {
		t.Fatalf("get = %v, %v", b, err)
	}
	// Returned slice is a copy.
	b[0] = 99
	b2, _ := im.Get("CLIPS/clip-1.m2ts")
	if b2[0] != 1 {
		t.Error("Get returned aliased storage")
	}
	if _, err := im.Get("missing"); err == nil {
		t.Error("missing path accepted")
	}
	if !im.Has("CLIPS/clip-1.m2ts") || im.Has("nope") {
		t.Error("Has wrong")
	}
	if im.Size() != 3 {
		t.Errorf("size = %d", im.Size())
	}
	if !im.Remove("CLIPS/clip-1.m2ts") || im.Remove("CLIPS/clip-1.m2ts") {
		t.Error("Remove wrong")
	}
}

func TestImagePathValidation(t *testing.T) {
	im := NewImage()
	for _, p := range []string{"", "/abs", "a//b", "a/../b", "./x", "a/."} {
		if err := im.Put(p, nil); err == nil {
			t.Errorf("path %q accepted", p)
		}
	}
}

func TestImageContainerRoundTrip(t *testing.T) {
	im := NewImage()
	c := sampleCluster()
	if err := im.WriteIndex(c); err != nil {
		t.Fatal(err)
	}
	clip := GenerateClip(ClipSpec{DurationMS: 100, BitrateKbps: 1000, Seed: 7})
	im.Put("CLIPS/clip-1.m2ts", clip)
	im.Put("APPS/app-menu/permissions.xml", []byte(`<permissionrequestfile/>`))

	packed := im.Bytes()
	back, err := ReadImageBytes(packed)
	if err != nil {
		t.Fatalf("read container: %v", err)
	}
	if len(back.Paths()) != 3 {
		t.Fatalf("paths = %v", back.Paths())
	}
	got, err := back.Get("CLIPS/clip-1.m2ts")
	if err != nil || !bytes.Equal(got, clip) {
		t.Error("clip did not round trip")
	}
	idx, err := back.ReadIndexDocumentBytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseClusterString(string(idx)); err != nil {
		t.Errorf("index reparse: %v", err)
	}
}

func TestImageContainerCorruption(t *testing.T) {
	im := NewImage()
	im.Put("a", []byte("data"))
	packed := im.Bytes()

	// Flip a payload byte: digest check must fail.
	corrupt := append([]byte(nil), packed...)
	corrupt[len(imageMagic)+3] ^= 0xFF
	if _, err := ReadImageBytes(corrupt); err == nil {
		t.Error("corrupted container accepted")
	}
	// Truncate.
	if _, err := ReadImageBytes(packed[:10]); err == nil {
		t.Error("truncated container accepted")
	}
	// Bad magic.
	bad := append([]byte("XXXXXXXX"), packed[8:]...)
	if _, err := ReadImageBytes(bad); err == nil {
		t.Error("bad magic accepted")
	}
}

// Property: any set of files survives the container round trip.
func TestImageContainerRoundTripProperty(t *testing.T) {
	f := func(names []uint16, blobs [][]byte) bool {
		im := NewImage()
		want := map[string][]byte{}
		for i, n := range names {
			if i >= len(blobs) {
				break
			}
			path := "F/" + itoaU16(n)
			im.Put(path, blobs[i])
			want[path] = blobs[i]
		}
		back, err := ReadImageBytes(im.Bytes())
		if err != nil {
			return false
		}
		for p, b := range want {
			got, err := back.Get(p)
			if err != nil || !bytes.Equal(got, b) {
				return false
			}
		}
		return len(back.Paths()) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoaU16(v uint16) string {
	const digits = "0123456789"
	if v == 0 {
		return "0"
	}
	var b [5]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v%10]
		v /= 10
	}
	return string(b[i:])
}

func TestGenerateClipStructure(t *testing.T) {
	clip := GenerateClip(ClipSpec{DurationMS: 2000, BitrateKbps: 8000, Seed: 42})
	if len(clip)%TSPacketSize != 0 {
		t.Fatalf("clip length %d not packet-aligned", len(clip))
	}
	wantBytes := int64(2000) * 8000 * 1000 / 8 / 1000
	if diff := wantBytes - int64(len(clip)); diff < 0 || diff > TSPacketSize {
		t.Errorf("clip size %d, want about %d", len(clip), wantBytes)
	}
	if err := ValidateClip(clip); err != nil {
		t.Errorf("generated clip invalid: %v", err)
	}
	pids, err := ClipPIDs(clip)
	if err != nil || len(pids) != 2 {
		t.Errorf("pids = %v, %v", pids, err)
	}
}

func TestGenerateClipDeterministic(t *testing.T) {
	a := GenerateClip(ClipSpec{DurationMS: 500, BitrateKbps: 2000, Seed: 1})
	b := GenerateClip(ClipSpec{DurationMS: 500, BitrateKbps: 2000, Seed: 1})
	c := GenerateClip(ClipSpec{DurationMS: 500, BitrateKbps: 2000, Seed: 2})
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different clips")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical clips")
	}
}

func TestValidateClipDetectsDamage(t *testing.T) {
	clip := GenerateClip(ClipSpec{DurationMS: 100, BitrateKbps: 2000, Seed: 3})
	// Break a sync byte.
	bad := append([]byte(nil), clip...)
	bad[TSPacketSize] = 0x00
	if err := ValidateClip(bad); err == nil {
		t.Error("broken sync accepted")
	}
	// Break continuity: swap two packets of the same PID.
	bad2 := append([]byte(nil), clip...)
	copy(bad2[0:TSPacketSize], clip[2*TSPacketSize:3*TSPacketSize])
	if err := ValidateClip(bad2); err == nil {
		t.Error("continuity jump accepted")
	}
	if err := ValidateClip(clip[:100]); err == nil {
		t.Error("misaligned clip accepted")
	}
}

func TestLocalStorageLifecycle(t *testing.T) {
	ls := NewLocalStorage(100)
	if err := ls.Put("app-1", "scores.xml", bytes.Repeat([]byte("x"), 60)); err != nil {
		t.Fatal(err)
	}
	if ls.Used() != 60 {
		t.Errorf("used = %d", ls.Used())
	}
	// Over quota.
	if err := ls.Put("app-1", "big.bin", bytes.Repeat([]byte("y"), 50)); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("quota err = %v", err)
	}
	// Replacing counts the delta, not the sum.
	if err := ls.Put("app-1", "scores.xml", bytes.Repeat([]byte("x"), 90)); err != nil {
		t.Errorf("replace within quota: %v", err)
	}
	got, err := ls.Get("app-1", "scores.xml")
	if err != nil || len(got) != 90 {
		t.Errorf("get = %d bytes, %v", len(got), err)
	}
	if _, err := ls.Get("app-1", "missing"); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing err = %v", err)
	}
	if _, err := ls.Get("app-2", "scores.xml"); err == nil {
		t.Error("cross-app read succeeded")
	}
	names := ls.List("app-1")
	if len(names) != 1 || names[0] != "scores.xml" {
		t.Errorf("list = %v", names)
	}
	if !ls.Delete("app-1", "scores.xml") || ls.Delete("app-1", "scores.xml") {
		t.Error("delete semantics wrong")
	}
	if ls.Used() != 0 {
		t.Errorf("used after delete = %d", ls.Used())
	}
	if err := ls.Put("", "x", nil); err == nil {
		t.Error("empty app id accepted")
	}
	if err := ls.Put("a/b", "x", nil); err == nil {
		t.Error("slash in app id accepted")
	}
	if NewLocalStorage(0).Quota() != DefaultStorageQuota {
		t.Error("default quota not applied")
	}
}

func TestImageResolveReference(t *testing.T) {
	im := NewImage()
	im.Put("CLIPS/c.m2ts", []byte("clip"))
	for _, uri := range []string{"CLIPS/c.m2ts", "disc://CLIPS/c.m2ts"} {
		b, err := im.ResolveReference(uri)
		if err != nil || string(b) != "clip" {
			t.Errorf("resolve %q = %q, %v", uri, b, err)
		}
	}
}

func TestImageFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/disc.img"
	im := NewImage()
	im.Put("a/b", []byte("payload"))
	if err := im.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadImageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Get("a/b")
	if err != nil || string(b) != "payload" {
		t.Errorf("round trip = %q, %v", b, err)
	}
	if _, err := LoadImageFile(dir + "/missing.img"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOpenLocalStoragePersistence(t *testing.T) {
	dir := t.TempDir()
	ls, err := OpenLocalStorage(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.Put("app-1", "scores.xml", []byte("best=300")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Put("app-1", "weird/name with spaces", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := ls.Put("app-2", "other", []byte("x")); err != nil {
		t.Fatal(err)
	}
	ls.Delete("app-2", "other")

	// Reopen: state survives.
	ls2, err := OpenLocalStorage(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ls2.Get("app-1", "scores.xml")
	if err != nil || string(b) != "best=300" {
		t.Errorf("reloaded scores = %q, %v", b, err)
	}
	b, err = ls2.Get("app-1", "weird/name with spaces")
	if err != nil || string(b) != "v" {
		t.Errorf("escaped name entry = %q, %v", b, err)
	}
	if _, err := ls2.Get("app-2", "other"); err == nil {
		t.Error("deleted entry survived reopen")
	}
	if ls2.Used() != ls.Used() {
		t.Errorf("used %d != %d after reopen", ls2.Used(), ls.Used())
	}

	// Quota enforced against preexisting content.
	if _, err := OpenLocalStorage(dir, 5); err == nil {
		t.Error("reopen under quota accepted")
	}
}
