package disc

import (
	"errors"
	"fmt"
)

// Synthetic MPEG-2 transport stream generation. The paper's prototype
// handled studio HD footage; for the reproduction, the security pipeline
// treats A/V as opaque octets, so what matters is realistic framing and
// size. Streams produced here are structurally valid TS packet sequences:
// 188-byte packets with 0x47 sync bytes, PID multiplexing, continuity
// counters, and a PES-like header at the start of each payload unit.

// TSPacketSize is the MPEG-2 transport stream packet size.
const TSPacketSize = 188

// tsSyncByte is the MPEG-2 TS sync byte.
const tsSyncByte = 0x47

// ClipSpec parameterizes synthetic clip generation.
type ClipSpec struct {
	// DurationMS is the clip duration in milliseconds.
	DurationMS int64
	// BitrateKbps is the nominal stream bitrate (default 24000, a
	// typical HD rate).
	BitrateKbps int
	// Seed makes generation deterministic.
	Seed uint64
	// PIDs lists the elementary stream PIDs to multiplex (default
	// video 0x1011 and audio 0x1100, the BD-ROM conventions).
	PIDs []uint16
}

// GenerateClip produces a synthetic transport stream of the size implied
// by duration and bitrate.
func GenerateClip(spec ClipSpec) []byte {
	if spec.BitrateKbps <= 0 {
		spec.BitrateKbps = 24000
	}
	if spec.DurationMS <= 0 {
		spec.DurationMS = 1000
	}
	if len(spec.PIDs) == 0 {
		spec.PIDs = []uint16{0x1011, 0x1100}
	}
	totalBytes := spec.DurationMS * int64(spec.BitrateKbps) * 1000 / 8 / 1000
	packets := int(totalBytes / TSPacketSize)
	if packets < 1 {
		packets = 1
	}

	rng := splitMix64(spec.Seed)
	out := make([]byte, packets*TSPacketSize)
	counters := make(map[uint16]byte, len(spec.PIDs))

	for p := 0; p < packets; p++ {
		pkt := out[p*TSPacketSize : (p+1)*TSPacketSize]
		pid := spec.PIDs[p%len(spec.PIDs)]
		cc := counters[pid]
		counters[pid] = (cc + 1) & 0x0F

		payloadUnitStart := p%16 == 0
		pkt[0] = tsSyncByte
		pkt[1] = byte(pid >> 8 & 0x1F)
		if payloadUnitStart {
			pkt[1] |= 0x40
		}
		pkt[2] = byte(pid)
		pkt[3] = 0x10 | cc // adaptation: payload only

		body := pkt[4:]
		if payloadUnitStart {
			// PES-like start code prefix and stream id.
			body[0], body[1], body[2] = 0x00, 0x00, 0x01
			body[3] = 0xE0 // video stream id class
			body = body[4:]
		}
		for i := 0; i < len(body); i += 8 {
			v := rng()
			for j := 0; j < 8 && i+j < len(body); j++ {
				body[i+j] = byte(v >> (8 * j))
			}
		}
	}
	return out
}

// ValidateClip checks structural transport-stream invariants: packet
// alignment, sync bytes, and per-PID continuity counters.
func ValidateClip(data []byte) error {
	if len(data) == 0 || len(data)%TSPacketSize != 0 {
		return fmt.Errorf("disc: clip length %d is not a multiple of %d", len(data), TSPacketSize)
	}
	last := map[uint16]int{}
	for p := 0; p*TSPacketSize < len(data); p++ {
		pkt := data[p*TSPacketSize:]
		if pkt[0] != tsSyncByte {
			return fmt.Errorf("disc: packet %d missing sync byte", p)
		}
		pid := uint16(pkt[1]&0x1F)<<8 | uint16(pkt[2])
		cc := int(pkt[3] & 0x0F)
		if prev, seen := last[pid]; seen {
			if cc != (prev+1)&0x0F {
				return fmt.Errorf("disc: packet %d PID %#x continuity jump %d -> %d", p, pid, prev, cc)
			}
		}
		last[pid] = cc
	}
	return nil
}

// ClipPIDs returns the distinct PIDs present in a stream.
func ClipPIDs(data []byte) ([]uint16, error) {
	if len(data)%TSPacketSize != 0 {
		return nil, errors.New("disc: misaligned clip")
	}
	seen := map[uint16]bool{}
	var out []uint16
	for p := 0; p*TSPacketSize < len(data); p++ {
		pkt := data[p*TSPacketSize:]
		pid := uint16(pkt[1]&0x1F)<<8 | uint16(pkt[2])
		if !seen[pid] {
			seen[pid] = true
			out = append(out, pid)
		}
	}
	return out, nil
}

// splitMix64 returns a fast deterministic PRNG.
func splitMix64(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}
