package disc

import (
	"fmt"
	"sync"
	"testing"
)

// The image and local storage are shared between the engine and
// playback paths; exercise them concurrently (run with -race).
func TestImageConcurrentAccess(t *testing.T) {
	im := NewImage()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				path := fmt.Sprintf("W%d/file-%d", w, i)
				if err := im.Put(path, []byte{byte(w), byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := im.Get(path); err != nil {
					t.Error(err)
					return
				}
				im.Paths()
				im.Size()
			}
		}(w)
	}
	wg.Wait()
	if got := len(im.Paths()); got != 8*50 {
		t.Errorf("paths = %d", got)
	}
}

func TestLocalStorageConcurrentAccess(t *testing.T) {
	ls := NewLocalStorage(1 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			app := fmt.Sprintf("app-%d", w)
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("e%d", i)
				if err := ls.Put(app, name, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, err := ls.Get(app, name); err != nil {
					t.Error(err)
					return
				}
				ls.List(app)
				ls.Used()
			}
		}(w)
	}
	wg.Wait()
}
