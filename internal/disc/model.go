// Package disc models the next-generation optical disc content hierarchy
// of the paper's §2 (Fig. 2): an Interactive Cluster containing Tracks,
// which hold Audio/Video Playlists (referencing Clip Information and
// MPEG-2 transport stream files) and Application Manifests (Markup +
// Code, decomposed into SubMarkups and Scripts).
//
// The package also provides the disc substrate the prototype needs: a
// virtual disc image container, a synthetic transport-stream generator
// standing in for studio HD footage, and the player's quota-managed local
// storage.
package disc

import (
	"errors"
	"fmt"

	"discsec/internal/xmldom"
)

// ClusterNamespace is the XML namespace of the content hierarchy
// vocabulary.
const ClusterNamespace = "urn:discsec:cluster"

// TrackKind distinguishes A/V tracks from application tracks.
type TrackKind string

// Track kinds.
const (
	TrackAV          TrackKind = "av"
	TrackApplication TrackKind = "application"
)

// InteractiveCluster is the top of the content hierarchy: the generic
// representation of packaged content including video, audio, and markup
// application.
type InteractiveCluster struct {
	// Title names the packaged work.
	Title string
	// Tracks are the chapters: A/V playlists and application manifests.
	Tracks []*Track
}

// Track is one chapter: either an A/V playlist or an application
// manifest.
type Track struct {
	// ID identifies the track within the cluster.
	ID string
	// Kind selects the payload variant.
	Kind TrackKind
	// Playlist is set for A/V tracks.
	Playlist *Playlist
	// Manifest is set for application tracks.
	Manifest *Manifest
}

// Playlist holds meta-information about play items and refers to clip
// information.
type Playlist struct {
	Name  string
	Items []PlayItem
}

// PlayItem is one entry of a playlist.
type PlayItem struct {
	// ClipID refers to a ClipInfo.
	ClipID string
	// InMS/OutMS bound the presented range in milliseconds.
	InMS, OutMS int64
}

// ClipInfo links a playlist to an MPEG-2 transport stream file on the
// disc.
type ClipInfo struct {
	ID string
	// File is the image path of the transport stream.
	File string
	// DurationMS is the clip duration in milliseconds.
	DurationMS int64
	// BitrateKbps is the nominal stream bitrate.
	BitrateKbps int
}

// Manifest represents the Interactive Application: the markup part
// captures static composition (layout, timing), the code part adds
// programmability.
type Manifest struct {
	// ID is the application identifier (also the signing target Id).
	ID string
	// Markup is the static composition.
	Markup Markup
	// Code is the programmable part.
	Code Code
	// PermissionFile is the image path of the attached permission
	// request file, empty when none.
	PermissionFile string
}

// Markup is the static part of a manifest, split into SubMarkups
// separating characteristics of the application (layout vs. timing).
type Markup struct {
	SubMarkups []SubMarkup
}

// SubMarkup is one markup concern. Content is a generic element tree; the
// internal/markup package interprets the SMIL-lite vocabularies.
type SubMarkup struct {
	// Kind labels the concern ("layout", "timing", ...).
	Kind string
	// Content is the root element of the submarkup.
	Content *xmldom.Element
}

// Code is the programmable part of a manifest.
type Code struct {
	Scripts []Script
}

// Script is one script of the code part.
type Script struct {
	// Language identifies the scripting language ("ecmascript").
	Language string
	// Source is the script text.
	Source string
}

// --- XML serialization -----------------------------------------------

// Document renders the cluster in the urn:discsec:cluster vocabulary.
func (c *InteractiveCluster) Document() *xmldom.Document {
	doc := &xmldom.Document{}
	root := xmldom.NewElement("cluster")
	root.DeclareNamespace("", ClusterNamespace)
	if c.Title != "" {
		root.SetAttr("title", c.Title)
	}
	for _, tr := range c.Tracks {
		root.AppendChild(tr.Element())
	}
	doc.SetRoot(root)
	return doc
}

// Element renders the track subtree (also used by the library routes to
// serve one verified track without re-serializing the whole cluster).
func (t *Track) Element() *xmldom.Element {
	el := xmldom.NewElement("track")
	el.SetAttr("Id", t.ID)
	el.SetAttr("kind", string(t.Kind))
	if t.Playlist != nil {
		pl := el.CreateChild("playlist")
		if t.Playlist.Name != "" {
			pl.SetAttr("name", t.Playlist.Name)
		}
		for _, it := range t.Playlist.Items {
			item := pl.CreateChild("playitem")
			item.SetAttr("clip", it.ClipID)
			item.SetAttr("in", fmt.Sprintf("%d", it.InMS))
			item.SetAttr("out", fmt.Sprintf("%d", it.OutMS))
		}
	}
	if t.Manifest != nil {
		el.AppendChild(t.Manifest.Element())
	}
	return el
}

// Element renders the manifest subtree.
func (m *Manifest) Element() *xmldom.Element {
	el := xmldom.NewElement("manifest")
	if m.ID != "" {
		el.SetAttr("Id", m.ID)
	}
	if m.PermissionFile != "" {
		el.SetAttr("permissionfile", m.PermissionFile)
	}
	mk := el.CreateChild("markup")
	for _, sm := range m.Markup.SubMarkups {
		smEl := mk.CreateChild("submarkup")
		smEl.SetAttr("kind", sm.Kind)
		if sm.Content != nil {
			smEl.AppendChild(sm.Content.Clone())
		}
	}
	code := el.CreateChild("code")
	for _, s := range m.Code.Scripts {
		sEl := code.CreateChild("script")
		lang := s.Language
		if lang == "" {
			lang = "ecmascript"
		}
		sEl.SetAttr("language", lang)
		sEl.AddText(s.Source)
	}
	return el
}

// ParseCluster reads a cluster document back into the model.
func ParseCluster(doc *xmldom.Document) (*InteractiveCluster, error) {
	root := doc.Root()
	if root == nil || root.Local != "cluster" || root.NamespaceURI() != ClusterNamespace {
		return nil, errors.New("disc: document element must be cluster in " + ClusterNamespace)
	}
	c := &InteractiveCluster{Title: root.AttrValue("title")}
	for _, trEl := range root.ChildElementsNamed(ClusterNamespace, "track") {
		tr, err := parseTrack(trEl)
		if err != nil {
			return nil, err
		}
		c.Tracks = append(c.Tracks, tr)
	}
	return c, nil
}

// ParseClusterString parses a cluster from text.
func ParseClusterString(s string) (*InteractiveCluster, error) {
	doc, err := xmldom.ParseString(s)
	if err != nil {
		return nil, err
	}
	return ParseCluster(doc)
}

func parseTrack(el *xmldom.Element) (*Track, error) {
	tr := &Track{ID: el.AttrValue("Id"), Kind: TrackKind(el.AttrValue("kind"))}
	switch tr.Kind {
	case TrackAV, TrackApplication:
	default:
		return nil, fmt.Errorf("disc: track %q has unknown kind %q", tr.ID, tr.Kind)
	}
	if plEl := el.FirstChildNamed(ClusterNamespace, "playlist"); plEl != nil {
		pl := &Playlist{Name: plEl.AttrValue("name")}
		for _, itEl := range plEl.ChildElementsNamed(ClusterNamespace, "playitem") {
			item := PlayItem{ClipID: itEl.AttrValue("clip")}
			if _, err := fmt.Sscanf(itEl.AttrValue("in"), "%d", &item.InMS); err != nil {
				return nil, fmt.Errorf("disc: playitem in: %w", err)
			}
			if _, err := fmt.Sscanf(itEl.AttrValue("out"), "%d", &item.OutMS); err != nil {
				return nil, fmt.Errorf("disc: playitem out: %w", err)
			}
			pl.Items = append(pl.Items, item)
		}
		tr.Playlist = pl
	}
	if mEl := el.FirstChildNamed(ClusterNamespace, "manifest"); mEl != nil {
		m, err := ParseManifestElement(mEl)
		if err != nil {
			return nil, err
		}
		tr.Manifest = m
	}
	if tr.Kind == TrackAV && tr.Playlist == nil {
		return nil, fmt.Errorf("disc: av track %q has no playlist", tr.ID)
	}
	if tr.Kind == TrackApplication && tr.Manifest == nil {
		return nil, fmt.Errorf("disc: application track %q has no manifest", tr.ID)
	}
	return tr, nil
}

// ParseManifestElement reads a manifest element back into the model.
func ParseManifestElement(el *xmldom.Element) (*Manifest, error) {
	m := &Manifest{ID: el.AttrValue("Id"), PermissionFile: el.AttrValue("permissionfile")}
	if mk := el.FirstChildNamed(ClusterNamespace, "markup"); mk != nil {
		for _, smEl := range mk.ChildElementsNamed(ClusterNamespace, "submarkup") {
			sm := SubMarkup{Kind: smEl.AttrValue("kind")}
			if kids := smEl.ChildElements(); len(kids) > 0 {
				sm.Content = kids[0].Clone()
			}
			m.Markup.SubMarkups = append(m.Markup.SubMarkups, sm)
		}
	}
	if code := el.FirstChildNamed(ClusterNamespace, "code"); code != nil {
		for _, sEl := range code.ChildElementsNamed(ClusterNamespace, "script") {
			m.Code.Scripts = append(m.Code.Scripts, Script{
				Language: sEl.AttrValue("language"),
				Source:   sEl.Text(),
			})
		}
	}
	return m, nil
}

// FindTrack returns the track with the given ID, or nil.
func (c *InteractiveCluster) FindTrack(id string) *Track {
	for _, t := range c.Tracks {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// ApplicationTracks returns the application tracks in order.
func (c *InteractiveCluster) ApplicationTracks() []*Track {
	var out []*Track
	for _, t := range c.Tracks {
		if t.Kind == TrackApplication {
			out = append(out, t)
		}
	}
	return out
}

// AVTracks returns the audio/video tracks in order.
func (c *InteractiveCluster) AVTracks() []*Track {
	var out []*Track
	for _, t := range c.Tracks {
		if t.Kind == TrackAV {
			out = append(out, t)
		}
	}
	return out
}
