package disc

import "testing"

// FuzzParseCluster checks the content-hierarchy decoder against
// arbitrary input: no panics, and accepted clusters round-trip through
// their XML form.
func FuzzParseCluster(f *testing.F) {
	f.Add(`<cluster xmlns="urn:discsec:cluster" title="t"><track Id="a" kind="av"><playlist><playitem clip="c" in="0" out="5"/></playlist></track></cluster>`)
	f.Add(`<cluster xmlns="urn:discsec:cluster"><track Id="b" kind="application"><manifest Id="m"><markup><submarkup kind="layout"><x/></submarkup></markup><code><script language="ecmascript">var v=1;</script></code></manifest></track></cluster>`)
	f.Add(`<cluster/>`)
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseClusterString(s)
		if err != nil {
			return
		}
		back, err := ParseClusterString(c.Document().String())
		if err != nil {
			t.Fatalf("accepted cluster did not round-trip: %v", err)
		}
		if len(back.Tracks) != len(c.Tracks) {
			t.Fatalf("track count changed: %d -> %d", len(c.Tracks), len(back.Tracks))
		}
	})
}
