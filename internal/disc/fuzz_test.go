package disc

import (
	"strings"
	"testing"
)

// FuzzParseCluster checks the content-hierarchy decoder against
// arbitrary input: no panics, and accepted clusters round-trip through
// their XML form.
func FuzzParseCluster(f *testing.F) {
	f.Add(`<cluster xmlns="urn:discsec:cluster" title="t"><track Id="a" kind="av"><playlist><playitem clip="c" in="0" out="5"/></playlist></track></cluster>`)
	f.Add(`<cluster xmlns="urn:discsec:cluster"><track Id="b" kind="application"><manifest Id="m"><markup><submarkup kind="layout"><x/></submarkup></markup><code><script language="ecmascript">var v=1;</script></code></manifest></track></cluster>`)
	f.Add(`<cluster/>`)
	// Entity-like titles and script text must survive as plain data.
	f.Add(`<cluster xmlns="urn:discsec:cluster" title="&amp;notanentity; &lt;evil&gt; &#38;"><track Id="a" kind="application"><manifest Id="m"><code><script language="ecmascript">var s = "&amp;x;";</script></code></manifest></track></cluster>`)
	// Deeply nested submarkup payloads probe the DOM depth limits.
	f.Add(`<cluster xmlns="urn:discsec:cluster"><track Id="d" kind="application"><manifest Id="m"><markup><submarkup kind="layout">` +
		strings.Repeat(`<div>`, 64) + `<leaf/>` + strings.Repeat(`</div>`, 64) +
		`</submarkup></markup></manifest></track></cluster>`)
	// Doctype declarations must stay rejected (XXE surface).
	f.Add(`<!DOCTYPE cluster [<!ENTITY x "y">]><cluster xmlns="urn:discsec:cluster"/>`)
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParseClusterString(s)
		if err != nil {
			return
		}
		back, err := ParseClusterString(c.Document().String())
		if err != nil {
			t.Fatalf("accepted cluster did not round-trip: %v", err)
		}
		if len(back.Tracks) != len(c.Tracks) {
			t.Fatalf("track count changed: %d -> %d", len(c.Tracks), len(back.Tracks))
		}
	})
}
