package xmldsig

import (
	"crypto/subtle"
	"encoding/base64"
	"errors"
	"fmt"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// ds:Manifest support (XML-DSig core §2.3 / §5.1): a Manifest is a list
// of References wrapped in a ds:Object and referenced from SignedInfo
// with Type Manifest. Core validation covers only the digest of the
// Manifest element itself; validating the references *inside* the
// manifest is application-defined and does not abort core validation.
//
// In the disc context this is the natural shape for "one signature over
// many resources with per-resource failure reporting": a damaged bonus
// clip is reported individually while the rest of the package remains
// verifiably intact.

// ManifestType is the Reference Type identifier marking a manifest
// reference.
const ManifestType = "http://www.w3.org/2000/09/xmldsig#Manifest"

// SignManifest builds a standalone signature whose SignedInfo covers a
// ds:Manifest of the given references (dereferenced through resolver).
// manifestID names the embedded manifest element.
func SignManifest(refs []ReferenceSpec, manifestID string, resolver ExternalResolver, opts SignOptions) (*xmldom.Document, error) {
	if len(refs) == 0 {
		return nil, errors.New("xmldsig: SignManifest requires at least one reference")
	}
	if manifestID == "" {
		manifestID = "manifest-1"
	}
	if err := opts.normalize(); err != nil {
		return nil, err
	}

	doc := &xmldom.Document{}
	sig := xmldom.NewElement(DefaultPrefix + ":Signature")
	sig.DeclareNamespace(DefaultPrefix, xmlsecuri.DSigNamespace)
	doc.SetRoot(sig)

	obj := xmldom.NewElement(DefaultPrefix + ":Object")
	man := obj.CreateChild(DefaultPrefix + ":Manifest")
	man.SetAttr("Id", manifestID)
	sig.AppendChild(obj)

	h, err := HashByDigestURI(opts.DigestMethod)
	if err != nil {
		return nil, err
	}
	for _, rs := range refs {
		data, err := dereference(rs.URI, doc, resolver)
		if err != nil {
			return nil, err
		}
		chain, err := specChain(rs)
		if err != nil {
			return nil, err
		}
		octets, err := applyTransforms(data, chain, sig, nil)
		if err != nil {
			return nil, err
		}
		hasher := h.New()
		hasher.Write(octets)

		refEl := man.CreateChild(DefaultPrefix + ":Reference")
		refEl.SetAttr("URI", rs.URI)
		if len(rs.Transforms) > 0 {
			ts := refEl.CreateChild(DefaultPrefix + ":Transforms")
			for _, alg := range rs.Transforms {
				ts.CreateChild(DefaultPrefix+":Transform").SetAttr("Algorithm", alg)
			}
		}
		refEl.CreateChild(DefaultPrefix+":DigestMethod").SetAttr("Algorithm", opts.DigestMethod)
		refEl.CreateChild(DefaultPrefix + ":DigestValue").SetText(base64.StdEncoding.EncodeToString(hasher.Sum(nil)))
	}

	// SignedInfo covers the manifest element by reference.
	siRefs := []ReferenceSpec{{
		URI:        "#" + manifestID,
		Type:       ManifestType,
		Transforms: []string{xmlsecuri.ExcC14N},
	}}
	if _, err := signInDocumentWithResolver(doc, nil, siRefs, sig, resolver, opts); err != nil {
		return nil, err
	}
	return doc, nil
}

// ManifestReferenceResult reports validation of one reference inside a
// ds:Manifest.
type ManifestReferenceResult struct {
	URI   string
	Valid bool
	// Err carries the dereference/processing failure when Valid is
	// false for a reason other than digest mismatch.
	Err error
}

// ValidateManifests validates every Reference inside every ds:Manifest
// of the signature, per XML-DSig §5.1: failures here are reported
// individually and do NOT constitute core-validation failure (the
// caller decides policy). Core validation (Verify) must have succeeded
// first for these results to mean anything.
func ValidateManifests(doc *xmldom.Document, sig *xmldom.Element, opts VerifyOptions) ([]ManifestReferenceResult, error) {
	if sig == nil {
		return nil, ErrNoSignature
	}
	var out []ManifestReferenceResult
	for _, obj := range sig.ChildElementsNamed(xmlsecuri.DSigNamespace, "Object") {
		for _, man := range obj.ChildElementsNamed(xmlsecuri.DSigNamespace, "Manifest") {
			for _, refEl := range man.ChildElementsNamed(xmlsecuri.DSigNamespace, "Reference") {
				out = append(out, validateManifestReference(doc, sig, refEl, opts))
			}
		}
	}
	return out, nil
}

func validateManifestReference(doc *xmldom.Document, sig, refEl *xmldom.Element, opts VerifyOptions) ManifestReferenceResult {
	uri := refEl.AttrValue("URI")
	res := ManifestReferenceResult{URI: uri}

	dmEl := refEl.FirstChildNamed(xmlsecuri.DSigNamespace, "DigestMethod")
	dvEl := refEl.FirstChildNamed(xmlsecuri.DSigNamespace, "DigestValue")
	if dmEl == nil || dvEl == nil {
		res.Err = errors.New("xmldsig: manifest Reference missing DigestMethod or DigestValue")
		return res
	}
	h, err := HashByDigestURI(dmEl.AttrValue("Algorithm"))
	if err != nil {
		res.Err = err
		return res
	}
	want, err := decodeBase64Text(dvEl.Text())
	if err != nil {
		res.Err = fmt.Errorf("xmldsig: manifest DigestValue: %w", err)
		return res
	}
	data, err := dereference(uri, doc, opts.Resolver)
	if err != nil {
		res.Err = err
		return res
	}
	chain, err := parseTransforms(refEl)
	if err != nil {
		res.Err = err
		return res
	}
	octets, err := applyTransforms(data, chain, sig, nil)
	if err != nil {
		res.Err = err
		return res
	}
	hasher := h.New()
	hasher.Write(octets)
	res.Valid = subtle.ConstantTimeCompare(hasher.Sum(nil), want) == 1
	return res
}
