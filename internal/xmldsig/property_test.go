package xmldsig

import (
	"strings"
	"testing"
	"testing/quick"

	"discsec/internal/workload"
	"discsec/internal/xmldom"
)

// Property: any generated document signs and verifies after a serialize
// + reparse round trip, across sizes and seeds.
func TestSignVerifyRoundTripProperty(t *testing.T) {
	f := func(seed uint16, sizeSel uint8) bool {
		size := []int{200, 1000, 5000}[int(sizeSel)%3]
		doc := workload.XMLDocument(size, uint64(seed))
		if _, err := SignEnveloped(doc, nil, SignOptions{
			Key:     testRSAKey,
			KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
		}); err != nil {
			return false
		}
		rx, err := xmldom.ParseBytes(doc.Bytes())
		if err != nil {
			return false
		}
		_, err = VerifyDocument(rx, VerifyOptions{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single non-whitespace character inside the
// signed content region breaks verification.
func TestSingleCharacterTamperDetectedProperty(t *testing.T) {
	doc := workload.XMLDocument(800, 7)
	if _, err := SignEnveloped(doc, nil, SignOptions{
		Key:     testRSAKey,
		KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
	}); err != nil {
		t.Fatal(err)
	}
	serialized := doc.Root().String()
	// Identify a span inside signed text content to mutate: the first
	// "data-" run.
	idx := strings.Index(serialized, "data-")
	if idx < 0 {
		t.Fatal("setup: no data- text found")
	}

	f := func(offset uint8, repl uint8) bool {
		pos := idx + int(offset)%40
		c := byte('a' + repl%26)
		if serialized[pos] == c || serialized[pos] == '<' || serialized[pos] == '>' || serialized[pos] == '&' {
			return true // no-op or would change well-formedness
		}
		mutated := serialized[:pos] + string(c) + serialized[pos+1:]
		rx, err := xmldom.ParseString(mutated)
		if err != nil {
			return true // not well-formed; parser rejects, fine
		}
		_, err = VerifyDocument(rx, VerifyOptions{})
		return err != nil // MUST fail
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
