package xmldsig

import (
	"bytes"
	"crypto/sha256"
	"io"
	"runtime"
	"strings"
	"testing"

	"discsec/internal/c14n"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// domDigest is the DOM-pipeline reference: parse, tree-walk
// canonicalize, hash.
func domDigest(t testing.TB, data []byte) []byte {
	t.Helper()
	doc, err := xmldom.ParseBytes(data)
	if err != nil {
		t.Fatalf("reference parse: %v", err)
	}
	canon, err := c14n.CanonicalizeDocument(doc, c14n.Options{Exclusive: true})
	if err != nil {
		t.Fatalf("reference c14n: %v", err)
	}
	sum := sha256.Sum256(canon)
	return sum[:]
}

func TestDigestDocumentReaderMatchesDOM(t *testing.T) {
	docs := []string{
		`<r/>`,
		`<a xmlns="urn:d" xmlns:p="urn:p"><p:b k="v">t</p:b><!-- c --><?pi d?></a>`,
		`<r>&amp;&lt;&#65;<![CDATA[x]]></r>`,
		`<a xmlns:x="urn:x" x:k="v"><x:b/><c xmlns=""/></a>`,
	}
	for _, d := range docs {
		got, err := DigestDocumentReader(strings.NewReader(d), c14n.Options{Exclusive: true}, xmlsecuri.DigestSHA256)
		if err != nil {
			t.Fatalf("%q: %v", d, err)
		}
		if want := domDigest(t, []byte(d)); !bytes.Equal(got, want) {
			t.Errorf("%q: streaming digest %x != DOM digest %x", d, got, want)
		}
	}
}

// FuzzDigestDifferential pins the tentpole equivalence: for every
// input, the single-pass streaming digest and the DOM pipeline either
// both reject or both produce byte-identical digests. Seeds mirror the
// xmldom parser fuzz corpus so both fuzzers explore the same space.
func FuzzDigestDifferential(f *testing.F) {
	seeds := []string{
		`<r/>`,
		`<a xmlns="urn:d" xmlns:p="urn:p"><p:b k="v">t</p:b><!-- c --><?pi d?></a>`,
		`<r>&amp;&lt;&#65;<![CDATA[x]]></r>`,
		`<a><b></a></b>`,
		`<!DOCTYPE r><r/>`,
		`<r a="1" a="2"/>`,
		"<r>\xff\xfe</r>",
		`<a:b xmlns:a=""/>`,
		`<a xmlns:x="urn:x"><x:b xmlns:x="urn:y" x:k="v"/></a>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		stream, serr := DigestDocumentReader(bytes.NewReader(data), c14n.Options{Exclusive: true}, xmlsecuri.DigestSHA256)

		doc, perr := xmldom.ParseBytes(data)
		if perr != nil {
			if serr == nil {
				t.Fatalf("DOM rejected but stream accepted: %q", data)
			}
			return
		}
		canon, cerr := c14n.CanonicalizeDocument(doc, c14n.Options{Exclusive: true})
		if cerr != nil {
			if serr == nil {
				t.Fatalf("DOM c14n rejected but stream accepted: %q", data)
			}
			return
		}
		if serr != nil {
			t.Fatalf("DOM accepted but stream rejected (%v): %q", serr, data)
		}
		sum := sha256.Sum256(canon)
		if !bytes.Equal(stream, sum[:]) {
			t.Fatalf("digest divergence on %q:\nstream %x\ndom    %x", data, stream, sum)
		}
	})
}

// clipReader synthesizes a manifest-shaped document of arbitrary size
// without ever materializing it: a fixed token structure whose text
// payload repeats. This is the "multi-megabyte clip" source for the
// constant-memory tests.
type clipReader struct {
	parts [][]byte // header, body (repeated), footer
	part  int
	off   int
	left  int // body repetitions remaining
}

func newClipReader(bodyRepeats int) *clipReader {
	return &clipReader{
		parts: [][]byte{
			[]byte(`<cluster xmlns="urn:disc"><track id="t1"><clip enc="none">`),
			bytes.Repeat([]byte("0123456789abcdef"), 64), // 1 KiB per repeat
			[]byte(`</clip></track></cluster>`),
		},
		left: bodyRepeats,
	}
}

func (c *clipReader) size() int {
	return len(c.parts[0]) + c.left*len(c.parts[1]) + len(c.parts[2])
}

func (c *clipReader) Read(p []byte) (int, error) {
	for c.part < len(c.parts) {
		src := c.parts[c.part]
		if c.off < len(src) {
			n := copy(p, src[c.off:])
			c.off += n
			return n, nil
		}
		c.off = 0
		if c.part == 1 && c.left > 1 {
			c.left--
			continue
		}
		c.part++
	}
	return 0, io.EOF
}

// TestDigestReaderAllocsFlat: with the token structure fixed,
// allocation count must not scale with payload size — the pipeline
// allocates per token, never per byte. (The tokenizer's text buffer
// doubles as a single text node grows, so a log-factor handful of
// extra allocations is permitted; what is forbidden is linear growth.)
func TestDigestReaderAllocsFlat(t *testing.T) {
	allocs := func(repeats int) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := DigestDocumentReader(newClipReader(repeats), c14n.Options{Exclusive: true}, xmlsecuri.DigestSHA256); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := allocs(256)  // ~256 KiB
	large := allocs(4096) // ~4 MiB: 16x the payload
	if large > 2*small+32 {
		t.Errorf("allocations scale with payload: %v allocs at 256KiB vs %v at 4MiB", small, large)
	}
}

// TestDigestReaderHeapCeiling: digesting a clip far larger than the
// permitted resident set must not grow the live heap by anything near
// the clip size — the definition of the single-pass cold path.
func TestDigestReaderHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB streaming test")
	}
	src := newClipReader(32 << 10) // ~32 MiB
	clipSize := src.size()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sum, err := DigestDocumentReader(src, c14n.Options{Exclusive: true}, xmlsecuri.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	if len(sum) != sha256.Size {
		t.Fatalf("digest size %d", len(sum))
	}
	// Live-heap growth bounded far under the clip: the budget covers
	// tokenizer buffers and allocator noise, not the payload.
	const ceiling = 8 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Errorf("live heap grew %d bytes digesting a %d-byte clip (ceiling %d)", grew, clipSize, ceiling)
	}
}

// TestDigestReaderMatchesDOMOnLargeClip: the synthetic clip digests
// identically through both pipelines (guards the clipReader itself
// and the chunked-text merge at scale).
func TestDigestReaderMatchesDOMOnLargeClip(t *testing.T) {
	raw, err := io.ReadAll(newClipReader(2048)) // ~2 MiB
	if err != nil {
		t.Fatal(err)
	}
	got, err := DigestDocumentReader(newClipReader(2048), c14n.Options{Exclusive: true}, xmlsecuri.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	if want := domDigest(t, raw); !bytes.Equal(got, want) {
		t.Errorf("large-clip digest mismatch: stream %x dom %x", got, want)
	}
}

// TestHashReader: the octet-stream twin matches a direct hash.
func TestHashReader(t *testing.T) {
	data := bytes.Repeat([]byte("payload"), 1000)
	got, err := HashReader(bytes.NewReader(data), xmlsecuri.DigestSHA256)
	if err != nil {
		t.Fatal(err)
	}
	want := sha256.Sum256(data)
	if !bytes.Equal(got, want[:]) {
		t.Error("HashReader digest mismatch")
	}
	if _, err := HashReader(bytes.NewReader(data), "urn:nope"); err == nil {
		t.Error("unknown digest URI accepted")
	}
}
