package xmldsig

import (
	"crypto"
	"crypto/subtle"
	"crypto/x509"
	"errors"
	"fmt"

	"discsec/internal/c14n"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Verification errors distinguished for callers (the player bars
// execution on any of them, but reporting differs).
var (
	// ErrNoSignature indicates the document carries no ds:Signature.
	ErrNoSignature = errors.New("xmldsig: no Signature element found")
	// ErrDigestMismatch indicates a Reference failed digest validation
	// (content was modified after signing).
	ErrDigestMismatch = errors.New("xmldsig: reference digest mismatch")
	// ErrSignatureInvalid indicates SignatureValue failed cryptographic
	// validation.
	ErrSignatureInvalid = errors.New("xmldsig: signature validation failed")
	// ErrNoVerificationKey indicates no key could be resolved for the
	// signature.
	ErrNoVerificationKey = errors.New("xmldsig: no verification key available")
	// ErrUntrustedCertificate indicates the embedded certificate chain
	// does not lead to a trusted root.
	ErrUntrustedCertificate = errors.New("xmldsig: certificate not trusted")
)

// VerifyOptions configures signature validation.
type VerifyOptions struct {
	// Key pins the verification key, overriding KeyInfo hints.
	Key crypto.PublicKey
	// HMACKey supplies the shared secret for HMAC signature methods.
	HMACKey []byte
	// KeyByName resolves a ds:KeyName hint to a public key.
	KeyByName func(name string) (crypto.PublicKey, error)
	// Roots, when non-nil, requires that an embedded certificate chain
	// validate to one of these roots before its key is used; with a
	// nil pool embedded certificates are used without chain validation
	// (callers that need trust decisions should set Roots).
	Roots *x509.CertPool
	// Intermediates supplies additional chain-building certificates.
	Intermediates *x509.CertPool
	// Resolver dereferences external Reference URIs.
	Resolver ExternalResolver
	// AcceptedSignatureMethods, when non-empty, restricts the
	// algorithms a verifier accepts (algorithm-agility hardening).
	AcceptedSignatureMethods []string
	// Recorder, when non-nil, receives per-reference digest spans
	// (obs.StageDigest), SignatureValue validation spans
	// (obs.StageSignature), and the c14n spans beneath both.
	Recorder *obs.Recorder
}

// ReferenceResult reports validation of one ds:Reference.
type ReferenceResult struct {
	URI    string
	Valid  bool
	Digest []byte
}

// VerifyResult reports a completed core validation.
type VerifyResult struct {
	// SignatureMethod is the algorithm that validated the signature.
	SignatureMethod string
	// References holds per-reference digest results.
	References []ReferenceResult
	// KeyInfo carries the parsed key hints from the signature.
	KeyInfo *ParsedKeyInfo
	// SignerKey is the public key that validated SignatureValue (nil
	// for HMAC signatures). Callers deriving cache or trust identities
	// should fingerprint this key rather than the KeyInfo hints: it is
	// the key that actually checked out.
	SignerKey crypto.PublicKey
	// CertificateChainValidated reports whether an embedded X.509
	// chain was validated against the configured roots.
	CertificateChainValidated bool
}

// FindSignature locates the first ds:Signature element in the document.
func FindSignature(doc *xmldom.Document) *xmldom.Element {
	root := doc.Root()
	if root == nil {
		return nil
	}
	if root.NamespaceURI() == xmlsecuri.DSigNamespace && root.Local == "Signature" {
		return root
	}
	var found *xmldom.Element
	root.Walk(func(n xmldom.Node) bool {
		if found != nil {
			return false
		}
		e, ok := n.(*xmldom.Element)
		if !ok {
			return true
		}
		if e.Local == "Signature" && e.NamespaceURI() == xmlsecuri.DSigNamespace {
			found = e
			return false
		}
		return true
	})
	return found
}

// FindSignatures locates every ds:Signature element in the document.
func FindSignatures(doc *xmldom.Document) []*xmldom.Element {
	root := doc.Root()
	if root == nil {
		return nil
	}
	var out []*xmldom.Element
	root.Walk(func(n xmldom.Node) bool {
		e, ok := n.(*xmldom.Element)
		if !ok {
			return true
		}
		if e.Local == "Signature" && e.NamespaceURI() == xmlsecuri.DSigNamespace {
			out = append(out, e)
			return false // nested signatures inside a Signature are its own business
		}
		return true
	})
	return out
}

// VerifyDocument locates the first signature in doc and validates it.
func VerifyDocument(doc *xmldom.Document, opts VerifyOptions) (*VerifyResult, error) {
	sig := FindSignature(doc)
	if sig == nil {
		return nil, ErrNoSignature
	}
	return Verify(doc, sig, opts)
}

// Verify performs XML-DSig core validation of the given ds:Signature
// element within its document: reference validation (every digest must
// match) followed by signature validation over the canonicalized
// SignedInfo.
func Verify(doc *xmldom.Document, sig *xmldom.Element, opts VerifyOptions) (*VerifyResult, error) {
	if sig == nil {
		return nil, ErrNoSignature
	}
	si := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignedInfo")
	if si == nil {
		return nil, errors.New("xmldsig: Signature missing SignedInfo")
	}
	svEl := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignatureValue")
	if svEl == nil {
		return nil, errors.New("xmldsig: Signature missing SignatureValue")
	}
	cmEl := si.FirstChildNamed(xmlsecuri.DSigNamespace, "CanonicalizationMethod")
	smEl := si.FirstChildNamed(xmlsecuri.DSigNamespace, "SignatureMethod")
	if cmEl == nil || smEl == nil {
		return nil, errors.New("xmldsig: SignedInfo missing CanonicalizationMethod or SignatureMethod")
	}
	c14nURI := cmEl.AttrValue("Algorithm")
	sigMethod := smEl.AttrValue("Algorithm")
	if len(opts.AcceptedSignatureMethods) > 0 && !contains(opts.AcceptedSignatureMethods, sigMethod) {
		return nil, fmt.Errorf("xmldsig: signature method %q not accepted by policy", sigMethod)
	}

	refs := si.ChildElementsNamed(xmlsecuri.DSigNamespace, "Reference")
	if len(refs) == 0 {
		return nil, errors.New("xmldsig: SignedInfo contains no References")
	}
	if len(refs) > MaxReferences {
		return nil, fmt.Errorf("xmldsig: %d References exceeds limit %d", len(refs), MaxReferences)
	}

	result := &VerifyResult{SignatureMethod: sigMethod}

	// Reference validation.
	for _, refEl := range refs {
		rr, err := verifyReference(doc, sig, refEl, opts)
		if err != nil {
			if errors.Is(err, ErrDigestMismatch) {
				result.References = append(result.References, rr)
				return result, err
			}
			return nil, err
		}
		result.References = append(result.References, rr)
	}

	// Signature validation.
	siOpts, err := c14n.ByURI(c14nURI)
	if err != nil {
		return nil, err
	}
	siOpts.Recorder = opts.Recorder
	siOctets, err := c14n.Canonicalize(si, siOpts)
	if err != nil {
		return nil, err
	}
	sigVal, err := decodeBase64Text(svEl.Text())
	if err != nil {
		return nil, fmt.Errorf("xmldsig: SignatureValue: %w", err)
	}

	kiEl := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyInfo")
	ki, err := ParseKeyInfo(kiEl)
	if err != nil {
		return nil, err
	}
	result.KeyInfo = ki

	pub, chainValidated, err := resolveVerificationKey(ki, opts)
	if err != nil {
		return result, err
	}
	result.CertificateChainValidated = chainValidated

	if isHMACMethod(sigMethod) {
		sp := opts.Recorder.Start(obs.StageSignature)
		err := verifySignatureValue(sigMethod, siOctets, sigVal, nil, opts.HMACKey)
		sp.End()
		if err != nil {
			return result, fmt.Errorf("%w: %v", ErrSignatureInvalid, err)
		}
		return result, nil
	}
	if pub == nil {
		return result, ErrNoVerificationKey
	}
	sp := opts.Recorder.Start(obs.StageSignature)
	err = verifySignatureValue(sigMethod, siOctets, sigVal, pub, nil)
	sp.End()
	if err != nil {
		return result, fmt.Errorf("%w: %v", ErrSignatureInvalid, err)
	}
	result.SignerKey = pub
	return result, nil
}

// verifyReference validates one ds:Reference: dereference, transform
// chain, digest, constant-time compare. A digest mismatch returns the
// (invalid) ReferenceResult alongside ErrDigestMismatch so callers can
// report which reference failed; structural errors return a zero
// result.
func verifyReference(doc *xmldom.Document, sig, refEl *xmldom.Element, opts VerifyOptions) (ReferenceResult, error) {
	defer opts.Recorder.Start(obs.StageDigest).End()
	uri := refEl.AttrValue("URI")
	dmEl := refEl.FirstChildNamed(xmlsecuri.DSigNamespace, "DigestMethod")
	dvEl := refEl.FirstChildNamed(xmlsecuri.DSigNamespace, "DigestValue")
	if dmEl == nil || dvEl == nil {
		return ReferenceResult{}, fmt.Errorf("xmldsig: Reference %q missing DigestMethod or DigestValue", uri)
	}
	h, err := HashByDigestURI(dmEl.AttrValue("Algorithm"))
	if err != nil {
		return ReferenceResult{}, err
	}
	want, err := decodeBase64Text(dvEl.Text())
	if err != nil {
		return ReferenceResult{}, fmt.Errorf("xmldsig: Reference %q DigestValue: %w", uri, err)
	}
	data, err := dereference(uri, doc, opts.Resolver)
	if err != nil {
		return ReferenceResult{}, err
	}
	chain, err := parseTransforms(refEl)
	if err != nil {
		return ReferenceResult{}, err
	}
	octets, err := applyTransforms(data, chain, sig, opts.Recorder)
	if err != nil {
		return ReferenceResult{}, err
	}
	hasher := h.New()
	hasher.Write(octets)
	got := hasher.Sum(nil)
	rr := ReferenceResult{URI: uri, Valid: subtle.ConstantTimeCompare(got, want) == 1, Digest: got}
	if !rr.Valid {
		return rr, fmt.Errorf("%w: URI %q", ErrDigestMismatch, uri)
	}
	return rr, nil
}

func isHMACMethod(uri string) bool {
	return uri == xmlsecuri.SigHMACSHA1 || uri == xmlsecuri.SigHMACSHA256
}

// resolveVerificationKey selects the validation key: an explicit pinned
// key wins; otherwise embedded certificates (chain-validated when Roots
// is set), a bare KeyValue, and finally a KeyName lookup.
func resolveVerificationKey(ki *ParsedKeyInfo, opts VerifyOptions) (crypto.PublicKey, bool, error) {
	if opts.Key != nil {
		return opts.Key, false, nil
	}
	if ki == nil {
		return nil, false, nil
	}
	if len(ki.Certificates) > 0 {
		leaf := ki.Certificates[0]
		if opts.Roots != nil {
			inter := opts.Intermediates
			if inter == nil {
				inter = x509.NewCertPool()
			}
			for _, c := range ki.Certificates[1:] {
				inter.AddCert(c)
			}
			if _, err := leaf.Verify(x509.VerifyOptions{
				Roots:         opts.Roots,
				Intermediates: inter,
				KeyUsages:     []x509.ExtKeyUsage{x509.ExtKeyUsageAny},
			}); err != nil {
				return nil, false, fmt.Errorf("%w: %v", ErrUntrustedCertificate, err)
			}
			return leaf.PublicKey, true, nil
		}
		return leaf.PublicKey, false, nil
	}
	if ki.KeyValue != nil {
		return ki.KeyValue, false, nil
	}
	if ki.KeyName != "" && opts.KeyByName != nil {
		pub, err := opts.KeyByName(ki.KeyName)
		if err != nil {
			return nil, false, fmt.Errorf("xmldsig: KeyName %q: %w", ki.KeyName, err)
		}
		return pub, false, nil
	}
	return nil, false, nil
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
