package xmldsig

import (
	"errors"
	"testing"

	"discsec/internal/xmldom"
)

func manifestFixture(t *testing.T) (map[string][]byte, ExternalResolver) {
	t.Helper()
	files := map[string][]byte{
		"disc://BONUS/clip-a.m2ts": []byte("bonus clip a"),
		"disc://BONUS/clip-b.m2ts": []byte("bonus clip b"),
		"disc://BONUS/menu.xml":    []byte("<menu/>"),
	}
	resolver := ExternalResolverFunc(func(uri string) ([]byte, error) {
		b, ok := files[uri]
		if !ok {
			return nil, errors.New("not found: " + uri)
		}
		return b, nil
	})
	return files, resolver
}

func signedManifest(t *testing.T, resolver ExternalResolver) *xmldom.Document {
	t.Helper()
	refs := []ReferenceSpec{
		{URI: "disc://BONUS/clip-a.m2ts"},
		{URI: "disc://BONUS/clip-b.m2ts"},
		{URI: "disc://BONUS/menu.xml"},
	}
	doc, err := SignManifest(refs, "bonus-manifest", resolver, SignOptions{
		Key:     testRSAKey,
		KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestManifestSignAndValidate(t *testing.T) {
	_, resolver := manifestFixture(t)
	doc := signedManifest(t, resolver)

	// Round trip through serialization.
	rx := parseDoc(t, doc.Root().String())
	sig := FindSignature(rx)

	// Core validation: covers the manifest element itself.
	if _, err := Verify(rx, sig, VerifyOptions{Resolver: resolver}); err != nil {
		t.Fatalf("core validation: %v", err)
	}

	// Per-resource validation.
	results, err := ValidateManifests(rx, sig, VerifyOptions{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Valid {
			t.Errorf("%s invalid: %v", r.URI, r.Err)
		}
	}
}

func TestManifestPartialDamageReportedIndividually(t *testing.T) {
	files, resolver := manifestFixture(t)
	doc := signedManifest(t, resolver)
	rx := parseDoc(t, doc.Root().String())
	sig := FindSignature(rx)

	// Damage ONE resource.
	files["disc://BONUS/clip-b.m2ts"] = []byte("corrupted")

	// Core validation still passes: the manifest element is intact.
	if _, err := Verify(rx, sig, VerifyOptions{Resolver: resolver}); err != nil {
		t.Fatalf("core validation should not depend on manifest contents: %v", err)
	}

	results, err := ValidateManifests(rx, sig, VerifyOptions{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	var broken string
	for _, r := range results {
		if r.Valid {
			valid++
		} else {
			broken = r.URI
		}
	}
	if valid != 2 || broken != "disc://BONUS/clip-b.m2ts" {
		t.Errorf("results = %+v", results)
	}
}

func TestManifestElementTamperFailsCore(t *testing.T) {
	_, resolver := manifestFixture(t)
	doc := signedManifest(t, resolver)
	// Attacker edits a DigestValue inside the manifest (to hide a
	// swapped resource): the SignedInfo reference over the manifest
	// breaks.
	man, _ := doc.Root().Find("//Manifest/Reference/DigestValue")
	if man == nil {
		t.Fatal("no manifest digest found")
	}
	man.SetText("AAAA" + man.Text()[4:])
	rx := parseDoc(t, doc.Root().String())
	sig := FindSignature(rx)
	if _, err := Verify(rx, sig, VerifyOptions{Resolver: resolver}); err == nil {
		t.Error("tampered manifest passed core validation")
	}
}

func TestManifestMissingResource(t *testing.T) {
	files, resolver := manifestFixture(t)
	doc := signedManifest(t, resolver)
	rx := parseDoc(t, doc.Root().String())
	sig := FindSignature(rx)
	delete(files, "disc://BONUS/menu.xml")
	results, err := ValidateManifests(rx, sig, VerifyOptions{Resolver: resolver})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range results {
		if r.URI == "disc://BONUS/menu.xml" {
			found = true
			if r.Valid || r.Err == nil {
				t.Errorf("missing resource reported as %+v", r)
			}
		}
	}
	if !found {
		t.Error("missing resource not in results")
	}
}

func TestSignManifestValidation(t *testing.T) {
	_, resolver := manifestFixture(t)
	if _, err := SignManifest(nil, "m", resolver, SignOptions{Key: testRSAKey}); err == nil {
		t.Error("empty reference list accepted")
	}
	if _, err := SignManifest([]ReferenceSpec{{URI: "disc://nope"}}, "m", resolver, SignOptions{Key: testRSAKey}); err == nil {
		t.Error("unresolvable reference accepted at signing time")
	}
}
