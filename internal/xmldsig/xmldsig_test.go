package xmldsig

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"strings"
	"testing"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Shared test keys: RSA key generation is slow, generate once.
var (
	testRSAKey   *rsa.PrivateKey
	testRSAKey2  *rsa.PrivateKey
	testECDSAKey *ecdsa.PrivateKey
)

func init() {
	var err error
	testRSAKey, err = rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		panic(err)
	}
	testRSAKey2, err = rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		panic(err)
	}
	testECDSAKey, err = ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		panic(err)
	}
}

const manifestXML = `<manifest xmlns="urn:disc:manifest" Id="app-1">
  <markup><layout region="main"/><timing dur="5s"/></markup>
  <code><script language="ecmascript">var score = 0;</script></code>
</manifest>`

func parseDoc(t *testing.T, s string) *xmldom.Document {
	t.Helper()
	doc, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestEnvelopedSignRoundTrip(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	_, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}})
	if err != nil {
		t.Fatalf("SignEnveloped: %v", err)
	}

	// Serialize and reparse: verification must survive a round trip.
	doc2 := parseDoc(t, doc.Root().String())
	res, err := VerifyDocument(doc2, VerifyOptions{})
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if len(res.References) != 1 || !res.References[0].Valid {
		t.Errorf("references = %+v", res.References)
	}
}

func TestEnvelopedTamperDetection(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	serialized := doc.Root().String()

	// Tamper with the script content (the paper's malicious-application
	// scenario).
	tampered := strings.Replace(serialized, "var score = 0;", "var score = 999;", 1)
	if tampered == serialized {
		t.Fatal("test setup: tamper target not found")
	}
	doc2 := parseDoc(t, tampered)
	_, err := VerifyDocument(doc2, VerifyOptions{})
	if !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("tampered verify error = %v, want ErrDigestMismatch", err)
	}
}

func TestTamperedSignatureValue(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	sig := FindSignature(doc)
	sv := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignatureValue")
	sv.SetText("AAAA" + sv.Text()[4:])
	_, err := VerifyDocument(doc, VerifyOptions{})
	if !errors.Is(err, ErrSignatureInvalid) {
		t.Errorf("verify error = %v, want ErrSignatureInvalid", err)
	}
}

func TestWrongKeyRejected(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey}); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyDocument(doc, VerifyOptions{Key: &testRSAKey2.PublicKey})
	if !errors.Is(err, ErrSignatureInvalid) {
		t.Errorf("verify error = %v, want ErrSignatureInvalid", err)
	}
	// And the right key succeeds.
	if _, err := VerifyDocument(doc, VerifyOptions{Key: &testRSAKey.PublicKey}); err != nil {
		t.Errorf("verify with correct pinned key: %v", err)
	}
}

func TestSignatureMethods(t *testing.T) {
	methods := []struct {
		name string
		opts SignOptions
		vo   VerifyOptions
	}{
		{"rsa-sha1", SignOptions{Key: testRSAKey, SignatureMethod: xmlsecuri.SigRSASHA1, DigestMethod: xmlsecuri.DigestSHA1, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}, VerifyOptions{}},
		{"rsa-sha256", SignOptions{Key: testRSAKey, SignatureMethod: xmlsecuri.SigRSASHA256, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}, VerifyOptions{}},
		{"rsa-sha512", SignOptions{Key: testRSAKey, SignatureMethod: xmlsecuri.SigRSASHA512, DigestMethod: xmlsecuri.DigestSHA512, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}, VerifyOptions{}},
		{"rsa-pss-sha256", SignOptions{Key: testRSAKey, SignatureMethod: xmlsecuri.SigRSAPSSSHA256, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}, VerifyOptions{}},
		{"ecdsa-sha256", SignOptions{Key: testECDSAKey, SignatureMethod: xmlsecuri.SigECDSASHA256}, VerifyOptions{Key: &testECDSAKey.PublicKey}},
		{"hmac-sha256", SignOptions{HMACKey: []byte("shared-secret-key"), SignatureMethod: xmlsecuri.SigHMACSHA256}, VerifyOptions{HMACKey: []byte("shared-secret-key")}},
		{"hmac-sha1", SignOptions{HMACKey: []byte("shared-secret-key"), SignatureMethod: xmlsecuri.SigHMACSHA1, DigestMethod: xmlsecuri.DigestSHA1}, VerifyOptions{HMACKey: []byte("shared-secret-key")}},
	}
	for _, m := range methods {
		t.Run(m.name, func(t *testing.T) {
			doc := parseDoc(t, manifestXML)
			if _, err := SignEnveloped(doc, nil, m.opts); err != nil {
				t.Fatalf("sign: %v", err)
			}
			doc2 := parseDoc(t, doc.Root().String())
			if _, err := VerifyDocument(doc2, m.vo); err != nil {
				t.Fatalf("verify: %v", err)
			}
		})
	}
}

func TestHMACWrongKey(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{HMACKey: []byte("key-a")}); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyDocument(doc, VerifyOptions{HMACKey: []byte("key-b")})
	if !errors.Is(err, ErrSignatureInvalid) {
		t.Errorf("verify error = %v, want ErrSignatureInvalid", err)
	}
}

func TestEnvelopingSignature(t *testing.T) {
	content := xmldom.NewElement("bonus")
	content.SetAttr("kind", "trailer")
	content.AddText("payload")

	doc, err := SignEnveloping(content, "obj-7", SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}})
	if err != nil {
		t.Fatalf("SignEnveloping: %v", err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	res, err := VerifyDocument(doc2, VerifyOptions{})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if res.References[0].URI != "#obj-7" {
		t.Errorf("reference URI = %q", res.References[0].URI)
	}

	// Tampering with the wrapped object must fail.
	tampered := strings.Replace(doc.Root().String(), "payload", "poisoned", 1)
	doc3 := parseDoc(t, tampered)
	if _, err := VerifyDocument(doc3, VerifyOptions{}); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("tampered enveloping verify = %v", err)
	}
}

func TestDetachedSignature(t *testing.T) {
	files := map[string][]byte{
		"disc://track1/clip.m2ts": []byte("binary clip content \x00\x01\x02"),
		"disc://track1/menu.xml":  []byte("<menu><item/></menu>"),
	}
	resolver := ExternalResolverFunc(func(uri string) ([]byte, error) {
		b, ok := files[uri]
		if !ok {
			return nil, errors.New("not found")
		}
		return b, nil
	})

	refs := []ReferenceSpec{
		{URI: "disc://track1/clip.m2ts"},
		{URI: "disc://track1/menu.xml"},
	}
	doc, err := SignDetached(refs, resolver, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}})
	if err != nil {
		t.Fatalf("SignDetached: %v", err)
	}

	doc2 := parseDoc(t, doc.Root().String())
	res, err := VerifyDocument(doc2, VerifyOptions{Resolver: resolver})
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(res.References) != 2 {
		t.Fatalf("references = %d", len(res.References))
	}

	// Modify one file: verification must fail.
	files["disc://track1/clip.m2ts"] = []byte("evil")
	if _, err := VerifyDocument(doc2, VerifyOptions{Resolver: resolver}); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("tampered detached verify = %v", err)
	}
}

func TestSignElementByID(t *testing.T) {
	// Sign only the code part of the manifest (paper §5.4: selective
	// signing of scripts).
	doc := parseDoc(t, `<manifest xmlns="urn:m"><markup>free to edit</markup><code Id="code-1"><script>var x=1;</script></code></manifest>`)
	if _, err := SignElementByID(doc, doc.Root(), "code-1", SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatalf("SignElementByID: %v", err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	if _, err := VerifyDocument(doc2, VerifyOptions{}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// The markup part is NOT covered: editing it must not break the
	// signature.
	edited := strings.Replace(doc.Root().String(), "free to edit", "edited!", 1)
	doc3 := parseDoc(t, edited)
	if _, err := VerifyDocument(doc3, VerifyOptions{}); err != nil {
		t.Errorf("uncovered edit broke signature: %v", err)
	}

	// The script IS covered.
	hacked := strings.Replace(doc.Root().String(), "var x=1;", "var x=666;", 1)
	doc4 := parseDoc(t, hacked)
	if _, err := VerifyDocument(doc4, VerifyOptions{}); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("covered edit verify = %v, want digest mismatch", err)
	}
}

func TestSignElementByIDUnknownID(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignElementByID(doc, nil, "nope", SignOptions{Key: testRSAKey}); err == nil {
		t.Error("unknown Id accepted")
	}
}

func TestKeyNameResolution(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{KeyName: "studio-2005"}}); err != nil {
		t.Fatal(err)
	}
	asked := ""
	_, err := VerifyDocument(doc, VerifyOptions{
		KeyByName: func(name string) (crypto.PublicKey, error) {
			asked = name
			return &testRSAKey.PublicKey, nil
		},
	})
	if err != nil {
		t.Fatalf("verify via KeyName: %v", err)
	}
	if asked != "studio-2005" {
		t.Errorf("KeyByName asked for %q", asked)
	}
	// Resolver failure surfaces.
	if _, err := VerifyDocument(doc, VerifyOptions{
		KeyByName: func(string) (crypto.PublicKey, error) { return nil, errors.New("unknown key") },
	}); err == nil {
		t.Error("failed KeyName lookup accepted")
	}
}

func TestSignOptionValidation(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{}); err == nil {
		t.Error("no key accepted")
	}
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, HMACKey: []byte("x")}); err == nil {
		t.Error("both keys accepted")
	}
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, SignatureMethod: "urn:bogus"}); err == nil {
		t.Error("bogus signature method accepted")
	}
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, DigestMethod: "urn:bogus"}); err == nil {
		t.Error("bogus digest method accepted")
	}
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, CanonicalizationMethod: "urn:bogus"}); err == nil {
		t.Error("bogus c14n method accepted")
	}
}

func TestVerifyPolicyRestriction(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, SignatureMethod: xmlsecuri.SigRSASHA1, DigestMethod: xmlsecuri.DigestSHA1, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	_, err := VerifyDocument(doc, VerifyOptions{AcceptedSignatureMethods: []string{xmlsecuri.SigRSASHA256}})
	if err == nil {
		t.Error("policy-restricted method accepted")
	}
}

func TestVerifyNoSignature(t *testing.T) {
	doc := parseDoc(t, `<plain/>`)
	if _, err := VerifyDocument(doc, VerifyOptions{}); !errors.Is(err, ErrNoSignature) {
		t.Errorf("err = %v, want ErrNoSignature", err)
	}
}

func TestVerifyNoKey(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	// Sign without any KeyInfo.
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey}); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDocument(doc, VerifyOptions{}); !errors.Is(err, ErrNoVerificationKey) {
		t.Errorf("err = %v, want ErrNoVerificationKey", err)
	}
}

func TestWhitespaceInsideSignedContentMatters(t *testing.T) {
	// Canonicalization preserves significant whitespace: inserting
	// whitespace into signed content must break the digest.
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	padded := strings.Replace(doc.Root().String(), "var score = 0;", "var score = 0; ", 1)
	doc2 := parseDoc(t, padded)
	if _, err := VerifyDocument(doc2, VerifyOptions{}); !errors.Is(err, ErrDigestMismatch) {
		t.Errorf("whitespace edit verify = %v", err)
	}
}

func TestMultipleSignatures(t *testing.T) {
	// Content creator signs the manifest; application author adds a
	// second signature over the same document region (paper Fig. 3:
	// both parties sign).
	doc := parseDoc(t, `<cluster xmlns="urn:c"><track Id="t1"><data>av-payload</data></track><track Id="t2"><data>app</data></track></cluster>`)
	if _, err := SignElementByID(doc, doc.Root(), "t1", SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := SignElementByID(doc, doc.Root(), "t2", SignOptions{Key: testRSAKey2, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	sigs := FindSignatures(doc2)
	if len(sigs) != 2 {
		t.Fatalf("found %d signatures, want 2", len(sigs))
	}
	for i, sig := range sigs {
		if _, err := Verify(doc2, sig, VerifyOptions{}); err != nil {
			t.Errorf("signature %d verify: %v", i, err)
		}
	}
}

func TestParseKeyInfoNil(t *testing.T) {
	ki, err := ParseKeyInfo(nil)
	if err != nil || ki == nil {
		t.Fatalf("ParseKeyInfo(nil) = %v, %v", ki, err)
	}
	if ki.LeafPublicKey() != nil {
		t.Error("empty KeyInfo produced a key")
	}
}

func TestECDSASignatureValueFormat(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testECDSAKey, SignatureMethod: xmlsecuri.SigECDSASHA256}); err != nil {
		t.Fatal(err)
	}
	sig := FindSignature(doc)
	sv := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignatureValue")
	raw, err := decodeBase64Text(sv.Text())
	if err != nil {
		t.Fatal(err)
	}
	// P-256: r||s = 64 octets, not ASN.1 DER.
	if len(raw) != 64 {
		t.Errorf("ECDSA signature value length = %d, want 64 (raw r||s)", len(raw))
	}
}
