package xmldsig

import (
	"errors"
	"strings"
	"testing"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Adversarial tests: classic XML signature attacks must not verify.

// Signature wrapping: the attacker moves the genuinely signed element
// into a ds:Object inside the Signature and plants a malicious element
// with the same Id at the original location. Fragment dereferencing
// must not resolve to the smuggled copy in a way that lets the
// malicious content pass as verified.
func TestSignatureWrappingDuplicateID(t *testing.T) {
	doc := parseDoc(t, `<order xmlns="urn:shop"><item Id="payload"><cmd>play</cmd></item></order>`)
	if _, err := SignElementByID(doc, doc.Root(), "payload", SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	// Sanity: it verifies untouched.
	if _, err := VerifyDocument(parseDoc(t, doc.Root().String()), VerifyOptions{}); err != nil {
		t.Fatal(err)
	}

	// Attack: wrap the original item into the signature, replace the
	// original position with malicious content using the same Id.
	attacked := parseDoc(t, doc.Root().String())
	orig := attacked.ElementByID("payload")
	sig := FindSignature(attacked)
	wrapper := xmldom.NewElement("ds:Object")
	sig.AppendChild(wrapper)
	parent := orig.ParentElement()
	idx := parent.ChildIndex(orig)
	orig.Detach()
	wrapper.AppendChild(orig)

	evil := xmldom.NewElement("item")
	evil.SetAttr("Id", "payload")
	evil.CreateChild("cmd").SetText("format-storage")
	parent.InsertChildAt(idx, evil)

	rx := parseDoc(t, attacked.Root().String())
	res, err := VerifyDocument(rx, VerifyOptions{})
	if err == nil {
		// If verification somehow succeeded, the dereferenced content
		// must still be the original, not the attacker's. With
		// first-in-document-order Id resolution the malicious element
		// is found first and its digest cannot match.
		t.Fatalf("wrapped document verified: %+v", res)
	}
	if !errors.Is(err, ErrDigestMismatch) {
		t.Logf("verification failed with: %v (acceptable, must not pass)", err)
	}
}

// Algorithm confusion: re-labelling an RSA signature as HMAC must never
// let an attacker who knows the public key forge acceptance.
func TestAlgorithmConfusionHMACRelabel(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	// Attacker rewrites the SignatureMethod to HMAC-SHA256.
	s := doc.Root().String()
	s = strings.Replace(s, xmlsecuri.SigRSASHA256, xmlsecuri.SigHMACSHA256, 1)
	rx := parseDoc(t, s)

	// Verifier without an HMAC secret must reject, not fall back to
	// the embedded public key.
	if _, err := VerifyDocument(rx, VerifyOptions{}); err == nil {
		t.Error("relabelled HMAC signature accepted without a shared key")
	}
	// Even a verifier configured with some HMAC key rejects (the MAC
	// cannot match an RSA signature value).
	if _, err := VerifyDocument(rx, VerifyOptions{HMACKey: []byte("guess")}); err == nil {
		t.Error("relabelled HMAC signature accepted with arbitrary key")
	}
}

// Reference retargeting: pointing the Reference URI at different
// content invalidates the signature because SignedInfo is itself
// signed.
func TestReferenceRetargeting(t *testing.T) {
	doc := parseDoc(t, `<r xmlns="urn:x"><good Id="a"><v>1</v></good><evil Id="b"><v>666</v></evil></r>`)
	if _, err := SignElementByID(doc, doc.Root(), "a", SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(doc.Root().String(), `URI="#a"`, `URI="#b"`, 1)
	rx := parseDoc(t, s)
	if _, err := VerifyDocument(rx, VerifyOptions{}); err == nil {
		t.Error("retargeted reference accepted")
	}
}

// Transform-chain stripping: removing the enveloped-signature transform
// changes SignedInfo, which is signed, so it must fail.
func TestTransformStripping(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	s := doc.Root().String()
	stripped := strings.Replace(s, `<ds:Transform Algorithm="`+xmlsecuri.TransformEnveloped+`"/>`, "", 1)
	if stripped == s {
		t.Fatal("setup: transform element not found for stripping")
	}
	rx := parseDoc(t, stripped)
	if _, err := VerifyDocument(rx, VerifyOptions{}); err == nil {
		t.Error("transform-stripped signature accepted")
	}
}

// Comments are not part of the canonical form (C14N without comments),
// so comment insertion inside signed content must NOT break
// verification — and must not smuggle executable content either (our
// script sources are text nodes, not comments).
func TestCommentInsertionIsTransparent(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	s := strings.Replace(doc.Root().String(), "<markup>", "<markup><!-- injected comment -->", 1)
	rx := parseDoc(t, s)
	if _, err := VerifyDocument(rx, VerifyOptions{}); err != nil {
		t.Errorf("comment insertion broke verification: %v", err)
	}
}

// A Signature whose SignedInfo digests nothing (empty Reference list)
// must be rejected outright.
func TestEmptyReferenceListRejected(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	sig := FindSignature(doc)
	si := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignedInfo")
	for _, ref := range si.ChildElementsNamed(xmlsecuri.DSigNamespace, "Reference") {
		ref.Detach()
	}
	if _, err := Verify(doc, sig, VerifyOptions{}); err == nil {
		t.Error("signature without references accepted")
	}
}

// Reference/transform floods must be rejected before any expensive
// processing happens.
func TestProcessingLimits(t *testing.T) {
	doc := parseDoc(t, manifestXML)
	if _, err := SignEnveloped(doc, nil, SignOptions{Key: testRSAKey, KeyInfo: KeyInfoSpec{IncludeKeyValue: true}}); err != nil {
		t.Fatal(err)
	}
	sig := FindSignature(doc)
	si := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignedInfo")
	ref := si.FirstChildNamed(xmlsecuri.DSigNamespace, "Reference")

	// Reference flood.
	flooded := doc.Clone()
	fsig := FindSignature(flooded)
	fsi := fsig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignedInfo")
	fref := fsi.FirstChildNamed(xmlsecuri.DSigNamespace, "Reference")
	for i := 0; i < MaxReferences+1; i++ {
		fsi.AppendChild(fref.Clone())
	}
	if _, err := Verify(flooded, fsig, VerifyOptions{}); err == nil {
		t.Error("reference flood accepted")
	}

	// Transform flood.
	ts := ref.FirstChildNamed(xmlsecuri.DSigNamespace, "Transforms")
	tr := ts.FirstChildNamed(xmlsecuri.DSigNamespace, "Transform")
	for i := 0; i < MaxTransforms+1; i++ {
		ts.AppendChild(tr.Clone())
	}
	if _, err := Verify(doc, sig, VerifyOptions{}); err == nil {
		t.Error("transform flood accepted")
	}
}
