package xmldsig

import (
	"fmt"
	"io"

	"discsec/internal/c14n"
	"discsec/internal/xmlstream"
)

// DigestDocumentReader computes the digest of a whole document's
// canonical form in a single streaming pass: the tokenizer feeds the
// incremental canonicalizer, which feeds the hash — no DOM, no
// canonical byte buffer, constant memory regardless of document size.
//
// The canonicalization options must be exclusive (see c14n.NewStream).
// The result is byte-identical to hashing
// c14n.CanonicalizeDocument(xmldom.Parse(r), c14nOpts): this is the
// digest the verification library keys its cache on, which is why the
// streaming cold path can share verdicts with the DOM path.
func DigestDocumentReader(r io.Reader, c14nOpts c14n.Options, digestURI string) ([]byte, error) {
	hh, err := HashByDigestURI(digestURI)
	if err != nil {
		return nil, err
	}
	h := hh.New()
	st, err := c14n.NewStream(h, c14nOpts)
	if err != nil {
		return nil, err
	}
	if err := xmlstream.Parse(r, xmlstream.Options{}, st); err != nil {
		return nil, fmt.Errorf("xmldsig: digest stream: %w", err)
	}
	if err := st.Close(); err != nil {
		return nil, fmt.Errorf("xmldsig: digest stream: %w", err)
	}
	return h.Sum(nil), nil
}

// HashReader digests raw octets streamed from r under the named digest
// algorithm — the streaming twin of hashing a dereferenced detached
// reference, for callers that can supply the payload as a reader
// instead of materializing it.
func HashReader(r io.Reader, digestURI string) ([]byte, error) {
	hh, err := HashByDigestURI(digestURI)
	if err != nil {
		return nil, err
	}
	h := hh.New()
	if _, err := io.Copy(h, r); err != nil {
		return nil, fmt.Errorf("xmldsig: hash stream: %w", err)
	}
	return h.Sum(nil), nil
}
