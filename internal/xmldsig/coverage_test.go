package xmldsig

import (
	"encoding/base64"
	"strings"
	"testing"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Tests exercising code paths otherwise only reached from other
// packages: inclusive-prefix signing, the base64 and c14n-over-octets
// transforms, decryption-exception parsing.

func TestSignWithInclusivePrefixes(t *testing.T) {
	// The signed region uses a prefix declared on an ancestor that is
	// NOT visibly utilized inside the region (it appears only in an
	// attribute VALUE, where exclusive c14n cannot see it). The
	// InclusiveNamespaces PrefixList pins it into the canonical form,
	// so rebinding the prefix on the ancestor breaks the signature.
	doc := parseDoc(t, `<root xmlns:q="urn:q"><payload Id="p" type="q:thing">data</payload></root>`)
	refs := []ReferenceSpec{{
		URI:               "#p",
		Transforms:        []string{xmlsecuri.ExcC14N},
		InclusivePrefixes: []string{"q"},
	}}
	if _, err := SignWithReferences(doc, doc.Root(), refs, SignOptions{
		Key:     testRSAKey,
		KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
	}); err != nil {
		t.Fatal(err)
	}
	serialized := doc.Root().String()
	if !strings.Contains(serialized, `PrefixList="q"`) {
		t.Fatalf("PrefixList not emitted: %s", serialized)
	}

	// Clean verify.
	if _, err := VerifyDocument(parseDoc(t, serialized), VerifyOptions{}); err != nil {
		t.Fatalf("verify: %v", err)
	}

	// Rebinding q on the ancestor changes the pinned declaration:
	// verification must fail. (Without the PrefixList this attack
	// would be invisible to exclusive c14n.)
	rebound := strings.Replace(serialized, `xmlns:q="urn:q"`, `xmlns:q="urn:evil"`, 1)
	if _, err := VerifyDocument(parseDoc(t, rebound), VerifyOptions{}); err == nil {
		t.Error("prefix rebinding went undetected despite InclusiveNamespaces")
	}
}

func TestBase64Transform(t *testing.T) {
	// A reference to an element whose text is base64-encoded binary,
	// with the base64 transform decoding before digesting: the digest
	// covers the BINARY, so re-encodings of the same bytes verify.
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	doc := parseDoc(t, `<pkg><blob Id="b">`+base64.StdEncoding.EncodeToString(payload)+`</blob></pkg>`)
	refs := []ReferenceSpec{{
		URI:        "#b",
		Transforms: []string{xmlsecuri.TransformBase64},
	}}
	if _, err := SignWithReferences(doc, doc.Root(), refs, SignOptions{
		Key:     testRSAKey,
		KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
	}); err != nil {
		t.Fatal(err)
	}

	// Re-wrap the base64 text with whitespace (same binary): still
	// verifies, because the transform normalizes to octets.
	serialized := doc.Root().String()
	enc := base64.StdEncoding.EncodeToString(payload)
	wrapped := enc[:4] + "\n" + enc[4:]
	rewrapped := strings.Replace(serialized, enc, wrapped, 1)
	if _, err := VerifyDocument(parseDoc(t, rewrapped), VerifyOptions{}); err != nil {
		t.Errorf("re-wrapped base64 failed: %v", err)
	}

	// Different binary fails.
	other := base64.StdEncoding.EncodeToString([]byte{9, 9, 9, 9, 9, 9})
	swapped := strings.Replace(serialized, enc, other, 1)
	if _, err := VerifyDocument(parseDoc(t, swapped), VerifyOptions{}); err == nil {
		t.Error("different binary accepted")
	}
}

func TestC14NTransformOverOctets(t *testing.T) {
	// External XML resource digested through a c14n transform: two
	// syntactic variants of the resource verify identically.
	variantA := []byte(`<menu a="1" b="2"><item/></menu>`)
	variantB := []byte(`<menu b="2" a="1" ><item></item></menu>`)
	content := variantA
	resolver := ExternalResolverFunc(func(string) ([]byte, error) { return content, nil })

	refs := []ReferenceSpec{{
		URI:        "disc://menu.xml",
		Transforms: []string{xmlsecuri.C14N10},
	}}
	sigDoc, err := SignDetached(refs, resolver, SignOptions{
		Key:     testRSAKey,
		KeyInfo: KeyInfoSpec{IncludeKeyValue: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rx := parseDoc(t, sigDoc.Root().String())

	// Variant B is syntactically different but canonically equal.
	content = variantB
	if _, err := VerifyDocument(rx, VerifyOptions{Resolver: resolver}); err != nil {
		t.Errorf("canonical variant rejected: %v", err)
	}
	// Semantically different content fails.
	content = []byte(`<menu a="1" b="3"><item/></menu>`)
	if _, err := VerifyDocument(rx, VerifyOptions{Resolver: resolver}); err == nil {
		t.Error("semantically different content accepted")
	}
}

func TestDecryptionExceptionsParsing(t *testing.T) {
	doc := parseDoc(t, `<m Id="top"><a/></m>`)
	refs := []ReferenceSpec{{
		URI:               "#top",
		Transforms:        []string{xmlsecuri.TransformEnveloped, xmlsecuri.TransformDecryptXML, xmlsecuri.ExcC14N},
		DecryptExceptURIs: []string{"#e1", "#e2"},
	}}
	sig, err := SignWithReferences(doc, doc.Root(), refs, SignOptions{Key: testRSAKey})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecryptionExceptions(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "#e1" || got[1] != "#e2" {
		t.Errorf("exceptions = %v", got)
	}
	// Survives serialization.
	rx := parseDoc(t, doc.Root().String())
	got2, err := DecryptionExceptions(FindSignature(rx))
	if err != nil || len(got2) != 2 {
		t.Errorf("reparsed exceptions = %v, %v", got2, err)
	}
	// Signature without SignedInfo errors.
	if _, err := DecryptionExceptions(xmldom.NewElement("ds:Signature")); err == nil {
		t.Error("bare signature accepted")
	}
}

func TestSplitPrefixList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a b c", []string{"a", "b", "c"}},
		{"  a\t b \n", []string{"a", "b"}},
		{"", nil},
		{"single", []string{"single"}},
	}
	for _, tc := range cases {
		got := splitPrefixList(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("splitPrefixList(%q) = %v", tc.in, got)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("splitPrefixList(%q) = %v", tc.in, got)
			}
		}
	}
}

func TestParseKeyInfoMalformed(t *testing.T) {
	bad := []string{
		`<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:KeyValue><ds:RSAKeyValue><ds:Modulus>!</ds:Modulus><ds:Exponent>AQAB</ds:Exponent></ds:RSAKeyValue></ds:KeyValue></ds:KeyInfo>`,
		`<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:KeyValue><ds:RSAKeyValue><ds:Modulus>AQAB</ds:Modulus></ds:RSAKeyValue></ds:KeyValue></ds:KeyInfo>`,
		`<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:KeyValue><ds:RSAKeyValue><ds:Modulus>AQAB</ds:Modulus><ds:Exponent>AA==</ds:Exponent></ds:RSAKeyValue></ds:KeyValue></ds:KeyInfo>`,
		`<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:X509Data><ds:X509Certificate>AAAA</ds:X509Certificate></ds:X509Data></ds:KeyInfo>`,
		`<ds:KeyInfo xmlns:ds="http://www.w3.org/2000/09/xmldsig#"><ds:X509Data><ds:X509Certificate>not base64!!</ds:X509Certificate></ds:X509Data></ds:KeyInfo>`,
	}
	for i, s := range bad {
		doc := parseDoc(t, s)
		if _, err := ParseKeyInfo(doc.Root()); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Golden regression pin: the canonical form feeding digests and the
// HMAC construction are fully deterministic, so these frozen values
// detect any accidental change to canonicalization, digesting, or
// signature serialization between versions. If a deliberate
// canonicalization fix changes them, update the constants and note the
// compatibility break.
func TestGoldenHMACSignature(t *testing.T) {
	doc := parseDoc(t, `<manifest xmlns="urn:disc:manifest" Id="golden"><markup><layout region="main"/></markup><code><script language="ecmascript">var x = 1;</script></code></manifest>`)
	key := []byte("golden-regression-hmac-key-2026!")
	if _, err := SignEnveloped(doc, nil, SignOptions{
		HMACKey:         key,
		SignatureMethod: xmlsecuri.SigHMACSHA256,
	}); err != nil {
		t.Fatal(err)
	}
	sig := FindSignature(doc)
	dv, _ := sig.Find("SignedInfo/Reference/DigestValue")
	sv, _ := sig.Find("SignatureValue")
	const (
		wantDigest = "K9nf8+Ggcdbi9VG7r/SAYfWCNPQB8iEbSo4F16V5r3s="
		wantSig    = "DrghCenFlyEn1wLRXWUy8YYRAaq8HIL5ipEjKJyZc0I="
	)
	if dv.Text() != wantDigest {
		t.Errorf("DigestValue = %q, want %q (canonical form changed!)", dv.Text(), wantDigest)
	}
	if sv.Text() != wantSig {
		t.Errorf("SignatureValue = %q, want %q (canonical form changed!)", sv.Text(), wantSig)
	}
}
