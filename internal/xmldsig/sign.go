package xmldsig

import (
	"crypto"
	"crypto/ecdsa"
	"encoding/base64"
	"errors"
	"fmt"

	"discsec/internal/c14n"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// DefaultPrefix is the namespace prefix used for generated signature
// markup.
const DefaultPrefix = "ds"

// SignOptions configures signature generation.
type SignOptions struct {
	// Key is the asymmetric signing key (RSA or ECDSA). Exactly one of
	// Key or HMACKey must be set.
	Key crypto.Signer
	// HMACKey selects symmetric authentication with an HMAC signature
	// method.
	HMACKey []byte
	// SignatureMethod is the algorithm identifier; defaults to
	// RSA-SHA256 for asymmetric keys and HMAC-SHA256 for HMACKey.
	SignatureMethod string
	// DigestMethod is used for all references; defaults to SHA-256.
	DigestMethod string
	// CanonicalizationMethod canonicalizes SignedInfo; defaults to
	// Exclusive C14N.
	CanonicalizationMethod string
	// KeyInfo controls the emitted ds:KeyInfo.
	KeyInfo KeyInfoSpec
	// SignatureID sets the Id attribute on the ds:Signature element.
	SignatureID string
}

func (o *SignOptions) normalize() error {
	if (o.Key == nil) == (o.HMACKey == nil) {
		return errors.New("xmldsig: exactly one of Key or HMACKey must be set")
	}
	if o.SignatureMethod == "" {
		switch {
		case o.HMACKey != nil:
			o.SignatureMethod = xmlsecuri.SigHMACSHA256
		default:
			switch o.Key.Public().(type) {
			case *ecdsa.PublicKey:
				o.SignatureMethod = xmlsecuri.SigECDSASHA256
			default:
				o.SignatureMethod = xmlsecuri.SigRSASHA256
			}
		}
	}
	if o.DigestMethod == "" {
		o.DigestMethod = xmlsecuri.DigestSHA256
	}
	if o.CanonicalizationMethod == "" {
		o.CanonicalizationMethod = xmlsecuri.ExcC14N
	}
	if _, err := c14n.ByURI(o.CanonicalizationMethod); err != nil {
		return err
	}
	if _, err := HashByDigestURI(o.DigestMethod); err != nil {
		return err
	}
	if _, err := hashBySignatureURI(o.SignatureMethod); err != nil {
		return err
	}
	return nil
}

// ReferenceSpec describes one ds:Reference to generate.
type ReferenceSpec struct {
	// URI identifies the data: "" (whole document), "#id"
	// (same-document element), or an external identifier resolved by
	// the Resolver.
	URI string
	// Transforms is the transform chain; for enveloped signatures it
	// must include the enveloped-signature transform.
	Transforms []string
	// InclusivePrefixes applies to exclusive c14n transforms in the
	// chain.
	InclusivePrefixes []string
	// DecryptExceptURIs lists EncryptedData fragment URIs ("#id") that
	// a decryption transform in the chain marks as signed-as-encrypted
	// (dcrpt:Except): the verifier must NOT decrypt them before
	// validating this reference.
	DecryptExceptURIs []string
	// Type optionally sets the Reference Type attribute.
	Type string
}

// SignEnveloped generates a signature over the document and appends the
// ds:Signature element as the last child of parent (which must belong to
// doc). The Reference uses URI "" with the enveloped-signature transform
// followed by exclusive canonicalization, per the paper's Fig. 6
// "enveloped" form.
func SignEnveloped(doc *xmldom.Document, parent *xmldom.Element, opts SignOptions) (*xmldom.Element, error) {
	if doc == nil || doc.Root() == nil {
		return nil, errors.New("xmldsig: SignEnveloped requires a document with a root element")
	}
	if parent == nil {
		parent = doc.Root()
	}
	refs := []ReferenceSpec{{
		URI:        "",
		Transforms: []string{xmlsecuri.TransformEnveloped, xmlsecuri.ExcC14N},
	}}
	return signInDocument(doc, parent, refs, nil, opts)
}

// SignElementByID generates an enveloped-style signature whose reference
// targets the element carrying the given Id value; the signature element
// is appended under parent. If the target contains parent, the
// enveloped-signature transform is included so the signature excludes
// itself.
func SignElementByID(doc *xmldom.Document, parent *xmldom.Element, id string, opts SignOptions) (*xmldom.Element, error) {
	target := doc.ElementByID(id)
	if target == nil {
		return nil, fmt.Errorf("xmldsig: no element with Id %q", id)
	}
	transforms := []string{xmlsecuri.ExcC14N}
	if parent == nil {
		parent = doc.Root()
	}
	if elementContains(target, parent) || target == parent {
		transforms = []string{xmlsecuri.TransformEnveloped, xmlsecuri.ExcC14N}
	}
	refs := []ReferenceSpec{{URI: "#" + id, Transforms: transforms}}
	return signInDocument(doc, parent, refs, nil, opts)
}

// SignEnveloping wraps content in a ds:Object inside a new standalone
// ds:Signature (the paper's Fig. 6 "enveloping" form) and returns the
// signature element as a new document. The content element is adopted
// into the Object.
func SignEnveloping(content *xmldom.Element, objectID string, opts SignOptions) (*xmldom.Document, error) {
	if content == nil {
		return nil, errors.New("xmldsig: SignEnveloping requires content")
	}
	if objectID == "" {
		objectID = "object-1"
	}
	doc := &xmldom.Document{}
	sig := xmldom.NewElement(DefaultPrefix + ":Signature")
	sig.DeclareNamespace(DefaultPrefix, xmlsecuri.DSigNamespace)
	doc.SetRoot(sig)

	obj := xmldom.NewElement(DefaultPrefix + ":Object")
	obj.SetAttr("Id", objectID)
	obj.AppendChild(content.Clone())
	sig.AppendChild(obj)

	refs := []ReferenceSpec{{URI: "#" + objectID, Transforms: []string{xmlsecuri.ExcC14N}}}
	if _, err := signInDocument(doc, nil, refs, sig, opts); err != nil {
		return nil, err
	}
	return doc, nil
}

// SignDetached generates a standalone ds:Signature whose references
// identify external content through the resolver (the paper's Fig. 6
// "detached" form, used for signing tracks and downloaded resources).
func SignDetached(refs []ReferenceSpec, resolver ExternalResolver, opts SignOptions) (*xmldom.Document, error) {
	if len(refs) == 0 {
		return nil, errors.New("xmldsig: SignDetached requires at least one reference")
	}
	doc := &xmldom.Document{}
	sig := xmldom.NewElement(DefaultPrefix + ":Signature")
	sig.DeclareNamespace(DefaultPrefix, xmlsecuri.DSigNamespace)
	doc.SetRoot(sig)
	if _, err := signInDocumentWithResolver(doc, nil, refs, sig, resolver, opts); err != nil {
		return nil, err
	}
	return doc, nil
}

// SignWithReferences generates a signature over caller-specified
// references and appends the ds:Signature under parent (the document root
// when parent is nil). This is the general entry point behind the
// enveloped/enveloping/detached helpers; the player pipeline uses it to
// combine the enveloped-signature and decryption transforms (paper §7).
func SignWithReferences(doc *xmldom.Document, parent *xmldom.Element, refs []ReferenceSpec, opts SignOptions) (*xmldom.Element, error) {
	if doc == nil || doc.Root() == nil {
		return nil, errors.New("xmldsig: SignWithReferences requires a document with a root element")
	}
	if parent == nil {
		parent = doc.Root()
	}
	if len(refs) == 0 {
		return nil, errors.New("xmldsig: SignWithReferences requires at least one reference")
	}
	return signInDocument(doc, parent, refs, nil, opts)
}

// SignWithReferencesResolver is SignWithReferences with an external
// resolver for non-same-document reference URIs.
func SignWithReferencesResolver(doc *xmldom.Document, parent *xmldom.Element, refs []ReferenceSpec, resolver ExternalResolver, opts SignOptions) (*xmldom.Element, error) {
	if doc == nil || doc.Root() == nil {
		return nil, errors.New("xmldsig: SignWithReferencesResolver requires a document with a root element")
	}
	if parent == nil {
		parent = doc.Root()
	}
	if len(refs) == 0 {
		return nil, errors.New("xmldsig: SignWithReferencesResolver requires at least one reference")
	}
	return signInDocumentWithResolver(doc, parent, refs, nil, resolver, opts)
}

// signInDocument builds the Signature element, computes reference
// digests, canonicalizes SignedInfo and signs it. When existingSig is
// non-nil the structure is built into it (enveloping/detached); otherwise
// a new Signature is appended under parent.
func signInDocument(doc *xmldom.Document, parent *xmldom.Element, refs []ReferenceSpec, existingSig *xmldom.Element, opts SignOptions) (*xmldom.Element, error) {
	return signInDocumentWithResolver(doc, parent, refs, existingSig, nil, opts)
}

func signInDocumentWithResolver(doc *xmldom.Document, parent *xmldom.Element, refs []ReferenceSpec, existingSig *xmldom.Element, resolver ExternalResolver, opts SignOptions) (*xmldom.Element, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}

	p := DefaultPrefix
	sig := existingSig
	if sig == nil {
		sig = xmldom.NewElement(p + ":Signature")
		sig.DeclareNamespace(p, xmlsecuri.DSigNamespace)
	}
	if opts.SignatureID != "" {
		sig.SetAttr("Id", opts.SignatureID)
	}

	si := xmldom.NewElement(p + ":SignedInfo")
	si.CreateChild(p+":CanonicalizationMethod").SetAttr("Algorithm", opts.CanonicalizationMethod)
	si.CreateChild(p+":SignatureMethod").SetAttr("Algorithm", opts.SignatureMethod)

	// Insert structure before digesting: references to the document
	// must see the final shape (the enveloped transform strips the
	// signature subtree during digesting).
	sigValEl := xmldom.NewElement(p + ":SignatureValue")
	sig.InsertChildAt(0, sigValEl)
	sig.InsertChildAt(0, si)
	if ki, err := buildKeyInfo(p, opts.KeyInfo, signingPublicKey(opts)); err != nil {
		return nil, err
	} else if ki != nil {
		idx := sig.ChildIndex(sigValEl) + 1
		sig.InsertChildAt(idx, ki)
	}
	if parent != nil && sig.ParentElement() == nil {
		parent.AppendChild(sig)
	}

	for _, rs := range refs {
		refEl := xmldom.NewElement(p + ":Reference")
		if rs.Type != "" {
			refEl.SetAttr("Type", rs.Type)
		}
		refEl.SetAttr("URI", rs.URI)
		if len(rs.Transforms) > 0 {
			ts := refEl.CreateChild(p + ":Transforms")
			for _, alg := range rs.Transforms {
				trEl := ts.CreateChild(p + ":Transform")
				trEl.SetAttr("Algorithm", alg)
				if len(rs.InclusivePrefixes) > 0 && (alg == xmlsecuri.ExcC14N || alg == xmlsecuri.ExcC14NWithComments) {
					inc := trEl.CreateChild("InclusiveNamespaces")
					inc.DeclareNamespace("", xmlsecuri.ExcC14N)
					inc.SetAttr("PrefixList", joinSpace(rs.InclusivePrefixes))
				}
				if alg == xmlsecuri.TransformDecryptXML {
					for _, exc := range rs.DecryptExceptURIs {
						excEl := trEl.CreateChild("dcrpt:Except")
						excEl.DeclareNamespace("dcrpt", xmlsecuri.DecryptNamespace)
						excEl.SetAttr("URI", exc)
					}
				}
			}
		}
		refEl.CreateChild(p+":DigestMethod").SetAttr("Algorithm", opts.DigestMethod)

		data, err := dereference(rs.URI, doc, resolver)
		if err != nil {
			return nil, err
		}
		chain, err := specChain(rs)
		if err != nil {
			return nil, err
		}
		octets, err := applyTransforms(data, chain, sig, nil)
		if err != nil {
			return nil, err
		}
		h, _ := HashByDigestURI(opts.DigestMethod)
		hasher := h.New()
		hasher.Write(octets)
		refEl.CreateChild(p + ":DigestValue").SetText(base64.StdEncoding.EncodeToString(hasher.Sum(nil)))

		si.AppendChild(refEl)
	}

	// Canonicalize SignedInfo in its document context and sign.
	siOpts, err := c14n.ByURI(opts.CanonicalizationMethod)
	if err != nil {
		return nil, err
	}
	siOctets, err := c14n.Canonicalize(si, siOpts)
	if err != nil {
		return nil, err
	}
	sigVal, err := computeSignatureValue(opts.SignatureMethod, siOctets, opts.Key, opts.HMACKey)
	if err != nil {
		return nil, err
	}
	sigValEl.SetText(base64.StdEncoding.EncodeToString(sigVal))
	return sig, nil
}

func specChain(rs ReferenceSpec) ([]transformSpec, error) {
	var chain []transformSpec
	for _, alg := range rs.Transforms {
		spec := transformSpec{algorithm: alg}
		if alg == xmlsecuri.ExcC14N || alg == xmlsecuri.ExcC14NWithComments {
			spec.inclusivePrefixes = rs.InclusivePrefixes
		}
		if alg == xmlsecuri.TransformDecryptXML {
			spec.exceptURIs = rs.DecryptExceptURIs
		}
		chain = append(chain, spec)
	}
	return chain, nil
}

func signingPublicKey(opts SignOptions) crypto.PublicKey {
	return publicKeyOf(opts.Key)
}

func elementContains(ancestor, e *xmldom.Element) bool {
	for cur := e; cur != nil; cur = cur.ParentElement() {
		if cur == ancestor {
			return true
		}
	}
	return false
}

func joinSpace(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
