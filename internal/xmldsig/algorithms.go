// Package xmldsig implements XML-Signature Syntax and Processing (W3C
// Recommendation, 12 February 2002): signature generation and core
// validation for enveloped, enveloping, and detached signatures over XML
// and binary content.
//
// This is the player-side Verifier and authoring-side Signer substrate
// from the paper's §5 and §8 prototype architecture.
package xmldsig

import (
	"crypto"
	"crypto/ecdsa"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	_ "crypto/sha1" // registered for crypto.SHA1
	_ "crypto/sha256"
	_ "crypto/sha512"
	"errors"
	"fmt"
	"math/big"

	"discsec/internal/xmlsecuri"
)

// ErrUnsupportedAlgorithm is wrapped by errors reporting an algorithm
// identifier this implementation does not provide.
var ErrUnsupportedAlgorithm = errors.New("xmldsig: unsupported algorithm")

// HashByDigestURI maps a DigestMethod identifier to a crypto.Hash.
func HashByDigestURI(uri string) (crypto.Hash, error) {
	switch uri {
	case xmlsecuri.DigestSHA1:
		return crypto.SHA1, nil
	case xmlsecuri.DigestSHA256:
		return crypto.SHA256, nil
	case xmlsecuri.DigestSHA512:
		return crypto.SHA512, nil
	default:
		return 0, fmt.Errorf("%w: digest %q", ErrUnsupportedAlgorithm, uri)
	}
}

// hashBySignatureURI returns the hash a SignatureMethod uses over the
// canonicalized SignedInfo.
func hashBySignatureURI(uri string) (crypto.Hash, error) {
	switch uri {
	case xmlsecuri.SigRSASHA1, xmlsecuri.SigHMACSHA1:
		return crypto.SHA1, nil
	case xmlsecuri.SigRSASHA256, xmlsecuri.SigRSAPSSSHA256, xmlsecuri.SigECDSASHA256, xmlsecuri.SigHMACSHA256:
		return crypto.SHA256, nil
	case xmlsecuri.SigRSASHA512:
		return crypto.SHA512, nil
	default:
		return 0, fmt.Errorf("%w: signature method %q", ErrUnsupportedAlgorithm, uri)
	}
}

// computeSignatureValue produces the raw SignatureValue octets for the
// canonicalized SignedInfo under the given method. Exactly one of key
// (asymmetric) or hmacKey must be set.
func computeSignatureValue(method string, signedInfo []byte, key crypto.Signer, hmacKey []byte) ([]byte, error) {
	h, err := hashBySignatureURI(method)
	if err != nil {
		return nil, err
	}

	switch method {
	case xmlsecuri.SigHMACSHA1, xmlsecuri.SigHMACSHA256:
		if hmacKey == nil {
			return nil, errors.New("xmldsig: HMAC signature method requires an HMAC key")
		}
		mac := hmac.New(h.New, hmacKey)
		mac.Write(signedInfo)
		return mac.Sum(nil), nil
	}

	if key == nil {
		return nil, errors.New("xmldsig: signature method requires an asymmetric signing key")
	}
	hasher := h.New()
	hasher.Write(signedInfo)
	digest := hasher.Sum(nil)

	switch method {
	case xmlsecuri.SigRSASHA1, xmlsecuri.SigRSASHA256, xmlsecuri.SigRSASHA512:
		return key.Sign(rand.Reader, digest, h)
	case xmlsecuri.SigRSAPSSSHA256:
		return key.Sign(rand.Reader, digest, &rsa.PSSOptions{SaltLength: rsa.PSSSaltLengthEqualsHash, Hash: h})
	case xmlsecuri.SigECDSASHA256:
		ecKey, ok := key.(*ecdsa.PrivateKey)
		if !ok {
			return nil, fmt.Errorf("xmldsig: %s requires an ECDSA private key, have %T", method, key)
		}
		r, s, err := ecdsa.Sign(rand.Reader, ecKey, digest)
		if err != nil {
			return nil, err
		}
		return marshalECDSAXMLSig(r, s, ecKey.Curve.Params().BitSize), nil
	default:
		return nil, fmt.Errorf("%w: signature method %q", ErrUnsupportedAlgorithm, method)
	}
}

// verifySignatureValue checks sig over the canonicalized SignedInfo.
func verifySignatureValue(method string, signedInfo, sig []byte, pub crypto.PublicKey, hmacKey []byte) error {
	h, err := hashBySignatureURI(method)
	if err != nil {
		return err
	}

	switch method {
	case xmlsecuri.SigHMACSHA1, xmlsecuri.SigHMACSHA256:
		if hmacKey == nil {
			return errors.New("xmldsig: HMAC verification requires the shared key")
		}
		mac := hmac.New(h.New, hmacKey)
		mac.Write(signedInfo)
		if !hmac.Equal(mac.Sum(nil), sig) {
			return errors.New("xmldsig: HMAC signature mismatch")
		}
		return nil
	}

	hasher := h.New()
	hasher.Write(signedInfo)
	digest := hasher.Sum(nil)

	switch method {
	case xmlsecuri.SigRSASHA1, xmlsecuri.SigRSASHA256, xmlsecuri.SigRSASHA512:
		rsaPub, ok := pub.(*rsa.PublicKey)
		if !ok {
			return fmt.Errorf("xmldsig: %s requires an RSA public key, have %T", method, pub)
		}
		return rsa.VerifyPKCS1v15(rsaPub, h, digest, sig)
	case xmlsecuri.SigRSAPSSSHA256:
		rsaPub, ok := pub.(*rsa.PublicKey)
		if !ok {
			return fmt.Errorf("xmldsig: %s requires an RSA public key, have %T", method, pub)
		}
		return rsa.VerifyPSS(rsaPub, h, digest, sig, &rsa.PSSOptions{SaltLength: rsa.PSSSaltLengthEqualsHash, Hash: h})
	case xmlsecuri.SigECDSASHA256:
		ecPub, ok := pub.(*ecdsa.PublicKey)
		if !ok {
			return fmt.Errorf("xmldsig: %s requires an ECDSA public key, have %T", method, pub)
		}
		r, s, err := unmarshalECDSAXMLSig(sig)
		if err != nil {
			return err
		}
		if !ecdsa.Verify(ecPub, digest, r, s) {
			return errors.New("xmldsig: ECDSA signature mismatch")
		}
		return nil
	default:
		return fmt.Errorf("%w: signature method %q", ErrUnsupportedAlgorithm, method)
	}
}

// marshalECDSAXMLSig encodes (r, s) in the XML-DSig raw concatenated
// form: two big-endian integers each padded to the curve octet length.
func marshalECDSAXMLSig(r, s *big.Int, curveBits int) []byte {
	octets := (curveBits + 7) / 8
	out := make([]byte, 2*octets)
	r.FillBytes(out[:octets])
	s.FillBytes(out[octets:])
	return out
}

func unmarshalECDSAXMLSig(sig []byte) (r, s *big.Int, err error) {
	if len(sig) == 0 || len(sig)%2 != 0 {
		return nil, nil, fmt.Errorf("xmldsig: malformed ECDSA signature value length %d", len(sig))
	}
	half := len(sig) / 2
	return new(big.Int).SetBytes(sig[:half]), new(big.Int).SetBytes(sig[half:]), nil
}
