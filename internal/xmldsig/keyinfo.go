package xmldsig

import (
	"crypto"
	"crypto/rsa"
	"crypto/x509"
	"encoding/base64"
	"errors"
	"fmt"
	"math/big"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// KeyInfoSpec describes the ds:KeyInfo content a signer embeds so a
// verifier can locate or reconstruct the validation key (paper §5.5:
// certificate-based authentication inside the signature markup).
type KeyInfoSpec struct {
	// KeyName emits a ds:KeyName hint.
	KeyName string
	// IncludeKeyValue emits the public key as a ds:KeyValue
	// (RSAKeyValue). Only RSA keys are supported as bare key values;
	// other key types should travel in certificates.
	IncludeKeyValue bool
	// Certificates are DER-encoded X.509 certificates to embed in
	// ds:X509Data, leaf first.
	Certificates [][]byte
}

func (s KeyInfoSpec) empty() bool {
	return s.KeyName == "" && !s.IncludeKeyValue && len(s.Certificates) == 0
}

// buildKeyInfo constructs the ds:KeyInfo element, or nil when the spec is
// empty.
func buildKeyInfo(prefix string, spec KeyInfoSpec, pub crypto.PublicKey) (*xmldom.Element, error) {
	if spec.empty() {
		return nil, nil
	}
	ki := xmldom.NewElement(prefix + ":KeyInfo")
	if spec.KeyName != "" {
		ki.CreateChild(prefix + ":KeyName").SetText(spec.KeyName)
	}
	if spec.IncludeKeyValue {
		if pub == nil {
			return nil, errors.New("xmldsig: IncludeKeyValue set but no public key available")
		}
		kv := ki.CreateChild(prefix + ":KeyValue")
		switch k := pub.(type) {
		case *rsa.PublicKey:
			rkv := kv.CreateChild(prefix + ":RSAKeyValue")
			rkv.CreateChild(prefix + ":Modulus").SetText(base64.StdEncoding.EncodeToString(k.N.Bytes()))
			rkv.CreateChild(prefix + ":Exponent").SetText(base64.StdEncoding.EncodeToString(big.NewInt(int64(k.E)).Bytes()))
		default:
			return nil, fmt.Errorf("xmldsig: KeyValue unsupported for key type %T (embed a certificate instead)", pub)
		}
	}
	if len(spec.Certificates) > 0 {
		xd := ki.CreateChild(prefix + ":X509Data")
		for _, der := range spec.Certificates {
			xd.CreateChild(prefix + ":X509Certificate").SetText(base64.StdEncoding.EncodeToString(der))
		}
	}
	return ki, nil
}

// ParsedKeyInfo is the verifier-side view of a ds:KeyInfo element.
type ParsedKeyInfo struct {
	KeyName      string
	KeyValue     crypto.PublicKey
	Certificates []*x509.Certificate
}

// ParseKeyInfo extracts key material hints from a ds:KeyInfo element. A
// nil element yields an empty result.
func ParseKeyInfo(ki *xmldom.Element) (*ParsedKeyInfo, error) {
	out := &ParsedKeyInfo{}
	if ki == nil {
		return out, nil
	}
	if kn := ki.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyName"); kn != nil {
		out.KeyName = kn.Text()
	}
	if kv := ki.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyValue"); kv != nil {
		if rkv := kv.FirstChildNamed(xmlsecuri.DSigNamespace, "RSAKeyValue"); rkv != nil {
			pub, err := parseRSAKeyValue(rkv)
			if err != nil {
				return nil, err
			}
			out.KeyValue = pub
		}
	}
	for _, xd := range ki.ChildElementsNamed(xmlsecuri.DSigNamespace, "X509Data") {
		for _, xc := range xd.ChildElementsNamed(xmlsecuri.DSigNamespace, "X509Certificate") {
			der, err := decodeBase64Text(xc.Text())
			if err != nil {
				return nil, fmt.Errorf("xmldsig: X509Certificate: %w", err)
			}
			cert, err := x509.ParseCertificate(der)
			if err != nil {
				return nil, fmt.Errorf("xmldsig: X509Certificate: %w", err)
			}
			out.Certificates = append(out.Certificates, cert)
		}
	}
	return out, nil
}

// LeafPublicKey returns the strongest key hint available: the first
// certificate's subject key, else the bare KeyValue, else nil.
func (p *ParsedKeyInfo) LeafPublicKey() crypto.PublicKey {
	if len(p.Certificates) > 0 {
		return p.Certificates[0].PublicKey
	}
	return p.KeyValue
}

func parseRSAKeyValue(rkv *xmldom.Element) (*rsa.PublicKey, error) {
	modEl := rkv.FirstChildNamed(xmlsecuri.DSigNamespace, "Modulus")
	expEl := rkv.FirstChildNamed(xmlsecuri.DSigNamespace, "Exponent")
	if modEl == nil || expEl == nil {
		return nil, errors.New("xmldsig: RSAKeyValue missing Modulus or Exponent")
	}
	mod, err := decodeBase64Text(modEl.Text())
	if err != nil {
		return nil, fmt.Errorf("xmldsig: RSAKeyValue Modulus: %w", err)
	}
	exp, err := decodeBase64Text(expEl.Text())
	if err != nil {
		return nil, fmt.Errorf("xmldsig: RSAKeyValue Exponent: %w", err)
	}
	e := new(big.Int).SetBytes(exp)
	if !e.IsInt64() || e.Int64() <= 1 || e.Int64() > 1<<32 {
		return nil, errors.New("xmldsig: RSAKeyValue exponent out of range")
	}
	return &rsa.PublicKey{N: new(big.Int).SetBytes(mod), E: int(e.Int64())}, nil
}

// publicKeyOf extracts the public half of a signing key for KeyInfo
// emission.
func publicKeyOf(key crypto.Signer) crypto.PublicKey {
	if key == nil {
		return nil
	}
	return key.Public()
}

// decodeBase64Text decodes base64 content tolerating embedded whitespace
// (XML content is frequently wrapped).
func decodeBase64Text(s string) ([]byte, error) {
	compact := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			compact = append(compact, s[i])
		}
	}
	return base64.StdEncoding.DecodeString(string(compact))
}
