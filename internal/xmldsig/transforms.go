package xmldsig

import (
	"errors"
	"fmt"

	"discsec/internal/c14n"
	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// refData is the intermediate value flowing through a Reference's
// transform chain: either an XML node-set (a subtree apex) or an octet
// stream.
type refData struct {
	node   *xmldom.Element
	octets []byte
	isNode bool
}

func nodeData(e *xmldom.Element) refData { return refData{node: e, isNode: true} }
func octetData(b []byte) refData         { return refData{octets: b} }

// ExternalResolver dereferences non-same-document Reference URIs
// (detached signatures over disc files or downloaded resources).
type ExternalResolver interface {
	// ResolveReference returns the octets identified by uri.
	ResolveReference(uri string) ([]byte, error)
}

// ExternalResolverFunc adapts a function to ExternalResolver.
type ExternalResolverFunc func(uri string) ([]byte, error)

// ResolveReference implements ExternalResolver.
func (f ExternalResolverFunc) ResolveReference(uri string) ([]byte, error) { return f(uri) }

// dereference resolves a Reference URI in the context of the document
// that contains the signature. Same-document references ("" and "#id")
// produce node-sets; every other URI is delegated to the external
// resolver.
func dereference(uri string, doc *xmldom.Document, resolver ExternalResolver) (refData, error) {
	switch {
	case uri == "":
		if doc == nil || doc.Root() == nil {
			return refData{}, errors.New("xmldsig: empty Reference URI requires an enclosing document")
		}
		return nodeData(doc.Root()), nil
	case uri[0] == '#':
		if doc == nil {
			return refData{}, errors.New("xmldsig: fragment Reference URI requires an enclosing document")
		}
		id := uri[1:]
		el := doc.ElementByID(id)
		if el == nil {
			return refData{}, fmt.Errorf("xmldsig: no element with Id %q", id)
		}
		return nodeData(el), nil
	default:
		if resolver == nil {
			return refData{}, fmt.Errorf("xmldsig: no resolver for external Reference URI %q", uri)
		}
		b, err := resolver.ResolveReference(uri)
		if err != nil {
			return refData{}, fmt.Errorf("xmldsig: dereference %q: %w", uri, err)
		}
		return octetData(b), nil
	}
}

// transformSpec is one ds:Transform in a chain.
type transformSpec struct {
	algorithm string
	// inclusivePrefixes carries the exclusive-c14n
	// InclusiveNamespaces PrefixList when present.
	inclusivePrefixes []string
	// exceptURIs carries dcrpt:Except references for the decryption
	// transform.
	exceptURIs []string
}

// applyTransforms runs the chain over the dereferenced data. sigEl is the
// Signature element under validation, removed by the enveloped-signature
// transform. The result is always octets: if the chain ends with a
// node-set, the required default canonicalization (inclusive C14N 1.0
// without comments) is applied.
func applyTransforms(data refData, chain []transformSpec, sigEl *xmldom.Element, rec *obs.Recorder) ([]byte, error) {
	cur := data
	for _, tr := range chain {
		var err error
		cur, err = applyTransform(cur, tr, sigEl, rec)
		if err != nil {
			return nil, err
		}
	}
	if cur.isNode {
		return c14n.Canonicalize(cur.node, c14n.Options{Recorder: rec})
	}
	return cur.octets, nil
}

func applyTransform(data refData, tr transformSpec, sigEl *xmldom.Element, rec *obs.Recorder) (refData, error) {
	switch tr.algorithm {
	case xmlsecuri.TransformEnveloped:
		if !data.isNode {
			return refData{}, errors.New("xmldsig: enveloped-signature transform requires a node-set")
		}
		stripped, err := removeSignature(data.node, sigEl)
		if err != nil {
			return refData{}, err
		}
		return nodeData(stripped), nil

	case xmlsecuri.C14N10, xmlsecuri.C14N10WithComments, xmlsecuri.ExcC14N, xmlsecuri.ExcC14NWithComments:
		opts, err := c14n.ByURI(tr.algorithm)
		if err != nil {
			return refData{}, err
		}
		opts.InclusivePrefixes = tr.inclusivePrefixes
		opts.Recorder = rec
		var in *xmldom.Element
		if data.isNode {
			in = data.node
		} else {
			doc, err := xmldom.ParseBytes(data.octets)
			if err != nil {
				return refData{}, fmt.Errorf("xmldsig: c14n transform over octets: %w", err)
			}
			in = doc.Root()
		}
		out, err := c14n.Canonicalize(in, opts)
		if err != nil {
			return refData{}, err
		}
		return octetData(out), nil

	case xmlsecuri.TransformDecryptXML:
		// The Decryption Transform is executed by the player pipeline
		// before core validation (internal/dectrans): EncryptedData
		// not listed in dcrpt:Except has already been decrypted by
		// the time reference processing runs, so here the transform
		// is the identity.
		return data, nil

	case xmlsecuri.TransformBase64:
		var text string
		if data.isNode {
			text = data.node.Text()
		} else {
			text = string(data.octets)
		}
		decoded, err := decodeBase64Text(text)
		if err != nil {
			return refData{}, fmt.Errorf("xmldsig: base64 transform: %w", err)
		}
		return octetData(decoded), nil

	default:
		return refData{}, fmt.Errorf("%w: transform %q", ErrUnsupportedAlgorithm, tr.algorithm)
	}
}

// removeSignature returns a deep copy of the subtree rooted at apex with
// the given Signature element removed. The signature must lie within the
// subtree (the definition of an enveloped signature).
func removeSignature(apex, sigEl *xmldom.Element) (*xmldom.Element, error) {
	if sigEl == nil {
		return nil, errors.New("xmldsig: enveloped-signature transform outside signature validation")
	}
	if apex == sigEl {
		return nil, errors.New("xmldsig: enveloped-signature transform cannot target the signature itself")
	}
	path, ok := pathFromAncestor(apex, sigEl)
	if !ok {
		return nil, errors.New("xmldsig: enveloped signature is not a descendant of the referenced element")
	}
	clone := cloneInContext(apex)
	cur := clone
	for _, idx := range path[:len(path)-1] {
		cur = cur.Children[idx].(*xmldom.Element)
	}
	last := path[len(path)-1]
	target := cur.Children[last]
	if !cur.RemoveChild(target) {
		return nil, errors.New("xmldsig: internal: failed to remove cloned signature")
	}
	return clone, nil
}

// pathFromAncestor returns the child-index path from ancestor down to
// descendant.
func pathFromAncestor(ancestor, descendant *xmldom.Element) ([]int, bool) {
	var rev []int
	cur := descendant
	for cur != nil && cur != ancestor {
		p := cur.ParentElement()
		if p == nil {
			return nil, false
		}
		idx := p.ChildIndex(cur)
		if idx < 0 {
			return nil, false
		}
		rev = append(rev, idx)
		cur = p
	}
	if cur != ancestor {
		return nil, false
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// cloneInContext deep-copies the subtree at apex and grafts the clone
// under lightweight copies of its ancestors so namespace declarations and
// inheritable xml:* attributes remain resolvable, without copying sibling
// subtrees.
func cloneInContext(apex *xmldom.Element) *xmldom.Element {
	clone := apex.Clone()
	child := clone
	for anc := apex.ParentElement(); anc != nil; anc = anc.ParentElement() {
		shell := &xmldom.Element{Prefix: anc.Prefix, Local: anc.Local}
		shell.Attrs = append([]xmldom.Attr(nil), anc.Attrs...)
		shell.AppendChild(child)
		child = shell
	}
	return clone
}

// Processing limits guarding verification against maliciously shaped
// signatures (reference and transform floods).
const (
	// MaxReferences bounds the References in one SignedInfo.
	MaxReferences = 64
	// MaxTransforms bounds the Transform chain of one Reference.
	MaxTransforms = 8
)

// parseTransforms extracts the transform chain from a ds:Reference.
func parseTransforms(ref *xmldom.Element) ([]transformSpec, error) {
	ts := ref.FirstChildNamed(xmlsecuri.DSigNamespace, "Transforms")
	if ts == nil {
		return nil, nil
	}
	trs := ts.ChildElementsNamed(xmlsecuri.DSigNamespace, "Transform")
	if len(trs) > MaxTransforms {
		return nil, fmt.Errorf("xmldsig: %d Transforms exceeds limit %d", len(trs), MaxTransforms)
	}
	var chain []transformSpec
	for _, tr := range trs {
		alg, ok := tr.Attr("Algorithm")
		if !ok {
			return nil, errors.New("xmldsig: Transform missing Algorithm")
		}
		spec := transformSpec{algorithm: alg}
		if inc := tr.FirstChildNamed("", "InclusiveNamespaces"); inc != nil {
			if pl, ok := inc.Attr("PrefixList"); ok {
				spec.inclusivePrefixes = splitPrefixList(pl)
			}
		}
		for _, exc := range tr.ChildElementsNamed(xmlsecuri.DecryptNamespace, "Except") {
			if uri, ok := exc.Attr("URI"); ok {
				spec.exceptURIs = append(spec.exceptURIs, uri)
			}
		}
		chain = append(chain, spec)
	}
	return chain, nil
}

// DecryptionExceptions returns the union of dcrpt:Except URIs declared by
// decryption transforms across every Reference of the signature. The
// player pipeline uses this list to decide which EncryptedData structures
// were signed in their encrypted form and must be left alone before core
// validation.
func DecryptionExceptions(sig *xmldom.Element) ([]string, error) {
	si := sig.FirstChildNamed(xmlsecuri.DSigNamespace, "SignedInfo")
	if si == nil {
		return nil, errors.New("xmldsig: Signature missing SignedInfo")
	}
	seen := map[string]bool{}
	var out []string
	for _, ref := range si.ChildElementsNamed(xmlsecuri.DSigNamespace, "Reference") {
		chain, err := parseTransforms(ref)
		if err != nil {
			return nil, err
		}
		for _, tr := range chain {
			if tr.algorithm != xmlsecuri.TransformDecryptXML {
				continue
			}
			for _, uri := range tr.exceptURIs {
				if !seen[uri] {
					seen[uri] = true
					out = append(out, uri)
				}
			}
		}
	}
	return out, nil
}

func splitPrefixList(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	return out
}
