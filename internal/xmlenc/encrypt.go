package xmlenc

import (
	"crypto/rsa"
	"encoding/base64"
	"errors"
	"fmt"

	"discsec/internal/c14n"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// Prefix is the namespace prefix used for generated xenc markup.
const Prefix = "xenc"

// dsPrefix is the prefix used for ds:KeyInfo structures inside
// EncryptedData.
const dsPrefix = "ds"

// EncryptOptions configures encryption of an XML target or octet stream.
type EncryptOptions struct {
	// Algorithm is the block encryption identifier; defaults to
	// AES-256-GCM.
	Algorithm string

	// Key is the content-encryption key. When nil, a fresh key is
	// generated; delivering it then requires RecipientKey or KEK.
	Key []byte

	// RecipientKey, when set, emits an EncryptedKey transporting the
	// content key under RSA (KeyTransport algorithm).
	RecipientKey *rsa.PublicKey
	// Recipients, when set, emits one EncryptedKey per entry so a
	// single EncryptedData opens for any of several player devices
	// (each with its own key pair). May be combined with RecipientKey.
	Recipients []Recipient
	// KeyTransport selects rsa-1_5 or rsa-oaep-mgf1p; defaults to
	// RSA-OAEP.
	KeyTransport string

	// KEK, when set, emits an EncryptedKey wrapping the content key
	// with AES key wrap (KeyWrap algorithm).
	KEK []byte
	// KeyWrap selects kw-aes128/192/256; defaults to the wrap size
	// matching the KEK length.
	KeyWrap string

	// KeyName labels the key-encryption key (or, without any
	// EncryptedKey, the shared content key) for the recipient.
	KeyName string

	// DataID sets the Id attribute on the generated EncryptedData.
	DataID string
	// MimeType annotates arbitrary-octet EncryptedData.
	MimeType string
}

// Recipient is one addressee of a multi-recipient encryption: a named
// device or party with its own RSA public key.
type Recipient struct {
	// Name labels the recipient's key (emitted as ds:KeyName inside
	// the EncryptedKey so devices can pick theirs cheaply).
	Name string
	// Key is the recipient's RSA public key.
	Key *rsa.PublicKey
}

func (o *EncryptOptions) normalize() error {
	if o.Algorithm == "" {
		o.Algorithm = xmlsecuri.EncAES256GCM
	}
	if _, err := KeySize(o.Algorithm); err != nil {
		return err
	}
	if (o.RecipientKey != nil || len(o.Recipients) > 0) && o.KEK != nil {
		return errors.New("xmlenc: RSA recipients and KEK are mutually exclusive")
	}
	for _, r := range o.Recipients {
		if r.Key == nil {
			return fmt.Errorf("xmlenc: recipient %q has no key", r.Name)
		}
	}
	if (o.RecipientKey != nil || len(o.Recipients) > 0) && o.KeyTransport == "" {
		o.KeyTransport = xmlsecuri.KeyTransportRSAOAEP
	}
	if o.KEK != nil && o.KeyWrap == "" {
		switch len(o.KEK) {
		case 16:
			o.KeyWrap = xmlsecuri.KeyWrapAES128
		case 24:
			o.KeyWrap = xmlsecuri.KeyWrapAES192
		case 32:
			o.KeyWrap = xmlsecuri.KeyWrapAES256
		default:
			return fmt.Errorf("xmlenc: KEK length %d matches no AES key wrap", len(o.KEK))
		}
	}
	if o.Key == nil && o.RecipientKey == nil && len(o.Recipients) == 0 && o.KEK == nil {
		return errors.New("xmlenc: no content key and no key delivery mechanism configured")
	}
	return nil
}

// contentKey returns the key to encrypt with, generating one when the
// options call for key delivery.
func (o *EncryptOptions) contentKey() ([]byte, bool, error) {
	if o.Key != nil {
		want, err := KeySize(o.Algorithm)
		if err != nil {
			return nil, false, err
		}
		if len(o.Key) != want {
			return nil, false, fmt.Errorf("xmlenc: %s requires a %d-byte key, have %d", o.Algorithm, want, len(o.Key))
		}
		return o.Key, false, nil
	}
	k, err := GenerateKey(o.Algorithm)
	return k, true, err
}

// EncryptElement replaces el (which must have a parent) with an
// EncryptedData element of Type Element, per the paper's Fig. 8 manifest
// encryption. The serialized form is made namespace-self-contained via
// inclusive canonicalization so decryption can occur in any context.
func EncryptElement(el *xmldom.Element, opts EncryptOptions) (*xmldom.Element, error) {
	if el == nil {
		return nil, errors.New("xmlenc: nil element")
	}
	parent := el.ParentElement()
	if parent == nil {
		return nil, errors.New("xmlenc: EncryptElement target must have a parent; use EncryptElementDetached for roots")
	}
	plaintext, err := c14n.Canonicalize(el, c14n.Options{WithComments: true})
	if err != nil {
		return nil, err
	}
	ed, err := buildEncryptedData(plaintext, xmlsecuri.EncTypeElement, opts)
	if err != nil {
		return nil, err
	}
	if !parent.ReplaceChild(el, ed) {
		return nil, errors.New("xmlenc: internal: failed to replace target element")
	}
	return ed, nil
}

// EncryptElementDetached encrypts el without requiring a parent,
// returning a standalone document whose root is the EncryptedData.
func EncryptElementDetached(el *xmldom.Element, opts EncryptOptions) (*xmldom.Document, error) {
	if el == nil {
		return nil, errors.New("xmlenc: nil element")
	}
	plaintext, err := c14n.Canonicalize(el, c14n.Options{WithComments: true})
	if err != nil {
		return nil, err
	}
	ed, err := buildEncryptedData(plaintext, xmlsecuri.EncTypeElement, opts)
	if err != nil {
		return nil, err
	}
	doc := &xmldom.Document{}
	doc.SetRoot(ed)
	return doc, nil
}

// EncryptContent replaces the children of el with an EncryptedData of
// Type Content, leaving el's own tag (and any signature on outer
// structure) in the clear — the paper's partial-encryption scenario.
func EncryptContent(el *xmldom.Element, opts EncryptOptions) (*xmldom.Element, error) {
	if el == nil {
		return nil, errors.New("xmlenc: nil element")
	}
	var plaintext []byte
	for _, c := range el.Children {
		b, err := serializeNodeSelfContained(c)
		if err != nil {
			return nil, err
		}
		plaintext = append(plaintext, b...)
	}
	ed, err := buildEncryptedData(plaintext, xmlsecuri.EncTypeContent, opts)
	if err != nil {
		return nil, err
	}
	for _, c := range append([]xmldom.Node(nil), el.Children...) {
		el.RemoveChild(c)
	}
	el.AppendChild(ed)
	return ed, nil
}

// EncryptOctets encrypts arbitrary binary content (the paper's Fig. 7
// track target), returning a standalone EncryptedData document.
func EncryptOctets(data []byte, opts EncryptOptions) (*xmldom.Document, error) {
	ed, err := buildEncryptedData(data, "", opts)
	if err != nil {
		return nil, err
	}
	doc := &xmldom.Document{}
	doc.SetRoot(ed)
	return doc, nil
}

// EncryptOctetsToReference encrypts binary content but stores only a
// CipherReference in the EncryptedData, returning the external
// ciphertext separately. This keeps bulky payloads (transport streams)
// out of the XML: the paper's "referenced resources could be encrypted
// as well" (§4) with the markup staying compact.
func EncryptOctetsToReference(data []byte, uri string, opts EncryptOptions) (*xmldom.Document, []byte, error) {
	doc, err := EncryptOctets(data, opts)
	if err != nil {
		return nil, nil, err
	}
	ed := doc.Root()
	cd := ed.FirstChildNamed(xmlsecuri.EncNamespace, "CipherData")
	cv := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherValue")
	payload, err := decodeBase64Text(cv.Text())
	if err != nil {
		return nil, nil, err
	}
	cd.RemoveChild(cv)
	cd.CreateChild(Prefix+":CipherReference").SetAttr("URI", uri)
	return doc, payload, nil
}

func serializeNodeSelfContained(n xmldom.Node) ([]byte, error) {
	switch t := n.(type) {
	case *xmldom.Element:
		return c14n.Canonicalize(t, c14n.Options{WithComments: true})
	default:
		// Serialize non-element nodes via the standard writer by
		// wrapping and unwrapping.
		wrapper := xmldom.NewElement("w")
		wrapper.AppendChild(t.CloneNode())
		s := wrapper.String()
		return []byte(s[len("<w>") : len(s)-len("</w>")]), nil
	}
}

// buildEncryptedData assembles the xenc:EncryptedData element.
func buildEncryptedData(plaintext []byte, dataType string, opts EncryptOptions) (*xmldom.Element, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	key, generated, err := opts.contentKey()
	if err != nil {
		return nil, err
	}
	if generated && opts.RecipientKey == nil && len(opts.Recipients) == 0 && opts.KEK == nil {
		return nil, errors.New("xmlenc: generated key has no delivery mechanism")
	}

	payload, err := encryptOctets(opts.Algorithm, key, plaintext)
	if err != nil {
		return nil, err
	}

	ed := xmldom.NewElement(Prefix + ":EncryptedData")
	ed.DeclareNamespace(Prefix, xmlsecuri.EncNamespace)
	if dataType != "" {
		ed.SetAttr("Type", dataType)
	}
	if opts.DataID != "" {
		ed.SetAttr("Id", opts.DataID)
	}
	if opts.MimeType != "" {
		ed.SetAttr("MimeType", opts.MimeType)
	}
	ed.CreateChild(Prefix+":EncryptionMethod").SetAttr("Algorithm", opts.Algorithm)

	ki, err := buildEncKeyInfo(key, opts)
	if err != nil {
		return nil, err
	}
	if ki != nil {
		ed.AppendChild(ki)
	}

	cd := ed.CreateChild(Prefix + ":CipherData")
	cd.CreateChild(Prefix + ":CipherValue").SetText(base64.StdEncoding.EncodeToString(payload))
	return ed, nil
}

// buildEncKeyInfo emits the ds:KeyInfo for an EncryptedData: an
// EncryptedKey under RSA transport or AES wrap, or a bare KeyName hint.
func buildEncKeyInfo(contentKey []byte, opts EncryptOptions) (*xmldom.Element, error) {
	if opts.RecipientKey == nil && len(opts.Recipients) == 0 && opts.KEK == nil && opts.KeyName == "" {
		return nil, nil
	}
	ki := xmldom.NewElement(dsPrefix + ":KeyInfo")
	ki.DeclareNamespace(dsPrefix, xmlsecuri.DSigNamespace)

	if opts.RecipientKey == nil && len(opts.Recipients) == 0 && opts.KEK == nil {
		ki.CreateChild(dsPrefix + ":KeyName").SetText(opts.KeyName)
		return ki, nil
	}

	appendEncryptedKey := func(alg string, ct []byte, keyName string) {
		ek := ki.CreateChild(Prefix + ":EncryptedKey")
		ek.CreateChild(Prefix+":EncryptionMethod").SetAttr("Algorithm", alg)
		if keyName != "" {
			inner := ek.CreateChild(dsPrefix + ":KeyInfo")
			inner.CreateChild(dsPrefix + ":KeyName").SetText(keyName)
		}
		cd := ek.CreateChild(Prefix + ":CipherData")
		cd.CreateChild(Prefix + ":CipherValue").SetText(base64.StdEncoding.EncodeToString(ct))
	}

	switch {
	case opts.KEK != nil:
		ct, err := wrapWithAlgorithm(opts.KeyWrap, opts.KEK, contentKey)
		if err != nil {
			return nil, err
		}
		appendEncryptedKey(opts.KeyWrap, ct, opts.KeyName)
	default:
		if opts.RecipientKey != nil {
			ct, err := transportKey(opts.KeyTransport, opts.RecipientKey, contentKey)
			if err != nil {
				return nil, err
			}
			appendEncryptedKey(opts.KeyTransport, ct, opts.KeyName)
		}
		for _, r := range opts.Recipients {
			ct, err := transportKey(opts.KeyTransport, r.Key, contentKey)
			if err != nil {
				return nil, err
			}
			appendEncryptedKey(opts.KeyTransport, ct, r.Name)
		}
	}
	return ki, nil
}
