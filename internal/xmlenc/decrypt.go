package xmlenc

import (
	"crypto/rsa"
	"encoding/base64"
	"errors"
	"fmt"
	"io"

	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// DecryptOptions configures decryption of EncryptedData structures.
type DecryptOptions struct {
	// Key is the shared content-encryption key, used when the
	// EncryptedData carries no EncryptedKey.
	Key []byte
	// RSAKey recovers keys transported under rsa-1_5 / rsa-oaep.
	RSAKey *rsa.PrivateKey
	// KEK unwraps keys wrapped under kw-aes*.
	KEK []byte
	// KeyByName resolves a ds:KeyName hint to a content key (no
	// EncryptedKey) or a KEK (with AES key wrap).
	KeyByName func(name string) ([]byte, error)
	// CipherResolver dereferences xenc:CipherReference URIs (ciphertext
	// stored outside the document, e.g. in the disc image).
	CipherResolver func(uri string) ([]byte, error)
	// CipherStreamResolver, when set, dereferences CipherReference URIs
	// as a stream; DecryptOctetsTo prefers it over CipherResolver so a
	// large clip's ciphertext is never materialized whole.
	CipherStreamResolver func(uri string) (io.ReadCloser, error)
	// Recorder, when non-nil, receives one obs.StageDecrypt span per
	// EncryptedData decryption.
	Recorder *obs.Recorder
}

// IsEncryptedData reports whether el is an xenc:EncryptedData element.
func IsEncryptedData(el *xmldom.Element) bool {
	return el != nil && el.Local == "EncryptedData" && el.NamespaceURI() == xmlsecuri.EncNamespace
}

// FindEncryptedData returns every xenc:EncryptedData in document order
// (not descending into EncryptedData contents, which are opaque).
func FindEncryptedData(doc *xmldom.Document) []*xmldom.Element {
	root := doc.Root()
	if root == nil {
		return nil
	}
	var out []*xmldom.Element
	root.Walk(func(n xmldom.Node) bool {
		e, ok := n.(*xmldom.Element)
		if !ok {
			return true
		}
		if IsEncryptedData(e) {
			out = append(out, e)
			return false
		}
		return true
	})
	return out
}

// DecryptOctets recovers the plaintext octets of an EncryptedData
// without altering the tree — used for arbitrary binary payloads (tracks)
// and as the common lower half of structural decryption.
func DecryptOctets(ed *xmldom.Element, opts DecryptOptions) ([]byte, error) {
	defer opts.Recorder.Start(obs.StageDecrypt).End()
	if !IsEncryptedData(ed) {
		return nil, errors.New("xmlenc: element is not xenc:EncryptedData")
	}
	em := ed.FirstChildNamed(xmlsecuri.EncNamespace, "EncryptionMethod")
	if em == nil {
		return nil, errors.New("xmlenc: EncryptedData missing EncryptionMethod")
	}
	algorithm := em.AttrValue("Algorithm")

	payload, err := cipherPayload(ed, opts)
	if err != nil {
		return nil, err
	}
	key, err := resolveContentKey(ed, algorithm, opts)
	if err != nil {
		return nil, err
	}
	return decryptOctets(algorithm, key, payload)
}

// DecryptElement decrypts an EncryptedData of Type Element or Content in
// place: the EncryptedData node is replaced by the recovered nodes. It
// returns the recovered plaintext for callers that also need the octets.
func DecryptElement(ed *xmldom.Element, opts DecryptOptions) ([]byte, error) {
	parent := ed.ParentElement()
	if parent == nil {
		return nil, errors.New("xmlenc: DecryptElement requires the EncryptedData to have a parent; use DecryptOctets for detached data")
	}
	dataType := ed.AttrValue("Type")
	if dataType != xmlsecuri.EncTypeElement && dataType != xmlsecuri.EncTypeContent {
		return nil, fmt.Errorf("xmlenc: DecryptElement requires Type Element or Content, have %q", dataType)
	}
	plaintext, err := DecryptOctets(ed, opts)
	if err != nil {
		return nil, err
	}
	nodes, err := parseFragment(plaintext)
	if err != nil {
		return nil, fmt.Errorf("xmlenc: decrypted plaintext is not well-formed XML: %w", err)
	}
	if dataType == xmlsecuri.EncTypeElement {
		if len(nodes) != 1 {
			return nil, fmt.Errorf("xmlenc: Element-typed plaintext yielded %d nodes", len(nodes))
		}
		if _, ok := nodes[0].(*xmldom.Element); !ok {
			return nil, errors.New("xmlenc: Element-typed plaintext is not an element")
		}
	}
	idx := parent.ChildIndex(ed)
	parent.RemoveChild(ed)
	for i, n := range nodes {
		parent.InsertChildAt(idx+i, n)
	}
	return plaintext, nil
}

// DecryptAll decrypts every EncryptedData of Type Element/Content in the
// document, repeating until none remain (handling super-encryption).
// It returns the number of structures decrypted.
func DecryptAll(doc *xmldom.Document, opts DecryptOptions) (int, error) {
	total := 0
	for pass := 0; pass < 32; pass++ {
		targets := FindEncryptedData(doc)
		var structural []*xmldom.Element
		for _, ed := range targets {
			tp := ed.AttrValue("Type")
			if tp == xmlsecuri.EncTypeElement || tp == xmlsecuri.EncTypeContent {
				structural = append(structural, ed)
			}
		}
		if len(structural) == 0 {
			return total, nil
		}
		for _, ed := range structural {
			if _, err := DecryptElement(ed, opts); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, errors.New("xmlenc: super-encryption nesting too deep")
}

// cipherPayload extracts the raw ciphertext of an EncryptedData from
// either an inline CipherValue or an external CipherReference.
func cipherPayload(ed *xmldom.Element, opts DecryptOptions) ([]byte, error) {
	cd := ed.FirstChildNamed(xmlsecuri.EncNamespace, "CipherData")
	if cd == nil {
		return nil, errors.New("xmlenc: EncryptedData missing CipherData")
	}
	if cv := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherValue"); cv != nil {
		return decodeBase64Text(cv.Text())
	}
	if cr := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherReference"); cr != nil {
		uri, ok := cr.Attr("URI")
		if !ok {
			return nil, errors.New("xmlenc: CipherReference missing URI")
		}
		if opts.CipherResolver == nil {
			return nil, fmt.Errorf("xmlenc: no resolver configured for CipherReference %q", uri)
		}
		payload, err := opts.CipherResolver(uri)
		if err != nil {
			return nil, fmt.Errorf("xmlenc: CipherReference %q: %w", uri, err)
		}
		return payload, nil
	}
	return nil, errors.New("xmlenc: CipherData has neither CipherValue nor CipherReference")
}

// resolveContentKey recovers the content-encryption key from the
// EncryptedData's KeyInfo and the options.
func resolveContentKey(ed *xmldom.Element, algorithm string, opts DecryptOptions) ([]byte, error) {
	ki := ed.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyInfo")
	if ki == nil {
		if opts.Key != nil {
			return opts.Key, nil
		}
		return nil, errors.New("xmlenc: no KeyInfo and no shared key configured")
	}

	if eks := ki.ChildElementsNamed(xmlsecuri.EncNamespace, "EncryptedKey"); len(eks) > 0 {
		// Multi-recipient data carries one EncryptedKey per addressee;
		// try each until one opens with our key material.
		var lastErr error
		for _, ek := range eks {
			key, err := recoverEncryptedKey(ek, opts)
			if err == nil {
				return key, nil
			}
			lastErr = err
		}
		return nil, lastErr
	}

	if opts.Key != nil {
		return opts.Key, nil
	}
	if kn := ki.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyName"); kn != nil && opts.KeyByName != nil {
		key, err := opts.KeyByName(kn.Text())
		if err != nil {
			return nil, fmt.Errorf("xmlenc: KeyName %q: %w", kn.Text(), err)
		}
		return key, nil
	}
	return nil, errors.New("xmlenc: cannot resolve content-encryption key")
}

func recoverEncryptedKey(ek *xmldom.Element, opts DecryptOptions) ([]byte, error) {
	em := ek.FirstChildNamed(xmlsecuri.EncNamespace, "EncryptionMethod")
	if em == nil {
		return nil, errors.New("xmlenc: EncryptedKey missing EncryptionMethod")
	}
	algorithm := em.AttrValue("Algorithm")
	ct, err := cipherValueOf(ek)
	if err != nil {
		return nil, err
	}
	switch algorithm {
	case xmlsecuri.KeyTransportRSA15, xmlsecuri.KeyTransportRSAOAEP:
		if opts.RSAKey == nil {
			return nil, errors.New("xmlenc: EncryptedKey uses RSA transport but no RSA key configured")
		}
		return recoverTransportedKey(algorithm, opts.RSAKey, ct)
	case xmlsecuri.KeyWrapAES128, xmlsecuri.KeyWrapAES192, xmlsecuri.KeyWrapAES256:
		kek := opts.KEK
		if kek == nil && opts.KeyByName != nil {
			if inner := ek.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyInfo"); inner != nil {
				if kn := inner.FirstChildNamed(xmlsecuri.DSigNamespace, "KeyName"); kn != nil {
					kek, err = opts.KeyByName(kn.Text())
					if err != nil {
						return nil, fmt.Errorf("xmlenc: KEK %q: %w", kn.Text(), err)
					}
				}
			}
		}
		if kek == nil {
			return nil, errors.New("xmlenc: EncryptedKey uses AES key wrap but no KEK configured")
		}
		return unwrapWithAlgorithm(algorithm, kek, ct)
	default:
		return nil, fmt.Errorf("%w: EncryptedKey algorithm %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

func cipherValueOf(el *xmldom.Element) ([]byte, error) {
	cd := el.FirstChildNamed(xmlsecuri.EncNamespace, "CipherData")
	if cd == nil {
		return nil, errors.New("xmlenc: missing CipherData")
	}
	cv := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherValue")
	if cv == nil {
		return nil, errors.New("xmlenc: missing CipherValue")
	}
	return decodeBase64Text(cv.Text())
}

// parseFragment parses plaintext that may hold several sibling nodes by
// wrapping it in a synthetic root.
func parseFragment(b []byte) ([]xmldom.Node, error) {
	wrapped := append([]byte("<xmlenc-fragment-wrapper>"), b...)
	wrapped = append(wrapped, []byte("</xmlenc-fragment-wrapper>")...)
	doc, err := xmldom.ParseBytes(wrapped)
	if err != nil {
		return nil, err
	}
	root := doc.Root()
	nodes := append([]xmldom.Node(nil), root.Children...)
	for _, n := range nodes {
		switch t := n.(type) {
		case *xmldom.Element:
			t.Detach()
		default:
			root.RemoveChild(n)
		}
	}
	return nodes, nil
}

func decodeBase64Text(s string) ([]byte, error) {
	compact := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			compact = append(compact, s[i])
		}
	}
	return base64.StdEncoding.DecodeString(string(compact))
}
