package xmlenc

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"strings"

	"discsec/internal/obs"
	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

// DecryptOctetsTo is the streaming form of DecryptOctets: the recovered
// plaintext is written to dst as ciphertext chunks are decrypted,
// instead of being materialized whole. For CBC payloads the resident
// set is one chunk (32 KiB) no matter how large the clip is; GCM
// payloads are necessarily buffered (see decryptGCMTo). Ciphertext
// arrives either from the inline CipherValue (base64-decoded
// incrementally) or, for CipherReference, through
// DecryptOptions.CipherStreamResolver when configured — the path that
// lets a multi-gigabyte A/V track flow disc-to-destination without
// ever being held in memory.
//
// It returns the number of plaintext bytes written. On error the
// bytes already written to dst are garbage (an unauthenticated-mode
// prefix, or a truncated stream): callers streaming to a destination
// they cannot discard must treat any error as poisoning the output.
func DecryptOctetsTo(dst io.Writer, ed *xmldom.Element, opts DecryptOptions) (int64, error) {
	defer opts.Recorder.Start(obs.StageDecrypt).End()
	if !IsEncryptedData(ed) {
		return 0, errors.New("xmlenc: element is not xenc:EncryptedData")
	}
	em := ed.FirstChildNamed(xmlsecuri.EncNamespace, "EncryptionMethod")
	if em == nil {
		return 0, errors.New("xmlenc: EncryptedData missing EncryptionMethod")
	}
	algorithm := em.AttrValue("Algorithm")
	key, err := resolveContentKey(ed, algorithm, opts)
	if err != nil {
		return 0, err
	}
	if err := checkKeyLen(algorithm, key); err != nil {
		return 0, err
	}
	src, err := cipherPayloadStream(ed, opts)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	switch algorithm {
	case xmlsecuri.EncAES128CBC, xmlsecuri.EncAES192CBC, xmlsecuri.EncAES256CBC:
		return decryptCBCTo(dst, key, src)
	case xmlsecuri.EncAES128GCM, xmlsecuri.EncAES256GCM:
		return decryptGCMTo(dst, key, src)
	default:
		return 0, fmt.Errorf("%w: block encryption %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

// cipherPayloadStream opens the EncryptedData's ciphertext as a stream:
// an incremental base64 decoder over the inline CipherValue, or the
// external reference through CipherStreamResolver (falling back to the
// byte-slice CipherResolver when only that is configured).
func cipherPayloadStream(ed *xmldom.Element, opts DecryptOptions) (io.ReadCloser, error) {
	cd := ed.FirstChildNamed(xmlsecuri.EncNamespace, "CipherData")
	if cd == nil {
		return nil, errors.New("xmlenc: EncryptedData missing CipherData")
	}
	if cv := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherValue"); cv != nil {
		return io.NopCloser(base64.NewDecoder(base64.StdEncoding,
			stripWS{strings.NewReader(cv.Text())})), nil
	}
	if cr := cd.FirstChildNamed(xmlsecuri.EncNamespace, "CipherReference"); cr != nil {
		uri, ok := cr.Attr("URI")
		if !ok {
			return nil, errors.New("xmlenc: CipherReference missing URI")
		}
		if opts.CipherStreamResolver != nil {
			rc, err := opts.CipherStreamResolver(uri)
			if err != nil {
				return nil, fmt.Errorf("xmlenc: CipherReference %q: %w", uri, err)
			}
			return rc, nil
		}
		if opts.CipherResolver != nil {
			payload, err := opts.CipherResolver(uri)
			if err != nil {
				return nil, fmt.Errorf("xmlenc: CipherReference %q: %w", uri, err)
			}
			return io.NopCloser(bytes.NewReader(payload)), nil
		}
		return nil, fmt.Errorf("xmlenc: no resolver configured for CipherReference %q", uri)
	}
	return nil, errors.New("xmlenc: CipherData has neither CipherValue nor CipherReference")
}

// stripWS drops XML-permitted whitespace from a base64 text stream so
// the decoder sees a contiguous alphabet.
type stripWS struct{ r io.Reader }

func (f stripWS) Read(p []byte) (int, error) {
	for {
		n, err := f.r.Read(p)
		k := 0
		for i := 0; i < n; i++ {
			switch p[i] {
			case ' ', '\t', '\n', '\r':
			default:
				p[k] = p[i]
				k++
			}
		}
		if k > 0 || err != nil {
			return k, err
		}
		// The whole read was whitespace: go around again rather than
		// return a zero-byte success.
	}
}

// decryptCBCChunk is the streaming granule: 2048 AES blocks (32 KiB),
// the resident ciphertext bound regardless of payload size.
const decryptCBCChunk = 2048 * 16

// decryptCBCTo streams the XML-Enc CBC construction (IV || ciphertext,
// final byte of the last plaintext block carries the pad length)
// block-wise: each chunk is decrypted and released immediately, except
// the most recent block, which is held back until the next read proves
// it is not the final (padded) one. CBC carries no integrity of its
// own — in this system the payload is always covered by a signature
// reference, verified before or after this call per the Fig. 9 order.
func decryptCBCTo(dst io.Writer, key []byte, src io.Reader) (int64, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return 0, err
	}
	bs := block.BlockSize()
	iv := make([]byte, bs)
	if _, err := io.ReadFull(src, iv); err != nil {
		return 0, fmt.Errorf("%w: CBC payload shorter than one IV", ErrDecryptionFailed)
	}
	dec := cipher.NewCBCDecrypter(block, iv)

	buf := make([]byte, decryptCBCChunk)
	hold := make([]byte, 0, bs) // decrypted candidate final block
	var written int64
	for {
		n, rerr := io.ReadFull(src, buf)
		if rerr != nil && rerr != io.EOF && rerr != io.ErrUnexpectedEOF {
			return written, fmt.Errorf("xmlenc: reading ciphertext: %w", rerr)
		}
		if n > 0 {
			if n%bs != 0 {
				return written, fmt.Errorf("%w: CBC ciphertext length not a block multiple", ErrDecryptionFailed)
			}
			dec.CryptBlocks(buf[:n], buf[:n])
			if len(hold) > 0 {
				w, werr := dst.Write(hold)
				written += int64(w)
				if werr != nil {
					return written, werr
				}
			}
			w, werr := dst.Write(buf[:n-bs])
			written += int64(w)
			if werr != nil {
				return written, werr
			}
			hold = append(hold[:0], buf[n-bs:n]...)
		}
		if rerr != nil { // EOF or ErrUnexpectedEOF: stream drained
			break
		}
	}
	if len(hold) == 0 {
		return written, fmt.Errorf("%w: CBC payload has no ciphertext blocks", ErrDecryptionFailed)
	}
	padLen := int(hold[bs-1])
	if padLen < 1 || padLen > bs {
		return written, fmt.Errorf("%w: invalid CBC padding", ErrDecryptionFailed)
	}
	w, werr := dst.Write(hold[:bs-padLen])
	written += int64(w)
	return written, werr
}

// decryptGCMTo buffers the whole payload before writing any plaintext:
// GCM's authentication tag trails the ciphertext, and releasing
// unauthenticated plaintext to dst would defeat the mode's point. The
// streaming win for GCM is therefore only on the input side (the
// ciphertext source need not be memory-resident twice); payloads too
// large to buffer should be packaged under CBC, where the enclosing
// signature reference provides integrity.
func decryptGCMTo(dst io.Writer, key []byte, src io.Reader) (int64, error) {
	payload, err := io.ReadAll(src)
	if err != nil {
		return 0, fmt.Errorf("xmlenc: reading ciphertext: %w", err)
	}
	pt, err := decryptGCM(key, payload)
	if err != nil {
		return 0, err
	}
	n, err := dst.Write(pt)
	return int64(n), err
}
