package xmlenc

import (
	"bytes"
	"crypto/rand"
	"crypto/rsa"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"discsec/internal/xmldom"
	"discsec/internal/xmlsecuri"
)

var testRSAKey *rsa.PrivateKey

func init() {
	var err error
	testRSAKey, err = rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		panic(err)
	}
}

const gameManifest = `<manifest xmlns="urn:disc:manifest">
  <markup><layout region="main"/></markup>
  <state><highscores><entry player="AAA" score="9000"/></highscores></state>
</manifest>`

func parseDoc(t *testing.T, s string) *xmldom.Document {
	t.Helper()
	doc, err := xmldom.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func key(n int) []byte {
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(i * 7)
	}
	return k
}

func TestEncryptDecryptElementAllAlgorithms(t *testing.T) {
	algs := []struct {
		uri  string
		klen int
	}{
		{xmlsecuri.EncAES128CBC, 16},
		{xmlsecuri.EncAES192CBC, 24},
		{xmlsecuri.EncAES256CBC, 32},
		{xmlsecuri.EncAES128GCM, 16},
		{xmlsecuri.EncAES256GCM, 32},
	}
	for _, alg := range algs {
		t.Run(alg.uri, func(t *testing.T) {
			doc := parseDoc(t, gameManifest)
			target, _ := doc.Root().Find("state/highscores")
			if target == nil {
				t.Fatal("no target")
			}
			original := target.String()

			k := key(alg.klen)
			if _, err := EncryptElement(target, EncryptOptions{Algorithm: alg.uri, Key: k}); err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			serialized := doc.Root().String()
			if strings.Contains(serialized, "9000") {
				t.Error("plaintext leaked into encrypted document")
			}

			doc2 := parseDoc(t, serialized)
			n, err := DecryptAll(doc2, DecryptOptions{Key: k})
			if err != nil {
				t.Fatalf("decrypt: %v", err)
			}
			if n != 1 {
				t.Errorf("decrypted %d structures, want 1", n)
			}
			restored, _ := doc2.Root().Find("state/highscores")
			if restored == nil {
				t.Fatal("highscores not restored")
			}
			if restored.FirstChildElement("entry").AttrValue("score") != "9000" {
				t.Errorf("restored = %q, original = %q", restored.String(), original)
			}
		})
	}
}

func TestEncryptContentLeavesTagClear(t *testing.T) {
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state/highscores")
	k := key(32)
	if _, err := EncryptContent(target, EncryptOptions{Algorithm: xmlsecuri.EncAES256GCM, Key: k}); err != nil {
		t.Fatalf("encrypt content: %v", err)
	}
	s := doc.Root().String()
	if !strings.Contains(s, "<highscores") {
		t.Error("element tag should stay in the clear for Content encryption")
	}
	if strings.Contains(s, "9000") {
		t.Error("content leaked")
	}
	doc2 := parseDoc(t, s)
	if _, err := DecryptAll(doc2, DecryptOptions{Key: k}); err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	restored, _ := doc2.Root().Find("state/highscores/entry")
	if restored == nil || restored.AttrValue("score") != "9000" {
		t.Errorf("restored doc: %s", doc2.Root().String())
	}
}

func TestEncryptContentMixedNodes(t *testing.T) {
	doc := parseDoc(t, `<r><m>before<k a="1"/><!-- note -->after</m></r>`)
	target := doc.Root().FirstChildElement("m")
	k := key(16)
	if _, err := EncryptContent(target, EncryptOptions{Algorithm: xmlsecuri.EncAES128GCM, Key: k}); err != nil {
		t.Fatal(err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	if _, err := DecryptAll(doc2, DecryptOptions{Key: k}); err != nil {
		t.Fatal(err)
	}
	m := doc2.Root().FirstChildElement("m")
	if m.Text() != "beforeafter" {
		t.Errorf("text = %q", m.Text())
	}
	if m.FirstChildElement("k") == nil || m.FirstChildElement("k").AttrValue("a") != "1" {
		t.Errorf("element child lost: %s", m.String())
	}
}

func TestRSAKeyTransport(t *testing.T) {
	for _, transport := range []string{xmlsecuri.KeyTransportRSAOAEP, xmlsecuri.KeyTransportRSA15} {
		t.Run(transport, func(t *testing.T) {
			doc := parseDoc(t, gameManifest)
			target, _ := doc.Root().Find("state")
			_, err := EncryptElement(target, EncryptOptions{
				RecipientKey: &testRSAKey.PublicKey,
				KeyTransport: transport,
				KeyName:      "player-device-key",
			})
			if err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			s := doc.Root().String()
			if !strings.Contains(s, "EncryptedKey") {
				t.Error("no EncryptedKey emitted")
			}
			doc2 := parseDoc(t, s)
			if _, err := DecryptAll(doc2, DecryptOptions{RSAKey: testRSAKey}); err != nil {
				t.Fatalf("decrypt: %v", err)
			}
			if el, _ := doc2.Root().Find("state/highscores/entry"); el == nil {
				t.Error("state not restored")
			}
		})
	}
}

func TestRSAWrongKeyFails(t *testing.T) {
	other, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	if _, err := EncryptElement(target, EncryptOptions{RecipientKey: &testRSAKey.PublicKey}); err != nil {
		t.Fatal(err)
	}
	_, err = DecryptAll(doc, DecryptOptions{RSAKey: other})
	if !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("err = %v, want ErrDecryptionFailed", err)
	}
}

func TestAESKeyWrapDelivery(t *testing.T) {
	kek := key(16)
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	if _, err := EncryptElement(target, EncryptOptions{KEK: kek, KeyName: "disc-kek"}); err != nil {
		t.Fatal(err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	if _, err := DecryptAll(doc2, DecryptOptions{KEK: kek}); err != nil {
		t.Fatalf("decrypt with KEK: %v", err)
	}
	// Also resolvable by name.
	doc3 := parseDoc(t, gameManifest)
	target3, _ := doc3.Root().Find("state")
	if _, err := EncryptElement(target3, EncryptOptions{KEK: kek, KeyName: "disc-kek"}); err != nil {
		t.Fatal(err)
	}
	_, err := DecryptAll(doc3, DecryptOptions{KeyByName: func(name string) ([]byte, error) {
		if name == "disc-kek" {
			return kek, nil
		}
		return nil, errors.New("unknown")
	}})
	if err != nil {
		t.Fatalf("decrypt via KeyByName: %v", err)
	}
}

func TestKeyWrapRFC3394Vector(t *testing.T) {
	// RFC 3394 §4.1 test vector: 128-bit KEK, 128-bit key data.
	kek := mustHex(t, "000102030405060708090A0B0C0D0E0F")
	data := mustHex(t, "00112233445566778899AABBCCDDEEFF")
	want := mustHex(t, "1FA68B0A8112B447AEF34BD8FB5A7B829D3E862371D2CFE5")
	got, err := WrapKey(kek, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wrap = %X, want %X", got, want)
	}
	back, err := UnwrapKey(kek, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Errorf("unwrap = %X", back)
	}
}

func TestKeyWrapRFC3394Vector256(t *testing.T) {
	// RFC 3394 §4.6: 256-bit KEK, 256-bit key data.
	kek := mustHex(t, "000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F")
	data := mustHex(t, "00112233445566778899AABBCCDDEEFF000102030405060708090A0B0C0D0E0F")
	want := mustHex(t, "28C9F404C4B810F4CBCCB35CFB87F8263F5786E2D80ED326CBC7F0E71A99F43BFB988B9B7A02DD21")
	got, err := WrapKey(kek, data)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wrap = %X, want %X", got, want)
	}
}

func TestUnwrapCorruptedFails(t *testing.T) {
	kek := key(16)
	wrapped, err := WrapKey(kek, key(16))
	if err != nil {
		t.Fatal(err)
	}
	wrapped[0] ^= 1
	if _, err := UnwrapKey(kek, wrapped); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("err = %v, want ErrDecryptionFailed", err)
	}
}

func TestEncryptOctetsBinary(t *testing.T) {
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	k := key(32)
	doc, err := EncryptOctets(payload, EncryptOptions{Key: k, MimeType: "video/mp2t"})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root().AttrValue("MimeType") != "video/mp2t" {
		t.Error("MimeType lost")
	}
	doc2 := parseDoc(t, doc.Root().String())
	pt, err := DecryptOctets(doc2.Root(), DecryptOptions{Key: k})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, payload) {
		t.Error("binary round trip mismatch")
	}
}

func TestCorruptedCiphertextFails(t *testing.T) {
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	k := key(32)
	if _, err := EncryptElement(target, EncryptOptions{Key: k}); err != nil {
		t.Fatal(err)
	}
	eds := FindEncryptedData(doc)
	cv, _ := eds[0].Find("CipherData/CipherValue")
	txt := cv.Text()
	cv.SetText("AAAA" + txt[4:])
	if _, err := DecryptAll(doc, DecryptOptions{Key: k}); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("err = %v, want ErrDecryptionFailed", err)
	}
}

func TestWrongSymmetricKeyGCMFails(t *testing.T) {
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	if _, err := EncryptElement(target, EncryptOptions{Key: key(32)}); err != nil {
		t.Fatal(err)
	}
	bad := key(32)
	bad[0] ^= 0xFF
	if _, err := DecryptAll(doc, DecryptOptions{Key: bad}); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("err = %v, want ErrDecryptionFailed", err)
	}
}

func TestSuperEncryption(t *testing.T) {
	// Encrypting an already-encrypted region (outer layer covers the
	// inner EncryptedData).
	doc := parseDoc(t, gameManifest)
	inner, _ := doc.Root().Find("state/highscores")
	k1, k2 := key(16), key(32)
	if _, err := EncryptElement(inner, EncryptOptions{Algorithm: xmlsecuri.EncAES128GCM, Key: k1}); err != nil {
		t.Fatal(err)
	}
	outer, _ := doc.Root().Find("state")
	if _, err := EncryptElement(outer, EncryptOptions{Algorithm: xmlsecuri.EncAES256GCM, Key: k2}); err != nil {
		t.Fatal(err)
	}
	doc2 := parseDoc(t, doc.Root().String())
	// Both layers use distinct keys; provide both via KeyByName-less
	// sequential passes: first pass with k2 reveals inner ED, second
	// with k1. DecryptAll with a single key cannot do both, so drive
	// manually.
	if _, err := DecryptElement(FindEncryptedData(doc2)[0], DecryptOptions{Key: k2}); err != nil {
		t.Fatalf("outer: %v", err)
	}
	if _, err := DecryptElement(FindEncryptedData(doc2)[0], DecryptOptions{Key: k1}); err != nil {
		t.Fatalf("inner: %v", err)
	}
	if el, _ := doc2.Root().Find("state/highscores/entry"); el == nil || el.AttrValue("score") != "9000" {
		t.Errorf("super-encryption round trip failed: %s", doc2.Root().String())
	}
}

func TestNamespaceSelfContainment(t *testing.T) {
	// The encrypted element uses a namespace declared on an ancestor;
	// decrypting into a different context must preserve it.
	doc := parseDoc(t, `<r xmlns:g="urn:game"><g:scores><g:entry v="1"/></g:scores></r>`)
	target := doc.Root().FirstChildElement("scores")
	k := key(32)
	if _, err := EncryptElement(target, EncryptOptions{Key: k}); err != nil {
		t.Fatal(err)
	}
	// Move the EncryptedData into a fresh document with no g binding.
	ed := FindEncryptedData(doc)[0]
	fresh := &xmldom.Document{}
	wrapper := xmldom.NewElement("other")
	fresh.SetRoot(wrapper)
	wrapper.AppendChild(ed)

	if _, err := DecryptAll(fresh, DecryptOptions{Key: k}); err != nil {
		t.Fatalf("decrypt in foreign context: %v", err)
	}
	scores := wrapper.FirstChildElement("scores")
	if scores == nil {
		t.Fatal("scores missing")
	}
	if got := scores.NamespaceURI(); got != "urn:game" {
		t.Errorf("namespace = %q, want urn:game", got)
	}
}

func TestOptionValidation(t *testing.T) {
	el := xmldom.NewElement("x")
	parent := xmldom.NewElement("p")
	parent.AppendChild(el)

	if _, err := EncryptElement(el, EncryptOptions{}); err == nil {
		t.Error("no key material accepted")
	}
	if _, err := EncryptElement(el, EncryptOptions{Key: key(5)}); err == nil {
		t.Error("wrong key size accepted")
	}
	if _, err := EncryptElement(el, EncryptOptions{Algorithm: "urn:bogus", Key: key(16)}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := EncryptElement(el, EncryptOptions{RecipientKey: &testRSAKey.PublicKey, KEK: key(16)}); err == nil {
		t.Error("both delivery mechanisms accepted")
	}
	if _, err := EncryptElement(el, EncryptOptions{KEK: key(5), Key: key(32)}); err == nil {
		t.Error("bad KEK size accepted")
	}
	root := xmldom.NewElement("root")
	if _, err := EncryptElement(root, EncryptOptions{Key: key(32)}); err == nil {
		t.Error("parentless element accepted")
	}
}

func TestDecryptValidation(t *testing.T) {
	doc := parseDoc(t, `<r><x/></r>`)
	x := doc.Root().FirstChildElement("x")
	if _, err := DecryptOctets(x, DecryptOptions{}); err == nil {
		t.Error("non-EncryptedData accepted")
	}
	// Missing key.
	doc2 := parseDoc(t, gameManifest)
	target, _ := doc2.Root().Find("state")
	if _, err := EncryptElement(target, EncryptOptions{Key: key(32)}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptAll(doc2, DecryptOptions{}); err == nil {
		t.Error("decrypt without key accepted")
	}
}

// Property: wrap/unwrap round-trips arbitrary multiples of 8 bytes.
func TestKeyWrapRoundTripProperty(t *testing.T) {
	f := func(seed uint8, blocks uint8) bool {
		n := 16 + int(blocks%6)*8
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(int(seed) + i*31)
		}
		kek := key(16)
		w, err := WrapKey(kek, data)
		if err != nil {
			return false
		}
		back, err := UnwrapKey(kek, w)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: CBC and GCM octet encryption round-trips arbitrary payloads.
func TestOctetRoundTripProperty(t *testing.T) {
	algs := []string{xmlsecuri.EncAES128CBC, xmlsecuri.EncAES256GCM}
	for _, alg := range algs {
		n, _ := KeySize(alg)
		k := key(n)
		f := func(data []byte) bool {
			ct, err := encryptOctets(alg, k, data)
			if err != nil {
				return false
			}
			pt, err := decryptOctets(alg, k, ct)
			return err == nil && bytes.Equal(pt, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	out := make([]byte, len(s)/2)
	for i := 0; i < len(out); i++ {
		hi := hexVal(s[2*i])
		lo := hexVal(s[2*i+1])
		if hi < 0 || lo < 0 {
			t.Fatalf("bad hex %q", s)
		}
		out[i] = byte(hi<<4 | lo)
	}
	return out
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func TestCipherReference(t *testing.T) {
	payload := []byte("transport stream payload kept outside the markup")
	k := key(32)
	doc, ciphertext, err := EncryptOctetsToReference(payload, "disc://CLIPS/clip-1.enc", EncryptOptions{Key: k, MimeType: "video/mp2t"})
	if err != nil {
		t.Fatal(err)
	}
	s := doc.Root().String()
	if strings.Contains(s, "CipherValue") {
		t.Error("CipherValue still present")
	}
	if !strings.Contains(s, "CipherReference") {
		t.Error("no CipherReference emitted")
	}
	if bytes.Contains(ciphertext, payload[:16]) {
		t.Error("external ciphertext contains plaintext")
	}

	store := map[string][]byte{"disc://CLIPS/clip-1.enc": ciphertext}
	doc2 := parseDoc(t, s)
	pt, err := DecryptOctets(doc2.Root(), DecryptOptions{
		Key: k,
		CipherResolver: func(uri string) ([]byte, error) {
			b, ok := store[uri]
			if !ok {
				return nil, errors.New("not found")
			}
			return b, nil
		},
	})
	if err != nil {
		t.Fatalf("decrypt via reference: %v", err)
	}
	if !bytes.Equal(pt, payload) {
		t.Error("round trip mismatch")
	}

	// Without a resolver the reference cannot be followed.
	if _, err := DecryptOctets(doc2.Root(), DecryptOptions{Key: k}); err == nil {
		t.Error("decrypted without a cipher resolver")
	}
	// Resolver failure surfaces.
	if _, err := DecryptOctets(doc2.Root(), DecryptOptions{
		Key:            k,
		CipherResolver: func(string) ([]byte, error) { return nil, errors.New("gone") },
	}); err == nil {
		t.Error("resolver failure swallowed")
	}
	// Corrupted external ciphertext fails authentication (GCM).
	bad := append([]byte(nil), ciphertext...)
	bad[len(bad)-1] ^= 1
	if _, err := DecryptOctets(doc2.Root(), DecryptOptions{
		Key:            k,
		CipherResolver: func(string) ([]byte, error) { return bad, nil },
	}); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("corrupted reference err = %v", err)
	}
}

func TestMultiRecipientEncryption(t *testing.T) {
	deviceA, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	deviceB, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}
	outsider, err := rsa.GenerateKey(rand.Reader, 2048)
	if err != nil {
		t.Fatal(err)
	}

	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	_, err = EncryptElement(target, EncryptOptions{
		Recipients: []Recipient{
			{Name: "device-A", Key: &deviceA.PublicKey},
			{Name: "device-B", Key: &deviceB.PublicKey},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	serialized := doc.Root().String()
	if got := strings.Count(serialized, "EncryptedKey"); got < 4 { // 2 open + 2 close tags
		t.Errorf("EncryptedKey occurrences = %d", got)
	}

	// Each addressed device decrypts.
	for name, key := range map[string]*rsa.PrivateKey{"A": deviceA, "B": deviceB} {
		rx := parseDoc(t, serialized)
		if _, err := DecryptAll(rx, DecryptOptions{RSAKey: key}); err != nil {
			t.Errorf("device %s decrypt: %v", name, err)
			continue
		}
		if el, _ := rx.Root().Find("state/highscores/entry"); el == nil {
			t.Errorf("device %s: content not restored", name)
		}
	}

	// An outsider cannot.
	rx := parseDoc(t, serialized)
	if _, err := DecryptAll(rx, DecryptOptions{RSAKey: outsider}); err == nil {
		t.Error("outsider decrypted multi-recipient data")
	}
}

func TestMultiRecipientValidation(t *testing.T) {
	el := xmldom.NewElement("x")
	xmldom.NewElement("p").AppendChild(el)
	if _, err := EncryptElement(el, EncryptOptions{Recipients: []Recipient{{Name: "n"}}}); err == nil {
		t.Error("recipient without key accepted")
	}
	if _, err := EncryptElement(el, EncryptOptions{
		Recipients: []Recipient{{Name: "n", Key: &testRSAKey.PublicKey}},
		KEK:        key(16),
	}); err == nil {
		t.Error("recipients + KEK accepted")
	}
}

func TestEncryptElementDetached(t *testing.T) {
	el := xmldom.NewElement("standalone")
	el.SetAttr("v", "secret")
	k := key(32)
	doc, err := EncryptElementDetached(el, EncryptOptions{Key: k})
	if err != nil {
		t.Fatal(err)
	}
	if !IsEncryptedData(doc.Root()) {
		t.Fatal("root is not EncryptedData")
	}
	// Graft into a host document and decrypt.
	host := parseDoc(t, `<host/>`)
	host.Root().AppendChild(doc.Root())
	if _, err := DecryptAll(host, DecryptOptions{Key: k}); err != nil {
		t.Fatal(err)
	}
	back := host.Root().FirstChildElement("standalone")
	if back == nil || back.AttrValue("v") != "secret" {
		t.Errorf("restored = %v", back)
	}
	if _, err := EncryptElementDetached(nil, EncryptOptions{Key: k}); err == nil {
		t.Error("nil element accepted")
	}
}

func TestDecryptKeyResolutionFallbacks(t *testing.T) {
	k := key(32)
	// KeyName without EncryptedKey resolves the CONTENT key by name.
	doc := parseDoc(t, gameManifest)
	target, _ := doc.Root().Find("state")
	if _, err := EncryptElement(target, EncryptOptions{Key: k, KeyName: "shared-content-key"}); err != nil {
		t.Fatal(err)
	}
	_, err := DecryptAll(doc, DecryptOptions{KeyByName: func(name string) ([]byte, error) {
		if name != "shared-content-key" {
			return nil, errors.New("unknown")
		}
		return k, nil
	}})
	if err != nil {
		t.Fatalf("KeyName content-key resolution: %v", err)
	}
	// With a KeyName but no resolver and no key: error.
	doc2 := parseDoc(t, gameManifest)
	target2, _ := doc2.Root().Find("state")
	if _, err := EncryptElement(target2, EncryptOptions{Key: k, KeyName: "n"}); err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptAll(doc2, DecryptOptions{}); err == nil {
		t.Error("no key material accepted")
	}
}
