// Package xmlenc implements XML Encryption Syntax and Processing (W3C
// Recommendation, 10 December 2002) plus the AES-GCM modes of XML
// Encryption 1.1: encryption of XML elements, element content, and
// arbitrary octet streams into EncryptedData structures, with symmetric
// keys delivered directly, by AES key wrap, or by RSA key transport in
// EncryptedKey structures.
//
// This is the Encryptor/Decryptor substrate of the paper's §6 and §8
// prototype: encrypting Application Manifests (XML targets, Fig. 8) and
// A/V track payloads (non-XML targets, Fig. 7).
package xmlenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha1"
	"crypto/subtle"
	"errors"
	"fmt"

	"discsec/internal/xmlsecuri"
)

// ErrUnsupportedAlgorithm is wrapped by errors reporting an algorithm
// identifier this implementation does not provide.
var ErrUnsupportedAlgorithm = errors.New("xmlenc: unsupported algorithm")

// ErrDecryptionFailed is wrapped by errors indicating ciphertext that
// cannot be decrypted (wrong key, corrupted data, bad padding).
var ErrDecryptionFailed = errors.New("xmlenc: decryption failed")

// KeySize returns the symmetric key length in bytes required by a block
// encryption or key wrap algorithm.
func KeySize(algorithm string) (int, error) {
	switch algorithm {
	case xmlsecuri.EncAES128CBC, xmlsecuri.EncAES128GCM, xmlsecuri.KeyWrapAES128:
		return 16, nil
	case xmlsecuri.EncAES192CBC, xmlsecuri.KeyWrapAES192:
		return 24, nil
	case xmlsecuri.EncAES256CBC, xmlsecuri.EncAES256GCM, xmlsecuri.KeyWrapAES256:
		return 32, nil
	default:
		return 0, fmt.Errorf("%w: %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

// GenerateKey produces a fresh random key of the size the algorithm
// requires.
func GenerateKey(algorithm string) ([]byte, error) {
	n, err := KeySize(algorithm)
	if err != nil {
		return nil, err
	}
	key := make([]byte, n)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	return key, nil
}

// encryptOctets applies the block encryption algorithm, producing the
// CipherValue payload (IV-prefixed, per XML-Enc).
func encryptOctets(algorithm string, key, plaintext []byte) ([]byte, error) {
	if err := checkKeyLen(algorithm, key); err != nil {
		return nil, err
	}
	switch algorithm {
	case xmlsecuri.EncAES128CBC, xmlsecuri.EncAES192CBC, xmlsecuri.EncAES256CBC:
		return encryptCBC(key, plaintext)
	case xmlsecuri.EncAES128GCM, xmlsecuri.EncAES256GCM:
		return encryptGCM(key, plaintext)
	default:
		return nil, fmt.Errorf("%w: block encryption %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

// decryptOctets reverses encryptOctets.
func decryptOctets(algorithm string, key, payload []byte) ([]byte, error) {
	if err := checkKeyLen(algorithm, key); err != nil {
		return nil, err
	}
	switch algorithm {
	case xmlsecuri.EncAES128CBC, xmlsecuri.EncAES192CBC, xmlsecuri.EncAES256CBC:
		return decryptCBC(key, payload)
	case xmlsecuri.EncAES128GCM, xmlsecuri.EncAES256GCM:
		return decryptGCM(key, payload)
	default:
		return nil, fmt.Errorf("%w: block encryption %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

func checkKeyLen(algorithm string, key []byte) error {
	want, err := KeySize(algorithm)
	if err != nil {
		return err
	}
	if len(key) != want {
		return fmt.Errorf("xmlenc: %s requires a %d-byte key, have %d", algorithm, want, len(key))
	}
	return nil
}

// encryptCBC implements the XML-Enc CBC construction: payload is
// IV || ciphertext, with the XML-Enc padding scheme (random filler, final
// byte carries the pad length).
func encryptCBC(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	bs := block.BlockSize()
	padLen := bs - len(plaintext)%bs
	padded := make([]byte, len(plaintext)+padLen)
	copy(padded, plaintext)
	if _, err := rand.Read(padded[len(plaintext) : len(plaintext)+padLen-1]); err != nil {
		return nil, err
	}
	padded[len(padded)-1] = byte(padLen)

	out := make([]byte, bs+len(padded))
	iv := out[:bs]
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	cipher.NewCBCEncrypter(block, iv).CryptBlocks(out[bs:], padded)
	return out, nil
}

func decryptCBC(key, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	bs := block.BlockSize()
	if len(payload) < 2*bs || len(payload)%bs != 0 {
		return nil, fmt.Errorf("%w: CBC payload length %d", ErrDecryptionFailed, len(payload))
	}
	iv, ct := payload[:bs], payload[bs:]
	pt := make([]byte, len(ct))
	cipher.NewCBCDecrypter(block, iv).CryptBlocks(pt, ct)
	padLen := int(pt[len(pt)-1])
	if padLen < 1 || padLen > bs || padLen > len(pt) {
		return nil, fmt.Errorf("%w: invalid CBC padding", ErrDecryptionFailed)
	}
	return pt[:len(pt)-padLen], nil
}

// encryptGCM implements the XML-Enc 1.1 GCM construction: payload is
// IV(12) || ciphertext || tag(16).
func encryptGCM(key, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	iv := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(iv); err != nil {
		return nil, err
	}
	return gcm.Seal(iv, iv, plaintext, nil), nil
}

func decryptGCM(key, payload []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(payload) < gcm.NonceSize()+gcm.Overhead() {
		return nil, fmt.Errorf("%w: GCM payload too short", ErrDecryptionFailed)
	}
	iv, ct := payload[:gcm.NonceSize()], payload[gcm.NonceSize():]
	pt, err := gcm.Open(nil, iv, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecryptionFailed, err)
	}
	return pt, nil
}

// rfc3394IV is the key wrap integrity check value.
var rfc3394IV = []byte{0xA6, 0xA6, 0xA6, 0xA6, 0xA6, 0xA6, 0xA6, 0xA6}

// WrapKey implements AES Key Wrap (RFC 3394) as required by the
// kw-aes128/192/256 algorithms.
func WrapKey(kek, key []byte) ([]byte, error) {
	if len(key) < 16 || len(key)%8 != 0 {
		return nil, fmt.Errorf("xmlenc: key wrap input must be >= 16 bytes and a multiple of 8, have %d", len(key))
	}
	block, err := aes.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	n := len(key) / 8
	a := make([]byte, 8)
	copy(a, rfc3394IV)
	r := make([]byte, len(key))
	copy(r, key)

	buf := make([]byte, 16)
	for j := 0; j < 6; j++ {
		for i := 1; i <= n; i++ {
			copy(buf[:8], a)
			copy(buf[8:], r[(i-1)*8:i*8])
			block.Encrypt(buf, buf)
			t := uint64(n*j + i)
			copy(a, buf[:8])
			for k := 0; k < 8; k++ {
				a[7-k] ^= byte(t >> (8 * k))
			}
			copy(r[(i-1)*8:i*8], buf[8:])
		}
	}
	return append(a, r...), nil
}

// UnwrapKey reverses WrapKey, validating the RFC 3394 integrity value.
func UnwrapKey(kek, wrapped []byte) ([]byte, error) {
	if len(wrapped) < 24 || len(wrapped)%8 != 0 {
		return nil, fmt.Errorf("%w: wrapped key length %d", ErrDecryptionFailed, len(wrapped))
	}
	block, err := aes.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	n := len(wrapped)/8 - 1
	a := make([]byte, 8)
	copy(a, wrapped[:8])
	r := make([]byte, n*8)
	copy(r, wrapped[8:])

	buf := make([]byte, 16)
	for j := 5; j >= 0; j-- {
		for i := n; i >= 1; i-- {
			t := uint64(n*j + i)
			copy(buf[:8], a)
			for k := 0; k < 8; k++ {
				buf[7-k] ^= byte(t >> (8 * k))
			}
			copy(buf[8:], r[(i-1)*8:i*8])
			block.Decrypt(buf, buf)
			copy(a, buf[:8])
			copy(r[(i-1)*8:i*8], buf[8:])
		}
	}
	if subtle.ConstantTimeCompare(a, rfc3394IV) != 1 {
		return nil, fmt.Errorf("%w: key wrap integrity check failed", ErrDecryptionFailed)
	}
	return r, nil
}

// transportKey encrypts a content-encryption key to the recipient's RSA
// public key per the key transport algorithm.
func transportKey(algorithm string, pub *rsa.PublicKey, key []byte) ([]byte, error) {
	switch algorithm {
	case xmlsecuri.KeyTransportRSA15:
		return rsa.EncryptPKCS1v15(rand.Reader, pub, key)
	case xmlsecuri.KeyTransportRSAOAEP:
		// rsa-oaep-mgf1p fixes SHA-1 as both the OAEP digest and the
		// MGF1 digest.
		return rsa.EncryptOAEP(sha1.New(), rand.Reader, pub, key, nil)
	default:
		return nil, fmt.Errorf("%w: key transport %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

// recoverTransportedKey reverses transportKey.
func recoverTransportedKey(algorithm string, priv *rsa.PrivateKey, ct []byte) ([]byte, error) {
	switch algorithm {
	case xmlsecuri.KeyTransportRSA15:
		pt, err := rsa.DecryptPKCS1v15(rand.Reader, priv, ct)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecryptionFailed, err)
		}
		return pt, nil
	case xmlsecuri.KeyTransportRSAOAEP:
		pt, err := rsa.DecryptOAEP(sha1.New(), rand.Reader, priv, ct, nil)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecryptionFailed, err)
		}
		return pt, nil
	default:
		return nil, fmt.Errorf("%w: key transport %q", ErrUnsupportedAlgorithm, algorithm)
	}
}

// wrapWithAlgorithm dispatches between AES key wrap algorithms.
func wrapWithAlgorithm(algorithm string, kek, key []byte) ([]byte, error) {
	if err := checkKeyLen(algorithm, kek); err != nil {
		return nil, err
	}
	return WrapKey(kek, key)
}

func unwrapWithAlgorithm(algorithm string, kek, wrapped []byte) ([]byte, error) {
	if err := checkKeyLen(algorithm, kek); err != nil {
		return nil, err
	}
	return UnwrapKey(kek, wrapped)
}
