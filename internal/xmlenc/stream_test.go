package xmlenc

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"discsec/internal/xmlsecuri"
)

// slowReader feeds one byte per Read so the streaming decrypter's
// chunk-assembly (io.ReadFull) is exercised across arbitrary split
// points.
type slowReader struct{ r io.Reader }

func (s slowReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return s.r.Read(p)
}

func testKey(n int) []byte {
	k := make([]byte, n)
	for i := range k {
		k[i] = byte(i*7 + 3)
	}
	return k
}

func testPlaintext(n int) []byte {
	pt := make([]byte, n)
	for i := range pt {
		pt[i] = byte(i * 31)
	}
	return pt
}

// TestDecryptOctetsToMatchesDecryptOctets: the streaming decrypter is
// byte-identical to the in-memory one for every algorithm and for
// sizes around every boundary (empty, sub-block, exact blocks, chunk
// edges, multi-chunk).
func TestDecryptOctetsToMatchesDecryptOctets(t *testing.T) {
	sizes := []int{0, 1, 15, 16, 17, 4096,
		decryptCBCChunk - 16, decryptCBCChunk, decryptCBCChunk + 16, 3*decryptCBCChunk + 5}
	algs := []struct {
		name string
		uri  string
		klen int
	}{
		{"aes128-cbc", xmlsecuri.EncAES128CBC, 16},
		{"aes256-cbc", xmlsecuri.EncAES256CBC, 32},
		{"aes128-gcm", xmlsecuri.EncAES128GCM, 16},
	}
	for _, alg := range algs {
		for _, n := range sizes {
			key := testKey(alg.klen)
			pt := testPlaintext(n)
			doc, err := EncryptOctets(pt, EncryptOptions{Algorithm: alg.uri, Key: key})
			if err != nil {
				t.Fatalf("%s/%d: encrypt: %v", alg.name, n, err)
			}
			want, err := DecryptOctets(doc.Root(), DecryptOptions{Key: key})
			if err != nil {
				t.Fatalf("%s/%d: DecryptOctets: %v", alg.name, n, err)
			}
			var got bytes.Buffer
			wrote, err := DecryptOctetsTo(&got, doc.Root(), DecryptOptions{Key: key})
			if err != nil {
				t.Fatalf("%s/%d: DecryptOctetsTo: %v", alg.name, n, err)
			}
			if wrote != int64(len(want)) || !bytes.Equal(got.Bytes(), want) {
				t.Errorf("%s/%d: streamed %d bytes, want %d identical bytes", alg.name, n, wrote, len(want))
			}
		}
	}
}

// TestDecryptOctetsToCipherReferenceStream: an external reference is
// pulled through CipherStreamResolver — never materialized via the
// byte-slice resolver — and survives adversarial read fragmentation.
func TestDecryptOctetsToCipherReferenceStream(t *testing.T) {
	key := testKey(16)
	pt := testPlaintext(decryptCBCChunk + 300)
	doc, payload, err := EncryptOctetsToReference(pt, "urn:clip:1", EncryptOptions{
		Algorithm: xmlsecuri.EncAES128CBC, Key: key,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	n, err := DecryptOctetsTo(&got, doc.Root(), DecryptOptions{
		Key: key,
		CipherStreamResolver: func(uri string) (io.ReadCloser, error) {
			if uri != "urn:clip:1" {
				t.Fatalf("resolver got uri %q", uri)
			}
			return io.NopCloser(slowReader{bytes.NewReader(payload)}), nil
		},
		CipherResolver: func(uri string) ([]byte, error) {
			t.Fatal("byte-slice resolver used despite stream resolver")
			return nil, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(pt)) || !bytes.Equal(got.Bytes(), pt) {
		t.Fatalf("streamed %d bytes, want %d", n, len(pt))
	}

	// Without a stream resolver the byte-slice resolver still works.
	got.Reset()
	if _, err := DecryptOctetsTo(&got, doc.Root(), DecryptOptions{
		Key:            key,
		CipherResolver: func(string) ([]byte, error) { return payload, nil },
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), pt) {
		t.Fatal("byte-slice fallback produced different plaintext")
	}
}

// TestDecryptOctetsToRejectsCorruption: truncation and bad padding
// fail with ErrDecryptionFailed, not silent short output.
func TestDecryptOctetsToRejectsCorruption(t *testing.T) {
	key := testKey(16)
	pt := testPlaintext(100)
	doc, payload, err := EncryptOctetsToReference(pt, "urn:clip:2", EncryptOptions{
		Algorithm: xmlsecuri.EncAES128CBC, Key: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	stream := func(b []byte) DecryptOptions {
		return DecryptOptions{Key: key, CipherStreamResolver: func(string) (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(b)), nil
		}}
	}

	// Non-block-multiple truncation.
	if _, err := DecryptOctetsTo(io.Discard, doc.Root(), stream(payload[:len(payload)-5])); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("truncated payload err = %v, want ErrDecryptionFailed", err)
	}
	// IV only, no ciphertext blocks.
	if _, err := DecryptOctetsTo(io.Discard, doc.Root(), stream(payload[:16])); !errors.Is(err, ErrDecryptionFailed) {
		t.Errorf("IV-only payload err = %v, want ErrDecryptionFailed", err)
	}
	// Corrupt final block: padding byte becomes garbage.
	bad := append([]byte(nil), payload...)
	bad[len(bad)-1] ^= 0xFF
	var out bytes.Buffer
	if _, err := DecryptOctetsTo(&out, doc.Root(), stream(bad)); err == nil {
		if out.Len() == len(pt) && bytes.Equal(out.Bytes(), pt) {
			t.Error("corrupt payload decrypted to the original plaintext")
		}
	}
}
