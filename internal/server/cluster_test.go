package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"discsec/internal/cluster"
	"discsec/internal/health"
	"discsec/internal/library"
)

func testOrigin() *cluster.Origin {
	return cluster.NewOrigin(library.New())
}

func testEdge() *cluster.Edge {
	return cluster.NewEdge("edge-0", "http://self.invalid", "http://origin.invalid")
}

// TestHealthzReportsClusterRole pins the fleet-orchestration contract:
// /healthz tells the tiers apart. Edge mode adopts the edge's own
// monitor (JSON body with a role field and the cluster component);
// origin mode without a monitor still reports the role in the legacy
// text body.
func TestHealthzReportsClusterRole(t *testing.T) {
	edgeCS := NewContentServer(WithClusterEdge(testEdge()))
	if got := edgeCS.ClusterRole(); got != cluster.RoleEdge {
		t.Fatalf("ClusterRole = %q, want %q", got, cluster.RoleEdge)
	}
	w := httptest.NewRecorder()
	edgeCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("edge healthz status = %d: %s", w.Code, w.Body.String())
	}
	var snap health.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("edge healthz is not the JSON snapshot: %v (%s)", err, w.Body.String())
	}
	if snap.Role != cluster.RoleEdge {
		t.Errorf("edge healthz role = %q, want %q", snap.Role, cluster.RoleEdge)
	}
	foundCluster := false
	for _, c := range snap.Components {
		if c.Name == health.ComponentCluster {
			foundCluster = true
		}
	}
	if !foundCluster {
		t.Errorf("edge healthz lacks the %s component: %+v", health.ComponentCluster, snap.Components)
	}

	originCS := NewContentServer(WithClusterOrigin(testOrigin()))
	if got := originCS.ClusterRole(); got != cluster.RoleOrigin {
		t.Fatalf("ClusterRole = %q, want %q", got, cluster.RoleOrigin)
	}
	w = httptest.NewRecorder()
	originCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("origin healthz status = %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "role origin\n") {
		t.Errorf("origin text healthz lacks the role line: %q", w.Body.String())
	}

	// Outside cluster modes nothing changes: no role line, no field.
	plainCS := NewContentServer()
	if got := plainCS.ClusterRole(); got != "" {
		t.Fatalf("plain ClusterRole = %q, want empty", got)
	}
	w = httptest.NewRecorder()
	plainCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if strings.Contains(w.Body.String(), "role ") {
		t.Errorf("plain healthz grew a role line: %q", w.Body.String())
	}
}

// TestClusterRouteDispatch pins that /cluster/* reaches the role
// handler through the ContentServer front door — before the GET/HEAD
// method restriction, which would otherwise reject the protocol's
// POSTs — and that the routes simply do not exist outside cluster
// modes.
func TestClusterRouteDispatch(t *testing.T) {
	originCS := NewContentServer(WithClusterOrigin(testOrigin()))
	w := httptest.NewRecorder()
	originCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, cluster.PathEpoch, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", cluster.PathEpoch, w.Code)
	}
	var ann cluster.EpochAnnounce
	if err := cluster.NewFrameReader(w.Body).Next(&ann); err != nil {
		t.Fatalf("epoch response is not a frame: %v", err)
	}

	// A protocol POST must pass the method gate.
	edgeCS := NewContentServer(WithClusterEdge(testEdge()))
	frame, err := cluster.EncodeFrame(cluster.EpochAnnounce{Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	edgeCS.ServeHTTP(w, httptest.NewRequest(http.MethodPost, cluster.PathEpoch, bytes.NewReader(frame)))
	if w.Code != http.StatusNoContent {
		t.Fatalf("POST %s = %d, want 204", cluster.PathEpoch, w.Code)
	}

	// Unknown cluster subroutes 404 inside the role handler.
	w = httptest.NewRecorder()
	originCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/cluster/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("GET /cluster/nope = %d, want 404", w.Code)
	}

	// Outside cluster modes the prefix is ordinary (absent) catalog
	// content.
	plainCS := NewContentServer()
	w = httptest.NewRecorder()
	plainCS.ServeHTTP(w, httptest.NewRequest(http.MethodGet, cluster.PathEpoch, nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("GET %s without a cluster role = %d, want 404", cluster.PathEpoch, w.Code)
	}
}
