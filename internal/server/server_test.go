package server

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"discsec/internal/disc"
)

func TestPublishAndFetch(t *testing.T) {
	cs := NewContentServer()
	cs.PublishDocument("apps/bonus.xml", []byte("<cluster/>"))
	cs.PublishResource("clips/extra.m2ts", []byte{1, 2, 3}, "video/mp2t")

	srv := httptest.NewServer(cs)
	defer srv.Close()

	d := &Downloader{}
	doc, err := d.Fetch(srv.URL, "apps/bonus.xml")
	if err != nil || string(doc) != "<cluster/>" {
		t.Fatalf("fetch doc = %q, %v", doc, err)
	}
	clip, err := d.Fetch(srv.URL, "/clips/extra.m2ts")
	if err != nil || !bytes.Equal(clip, []byte{1, 2, 3}) {
		t.Fatalf("fetch clip = %v, %v", clip, err)
	}
	if _, err := d.Fetch(srv.URL, "missing"); err == nil {
		t.Error("missing item fetched")
	}
	if cs.Downloads() != 2 {
		t.Errorf("downloads = %d", cs.Downloads())
	}
}

func TestCatalogEndpoint(t *testing.T) {
	cs := NewContentServer()
	cs.PublishDocument("b.xml", nil)
	cs.PublishDocument("a.xml", nil)
	srv := httptest.NewServer(cs)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if got := buf.String(); got != "a.xml\nb.xml\n" {
		t.Errorf("catalog = %q", got)
	}

	names := cs.Catalog()
	if len(names) != 2 || names[0] != "a.xml" {
		t.Errorf("Catalog() = %v", names)
	}
}

func TestMethodRestriction(t *testing.T) {
	cs := NewContentServer()
	srv := httptest.NewServer(cs)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/x", "text/plain", strings.NewReader("nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestImageRoundTripOverHTTP(t *testing.T) {
	im := disc.NewImage()
	im.Put("INDEX/cluster.xml", []byte(`<cluster xmlns="urn:discsec:cluster"/>`))
	im.Put("CLIPS/c.m2ts", disc.GenerateClip(disc.ClipSpec{DurationMS: 50, BitrateKbps: 1000, Seed: 9}))

	cs := NewContentServer()
	cs.PublishImage("discs/feature.img", im)
	srv := httptest.NewServer(cs)
	defer srv.Close()

	d := &Downloader{}
	back, err := d.FetchImage(srv.URL, "discs/feature.img")
	if err != nil {
		t.Fatalf("fetch image: %v", err)
	}
	if len(back.Paths()) != 2 {
		t.Errorf("paths = %v", back.Paths())
	}
	orig, _ := im.Get("CLIPS/c.m2ts")
	got, _ := back.Get("CLIPS/c.m2ts")
	if !bytes.Equal(orig, got) {
		t.Error("clip corrupted over HTTP")
	}
}

func TestDownloadSizeLimit(t *testing.T) {
	cs := NewContentServer()
	cs.PublishResource("big.bin", bytes.Repeat([]byte{7}, 1000), "application/octet-stream")
	srv := httptest.NewServer(cs)
	defer srv.Close()

	d := &Downloader{MaxBytes: 100}
	if _, err := d.Fetch(srv.URL, "big.bin"); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestUnpublish(t *testing.T) {
	cs := NewContentServer()
	cs.PublishDocument("x", nil)
	if !cs.Unpublish("x") || cs.Unpublish("x") {
		t.Error("Unpublish semantics wrong")
	}
}

func TestServeListener(t *testing.T) {
	cs := NewContentServer()
	cs.PublishDocument("doc.xml", []byte("<d/>"))
	base, shutdown, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	d := &Downloader{}
	b, err := d.Fetch(base, "doc.xml")
	if err != nil || string(b) != "<d/>" {
		t.Errorf("fetch via Serve = %q, %v", b, err)
	}
}
