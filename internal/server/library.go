package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"discsec/internal/library"
	"discsec/internal/resilience"
)

// WithLibrary attaches a shared verification library and enables the
// /library/ routes: the server then serves *verified* tracks from
// mounted discs — every response body passed the full Fig. 9 pipeline,
// amortized through the library's cache — with cache-status headers so
// operators can see hit rates per response.
func WithLibrary(lib *library.Library) Option {
	return func(cs *ContentServer) { cs.library = lib }
}

// Library response headers.
const (
	// HeaderLibraryCache reports how the verdict was served:
	// hit | miss | singleflight-wait | bypass.
	HeaderLibraryCache = "X-Library-Cache"
	// HeaderLibrarySigner carries the verified signer-key fingerprint.
	HeaderLibrarySigner = "X-Library-Signer"
	// HeaderLibraryDegraded is "true" when the verdict was filled under
	// degraded trust (stale revocation data; see SECURITY.md).
	HeaderLibraryDegraded = "X-Library-Degraded"
)

// serveLibrary handles GET/HEAD under /library/:
//
//	/library/                  -> mounted disc names (text)
//	/library/<disc>            -> verified track listing (text)
//	/library/<disc>/<track>    -> the verified track XML
//
// Verification failures map to 502: the server fails closed rather
// than serve content it can no longer vouch for.
func (cs *ContentServer) serveLibrary(w http.ResponseWriter, r *http.Request, rest string) {
	if cs.library == nil {
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
		return
	}
	rest = strings.Trim(rest, "/")
	if rest == "" {
		w.Header().Set("Content-Type", "text/plain")
		for _, n := range cs.library.Mounts() {
			fmt.Fprintln(w, n)
		}
		return
	}
	discName, trackID, hasTrack := strings.Cut(rest, "/")
	if !hasTrack {
		v, status, err := cs.library.OpenDisc(r.Context(), discName)
		if err != nil {
			cs.libraryError(w, r, err)
			return
		}
		cs.libraryHeaders(w, v, status)
		w.Header().Set("Content-Type", "text/plain")
		for _, tr := range v.Cluster.Tracks {
			fmt.Fprintf(w, "%s %s\n", tr.ID, tr.Kind)
		}
		return
	}

	body, v, status, err := cs.library.TrackXML(r.Context(), discName, trackID)
	if err != nil {
		cs.libraryError(w, r, err)
		return
	}
	cs.libraryHeaders(w, v, status)
	w.Header().Set("Content-Type", "application/xml")
	// The canonical digest is a strong content-addressed validator.
	w.Header().Set("ETag", `"`+v.Key+`"`)
	if r.Method == http.MethodGet {
		cs.download.Add(1)
	}
	http.ServeContent(w, r, "", time.Time{}, bytes.NewReader(body))
}

func (cs *ContentServer) libraryHeaders(w http.ResponseWriter, v *library.Verdict, status library.Status) {
	w.Header().Set(HeaderLibraryCache, string(status))
	if v.Fingerprint != "" {
		w.Header().Set(HeaderLibrarySigner, v.Fingerprint)
	}
	if v.Degraded {
		w.Header().Set(HeaderLibraryDegraded, "true")
	}
}

// libraryError maps library failures onto HTTP: unknown names are 404,
// client cancellation is the client's problem, and anything touching
// verification is 502 — the route never falls back to unverified bytes.
func (cs *ContentServer) libraryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, library.ErrNotMounted), errors.Is(err, library.ErrNoTrack):
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
	case errors.Is(err, library.ErrDependencyDown), errors.Is(err, resilience.ErrCircuitOpen):
		// A dependency the fill needs is down: 503 + Retry-After so
		// well-behaved clients back off until the breaker recovers,
		// rather than 502 (nothing is wrong with the content itself).
		cs.recorder.Inc("http.library.dependency_down")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "library dependency down; cold fill refused", http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		cs.recorder.Inc("http.library.canceled")
		http.Error(w, "request canceled", http.StatusServiceUnavailable)
	default:
		cs.recorder.Inc("http.library.failclosed")
		http.Error(w, "library verification failed", http.StatusBadGateway)
	}
}
