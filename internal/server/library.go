package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"discsec/internal/library"
	"discsec/internal/resilience"
)

// WithLibrary attaches a shared verification library and enables the
// /library/ routes: the server then serves *verified* tracks from
// mounted discs — every response body passed the full Fig. 9 pipeline,
// amortized through the library's cache — with cache-status headers so
// operators can see hit rates per response.
func WithLibrary(lib *library.Library) Option {
	return func(cs *ContentServer) { cs.library = lib }
}

// Library response headers.
const (
	// HeaderLibraryCache reports how the verdict was served:
	// hit | miss | singleflight-wait | bypass.
	HeaderLibraryCache = "X-Library-Cache"
	// HeaderLibrarySigner carries the verified signer-key fingerprint.
	HeaderLibrarySigner = "X-Library-Signer"
	// HeaderLibraryDegraded is "true" when the verdict was filled under
	// degraded trust (stale revocation data; see SECURITY.md).
	HeaderLibraryDegraded = "X-Library-Degraded"
)

// serveLibrary handles GET/HEAD under /library/:
//
//	/library/                  -> mounted disc names (text)
//	/library/<disc>            -> verified track listing (text)
//	/library/<disc>/<track>    -> the verified track XML
//
// Verification failures map to 502: the server fails closed rather
// than serve content it can no longer vouch for.
func (cs *ContentServer) serveLibrary(w http.ResponseWriter, r *http.Request, rest string) {
	if cs.library == nil {
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
		return
	}
	rest = strings.Trim(rest, "/")
	if rest == "" {
		w.Header().Set("Content-Type", "text/plain")
		for _, n := range cs.library.Mounts() {
			fmt.Fprintln(w, n)
		}
		return
	}
	discName, trackID, hasTrack := strings.Cut(rest, "/")
	if !hasTrack {
		v, status, err := cs.library.OpenDisc(r.Context(), discName)
		if err != nil {
			cs.libraryError(w, r, err)
			return
		}
		cs.libraryHeaders(w, v, status)
		w.Header().Set("Content-Type", "text/plain")
		for _, tr := range v.Cluster.Tracks {
			fmt.Fprintf(w, "%s %s\n", tr.ID, tr.Kind)
		}
		return
	}

	body, v, status, err := cs.library.TrackXML(r.Context(), discName, trackID)
	if err != nil {
		cs.libraryError(w, r, err)
		return
	}
	cs.libraryHeaders(w, v, status)
	w.Header().Set("Content-Type", "application/xml")
	// The canonical digest is a strong content-addressed validator.
	w.Header().Set("ETag", `"`+v.Key+`"`)
	if r.Method == http.MethodGet {
		cs.download.Add(1)
	}
	http.ServeContent(w, r, "", time.Time{}, bytes.NewReader(body))
}

// verifyMaxBytes bounds a POST /verify request body; past it the read
// fails and the route answers 413 instead of buffering without limit.
const verifyMaxBytes = 64 << 20

// verifyResponse is the JSON body of a successful POST /verify.
type verifyResponse struct {
	// Key is the exclusive-C14N digest the verdict is cached under.
	Key string `json:"key"`
	// Cache reports how the verdict was served (hit, miss, ...).
	Cache string `json:"cache"`
	// Signer is the verified signer-key fingerprint, if signed.
	Signer string `json:"signer,omitempty"`
	// Signatures counts validated signatures.
	Signatures int `json:"signatures"`
	// Degraded is true when the verdict was filled under degraded trust.
	Degraded bool `json:"degraded,omitempty"`
}

// serveVerify handles POST /verify: the request body is streamed
// straight into the verification library — tokenizer, canonicalizer,
// and digest run as the bytes arrive, never buffering the whole
// document — and the verdict comes back as JSON with the usual
// X-Library-* headers. Malformed documents are the client's fault
// (400); a trust invalidation racing the one-shot body is answered
// 503 + Retry-After so the client simply re-POSTs.
func (cs *ContentServer) serveVerify(w http.ResponseWriter, r *http.Request) {
	if cs.library == nil {
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
		return
	}
	body := http.MaxBytesReader(w, r.Body, verifyMaxBytes)
	v, status, err := cs.library.OpenReader(r.Context(), body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			cs.recorder.Inc("http.library.toolarge")
			http.Error(w, "document exceeds verification size limit", http.StatusRequestEntityTooLarge)
			return
		}
		cs.libraryError(w, r, err)
		return
	}
	cs.libraryHeaders(w, v, status)
	w.Header().Set("Content-Type", "application/json")
	resp := verifyResponse{
		Key:        v.Key,
		Cache:      string(status),
		Signer:     v.Fingerprint,
		Signatures: len(v.Result.Signatures),
		Degraded:   v.Degraded,
	}
	json.NewEncoder(w).Encode(resp) //nolint:errcheck // best-effort body; verdict already served via headers
}

func (cs *ContentServer) libraryHeaders(w http.ResponseWriter, v *library.Verdict, status library.Status) {
	w.Header().Set(HeaderLibraryCache, string(status))
	if v.Fingerprint != "" {
		w.Header().Set(HeaderLibrarySigner, v.Fingerprint)
	}
	if v.Degraded {
		w.Header().Set(HeaderLibraryDegraded, "true")
	}
}

// libraryError maps library failures onto HTTP: unknown names are 404,
// client cancellation is the client's problem, and anything touching
// verification is 502 — the route never falls back to unverified bytes.
func (cs *ContentServer) libraryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, library.ErrNotMounted), errors.Is(err, library.ErrNoTrack):
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
	case errors.Is(err, library.ErrBadDocument):
		// The tokenizer rejected the input itself (malformed XML,
		// DOCTYPE, depth/token limits): a client error, not a
		// verification failure.
		cs.recorder.Inc("http.library.baddocument")
		http.Error(w, "malformed document", http.StatusBadRequest)
	case errors.Is(err, library.ErrTrustChanged):
		// A trust invalidation raced a one-shot reader fill; the input
		// cannot be replayed server-side, but the client can re-POST.
		cs.recorder.Inc("http.library.trustchanged")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "trust changed during verification; retry", http.StatusServiceUnavailable)
	case errors.Is(err, library.ErrDependencyDown), errors.Is(err, resilience.ErrCircuitOpen):
		// A dependency the fill needs is down: 503 + Retry-After so
		// well-behaved clients back off until the breaker recovers,
		// rather than 502 (nothing is wrong with the content itself).
		cs.recorder.Inc("http.library.dependency_down")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "library dependency down; cold fill refused", http.StatusServiceUnavailable)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		cs.recorder.Inc("http.library.canceled")
		http.Error(w, "request canceled", http.StatusServiceUnavailable)
	default:
		cs.recorder.Inc("http.library.failclosed")
		http.Error(w, "library verification failed", http.StatusBadGateway)
	}
}
