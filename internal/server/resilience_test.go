package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discsec/internal/faults"
	"discsec/internal/resilience"
)

func fastRetry() *resilience.Policy {
	return &resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

var bigPayload = bytes.Repeat([]byte("interactive-application-bytes."), 100) // 3000 bytes

func publishAndServe(t *testing.T, name string, data []byte) (*ContentServer, *httptest.Server) {
	t.Helper()
	cs := NewContentServer()
	cs.PublishResource(name, data, "application/octet-stream")
	srv := httptest.NewServer(cs)
	t.Cleanup(srv.Close)
	return cs, srv
}

func TestErrTooLargeExactBoundary(t *testing.T) {
	_, srv := publishAndServe(t, "app.bin", bigPayload)

	exact := &Downloader{MaxBytes: int64(len(bigPayload)), Retry: fastRetry()}
	got, err := exact.Fetch(srv.URL, "app.bin")
	if err != nil {
		t.Fatalf("payload == MaxBytes must succeed, got %v", err)
	}
	if !bytes.Equal(got, bigPayload) {
		t.Error("boundary fetch corrupted payload")
	}

	under := &Downloader{MaxBytes: int64(len(bigPayload)) - 1, Retry: fastRetry()}
	if _, err := under.Fetch(srv.URL, "app.bin"); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxBytes+1 payload: err = %v, want ErrTooLarge", err)
	}
	if !resilience.IsTerminal(err2(under.Fetch(srv.URL, "app.bin"))) {
		t.Error("ErrTooLarge must be terminal (no retry can shrink the payload)")
	}
}

func err2[T any](_ T, err error) error { return err }

func TestFetchNotFoundTyped(t *testing.T) {
	_, srv := publishAndServe(t, "exists.bin", []byte("x"))
	d := &Downloader{Retry: fastRetry()}
	_, err := d.Fetch(srv.URL, "missing.bin")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if !resilience.IsTerminal(err) {
		t.Error("404 must be terminal")
	}
}

func TestFetchErrorIncludesBodySnippet(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "license server rejected region code", http.StatusForbidden)
	}))
	defer srv.Close()
	d := &Downloader{Retry: fastRetry()}
	_, err := d.Fetch(srv.URL, "app.xml")
	if err == nil || !strings.Contains(err.Error(), "license server rejected region code") {
		t.Errorf("error lacks body snippet: %v", err)
	}
	if !resilience.IsTerminal(err) {
		t.Errorf("403 must be terminal: %v", err)
	}
}

func TestFetchErrorBodySnippetBounded(t *testing.T) {
	long := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, long, http.StatusBadRequest)
	}))
	defer srv.Close()
	d := &Downloader{Retry: fastRetry()}
	_, err := d.Fetch(srv.URL, "app.xml")
	if err == nil || len(err.Error()) > 1024 {
		t.Errorf("snippet unbounded: %d bytes", len(err.Error()))
	}
}

func TestFetchRecovers5xxBurst(t *testing.T) {
	_, srv := publishAndServe(t, "app.bin", bigPayload)
	var attempts atomic.Int64
	d := &Downloader{
		Retry: fastRetry(),
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &countingTransport{
			count: &attempts,
			inner: &faults.Transport{Schedule: faults.NewSchedule(
				faults.Fault{Kind: faults.Status, Code: 503},
				faults.Fault{Kind: faults.Status, Code: 502},
			)},
		}},
	}
	got, err := d.FetchContext(context.Background(), srv.URL, "app.bin")
	if err != nil {
		t.Fatalf("burst not recovered: %v", err)
	}
	if !bytes.Equal(got, bigPayload) {
		t.Error("payload corrupted")
	}
	if attempts.Load() != 3 {
		t.Errorf("attempts = %d, want 3", attempts.Load())
	}
}

type countingTransport struct {
	count *atomic.Int64
	inner http.RoundTripper
}

func (c *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	c.count.Add(1)
	return c.inner.RoundTrip(r)
}

func TestFetchHonorsRetryAfter(t *testing.T) {
	_, srv := publishAndServe(t, "app.bin", bigPayload)
	ctx, cancel := context.WithCancel(context.Background())
	var floor time.Duration
	policy := fastRetry()
	policy.OnRetry = func(attempt int, err error, backoff time.Duration) {
		floor = backoff
		cancel() // observed; no need to actually wait out the server's ask
	}
	d := &Downloader{
		Retry: policy,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{
			Schedule: faults.NewSchedule(faults.Fault{Kind: faults.Status, Code: 503, RetryAfter: 7 * time.Second}),
		}},
	}
	_, err := d.FetchContext(ctx, srv.URL, "app.bin")
	if floor < 7*time.Second {
		t.Errorf("backoff %v ignores Retry-After: 7", floor)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}

func TestFetchResumesTruncatedTransfer(t *testing.T) {
	cs := NewContentServer()
	cs.PublishResource("movie.bin", bigPayload, "application/octet-stream")
	var ranges []string
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ranges = append(ranges, r.Header.Get("Range"))
		mu.Unlock()
		cs.ServeHTTP(w, r)
	}))
	defer srv.Close()

	d := &Downloader{
		Retry: fastRetry(),
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{
			Schedule: faults.NewSchedule(faults.Fault{Kind: faults.Truncate, Bytes: 1200}),
		}},
	}
	got, err := d.FetchContext(context.Background(), srv.URL, "movie.bin")
	if err != nil {
		t.Fatalf("truncated transfer not recovered: %v", err)
	}
	if !bytes.Equal(got, bigPayload) {
		t.Fatal("resumed payload corrupted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ranges) != 2 || ranges[0] != "" || ranges[1] != "bytes=1200-" {
		t.Errorf("expected a resume from byte 1200, got ranges %q", ranges)
	}
}

func TestFetchResumeReverifyCatchesSplicedTail(t *testing.T) {
	correct := bigPayload
	sum := sha256.Sum256(correct)
	etag := `"` + hex.EncodeToString(sum[:]) + `"`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", etag)
		w.Header().Set("Accept-Ranges", "bytes")
		if r.Header.Get("Range") == "" {
			w.Header().Set("Content-Length", fmt.Sprint(len(correct)))
			w.Write(correct)
			return
		}
		// A lying origin: the resumed tail is different content under
		// the same validator.
		tail := bytes.Repeat([]byte("!"), len(correct)-1200)
		w.Header().Set("Content-Range", fmt.Sprintf("bytes 1200-%d/%d", len(correct)-1, len(correct)))
		w.Header().Set("Content-Length", fmt.Sprint(len(tail)))
		w.WriteHeader(http.StatusPartialContent)
		w.Write(tail)
	}))
	defer srv.Close()

	var sawReverifyFailure bool
	policy := fastRetry()
	policy.OnRetry = func(attempt int, err error, backoff time.Duration) {
		if errors.Is(err, ErrResumeVerify) {
			sawReverifyFailure = true
		}
	}
	d := &Downloader{
		Retry: policy,
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{
			Schedule: faults.NewSchedule(faults.Fault{Kind: faults.Truncate, Bytes: 1200}),
		}},
	}
	got, err := d.FetchContext(context.Background(), srv.URL, "movie.bin")
	if err != nil {
		t.Fatalf("fetch failed: %v", err)
	}
	if !bytes.Equal(got, correct) {
		t.Fatal("spliced bytes were returned to the caller")
	}
	if !sawReverifyFailure {
		t.Error("re-verification never rejected the spliced tail")
	}
}

func TestFetchContextCancelMidRetry(t *testing.T) {
	_, srv := publishAndServe(t, "app.bin", bigPayload)
	d := &Downloader{
		Retry: &resilience.Policy{MaxAttempts: 10, BaseDelay: 200 * time.Millisecond, MaxDelay: time.Second},
		HTTPClient: &http.Client{Timeout: 5 * time.Second, Transport: &faults.Transport{
			Schedule: faults.NewSchedule(
				faults.Fault{Kind: faults.Reset}, faults.Fault{Kind: faults.Reset},
				faults.Fault{Kind: faults.Reset}, faults.Fault{Kind: faults.Reset},
				faults.Fault{Kind: faults.Reset}, faults.Fault{Kind: faults.Reset},
			),
		}},
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := d.FetchContext(ctx, srv.URL, "app.bin")
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation ignored for %v", elapsed)
	}
}

func TestHeadAndRangeSupport(t *testing.T) {
	_, srv := publishAndServe(t, "clip.bin", bigPayload)

	resp, err := http.DefaultClient.Head(srv.URL + "/clip.bin")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") == "" {
		t.Errorf("HEAD: status %d, ETag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	if resp.ContentLength != int64(len(bigPayload)) {
		t.Errorf("HEAD Content-Length = %d", resp.ContentLength)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/clip.bin", nil)
	req.Header.Set("Range", "bytes=10-19")
	rresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusPartialContent {
		t.Fatalf("Range status = %d", rresp.StatusCode)
	}
	b, _ := io.ReadAll(rresp.Body)
	if !bytes.Equal(b, bigPayload[10:20]) {
		t.Errorf("range body = %q", b)
	}
}

// blockingWriter lets a test hold one request in flight
// deterministically: the handler's first Write parks until released.
type blockingWriter struct {
	header  http.Header
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingWriter() *blockingWriter {
	return &blockingWriter{header: make(http.Header), started: make(chan struct{}), release: make(chan struct{})}
}

func (w *blockingWriter) Header() http.Header { return w.header }
func (w *blockingWriter) WriteHeader(int)     {}
func (w *blockingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.release
	return len(p), nil
}

func TestInFlightLimitShedsWithRetryAfter(t *testing.T) {
	cs := NewContentServer(WithMaxInFlight(1), WithRetryAfter(3*time.Second))
	cs.PublishResource("big.bin", bigPayload, "application/octet-stream")

	bw := newBlockingWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cs.ServeHTTP(bw, httptest.NewRequest(http.MethodGet, "/big.bin", nil))
	}()
	<-bw.started

	rec := httptest.NewRecorder()
	cs.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/big.bin", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("second request status = %d, want 503", rec.Code)
	}
	if got := rec.Result().Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
	if cs.Shed() != 1 {
		t.Errorf("Shed() = %d", cs.Shed())
	}

	close(bw.release)
	<-done
	rec2 := httptest.NewRecorder()
	cs.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/big.bin", nil))
	if rec2.Code != http.StatusOK {
		t.Errorf("after release status = %d", rec2.Code)
	}
}

func TestDownloaderRetriesShedServer(t *testing.T) {
	// A shed 503 + Retry-After is transient: the Downloader backs off
	// and the next attempt succeeds once capacity frees up.
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "content server over capacity", http.StatusServiceUnavailable)
			return
		}
		w.Write(bigPayload)
	}))
	defer srv.Close()
	d := &Downloader{Retry: fastRetry()}
	got, err := d.FetchContext(context.Background(), srv.URL, "big.bin")
	if err != nil || !bytes.Equal(got, bigPayload) {
		t.Fatalf("fetch after shed = %d bytes, %v", len(got), err)
	}
}

func TestGracefulShutdown(t *testing.T) {
	cs := NewContentServer(WithShutdownTimeout(2 * time.Second))
	cs.PublishDocument("doc.xml", []byte("<d/>"))
	base, shutdown, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	d := &Downloader{Retry: fastRetry()}
	if _, err := d.Fetch(base, "doc.xml"); err != nil {
		t.Fatalf("pre-shutdown fetch: %v", err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := d.Fetch(base, "doc.xml"); err == nil {
		t.Error("fetch succeeded after shutdown")
	}
}

func TestConcurrentPublishUnpublishFetch(t *testing.T) {
	cs := NewContentServer()
	cs.PublishResource("stable.bin", bigPayload, "application/octet-stream")
	srv := httptest.NewServer(cs)
	defer srv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(3)
		go func(g int) { // publishers/unpublishers churn the catalog
			defer wg.Done()
			name := fmt.Sprintf("churn-%d.bin", g)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cs.PublishResource(name, []byte{byte(i)}, "application/octet-stream")
				cs.Unpublish(name)
			}
		}(g)
		go func() { // fetchers hammer the stable entry
			defer wg.Done()
			d := &Downloader{Retry: fastRetry()}
			for {
				select {
				case <-stop:
					return
				default:
				}
				b, err := d.Fetch(srv.URL, "stable.bin")
				if err != nil || !bytes.Equal(b, bigPayload) {
					t.Errorf("concurrent fetch = %d bytes, %v", len(b), err)
					return
				}
			}
		}()
		go func() { // readers poll the counters and catalog
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cs.Catalog()
				cs.Downloads()
				cs.Shed()
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if cs.Downloads() == 0 {
		t.Error("no downloads recorded under concurrency")
	}
}
