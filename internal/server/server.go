// Package server implements the content-server half of the paper's §1
// and §5.1 usage model: movie companies and independent vendors host
// packaged interactive applications (bonus materials, clips, application
// extensions) that connected players download over broadband and
// authenticate before execution. Downloads are served over HTTP or TLS
// (the paper's §7 notes SSL/TLS for transport secrecy; content trust
// still comes from the XML signatures inside).
package server

import (
	"crypto/tls"
	"crypto/x509"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"discsec/internal/disc"
)

// ContentServer hosts packaged applications and disc images.
type ContentServer struct {
	mu       sync.RWMutex
	catalog  map[string]*entry
	download int64
}

type entry struct {
	data        []byte
	contentType string
}

// NewContentServer creates an empty server.
func NewContentServer() *ContentServer {
	return &ContentServer{catalog: make(map[string]*entry)}
}

// PublishDocument hosts a protected cluster/manifest document under the
// given name.
func (cs *ContentServer) PublishDocument(name string, doc []byte) {
	cs.publish(name, doc, "application/xml")
}

// PublishImage hosts a packed disc image under the given name.
func (cs *ContentServer) PublishImage(name string, im *disc.Image) {
	cs.publish(name, im.Bytes(), "application/octet-stream")
}

// PublishResource hosts an arbitrary resource (bonus clip, extension).
func (cs *ContentServer) PublishResource(name string, data []byte, contentType string) {
	cs.publish(name, data, contentType)
}

func (cs *ContentServer) publish(name string, data []byte, ct string) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.catalog[strings.TrimPrefix(name, "/")] = &entry{data: append([]byte(nil), data...), contentType: ct}
}

// Unpublish removes an item, reporting whether it existed.
func (cs *ContentServer) Unpublish(name string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	name = strings.TrimPrefix(name, "/")
	_, ok := cs.catalog[name]
	delete(cs.catalog, name)
	return ok
}

// Catalog lists published names, sorted.
func (cs *ContentServer) Catalog() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.catalog))
	for n := range cs.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Downloads reports the number of served downloads.
func (cs *ContentServer) Downloads() int64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.download
}

// ServeHTTP implements http.Handler: GET /<name> returns the published
// item; GET /catalog returns a text listing.
func (cs *ContentServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "content server accepts GET only", http.StatusMethodNotAllowed)
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "catalog" {
		w.Header().Set("Content-Type", "text/plain")
		for _, n := range cs.Catalog() {
			fmt.Fprintln(w, n)
		}
		return
	}
	cs.mu.Lock()
	e, ok := cs.catalog[name]
	if ok {
		cs.download++
	}
	cs.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Write(e.data)
}

// Serve starts the server on the given address, returning its base URL
// and a shutdown function.
func (cs *ContentServer) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: cs, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // shutdown path returns ErrServerClosed
	return "http://" + ln.Addr().String(), srv.Close, nil
}

// ServeTLS starts the server over TLS with the given certificate (the
// paper's §7: "SSL/TLS mechanisms could be used for mutual
// authentication and secrecy between server and the player"). Content
// trust still comes from the XML signatures inside the payloads.
func (cs *ContentServer) ServeTLS(addr string, cert tls.Certificate) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           cs,
		ReadHeaderTimeout: 5 * time.Second,
		TLSConfig:         &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12},
	}
	tlsLn := tls.NewListener(ln, srv.TLSConfig)
	go srv.Serve(tlsLn) //nolint:errcheck // shutdown path returns ErrServerClosed
	return "https://" + ln.Addr().String(), srv.Close, nil
}

// NewTLSDownloader builds a Downloader whose client trusts the given
// root pool for server authentication.
func NewTLSDownloader(roots *x509.CertPool) *Downloader {
	return &Downloader{HTTPClient: &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12},
		},
	}}
}

// Downloader fetches published content for the player.
type Downloader struct {
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// MaxBytes bounds a download; 0 means 64 MiB.
	MaxBytes int64
}

// ErrTooLarge indicates the download exceeded MaxBytes.
var ErrTooLarge = errors.New("server: download exceeds size limit")

func (d *Downloader) client() *http.Client {
	if d.HTTPClient != nil {
		return d.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// Fetch downloads a named item from the base URL.
func (d *Downloader) Fetch(baseURL, name string) ([]byte, error) {
	limit := d.MaxBytes
	if limit <= 0 {
		limit = 64 << 20
	}
	url := strings.TrimSuffix(baseURL, "/") + "/" + strings.TrimPrefix(name, "/")
	resp, err := d.client().Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, ErrTooLarge
	}
	return body, nil
}

// FetchImage downloads and unpacks a disc image.
func (d *Downloader) FetchImage(baseURL, name string) (*disc.Image, error) {
	b, err := d.Fetch(baseURL, name)
	if err != nil {
		return nil, err
	}
	return disc.ReadImageBytes(b)
}
