// Package server implements the content-server half of the paper's §1
// and §5.1 usage model: movie companies and independent vendors host
// packaged interactive applications (bonus materials, clips, application
// extensions) that connected players download over broadband and
// authenticate before execution. Downloads are served over HTTP or TLS
// (the paper's §7 notes SSL/TLS for transport secrecy; content trust
// still comes from the XML signatures inside).
//
// Both halves are built for unreliable consumer links: the server
// supports HEAD and Range requests (resume), sheds load with
// 503 + Retry-After past its in-flight limit, and shuts down
// gracefully; the Downloader retries transient failures with
// exponential backoff, honors Retry-After, resumes truncated
// transfers (re-verifying the assembled bytes against the server's
// content hash), and fails closed on anything it cannot classify.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"crypto/tls"
	"crypto/x509"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discsec/internal/disc"
	"discsec/internal/health"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/resilience"
)

// ContentServer hosts packaged applications and disc images.
type ContentServer struct {
	mu      sync.RWMutex
	catalog map[string]*entry

	download atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64

	// MaxInFlight bounds concurrently served content requests; past
	// it the server sheds load with 503 + Retry-After. 0 means
	// unlimited. Set before serving traffic.
	MaxInFlight int64
	// RetryAfter is advertised on shed requests; 0 means 1s.
	RetryAfter time.Duration
	// ShutdownTimeout bounds graceful drain on shutdown; 0 means 5s.
	ShutdownTimeout time.Duration

	// recorder receives per-route counts, latencies, in-flight, and
	// shed metrics, and backs the /metricsz endpoint. Set with
	// WithRecorder; nil serves an empty /metricsz and records nothing.
	recorder *obs.Recorder
	// clock overrides time.Now for latency measurement (tests).
	clock func() time.Time
	// library, when set, backs the /library/ routes with verified
	// tracks from mounted discs (WithLibrary).
	library *library.Library
	// health, when set, turns /healthz into a per-component JSON body
	// (WithHealth); non-200 when any component is Down.
	health *health.Monitor
	// draining flips true the moment graceful shutdown starts — before
	// the listener stops accepting — so /healthz turns non-200 and load
	// balancers stop routing while in-flight requests still drain.
	draining atomic.Bool
	// drainHook, when set, runs after draining flips and before the
	// listener shuts down (tests pin the ordering through it).
	drainHook func()
	// cluster, when set, handles the /cluster/* routes — the node's
	// half of the distributed verification tier (WithClusterOrigin /
	// WithClusterEdge).
	cluster http.Handler
	// clusterRole is the node's cluster role ("origin" or "edge"),
	// reported by /healthz so fleet orchestration can tell the tiers
	// apart.
	clusterRole string
}

// Option configures a ContentServer built by NewContentServer.
type Option func(*ContentServer)

// WithRecorder installs the observability recorder behind /metricsz
// and the per-route request metrics.
func WithRecorder(rec *obs.Recorder) Option {
	return func(cs *ContentServer) { cs.recorder = rec }
}

// WithClock overrides the latency clock (tests).
func WithClock(now func() time.Time) Option {
	return func(cs *ContentServer) {
		if now != nil {
			cs.clock = now
		}
	}
}

// WithMaxInFlight bounds concurrently served content requests; past it
// the server sheds load with 503 + Retry-After. 0 means unlimited.
func WithMaxInFlight(limit int64) Option {
	return func(cs *ContentServer) { cs.MaxInFlight = limit }
}

// WithRetryAfter sets the delay advertised on shed requests.
func WithRetryAfter(d time.Duration) Option {
	return func(cs *ContentServer) { cs.RetryAfter = d }
}

// WithShutdownTimeout bounds graceful drain on shutdown.
func WithShutdownTimeout(d time.Duration) Option {
	return func(cs *ContentServer) { cs.ShutdownTimeout = d }
}

// WithHealth attaches the dependency-health monitor: /healthz then
// serves its per-component snapshot as JSON, returning 503 whenever
// any component is Down (or the server is draining).
func WithHealth(m *health.Monitor) Option {
	return func(cs *ContentServer) { cs.health = m }
}

// entry is immutable once published: publish installs a fresh pointer
// with its own data copy and precomputed strong ETag, so handlers can
// serve from a snapshot without holding any lock.
type entry struct {
	data        []byte
	contentType string
	etag        string
}

// NewContentServer creates an empty server, configured by functional
// options.
func NewContentServer(opts ...Option) *ContentServer {
	cs := &ContentServer{catalog: make(map[string]*entry), clock: time.Now}
	for _, o := range opts {
		o(cs)
	}
	return cs
}

func (cs *ContentServer) now() time.Time {
	if cs.clock != nil {
		return cs.clock()
	}
	return time.Now()
}

// PublishDocument hosts a protected cluster/manifest document under the
// given name.
func (cs *ContentServer) PublishDocument(name string, doc []byte) {
	cs.publish(name, doc, "application/xml")
}

// PublishImage hosts a packed disc image under the given name.
func (cs *ContentServer) PublishImage(name string, im *disc.Image) {
	cs.publish(name, im.Bytes(), "application/octet-stream")
}

// PublishResource hosts an arbitrary resource (bonus clip, extension).
func (cs *ContentServer) PublishResource(name string, data []byte, contentType string) {
	cs.publish(name, data, contentType)
}

func (cs *ContentServer) publish(name string, data []byte, ct string) {
	copied := append([]byte(nil), data...)
	contentHash := sha256.Sum256(copied)
	e := &entry{
		data:        copied,
		contentType: ct,
		etag:        `"` + hex.EncodeToString(contentHash[:]) + `"`,
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.catalog[strings.TrimPrefix(name, "/")] = e
}

// Unpublish removes an item, reporting whether it existed.
func (cs *ContentServer) Unpublish(name string) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	name = strings.TrimPrefix(name, "/")
	_, ok := cs.catalog[name]
	delete(cs.catalog, name)
	return ok
}

// Catalog lists published names, sorted.
func (cs *ContentServer) Catalog() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.catalog))
	for n := range cs.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Downloads reports the number of served content requests.
func (cs *ContentServer) Downloads() int64 { return cs.download.Load() }

// Shed reports the number of requests refused by the in-flight limit.
func (cs *ContentServer) Shed() int64 { return cs.shed.Load() }

// lookup snapshots an entry under the read lock; the entry itself is
// immutable, so the caller can serve it lock-free afterwards.
func (cs *ContentServer) lookup(name string) (*entry, bool) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	e, ok := cs.catalog[name]
	return e, ok
}

// observeRoute records one finished request on a route: a request
// counter plus a latency observation under the http.<route> stage.
func (cs *ContentServer) observeRoute(route string, start time.Time) {
	cs.recorder.Inc("http.requests." + route)
	cs.recorder.Observe("http."+route, cs.now().Sub(start))
}

// acquireSlot admits one request under the MaxInFlight limit, writing
// the 503 + Retry-After shed response itself when over capacity. The
// returned release must be called (admitted == true) when the request
// finishes; with no limit configured it is a no-op.
func (cs *ContentServer) acquireSlot(w http.ResponseWriter) (release func(), admitted bool) {
	limit := cs.MaxInFlight
	if limit <= 0 {
		return func() {}, true
	}
	if cs.inflight.Add(1) > limit {
		cs.inflight.Add(-1)
		cs.shed.Add(1)
		cs.recorder.Inc("http.shed")
		retryAfter := cs.RetryAfter
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
		w.Header().Set("Retry-After", strconv.FormatInt(int64((retryAfter+time.Second-1)/time.Second), 10))
		http.Error(w, "content server over capacity", http.StatusServiceUnavailable)
		return nil, false
	}
	cs.recorder.Inc("http.inflight")
	return func() {
		cs.inflight.Add(-1)
		cs.recorder.Add("http.inflight", -1)
	}, true
}

// ServeHTTP implements http.Handler: GET/HEAD /<name> returns the
// published item (with ETag and Range support for resume); GET
// /catalog returns a text listing; GET /metricsz and /healthz expose
// the observability recorder and liveness counters; POST /verify
// streams the request body through the verification library and
// returns the verdict as JSON.
func (cs *ContentServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/")
	if cs.cluster != nil && strings.HasPrefix(name, "cluster/") {
		// Cluster wire routes mix GET and POST; the role handler owns
		// its own method dispatch.
		defer cs.observeRoute("cluster", cs.now())
		release, admitted := cs.acquireSlot(w)
		if !admitted {
			return
		}
		defer release()
		cs.cluster.ServeHTTP(w, r)
		return
	}
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		if r.Method == http.MethodPost && name == "verify" {
			defer cs.observeRoute("verify", cs.now())
			release, admitted := cs.acquireSlot(w)
			if !admitted {
				return
			}
			defer release()
			cs.serveVerify(w, r)
			return
		}
		cs.recorder.Inc("http.badmethod")
		http.Error(w, "content server accepts GET and HEAD only (and POST /verify)", http.StatusMethodNotAllowed)
		return
	}
	switch name {
	case "metricsz":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		cs.recorder.Snapshot().WriteMetrics(w)
		return
	case "healthz":
		cs.serveHealthz(w)
		return
	case "catalog":
		defer cs.observeRoute("catalog", cs.now())
		w.Header().Set("Content-Type", "text/plain")
		for _, n := range cs.Catalog() {
			fmt.Fprintln(w, n)
		}
		return
	}

	if rest, isLibrary := strings.CutPrefix(name, "library/"); isLibrary || name == "library" {
		defer cs.observeRoute("library", cs.now())
		release, admitted := cs.acquireSlot(w)
		if !admitted {
			return
		}
		defer release()
		cs.serveLibrary(w, r, rest)
		return
	}

	defer cs.observeRoute("content", cs.now())
	release, admitted := cs.acquireSlot(w)
	if !admitted {
		return
	}
	defer release()

	e, ok := cs.lookup(name)
	if !ok {
		cs.recorder.Inc("http.notfound")
		http.NotFound(w, r)
		return
	}
	if r.Method == http.MethodGet {
		cs.download.Add(1)
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("ETag", e.etag)
	// ServeContent supplies Accept-Ranges, Range/If-Range handling,
	// and HEAD semantics; the zero modtime suppresses Last-Modified
	// so the strong ETag is the only validator.
	http.ServeContent(w, r, "", time.Time{}, bytes.NewReader(e.data))
}

// serveHealthz reports liveness. With a health monitor attached the
// body is the per-component JSON snapshot (503 when any component is
// Down); without one it is the legacy counter text. A draining server
// answers 503 in either form so load balancers stop routing before
// the listener closes.
func (cs *ContentServer) serveHealthz(w http.ResponseWriter) {
	if cs.health != nil {
		snap := cs.health.Snapshot()
		snap.Role = cs.clusterRole
		status := http.StatusOK
		if cs.draining.Load() {
			snap.Overall = "draining"
			status = http.StatusServiceUnavailable
		} else if snap.Overall == health.Down.String() {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(snap) //nolint:errcheck // best-effort health body
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if cs.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintf(w, "ok\ncatalog %d\ninflight %d\nshed %d\ndownloads %d\n",
		len(cs.Catalog()), cs.inflight.Load(), cs.shed.Load(), cs.download.Load())
	if cs.clusterRole != "" {
		fmt.Fprintf(w, "role %s\n", cs.clusterRole)
	}
}

// serve starts srv on ln and returns the base URL plus a shutdown
// function that drains in-flight requests up to ShutdownTimeout
// before forcing connections closed.
func (cs *ContentServer) serve(scheme string, ln net.Listener, srv *http.Server) (string, func() error) {
	//discvet:ignore goroutineleak Serve returns when the shutdown func below calls srv.Shutdown/Close, which closes ln
	go srv.Serve(ln) //nolint:errcheck // shutdown path returns ErrServerClosed
	shutdown := func() error {
		// Flip /healthz to draining/503 strictly before the listener
		// stops accepting: load balancers see the failing health check
		// and stop routing while in-flight requests still drain.
		cs.draining.Store(true)
		if cs.drainHook != nil {
			cs.drainHook()
		}
		timeout := cs.ShutdownTimeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Drain deadline expired: fall back to a hard close so
			// the caller is never left with a wedged listener.
			return errors.Join(err, srv.Close())
		}
		return nil
	}
	return scheme + "://" + ln.Addr().String(), shutdown
}

// Serve starts the server on the given address, returning its base URL
// and a graceful-shutdown function.
func (cs *ContentServer) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: cs, ReadHeaderTimeout: 5 * time.Second}
	base, shutdown := cs.serve("http", ln, srv)
	return base, shutdown, nil
}

// ServeTLS starts the server over TLS with the given certificate (the
// paper's §7: "SSL/TLS mechanisms could be used for mutual
// authentication and secrecy between server and the player"). Content
// trust still comes from the XML signatures inside the payloads.
func (cs *ContentServer) ServeTLS(addr string, cert tls.Certificate) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           cs,
		ReadHeaderTimeout: 5 * time.Second,
		TLSConfig:         &tls.Config{Certificates: []tls.Certificate{cert}, MinVersion: tls.VersionTLS12},
	}
	tlsLn := tls.NewListener(ln, srv.TLSConfig)
	base, shutdown := cs.serve("https", tlsLn, srv)
	return base, shutdown, nil
}

// NewTLSDownloader builds a Downloader whose client trusts the given
// root pool for server authentication.
func NewTLSDownloader(roots *x509.CertPool) *Downloader {
	return &Downloader{HTTPClient: &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			TLSClientConfig: &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12},
		},
	}}
}

// Downloader fetches published content for the player.
type Downloader struct {
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
	// MaxBytes bounds a download; 0 means 64 MiB.
	MaxBytes int64
	// Retry governs transient-failure handling; nil uses the
	// resilience defaults (4 attempts, 100ms base full-jitter
	// backoff).
	Retry *resilience.Policy
	// Breaker, if set, guards the origin: while open, attempts fail
	// immediately with a terminal ErrCircuitOpen (which also stops the
	// Retry loop) instead of timing out against a dead origin.
	Breaker *resilience.Breaker
	// Bulkhead, if set, caps concurrent wire fetches so a slow origin
	// saturates its own compartment, not every caller.
	Bulkhead *resilience.Bulkhead
	// Recorder receives download spans and retry/resume counters; nil
	// records nothing.
	Recorder *obs.Recorder
}

// Downloader errors, matchable through the retry layer with errors.Is.
var (
	// ErrTooLarge indicates the download exceeded MaxBytes.
	ErrTooLarge = errors.New("server: download exceeds size limit")
	// ErrNotFound indicates the server has no such item (HTTP 404).
	ErrNotFound = errors.New("server: content not found")
	// ErrResumeVerify indicates a resumed download failed
	// re-verification against the server's content hash.
	ErrResumeVerify = errors.New("server: resumed download failed re-verification")
)

func (d *Downloader) client() *http.Client {
	if d.HTTPClient != nil {
		return d.HTTPClient
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (d *Downloader) retry() *resilience.Policy {
	if d.Retry != nil {
		return d.Retry
	}
	return &resilience.Policy{}
}

func (d *Downloader) limit() int64 {
	if d.MaxBytes > 0 {
		return d.MaxBytes
	}
	return 64 << 20
}

// Fetch downloads a named item from the base URL. It is FetchContext
// without cancellation.
func (d *Downloader) Fetch(baseURL, name string) ([]byte, error) {
	return d.FetchContext(context.Background(), baseURL, name)
}

// FetchContext downloads a named item, retrying transient failures
// under the Retry policy until ctx is done. Truncated transfers
// resume from the last received byte when the server advertises
// Range support with a strong ETag; resumed payloads are re-verified
// against the ETag's content hash before being returned.
func (d *Downloader) FetchContext(ctx context.Context, baseURL, name string) ([]byte, error) {
	defer d.Recorder.Start(obs.StageDownload).End()
	url := strings.TrimSuffix(baseURL, "/") + "/" + strings.TrimPrefix(name, "/")
	st := &fetchState{}
	attempts := 0
	err := d.retry().Do(ctx, func(ctx context.Context) error {
		release, aerr := d.Bulkhead.Acquire(ctx)
		if aerr != nil {
			d.Recorder.Inc("download.bulkhead_rejected")
			return aerr
		}
		defer release()
		return d.Breaker.Do(ctx, func(ctx context.Context) error {
			attempts++
			d.Recorder.Inc("download.attempts")
			if attempts > 1 {
				d.Recorder.Inc("download.retries")
			}
			return d.fetchOnce(ctx, url, st)
		})
	})
	if err != nil {
		d.Recorder.Inc("download.err")
		return nil, err
	}
	if st.resumed {
		d.Recorder.Inc("download.resumed")
	}
	d.Recorder.Inc("download.ok")
	return st.buf, nil
}

// fetchState carries partial-transfer progress across retry attempts.
type fetchState struct {
	buf     []byte
	etag    string
	resumed bool
	// canResume is set when the origin advertised byte ranges and a
	// strong validator, the preconditions for a safe resume.
	canResume bool
}

func (st *fetchState) reset() {
	st.buf, st.etag, st.resumed, st.canResume = nil, "", false, false
}

func (d *Downloader) fetchOnce(ctx context.Context, url string, st *fetchState) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return resilience.Terminal(fmt.Errorf("server: building request for %s: %w", url, err))
	}
	resuming := st.canResume && len(st.buf) > 0 && st.etag != ""
	if resuming {
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-", len(st.buf)))
		// If-Range makes the resume conditional: a changed entity
		// comes back as a full 200 instead of a mismatched tail.
		req.Header.Set("If-Range", st.etag)
	}

	resp, err := d.client().Do(req)
	if err != nil {
		return fmt.Errorf("server: GET %s: %w", url, err)
	}
	defer resp.Body.Close()

	switch {
	case resp.StatusCode == http.StatusOK:
		// Full entity (fresh download, or the resume condition
		// failed): restart assembly from scratch.
		st.reset()
		st.etag = resp.Header.Get("ETag")
		st.canResume = st.etag != "" && !strings.HasPrefix(st.etag, "W/") &&
			strings.Contains(resp.Header.Get("Accept-Ranges"), "bytes")
	case resp.StatusCode == http.StatusPartialContent && resuming:
		if et := resp.Header.Get("ETag"); et != "" && et != st.etag {
			st.reset()
			return resilience.Transient(fmt.Errorf("server: GET %s: entity changed during resume (%w)", url, ErrResumeVerify))
		}
		start, perr := parseContentRangeStart(resp.Header.Get("Content-Range"))
		if perr != nil || start != int64(len(st.buf)) {
			st.reset()
			return resilience.Transient(fmt.Errorf("server: GET %s: unusable Content-Range %q (%w)", url, resp.Header.Get("Content-Range"), ErrResumeVerify))
		}
		st.resumed = true
	case resp.StatusCode == http.StatusNotFound:
		return resilience.Terminal(fmt.Errorf("server: GET %s: %w", url, ErrNotFound))
	case resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests:
		err := fmt.Errorf("server: GET %s: %s%s", url, resp.Status, bodySnippet(resp.Body))
		return resilience.WithRetryAfter(resilience.Transient(err), resilience.ParseRetryAfter(resp.Header.Get("Retry-After")))
	default:
		return resilience.Terminal(fmt.Errorf("server: GET %s: %s%s", url, resp.Status, bodySnippet(resp.Body)))
	}

	limit := d.limit()
	part, err := io.ReadAll(io.LimitReader(resp.Body, limit+1-int64(len(st.buf))))
	st.buf = append(st.buf, part...)
	if int64(len(st.buf)) > limit {
		return resilience.Terminal(fmt.Errorf("server: GET %s: %w", url, ErrTooLarge))
	}
	if err != nil {
		if !st.canResume {
			st.reset()
		}
		return fmt.Errorf("server: GET %s: reading body: %w", url, err)
	}
	if st.resumed {
		return st.reverify(url)
	}
	return nil
}

// reverify checks an assembled multi-part download against the strong
// ETag when it is the server's sha256 content hash (the form
// ContentServer publishes). A mismatch restarts the transfer from
// scratch rather than handing spliced bytes to the verify pipeline.
func (st *fetchState) reverify(url string) error {
	want, ok := etagSHA256(st.etag)
	if !ok {
		return nil // opaque validator: If-Range already gated consistency
	}
	got := sha256.Sum256(st.buf)
	if !bytes.Equal(got[:], want) {
		st.reset()
		return resilience.Transient(fmt.Errorf("server: GET %s: %w", url, ErrResumeVerify))
	}
	return nil
}

// etagSHA256 recognizes a strong ETag of the form "<64 hex digits>"
// and returns the decoded hash.
func etagSHA256(etag string) ([]byte, bool) {
	v := strings.Trim(etag, `"`)
	if len(v) != sha256.Size*2 {
		return nil, false
	}
	b, err := hex.DecodeString(v)
	if err != nil {
		return nil, false
	}
	return b, true
}

// parseContentRangeStart extracts the first byte position from a
// "bytes start-end/total" Content-Range header.
func parseContentRangeStart(h string) (int64, error) {
	rest, ok := strings.CutPrefix(h, "bytes ")
	if !ok {
		return 0, fmt.Errorf("server: malformed Content-Range %q", h)
	}
	dash := strings.IndexByte(rest, '-')
	if dash < 0 {
		return 0, fmt.Errorf("server: malformed Content-Range %q", h)
	}
	return strconv.ParseInt(rest[:dash], 10, 64)
}

// bodySnippet reads a bounded prefix of an error response body for
// inclusion in the returned error, so operators see what the server
// actually said instead of a bare status line.
func bodySnippet(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 256))
	b = bytes.TrimSpace(b)
	if len(b) == 0 {
		return ""
	}
	return ": " + string(b)
}

// FetchImage downloads and unpacks a disc image.
func (d *Downloader) FetchImage(baseURL, name string) (*disc.Image, error) {
	return d.FetchImageContext(context.Background(), baseURL, name)
}

// FetchImageContext downloads and unpacks a disc image with
// cancellation and retry.
func (d *Downloader) FetchImageContext(ctx context.Context, baseURL, name string) (*disc.Image, error) {
	b, err := d.FetchContext(ctx, baseURL, name)
	if err != nil {
		return nil, err
	}
	im, err := disc.ReadImageBytes(b)
	if err != nil {
		// Bytes arrived intact per transport but do not decode: a
		// corrupt or hostile payload, not a link failure.
		return nil, resilience.Terminal(err)
	}
	return im, nil
}
