package server

import (
	"strings"
	"testing"

	"discsec/internal/keymgmt"
)

func TestServeTLSRoundTrip(t *testing.T) {
	root, err := keymgmt.NewRootCA("TLS Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := root.IssueServerCertificate("content.example", []string{"127.0.0.1", "localhost"}, keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}

	cs := NewContentServer()
	cs.PublishDocument("apps/bonus.xml", []byte("<cluster/>"))
	base, shutdown, err := cs.ServeTLS("127.0.0.1:0", cert)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	if !strings.HasPrefix(base, "https://") {
		t.Fatalf("base URL = %q", base)
	}

	// A downloader trusting the root fetches over TLS.
	d := NewTLSDownloader(root.Pool())
	b, err := d.Fetch(base, "apps/bonus.xml")
	if err != nil {
		t.Fatalf("TLS fetch: %v", err)
	}
	if string(b) != "<cluster/>" {
		t.Errorf("body = %q", b)
	}

	// A downloader trusting a different root refuses the connection.
	other, err := keymgmt.NewRootCA("Other Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewTLSDownloader(other.Pool())
	if _, err := bad.Fetch(base, "apps/bonus.xml"); err == nil {
		t.Error("TLS connection accepted with wrong trust root")
	}

	// The default downloader (system roots) also refuses.
	plain := &Downloader{}
	if _, err := plain.Fetch(base, "apps/bonus.xml"); err == nil {
		t.Error("TLS connection accepted without the test root")
	}
}
