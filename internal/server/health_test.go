package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"discsec/internal/health"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/resilience"
)

func TestHealthzJSONWithMonitor(t *testing.T) {
	mon := health.New()
	mon.Register(health.ComponentXKMS)
	cs := NewContentServer(WithHealth(mon))

	get := func() (*httptest.ResponseRecorder, health.Snapshot) {
		w := httptest.NewRecorder()
		cs.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		var snap health.Snapshot
		if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
			t.Fatalf("healthz body %q: %v", w.Body.String(), err)
		}
		return w, snap
	}

	w, snap := get()
	if w.Code != http.StatusOK || snap.Overall != "healthy" {
		t.Fatalf("healthy: code=%d snap=%+v", w.Code, snap)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	// A Degraded component stays routable (200) — only Down is not.
	mon.SetDegraded(health.ComponentXKMS, true, "stale cache")
	if w, snap := get(); w.Code != http.StatusOK || snap.Overall != "degraded" {
		t.Fatalf("degraded: code=%d overall=%q", w.Code, snap.Overall)
	}
	mon.SetDegraded(health.ComponentXKMS, false, "")

	boom := errors.New("probe refused")
	for i := 0; i < 3; i++ {
		mon.ReportProbe(health.ComponentXKMS, boom)
	}
	w, snap = get()
	if w.Code != http.StatusServiceUnavailable || snap.Overall != "down" {
		t.Fatalf("down: code=%d overall=%q", w.Code, snap.Overall)
	}
	if len(snap.Components) != 1 || snap.Components[0].State != "down" || snap.Components[0].Cause == "" {
		t.Errorf("components = %+v", snap.Components)
	}
}

// TestShutdownFlipsHealthzBeforeListenerStops pins the drain ordering:
// the moment shutdown starts, /healthz must answer 503 while the
// listener is still accepting — the drainHook fires between the flip
// and srv.Shutdown, and performs a real over-the-wire health check.
func TestShutdownFlipsHealthzBeforeListenerStops(t *testing.T) {
	cs := NewContentServer(WithShutdownTimeout(5 * time.Second))
	base, shutdown, err := cs.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// Healthy while serving.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain healthz = %d", resp.StatusCode)
	}

	checked := false
	cs.drainHook = func() {
		// The listener has not been told to stop yet: a live request
		// must get through and see the draining state.
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Errorf("healthz unreachable during drain window: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain window = %d, want 503", resp.StatusCode)
		}
		checked = true
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if !checked {
		t.Fatal("drain ordering hook never ran")
	}
}

// TestShutdownDrainWithHealthMonitor: the JSON form reports
// "draining" with 503 once shutdown begins, regardless of component
// health.
func TestShutdownDrainWithHealthMonitor(t *testing.T) {
	mon := health.New()
	mon.Register(health.ComponentXKMS)
	cs := NewContentServer(WithHealth(mon))
	cs.draining.Store(true)
	w := httptest.NewRecorder()
	cs.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d", w.Code)
	}
	var snap health.Snapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Overall != "draining" {
		t.Errorf("overall = %q, want draining", snap.Overall)
	}
}

func TestLibraryErrorDependencyDownMaps503(t *testing.T) {
	rec := obs.NewRecorder()
	cs := NewContentServer(WithRecorder(rec))
	w := httptest.NewRecorder()
	err := fmt.Errorf("library: verification: %w: %w", library.ErrDependencyDown,
		fmt.Errorf("%w: xkms", resilience.ErrCircuitOpen))
	cs.libraryError(w, httptest.NewRequest(http.MethodGet, "/library/d/t", nil), err)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("dependency-down status = %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("dependency-down response missing Retry-After")
	}
	if rec.Counter("http.library.dependency_down") != 1 {
		t.Error("dependency-down not counted")
	}
}

// TestDownloaderBreakerStopsRetries: a dead origin opens the
// downloader's breaker within its failure threshold, later fetches
// fail immediately with ErrCircuitOpen and zero wire attempts, and
// recovery admits probes again.
func TestDownloaderBreakerStopsRetries(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	rec := obs.NewRecorder()
	d := &Downloader{
		HTTPClient: &http.Client{Timeout: time.Second},
		Retry:      &resilience.Policy{MaxAttempts: 5, Jitter: func() float64 { return 0 }},
		Breaker: &resilience.Breaker{
			Name:             "origin",
			FailureThreshold: 2,
			SuccessThreshold: 1,
			OpenTimeout:      time.Minute,
			Clock:            func() time.Time { return clock() },
		},
		Recorder: rec,
	}
	// An unroutable origin: every attempt fails transiently.
	_, err := d.FetchContext(context.Background(), "http://127.0.0.1:1", "x")
	if err == nil {
		t.Fatal("fetch from dead origin succeeded")
	}
	if got := rec.Counter("download.attempts"); got != 2 {
		t.Errorf("dead origin saw %d attempts, want 2 (breaker threshold)", got)
	}
	if !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Errorf("final error = %v; want the open-circuit rejection", err)
	}

	// While open: no wire attempts at all.
	_, err = d.FetchContext(context.Background(), "http://127.0.0.1:1", "x")
	if !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("open-circuit fetch = %v", err)
	}
	if got := rec.Counter("download.attempts"); got != 2 {
		t.Errorf("open circuit leaked wire attempts: %d total", got)
	}

	// Past the window, a live origin closes the circuit again.
	cs := NewContentServer()
	cs.PublishDocument("doc.xml", []byte("<d/>"))
	srv := httptest.NewServer(cs)
	defer srv.Close()
	now = now.Add(time.Minute)
	b, err := d.FetchContext(context.Background(), srv.URL, "doc.xml")
	if err != nil || string(b) != "<d/>" {
		t.Fatalf("post-recovery fetch: %q %v", b, err)
	}
	if d.Breaker.State() != resilience.StateClosed {
		t.Errorf("breaker state after recovery = %v", d.Breaker.State())
	}
}
