package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"discsec/internal/obs"
)

// stepClock is a deterministic clock advancing 1ms per read.
type stepClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *stepClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func TestServerRouteMetrics(t *testing.T) {
	rec := obs.NewRecorder()
	clk := &stepClock{t: time.Unix(1700000000, 0)}
	cs := NewContentServer(WithRecorder(rec), WithClock(clk.now))
	cs.PublishDocument("doc.xml", []byte("<d/>"))

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		cs.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
		return w
	}

	get("/doc.xml")
	get("/missing.xml")
	get("/catalog")

	if n := rec.Counter("http.requests.content"); n != 2 {
		t.Errorf("http.requests.content = %d, want 2", n)
	}
	if n := rec.Counter("http.requests.catalog"); n != 1 {
		t.Errorf("http.requests.catalog = %d, want 1", n)
	}
	if n := rec.Counter("http.notfound"); n != 1 {
		t.Errorf("http.notfound = %d, want 1", n)
	}

	hz := get("/healthz")
	if hz.Code != http.StatusOK || !strings.HasPrefix(hz.Body.String(), "ok\n") {
		t.Errorf("/healthz = %d %q", hz.Code, hz.Body.String())
	}

	mz := get("/metricsz")
	if mz.Code != http.StatusOK {
		t.Fatalf("/metricsz = %d", mz.Code)
	}
	body := mz.Body.String()
	for _, want := range []string{
		`discsec_counter{name="http.requests.content"} 2`,
		`discsec_counter{name="http.notfound"} 1`,
		`discsec_stage_count{stage="http.content"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz missing %q in:\n%s", want, body)
		}
	}
	// Endpoints themselves are not metered routes.
	if n := rec.Counter("http.requests.content"); n != 2 {
		t.Errorf("metricsz/healthz counted as content requests: %d", n)
	}
}

func TestServerShedMetric(t *testing.T) {
	rec := obs.NewRecorder()
	cs := NewContentServer(WithRecorder(rec), WithMaxInFlight(1))
	cs.PublishResource("big.bin", bigPayload, "application/octet-stream")

	bw := newBlockingWriter()
	done := make(chan struct{})
	go func() {
		defer close(done)
		cs.ServeHTTP(bw, httptest.NewRequest(http.MethodGet, "/big.bin", nil))
	}()
	<-bw.started

	w := httptest.NewRecorder()
	cs.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/big.bin", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", w.Code)
	}
	if n := rec.Counter("http.shed"); n != 1 {
		t.Errorf("http.shed = %d, want 1", n)
	}
	close(bw.release)
	<-done
	if n := rec.Counter("http.inflight"); n != 0 {
		t.Errorf("http.inflight gauge = %d, want 0 after drain", n)
	}
}
