package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"discsec/internal/core"
	"discsec/internal/disc"
	"discsec/internal/keymgmt"
	"discsec/internal/library"
	"discsec/internal/obs"
	"discsec/internal/workload"
	"discsec/internal/xmldsig"
	"discsec/internal/xmlenc"
	"discsec/internal/xmlsecuri"
)

// libraryPKI is a local stand-in for experiments.PKIFixture — the
// experiments package imports player (and thus server), so the server
// tests build their own root and creator identity.
func libraryPKI(t *testing.T) (*keymgmt.CA, *keymgmt.Identity) {
	t.Helper()
	root, err := keymgmt.NewRootCA("Library Test Root", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	creator, err := root.IssueIdentity("Library Test Studio", keymgmt.ECDSAP256)
	if err != nil {
		t.Fatal(err)
	}
	return root, creator
}

func libraryFixture(t *testing.T) (*library.Library, *obs.Recorder) {
	t.Helper()
	root, creator := libraryPKI(t)
	encKey := workload.Bytes(16, 0x5EC)
	cluster, clips := workload.Cluster(workload.ClusterSpec{
		AVTracks: 1, AppTracks: 1, Seed: 40,
	})
	p := &core.Protector{Identity: creator}
	im, err := p.Package(core.PackageSpec{
		Cluster:      cluster,
		Clips:        clips,
		Sign:         true,
		SignLevel:    core.LevelCluster,
		EncryptPaths: []string{"//manifest/code"},
		Encryption:   xmlenc.EncryptOptions{Algorithm: xmlsecuri.EncAES128CBC, Key: encKey},
		SignClips:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{
			Roots:            root.Pool(),
			Decrypt:          xmlenc.DecryptOptions{Key: encKey},
			RequireSignature: true,
		}),
		library.WithRecorder(rec),
	)
	if err := lib.Mount(context.Background(), "disc-a", im); err != nil {
		t.Fatal(err)
	}
	return lib, rec
}

func TestLibraryRoutes(t *testing.T) {
	lib, _ := libraryFixture(t)
	cs := NewContentServer(WithLibrary(lib))
	srv := httptest.NewServer(cs)
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(body)
	}

	resp, body := get("/library/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "disc-a") {
		t.Fatalf("mount listing: status=%d body=%q", resp.StatusCode, body)
	}

	// Disc listing: the index was verified at Mount, so this is a hit.
	resp, body = get("/library/disc-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("disc listing status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderLibraryCache); got != string(library.StatusHit) {
		t.Errorf("%s = %q, want hit (prewarmed at mount)", HeaderLibraryCache, got)
	}
	if !strings.Contains(body, "t-av-1") || !strings.Contains(body, "t-app-1") {
		t.Errorf("track listing missing tracks: %q", body)
	}

	resp, body = get("/library/disc-a/t-av-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("track fetch status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderLibraryCache); got != string(library.StatusHit) {
		t.Errorf("%s = %q, want hit", HeaderLibraryCache, got)
	}
	if resp.Header.Get(HeaderLibrarySigner) == "" {
		t.Error("verified response carries no signer fingerprint header")
	}
	if resp.Header.Get(HeaderLibraryDegraded) != "" {
		t.Error("healthy-trust response marked degraded")
	}
	if etag := resp.Header.Get("ETag"); len(etag) < 10 {
		t.Errorf("ETag = %q, want the canonical digest", etag)
	}
	if !strings.Contains(body, `Id="t-av-1"`) {
		t.Errorf("track body is not the track element: %.120q", body)
	}

	// Unknown names are 404s, not verification errors.
	if resp, _ := get("/library/no-such-disc"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown disc status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/library/disc-a/no-such-track"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown track status = %d, want 404", resp.StatusCode)
	}
}

// TestLibraryRouteFailsClosed: when the disc's verdict is invalidated
// and re-verification cannot succeed (trust config no longer accepts the
// signer), the route answers 502 — it never serves the resident bytes.
func TestLibraryRouteFailsClosed(t *testing.T) {
	cluster, _ := workload.Cluster(workload.ClusterSpec{AVTracks: 1, Seed: 41})
	doc := cluster.Document()
	im := disc.NewImage()
	if err := im.Put(disc.IndexPath, doc.Bytes()); err != nil {
		t.Fatal(err)
	}
	// An unsigned disc under RequireSignature: Mount itself must fail,
	// and the route must keep failing closed (404: never registered).
	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithRecorder(rec),
	)
	if err := lib.Mount(context.Background(), "disc-x", im); err == nil {
		t.Fatal("unsigned disc mounted under RequireSignature")
	}

	srvRec := obs.NewRecorder()
	cs := NewContentServer(WithLibrary(lib), WithRecorder(srvRec))
	srv := httptest.NewServer(cs)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/library/disc-x/t-av-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unregistered disc status = %d, want 404", resp.StatusCode)
	}

	// A registered disc whose trust is pulled out from under it: the
	// KeyName-signed disc mounts while the signer is valid; after
	// revocation the resident verdict is unreachable, re-verification
	// fails, and the route answers 502 — never the resident bytes.
	root, creator := libraryPKI(t)
	svc := keymgmt.NewService(root.Pool())
	if err := svc.Register(creator.Name, creator.Cert, "pw"); err != nil {
		t.Fatal(err)
	}
	kcluster, _ := workload.Cluster(workload.ClusterSpec{AVTracks: 1, Seed: 42})
	kdoc := kcluster.Document()
	if _, err := xmldsig.SignEnveloped(kdoc, kdoc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{KeyName: creator.Name},
	}); err != nil {
		t.Fatal(err)
	}
	kim := disc.NewImage()
	if err := kim.Put(disc.IndexPath, kdoc.Bytes()); err != nil {
		t.Fatal(err)
	}
	lib2 := library.New(
		library.WithOpener(core.Opener{RequireSignature: true}),
		library.WithTrustService(svc),
		library.WithRecorder(obs.NewRecorder()),
	)
	if err := lib2.Mount(context.Background(), "disc-k", kim); err != nil {
		t.Fatal(err)
	}
	cs2Rec := obs.NewRecorder()
	cs2 := NewContentServer(WithLibrary(lib2), WithRecorder(cs2Rec))
	srv2 := httptest.NewServer(cs2)
	defer srv2.Close()

	resp2, err := http.Get(srv2.URL + "/library/disc-k/t-av-1")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pre-revocation track fetch status = %d", resp2.StatusCode)
	}

	if err := svc.Revoke(creator.Name, "pw"); err != nil {
		t.Fatal(err)
	}
	resp3, err := http.Get(srv2.URL + "/library/disc-k/t-av-1")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadGateway {
		t.Fatalf("post-revocation status = %d, want 502 fail-closed", resp3.StatusCode)
	}
	if got := cs2Rec.Counter("http.library.failclosed"); got != 1 {
		t.Errorf("failclosed counter = %d, want 1", got)
	}
}

// TestLibraryRouteNoLibrary: without WithLibrary the prefix is plain
// 404 — no panic, no accidental content-route fallthrough.
func TestLibraryRouteNoLibrary(t *testing.T) {
	cs := NewContentServer()
	srv := httptest.NewServer(cs)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/library/disc-a/t-av-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestVerifyRoute: POST /verify streams an arbitrary document through
// the shared verification library and returns the verdict as JSON —
// the reader-first cold path exposed over HTTP.
func TestVerifyRoute(t *testing.T) {
	root, creator := libraryPKI(t)
	cluster, _ := workload.Cluster(workload.ClusterSpec{AVTracks: 1, Seed: 43})
	doc := cluster.Document()
	if _, err := xmldsig.SignEnveloped(doc, doc.Root(), xmldsig.SignOptions{
		Key:     creator.Key,
		KeyInfo: xmldsig.KeyInfoSpec{Certificates: [][]byte{creator.Cert.Raw}},
	}); err != nil {
		t.Fatal(err)
	}
	raw := doc.Bytes()

	rec := obs.NewRecorder()
	lib := library.New(
		library.WithOpener(core.Opener{Roots: root.Pool(), RequireSignature: true}),
		library.WithRecorder(rec),
	)
	srvRec := obs.NewRecorder()
	cs := NewContentServer(WithLibrary(lib), WithRecorder(srvRec))
	srv := httptest.NewServer(cs)
	defer srv.Close()

	post := func(body []byte) (*http.Response, verifyResponse) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/verify", "application/xml", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var vr verifyResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
				t.Fatalf("decoding verify response: %v", err)
			}
		}
		resp.Body.Close()
		return resp, vr
	}

	// Cold: the body streams through the full pipeline and fills the
	// cache.
	resp, vr := post(raw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold verify status = %d", resp.StatusCode)
	}
	if vr.Cache != string(library.StatusMiss) {
		t.Errorf("cold verify cache = %q, want miss", vr.Cache)
	}
	if vr.Signatures != 1 || vr.Signer == "" || len(vr.Key) != 64 {
		t.Errorf("verify response = %+v, want 1 signature, a signer, a 64-hex key", vr)
	}
	if got := resp.Header.Get(HeaderLibraryCache); got != string(library.StatusMiss) {
		t.Errorf("%s = %q, want miss", HeaderLibraryCache, got)
	}

	// Warm: the same bytes hit the cached verdict by canonical digest.
	resp, vr2 := post(raw)
	if resp.StatusCode != http.StatusOK || vr2.Cache != string(library.StatusHit) {
		t.Errorf("warm verify status=%d cache=%q, want 200 hit", resp.StatusCode, vr2.Cache)
	}
	if vr2.Key != vr.Key {
		t.Errorf("warm key %q != cold key %q", vr2.Key, vr.Key)
	}

	// Malformed XML is the client's fault: 400, not 502.
	resp, _ = post([]byte("<open>unclosed"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed doc status = %d, want 400", resp.StatusCode)
	}
	if got := srvRec.Counter("http.library.baddocument"); got != 1 {
		t.Errorf("baddocument counter = %d, want 1", got)
	}

	// A DOCTYPE is rejected by the hardened tokenizer, same contract.
	resp, _ = post([]byte(`<!DOCTYPE a []><a/>`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("doctype doc status = %d, want 400", resp.StatusCode)
	}

	// An unsigned document under RequireSignature fails verification:
	// fail-closed 502.
	resp, _ = post([]byte(`<a/>`))
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unsigned doc status = %d, want 502", resp.StatusCode)
	}

	// POST anywhere else stays a method error.
	r2, err := http.Post(srv.URL+"/catalog", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /catalog status = %d, want 405", r2.StatusCode)
	}
}

// TestVerifyRouteNoLibrary: POST /verify without an attached library is
// a plain 404.
func TestVerifyRouteNoLibrary(t *testing.T) {
	cs := NewContentServer()
	srv := httptest.NewServer(cs)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/verify", "application/xml", strings.NewReader("<a/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}
