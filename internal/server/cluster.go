package server

import (
	"discsec/internal/cluster"
)

// WithClusterOrigin runs the server as the cluster's origin node: the
// /cluster/* routes serve cold verification, epoch announcements, the
// verdict set, and edge joins, and /healthz reports the origin role.
func WithClusterOrigin(o *cluster.Origin) Option {
	return func(cs *ContentServer) {
		cs.cluster = o
		cs.clusterRole = cluster.RoleOrigin
	}
}

// WithClusterEdge runs the server as a cluster edge node: the
// /cluster/* routes accept forwarded misses, pushed verdicts, and
// epoch/membership updates, and /healthz reports the edge role (with
// the edge's own monitor when none was set explicitly).
func WithClusterEdge(e *cluster.Edge) Option {
	return func(cs *ContentServer) {
		cs.cluster = e
		cs.clusterRole = cluster.RoleEdge
		if cs.health == nil {
			cs.health = e.Health()
		}
	}
}

// ClusterRole reports the configured cluster role ("" outside cluster
// modes).
func (cs *ContentServer) ClusterRole() string { return cs.clusterRole }
