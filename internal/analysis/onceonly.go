package analysis

// onceonly: single-consumption soundness for one-shot readers. An
// io.Reader handed to a verification entry is a stream, not a value:
// after xmlstream.Parse or io.ReadAll has drained it, a second consume
// sees EOF (verifying an empty document), and wrapping it after a
// partial read re-frames the remaining bytes as a whole document —
// both are silent verification of the wrong content. Tracked readers
// are interface-typed parameters (anything the OpenReader family
// accepts) and http.Request.Body reads; aliasing follows assignment,
// wrapper constructors (MaxBytesReader, LimitReader, bufio.NewReader,
// &countReader{r: r}-style composite literals), and module callees
// whose flow summary consumes a reader parameter.

import (
	"go/ast"
	"go/types"
)

// OnceOnly flags one-shot readers consumed twice or re-wrapped after a
// partial read.
var OnceOnly = &Analyzer{
	Name:      "onceonly",
	Doc:       "one-shot readers (request bodies, OpenReader-family arguments) must not be consumed twice or re-wrapped after a partial read",
	RunModule: runOnceOnly,
}

// Abstract register states. Zero means untracked.
const (
	readerFresh    uint8 = 1
	readerPartial  uint8 = 2
	readerConsumed uint8 = 3
)

func runOnceOnly(pass *ModulePass) {
	rule := &onceOnlyRule{sums: pass.Graph.flowSums()}
	runFlowModule(pass, rule, func(fa *flowAnalysis, node *FuncNode, st *flowState) {
		// Interface-typed reader parameters are one-shot on entry:
		// the caller may have handed us a socket, a pipe, or a request
		// body. Concrete resettable readers never seed registers.
		for _, p := range funcParams(node.Pkg.Info, node.Decl) {
			if isOneShotReaderType(p.Type()) {
				reg := fa.register(p.Pos(), p.Name(), p)
				st.objs[p] = []vreg{reg}
				st.vals[reg] = readerFresh
			}
		}
	})
}

type onceOnlyRule struct {
	sums map[*types.Func]*flowSummary
}

// mergeVal: consumed on any path wins (MAY analysis).
func (r *onceOnlyRule) mergeVal(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func (r *onceOnlyRule) applyFact(fa *flowAnalysis, st *flowState, f branchFact) {}

func (r *onceOnlyRule) transferNode(fa *flowAnalysis, st *flowState, n ast.Node) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			r.scanExpr(fa, st, rhs)
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i := range x.Lhs {
				r.bind(fa, st, x.Lhs[i], x.Rhs[i])
			}
			return
		}
		for _, lhs := range x.Lhs {
			if obj := assignedObj(fa.info, lhs); obj != nil {
				st.vers[obj] = lhs.Pos()
				delete(st.objs, obj)
			}
		}

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					r.scanExpr(fa, st, v)
				}
				if len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						r.bind(fa, st, vs.Names[i], vs.Values[i])
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, res := range x.Results {
			r.scanExpr(fa, st, res)
		}

	case *ast.DeferStmt:
		// Only argument evaluation happens at registration; the deferred
		// consume (e.g. a drain) runs last, after every legitimate use,
		// so its replay is deliberately not judged.
		for _, a := range x.Call.Args {
			r.scanExpr(fa, st, a)
		}

	case replayedDefer:
		// See DeferStmt.

	case *ast.GoStmt:
		r.call(fa, st, x.Call)

	case *ast.RangeStmt:
		r.scanExpr(fa, st, x.X)

	case *ast.ExprStmt:
		r.scanExpr(fa, st, x.X)

	case ast.Expr:
		r.scanExpr(fa, st, x)

	case *ast.SendStmt:
		r.scanExpr(fa, st, x.Chan)
		r.scanExpr(fa, st, x.Value)
	}
}

// scanExpr walks an expression and interprets every call's reader
// semantics. Identifiers on their own are not "uses" for this rule —
// only reads consume a stream.
func (r *onceOnlyRule) scanExpr(fa *flowAnalysis, st *flowState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			r.call(fa, st, x)
			return false
		}
		return true
	})
}

// call interprets one call against the consumer/partial/wrapper tables
// and the interprocedural consume summaries.
func (r *onceOnlyRule) call(fa *flowAnalysis, st *flowState, call *ast.CallExpr) {
	// Nested calls in arguments evaluate first.
	for _, a := range call.Args {
		r.scanExpr(fa, st, a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		r.scanExpr(fa, st, sel.X)
		// A raw r.Read(buf) is a partial read of the receiver.
		if sel.Sel.Name == "Read" && len(call.Args) == 1 {
			for _, reg := range r.aliasRegs(fa, st, sel.X) {
				if st.vals[reg] == readerFresh {
					st.vals[reg] = readerPartial
				}
			}
		}
	}
	fn := calleeFunc(fa.info, call)
	if fn == nil {
		return
	}
	args := effectiveArgs(fa.info, call)

	if ref, ok := readerConsumerFor(fn); ok {
		r.forRefArgs(ref, args, func(a ast.Expr) { r.consume(fa, st, a, fn) })
		return
	}
	if ref, ok := readerPartialFor(fn); ok {
		r.forRefArgs(ref, args, func(a ast.Expr) { r.partial(fa, st, a, fn) })
		return
	}
	if ref, ok := readerWrapperFor(fn); ok {
		r.forRefArgs(ref, args, func(a ast.Expr) { r.wrapCheck(fa, st, a, fn) })
		return
	}
	if sum, ok := r.sums[fn]; ok && sum.consumes != 0 {
		for i, a := range args {
			if sum.consumes&summaryBit(i) != 0 {
				r.consume(fa, st, a, fn)
			}
		}
	}
}

func (r *onceOnlyRule) forRefArgs(ref ReaderRef, args []ast.Expr, f func(ast.Expr)) {
	if ref.Arg < 0 {
		for _, a := range args {
			f(a)
		}
		return
	}
	if ref.Arg < len(args) {
		f(args[ref.Arg])
	}
}

func (r *onceOnlyRule) consume(fa *flowAnalysis, st *flowState, arg ast.Expr, fn *types.Func) {
	for _, reg := range r.aliasRegs(fa, st, arg) {
		if st.vals[reg] == readerConsumed {
			fa.reportf(arg.Pos(), "one-shot reader %s consumed twice: already fully read on this path, %s will see EOF or trailing bytes", fa.regs[reg].name, funcDisplayName(fn))
		}
		st.vals[reg] = readerConsumed
	}
}

func (r *onceOnlyRule) partial(fa *flowAnalysis, st *flowState, arg ast.Expr, fn *types.Func) {
	for _, reg := range r.aliasRegs(fa, st, arg) {
		if st.vals[reg] == readerConsumed {
			fa.reportf(arg.Pos(), "one-shot reader %s read again (%s) after being fully consumed on this path", fa.regs[reg].name, funcDisplayName(fn))
			continue
		}
		st.vals[reg] = readerPartial
	}
}

func (r *onceOnlyRule) wrapCheck(fa *flowAnalysis, st *flowState, arg ast.Expr, fn *types.Func) {
	for _, reg := range r.aliasRegs(fa, st, arg) {
		switch st.vals[reg] {
		case readerPartial:
			fa.reportf(arg.Pos(), "one-shot reader %s re-wrapped (%s) after a partial read; the wrapper presents a beheaded stream as a whole document", fa.regs[reg].name, funcDisplayName(fn))
		case readerConsumed:
			fa.reportf(arg.Pos(), "one-shot reader %s re-wrapped (%s) after being fully consumed on this path", fa.regs[reg].name, funcDisplayName(fn))
		}
	}
}

// bind propagates reader identity through one lhs := rhs pair.
func (r *onceOnlyRule) bind(fa *flowAnalysis, st *flowState, lhs, rhs ast.Expr) {
	// Writing a one-shot field source (req.Body = ...) starts a new
	// stream identity for future reads.
	if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
		if oneShotField(fa.info, sel) != nil {
			if base := rootObj(fa.info, sel.X); base != nil {
				st.vers[base] = lhs.Pos()
			}
		}
		return
	}
	obj := assignedObj(fa.info, lhs)
	if obj == nil {
		return
	}
	regs := r.aliasRegs(fa, st, rhs)
	if len(regs) > 0 {
		st.objs[obj] = append([]vreg(nil), regs...)
		st.vers[obj] = lhs.Pos()
		return
	}
	// True reassignment to an untracked value: the old stream is no
	// longer reachable through this name.
	fa.killRoot(st, obj)
	st.vers[obj] = lhs.Pos()
	delete(st.objs, obj)
}

// aliasRegs resolves an expression to the reader registers whose
// identity it carries: plain names, one-shot field reads (registers
// created on first touch), wrapper-constructor calls, composite
// literals embedding a reader, and the identity-preserving wrappers
// (&x, parens, type asserts).
func (r *onceOnlyRule) aliasRegs(fa *flowAnalysis, st *flowState, e ast.Expr) []vreg {
	var out []vreg
	seen := map[vreg]bool{}
	add := func(regs []vreg) {
		for _, reg := range regs {
			if !seen[reg] {
				seen[reg] = true
				out = append(out, reg)
			}
		}
	}
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		e = unwrapValueExpr(e)
		switch x := e.(type) {
		case *ast.Ident:
			if obj := fa.info.Uses[x]; obj != nil {
				add(st.objs[obj])
			}
		case *ast.SelectorExpr:
			if oneShotField(fa.info, x) == nil {
				return
			}
			base := rootObj(fa.info, x.X)
			if base == nil {
				return
			}
			reg := fa.fieldRegister(st, base, x.Sel.Name, x.Sel.Pos())
			if _, tracked := st.vals[reg]; !tracked {
				st.vals[reg] = readerFresh
			}
			add([]vreg{reg})
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(elt)
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(fa.info, x)
			if fn == nil {
				return
			}
			if ref, ok := readerWrapperFor(fn); ok {
				args := effectiveArgs(fa.info, x)
				r.forRefArgs(ref, args, walk)
			}
		}
	}
	walk(e)
	return out
}

// oneShotField matches a selector against oneShotFieldSources,
// returning the field object or nil.
func oneShotField(info *types.Info, sel *ast.SelectorExpr) types.Object {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return nil
	}
	for _, fs := range oneShotFieldSources {
		if obj.Pkg().Path() != fs.Pkg || obj.Name() != fs.Field {
			continue
		}
		t := info.Types[sel.X].Type
		if t == nil {
			continue
		}
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Name() == fs.Type {
			return obj
		}
	}
	return nil
}
