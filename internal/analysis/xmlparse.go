package analysis

import (
	"strconv"
	"strings"
)

// XMLParse enforces the single-parser rule: only internal/xmldom may
// import encoding/xml. The hardened DOM parser rejects DOCTYPE
// declarations, bounds nesting depth and token counts, and produces
// the node identity model the signature wrapping defences depend on.
// A stray xml.Unmarshal elsewhere bypasses all of that and reopens
// the XXE and wrapping regressions the paper's Verifier assumes away.
var XMLParse = &Analyzer{
	Name: "xmlparse",
	Doc:  "only internal/xmldom may import encoding/xml; untrusted XML goes through the hardened parser",
	Run:  runXMLParse,
}

func runXMLParse(pass *Pass) {
	if seg := "/internal/xmldom"; strings.HasSuffix(pass.Path, seg) || strings.Contains(pass.Path, seg+"/") {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != "encoding/xml" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"encoding/xml imported outside internal/xmldom; parse untrusted XML with the hardened internal/xmldom parser (doctype rejection, depth/token limits)")
		}
	}
}
