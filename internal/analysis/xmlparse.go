package analysis

import (
	"strconv"
	"strings"
)

// XMLParse enforces the single-parser rule: only the hardened parsing
// layer — internal/xmlstream (the streaming tokenizer) and
// internal/xmldom (the DOM built on it) — may import encoding/xml.
// That layer rejects DOCTYPE declarations, bounds nesting depth and
// token counts, and produces the node identity model the signature
// wrapping defences depend on. A stray xml.Unmarshal elsewhere
// bypasses all of that and reopens the XXE and wrapping regressions
// the paper's Verifier assumes away.
var XMLParse = &Analyzer{
	Name: "xmlparse",
	Doc:  "only internal/xmlstream and internal/xmldom may import encoding/xml; untrusted XML goes through the hardened parsing layer",
	Run:  runXMLParse,
}

func runXMLParse(pass *Pass) {
	for _, seg := range []string{"/internal/xmldom", "/internal/xmlstream"} {
		if strings.HasSuffix(pass.Path, seg) || strings.Contains(pass.Path, seg+"/") {
			return
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p != "encoding/xml" {
				continue
			}
			pass.Reportf(imp.Pos(),
				"encoding/xml imported outside the hardened parsing layer; parse untrusted XML with internal/xmldom or stream it through internal/xmlstream (doctype rejection, depth/token limits)")
		}
	}
}
