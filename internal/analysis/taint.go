package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The taint engine proves the paper's pipeline-level invariant: bytes
// read from a disc image or fetched from a content server are untrusted
// until the Verifier (xmldsig, or core.Open* which drives it) has
// passed them, and only then may they reach execution or persistence
// sinks. It is a conservative intra+interprocedural dataflow:
//
//   - Within one function, taint propagates through assignments,
//     conversions, composite literals, binary expressions, slicing,
//     indexing, range, and calls; function literals are analyzed in
//     their enclosing function's state so captured variables flow.
//   - Across functions, each module function gets a summary computed to
//     a fixpoint over the whole package set: which parameters flow to
//     its returns, whether a taint source flows to its returns, and
//     which parameters it forwards (transitively) into a sink. Calls to
//     functions without analyzable bodies (stdlib, indirect, interface)
//     conservatively taint their results with the union of argument
//     taint.
//
// Deliberate precision choices, documented because they shape findings:
// field writes (x.f = tainted) do not taint the enclosing object and
// method calls do not taint their receivers — the container reads that
// matter (disc.Image.Get and friends) are themselves declared sources,
// so data re-read from a container is re-tainted at the read. Sanitizer
// calls clean both their results and the root objects of their
// arguments (the verify-then-use idiom operates on the argument).
// Error-typed values never carry taint: a wrapped error is not content,
// and tracking it would mark every `return nil, err` path after a
// source call as a content flow.

// taintMask is a small powerset lattice: bit i (i < 62) means "tainted
// if parameter i is tainted"; the top bit means "carries source taint".
type taintMask uint64

const taintSrc taintMask = 1 << 63

func paramBit(i int) taintMask {
	if i > 61 {
		i = 61
	}
	return 1 << uint(i)
}

// FuncRef names a package-level function or method for the declarative
// source/sanitizer/sink tables. Recv is the receiver type name, "" for
// plain functions.
type FuncRef struct {
	Pkg  string
	Recv string
	Name string
}

func (r FuncRef) matches(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == r.Pkg &&
		fn.Name() == r.Name && recvTypeName(fn) == r.Recv
}

func matchAny(fn *types.Func, refs []FuncRef) bool {
	for _, r := range refs {
		if r.matches(fn) {
			return true
		}
	}
	return false
}

// FieldRef names a struct field whose read is a taint source (e.g. the
// body of an inbound *http.Request).
type FieldRef struct {
	Pkg   string
	Type  string
	Field string
}

// TaintSpec is one rule's declarative trust-boundary description.
type TaintSpec struct {
	Sources      []FuncRef
	FieldSources []FieldRef
	Sanitizers   []FuncRef
	Sinks        []FuncRef
	// SinkMsg formats the direct finding; ForwardMsg the interprocedural
	// one. Both receive the callee display name.
	SinkMsg    string
	ForwardMsg string
}

// taintSummary is the interprocedural abstraction of one function.
type taintSummary struct {
	// ret: paramBit(i) set means parameter i flows to a return value;
	// taintSrc set means a source flows to a return value.
	ret taintMask
	// sink: paramBit(i) set means parameter i reaches a sink, possibly
	// through callees.
	sink taintMask
}

type taintEngine struct {
	spec  *TaintSpec
	graph *CallGraph
	sum   map[*types.Func]*taintSummary

	// reporting state (nil while solving)
	pass     *ModulePass
	reported map[token.Pos]bool
}

// runTaint executes the spec over the module pass's packages.
func runTaint(pass *ModulePass, spec *TaintSpec) {
	te := &taintEngine{spec: spec, graph: pass.Graph, sum: map[*types.Func]*taintSummary{}}
	for fn := range te.graph.Funcs {
		te.sum[fn] = &taintSummary{}
	}
	// Fixpoint: summaries only grow, the lattice is finite, and each
	// pass recomputes from current summaries, so this terminates at the
	// least fixpoint regardless of iteration order.
	for changed := true; changed; {
		changed = false
		for fn, node := range te.graph.Funcs {
			got := te.analyzeFunc(node)
			if got != *te.sum[fn] {
				*te.sum[fn] = got
				changed = true
			}
		}
	}
	// Report pass, in stable position order.
	nodes := make([]*FuncNode, 0, len(te.graph.Funcs))
	for _, n := range te.graph.Funcs {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	te.pass = pass
	te.reported = map[token.Pos]bool{}
	for _, n := range nodes {
		te.analyzeFunc(n)
	}
}

// taintState is the per-function abstract store.
type taintState struct {
	vals map[types.Object]taintMask
	info *types.Info
	// returns accumulates the masks of returned expressions of the
	// declared function (returns inside function literals are excluded).
	returns taintMask
	sink    taintMask
	inLit   int
}

// analyzeFunc runs the intraprocedural analysis and returns the
// function's summary under the engine's current summaries. When the
// engine is in report mode, sink violations are reported.
func (te *taintEngine) analyzeFunc(node *FuncNode) taintSummary {
	st := &taintState{vals: map[types.Object]taintMask{}, info: node.Pkg.Info}
	for i, obj := range funcParams(node.Pkg.Info, node.Decl) {
		st.vals[obj] = paramBit(i)
	}
	// Two passes approximate loop-carried flows (a value tainted late
	// in a loop body reaching an earlier statement next iteration).
	for i := 0; i < 2; i++ {
		te.walkStmts(st, node.Decl.Body.List)
	}
	return taintSummary{ret: st.returns, sink: st.sink}
}

// funcParams returns the receiver (if any) followed by the parameters,
// as defined objects; the summary indexes params in this order.
func funcParams(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

func (te *taintEngine) walkStmts(st *taintState, list []ast.Stmt) {
	for _, s := range list {
		te.walkStmt(st, s)
	}
}

func (te *taintEngine) walkStmt(st *taintState, s ast.Stmt) {
	switch x := s.(type) {
	case *ast.AssignStmt:
		masks := make([]taintMask, len(x.Rhs))
		for i, rhs := range x.Rhs {
			masks[i] = te.eval(st, rhs)
		}
		if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
			// Multi-value call/assert: every LHS gets the call's mask.
			for _, lhs := range x.Lhs {
				te.assign(st, lhs, masks[0], x.Tok == token.ASSIGN || x.Tok == token.DEFINE)
			}
			return
		}
		for i, lhs := range x.Lhs {
			if i < len(masks) {
				te.assign(st, lhs, masks[i], x.Tok == token.ASSIGN || x.Tok == token.DEFINE)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						te.assign(st, name, te.eval(st, vs.Values[i]), true)
					}
				}
			}
		}
	case *ast.ExprStmt:
		te.eval(st, x.X)
	case *ast.ReturnStmt:
		var m taintMask
		for _, res := range x.Results {
			rm := te.eval(st, res) // always eval: calls have effects
			if !isErrorExpr(st.info, res) {
				m |= rm
			}
		}
		if st.inLit == 0 {
			st.returns |= m
		}
	case *ast.IfStmt:
		if x.Init != nil {
			te.walkStmt(st, x.Init)
		}
		te.eval(st, x.Cond)
		te.walkStmts(st, x.Body.List)
		if x.Else != nil {
			te.walkStmt(st, x.Else)
		}
	case *ast.BlockStmt:
		te.walkStmts(st, x.List)
	case *ast.ForStmt:
		if x.Init != nil {
			te.walkStmt(st, x.Init)
		}
		if x.Cond != nil {
			te.eval(st, x.Cond)
		}
		te.walkStmts(st, x.Body.List)
		if x.Post != nil {
			te.walkStmt(st, x.Post)
		}
	case *ast.RangeStmt:
		m := te.eval(st, x.X)
		if x.Key != nil {
			te.assign(st, x.Key, m, true)
		}
		if x.Value != nil {
			te.assign(st, x.Value, m, true)
		}
		te.walkStmts(st, x.Body.List)
	case *ast.SwitchStmt:
		if x.Init != nil {
			te.walkStmt(st, x.Init)
		}
		if x.Tag != nil {
			te.eval(st, x.Tag)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					te.eval(st, e)
				}
				te.walkStmts(st, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			te.walkStmt(st, x.Init)
		}
		var tagMask taintMask
		if as, ok := x.Assign.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
			tagMask = te.eval(st, as.Rhs[0])
		} else if es, ok := x.Assign.(*ast.ExprStmt); ok {
			tagMask = te.eval(st, es.X)
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				// The per-clause implicit object carries the tag's taint.
				if obj := st.info.Implicits[cc]; obj != nil {
					st.vals[obj] |= tagMask
				}
				te.walkStmts(st, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					te.walkStmt(st, cc.Comm)
				}
				te.walkStmts(st, cc.Body)
			}
		}
	case *ast.DeferStmt:
		te.evalCall(st, x.Call)
	case *ast.GoStmt:
		te.evalCall(st, x.Call)
	case *ast.SendStmt:
		m := te.eval(st, x.Value)
		if obj := rootObj(st.info, x.Chan); obj != nil {
			st.vals[obj] |= m
		}
	case *ast.LabeledStmt:
		te.walkStmt(st, x.Stmt)
	case *ast.IncDecStmt:
		te.eval(st, x.X)
	}
}

// assign writes mask to the target. Identifier targets get a strong
// update; field/index targets deliberately do not taint the root
// object (see the package comment on precision choices).
func (te *taintEngine) assign(st *taintState, lhs ast.Expr, mask taintMask, strong bool) {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := st.info.Defs[x]
		if obj == nil {
			obj = st.info.Uses[x]
		}
		if obj == nil {
			return
		}
		if isErrorType(obj.Type()) {
			mask = 0
		}
		if strong {
			st.vals[obj] = mask
		} else {
			st.vals[obj] |= mask
		}
	default:
		// x.f = v, x[i] = v, *p = v: no root-object tainting.
	}
}

// isErrorType reports whether t is exactly the universe error type.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// isErrorExpr reports whether e's static type is error.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isErrorType(tv.Type)
}

// rootObj unwraps an expression to its base identifier's object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

func (te *taintEngine) eval(st *taintState, e ast.Expr) taintMask {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := st.info.Uses[x]; obj != nil {
			return st.vals[obj]
		}
		return 0
	case *ast.SelectorExpr:
		if te.isFieldSource(st, x) {
			return taintSrc
		}
		return te.eval(st, x.X)
	case *ast.CallExpr:
		return te.evalCall(st, x)
	case *ast.ParenExpr:
		return te.eval(st, x.X)
	case *ast.StarExpr:
		return te.eval(st, x.X)
	case *ast.UnaryExpr:
		return te.eval(st, x.X)
	case *ast.BinaryExpr:
		return te.eval(st, x.X) | te.eval(st, x.Y)
	case *ast.IndexExpr:
		return te.eval(st, x.X) | te.eval(st, x.Index)
	case *ast.SliceExpr:
		return te.eval(st, x.X)
	case *ast.TypeAssertExpr:
		return te.eval(st, x.X)
	case *ast.CompositeLit:
		var m taintMask
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				m |= te.eval(st, kv.Value)
			} else {
				m |= te.eval(st, el)
			}
		}
		return m
	case *ast.FuncLit:
		// Analyze the body in the enclosing state so captured variables
		// propagate; the literal's own value carries no taint.
		st.inLit++
		te.walkStmts(st, x.Body.List)
		st.inLit--
		return 0
	}
	return 0
}

func (te *taintEngine) isFieldSource(st *taintState, sel *ast.SelectorExpr) bool {
	obj, ok := st.info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil {
		return false
	}
	for _, fs := range te.spec.FieldSources {
		if obj.Pkg().Path() == fs.Pkg && obj.Name() == fs.Field {
			// The owning struct name is not directly on the field var;
			// match the selectee's type instead.
			t := st.info.Types[sel.X].Type
			if t == nil {
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Name() == fs.Type {
				return true
			}
		}
	}
	return false
}

// evalCall handles conversions, sources, sanitizers, sinks, summarized
// module functions, and unknown callees.
func (te *taintEngine) evalCall(st *taintState, call *ast.CallExpr) taintMask {
	// Type conversion: propagate the operand.
	if tv, ok := st.info.Types[call.Fun]; ok && tv.IsType() {
		var m taintMask
		for _, a := range call.Args {
			m |= te.eval(st, a)
		}
		return m
	}

	// Effective arguments: method-value receivers prepend the receiver
	// expression, aligning with summary parameter indexing.
	args := make([]ast.Expr, 0, len(call.Args)+1)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := st.info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			args = append(args, sel.X)
		}
	}
	args = append(args, call.Args...)

	argMasks := make([]taintMask, len(args))
	var union taintMask
	for i, a := range args {
		argMasks[i] = te.eval(st, a)
		union |= argMasks[i]
	}

	fn := calleeFunc(st.info, call)
	switch {
	case fn == nil:
		// Builtins, indirect calls, interface calls: conservative
		// propagation of argument taint to the result.
		return union

	case matchAny(fn, te.spec.Sanitizers):
		// A successful verify cleans the verified arguments and yields
		// trusted results.
		for _, a := range args {
			if obj := rootObj(st.info, a); obj != nil {
				st.vals[obj] = 0
			}
		}
		return 0

	case matchAny(fn, te.spec.Sources):
		return taintSrc | union

	case matchAny(fn, te.spec.Sinks):
		if union&taintSrc != 0 {
			te.report(call.Lparen, te.spec.SinkMsg, fn)
		}
		st.sink |= union &^ taintSrc
		return union

	default:
		if sum, ok := te.sum[fn]; ok {
			// Summarized module function: translate parameter bits.
			ret := sum.ret & taintSrc
			for i, m := range argMasks {
				if sum.ret&paramBit(i) != 0 {
					ret |= m
				}
				if sum.sink&paramBit(i) != 0 {
					if m&taintSrc != 0 {
						te.report(call.Lparen, te.spec.ForwardMsg, fn)
					}
					st.sink |= m &^ taintSrc
				}
			}
			return ret
		}
		// Unknown function (stdlib or module package outside the
		// analyzed set): propagate argument taint.
		return union
	}
}

func (te *taintEngine) report(pos token.Pos, format string, callee *types.Func) {
	if te.pass == nil || te.reported[pos] {
		return
	}
	te.reported[pos] = true
	te.pass.Reportf(pos, format, funcDisplayName(callee))
}
