package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafety reports two lock-handling bugs that deadlock or corrupt
// the caches on the hot serving path:
//
//   - a function parameter or receiver whose (non-pointer) type
//     contains a sync.Mutex/RWMutex, i.e. a lock copied by value, and
//   - a return statement executed while a mutex is still held by a
//     Lock/RLock that was not paired with a deferred unlock.
//
// Since discvet v3 the held-lock tracking comes from the shared
// lockset engine (locksets.go) that also powers lockorder, so the two
// rules cannot disagree about what "held" means. The rule keeps its
// PR 1 name: existing //discvet:ignore locksafety directives and
// baselines stay valid. Function literals are walked as independent
// roots with their own (empty) held set.
var LockSafety = &Analyzer{
	Name:      "locksafety",
	Doc:       "no lock-by-value copies; no return while a defer-less Lock is held",
	RunModule: runLockSafety,
}

func runLockSafety(pass *ModulePass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkLockCopies(pass, pkg, fd)
				}
			}
		}
	}

	eng := newLockEngine(pass)
	w := &lockWalker{eng: eng}
	w.onReturn = func(held []*heldLock, pos token.Pos) {
		for _, hl := range held {
			pass.Reportf(pos,
				"return while %s is locked (Lock at %s has no deferred unlock)",
				hl.key, pass.Fset.Position(hl.pos))
		}
	}
	w.walkModule()
}

// checkLockCopies flags by-value receivers and parameters whose type
// contains a mutex.
func checkLockCopies(pass *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := pkg.Info.Types[field.Type].Type
		if t == nil || !containsLock(t, map[types.Type]bool{}) {
			continue
		}
		pass.Reportf(field.Pos(),
			"%s passed by value copies its sync.Mutex; pass a pointer", types.TypeString(t, types.RelativeTo(pkg.Types)))
	}
}

// containsLock reports whether a value of type t embeds a
// sync.Mutex/RWMutex (directly, in a struct field, or in an array
// element). Pointers do not propagate: sharing a lock through a
// pointer is the correct pattern.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockCall matches a call expression of the form recv.Lock / RLock /
// Unlock / RUnlock where the method belongs to sync.Mutex or
// sync.RWMutex (including promoted methods of embedded mutexes), and
// returns a stable key for the receiver expression.
func lockCall(info *types.Info, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprKey(sel.X), fn.Name(), true
	}
	return "", "", false
}

// deferredUnlock reports whether stmt is `defer recv.Unlock()` (or
// RUnlock) for the same receiver key.
func deferredUnlock(info *types.Info, stmt ast.Stmt, wantRecv string) bool {
	d, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	recv, op, ok := lockCall(info, d.Call)
	return ok && recv == wantRecv && (op == "Unlock" || op == "RUnlock")
}
