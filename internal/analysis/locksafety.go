package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafety reports two lock-handling bugs that deadlock or corrupt
// the caches on the hot serving path:
//
//   - a function parameter or receiver whose (non-pointer) type
//     contains a sync.Mutex/RWMutex, i.e. a lock copied by value, and
//   - a return statement executed while a mutex is still held by a
//     Lock/RLock that was not immediately paired with a deferred
//     unlock.
//
// The held-lock check is a linear, block-local scan: it follows
// nested if/for/switch bodies but does not build a full CFG, which is
// exactly enough for the straight-line Lock();...;return patterns the
// codebase uses.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc:  "no lock-by-value copies; no return while a defer-less Lock is held",
	Run:  runLockSafety,
}

func runLockSafety(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			checkLockCopies(pass, fd)
			if fd.Body != nil {
				checkHeldReturns(pass, fd.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// checkLockCopies flags by-value receivers and parameters whose type
// contains a mutex.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := pass.Info.Types[field.Type].Type
		if t == nil || !containsLock(t, map[types.Type]bool{}) {
			continue
		}
		pass.Reportf(field.Pos(),
			"%s passed by value copies its sync.Mutex; pass a pointer", types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// containsLock reports whether a value of type t embeds a
// sync.Mutex/RWMutex (directly, in a struct field, or in an array
// element). Pointers do not propagate: sharing a lock through a
// pointer is the correct pattern.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// checkHeldReturns walks a statement list tracking which mutexes are
// held by a defer-less Lock, reporting any return reached while one
// is still held. Nested blocks get a copy of the held set so sibling
// branches stay independent.
func checkHeldReturns(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for i, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			recv, op, ok := lockCall(pass.Info, s.X)
			if !ok {
				continue
			}
			switch op {
			case "Lock", "RLock":
				if i+1 < len(stmts) && deferredUnlock(pass.Info, stmts[i+1], recv) {
					continue
				}
				held[recv] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
		case *ast.DeferStmt:
			if recv, op, ok := lockCall(pass.Info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				delete(held, recv)
			}
		case *ast.ReturnStmt:
			for recv, pos := range held {
				pass.Reportf(s.Pos(),
					"return while %s is locked (Lock at %s has no deferred unlock)",
					recv, pass.Fset.Position(pos))
			}
		case *ast.IfStmt:
			checkHeldReturns(pass, s.Body.List, cloneHeld(held))
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				checkHeldReturns(pass, els.List, cloneHeld(held))
			}
		case *ast.ForStmt:
			checkHeldReturns(pass, s.Body.List, cloneHeld(held))
		case *ast.RangeStmt:
			checkHeldReturns(pass, s.Body.List, cloneHeld(held))
		case *ast.BlockStmt:
			checkHeldReturns(pass, s.List, cloneHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					checkHeldReturns(pass, cc.Body, cloneHeld(held))
				}
			}
		}
	}
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockCall matches a call expression of the form recv.Lock / RLock /
// Unlock / RUnlock where the method belongs to sync.Mutex or
// sync.RWMutex (including promoted methods of embedded mutexes), and
// returns a stable key for the receiver expression.
func lockCall(info *types.Info, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprKey(sel.X), fn.Name(), true
	}
	return "", "", false
}

// deferredUnlock reports whether stmt is `defer recv.Unlock()` (or
// RUnlock) for the same receiver key.
func deferredUnlock(info *types.Info, stmt ast.Stmt, wantRecv string) bool {
	d, ok := stmt.(*ast.DeferStmt)
	if !ok {
		return false
	}
	recv, op, ok := lockCall(info, d.Call)
	return ok && recv == wantRecv && (op == "Unlock" || op == "RUnlock")
}
