package analysis

import (
	"encoding/json"
	"time"
)

// Structured emitters for CI integration: a compact JSON report and a
// SARIF 2.1.0 log (the shape GitHub code scanning and most SARIF
// viewers consume: version + runs[].tool.driver.rules + runs[].results
// with ruleId/message/physical locations). An optional invocations
// block records analysis wall-clock, so the archived report doubles as
// the perf artifact `make vet-bench` tracks.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool        sarifTool         `json:"tool"`
	Invocations []sarifInvocation `json:"invocations,omitempty"`
	Results     []sarifResult     `json:"results"`
}

// sarifInvocation is the subset of the SARIF invocation object the
// wall-clock recording needs: the mandatory success flag plus a
// property bag holding the measured duration.
type sarifInvocation struct {
	ExecutionSuccessful bool           `json:"executionSuccessful"`
	Properties          map[string]any `json:"properties,omitempty"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIFReport renders the diagnostics as a SARIF 2.1.0 log. File URIs
// are made relative to root. The driver's rule table lists every
// selected analyzer plus the suppression pseudo-rules, so every result
// ruleId resolves.
func SARIFReport(diags []Diagnostic, analyzers []*Analyzer, root string) ([]byte, error) {
	return sarifReport(diags, analyzers, root, 0)
}

// SARIFReportTimed is SARIFReport plus an invocations block recording
// the analysis wall-clock (load + run) in the invocation's property
// bag. It is a separate entry point, not a default: timing varies run
// to run, and the plain report must stay byte-identical across runs so
// the parallel driver's determinism can be asserted on raw output.
func SARIFReportTimed(diags []Diagnostic, analyzers []*Analyzer, root string, wall time.Duration) ([]byte, error) {
	return sarifReport(diags, analyzers, root, wall)
}

func sarifReport(diags []Diagnostic, analyzers []*Analyzer, root string, wall time.Duration) ([]byte, error) {
	driver := sarifDriver{
		Name:  "discvet",
		Rules: []sarifRule{},
	}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	driver.Rules = append(driver.Rules,
		sarifRule{ID: "discvet", ShortDescription: sarifMessage{Text: "malformed //discvet:ignore directive"}},
		sarifRule{ID: "uselessignore", ShortDescription: sarifMessage{Text: "stale //discvet:ignore directive suppressing nothing"}},
	)

	results := []sarifResult{}
	for _, d := range diags {
		line := d.Pos.Line
		if line < 1 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relFile(root, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}

	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: results}
	if wall > 0 {
		run.Invocations = []sarifInvocation{{
			ExecutionSuccessful: true,
			Properties: map[string]any{
				"wallClockMillis": wall.Milliseconds(),
				"parallelism":     runParallelism(),
			},
		}}
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{run},
	}
	return json.MarshalIndent(log, "", "  ")
}

// jsonDiagnostic is the machine-readable diagnostic shape.
type jsonDiagnostic struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// JSONReport renders the diagnostics as a JSON array with root-relative
// file paths.
func JSONReport(diags []Diagnostic, root string) ([]byte, error) {
	out := []jsonDiagnostic{}
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Rule:    d.Rule,
			File:    relFile(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
