package analysis

// errdominate: fail-closed use of verification and decryption results.
// The producers in errCheckedProducers return (value, error) pairs
// where the value is only meaningful when the error is nil — an
// OpenResult from a failed Open, plaintext from a failed Decrypt. "XML
// Signature Wrapping Still Considered Harmful" (PAPERS.md) catalogues
// real-world verifiers that regressed exactly here: the result was
// consulted on a path where the error had not been ruled out.
//
// The rule is a MUST analysis: a use of the result is clean only when
// every path from the producing call to the use passes an `err == nil`
// check of that call's error binding (the dominance in the name). The
// branch facts come from the CFG edges; the version map (vers) keeps a
// check of a *reassigned* err variable from guarding the old value.
// Two deliberate exemptions keep the rule quiet on idiomatic Go:
// `return v, err` (and any return whose expressions mention the bound
// error — wrapping counts) is a passthrough for the caller to check,
// and bare returns with named results carry no checked use at all.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrDominate flags uses of producer results that are not dominated by
// an err == nil check of the producing call's error.
var ErrDominate = &Analyzer{
	Name:      "errdominate",
	Doc:       "results of Open/Verify/Digest/Decrypt producers may only be used on paths dominated by an err == nil check",
	RunModule: runErrDominate,
}

// Abstract register states. Zero means untracked.
const (
	// errUnguarded: no path-dominating err == nil check seen yet.
	errUnguarded uint8 = 1
	// errGuarded: every path to here checked err == nil.
	errGuarded uint8 = 2
	// errPoisoned: this path assumed err != nil; the value is known-bad.
	errPoisoned uint8 = 3
)

func runErrDominate(pass *ModulePass) {
	runFlowModule(pass, &errDominateRule{}, nil)
}

type errDominateRule struct{}

// mergeVal: most-pessimistic wins. Guarded survives a merge only when
// both sides are guarded (MUST); a poisoned side poisons the join (MAY
// for the known-bad direction).
func (r *errDominateRule) mergeVal(a, b uint8) uint8 {
	if a == b {
		return a
	}
	if a == errPoisoned || b == errPoisoned {
		return errPoisoned
	}
	if a == errUnguarded || b == errUnguarded {
		return errUnguarded
	}
	return errGuarded
}

// applyFact folds an assumed `err == nil` / `err != nil` outcome into
// every register bound to that error object, provided the variable
// still holds the definition the register was bound to.
func (r *errDominateRule) applyFact(fa *flowAnalysis, st *flowState, f branchFact) {
	obj, errIsNil, ok := errNilFact(fa.info, f)
	if !ok {
		return
	}
	for reg := range st.vals {
		ri := fa.regs[reg]
		if ri.errObj != obj {
			continue
		}
		if ver, has := st.vers[obj]; has && ver != ri.errPos {
			// err was reassigned since this value was produced; checking
			// the new err says nothing about the old value.
			continue
		}
		if errIsNil {
			st.vals[reg] = errGuarded
		} else {
			st.vals[reg] = errPoisoned
		}
	}
}

// errNilFact decodes a branch fact of the shape `x == nil` / `x != nil`
// into (object of x, whether the edge assumes x is nil).
func errNilFact(info *types.Info, f branchFact) (types.Object, bool, bool) {
	bin, ok := ast.Unparen(f.cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return nil, false, false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	var id *ast.Ident
	switch {
	case isNilExpr(info, y):
		id, _ = x.(*ast.Ident)
	case isNilExpr(info, x):
		id, _ = y.(*ast.Ident)
	}
	if id == nil {
		return nil, false, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return nil, false, false
	}
	errIsNil := (bin.Op == token.EQL) == f.val
	return obj, errIsNil, true
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func (r *errDominateRule) transferNode(fa *flowAnalysis, st *flowState, n ast.Node) {
	switch x := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			r.scanExpr(fa, st, rhs)
		}
		if r.bindProducer(fa, st, x) {
			return
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i := range x.Lhs {
				r.bindPlain(fa, st, x.Lhs[i], x.Rhs[i])
			}
			return
		}
		for _, lhs := range x.Lhs {
			if obj := assignedObj(fa.info, lhs); obj != nil {
				st.vers[obj] = lhs.Pos()
				delete(st.objs, obj)
			}
		}

	case *ast.ReturnStmt:
		// Passthrough exemption: a return that mentions the bound error
		// (plain or wrapped) hands the pair to the caller to check.
		passthrough := map[types.Object]bool{}
		for _, res := range x.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := fa.info.Uses[id]; obj != nil && isErrorType(obj.Type()) {
						passthrough[obj] = true
					}
				}
				return true
			})
		}
		for _, res := range x.Results {
			r.scanExprExempt(fa, st, res, passthrough)
		}

	case *ast.DeferStmt:
		// Registration-time check: the deferred call captures its
		// arguments now, so now is when the result must be guarded.
		r.scanExpr(fa, st, x.Call.Fun)
		for _, a := range x.Call.Args {
			r.scanExpr(fa, st, a)
		}

	case replayedDefer:
		// The replay sees the merged all-exits state; judging uses there
		// would flag values that were guarded at registration. Skip.

	case *ast.GoStmt:
		r.scanExpr(fa, st, x.Call.Fun)
		for _, a := range x.Call.Args {
			r.scanExpr(fa, st, a)
		}

	case *ast.RangeStmt:
		r.scanExpr(fa, st, x.X)

	case *ast.ExprStmt:
		r.scanExpr(fa, st, x.X)

	case ast.Expr:
		// Branch condition: respect && / || short-circuit, so
		// `err == nil && v.OK()` judges v under the err == nil fact.
		r.transferCond(fa, st, x)

	case *ast.IncDecStmt:
		r.scanExpr(fa, st, x.X)

	case *ast.SendStmt:
		r.scanExpr(fa, st, x.Chan)
		r.scanExpr(fa, st, x.Value)

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						r.scanExpr(fa, st, v)
					}
				}
			}
		}
	}
}

// transferCond walks a branch condition left to right, folding each
// short-circuit operand's assumed outcome into a scratch state before
// judging the next operand — Go only evaluates `b` in `a && b` when a
// was true.
func (r *errDominateRule) transferCond(fa *flowAnalysis, st *flowState, e ast.Expr) {
	e = ast.Unparen(e)
	if bin, ok := e.(*ast.BinaryExpr); ok && (bin.Op == token.LAND || bin.Op == token.LOR) {
		r.transferCond(fa, st, bin.X)
		tmp := st.clone()
		for _, f := range factsFor(bin.X, bin.Op == token.LAND) {
			r.applyFact(fa, tmp, f)
		}
		r.transferCond(fa, tmp, bin.Y)
		return
	}
	r.scanExpr(fa, st, e)
}

// bindProducer recognizes `v, err := producer(...)` and starts an
// unguarded register for every non-error result name, bound to the
// error name's current definition. Returns false when the statement is
// not a producer binding.
func (r *errDominateRule) bindProducer(fa *flowAnalysis, st *flowState, x *ast.AssignStmt) bool {
	if len(x.Rhs) != 1 || len(x.Lhs) < 2 {
		return false
	}
	call, ok := unwrapValueExpr(x.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(fa.info, call)
	if fn == nil || !matchAny(fn, errCheckedProducers) {
		return false
	}
	// Locate the error binding (by convention the last result, but scan
	// all of them).
	var errObj types.Object
	var errPos token.Pos
	for _, lhs := range x.Lhs {
		obj := assignedObj(fa.info, lhs)
		if obj != nil && isErrorType(obj.Type()) {
			errObj, errPos = obj, lhs.Pos()
		}
	}
	for _, lhs := range x.Lhs {
		obj := assignedObj(fa.info, lhs)
		if obj == nil || obj == errObj {
			continue
		}
		reg := fa.register(lhs.Pos(), obj.Name()+" (from "+funcDisplayName(fn)+")", obj)
		ri := fa.regs[reg]
		ri.errObj, ri.errPos = errObj, errPos
		st.objs[obj] = []vreg{reg}
		st.vals[reg] = errUnguarded
		st.vers[obj] = lhs.Pos()
	}
	if errObj != nil {
		st.vers[errObj] = errPos
	}
	return true
}

// bindPlain handles a non-producer lhs := rhs pair: version bump for
// the written name, alias propagation when rhs names tracked registers.
func (r *errDominateRule) bindPlain(fa *flowAnalysis, st *flowState, lhs, rhs ast.Expr) {
	obj := assignedObj(fa.info, lhs)
	if obj == nil {
		return
	}
	st.vers[obj] = lhs.Pos()
	if id, ok := unwrapValueExpr(rhs).(*ast.Ident); ok {
		if src := fa.info.Uses[id]; src != nil {
			if regs := st.objs[src]; len(regs) > 0 {
				st.objs[obj] = append([]vreg(nil), regs...)
				return
			}
		}
	}
	delete(st.objs, obj)
}

func (r *errDominateRule) scanExpr(fa *flowAnalysis, st *flowState, e ast.Expr) {
	r.scanExprExempt(fa, st, e, nil)
}

// scanExprExempt reports unguarded and poisoned uses, skipping
// registers whose bound error is in the passthrough set.
func (r *errDominateRule) scanExprExempt(fa *flowAnalysis, st *flowState, e ast.Expr, passthrough map[types.Object]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := fa.info.Uses[id]
		if obj == nil {
			return true
		}
		for _, reg := range st.objs[obj] {
			ri := fa.regs[reg]
			if ri.errObj != nil && passthrough[ri.errObj] {
				continue
			}
			switch st.vals[reg] {
			case errUnguarded:
				if ri.errObj == nil {
					fa.reportf(id.Pos(), "%s used but its error result was discarded; fail closed by checking it", ri.name)
				} else {
					fa.reportf(id.Pos(), "%s used without a dominating %s == nil check", ri.name, ri.errObj.Name())
				}
			case errPoisoned:
				fa.reportf(id.Pos(), "%s used on a path where %s != nil; a failed verification result must not be consulted", ri.name, errObjName(ri.errObj))
			}
		}
		return true
	})
}

func errObjName(obj types.Object) string {
	if obj == nil {
		return "err"
	}
	return obj.Name()
}
