package analysis

// Declarative tables for the concurrency rules (lockorder,
// goroutineleak), mirroring taintrules.go: the rule engines are
// generic, the project knowledge lives here.

var pkgResilience = modulePath + "/internal/resilience"

// blockingSinks are calls that can wait indefinitely (or long enough
// to matter: network round trips, retry backoff). Holding a mutex
// across one stalls every other goroutine contending for that mutex —
// on the revocation path that turns fail-closed into fail-hung (see
// SECURITY.md). The same table tells goroutineleak which unanalyzable
// callees run until an external shutdown signal.
var blockingSinks = []FuncRef{
	// Indefinite synchronization waits.
	{Pkg: "sync", Recv: "WaitGroup", Name: "Wait"},
	{Pkg: "sync", Recv: "Cond", Name: "Wait"},
	// Network I/O: dials, listener accept loops, HTTP round trips.
	{Pkg: "net", Name: "Dial"},
	{Pkg: "net", Name: "DialTimeout"},
	{Pkg: "net", Name: "Listen"},
	{Pkg: "net", Recv: "Listener", Name: "Accept"},
	{Pkg: "net/http", Recv: "Client", Name: "Do"},
	{Pkg: "net/http", Recv: "Client", Name: "Get"},
	{Pkg: "net/http", Recv: "Client", Name: "Post"},
	{Pkg: "net/http", Recv: "Client", Name: "PostForm"},
	{Pkg: "net/http", Recv: "Server", Name: "Serve"},
	{Pkg: "net/http", Recv: "Server", Name: "ListenAndServe"},
	{Pkg: "net/http", Name: "ListenAndServe"},
	// Deliberate sleeps (retry backoff).
	{Pkg: "time", Name: "Sleep"},
	// Module-local waits: the library's singleflight blocks every
	// waiter until the fill completes, and a resilience policy sleeps
	// between attempts.
	{Pkg: pkgLibrary, Recv: "flightGroup", Name: "do"},
	{Pkg: pkgResilience, Recv: "Policy", Name: "Do"},
}
