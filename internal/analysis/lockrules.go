package analysis

// Declarative tables and the locksafety rule for the concurrency
// analyzers (locksafety, lockorder, goroutineleak), mirroring
// taintrules.go: the engines (locksets.go) are generic, the project
// knowledge lives here. The locksafety analyzer itself is small enough
// to live beside its tables — v1 shipped it standalone, PR 6 folded
// its held-lock tracking onto the shared lockset engine, and the
// leftover shim file is gone; the rule name and messages are
// unchanged, so existing //discvet:ignore locksafety directives and
// baselines stay valid.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafety reports two lock-handling bugs that deadlock or corrupt
// the caches on the hot serving path:
//
//   - a function parameter or receiver whose (non-pointer) type
//     contains a sync.Mutex/RWMutex, i.e. a lock copied by value, and
//   - a return statement executed while a mutex is still held by a
//     Lock/RLock that was not paired with a deferred unlock.
//
// Function literals are walked as independent roots with their own
// (empty) held set.
var LockSafety = &Analyzer{
	Name:      "locksafety",
	Doc:       "no lock-by-value copies; no return while a defer-less Lock is held",
	RunModule: runLockSafety,
}

func runLockSafety(pass *ModulePass) {
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkLockCopies(pass, pkg, fd)
				}
			}
		}
	}

	eng := newLockEngine(pass)
	w := &lockWalker{eng: eng}
	w.onReturn = func(held []*heldLock, pos token.Pos) {
		for _, hl := range held {
			pass.Reportf(pos,
				"return while %s is locked (Lock at %s has no deferred unlock)",
				hl.key, pass.Fset.Position(hl.pos))
		}
	}
	w.walkModule()
}

// checkLockCopies flags by-value receivers and parameters whose type
// contains a mutex.
func checkLockCopies(pass *ModulePass, pkg *Package, fd *ast.FuncDecl) {
	var fields []*ast.Field
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := pkg.Info.Types[field.Type].Type
		if t == nil || !containsLock(t, map[types.Type]bool{}) {
			continue
		}
		pass.Reportf(field.Pos(),
			"%s passed by value copies its sync.Mutex; pass a pointer", types.TypeString(t, types.RelativeTo(pkg.Types)))
	}
}

// containsLock reports whether a value of type t embeds a
// sync.Mutex/RWMutex (directly, in a struct field, or in an array
// element). Pointers do not propagate: sharing a lock through a
// pointer is the correct pattern.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

var pkgResilience = modulePath + "/internal/resilience"

// blockingSinks are calls that can wait indefinitely (or long enough
// to matter: network round trips, retry backoff). Holding a mutex
// across one stalls every other goroutine contending for that mutex —
// on the revocation path that turns fail-closed into fail-hung (see
// SECURITY.md). The same table tells goroutineleak which unanalyzable
// callees run until an external shutdown signal.
var blockingSinks = []FuncRef{
	// Indefinite synchronization waits.
	{Pkg: "sync", Recv: "WaitGroup", Name: "Wait"},
	{Pkg: "sync", Recv: "Cond", Name: "Wait"},
	// Network I/O: dials, listener accept loops, HTTP round trips.
	{Pkg: "net", Name: "Dial"},
	{Pkg: "net", Name: "DialTimeout"},
	{Pkg: "net", Name: "Listen"},
	{Pkg: "net", Recv: "Listener", Name: "Accept"},
	{Pkg: "net/http", Recv: "Client", Name: "Do"},
	{Pkg: "net/http", Recv: "Client", Name: "Get"},
	{Pkg: "net/http", Recv: "Client", Name: "Post"},
	{Pkg: "net/http", Recv: "Client", Name: "PostForm"},
	{Pkg: "net/http", Recv: "Server", Name: "Serve"},
	{Pkg: "net/http", Recv: "Server", Name: "ListenAndServe"},
	{Pkg: "net/http", Name: "ListenAndServe"},
	// Deliberate sleeps (retry backoff).
	{Pkg: "time", Name: "Sleep"},
	// Module-local waits: the library's singleflight blocks every
	// waiter until the fill completes, and a resilience policy sleeps
	// between attempts.
	{Pkg: pkgLibrary, Recv: "flightGroup", Name: "do"},
	{Pkg: pkgResilience, Recv: "Policy", Name: "Do"},
}
