package analysis

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPoolEscapeFixture(t *testing.T) {
	pkg := loadFixture(t, "poolescape", "discsec/internal/xmlstream/pefixture")
	checkFixture(t, pkg, PoolEscape)
}

func TestErrDominateFixture(t *testing.T) {
	pkg := loadFixture(t, "errdominate", "discsec/internal/core/edfixture")
	checkFixture(t, pkg, ErrDominate)
}

func TestOnceOnlyFixture(t *testing.T) {
	pkg := loadFixture(t, "onceonly", "discsec/internal/server/oofixture")
	checkFixture(t, pkg, OnceOnly)
}

// TestFlowSummariesRealModule pins the interprocedural summaries over
// the real packages the rules are seeded on: xmlstream's putParser
// must release its parameter, and the library fill path must consume
// its reader even through the countReader wrapper.
func TestFlowSummariesRealModule(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	g := BuildCallGraph(pkgs)
	sums := g.flowSums()

	find := func(pkgPath, recv, name string) *flowSummary {
		t.Helper()
		node := g.Lookup(pkgPath, recv, name)
		if node == nil {
			t.Fatalf("function %s.%s.%s not in call graph", pkgPath, recv, name)
		}
		return sums[node.Fn]
	}

	if s := find(pkgXMLStream, "", "putParser"); s.releases&summaryBit(0) == 0 {
		t.Error("xmlstream.putParser: parameter 0 not summarized as released")
	}
	if s := find(pkgXMLStream, "", "Parse"); !s.releasesNothingOf(t) {
		t.Error("xmlstream.Parse releases a parameter; it only Puts a local")
	}
	// parseAndKey wraps its reader in a countReader before parsing; the
	// alias tracking must still credit the consume to the parameter.
	if s := find(pkgLibrary, "", "parseAndKey"); s.consumes == 0 {
		t.Error("library.parseAndKey: reader parameter not summarized as consumed")
	}
	if s := find(pkgLibrary, "Library", "OpenReader"); s.consumes == 0 {
		t.Error("library.Library.OpenReader: reader parameter not summarized as consumed")
	}
}

// releasesNothingOf keeps the assertion above readable.
func (s *flowSummary) releasesNothingOf(t *testing.T) bool {
	t.Helper()
	return s.releases == 0
}

// TestParallelRunDeterministic pins the parallel driver's ordering
// contract: two full runs over the same packages with every analyzer
// enabled must produce byte-identical SARIF, whatever order the
// worker pool finished in.
func TestParallelRunDeterministic(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "poolescape", "discsec/internal/xmlstream/pefixture"),
		loadFixture(t, "errdominate", "discsec/internal/core/edfixture"),
		loadFixture(t, "onceonly", "discsec/internal/server/oofixture"),
		loadFixture(t, "cryptocompare", "discsec/internal/disc/ccfixture"),
		loadFixture(t, "readerfirst", "discsec/internal/player/rffixture"),
	}
	all := Analyzers()
	first, err := SARIFReport(Run(pkgs, all), all, ".")
	if err != nil {
		t.Fatalf("SARIFReport: %v", err)
	}
	if len(first) == 0 || !strings.Contains(string(first), "poolescape") {
		t.Fatalf("first run produced no v4 findings to compare")
	}
	for i := 0; i < 3; i++ {
		again, err := SARIFReport(Run(pkgs, all), all, ".")
		if err != nil {
			t.Fatalf("SARIFReport: %v", err)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("run %d: SARIF output differs from first run", i+2)
		}
	}
}

// TestUselessIgnoreV4Rules: stale //discvet:ignore directives naming
// the v4 value-flow rules are themselves reported, one per rule.
func TestUselessIgnoreV4Rules(t *testing.T) {
	pkg := loadFixture(t, "uselessignore4", "discsec/internal/uifixture4")
	diags := Run([]*Package{pkg}, []*Analyzer{PoolEscape, ErrDominate, OnceOnly})

	named := map[string]int{}
	for _, d := range diags {
		if d.Rule != "uselessignore" {
			t.Errorf("unexpected non-uselessignore diagnostic: %v", d)
			continue
		}
		for _, rule := range []string{"poolescape", "errdominate", "onceonly"} {
			if strings.Contains(d.Message, `"`+rule+`"`) {
				named[rule]++
			}
		}
	}
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3 stale-suppression reports: %v", len(diags), diags)
	}
	for _, rule := range []string{"poolescape", "errdominate", "onceonly"} {
		if named[rule] != 1 {
			t.Errorf("rule %s: got %d stale-suppression reports naming it, want 1", rule, named[rule])
		}
	}
}

// TestBaselineRoundTripV4Rules: findings from all three v4 rules
// survive a baseline save/load cycle and are fully absorbed by it,
// while a new finding still surfaces.
func TestBaselineRoundTripV4Rules(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "poolescape", "discsec/internal/xmlstream/pefixture"),
		loadFixture(t, "errdominate", "discsec/internal/core/edfixture"),
		loadFixture(t, "onceonly", "discsec/internal/server/oofixture"),
	}
	diags := Run(pkgs, []*Analyzer{PoolEscape, ErrDominate, OnceOnly})
	byRule := map[string]int{}
	for _, d := range diags {
		byRule[d.Rule]++
	}
	for _, rule := range []string{"poolescape", "errdominate", "onceonly"} {
		if byRule[rule] == 0 {
			t.Fatalf("rule %s produced no findings to baseline (got %v)", rule, byRule)
		}
	}

	b := NewBaseline(diags, "")
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := b.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !reflect.DeepEqual(loaded, b) {
		t.Errorf("baseline did not round-trip:\nsaved  %+v\nloaded %+v", b, loaded)
	}
	if left := loaded.Filter(diags, ""); len(left) != 0 {
		t.Errorf("baseline left %d findings, want 0: %v", len(left), left)
	}
	extra := Diagnostic{
		Rule:    "poolescape",
		Pos:     token.Position{Filename: "other.go", Line: 3, Column: 1},
		Message: "a brand-new pooled-object escape",
	}
	if left := loaded.Filter(append(diags, extra), ""); len(left) != 1 || left[0].Message != extra.Message {
		t.Errorf("new finding did not survive the baseline: %v", left)
	}
}

// parseFuncCFG builds the CFG of the first function in src.
func parseFuncCFG(t *testing.T, src string) *funcCFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return buildCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil
}

func TestCFGDominance(t *testing.T) {
	g := parseFuncCFG(t, `
func f(a, b int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a + b
}`)
	// The entry (holding the condition) must dominate every reachable
	// block; neither arm dominates the join.
	for _, blk := range g.blocks {
		if !g.reachable(blk) {
			continue
		}
		if !g.dominates(g.entry, blk) {
			t.Errorf("entry does not dominate block %d", blk.id)
		}
	}
	// Arms are blocks 1 and 2 (builder order: cond=0, then, else, join).
	then, els, join := g.blocks[1], g.blocks[2], g.blocks[3]
	if g.dominates(then, join) || g.dominates(els, join) {
		t.Error("a branch arm must not dominate the join")
	}
	if g.idom[join.id] != g.entry.id {
		t.Errorf("join idom = %d, want entry %d", g.idom[join.id], g.entry.id)
	}
}

func TestCFGBranchFacts(t *testing.T) {
	g := parseFuncCFG(t, `
func f(err error) {
	if err != nil {
		return
	}
}`)
	// The entry's two outgoing edges assume err != nil with opposite
	// truth values.
	if len(g.entry.succs) != 2 {
		t.Fatalf("entry has %d successors, want 2", len(g.entry.succs))
	}
	seen := map[bool]bool{}
	for _, e := range g.entry.succs {
		if len(e.assumes) != 1 {
			t.Fatalf("edge assumes %d facts, want 1", len(e.assumes))
		}
		seen[e.assumes[0].val] = true
	}
	if !seen[true] || !seen[false] {
		t.Errorf("edges do not cover both truth values: %v", seen)
	}
}

func TestCFGShortCircuitFacts(t *testing.T) {
	g := parseFuncCFG(t, `
func f(a, b bool) {
	if a && b {
		return
	}
}`)
	for _, e := range g.entry.succs {
		if len(e.assumes) > 0 && e.assumes[0].val {
			if len(e.assumes) != 2 {
				t.Errorf("true edge of a && b carries %d facts, want 2", len(e.assumes))
			}
		}
	}
}

func TestCFGDefersReplayedInExit(t *testing.T) {
	g := parseFuncCFG(t, `
func f() {
	defer first()
	defer second()
}`)
	if len(g.exit.nodes) != 2 {
		t.Fatalf("exit holds %d nodes, want 2 replayed defers", len(g.exit.nodes))
	}
	// Reverse registration order: second runs first.
	calls := make([]string, 0, 2)
	for _, n := range g.exit.nodes {
		rd, ok := n.(replayedDefer)
		if !ok {
			t.Fatalf("exit node %T, want replayedDefer", n)
		}
		calls = append(calls, rd.Fun.(*ast.Ident).Name)
	}
	if calls[0] != "second" || calls[1] != "first" {
		t.Errorf("replay order %v, want [second first]", calls)
	}
}
