package analysis

import (
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader (and therefore one type-checked
// stdlib) across all fixture tests.
var sharedLoader = sync.OnceValues(func() (*Loader, error) {
	return NewLoader(".")
})

func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

// wantDiags parses `// want rule1 rule2` markers from the fixture's
// comments into a line -> rules map.
func wantDiags(pkg *Package) map[int][]string {
	want := map[int][]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				want[line] = append(want[line], strings.Fields(rest)...)
			}
		}
	}
	return want
}

// checkFixture runs the analyzers over the fixture package and
// compares the resulting (line, rule) pairs against the `// want`
// markers.
func checkFixture(t *testing.T, pkg *Package, analyzers ...*Analyzer) {
	t.Helper()
	got := map[int][]string{}
	for _, d := range Run([]*Package{pkg}, analyzers) {
		got[d.Pos.Line] = append(got[d.Pos.Line], d.Rule)
	}
	want := wantDiags(pkg)
	for line, rules := range want {
		if strings.Join(got[line], " ") != strings.Join(rules, " ") {
			t.Errorf("line %d: got diagnostics %v, want %v", line, got[line], rules)
		}
	}
	for line, rules := range got {
		if len(want[line]) == 0 {
			t.Errorf("line %d: unexpected diagnostics %v", line, rules)
		}
	}
}

func TestCryptoCompareFixture(t *testing.T) {
	pkg := loadFixture(t, "cryptocompare", "discsec/internal/disc/ccfixture")
	checkFixture(t, pkg, CryptoCompare)
}

func TestCryptoCompareOutsideCryptoPackages(t *testing.T) {
	// The same violating code loaded as a non-crypto package must be
	// clean: the rule is scoped to the Verifier/Decryptor path.
	pkg := loadFixture(t, "cryptocompare", "discsec/internal/player/ccfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{CryptoCompare}); len(diags) != 0 {
		t.Errorf("got %d diagnostics outside crypto packages, want 0: %v", len(diags), diags)
	}
}

func TestWeakRandSensitivePackage(t *testing.T) {
	pkg := loadFixture(t, "weakrand_pkg", "discsec/internal/keymgmt/wrfixture")
	checkFixture(t, pkg, WeakRand)
}

func TestWeakRandAssignments(t *testing.T) {
	pkg := loadFixture(t, "weakrand_assign", "discsec/internal/markup/wrfixture")
	checkFixture(t, pkg, WeakRand)
}

func TestErrWrapFixture(t *testing.T) {
	pkg := loadFixture(t, "errwrap", "discsec/internal/ewfixture")
	checkFixture(t, pkg, ErrWrap)
}

func TestXMLParseFixture(t *testing.T) {
	pkg := loadFixture(t, "xmlparse", "discsec/internal/server/xpfixture")
	checkFixture(t, pkg, XMLParse)
}

func TestXMLParseAllowedInXMLDOM(t *testing.T) {
	pkg := loadFixture(t, "xmlparse", "discsec/internal/xmldom/xpfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{XMLParse}); len(diags) != 0 {
		t.Errorf("got %d diagnostics under internal/xmldom, want 0: %v", len(diags), diags)
	}
}

func TestHTTPClientFixture(t *testing.T) {
	pkg := loadFixture(t, "httpclient", "discsec/internal/server/hcfixture")
	checkFixture(t, pkg, HTTPClient)
}

func TestHTTPClientOutsideNetworkedPackages(t *testing.T) {
	// The same deadline-less code loaded outside the networked
	// packages must be clean: the rule is scoped to where a hung
	// connection stalls the player.
	pkg := loadFixture(t, "httpclient", "discsec/internal/disc/hcfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{HTTPClient}); len(diags) != 0 {
		t.Errorf("got %d diagnostics outside networked packages, want 0: %v", len(diags), diags)
	}
}

func TestObsCtxFixture(t *testing.T) {
	pkg := loadFixture(t, "obsctx", "discsec/internal/core/ocfixture")
	checkFixture(t, pkg, ObsCtx)
}

func TestObsCtxOutsidePipelinePackages(t *testing.T) {
	// The same ctx-dropping code loaded outside the pipeline packages
	// must be clean: the rule is scoped to where a dropped ctx severs
	// the recorder and cancellation.
	pkg := loadFixture(t, "obsctx", "discsec/internal/disc/ocfixture")
	if diags := Run([]*Package{pkg}, []*Analyzer{ObsCtx}); len(diags) != 0 {
		t.Errorf("got %d diagnostics outside pipeline packages, want 0: %v", len(diags), diags)
	}
}

func TestObsCtxCoversLibraryPackage(t *testing.T) {
	// internal/library is a pipeline package: its entry points carry
	// ctx for cancellation and the recorder, so a dropped ctx flags
	// there exactly as it does in core.
	pkg := loadFixture(t, "obsctx", "discsec/internal/library/ocfixture")
	checkFixture(t, pkg, ObsCtx)
	if diags := Run([]*Package{pkg}, []*Analyzer{ObsCtx}); len(diags) != 1 {
		t.Errorf("got %d diagnostics under internal/library, want 1: %v", len(diags), diags)
	}
}

func TestLockSafetyFixture(t *testing.T) {
	pkg := loadFixture(t, "locksafety", "discsec/internal/lsfixture")
	checkFixture(t, pkg, LockSafety)
}

func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress", "discsec/internal/disc/supfixture")
	diags := Run([]*Package{pkg}, []*Analyzer{CryptoCompare})

	for _, d := range diags {
		if d.Rule == "cryptocompare" {
			t.Errorf("suppressed finding leaked through: %v", d)
		}
	}
	var unknown, missing int
	for _, d := range diags {
		if d.Rule != "discvet" {
			continue
		}
		switch {
		case strings.Contains(d.Message, strconv.Quote("nosuchrule")):
			unknown++
		case strings.Contains(d.Message, "missing a rule name"):
			missing++
		default:
			t.Errorf("unexpected discvet diagnostic: %v", d)
		}
	}
	if unknown != 1 {
		t.Errorf("got %d unknown-rule diagnostics, want 1 (diags: %v)", unknown, diags)
	}
	if missing != 1 {
		t.Errorf("got %d missing-rule-name diagnostics, want 1 (diags: %v)", missing, diags)
	}
}

func TestLoadModulePackages(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./internal/analysis", "./internal/xmldom")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "discsec/internal/analysis" || pkgs[1].Path != "discsec/internal/xmldom" {
		t.Errorf("unexpected package paths: %s, %s", pkgs[0].Path, pkgs[1].Path)
	}
}

func TestByName(t *testing.T) {
	for _, a := range Analyzers() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nosuchrule") != nil {
		t.Errorf("ByName(nosuchrule) = non-nil")
	}
}

func TestSplitWords(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"clipDigest", "clip digest"},
		{"HMACKey", "hmac key"},
		{"want_sum", "want sum"},
		{"DSigNamespace", "d sig namespace"},
		{"sha256Sum", "sha sum"},
		{"design", "design"},
	}
	for _, c := range cases {
		if got := strings.Join(splitWords(c.in), " "); got != c.want {
			t.Errorf("splitWords(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestReaderFirstFixture(t *testing.T) {
	pkg := loadFixture(t, "readerfirst", "discsec/internal/player/rffixture")
	checkFixture(t, pkg, ReaderFirst)
}

func TestReaderFirstCleanFixture(t *testing.T) {
	pkg := loadFixture(t, "readerfirst_clean", "discsec/internal/player/rffixtureclean")
	if diags := Run([]*Package{pkg}, []*Analyzer{ReaderFirst}); len(diags) != 0 {
		t.Errorf("got %d diagnostics on decoupled buffering, want 0: %v", len(diags), diags)
	}
}

func TestObsCtxCoversClusterPackage(t *testing.T) {
	// internal/cluster is a pipeline package: edge opens carry ctx for
	// cancellation and the recorder, so a dropped ctx flags there
	// exactly as it does in core and library.
	pkg := loadFixture(t, "obsctx", "discsec/internal/cluster/ocfixture")
	checkFixture(t, pkg, ObsCtx)
	if diags := Run([]*Package{pkg}, []*Analyzer{ObsCtx}); len(diags) != 1 {
		t.Errorf("got %d diagnostics under internal/cluster, want 1: %v", len(diags), diags)
	}
}

func TestHTTPClientCoversClusterPackage(t *testing.T) {
	// internal/cluster talks to origin and peer edges over HTTP; a
	// deadline-less client there would hang an edge on a partitioned
	// origin instead of entering the heartbeat/breaker path.
	pkg := loadFixture(t, "httpclient", "discsec/internal/cluster/hcfixture")
	checkFixture(t, pkg, HTTPClient)
}

func TestReaderFirstClusterFixture(t *testing.T) {
	pkg := loadFixture(t, "readerfirst_cluster", "discsec/internal/player/rfcluster")
	checkFixture(t, pkg, ReaderFirst)
}
