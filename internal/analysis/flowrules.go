package analysis

// Declarative tables for the v4 value-flow rules (poolescape,
// errdominate, onceonly), mirroring taintrules.go and lockrules.go:
// the engines in ssa.go/flow.go are generic, the project knowledge
// lives here.

import (
	"go/types"
)

// --- poolescape ------------------------------------------------------

// poolGetFuncs produce pool-owned values: using one after it has been
// Put back is an aliasing bug (the pool may have handed it to another
// goroutine). Module helpers that wrap these (xmlstream's pooled
// parser, any future bufpool) are discovered through flow summaries,
// not listed here.
var poolGetFuncs = []FuncRef{
	{Pkg: "sync", Recv: "Pool", Name: "Get"},
}

// poolPutFuncs release pool-owned values.
var poolPutFuncs = []FuncRef{
	{Pkg: "sync", Recv: "Pool", Name: "Put"},
}

// --- errdominate -----------------------------------------------------

// errCheckedProducers are the verification and decryption entry points
// whose non-error results are only meaningful when the returned error
// is nil: an OpenResult from a failed Open, a VerifyResult from a
// failed Verify, or plaintext from a failed Decrypt must never be
// consulted. The rule demands every use of such a result be dominated
// by an err == nil check of the producing call's error.
var errCheckedProducers = []FuncRef{
	// The Verifier+Decryptor driver.
	{Pkg: pkgCore, Recv: "Opener", Name: "Open"},
	{Pkg: pkgCore, Recv: "Opener", Name: "OpenReader"},
	{Pkg: pkgCore, Recv: "Opener", Name: "OpenDocument"},
	{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetached"},
	{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetachedReader"},
	// The leaf verifier and its streaming digests.
	{Pkg: pkgXMLDSig, Name: "Verify"},
	{Pkg: pkgXMLDSig, Name: "VerifyDocument"},
	{Pkg: pkgXMLDSig, Name: "DigestDocumentReader"},
	{Pkg: pkgXMLDSig, Name: "HashReader"},
	// The shared verification library.
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenDocument"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenReader"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenDisc"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "OpenTrack"},
	{Pkg: pkgLibrary, Recv: "Library", Name: "TrackXML"},
	// The Decryptor.
	{Pkg: pkgXMLEnc, Name: "DecryptOctets"},
	{Pkg: pkgXMLEnc, Name: "DecryptElement"},
	{Pkg: pkgXMLEnc, Name: "DecryptAll"},
	{Pkg: pkgXMLEnc, Name: "DecryptOctetsTo"},
}

var pkgXMLEnc = modulePath + "/internal/xmlenc"

// --- onceonly --------------------------------------------------------

// ReaderRef names a function that consumes or wraps an io.Reader
// argument. Arg indexes the *effective* argument list (method receiver
// first), matching funcParams/effectiveArgs; Arg -1 means every
// argument (io.MultiReader).
type ReaderRef struct {
	FuncRef
	Arg int
}

// oneShotFieldSources are struct fields whose reads yield one-shot
// readers: reading them twice streams the second consumer an empty (or
// worse, partially drained) document.
var oneShotFieldSources = []FieldRef{
	{Pkg: "net/http", Type: "Request", Field: "Body"},
}

// readerConsumers drain a reader to EOF (or treat what they read as the
// complete document — for a verification entry those are the same
// thing). Consuming an already consumed one-shot reader is a bug.
var readerConsumers = []ReaderRef{
	{FuncRef: FuncRef{Pkg: "io", Name: "ReadAll"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "io", Name: "Copy"}, Arg: 1},
	{FuncRef: FuncRef{Pkg: "io", Name: "CopyN"}, Arg: 1},
	{FuncRef: FuncRef{Pkg: "encoding/json", Recv: "Decoder", Name: "Decode"}, Arg: 0},
	// The streaming verification entries: what they read IS the
	// document, so a partially drained or re-used reader verifies the
	// wrong bytes.
	{FuncRef: FuncRef{Pkg: pkgXMLStream, Name: "Parse"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: pkgXMLDOM, Name: "Parse"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: pkgXMLDOM, Name: "ParseWithOptions"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: pkgXMLDSig, Name: "DigestDocumentReader"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: pkgXMLDSig, Name: "HashReader"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: pkgCore, Recv: "Opener", Name: "OpenReader"}, Arg: 2},
	{FuncRef: FuncRef{Pkg: pkgCore, Recv: "Opener", Name: "VerifyDetachedReader"}, Arg: 2},
	{FuncRef: FuncRef{Pkg: pkgLibrary, Recv: "Library", Name: "OpenReader"}, Arg: 2},
	{FuncRef: FuncRef{Pkg: pkgPlayer, Recv: "Engine", Name: "LoadFrom"}, Arg: 2},
	{FuncRef: FuncRef{Pkg: modulePath, Recv: "Player", Name: "LoadFrom"}, Arg: 2},
	{FuncRef: FuncRef{Pkg: modulePath, Name: "ParseDocumentReader"}, Arg: 0},
}

// readerPartials read a prefix of the reader without claiming the rest:
// a later wrap or full consume would operate on a document missing its
// head.
var readerPartials = []ReaderRef{
	{FuncRef: FuncRef{Pkg: "io", Name: "ReadFull"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "io", Name: "ReadAtLeast"}, Arg: 0},
}

// readerWrappers return a new reader view over the argument: the result
// aliases the one-shot identity of what it wraps. Wrapping after any
// read has happened re-frames a partially drained stream as a whole
// document, which is the bug the rule exists for.
var readerWrappers = []ReaderRef{
	{FuncRef: FuncRef{Pkg: "net/http", Name: "MaxBytesReader"}, Arg: 1},
	{FuncRef: FuncRef{Pkg: "io", Name: "LimitReader"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "io", Name: "TeeReader"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "io", Name: "NopCloser"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "io", Name: "MultiReader"}, Arg: -1},
	{FuncRef: FuncRef{Pkg: "bufio", Name: "NewReader"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "bufio", Name: "NewReaderSize"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "bufio", Name: "NewScanner"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "encoding/json", Name: "NewDecoder"}, Arg: 0},
	{FuncRef: FuncRef{Pkg: "encoding/xml", Name: "NewDecoder"}, Arg: 0},
}

var (
	pkgXMLStream = modulePath + "/internal/xmlstream"
	pkgXMLDOM    = modulePath + "/internal/xmldom"
)

func readerConsumerFor(fn *types.Func) (ReaderRef, bool) { return readerRefFor(fn, readerConsumers) }
func readerPartialFor(fn *types.Func) (ReaderRef, bool)  { return readerRefFor(fn, readerPartials) }
func readerWrapperFor(fn *types.Func) (ReaderRef, bool)  { return readerRefFor(fn, readerWrappers) }

func readerRefFor(fn *types.Func, refs []ReaderRef) (ReaderRef, bool) {
	for _, r := range refs {
		if r.FuncRef.matches(fn) {
			return r, true
		}
	}
	return ReaderRef{}, false
}

// isOneShotReaderType reports whether t is an interface whose method
// set includes Read([]byte) (int, error) — io.Reader, io.ReadCloser,
// and friends. Concrete readers (bytes.Reader, os.File) are excluded:
// they are seekable or resettable, so re-reading them is a local
// decision, not a protocol violation.
func isOneShotReaderType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Read" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
			continue
		}
		if sl, ok := sig.Params().At(0).Type().(*types.Slice); ok && isByteElem(sl.Elem()) {
			return true
		}
	}
	return false
}
